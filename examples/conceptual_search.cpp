// Conceptual similarity search: shows the paper's central trade — an
// aggressively reduced representation abandons the original neighbors
// (precision collapses) yet finds *better* neighbors (feature-stripped
// accuracy rises), because distances are measured along the data's concepts
// instead of its noisy raw attributes ("automatic distance function
// correction").
#include <cstdio>

#include "data/uci_like.h"
#include "eval/knn_quality.h"
#include "eval/report.h"
#include "index/metric.h"
#include "reduction/pipeline.h"

using namespace cohere;  // NOLINT(build/namespaces)

namespace {

void Evaluate(const Dataset& data, const ReductionOptions& options,
              const std::string& label, TextTable* table,
              const Metric& metric, double full_accuracy) {
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  COHERE_CHECK(pipeline.ok());
  const Matrix reduced = pipeline->TransformDataset(data).features();
  const double accuracy =
      KnnPredictionAccuracy(reduced, data.labels(), 3, metric);
  const NeighborOverlap overlap =
      ReducedSpaceOverlap(data.features(), reduced, 3, metric);
  table->AddRow({label, std::to_string(pipeline->ReducedDims()),
                 FormatPercent(pipeline->VarianceRetainedFraction()),
                 FormatDouble(accuracy, 4),
                 FormatDouble(accuracy - full_accuracy, 4),
                 FormatPercent(overlap.precision)});
}

}  // namespace

int main() {
  Dataset data = MuskLike();
  auto metric = MakeMetric(MetricKind::kEuclidean);
  const double full_accuracy =
      KnnPredictionAccuracy(data.features(), data.labels(), 3, *metric);

  std::printf(
      "Conceptual search on '%s' (%zu x %zu)\n"
      "full-dimensional k=3 accuracy: %.4f\n\n",
      data.name().c_str(), data.NumRecords(), data.NumAttributes(),
      full_accuracy);

  TextTable table({"reduction", "dims", "variance kept", "accuracy",
                   "vs full", "precision vs full-dim NN"});

  ReductionOptions coherent;
  coherent.scaling = PcaScaling::kCorrelation;
  coherent.strategy = SelectionStrategy::kCoherenceOrder;
  coherent.target_dim = 13;
  Evaluate(data, coherent, "coherence top-13", &table, *metric,
           full_accuracy);

  ReductionOptions eigen;
  eigen.scaling = PcaScaling::kCorrelation;
  eigen.strategy = SelectionStrategy::kEigenvalueOrder;
  eigen.target_dim = 13;
  Evaluate(data, eigen, "eigenvalue top-13", &table, *metric, full_accuracy);

  ReductionOptions conservative;
  conservative.scaling = PcaScaling::kCorrelation;
  conservative.strategy = SelectionStrategy::kRelativeThreshold;
  conservative.relative_threshold = 0.01;
  Evaluate(data, conservative, "1%-threshold", &table, *metric,
           full_accuracy);

  ReductionOptions unscaled;
  unscaled.scaling = PcaScaling::kCovariance;
  unscaled.strategy = SelectionStrategy::kEigenvalueOrder;
  unscaled.target_dim = 13;
  Evaluate(data, unscaled, "unscaled top-13", &table, *metric,
           full_accuracy);

  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nReading the table: the aggressive reductions keep a handful of "
      "dimensions and only a small share of the original variance; their "
      "neighbor sets overlap little with the full-dimensional ones (low "
      "precision), yet their semantic quality is the best in the table. "
      "The conservative 1%%-threshold mirrors the full space faithfully — "
      "and inherits its noise.\n");
  return 0;
}
