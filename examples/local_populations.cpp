// Local (per-population) conceptual search: when a data set mixes several
// populations with different concept subspaces, one global axis system
// cannot serve them all — the Section 3.1 regime. This example partitions
// the data with projected clustering, fits a coherence reduction per
// locality, and compares against a single global reduction.
#include <cstdio>

#include "core/local_engine.h"
#include "data/synthetic.h"
#include "eval/knn_quality.h"
#include "index/metric.h"
#include "reduction/pipeline.h"

using namespace cohere;  // NOLINT(build/namespaces)

int main() {
  // Three populations, each with its own 6 concepts and 4 classes.
  MultiPopulationConfig config;
  LatentFactorConfig pop;
  pop.num_records = 180;
  pop.num_attributes = 40;
  pop.num_concepts = 6;
  pop.num_classes = 4;
  pop.class_separation = 1.0;
  pop.noise_stddev = 0.4;
  for (size_t p = 0; p < 3; ++p) {
    pop.seed = 11 + 100 * p;
    config.populations.push_back(pop);
  }
  config.center_separation = 2.0;
  config.seed = 12;
  Dataset data = GenerateMultiPopulation(config);
  std::printf(
      "mixed data: %zu records x %zu attributes, %zu classes across 3 "
      "populations (global implicit dimensionality ~18)\n\n",
      data.NumRecords(), data.NumAttributes(), data.NumClasses());

  // One global reduction to 6 dims: too few axes for 3 concept subspaces.
  ReductionOptions global_options;
  global_options.scaling = PcaScaling::kCorrelation;
  global_options.strategy = SelectionStrategy::kCoherenceOrder;
  global_options.target_dim = 6;
  Result<ReductionPipeline> global =
      ReductionPipeline::Fit(data, global_options);
  if (!global.ok()) {
    std::fprintf(stderr, "%s\n", global.status().ToString().c_str());
    return 1;
  }
  auto metric = MakeMetric(MetricKind::kEuclidean);
  const double global_accuracy = KnnPredictionAccuracy(
      global->TransformDataset(data).features(), data.labels(), 3, *metric);

  // The local engine: find the populations, reduce each in its own concept
  // space, route queries to their locality.
  LocalEngineOptions local_options;
  local_options.num_clusters = 3;
  local_options.cluster_subspace_dim = 10;
  local_options.reduction = global_options;
  Result<LocalReducedSearchEngine> local =
      LocalReducedSearchEngine::Build(data, local_options);
  if (!local.ok()) {
    std::fprintf(stderr, "%s\n", local.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", local->Describe().c_str());

  size_t matches = 0;
  size_t slots = 0;
  for (size_t i = 0; i < data.NumRecords(); ++i) {
    for (const Neighbor& n : local->Query(data.Record(i), 3, i)) {
      ++slots;
      if (data.label(n.index) == data.label(i)) ++matches;
    }
  }
  const double local_accuracy =
      static_cast<double>(matches) / static_cast<double>(slots);

  const double full_accuracy =
      KnnPredictionAccuracy(data.features(), data.labels(), 3, *metric);

  std::printf(
      "k=3 feature-stripped accuracy:\n"
      "  full %zu-d search:          %.4f\n"
      "  one global 6-d reduction:   %.4f\n"
      "  local per-population 6-d:   %.4f\n\n"
      "The local engine recovers most of the quality the global reduction\n"
      "loses, at a sixth of the full dimensionality: three disjoint concept\n"
      "subspaces do not fit in 6 global axes, but they fit in 6 axes each.\n",
      data.NumAttributes(), full_accuracy, global_accuracy, local_accuracy);
  return 0;
}
