// Dynamic workload: fit a reduced index once, stream inserts at it, watch
// the reconstruction-error drift monitor, and refit when the fitted axis
// system goes stale — the maintenance loop a production deployment of
// coherence-based reduction needs on growing data (cf. the paper's
// reference [17] on dynamic databases).
#include <cstdio>

#include "core/dynamic_engine.h"
#include "data/synthetic.h"

using namespace cohere;  // NOLINT(build/namespaces)

namespace {

LatentFactorConfig Population(uint64_t seed) {
  LatentFactorConfig config;
  config.num_records = 400;
  config.num_attributes = 50;
  config.num_concepts = 6;
  config.num_classes = 2;
  config.seed = seed;
  return config;
}

}  // namespace

int main() {
  Dataset initial = GenerateLatentFactor(Population(1));
  // The "world changes": after a while the stream switches to a population
  // with different concepts (different loadings).
  Dataset drifted = GenerateLatentFactor(Population(2));

  DynamicEngineOptions options;
  options.reduction.scaling = PcaScaling::kCorrelation;
  options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
  options.reduction.target_dim = 6;
  options.drift_threshold = 1.5;
  options.drift_window = 50;

  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(initial, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  std::printf("fitted: %s\n", index->Describe().c_str());

  // Phase 1: stream records from the same distribution.
  Dataset same = GenerateLatentFactor(Population(1));
  for (size_t i = 0; i < 100; ++i) {
    (void)index->Insert(same.Record(i), same.label(i));
  }
  std::printf("after 100 same-distribution inserts:    %s\n",
              index->Describe().c_str());

  // Phase 2: the distribution shifts.
  size_t inserted = 0;
  while (inserted < drifted.NumRecords() && !index->NeedsRefit()) {
    (void)index->Insert(drifted.Record(inserted), drifted.label(inserted));
    ++inserted;
  }
  std::printf("drift alarm after %zu shifted inserts:  %s\n", inserted,
              index->Describe().c_str());

  // Refit on everything seen so far.
  Status refit = index->Refit();
  if (!refit.ok()) {
    std::fprintf(stderr, "refit failed: %s\n", refit.ToString().c_str());
    return 1;
  }
  std::printf("after refit:                            %s\n",
              index->Describe().c_str());

  // The remaining shifted records no longer alarm.
  for (; inserted < drifted.NumRecords(); ++inserted) {
    (void)index->Insert(drifted.Record(inserted), drifted.label(inserted));
  }
  std::printf("after streaming the rest:               %s\n",
              index->Describe().c_str());

  // Queries work throughout; check one against the freshest record.
  const auto neighbors =
      index->Query(drifted.Record(drifted.NumRecords() - 1), 3);
  std::printf("\n3-NN of the last inserted record: ");
  for (const Neighbor& n : neighbors) {
    std::printf("%zu(%.3f) ", n.index, n.distance);
  }
  std::printf("\n");
  return 0;
}
