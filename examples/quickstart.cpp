// Quickstart: generate (or load) a labeled high-dimensional data set, build
// a ReducedSearchEngine with coherence-driven dimensionality reduction, and
// answer nearest-neighbor queries posed in the original attribute space.
//
//   ./quickstart [path/to/data.csv]
//
// Without an argument a synthetic concept-bearing data set is used. With a
// CSV argument, the last column is treated as the class attribute.
#include <cstdio>

#include "core/engine.h"
#include "data/csv.h"
#include "data/synthetic.h"

using namespace cohere;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  // 1. Obtain a data set.
  Dataset data;
  if (argc > 1) {
    CsvOptions options;
    options.label_column = -1;  // last column is the class
    options.missing_values = MissingValuePolicy::kImputeColumnMean;
    Result<Dataset> loaded = LoadCsv(argv[1], options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    data = std::move(*loaded);
  } else {
    LatentFactorConfig config;
    config.num_records = 500;
    config.num_attributes = 80;
    config.num_concepts = 8;
    config.num_classes = 3;
    config.seed = 42;
    data = GenerateLatentFactor(config);
  }
  std::printf("data set '%s': %zu records x %zu attributes, %zu classes\n",
              data.name().c_str(), data.NumRecords(), data.NumAttributes(),
              data.NumClasses());

  // 2. Build the engine: studentize, run PCA, keep the most coherent
  //    directions (sized automatically from the coherence scatter), index
  //    the reduced records with a kd-tree.
  EngineOptions options;
  options.reduction.scaling = PcaScaling::kCorrelation;
  options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
  options.reduction.target_dim = 0;  // automatic cut-off
  options.backend = IndexBackend::kKdTree;

  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", engine->Describe().c_str());

  // 3. Query with an original-space record; the engine projects it into the
  //    reduced space internally.
  const size_t query_row = 0;
  QueryStats stats;
  const std::vector<Neighbor> neighbors =
      engine->Query(data.Record(query_row), /*k=*/5, /*skip_index=*/query_row,
                    &stats);

  std::printf("\n5 nearest neighbors of record %zu (class %d):\n", query_row,
              data.HasLabels() ? data.label(query_row) : -1);
  for (const Neighbor& n : neighbors) {
    std::printf("  record %4zu  distance %8.4f  class %d\n", n.index,
                n.distance,
                data.HasLabels() ? data.label(n.index) : -1);
  }
  std::printf("(%zu distance evaluations, %zu tree nodes visited)\n",
              stats.distance_evaluations, stats.nodes_visited);
  return 0;
}
