// Data-set diagnosis with the coherence model: decide whether a data set is
// amenable to dimensionality reduction at all, and if so which directions to
// keep — including the adversarial case where the largest-variance
// directions are pure noise and the conventional eigenvalue rule fails.
#include <cstdio>

#include "data/synthetic.h"
#include "data/uci_like.h"
#include "eval/report.h"
#include "reduction/coherence.h"
#include "reduction/pipeline.h"
#include "reduction/selection.h"

using namespace cohere;  // NOLINT(build/namespaces)

namespace {

void Diagnose(const Dataset& data, PcaScaling scaling) {
  Result<PcaModel> pca = PcaModel::Fit(data.features(), scaling);
  COHERE_CHECK(pca.ok());
  const CoherenceAnalysis coherence = ComputeCoherence(*pca, data.features());
  const std::vector<size_t> order = OrderByCoherence(coherence);
  const size_t cut = DetectSeparatedPrefix(coherence.probability, order);

  double lo = 1.0;
  double hi = 0.0;
  for (size_t i = 0; i < coherence.dims(); ++i) {
    lo = std::min(lo, coherence.probability[i]);
    hi = std::max(hi, coherence.probability[i]);
  }

  std::printf("%-16s d=%-4zu coherence range [%.3f, %.3f]  ",
              data.name().c_str(), data.NumAttributes(), lo, hi);
  // "All vectors have similar coherence probability" (paper Section 3.1) —
  // a narrow profile means high implicit dimensionality.
  if (hi - lo < 0.2) {
    std::printf("FLAT profile -> unsuited to reduction (curse applies)\n");
    return;
  }
  std::printf("reducible; gap heuristic keeps %zu direction(s)\n", cut);

  std::printf("    best directions (coherence | eigenvalue rank):");
  for (size_t i = 0; i < 6 && i < order.size(); ++i) {
    std::printf("  %.3f|#%zu", coherence.probability[order[i]], order[i]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "=== Coherence diagnosis: which data sets can be reduced, and along "
      "which directions? ===\n\n");

  // A concept-bearing data set: few highly coherent directions.
  Diagnose(IonosphereLike(), PcaScaling::kCorrelation);

  // The adversarial case: the top-variance directions are corrupted noise.
  Dataset noisy = NoisyDataA();
  Diagnose(noisy, PcaScaling::kCovariance);
  {
    Result<PcaModel> pca =
        PcaModel::Fit(noisy.features(), PcaScaling::kCovariance);
    COHERE_CHECK(pca.ok());
    const CoherenceAnalysis coherence =
        ComputeCoherence(*pca, noisy.features());
    std::printf(
        "    note: the largest eigenvalue direction of %s has eigenvalue "
        "%.2f but coherence only %.3f — variance is not meaning.\n",
        noisy.name().c_str(), pca->eigenvalues()[0],
        coherence.probability[0]);
  }

  // Perfectly noisy data: flat coherence at every dimensionality.
  Diagnose(GenerateUniformCube(500, 50, 0.0, 1.0, 9090),
           PcaScaling::kCovariance);

  std::printf(
      "\nDiagnosis rule (paper, Sections 3 & 4): data sets with a few "
      "high-coherence directions are reducible — keep exactly those. Flat "
      "coherence profiles near 2*Phi(1)-1 = 0.683 (or uniformly low under "
      "rotation) mean high implicit dimensionality: retain everything or "
      "use projected clustering instead.\n");
  return 0;
}
