// Index acceleration: the performance half of the paper's argument. Builds
// the same similarity workload over (a) the full-dimensional representation
// with a linear scan — the only structure that stays honest under the
// dimensionality curse — and (b) a ReducedSearchEngine with kd-tree and
// VA-file backends in the aggressively reduced space, and compares work and
// wall time per query.
#include <cstdio>

#include "common/stopwatch.h"
#include "core/engine.h"
#include "data/uci_like.h"
#include "eval/report.h"
#include "index/linear_scan.h"

using namespace cohere;  // NOLINT(build/namespaces)

namespace {

struct Measurement {
  double micros_per_query = 0.0;
  double distance_evals = 0.0;
  double matches = 0.0;  // feature-stripped accuracy, k = 3
};

template <typename QueryFn>
Measurement Drive(const Dataset& data, QueryFn&& query_fn) {
  Measurement m;
  QueryStats stats;
  size_t matches = 0;
  size_t slots = 0;
  Stopwatch watch;
  for (size_t i = 0; i < data.NumRecords(); ++i) {
    const std::vector<Neighbor> neighbors = query_fn(i, &stats);
    for (const Neighbor& n : neighbors) {
      ++slots;
      if (data.label(n.index) == data.label(i)) ++matches;
    }
  }
  const double n = static_cast<double>(data.NumRecords());
  m.micros_per_query = watch.ElapsedSeconds() * 1e6 / n;
  m.distance_evals = static_cast<double>(stats.distance_evaluations) / n;
  m.matches = static_cast<double>(matches) / static_cast<double>(slots);
  return m;
}

}  // namespace

int main() {
  Dataset data = MuskLike();
  std::printf("workload: all-records 3-NN over '%s' (%zu x %zu)\n\n",
              data.name().c_str(), data.NumRecords(), data.NumAttributes());

  TextTable table({"configuration", "us/query", "dist evals/query",
                   "k=3 accuracy"});

  // Baseline: full-dimensional linear scan.
  auto metric = MakeMetric(MetricKind::kEuclidean);
  LinearScanIndex full_scan(data.features(), metric.get());
  const Measurement full = Drive(data, [&](size_t i, QueryStats* stats) {
    return full_scan.Query(data.Record(i), 3, i, stats);
  });
  table.AddRow({"full 166-d linear scan", FormatDouble(full.micros_per_query, 1),
                FormatDouble(full.distance_evals, 1),
                FormatDouble(full.matches, 4)});

  // Reduced engines.
  for (IndexBackend backend :
       {IndexBackend::kKdTree, IndexBackend::kVaFile}) {
    EngineOptions options;
    options.reduction.scaling = PcaScaling::kCorrelation;
    options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
    options.reduction.target_dim = 13;
    options.backend = backend;
    Result<ReducedSearchEngine> engine =
        ReducedSearchEngine::Build(data, options);
    COHERE_CHECK(engine.ok());
    const Measurement m = Drive(data, [&](size_t i, QueryStats* stats) {
      return engine->Query(data.Record(i), 3, i, stats);
    });
    table.AddRow({std::string("reduced 13-d ") +
                      IndexBackendName(backend),
                  FormatDouble(m.micros_per_query, 1),
                  FormatDouble(m.distance_evals, 1),
                  FormatDouble(m.matches, 4)});
  }

  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nThe reduced engines answer queries an order of magnitude faster "
      "AND with better feature-stripped accuracy: storage, index pruning "
      "and neighbor quality all improve together, which is the paper's "
      "case for aggressive reduction.\n");
  return 0;
}
