// Reproduces the Section 3 analysis: for uniformly distributed data the
// coherence factor along every axis direction is exactly 1, so the
// coherence probability is 2*Phi(1) - 1 ~= 0.6827 independent of the
// dimensionality — no direction is a concept and nothing can be pruned.
// Also reports the coherence profile of the PCA directions (an arbitrary
// rotation of the degenerate spectrum) and the automatic cut-off decision.
#include <cstdio>

#include "data/synthetic.h"
#include "eval/report.h"
#include "figure_common.h"
#include "reduction/coherence.h"
#include "reduction/selection.h"
#include "stats/normal.h"

using namespace cohere;        // NOLINT(build/namespaces)
using namespace cohere::bench; // NOLINT(build/namespaces)

int main() {
  std::printf(
      "=== Section 3: coherence of uniform data vs dimensionality ===\n"
      "analytic value 2*Phi(1)-1 = %.6f\n\n",
      TwoSidedNormalMass(1.0));

  TextTable table({"d", "axis-dir coherence", "pca-dir min", "pca-dir max",
                   "separated prefix"});
  std::vector<double> csv_d;
  std::vector<double> csv_axis;
  std::vector<double> csv_min;
  std::vector<double> csv_max;

  for (size_t d : {10u, 25u, 50u, 100u, 200u, 400u}) {
    Dataset uniform = GenerateUniformCube(600, d, -0.5, 0.5, 3000 + d);

    // Axis directions: the analytic case. Every point contributes exactly
    // the constant, so the average is exact.
    Vector axis(d);
    axis[0] = 1.0;
    double axis_coherence = 0.0;
    for (size_t r = 0; r < uniform.NumRecords(); ++r) {
      axis_coherence += CoherenceProbability(uniform.Record(r), axis);
    }
    axis_coherence /= static_cast<double>(uniform.NumRecords());

    // PCA directions: rotated axes with a near-degenerate spectrum.
    Result<PcaModel> pca =
        PcaModel::Fit(uniform.features(), PcaScaling::kCovariance);
    COHERE_CHECK(pca.ok());
    const CoherenceAnalysis coherence =
        ComputeCoherence(*pca, uniform.features());
    double lo = 1.0;
    double hi = 0.0;
    for (size_t i = 0; i < d; ++i) {
      lo = std::min(lo, coherence.probability[i]);
      hi = std::max(hi, coherence.probability[i]);
    }
    const size_t prefix = DetectSeparatedPrefix(
        coherence.probability, OrderByCoherence(coherence));

    table.AddRow({std::to_string(d), FormatDouble(axis_coherence, 6),
                  FormatDouble(lo, 4), FormatDouble(hi, 4),
                  std::to_string(prefix)});
    csv_d.push_back(static_cast<double>(d));
    csv_axis.push_back(axis_coherence);
    csv_min.push_back(lo);
    csv_max.push_back(hi);
  }

  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nA separated prefix of 1 means the cut-off heuristic refuses to "
      "prune: uniform data is inherently unsuited to dimensionality "
      "reduction, exactly as the paper's Section 3 argues.\n");

  Status s = WriteSeriesCsv(
      ResultPath("uniform_coherence.csv"),
      {"d", "axis_coherence", "pca_min", "pca_max"},
      {csv_d, csv_axis, csv_min, csv_max});
  if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
  std::printf("[series written to %s]\n",
              ResultPath("uniform_coherence.csv").c_str());
  return 0;
}
