// Reproduces Figures 3, 4 and 5 of the paper on the musk-like data set:
// eigenvalue-vs-coherence scatter, coherence by eigenvalue rank (scaled vs
// unscaled), and k = 3 prediction accuracy against retained dimensionality.
#include "figure_common.h"

#include "data/uci_like.h"

int main() {
  cohere::bench::RunDatasetFigureBlock(cohere::MuskLike(), "musk",
                                       "Figure 3", "Figure 4", "Figure 5");
  return 0;
}
