// Reproduces Table 1 of the paper ("Advantages of aggressive dimensionality
// reduction"): for each data set, the full-dimensional k = 3 prediction
// accuracy, the optimal accuracy and the dimensionality it occurs at, and
// the accuracy/dimensionality of the conventional 1%-thresholding rule.
//
// Extends the table with the ablations DESIGN.md calls out: the coherence
// ordering's optimum, the 90%-energy selection, and a Gaussian random
// projection baseline at the optimal dimensionality.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "data/uci_like.h"
#include "eval/knn_quality.h"
#include "eval/report.h"
#include "eval/sweep.h"
#include "figure_common.h"
#include "reduction/random_projection.h"
#include "reduction/selection.h"

using namespace cohere;        // NOLINT(build/namespaces)
using namespace cohere::bench; // NOLINT(build/namespaces)

namespace {

struct Table1Row {
  std::string dataset;
  size_t full_dims = 0;
  double full_accuracy = 0.0;
  double optimal_accuracy = 0.0;
  size_t optimal_dims = 0;
  double threshold_accuracy = 0.0;
  size_t threshold_dims = 0;
  // Ablations.
  double coherence_accuracy = 0.0;
  size_t coherence_dims = 0;
  double energy90_accuracy = 0.0;
  size_t energy90_dims = 0;
  double random_projection_accuracy = 0.0;
  // Paper-quoted side facts at the optimum: retained variance fraction and
  // precision w.r.t. the full-dimensional neighbors.
  double optimal_variance_retained = 0.0;
  double optimal_precision = 0.0;
};

// Sweep dims: the usual grid plus the exact dimensionalities the table must
// report (threshold cut, energy cut, full).
std::vector<size_t> DimsWith(size_t d, std::initializer_list<size_t> extra) {
  std::vector<size_t> dims = MakeSweepDims(d, 48);
  dims.insert(dims.end(), extra);
  std::sort(dims.begin(), dims.end());
  dims.erase(std::unique(dims.begin(), dims.end()), dims.end());
  return dims;
}

double AccuracyAt(const DimensionSweepResult& sweep, size_t dims) {
  for (const SweepPoint& p : sweep.points) {
    if (p.dims == dims) return p.accuracy;
  }
  COHERE_CHECK_MSG(false, "dimensionality missing from sweep");
  return 0.0;
}

Table1Row Evaluate(const Dataset& dataset) {
  Table1Row row;
  row.dataset = dataset.name();
  row.full_dims = dataset.NumAttributes();

  // The paper's main setting: studentized attributes (correlation PCA).
  Result<PcaModel> pca =
      PcaModel::Fit(dataset.features(), PcaScaling::kCorrelation);
  COHERE_CHECK(pca.ok());
  const CoherenceAnalysis coherence =
      ComputeCoherence(*pca, dataset.features());

  row.threshold_dims = SelectRelativeThreshold(*pca, 0.01).size();
  row.energy90_dims = SelectEnergyFraction(*pca, 0.9).size();
  const std::vector<size_t> dims =
      DimsWith(row.full_dims,
               {row.threshold_dims, row.energy90_dims, row.full_dims});

  const Matrix eigen_scores =
      pca->ProjectRows(dataset.features(), OrderByEigenvalue(*pca));
  const DimensionSweepResult eigen_sweep =
      SweepPredictionAccuracy(eigen_scores, dataset.labels(), 3, dims);
  row.full_accuracy = AccuracyAt(eigen_sweep, row.full_dims);
  row.optimal_accuracy = eigen_sweep.BestAccuracy();
  row.optimal_dims = eigen_sweep.BestDims();
  row.threshold_accuracy = AccuracyAt(eigen_sweep, row.threshold_dims);
  row.energy90_accuracy = AccuracyAt(eigen_sweep, row.energy90_dims);

  // Side facts the paper quotes: variance retained at the optimum and
  // precision against the full-dimensional neighbor sets.
  {
    std::vector<size_t> kept(row.optimal_dims);
    for (size_t i = 0; i < row.optimal_dims; ++i) kept[i] = i;
    row.optimal_variance_retained = pca->VarianceRetainedFraction(kept);
    auto metric_l2 = MakeMetric(MetricKind::kEuclidean);
    const Matrix normalized_full = pca->NormalizeRows(dataset.features());
    const Matrix optimal_reduced =
        pca->ProjectRows(dataset.features(), kept);
    row.optimal_precision =
        ReducedSpaceOverlap(normalized_full, optimal_reduced, 3, *metric_l2)
            .precision;
  }

  const Matrix coherence_scores =
      pca->ProjectRows(dataset.features(), OrderByCoherence(coherence));
  const DimensionSweepResult coherence_sweep =
      SweepPredictionAccuracy(coherence_scores, dataset.labels(), 3, dims);
  row.coherence_accuracy = coherence_sweep.BestAccuracy();
  row.coherence_dims = coherence_sweep.BestDims();

  // Random projection to the eigen-optimal dimensionality, on studentized
  // data for scale comparability.
  const Matrix normalized = pca->NormalizeRows(dataset.features());
  const RandomProjection rp = RandomProjection::Make(
      row.full_dims, row.optimal_dims, /*seed=*/7777);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  row.random_projection_accuracy = KnnPredictionAccuracy(
      rp.TransformRows(normalized), dataset.labels(), 3, *metric);
  return row;
}

}  // namespace

int main() {
  std::printf(
      "=== Table 1: advantages of aggressive dimensionality reduction "
      "(k=3 feature-stripped accuracy, correlation PCA) ===\n\n");

  const std::vector<Dataset> datasets = {MuskLike(), IonosphereLike(),
                                         ArrhythmiaLike()};
  TextTable paper_table({"Data Set", "Full Dim.", "Full Acc.",
                         "Optimal Acc.", "Optimal Dim.", "1%-thr Acc.",
                         "1%-thr Dim."});
  TextTable side_table({"Data Set", "Variance kept @opt",
                        "Precision vs full-dim NN @opt"});
  TextTable ablation_table({"Data Set", "Coherence Acc.", "Coherence Dim.",
                            "Energy90 Acc.", "Energy90 Dim.",
                            "RandProj Acc. (at opt dim)"});
  std::vector<double> csv_full_acc;
  std::vector<double> csv_opt_acc;
  std::vector<double> csv_opt_dim;
  std::vector<double> csv_thr_acc;
  std::vector<double> csv_thr_dim;

  for (const Dataset& dataset : datasets) {
    const Table1Row row = Evaluate(dataset);
    paper_table.AddRow({row.dataset, std::to_string(row.full_dims),
                        FormatDouble(row.full_accuracy, 4),
                        FormatDouble(row.optimal_accuracy, 4),
                        std::to_string(row.optimal_dims),
                        FormatDouble(row.threshold_accuracy, 4),
                        std::to_string(row.threshold_dims)});
    side_table.AddRow({row.dataset,
                       FormatPercent(row.optimal_variance_retained),
                       FormatPercent(row.optimal_precision)});
    ablation_table.AddRow({row.dataset,
                           FormatDouble(row.coherence_accuracy, 4),
                           std::to_string(row.coherence_dims),
                           FormatDouble(row.energy90_accuracy, 4),
                           std::to_string(row.energy90_dims),
                           FormatDouble(row.random_projection_accuracy, 4)});
    csv_full_acc.push_back(row.full_accuracy);
    csv_opt_acc.push_back(row.optimal_accuracy);
    csv_opt_dim.push_back(static_cast<double>(row.optimal_dims));
    csv_thr_acc.push_back(row.threshold_accuracy);
    csv_thr_dim.push_back(static_cast<double>(row.threshold_dims));
  }

  std::fputs(paper_table.Render().c_str(), stdout);
  std::printf(
      "\n--- at the optimum: discarded variance and precision collapse "
      "(paper: ~60%% variance discarded on arrhythmia, precision often "
      "~10%%) ---\n");
  std::fputs(side_table.Render().c_str(), stdout);
  std::printf("\n--- selection-strategy ablation ---\n");
  std::fputs(ablation_table.Render().c_str(), stdout);

  Status s = WriteSeriesCsv(
      ResultPath("table1.csv"),
      {"full_acc", "optimal_acc", "optimal_dims", "thr10_acc", "thr10_dims"},
      {csv_full_acc, csv_opt_acc, csv_opt_dim, csv_thr_acc, csv_thr_dim});
  if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
  std::printf("\n[series written to %s]\n", ResultPath("table1.csv").c_str());
  return 0;
}
