// Reproduces the Figure 2 illustration quantitatively: anisotropic scaling
// destroys the orthogonality of an axis pair, and consequently the PCA basis
// of a demographically-scaled data set (age in years vs salary in dollars)
// changes completely between the raw and the studentized representation.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "data/synthetic.h"
#include "data/transforms.h"
#include "eval/report.h"
#include "figure_common.h"
#include "reduction/pca.h"
#include "stats/rng.h"

using namespace cohere;        // NOLINT(build/namespaces)
using namespace cohere::bench; // NOLINT(build/namespaces)

namespace {

double AngleDegrees(const Vector& a, const Vector& b) {
  const double cosine = Dot(a, b) / (a.Norm2() * b.Norm2());
  return std::acos(std::clamp(cosine, -1.0, 1.0)) * 180.0 / M_PI;
}

Vector Scale2d(const Vector& v, double sx, double sy) {
  return Vector{v[0] * sx, v[1] * sy};
}

}  // namespace

int main() {
  std::printf("=== Figure 2: effects of data scaling ===\n\n");

  // Part 1: an orthogonal vector pair stops being orthogonal under
  // anisotropic scaling.
  const Vector v1{1.0, 1.0};
  const Vector v2{1.0, -1.0};
  std::printf("vector pair (1,1) and (1,-1): angle %.1f deg\n",
              AngleDegrees(v1, v2));
  for (double sy : {2.0, 5.0, 20.0}) {
    std::printf("  after scaling y by %5.1f: angle %.1f deg\n", sy,
                AngleDegrees(Scale2d(v1, 1.0, sy), Scale2d(v2, 1.0, sy)));
  }

  // Part 2: demographic-style data — age (years, 0..100) strongly
  // correlated with salary (dollars, 0..200000). Covariance PCA on the raw
  // scales is dominated by the dollar axis; studentizing recovers the
  // correlated direction.
  Rng rng(2024);
  Matrix data(2000, 2);
  for (size_t i = 0; i < data.rows(); ++i) {
    const double age = std::clamp(rng.Gaussian(45.0, 15.0), 18.0, 90.0);
    const double salary = std::clamp(
        20000.0 + (age - 18.0) * 2500.0 + rng.Gaussian(0.0, 15000.0), 0.0,
        250000.0);
    data.At(i, 0) = age;
    data.At(i, 1) = salary;
  }

  Result<PcaModel> raw = PcaModel::Fit(data, PcaScaling::kCovariance);
  Result<PcaModel> scaled = PcaModel::Fit(data, PcaScaling::kCorrelation);
  COHERE_CHECK(raw.ok());
  COHERE_CHECK(scaled.ok());

  const Vector raw_pc1 = raw->eigenvectors().Col(0);
  const Vector scaled_pc1 = scaled->eigenvectors().Col(0);
  std::printf(
      "\nage/salary data (scales differ by ~3 orders of magnitude):\n"
      "  raw-scale first PC:        (%.4f, %.4f)  <- pinned to the salary "
      "axis\n"
      "  studentized first PC:      (%.4f, %.4f)  <- the correlated "
      "direction\n"
      "  angle between the two PCs in attribute space: %.1f deg\n",
      raw_pc1[0], raw_pc1[1], scaled_pc1[0], scaled_pc1[1],
      AngleDegrees(raw_pc1, scaled_pc1));
  std::printf(
      "  raw eigenvalue share of PC1:        %.4f\n"
      "  studentized eigenvalue share of PC1: %.4f\n",
      raw->eigenvalues()[0] / raw->TotalVariance(),
      scaled->eigenvalues()[0] / scaled->TotalVariance());

  Status s = WriteSeriesCsv(
      ResultPath("fig2_scaling.csv"),
      {"raw_pc1_age", "raw_pc1_salary", "scaled_pc1_age",
       "scaled_pc1_salary"},
      {{raw_pc1[0]}, {raw_pc1[1]}, {scaled_pc1[0]}, {scaled_pc1[1]}});
  if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
  std::printf("[series written to %s]\n",
              ResultPath("fig2_scaling.csv").c_str());
  return 0;
}
