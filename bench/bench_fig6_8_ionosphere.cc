// Reproduces Figures 6, 7 and 8 of the paper on the ionosphere-like data
// set: eigenvalue-vs-coherence scatter, coherence by eigenvalue rank, and
// accuracy against retained dimensionality.
#include "figure_common.h"

#include "data/uci_like.h"

int main() {
  cohere::bench::RunDatasetFigureBlock(cohere::IonosphereLike(), "ionosphere",
                                       "Figure 6", "Figure 7", "Figure 8");
  return 0;
}
