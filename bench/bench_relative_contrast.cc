// Reproduces the Section 1.1 motivation (Beyer et al. [5]): the relative
// distance contrast (Dmax - Dmin)/Dmin collapses with growing
// dimensionality, making nearest-neighbor queries meaningless — and shows
// that coherence-driven reduction restores the contrast on concept-bearing
// data while (correctly) not helping on pure noise.
#include <cstdio>

#include "data/synthetic.h"
#include "data/uci_like.h"
#include "eval/contrast.h"
#include "eval/report.h"
#include "figure_common.h"
#include "reduction/pipeline.h"

using namespace cohere;        // NOLINT(build/namespaces)
using namespace cohere::bench; // NOLINT(build/namespaces)

int main() {
  std::printf("=== Section 1.1: distance contrast vs dimensionality ===\n\n");

  auto l2 = MakeMetric(MetricKind::kEuclidean);
  auto l1 = MakeMetric(MetricKind::kManhattan);
  auto l_half = MakeMetric(MetricKind::kFractional, 0.5);

  TextTable table({"d", "uniform L2", "uniform L1", "uniform L0.5",
                   "gaussian L2", "latent-factor L2"});
  std::vector<double> csv_d;
  std::vector<double> csv_uniform;
  std::vector<double> csv_gaussian;
  std::vector<double> csv_latent;

  constexpr size_t kRecords = 400;
  constexpr size_t kQueries = 80;
  for (size_t d : {2u, 5u, 10u, 20u, 50u, 100u, 200u}) {
    Dataset uniform = GenerateUniformCube(kRecords, d, 0.0, 1.0, 4000 + d);
    Dataset gaussian = GenerateGaussianBlob(kRecords, d, 1.0, 4100 + d);
    LatentFactorConfig config;
    config.num_records = kRecords;
    config.num_attributes = d;
    config.num_concepts = std::max<size_t>(1, std::min<size_t>(8, d / 2));
    config.seed = 4200 + d;
    Dataset latent = GenerateLatentFactor(config);

    Rng rng(4300 + d);
    const double u2 =
        RelativeContrast(uniform.features(), *l2, kQueries, &rng)
            .mean_relative_contrast;
    const double u1 =
        RelativeContrast(uniform.features(), *l1, kQueries, &rng)
            .mean_relative_contrast;
    const double uh =
        RelativeContrast(uniform.features(), *l_half, kQueries, &rng)
            .mean_relative_contrast;
    const double g2 =
        RelativeContrast(gaussian.features(), *l2, kQueries, &rng)
            .mean_relative_contrast;
    const double f2 =
        RelativeContrast(latent.features(), *l2, kQueries, &rng)
            .mean_relative_contrast;

    table.AddRow({std::to_string(d), FormatDouble(u2, 3),
                  FormatDouble(u1, 3), FormatDouble(uh, 3),
                  FormatDouble(g2, 3), FormatDouble(f2, 3)});
    csv_d.push_back(static_cast<double>(d));
    csv_uniform.push_back(u2);
    csv_gaussian.push_back(g2);
    csv_latent.push_back(f2);
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nLower Lp exponents hold contrast longer (Aggarwal/Hinneburg/Keim "
      "[1]); concept-bearing (latent-factor) data keeps more contrast than "
      "pure noise at equal dimensionality.\n");

  // Contrast restoration by reduction on a concept-bearing data set.
  std::printf("\n--- contrast restoration by reduction (musk-like) ---\n");
  Dataset musk = MuskLike();
  ReductionOptions options;
  options.scaling = PcaScaling::kCorrelation;
  options.strategy = SelectionStrategy::kCoherenceOrder;
  options.target_dim = 13;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(musk, options);
  COHERE_CHECK(pipeline.ok());
  Rng rng(5000);
  const double full_contrast =
      RelativeContrast(musk.features(), *l2, kQueries, &rng)
          .mean_relative_contrast;
  const double reduced_contrast =
      RelativeContrast(pipeline->TransformDataset(musk).features(), *l2,
                       kQueries, &rng)
          .mean_relative_contrast;
  std::printf("full %zu-d contrast: %.3f | reduced %zu-d contrast: %.3f\n",
              musk.NumAttributes(), full_contrast, pipeline->ReducedDims(),
              reduced_contrast);

  Status s = WriteSeriesCsv(
      ResultPath("relative_contrast.csv"),
      {"d", "uniform_l2", "gaussian_l2", "latent_l2"},
      {csv_d, csv_uniform, csv_gaussian, csv_latent});
  if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
  std::printf("[series written to %s]\n",
              ResultPath("relative_contrast.csv").c_str());
  return 0;
}
