#ifndef COHERE_BENCH_FIGURE_COMMON_H_
#define COHERE_BENCH_FIGURE_COMMON_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/sweep.h"
#include "reduction/coherence.h"
#include "reduction/pca.h"

namespace cohere {
namespace bench {

/// Directory where the figure harnesses drop their CSV series
/// ("results" under the current working directory; created on demand).
std::string ResultsDir();

/// Joined path inside ResultsDir().
std::string ResultPath(const std::string& file_name);

/// Everything the per-dataset figures (3/4/5, 6/7/8, 9/10/11) need, for one
/// scaling choice.
struct ScalingAnalysis {
  PcaModel model;
  CoherenceAnalysis coherence;
  DimensionSweepResult eigen_sweep;  // accuracy vs dims, eigenvalue order
};

/// Fits PCA with the given scaling, computes coherence, and runs the
/// eigenvalue-order accuracy sweep (k = 3 feature-stripped accuracy, the
/// paper's quality measure). `max_sweep_points` caps the number of
/// evaluated dimensionalities.
ScalingAnalysis AnalyzeScaling(const Dataset& dataset, PcaScaling scaling,
                               size_t max_sweep_points = 48);

/// Prints and writes the scatter plot (eigenvalue magnitude vs coherence
/// probability) — the Figure 3/6/9/12/14 content. CSV columns:
/// eigen_rank, eigenvalue, coherence_probability.
void EmitScatter(const ScalingAnalysis& analysis, const std::string& title,
                 const std::string& csv_name);

/// Prints and writes coherence probability by eigenvalue rank for the
/// scaled (correlation) and unscaled (covariance) axis systems — the
/// Figure 4/7/10 content.
void EmitCoherenceByRank(const ScalingAnalysis& unscaled,
                         const ScalingAnalysis& scaled,
                         const std::string& title,
                         const std::string& csv_name);

/// Prints and writes accuracy-vs-dimensionality curves under a shared dims
/// axis — Figures 5/8/11 (scaled vs unscaled) and 13/15 (eigenvalue vs
/// coherence ordering) share this shape. Both sweeps must have been run on
/// the same dims list.
void EmitAccuracyCurves(const DimensionSweepResult& a,
                        const std::string& label_a,
                        const DimensionSweepResult& b,
                        const std::string& label_b, const std::string& title,
                        const std::string& csv_name);

/// Runs the k = 3 accuracy sweep for an arbitrary component ordering.
DimensionSweepResult SweepOrdering(const Dataset& dataset,
                                   const PcaModel& model,
                                   const std::vector<size_t>& ordering,
                                   size_t max_sweep_points = 48);

/// The complete Figure-3/4/5-style block for one dataset: scatter (scaled),
/// coherence-by-rank (both scalings), accuracy curves (both scalings).
/// Finishes by dropping a metrics snapshot tagged with `dataset_tag`.
void RunDatasetFigureBlock(const Dataset& dataset,
                           const std::string& dataset_tag,
                           const std::string& scatter_figure,
                           const std::string& coherence_figure,
                           const std::string& accuracy_figure);

/// Writes the current observability-registry snapshot as JSON to
/// ResultPath(tag + "_metrics.json") and prints the human-readable form, so
/// every figure run leaves its query-path counters and latency quantiles
/// next to the CSV series it produced.
void EmitMetricsSnapshot(const std::string& tag);

}  // namespace bench
}  // namespace cohere

#endif  // COHERE_BENCH_FIGURE_COMMON_H_
