// Approximation study for the LocalReducedSearchEngine: how neighbor-set
// recall (against exact full-dimensional search), semantic accuracy and
// query latency trade against the number of probed localities.
#include <cstdio>

#include "common/stopwatch.h"
#include "core/local_engine.h"
#include "data/synthetic.h"
#include "data/transforms.h"
#include "eval/report.h"
#include "figure_common.h"
#include "index/linear_scan.h"

using namespace cohere;        // NOLINT(build/namespaces)
using namespace cohere::bench; // NOLINT(build/namespaces)

namespace {

Dataset MixedPopulations(uint64_t seed) {
  MultiPopulationConfig config;
  LatentFactorConfig pop;
  pop.num_records = 180;
  pop.num_attributes = 40;
  pop.num_concepts = 6;
  pop.num_classes = 4;
  pop.class_separation = 1.0;
  pop.noise_stddev = 0.4;
  for (size_t p = 0; p < 4; ++p) {
    pop.seed = seed + 100 * p;
    config.populations.push_back(pop);
  }
  config.center_separation = 2.0;
  config.seed = seed + 1;
  return GenerateMultiPopulation(config);
}

}  // namespace

int main() {
  std::printf(
      "=== Local engine probe sweep: recall vs accuracy vs latency "
      "(4 populations, k=3) ===\n\n");

  Dataset data = MixedPopulations(404);
  constexpr size_t kK = 3;

  // Exact full-dimensional reference (studentized).
  const Matrix studentized =
      ColumnAffineTransform::FitZScore(data.features())
          .ApplyToRows(data.features());
  auto metric = MakeMetric(MetricKind::kEuclidean);
  LinearScanIndex exact(studentized, metric.get());

  std::vector<std::vector<Neighbor>> exact_neighbors(data.NumRecords());
  for (size_t i = 0; i < data.NumRecords(); ++i) {
    exact_neighbors[i] = exact.Query(studentized.Row(i), kK, i, nullptr);
  }

  TextTable table({"probes", "recall vs full-dim", "k=3 accuracy",
                   "us/query"});
  std::vector<double> csv_probes;
  std::vector<double> csv_recall;
  std::vector<double> csv_accuracy;

  for (size_t probes = 1; probes <= 4; ++probes) {
    LocalEngineOptions options;
    options.num_clusters = 4;
    options.probe_clusters = probes;
    options.cluster_subspace_dim = 10;
    options.reduction.scaling = PcaScaling::kCorrelation;
    options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
    options.reduction.target_dim = 6;
    Result<LocalReducedSearchEngine> engine =
        LocalReducedSearchEngine::Build(data, options);
    COHERE_CHECK(engine.ok());

    size_t overlap = 0;
    size_t matches = 0;
    size_t slots = 0;
    Stopwatch watch;
    for (size_t i = 0; i < data.NumRecords(); ++i) {
      const auto found = engine->Query(data.Record(i), kK, i);
      for (const Neighbor& n : found) {
        ++slots;
        if (data.label(n.index) == data.label(i)) ++matches;
        for (const Neighbor& e : exact_neighbors[i]) {
          if (e.index == n.index) {
            ++overlap;
            break;
          }
        }
      }
    }
    const double micros = watch.ElapsedSeconds() * 1e6 /
                          static_cast<double>(data.NumRecords());
    const double recall =
        static_cast<double>(overlap) / static_cast<double>(slots);
    const double accuracy =
        static_cast<double>(matches) / static_cast<double>(slots);
    table.AddRow({std::to_string(probes), FormatDouble(recall, 4),
                  FormatDouble(accuracy, 4), FormatDouble(micros, 1)});
    csv_probes.push_back(static_cast<double>(probes));
    csv_recall.push_back(recall);
    csv_accuracy.push_back(accuracy);
  }

  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nOne probe answers in the query's own concept space; extra probes "
      "add candidates from neighboring localities, re-ranked in the shared "
      "studentized space, buying recall at linear latency cost and "
      "saturating once the router's locality choice is already right. "
      "Recall against the *full-dimensional* neighbors stays intentionally "
      "partial — per the paper, the reduced concept space changes (and "
      "improves) the neighbor sets.\n");

  Status s = WriteSeriesCsv(ResultPath("local_probe.csv"),
                            {"probes", "recall", "accuracy"},
                            {csv_probes, csv_recall, csv_accuracy});
  if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
  std::printf("[series written to %s]\n",
              ResultPath("local_probe.csv").c_str());
  return 0;
}
