// Quantifies the paper's indexing motivation: in full dimensionality the
// optimistic bounds of partition-based indexes prune nothing (every query
// degenerates to a scan), while aggressive dimensionality reduction makes
// the same structures effective again. Reports per-query distance
// evaluations, visited nodes/cells, refined candidates and wall time for
// the linear scan, kd-tree and VA-file over full vs reduced representations.
#include <cstdio>
#include <memory>

#include "common/stopwatch.h"
#include "data/uci_like.h"
#include "eval/report.h"
#include "figure_common.h"
#include "index/kd_tree.h"
#include "index/linear_scan.h"
#include "index/rstar_tree.h"
#include "index/va_file.h"
#include "reduction/pipeline.h"

using namespace cohere;        // NOLINT(build/namespaces)
using namespace cohere::bench; // NOLINT(build/namespaces)

namespace {

struct EngineReport {
  double distance_evals = 0.0;
  double nodes_visited = 0.0;
  double candidates_refined = 0.0;
  double micros_per_query = 0.0;
};

EngineReport Measure(const KnnIndex& index, const Matrix& queries, size_t k) {
  EngineReport report;
  QueryStats stats;
  Stopwatch watch;
  for (size_t i = 0; i < queries.rows(); ++i) {
    index.Query(queries.Row(i), k, /*skip_index=*/i, &stats);
  }
  const double n = static_cast<double>(queries.rows());
  report.micros_per_query = watch.ElapsedSeconds() * 1e6 / n;
  report.distance_evals = static_cast<double>(stats.distance_evaluations) / n;
  report.nodes_visited = static_cast<double>(stats.nodes_visited) / n;
  report.candidates_refined =
      static_cast<double>(stats.candidates_refined) / n;
  return report;
}

void Report(TextTable* table, const std::string& space,
            const std::string& engine, const EngineReport& r) {
  table->AddRow({space, engine, FormatDouble(r.distance_evals, 1),
                 FormatDouble(r.nodes_visited, 1),
                 FormatDouble(r.candidates_refined, 1),
                 FormatDouble(r.micros_per_query, 1)});
}

}  // namespace

int main() {
  std::printf(
      "=== Index pruning: full dimensionality vs aggressive reduction "
      "(musk-like, k=3, averages per query) ===\n\n");

  Dataset data = MuskLike();
  auto metric = MakeMetric(MetricKind::kEuclidean);

  // Full-dimensional (studentized) representation.
  ReductionOptions full_options;
  full_options.scaling = PcaScaling::kCorrelation;
  full_options.strategy = SelectionStrategy::kEigenvalueOrder;
  full_options.target_dim = data.NumAttributes();
  Result<ReductionPipeline> full_pipeline =
      ReductionPipeline::Fit(data, full_options);
  COHERE_CHECK(full_pipeline.ok());
  const Matrix full_space = full_pipeline->TransformDataset(data).features();

  // Aggressively reduced representations (coherence selection).
  auto reduce_to = [&data](size_t target_dim) {
    ReductionOptions options;
    options.scaling = PcaScaling::kCorrelation;
    options.strategy = SelectionStrategy::kCoherenceOrder;
    options.target_dim = target_dim;
    Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
    COHERE_CHECK(pipeline.ok());
    return pipeline->TransformDataset(data).features();
  };
  const Matrix reduced_13 = reduce_to(13);
  const Matrix reduced_4 = reduce_to(4);

  TextTable table({"space", "engine", "dist evals", "nodes/cells",
                   "refined", "us/query"});
  constexpr size_t kK = 3;

  for (const auto& [tag, space] :
       {std::pair<const char*, const Matrix*>{"full (166-d)", &full_space},
        std::pair<const char*, const Matrix*>{"reduced (13-d)", &reduced_13},
        std::pair<const char*, const Matrix*>{"reduced (4-d)", &reduced_4}}) {
    LinearScanIndex scan(*space, metric.get());
    KdTreeIndex tree(*space, metric.get(), 16);
    VaFileIndex va(*space, metric.get(), 5);
    RStarTreeIndex rstar(*space, metric.get(), 16);
    Report(&table, tag, "linear_scan", Measure(scan, *space, kK));
    Report(&table, tag, "kd_tree", Measure(tree, *space, kK));
    Report(&table, tag, "va_file", Measure(va, *space, kK));
    Report(&table, tag, "rstar_tree", Measure(rstar, *space, kK));
  }

  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nIn the full space the kd-tree's optimistic bound prunes nothing "
      "(every point is evaluated) and the VA-file pays its bound scan at "
      "full width. Reduction shrinks the per-distance cost immediately; the "
      "partition pruning itself recovers as the dimensionality drops (the "
      "kd-tree prunes weakly at 13-d with only %zu points and sharply at "
      "4-d) — the paper's argument that greater aggression in reduction "
      "translates directly to index performance.\n",
      data.NumRecords());
  // The registry has been accumulating the same counters underneath the
  // QueryStats this table was built from; drop them as a machine-readable
  // artifact next to the figure CSVs.
  EmitMetricsSnapshot("index_pruning");
  return 0;
}
