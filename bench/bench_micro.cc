// google-benchmark microbenchmarks for the numerical kernels and k-NN
// engines, including the eigensolver ablation (tridiagonal QL vs cyclic
// Jacobi) called out in DESIGN.md.
#include <benchmark/benchmark.h>

#include "common/parallel.h"
#include "data/synthetic.h"
#include "index/kd_tree.h"
#include "index/linear_scan.h"
#include "index/rstar_tree.h"
#include "index/va_file.h"
#include "linalg/jacobi_eigen.h"
#include "linalg/power_iteration.h"
#include "linalg/svd.h"
#include "linalg/symmetric_eigen.h"
#include "reduction/coherence.h"
#include "reduction/pca.h"
#include "stats/covariance.h"
#include "stats/rng.h"

namespace cohere {
namespace {

Matrix RandomSymmetricMatrix(size_t n, uint64_t seed) {
  Rng rng(seed);
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      const double v = rng.Gaussian();
      a.At(i, j) = v;
      a.At(j, i) = v;
    }
  }
  return a;
}

Matrix RandomDataMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix a(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) a.At(i, j) = rng.Gaussian();
  }
  return a;
}

void BM_SymmetricEigen(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix a = RandomSymmetricMatrix(n, 1);
  for (auto _ : state) {
    auto result = SymmetricEigen(a);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SymmetricEigen)->Arg(16)->Arg(34)->Arg(64)->Arg(128)->Arg(279);

void BM_JacobiEigen(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix a = RandomSymmetricMatrix(n, 2);
  for (auto _ : state) {
    auto result = JacobiEigen(a);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(16)->Arg(34)->Arg(64);

// Geometric-decay SPD input: the regime TopKEigen targets.
Matrix DecaySpdMatrix(size_t n, uint64_t seed) {
  Matrix data = RandomDataMatrix(2 * n, n, seed);
  // Stretch leading columns so the covariance spectrum decays fast.
  for (size_t i = 0; i < data.rows(); ++i) {
    double scale = 8.0;
    for (size_t j = 0; j < std::min<size_t>(10, n); ++j) {
      data.At(i, j) *= scale;
      scale *= 0.75;
    }
  }
  return CovarianceMatrix(data);
}

void BM_TopKEigen(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix a = DecaySpdMatrix(n, 12);
  TopKEigenOptions options;
  options.k = 10;
  for (auto _ : state) {
    auto result = TopKEigen(a, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TopKEigen)->Arg(64)->Arg(128)->Arg(279);

void BM_JacobiSvd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix a = RandomDataMatrix(4 * n, n, 3);
  for (auto _ : state) {
    auto result = JacobiSvd(a);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_JacobiSvd)->Arg(16)->Arg(32)->Arg(64);

void BM_Gemm(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix a = RandomDataMatrix(n, n, 4);
  const Matrix b = RandomDataMatrix(n, n, 5);
  for (auto _ : state) {
    Matrix c = Multiply(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_CovarianceMatrix(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Matrix data = RandomDataMatrix(500, d, 6);
  for (auto _ : state) {
    Matrix cov = CovarianceMatrix(data);
    benchmark::DoNotOptimize(cov);
  }
}
BENCHMARK(BM_CovarianceMatrix)->Arg(34)->Arg(166)->Arg(279);

void BM_PcaFit(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Matrix data = RandomDataMatrix(450, d, 7);
  for (auto _ : state) {
    auto model = PcaModel::Fit(data, PcaScaling::kCorrelation);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_PcaFit)->Arg(34)->Arg(166)->Arg(279);

void BM_ComputeCoherence(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Matrix data = RandomDataMatrix(450, d, 8);
  auto model = PcaModel::Fit(data, PcaScaling::kCorrelation);
  for (auto _ : state) {
    CoherenceAnalysis coherence = ComputeCoherence(*model, data);
    benchmark::DoNotOptimize(coherence);
  }
}
BENCHMARK(BM_ComputeCoherence)->Arg(34)->Arg(166)->Arg(279);

// k-NN engines at low (indexable) and high (curse-afflicted) dimensionality.
template <typename IndexT>
std::unique_ptr<KnnIndex> MakeIndex(const Matrix& data, const Metric* metric);

template <>
std::unique_ptr<KnnIndex> MakeIndex<LinearScanIndex>(const Matrix& data,
                                                     const Metric* metric) {
  return std::make_unique<LinearScanIndex>(data, metric);
}
template <>
std::unique_ptr<KnnIndex> MakeIndex<KdTreeIndex>(const Matrix& data,
                                                 const Metric* metric) {
  return std::make_unique<KdTreeIndex>(data, metric, 16);
}
template <>
std::unique_ptr<KnnIndex> MakeIndex<VaFileIndex>(const Matrix& data,
                                                 const Metric* metric) {
  return std::make_unique<VaFileIndex>(data, metric, 5);
}
template <>
std::unique_ptr<KnnIndex> MakeIndex<RStarTreeIndex>(const Matrix& data,
                                                    const Metric* metric) {
  return std::make_unique<RStarTreeIndex>(data, metric, 16);
}

template <typename IndexT>
void BM_KnnQuery(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Matrix data = RandomDataMatrix(2000, d, 9);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  auto index = MakeIndex<IndexT>(data, metric.get());
  Rng rng(10);
  const Vector query = rng.GaussianVector(d);
  for (auto _ : state) {
    auto result = index->Query(query, 5);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK_TEMPLATE(BM_KnnQuery, LinearScanIndex)->Arg(4)->Arg(13)->Arg(166);
BENCHMARK_TEMPLATE(BM_KnnQuery, KdTreeIndex)->Arg(4)->Arg(13)->Arg(166);
BENCHMARK_TEMPLATE(BM_KnnQuery, VaFileIndex)->Arg(4)->Arg(13)->Arg(166);
BENCHMARK_TEMPLATE(BM_KnnQuery, RStarTreeIndex)->Arg(4)->Arg(13);

void BM_KdTreeBuild(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Matrix data = RandomDataMatrix(2000, d, 11);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  for (auto _ : state) {
    KdTreeIndex index(data, metric.get(), 16);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_KdTreeBuild)->Arg(4)->Arg(34);

// Serial-vs-parallel sweeps for the kernels routed through the shared
// thread pool (common/parallel.h). range(0) is the problem size, range(1)
// the thread count; the {size, 1} rows are the serial baseline the parallel
// rows are measured against. The pool configuration is restored to
// automatic sizing after each benchmark so the rest of the suite is
// unaffected.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(size_t threads) { SetParallelThreadCount(threads); }
  ~ThreadCountGuard() { SetParallelThreadCount(0); }
};

void BM_GemmThreads(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ThreadCountGuard guard(static_cast<size_t>(state.range(1)));
  const Matrix a = RandomDataMatrix(n, n, 4);
  const Matrix b = RandomDataMatrix(n, n, 5);
  for (auto _ : state) {
    Matrix c = Multiply(a, b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_GemmThreads)
    ->Args({256, 1})->Args({256, 2})->Args({256, 4})
    ->UseRealTime();

void BM_CovarianceMatrixThreads(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  ThreadCountGuard guard(static_cast<size_t>(state.range(1)));
  const Matrix data = RandomDataMatrix(500, d, 6);
  for (auto _ : state) {
    Matrix cov = CovarianceMatrix(data);
    benchmark::DoNotOptimize(cov);
  }
}
BENCHMARK(BM_CovarianceMatrixThreads)
    ->Args({279, 1})->Args({279, 2})->Args({279, 4})
    ->UseRealTime();

void BM_ComputeCoherenceThreads(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  ThreadCountGuard guard(static_cast<size_t>(state.range(1)));
  const Matrix data = RandomDataMatrix(450, d, 8);
  auto model = PcaModel::Fit(data, PcaScaling::kCorrelation);
  for (auto _ : state) {
    CoherenceAnalysis coherence = ComputeCoherence(*model, data);
    benchmark::DoNotOptimize(coherence);
  }
}
BENCHMARK(BM_ComputeCoherenceThreads)
    ->Args({279, 1})->Args({279, 2})->Args({279, 4})
    ->UseRealTime();

void BM_QueryBatchThreads(benchmark::State& state) {
  const size_t d = 166;
  ThreadCountGuard guard(static_cast<size_t>(state.range(1)));
  const Matrix data = RandomDataMatrix(2000, d, 9);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  LinearScanIndex index(data, metric.get());
  const Matrix queries =
      RandomDataMatrix(static_cast<size_t>(state.range(0)), d, 10);
  for (auto _ : state) {
    auto result = index.QueryBatch(queries, 5);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_QueryBatchThreads)
    ->Args({64, 1})->Args({64, 2})->Args({64, 4})
    ->UseRealTime();

void BM_LatentFactorGeneration(benchmark::State& state) {
  LatentFactorConfig config;
  config.num_records = 452;
  config.num_attributes = static_cast<size_t>(state.range(0));
  config.num_concepts = 10;
  for (auto _ : state) {
    Dataset d = GenerateLatentFactor(config);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_LatentFactorGeneration)->Arg(34)->Arg(279);

}  // namespace
}  // namespace cohere

BENCHMARK_MAIN();
