#include "figure_common.h"

#include <cstdio>
#include <filesystem>

#include <fstream>

#include "common/check.h"
#include "common/logging.h"
#include "eval/report.h"
#include "obs/metrics.h"
#include "obs/tracing.h"
#include "reduction/selection.h"

namespace cohere {
namespace bench {

std::string ResultsDir() {
  static const std::string dir = [] {
    std::string path = "results";
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec) {
      COHERE_LOG(Warning) << "cannot create " << path << ": " << ec.message();
    }
    return path;
  }();
  return dir;
}

std::string ResultPath(const std::string& file_name) {
  return ResultsDir() + "/" + file_name;
}

ScalingAnalysis AnalyzeScaling(const Dataset& dataset, PcaScaling scaling,
                               size_t max_sweep_points) {
  ScalingAnalysis out;
  Result<PcaModel> model = PcaModel::Fit(dataset.features(), scaling);
  COHERE_CHECK_MSG(model.ok(), model.status().ToString().c_str());
  out.model = std::move(*model);
  out.coherence = ComputeCoherence(out.model, dataset.features());
  out.eigen_sweep = SweepOrdering(dataset, out.model,
                                  OrderByEigenvalue(out.model),
                                  max_sweep_points);
  return out;
}

DimensionSweepResult SweepOrdering(const Dataset& dataset,
                                   const PcaModel& model,
                                   const std::vector<size_t>& ordering,
                                   size_t max_sweep_points) {
  const Matrix scores = model.ProjectRows(dataset.features(), ordering);
  return SweepPredictionAccuracy(scores, dataset.labels(), /*k=*/3,
                                 MakeSweepDims(ordering.size(),
                                               max_sweep_points));
}

void EmitScatter(const ScalingAnalysis& analysis, const std::string& title,
                 const std::string& csv_name) {
  std::printf("\n--- %s ---\n", title.c_str());
  const Vector& eigenvalues = analysis.model.eigenvalues();
  const Vector& coherence = analysis.coherence.probability;
  const size_t d = eigenvalues.size();

  TextTable table({"eigen_rank", "eigenvalue", "coherence_probability"});
  // Print a readable subset for large d; the CSV always carries all rows.
  const size_t stride = d > 40 ? d / 40 + 1 : 1;
  for (size_t i = 0; i < d; i += stride) {
    table.AddRow({std::to_string(i), FormatDouble(eigenvalues[i], 4),
                  FormatDouble(coherence[i], 4)});
  }
  std::fputs(table.Render().c_str(), stdout);

  std::vector<double> ranks(d);
  std::vector<double> eig(d);
  std::vector<double> coh(d);
  for (size_t i = 0; i < d; ++i) {
    ranks[i] = static_cast<double>(i);
    eig[i] = eigenvalues[i];
    coh[i] = coherence[i];
  }
  Status s = WriteSeriesCsv(ResultPath(csv_name),
                            {"eigen_rank", "eigenvalue", "coherence"},
                            {ranks, eig, coh});
  if (!s.ok()) COHERE_LOG(Warning) << s.ToString();
  std::printf("[series written to %s]\n", ResultPath(csv_name).c_str());
}

void EmitCoherenceByRank(const ScalingAnalysis& unscaled,
                         const ScalingAnalysis& scaled,
                         const std::string& title,
                         const std::string& csv_name) {
  std::printf("\n--- %s ---\n", title.c_str());
  const size_t d = scaled.coherence.dims();
  COHERE_CHECK_EQ(unscaled.coherence.dims(), d);

  TextTable table({"eigen_rank", "coherence_unscaled", "coherence_scaled"});
  const size_t stride = d > 40 ? d / 40 + 1 : 1;
  for (size_t i = 0; i < d; i += stride) {
    table.AddRow({std::to_string(i),
                  FormatDouble(unscaled.coherence.probability[i], 4),
                  FormatDouble(scaled.coherence.probability[i], 4)});
  }
  std::fputs(table.Render().c_str(), stdout);

  std::vector<double> ranks(d);
  std::vector<double> raw(d);
  std::vector<double> stu(d);
  for (size_t i = 0; i < d; ++i) {
    ranks[i] = static_cast<double>(i);
    raw[i] = unscaled.coherence.probability[i];
    stu[i] = scaled.coherence.probability[i];
  }
  Status s = WriteSeriesCsv(
      ResultPath(csv_name),
      {"eigen_rank", "coherence_unscaled", "coherence_scaled"},
      {ranks, raw, stu});
  if (!s.ok()) COHERE_LOG(Warning) << s.ToString();
  std::printf("[series written to %s]\n", ResultPath(csv_name).c_str());
}

void EmitAccuracyCurves(const DimensionSweepResult& a,
                        const std::string& label_a,
                        const DimensionSweepResult& b,
                        const std::string& label_b, const std::string& title,
                        const std::string& csv_name) {
  std::printf("\n--- %s ---\n", title.c_str());
  COHERE_CHECK_EQ(a.points.size(), b.points.size());

  TextTable table({"dims", "accuracy_" + label_a, "accuracy_" + label_b});
  std::vector<double> dims;
  std::vector<double> acc_a;
  std::vector<double> acc_b;
  for (size_t i = 0; i < a.points.size(); ++i) {
    COHERE_CHECK_EQ(a.points[i].dims, b.points[i].dims);
    table.AddRow({std::to_string(a.points[i].dims),
                  FormatDouble(a.points[i].accuracy, 4),
                  FormatDouble(b.points[i].accuracy, 4)});
    dims.push_back(static_cast<double>(a.points[i].dims));
    acc_a.push_back(a.points[i].accuracy);
    acc_b.push_back(b.points[i].accuracy);
  }
  std::fputs(table.Render().c_str(), stdout);
  std::fputs(RenderAsciiChart(dims, {{label_a, acc_a}, {label_b, acc_b}})
                 .c_str(),
             stdout);
  std::printf("%s: best %.4f @ %zu dims | %s: best %.4f @ %zu dims\n",
              label_a.c_str(), a.BestAccuracy(), a.BestDims(),
              label_b.c_str(), b.BestAccuracy(), b.BestDims());

  Status s = WriteSeriesCsv(
      ResultPath(csv_name),
      {"dims", "accuracy_" + label_a, "accuracy_" + label_b},
      {dims, acc_a, acc_b});
  if (!s.ok()) COHERE_LOG(Warning) << s.ToString();
  std::printf("[series written to %s]\n", ResultPath(csv_name).c_str());
}

void RunDatasetFigureBlock(const Dataset& dataset,
                           const std::string& dataset_tag,
                           const std::string& scatter_figure,
                           const std::string& coherence_figure,
                           const std::string& accuracy_figure) {
  std::printf("=== %s: n=%zu d=%zu classes=%zu ===\n", dataset_tag.c_str(),
              dataset.NumRecords(), dataset.NumAttributes(),
              dataset.NumClasses());

  const ScalingAnalysis unscaled =
      AnalyzeScaling(dataset, PcaScaling::kCovariance);
  const ScalingAnalysis scaled =
      AnalyzeScaling(dataset, PcaScaling::kCorrelation);

  EmitScatter(scaled,
              scatter_figure + ": eigenvalue vs coherence (" + dataset_tag +
                  ", normalized)",
              dataset_tag + "_scatter.csv");
  EmitCoherenceByRank(unscaled, scaled,
                      coherence_figure + ": coherence by eigenvalue rank (" +
                          dataset_tag + ")",
                      dataset_tag + "_coherence_by_rank.csv");
  EmitAccuracyCurves(unscaled.eigen_sweep, "unscaled", scaled.eigen_sweep,
                     "scaled",
                     accuracy_figure + ": accuracy vs dims retained (" +
                         dataset_tag + ", k=3, eigenvalue order)",
                     dataset_tag + "_accuracy.csv");
  EmitMetricsSnapshot(dataset_tag);
}

void EmitMetricsSnapshot(const std::string& tag) {
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  std::printf("\n--- metrics after %s ---\n%s", tag.c_str(),
              snapshot.ToText().c_str());

  const std::string path = ResultPath(tag + "_metrics.json");
  std::ofstream out(path);
  if (!out) {
    COHERE_LOG(Warning) << "cannot write metrics snapshot to " << path;
    return;
  }
  out << snapshot.ToJson() << "\n";
  std::printf("[metrics snapshot written to %s]\n", path.c_str());

  // When the harness runs under the structured tracer (COHERE_TRACE=1 or
  // COHERE_TRACE_SLOW_US), drop the Perfetto-loadable trace next to the
  // snapshot as well.
  if (obs::Tracer::Enabled()) {
    const std::string trace_path = ResultPath(tag + "_trace.json");
    const Status written =
        obs::Tracer::Global().WriteChromeTrace(trace_path);
    if (!written.ok()) {
      COHERE_LOG(Warning) << "cannot write trace to " << trace_path << ": "
                          << written.ToString();
      return;
    }
    std::printf("[trace written to %s]\n", trace_path.c_str());
  }
}

}  // namespace bench
}  // namespace cohere
