// Reproduces Figures 9, 10 and 11 of the paper on the arrhythmia-like data
// set: eigenvalue-vs-coherence scatter, coherence by eigenvalue rank, and
// accuracy against retained dimensionality.
#include "figure_common.h"

#include "data/uci_like.h"

int main() {
  cohere::bench::RunDatasetFigureBlock(cohere::ArrhythmiaLike(), "arrhythmia",
                                       "Figure 9", "Figure 10", "Figure 11");
  return 0;
}
