// Reproduces Figures 12 and 13 of the paper on noisy data set A (the
// ionosphere-like data with 10 attributes replaced by high-amplitude
// uniform noise): the scatter plot showing poor matching between
// eigenvalues and coherence probabilities, and the accuracy curves
// comparing the eigenvalue ordering against the coherence ordering.
#include "figure_common.h"

#include <cstdio>

#include "data/uci_like.h"
#include "reduction/selection.h"

using namespace cohere;        // NOLINT(build/namespaces)
using namespace cohere::bench; // NOLINT(build/namespaces)

int main() {
  Dataset data = NoisyDataA();
  std::printf("=== noisy data set A: n=%zu d=%zu ===\n", data.NumRecords(),
              data.NumAttributes());

  // The corruption happens after studentization, so the paper's experiment
  // analyzes the covariance structure of the corrupted data directly.
  const ScalingAnalysis analysis =
      AnalyzeScaling(data, PcaScaling::kCovariance);
  EmitScatter(analysis,
              "Figure 12: poor matching between coherence and eigenvalues "
              "(noisy data set A)",
              "noisy_a_scatter.csv");

  const DimensionSweepResult coherence_sweep = SweepOrdering(
      data, analysis.model, OrderByCoherence(analysis.coherence));
  EmitAccuracyCurves(analysis.eigen_sweep, "eigenvalue_order",
                     coherence_sweep, "coherence_order",
                     "Figure 13: eigenvalue vs coherence ordering "
                     "(noisy data set A, k=3)",
                     "noisy_a_orderings.csv");

  const double variance_at_peak = analysis.model.VarianceRetainedFraction(
      TakePrefix(OrderByCoherence(analysis.coherence),
                 coherence_sweep.BestDims()));
  std::printf(
      "\nAt the coherence-ordering optimum (%zu dims) the retained variance "
      "is %.1f%% of the total — the paper reports 12.1%% for its noisy set "
      "A, i.e. aggressive reduction discarding most of the (noise) "
      "variance.\n",
      coherence_sweep.BestDims(), 100.0 * variance_at_peak);
  return 0;
}
