// Reproduces the Figure 1 illustration with measured data: the distribution
// of per-original-dimension contributions to a point's coordinate along two
// eigenvectors — one with a large eigenvalue but incoherent (wide)
// contributions, one with a smaller eigenvalue whose contributions agree.
//
// Uses noisy data set A, where eigenvector 0 is a high-variance noise
// direction and the top-coherence eigenvector is a concept.
#include <cstdio>

#include "data/uci_like.h"
#include "eval/report.h"
#include "figure_common.h"
#include "reduction/selection.h"
#include "stats/histogram.h"

using namespace cohere;        // NOLINT(build/namespaces)
using namespace cohere::bench; // NOLINT(build/namespaces)

namespace {

// Per-dimension contributions of record `row` along eigenvector `comp`,
// pooled over all records after sign-aligning each projection (so that
// agreement shows up as a right-shifted distribution as in the paper's
// sketch).
Vector PooledContributions(const PcaModel& model, const Matrix& data,
                           size_t comp) {
  const Matrix normalized = model.NormalizeRows(data);
  const size_t d = model.dims();
  Vector pooled(normalized.rows() * d);
  size_t out = 0;
  for (size_t r = 0; r < normalized.rows(); ++r) {
    double projection = 0.0;
    for (size_t j = 0; j < d; ++j) {
      projection += normalized.At(r, j) * model.eigenvectors().At(j, comp);
    }
    const double sign = projection >= 0.0 ? 1.0 : -1.0;
    for (size_t j = 0; j < d; ++j) {
      pooled[out++] =
          sign * normalized.At(r, j) * model.eigenvectors().At(j, comp);
    }
  }
  return pooled;
}

}  // namespace

int main() {
  Dataset data = NoisyDataA();
  Result<PcaModel> pca =
      PcaModel::Fit(data.features(), PcaScaling::kCovariance);
  COHERE_CHECK(pca.ok());
  const CoherenceAnalysis coherence = ComputeCoherence(*pca, data.features());

  const size_t vector_a = 0;  // largest eigenvalue (noise)
  const size_t vector_b = OrderByCoherence(coherence)[0];  // most coherent

  std::printf(
      "=== Figure 1: contribution distributions for two eigenvectors ===\n"
      "Eigenvector A: rank %zu, eigenvalue %.3f, coherence %.3f "
      "(largest variance)\n"
      "Eigenvector B: rank %zu, eigenvalue %.3f, coherence %.3f "
      "(most coherent)\n\n",
      vector_a, pca->eigenvalues()[vector_a],
      coherence.probability[vector_a], vector_b,
      pca->eigenvalues()[vector_b], coherence.probability[vector_b]);

  const Vector contributions_a =
      PooledContributions(*pca, data.features(), vector_a);
  const Vector contributions_b =
      PooledContributions(*pca, data.features(), vector_b);

  constexpr double kLo = -0.6;
  constexpr double kHi = 0.6;
  constexpr size_t kBins = 25;
  Histogram hist_a(kLo, kHi, kBins);
  Histogram hist_b(kLo, kHi, kBins);
  hist_a.AddAll(contributions_a);
  hist_b.AddAll(contributions_b);

  std::printf("--- Eigenvector A contributions (wide => incoherent) ---\n%s\n",
              hist_a.ToAscii(42).c_str());
  std::printf("--- Eigenvector B contributions (agreeing => coherent) ---\n%s\n",
              hist_b.ToAscii(42).c_str());

  std::vector<double> centers(kBins);
  std::vector<double> frac_a(kBins);
  std::vector<double> frac_b(kBins);
  for (size_t b = 0; b < kBins; ++b) {
    centers[b] = hist_a.BinCenter(b);
    frac_a[b] = hist_a.Fraction(b);
    frac_b[b] = hist_b.Fraction(b);
  }
  Status s = WriteSeriesCsv(ResultPath("fig1_contributions.csv"),
                            {"contribution", "fraction_vector_a",
                             "fraction_vector_b"},
                            {centers, frac_a, frac_b});
  if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
  std::printf("[series written to %s]\n",
              ResultPath("fig1_contributions.csv").c_str());
  return 0;
}
