// Distance-function ablation connecting to the paper's reference [1]
// (Aggarwal, Hinneburg & Keim, ICDT 2001): lower Lp exponents keep more
// distance contrast in high dimensionality. Measures feature-stripped k=3
// accuracy under L2, L1 and fractional L0.5 on the three UCI-like data
// sets, in the full space and in the coherence-reduced space — showing that
// aggressive reduction makes the metric choice much less critical.
#include <cstdio>

#include "data/uci_like.h"
#include "eval/knn_quality.h"
#include "eval/report.h"
#include "figure_common.h"
#include "reduction/pipeline.h"

using namespace cohere;        // NOLINT(build/namespaces)
using namespace cohere::bench; // NOLINT(build/namespaces)

namespace {

double Accuracy(const Matrix& features, const std::vector<int>& labels,
                const Metric& metric) {
  return KnnPredictionAccuracy(features, labels, 3, metric);
}

}  // namespace

int main() {
  std::printf(
      "=== Metric ablation: L2 vs L1 vs fractional L0.5, full vs reduced "
      "space (k=3 accuracy) ===\n\n");

  auto l2 = MakeMetric(MetricKind::kEuclidean);
  auto l1 = MakeMetric(MetricKind::kManhattan);
  auto l_half = MakeMetric(MetricKind::kFractional, 0.5);

  TextTable table({"data set", "space", "L2", "L1", "L0.5"});
  std::vector<double> csv_l2_full;
  std::vector<double> csv_l2_reduced;
  std::vector<double> csv_lhalf_full;

  const size_t target_dims[] = {13, 10, 10};
  size_t dataset_index = 0;
  for (const Dataset& data :
       {MuskLike(), IonosphereLike(), ArrhythmiaLike()}) {
    // Full-dimensional, studentized (so Lp exponents compare fairly across
    // the heterogeneous attribute scales).
    ReductionOptions full_options;
    full_options.scaling = PcaScaling::kCorrelation;
    full_options.strategy = SelectionStrategy::kEigenvalueOrder;
    full_options.target_dim = data.NumAttributes();
    Result<ReductionPipeline> full_pipeline =
        ReductionPipeline::Fit(data, full_options);
    COHERE_CHECK(full_pipeline.ok());
    const Matrix full = full_pipeline->TransformDataset(data).features();

    ReductionOptions reduced_options;
    reduced_options.scaling = PcaScaling::kCorrelation;
    reduced_options.strategy = SelectionStrategy::kCoherenceOrder;
    reduced_options.target_dim = target_dims[dataset_index];
    Result<ReductionPipeline> reduced_pipeline =
        ReductionPipeline::Fit(data, reduced_options);
    COHERE_CHECK(reduced_pipeline.ok());
    const Matrix reduced =
        reduced_pipeline->TransformDataset(data).features();

    const double full_l2 = Accuracy(full, data.labels(), *l2);
    const double full_l1 = Accuracy(full, data.labels(), *l1);
    const double full_lh = Accuracy(full, data.labels(), *l_half);
    const double red_l2 = Accuracy(reduced, data.labels(), *l2);
    const double red_l1 = Accuracy(reduced, data.labels(), *l1);
    const double red_lh = Accuracy(reduced, data.labels(), *l_half);

    table.AddRow({data.name(), "full", FormatDouble(full_l2, 4),
                  FormatDouble(full_l1, 4), FormatDouble(full_lh, 4)});
    table.AddRow({data.name(),
                  "reduced-" + std::to_string(target_dims[dataset_index]),
                  FormatDouble(red_l2, 4), FormatDouble(red_l1, 4),
                  FormatDouble(red_lh, 4)});
    csv_l2_full.push_back(full_l2);
    csv_l2_reduced.push_back(red_l2);
    csv_lhalf_full.push_back(full_lh);
    ++dataset_index;
  }

  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nIn the full space the choice of metric moves accuracy by several "
      "points; after coherent reduction every metric improves and the "
      "spread between them narrows — the representation itself now carries "
      "the meaning, the paper's 'automatic distance function correction'. "
      "(On this Gaussian-noise simulation L2 is the best exponent "
      "throughout; the fractional-metric advantage of [1] appears on "
      "heavy-tailed raw data, which the contrast bench probes "
      "separately.)\n");

  Status s = WriteSeriesCsv(ResultPath("fractional_metrics.csv"),
                            {"l2_full", "l2_reduced", "lhalf_full"},
                            {csv_l2_full, csv_l2_reduced, csv_lhalf_full});
  if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
  std::printf("[series written to %s]\n",
              ResultPath("fractional_metrics.csv").c_str());
  return 0;
}
