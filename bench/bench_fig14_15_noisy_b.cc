// Reproduces Figures 14 and 15 of the paper on noisy data set B (the
// arrhythmia-like data with 10 attributes replaced by high-amplitude
// uniform noise): the eigenvalue/coherence scatter and the ordering
// comparison accuracy curves.
#include "figure_common.h"

#include <cstdio>

#include "data/uci_like.h"
#include "reduction/selection.h"

using namespace cohere;        // NOLINT(build/namespaces)
using namespace cohere::bench; // NOLINT(build/namespaces)

int main() {
  Dataset data = NoisyDataB();
  std::printf("=== noisy data set B: n=%zu d=%zu ===\n", data.NumRecords(),
              data.NumAttributes());

  const ScalingAnalysis analysis =
      AnalyzeScaling(data, PcaScaling::kCovariance);
  EmitScatter(analysis,
              "Figure 14: poor matching between coherence and eigenvalues "
              "(noisy data set B)",
              "noisy_b_scatter.csv");

  const DimensionSweepResult coherence_sweep = SweepOrdering(
      data, analysis.model, OrderByCoherence(analysis.coherence));
  EmitAccuracyCurves(analysis.eigen_sweep, "eigenvalue_order",
                     coherence_sweep, "coherence_order",
                     "Figure 15: eigenvalue vs coherence ordering "
                     "(noisy data set B, k=3)",
                     "noisy_b_orderings.csv");

  std::printf(
      "\nThe coherence-ordering curve peaks at %zu dims (the paper reports "
      "11, just before the high-eigenvalue noise outliers enter); the "
      "eigenvalue ordering needs %zu dims to reach its best accuracy.\n",
      coherence_sweep.BestDims(), analysis.eigen_sweep.BestDims());
  return 0;
}
