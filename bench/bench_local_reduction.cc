// Ablation for the paper's Section 3.1 extension: on data composed of
// several populations with distinct concept subspaces (global implicit
// dimensionality = sum of the per-population ones), compare
//   (a) full-dimensional search,
//   (b) one global coherence reduction,
//   (c) LocalReducedSearchEngine with plain k-means localities,
//   (d) LocalReducedSearchEngine with ORCLUS-style projected clustering,
// all at the same reduced dimensionality per representation.
#include <cstdio>

#include "core/local_engine.h"
#include "data/synthetic.h"
#include "eval/knn_quality.h"
#include "eval/report.h"
#include "figure_common.h"
#include "reduction/pipeline.h"

using namespace cohere;        // NOLINT(build/namespaces)
using namespace cohere::bench; // NOLINT(build/namespaces)

namespace {

Dataset MixedPopulations(size_t num_populations, uint64_t seed) {
  MultiPopulationConfig config;
  LatentFactorConfig pop;
  pop.num_records = 180;
  pop.num_attributes = 40;
  pop.num_concepts = 6;
  pop.num_classes = 4;
  pop.class_separation = 1.0;
  pop.noise_stddev = 0.4;
  for (size_t p = 0; p < num_populations; ++p) {
    pop.seed = seed + 100 * p;
    config.populations.push_back(pop);
  }
  config.center_separation = 2.0;
  config.seed = seed + 1;
  return GenerateMultiPopulation(config);
}

double EngineAccuracy(const Dataset& data,
                      const LocalReducedSearchEngine& engine) {
  size_t matches = 0;
  size_t slots = 0;
  for (size_t i = 0; i < data.NumRecords(); ++i) {
    for (const Neighbor& n : engine.Query(data.Record(i), 3, i)) {
      ++slots;
      if (data.label(n.index) == data.label(i)) ++matches;
    }
  }
  return static_cast<double>(matches) / static_cast<double>(slots);
}

}  // namespace

int main() {
  std::printf(
      "=== Local (projected-clustering) vs global reduction on "
      "multi-population data (k=3 accuracy) ===\n\n");

  constexpr size_t kTargetDim = 6;
  TextTable table({"populations", "full-dim", "global reduced",
                   "local k-means", "local projected"});
  std::vector<double> csv_pops;
  std::vector<double> csv_global;
  std::vector<double> csv_projected;

  auto metric = MakeMetric(MetricKind::kEuclidean);
  for (size_t populations : {2u, 3u, 4u}) {
    Dataset data = MixedPopulations(populations, 404 + populations);

    const double full_accuracy =
        KnnPredictionAccuracy(data.features(), data.labels(), 3, *metric);

    ReductionOptions global_options;
    global_options.scaling = PcaScaling::kCorrelation;
    global_options.strategy = SelectionStrategy::kCoherenceOrder;
    global_options.target_dim = kTargetDim;
    Result<ReductionPipeline> global =
        ReductionPipeline::Fit(data, global_options);
    COHERE_CHECK(global.ok());
    const double global_accuracy = KnnPredictionAccuracy(
        global->TransformDataset(data).features(), data.labels(), 3,
        *metric);

    LocalEngineOptions local_options;
    local_options.num_clusters = populations;
    local_options.cluster_subspace_dim = 10;
    local_options.reduction.scaling = PcaScaling::kCorrelation;
    local_options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
    local_options.reduction.target_dim = kTargetDim;

    local_options.use_projected_clustering = false;
    Result<LocalReducedSearchEngine> kmeans_engine =
        LocalReducedSearchEngine::Build(data, local_options);
    COHERE_CHECK(kmeans_engine.ok());
    const double kmeans_accuracy = EngineAccuracy(data, *kmeans_engine);

    local_options.use_projected_clustering = true;
    Result<LocalReducedSearchEngine> projected_engine =
        LocalReducedSearchEngine::Build(data, local_options);
    COHERE_CHECK(projected_engine.ok());
    const double projected_accuracy =
        EngineAccuracy(data, *projected_engine);

    table.AddRow({std::to_string(populations), FormatDouble(full_accuracy, 4),
                  FormatDouble(global_accuracy, 4),
                  FormatDouble(kmeans_accuracy, 4),
                  FormatDouble(projected_accuracy, 4)});
    csv_pops.push_back(static_cast<double>(populations));
    csv_global.push_back(global_accuracy);
    csv_projected.push_back(projected_accuracy);
  }

  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nAll reduced representations use %zu dimensions. One global axis "
      "system degrades as more concept subspaces pile up, while per-locality "
      "coherence reduction tracks the full-dimensional quality — the "
      "projected-clustering decomposition the paper's Section 3.1 "
      "proposes.\n",
      kTargetDim);

  Status s = WriteSeriesCsv(
      ResultPath("local_reduction.csv"),
      {"populations", "global_reduced", "local_projected"},
      {csv_pops, csv_global, csv_projected});
  if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
  std::printf("[series written to %s]\n",
              ResultPath("local_reduction.csv").c_str());
  return 0;
}
