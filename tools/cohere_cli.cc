// cohere command-line tool: coherence analysis, reduction and k-NN queries
// over CSV/ARFF files without writing any C++.
//
//   cohere_cli analyze <data-file> [--scaling cov|corr]
//   cohere_cli reduce  <data-file> <output.csv> [--dims N]
//                      [--strategy coherence|eigenvalue|threshold|energy]
//                      [--scaling cov|corr]
//   cohere_cli query   <data-file> --row R [--k K] [--dims N]
//                      [--engine static|local] [--clusters N] [--probes P]
//   cohere_cli demo    (self-contained smoke run on synthetic data)
//
// Every command additionally accepts `--metrics text|json|openmetrics` to
// dump the process-wide observability registry (counters, gauges, latency
// histogram quantiles; `openmetrics` is the Prometheus-scrapeable text
// exposition) after the command finishes, `--metrics-out FILE` to write the
// snapshot to a file (implies `--metrics text` when the format flag is
// absent), `--trace-out FILE` to capture the command under the structured
// tracer and write a Chrome trace_event JSON file loadable in Perfetto,
// and `--query-log FILE` to capture the wide-event query log and drain it
// to JSONL. `query` also takes `--explain` (with optional `--explain-out
// FILE`) to emit the per-query EXPLAIN profile as JSON. An unwritable
// output path is a hard error (nonzero exit).
//
// Data files ending in .arff are parsed as ARFF; anything else as CSV with
// the last column as the class attribute (use --no-label for unlabeled
// CSV). Missing values are mean-imputed.
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "common/string_util.h"
#include "core/engine.h"
#include "core/local_engine.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/tracing.h"
#include "data/arff.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "eval/knn_quality.h"
#include "eval/report.h"
#include "reduction/selection.h"

namespace cohere {
namespace {

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;
  bool no_label = false;
};

Args ParseArgs(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--no-label") {
      args.no_label = true;
    } else if (arg == "--explain") {
      // Boolean flag: must not consume the next token as a value.
      args.flags["explain"] = "";
    } else if (arg == "--admission") {
      // Boolean flag (same rule as --explain).
      args.flags["admission"] = "";
    } else if (arg.rfind("--", 0) == 0) {
      std::string key = arg.substr(2);
      std::string value;
      if (i + 1 < argc) value = argv[++i];
      args.flags[key] = value;
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

Result<Dataset> LoadData(const std::string& path, bool no_label) {
  if (path.size() > 5 &&
      EqualsIgnoreCase(path.substr(path.size() - 5), ".arff")) {
    return LoadArff(path);
  }
  CsvOptions options;
  options.label_column = no_label ? CsvOptions::kNoLabelColumn : -1;
  options.missing_values = MissingValuePolicy::kImputeColumnMean;
  options.has_header = false;
  Result<Dataset> loaded = LoadCsv(path, options);
  if (!loaded.ok() && !no_label) {
    // Retry with a header line; common for exported CSVs.
    options.has_header = true;
    return LoadCsv(path, options);
  }
  return loaded;
}

PcaScaling ScalingFromFlags(const Args& args) {
  auto it = args.flags.find("scaling");
  if (it != args.flags.end() && (it->second == "cov" ||
                                 it->second == "covariance")) {
    return PcaScaling::kCovariance;
  }
  return PcaScaling::kCorrelation;
}

int Analyze(const Dataset& data, PcaScaling scaling) {
  Result<PcaModel> pca = PcaModel::Fit(data.features(), scaling);
  if (!pca.ok()) {
    std::fprintf(stderr, "PCA failed: %s\n", pca.status().ToString().c_str());
    return 1;
  }
  const CoherenceAnalysis coherence = ComputeCoherence(*pca, data.features());
  const std::vector<size_t> order = OrderByCoherence(coherence);
  const size_t cut = DetectSeparatedPrefix(coherence.probability, order);

  std::printf("data: %zu records x %zu attributes", data.NumRecords(),
              data.NumAttributes());
  if (data.HasLabels()) std::printf(", %zu classes", data.NumClasses());
  std::printf("\nPCA scaling: %s\n\n", PcaScalingName(scaling));

  TextTable table({"rank", "eigenvalue", "coherence", "variance%"});
  const double total = pca->TotalVariance();
  const size_t shown = std::min<size_t>(data.NumAttributes(), 20);
  for (size_t i = 0; i < shown; ++i) {
    table.AddRow({std::to_string(i),
                  FormatDouble(pca->eigenvalues()[i], 4),
                  FormatDouble(coherence.probability[i], 4),
                  FormatPercent(total > 0 ? pca->eigenvalues()[i] / total
                                          : 0.0)});
  }
  std::fputs(table.Render().c_str(), stdout);
  if (shown < data.NumAttributes()) {
    std::printf("... (%zu more)\n", data.NumAttributes() - shown);
  }
  std::printf(
      "\ncoherence cut-off heuristic keeps %zu direction(s); "
      "highest-coherence directions (eigen rank): ",
      cut);
  for (size_t i = 0; i < std::min<size_t>(cut, 10); ++i) {
    std::printf("%zu ", order[i]);
  }
  std::printf("\n");
  return 0;
}

int Reduce(const Dataset& data, const Args& args,
           const std::string& output) {
  ReductionOptions options;
  options.scaling = ScalingFromFlags(args);
  auto strategy_it = args.flags.find("strategy");
  const std::string strategy =
      strategy_it == args.flags.end() ? "coherence" : strategy_it->second;
  if (strategy == "coherence") {
    options.strategy = SelectionStrategy::kCoherenceOrder;
  } else if (strategy == "eigenvalue") {
    options.strategy = SelectionStrategy::kEigenvalueOrder;
  } else if (strategy == "threshold") {
    options.strategy = SelectionStrategy::kRelativeThreshold;
  } else if (strategy == "energy") {
    options.strategy = SelectionStrategy::kEnergyFraction;
  } else {
    std::fprintf(stderr, "unknown strategy '%s'\n", strategy.c_str());
    return 1;
  }
  auto dims_it = args.flags.find("dims");
  if (dims_it != args.flags.end()) {
    Result<long long> dims = ParseInt(dims_it->second);
    if (!dims.ok() || *dims <= 0) {
      std::fprintf(stderr, "bad --dims value\n");
      return 1;
    }
    options.target_dim = static_cast<size_t>(*dims);
  }

  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "reduction failed: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", pipeline->Describe().c_str());
  Dataset reduced = pipeline->TransformDataset(data);
  Status written = WriteCsv(reduced, output);
  if (!written.ok()) {
    std::fprintf(stderr, "write failed: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu x %zu to %s\n", reduced.NumRecords(),
              reduced.NumAttributes(), output.c_str());
  return 0;
}

int QueryCmd(const Dataset& data, const Args& args) {
  auto row_it = args.flags.find("row");
  if (row_it == args.flags.end()) {
    std::fprintf(stderr, "query requires --row R\n");
    return 1;
  }
  Result<long long> row = ParseInt(row_it->second);
  if (!row.ok() || *row < 0 ||
      static_cast<size_t>(*row) >= data.NumRecords()) {
    std::fprintf(stderr, "bad --row value\n");
    return 1;
  }
  size_t k = 5;
  if (auto it = args.flags.find("k"); it != args.flags.end()) {
    Result<long long> parsed = ParseInt(it->second);
    if (!parsed.ok() || *parsed <= 0) {
      std::fprintf(stderr, "bad --k value\n");
      return 1;
    }
    k = static_cast<size_t>(*parsed);
  }

  ReductionOptions reduction;
  reduction.scaling = ScalingFromFlags(args);
  reduction.strategy = SelectionStrategy::kCoherenceOrder;
  if (auto it = args.flags.find("dims"); it != args.flags.end()) {
    Result<long long> dims = ParseInt(it->second);
    if (!dims.ok() || *dims <= 0) {
      std::fprintf(stderr, "bad --dims value\n");
      return 1;
    }
    reduction.target_dim = static_cast<size_t>(*dims);
  }
  double deadline_us = 0.0;
  if (auto it = args.flags.find("deadline-us"); it != args.flags.end()) {
    Result<double> deadline = ParseDouble(it->second);
    if (!deadline.ok() || *deadline < 0.0) {
      std::fprintf(stderr, "bad --deadline-us value\n");
      return 1;
    }
    deadline_us = *deadline;
  }
  size_t cache_budget = 0;
  if (auto it = args.flags.find("cache-budget"); it != args.flags.end()) {
    Result<long long> parsed = ParseInt(it->second);
    if (!parsed.ok() || *parsed < 0) {
      std::fprintf(stderr, "bad --cache-budget value\n");
      return 1;
    }
    cache_budget = static_cast<size_t>(*parsed);
  }
  const bool explain = args.flags.count("explain") != 0;
  const bool admission = args.flags.count("admission") != 0;
  // Prints the captured EXPLAIN profile, or writes it to --explain-out.
  auto emit_explain = [&](const ServingCore& serving) -> int {
    obs::QueryProfile profile;
    if (!serving.LastProfile(&profile)) {
      std::fprintf(stderr, "no explain profile captured\n");
      return 1;
    }
    const std::string json = profile.ToJson();
    auto out_it = args.flags.find("explain-out");
    if (out_it != args.flags.end() && !out_it->second.empty()) {
      FILE* f = std::fopen(out_it->second.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write explain profile to %s: %s\n",
                     out_it->second.c_str(), std::strerror(errno));
        return 1;
      }
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("explain profile written to %s\n", out_it->second.c_str());
    } else {
      std::printf("\n-- explain --\n%s", json.c_str());
    }
    return 0;
  };
  auto print_cache_stats = [](const ServingCore& serving) {
    const cache::ResultCache* cache = serving.result_cache();
    if (cache == nullptr) return;
    const cache::ResultCacheStats cs = cache->Stats();
    std::printf("cache: budget %llu bytes, %llu entries, %llu hits / %llu "
                "misses (leave-one-out queries bypass the cache)\n",
                static_cast<unsigned long long>(cache->budget_bytes()),
                static_cast<unsigned long long>(cs.entries),
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses));
  };

  const std::string engine_kind = [&] {
    auto it = args.flags.find("engine");
    return it == args.flags.end() ? std::string("static") : it->second;
  }();

  const size_t query_row = static_cast<size_t>(*row);
  QueryStats stats;
  std::vector<Neighbor> neighbors;
  // With --admission the query goes through the Status-returning admission
  // path; a shed/rejected query is a clean nonzero exit, never a crash.
  auto admitted_query = [&](const ServingCore& serving) -> int {
    QueryLimits limits;
    limits.deadline_us = deadline_us;
    const Status status = serving.TryQuery(data.Record(query_row), k,
                                           query_row, &stats, limits,
                                           &neighbors);
    if (!status.ok()) {
      std::fprintf(stderr, "query not served: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    return 0;
  };
  if (engine_kind == "local") {
    LocalEngineOptions options;
    options.reduction = reduction;
    options.query_deadline_us = deadline_us;
    options.cache_budget_bytes = cache_budget;
    options.explain = explain;
    options.admission.enabled = admission;
    if (auto it = args.flags.find("clusters"); it != args.flags.end()) {
      Result<long long> clusters = ParseInt(it->second);
      if (!clusters.ok() || *clusters <= 0) {
        std::fprintf(stderr, "bad --clusters value\n");
        return 1;
      }
      options.num_clusters = static_cast<size_t>(*clusters);
    }
    if (auto it = args.flags.find("probes"); it != args.flags.end()) {
      Result<long long> probes = ParseInt(it->second);
      if (!probes.ok() || *probes <= 0) {
        std::fprintf(stderr, "bad --probes value\n");
        return 1;
      }
      options.probe_clusters = static_cast<size_t>(*probes);
    }
    Result<LocalReducedSearchEngine> engine =
        LocalReducedSearchEngine::Build(data, options);
    if (!engine.ok()) {
      std::fprintf(stderr, "engine build failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", engine->Describe().c_str());
    if (admission) {
      if (admitted_query(engine->serving()) != 0) return 1;
    } else {
      neighbors = engine->Query(data.Record(query_row), k, query_row, &stats);
    }
    print_cache_stats(engine->serving());
    if (explain && emit_explain(engine->serving()) != 0) return 1;
  } else if (engine_kind == "static") {
    EngineOptions options;
    options.reduction = reduction;
    options.query_deadline_us = deadline_us;
    options.cache_budget_bytes = cache_budget;
    options.explain = explain;
    options.admission.enabled = admission;
    Result<ReducedSearchEngine> engine =
        ReducedSearchEngine::Build(data, options);
    if (!engine.ok()) {
      std::fprintf(stderr, "engine build failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", engine->Describe().c_str());
    if (admission) {
      if (admitted_query(engine->serving()) != 0) return 1;
    } else {
      neighbors = engine->Query(data.Record(query_row), k, query_row, &stats);
    }
    print_cache_stats(engine->serving());
    if (explain && emit_explain(engine->serving()) != 0) return 1;
  } else {
    std::fprintf(stderr, "bad --engine value '%s' (want static or local)\n",
                 engine_kind.c_str());
    return 1;
  }

  TextTable table({"record", "distance", "class"});
  for (const Neighbor& n : neighbors) {
    std::string label = "-";
    if (data.HasLabels()) {
      const size_t id = static_cast<size_t>(data.label(n.index));
      label = id < data.class_names().size() ? data.class_names()[id]
                                             : std::to_string(id);
    }
    table.AddRow({std::to_string(n.index), FormatDouble(n.distance, 4),
                  label});
  }
  std::printf("\n%zu nearest neighbors of record %zu:\n%s", k, query_row,
              table.Render().c_str());
  if (stats.truncated) {
    std::printf("(deadline exceeded: partial answer)\n");
  }
  return 0;
}

// Self-contained end-to-end exercise used as the CLI smoke test.
int Demo() {
  LatentFactorConfig config;
  config.num_records = 200;
  config.num_attributes = 30;
  config.num_concepts = 5;
  config.num_classes = 2;
  config.seed = 123;
  Dataset data = GenerateLatentFactor(config);

  if (Analyze(data, PcaScaling::kCorrelation) != 0) return 1;

  Args reduce_args;
  reduce_args.flags["dims"] = "5";
  const std::string out = "/tmp/cohere_cli_demo_reduced.csv";
  if (Reduce(data, reduce_args, out) != 0) return 1;
  std::remove(out.c_str());

  Args query_args;
  query_args.flags["row"] = "0";
  query_args.flags["k"] = "3";
  query_args.flags["dims"] = "5";
  return QueryCmd(data, query_args);
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cohere_cli analyze <data-file> [--scaling cov|corr] "
               "[--no-label]\n"
               "  cohere_cli reduce  <data-file> <output.csv> [--dims N]\n"
               "             [--strategy coherence|eigenvalue|threshold|"
               "energy] [--scaling cov|corr]\n"
               "  cohere_cli query   <data-file> --row R [--k K] [--dims N]\n"
               "             [--deadline-us T]   per-query wall-clock budget "
               "(partial answer on expiry)\n"
               "             [--explain]         capture and print the "
               "per-query EXPLAIN profile\n"
               "             [--explain-out FILE]  write the profile JSON "
               "to FILE\n"
               "             [--cache-budget B]  result-cache byte budget "
               "for the engine (0 = off)\n"
               "             [--admission]       serve through admission "
               "control (a shed query exits nonzero)\n"
               "             [--engine static|local]   serving engine "
               "(default static)\n"
               "             [--clusters N] [--probes P]   local-engine "
               "localities and probes per query\n"
               "  cohere_cli demo\n"
               "common flags:\n"
               "  --metrics text|json|openmetrics   dump the observability "
               "registry after the command\n"
               "                        (openmetrics: Prometheus-scrapeable "
               "exposition)\n"
               "  --metrics-out FILE    write the snapshot to FILE instead "
               "of stdout\n"
               "                        (implies --metrics text)\n"
               "  --trace-out FILE      trace the command and write Chrome "
               "trace_event JSON\n"
               "                        (open in Perfetto / "
               "chrome://tracing)\n"
               "  --query-log FILE      capture the wide-event query log "
               "and write it as JSONL\n");
  return 2;
}

// Renders the registry per --metrics/--metrics-out; 0 on success (or when
// neither flag is given), nonzero on a bad format or unwritable output
// file. `--metrics-out` alone implies text format — the snapshot must never
// be dropped silently when the user asked for an output file.
int EmitMetrics(const Args& args) {
  auto format_it = args.flags.find("metrics");
  auto out_it = args.flags.find("metrics-out");
  if (format_it == args.flags.end() && out_it == args.flags.end()) return 0;
  const std::string format =
      format_it == args.flags.end() ? "text" : format_it->second;

  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  std::string rendered;
  if (format == "json") {
    rendered = snapshot.ToJson() + "\n";
  } else if (format == "openmetrics") {
    rendered = snapshot.ToOpenMetrics();
  } else if (format == "text" || format.empty()) {
    rendered = snapshot.ToText();
  } else {
    std::fprintf(stderr,
                 "bad --metrics value '%s' (want text, json or "
                 "openmetrics)\n",
                 format.c_str());
    return 1;
  }

  if (out_it != args.flags.end() && !out_it->second.empty()) {
    FILE* f = std::fopen(out_it->second.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write metrics to %s: %s\n",
                   out_it->second.c_str(), std::strerror(errno));
      return 1;
    }
    std::fputs(rendered.c_str(), f);
    std::fclose(f);
    std::printf("metrics snapshot written to %s\n", out_it->second.c_str());
  } else {
    std::printf("\n-- metrics snapshot --\n%s", rendered.c_str());
  }
  return 0;
}

int Dispatch(const std::string& command, const Args& args) {
  if (command == "demo") return Demo();
  if (args.positional.empty()) return Usage();

  Result<Dataset> data = LoadData(args.positional[0], args.no_label);
  if (!data.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n",
                 args.positional[0].c_str(),
                 data.status().ToString().c_str());
    return 1;
  }

  if (command == "analyze") {
    return Analyze(*data, ScalingFromFlags(args));
  }
  if (command == "reduce") {
    if (args.positional.size() < 2) return Usage();
    return Reduce(*data, args, args.positional[1]);
  }
  if (command == "query") {
    return QueryCmd(*data, args);
  }
  return Usage();
}

// Writes the captured trace per --trace-out; 0 on success (or when the
// flag is absent), nonzero on an unwritable output file.
int EmitTrace(const Args& args) {
  auto out_it = args.flags.find("trace-out");
  if (out_it == args.flags.end()) return 0;
  if (out_it->second.empty()) {
    std::fprintf(stderr, "--trace-out requires a file path\n");
    return 1;
  }
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Stop();
  const Status written = tracer.WriteChromeTrace(out_it->second);
  if (!written.ok()) {
    std::fprintf(stderr, "cannot write trace to %s: %s\n",
                 out_it->second.c_str(), written.ToString().c_str());
    return 1;
  }
  std::printf("trace written to %s (%llu spans, %llu dropped)\n",
              out_it->second.c_str(),
              static_cast<unsigned long long>(tracer.CapturedCount()),
              static_cast<unsigned long long>(tracer.DroppedCount()));
  return 0;
}

// Writes the captured query-log events per --query-log; 0 on success (or
// when the flag is absent), nonzero on an unwritable output file. The log
// itself is started before dispatch in Main.
int EmitQueryLog(const Args& args) {
  auto out_it = args.flags.find("query-log");
  if (out_it == args.flags.end()) return 0;
  obs::QueryLog& log = obs::QueryLog::Global();
  log.Stop();
  const Status written = log.WriteJsonl(out_it->second);
  if (!written.ok()) {
    std::fprintf(stderr, "cannot write query log to %s: %s\n",
                 out_it->second.c_str(), written.ToString().c_str());
    return 1;
  }
  std::printf("query log written to %s (%llu events, %llu dropped, "
              "%llu sampled out)\n",
              out_it->second.c_str(),
              static_cast<unsigned long long>(log.CapturedCount()),
              static_cast<unsigned long long>(log.DroppedCount()),
              static_cast<unsigned long long>(log.SampledOutCount()));
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  // Flags are parsed before dispatch so --metrics/--trace-out work on every
  // command, including `demo`.
  Args args = ParseArgs(argc, argv, 2);

  if (args.flags.count("trace-out") != 0) {
    // Capture everything the command does; the default ring is plenty for
    // one CLI invocation. A COHERE_TRACE_SLOW_US threshold (applied by the
    // tracer's env init before main) survives the restart.
    obs::TracerOptions trace_options;
    trace_options.slow_query_us =
        obs::Tracer::Global().slow_query_threshold_us();
    obs::Tracer::Global().Start(trace_options);
  }
  if (auto it = args.flags.find("query-log"); it != args.flags.end()) {
    if (it->second.empty()) {
      std::fprintf(stderr, "--query-log requires a file path\n");
      return 2;
    }
    // One CLI invocation fits comfortably in the default ring.
    obs::QueryLog::Global().Start(obs::QueryLogOptions{});
  }
  const int rc = Dispatch(command, args);
  if (rc != 0) return rc;
  const int metrics_rc = EmitMetrics(args);
  if (metrics_rc != 0) return metrics_rc;
  const int trace_rc = EmitTrace(args);
  if (trace_rc != 0) return trace_rc;
  return EmitQueryLog(args);
}

}  // namespace
}  // namespace cohere

int main(int argc, char** argv) { return cohere::Main(argc, argv); }
