// cohere_loadgen: closed-loop overload harness for the admission-controlled
// serving path.
//
//   cohere_loadgen [--threads N] [--queries N] [--k K] [--deadline-us D]
//                  [--max-concurrency M] [--max-queue Q] [--inserts N]
//                  [--engines static,dynamic,local] [--out FILE]
//
// Drives N closed-loop threads of Zipf-keyed queries through
// ServingCore::TryQuery against each selected engine facade, with the
// admission controller enabled, and reports goodput / shed rate / tail
// latency per engine as one `cohere.bench.v1` series (an additive
// "admission" object carries the overload accounting) so
// scripts/bench_compare.py can validate and diff the document.
//
// Every run self-checks the admission accounting invariant
//   offered == admitted + shed + rejected
// against the controller's exact totals and the number of calls the
// threads actually issued, and exits nonzero on any mismatch — including
// under `COHERE_FAULT=core.admission.shed:1.0`, where every query sheds
// but the books must still balance (degrade, never crash).
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/dynamic_engine.h"
#include "core/engine.h"
#include "core/local_engine.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "obs/metrics.h"

namespace cohere {
namespace {

constexpr const char* kBenchSchema = "cohere.bench.v1";

struct LoadgenConfig {
  size_t threads = 8;
  size_t queries_per_thread = 200;
  size_t k = 4;
  double deadline_us = 2000.0;
  size_t max_concurrency = 2;
  size_t max_queue = 8;
  /// Concurrent Insert() calls a writer thread issues against the dynamic
  /// engine while the query threads run (0 disables the writer).
  size_t inserts = 64;
  std::vector<std::string> engines = {"static", "dynamic", "local"};
  std::string out_path = "BENCH_loadgen.json";
};

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a over the dataset's feature bytes (same recipe as cohere_bench, so
/// loadgen documents name the same inputs).
uint64_t DatasetFingerprint(const Dataset& dataset) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const void* data, size_t bytes) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  const uint64_t rows = dataset.NumRecords();
  const uint64_t cols = dataset.NumAttributes();
  mix(&rows, sizeof(rows));
  mix(&cols, sizeof(cols));
  mix(dataset.features().data(), rows * cols * sizeof(double));
  return h;
}

std::string Num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// What one engine's overload run produced.
struct EngineRun {
  std::string facade;         ///< "static" | "dynamic" | "local"
  std::string scope;          ///< serving metric scope
  uint64_t dataset_fingerprint = 0;
  size_t reduced_dims = 0;
  double wall_us = 0.0;
  uint64_t issued = 0;        ///< TryQuery calls the threads made.
  uint64_t ok = 0;            ///< Admitted, completed, not truncated.
  uint64_t truncated = 0;     ///< Admitted but deadline/cancel-truncated.
  uint64_t resource_exhausted = 0;  ///< Shed or breaker-rejected.
  uint64_t other_errors = 0;
  uint64_t brownout_queries = 0;   ///< Served at brownout level >= 1.
  std::vector<double> admitted_latencies_us;  ///< Arrival-to-completion.
  AdmissionTotals totals;
  std::string breaker_state;
  uint64_t inserts_done = 0;
  uint64_t insert_failures = 0;
  double insert_backoff_gauge = 0.0;
  // Serving-scope work deltas over the measured interval.
  uint64_t distance_evaluations = 0;
  uint64_t nodes_visited = 0;
  uint64_t candidates_refined = 0;
};

struct WorkSnapshot {
  uint64_t distance_evaluations = 0;
  uint64_t nodes_visited = 0;
  uint64_t candidates_refined = 0;
};

WorkSnapshot TakeWorkSnapshot(const std::string& scope) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  WorkSnapshot snap;
  snap.distance_evaluations =
      registry.GetCounter(scope + ".distance_evaluations")->Value();
  snap.nodes_visited = registry.GetCounter(scope + ".nodes_visited")->Value();
  snap.candidates_refined =
      registry.GetCounter(scope + ".candidates_refined")->Value();
  return snap;
}

/// Zipf(1)-ranked query rows over a pool of nq/10 distinct records: the
/// skewed repeated-key workload an overloaded serving tier actually sees.
std::vector<size_t> ZipfRows(size_t count, size_t pool_limit, uint64_t seed) {
  const size_t pool = std::max<size_t>(1, std::min(pool_limit, count / 10));
  std::vector<double> cdf(pool);
  double total = 0.0;
  for (size_t r = 0; r < pool; ++r) {
    total += 1.0 / static_cast<double>(r + 1);
    cdf[r] = total;
  }
  std::vector<size_t> rows(count);
  uint64_t state = seed;
  for (size_t i = 0; i < count; ++i) {
    const double u =
        static_cast<double>(SplitMix64(&state) >> 11) * 0x1.0p-53 * total;
    size_t rank = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (rank >= pool) rank = pool - 1;
    rows[i] = rank;
  }
  return rows;
}

/// Runs the closed loop against one serving core. Returns false (with a
/// message on stderr) when the accounting invariant breaks.
bool RunClosedLoop(const LoadgenConfig& config, const Dataset& dataset,
                   const ServingCore& serving, DynamicReducedIndex* writer,
                   EngineRun* run) {
  struct ThreadResult {
    uint64_t issued = 0;
    uint64_t ok = 0;
    uint64_t truncated = 0;
    uint64_t resource_exhausted = 0;
    uint64_t other_errors = 0;
    uint64_t brownout_queries = 0;
    std::vector<double> latencies_us;
  };
  std::vector<ThreadResult> results(config.threads);

  const WorkSnapshot before = TakeWorkSnapshot(run->scope);
  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(config.threads);
  for (size_t t = 0; t < config.threads; ++t) {
    threads.emplace_back([&, t] {
      ThreadResult& local = results[t];
      local.latencies_us.reserve(config.queries_per_thread);
      const std::vector<size_t> rows =
          ZipfRows(config.queries_per_thread, dataset.NumRecords(),
                   0x10adULL * (t + 1) + 0x5eedc0de2024ULL);
      Vector query(dataset.NumAttributes());
      for (size_t i = 0; i < config.queries_per_thread; ++i) {
        const Vector record = dataset.Record(rows[i]);
        std::copy(record.data(), record.data() + record.size(), query.data());
        QueryLimits limits;
        limits.deadline_us = config.deadline_us;
        QueryStats stats;
        std::vector<Neighbor> neighbors;
        Stopwatch watch;
        const Status status = serving.TryQuery(query, config.k,
                                               KnnIndex::kNoSkip, &stats,
                                               limits, &neighbors);
        ++local.issued;
        if (status.ok()) {
          local.latencies_us.push_back(watch.ElapsedMicros());
          if (stats.truncated) {
            ++local.truncated;
          } else {
            ++local.ok;
          }
          if (stats.brownout_level > 0) ++local.brownout_queries;
        } else if (status.code() == StatusCode::kResourceExhausted) {
          ++local.resource_exhausted;
        } else {
          ++local.other_errors;
        }
      }
    });
  }

  std::thread insert_thread;
  if (writer != nullptr && config.inserts > 0) {
    insert_thread = std::thread([&] {
      uint64_t state = 0x1255e7ULL;
      Vector record(dataset.NumAttributes());
      for (size_t i = 0; i < config.inserts; ++i) {
        for (size_t d = 0; d < record.size(); ++d) {
          record[d] =
              static_cast<double>(SplitMix64(&state) >> 11) * 0x1.0p-52 - 2.0;
        }
        if (writer->Insert(record).ok()) {
          ++run->inserts_done;
        } else {
          ++run->insert_failures;
        }
      }
    });
  }

  for (std::thread& thread : threads) thread.join();
  if (insert_thread.joinable()) insert_thread.join();
  run->wall_us = wall.ElapsedMicros();
  const WorkSnapshot after = TakeWorkSnapshot(run->scope);
  run->distance_evaluations =
      after.distance_evaluations - before.distance_evaluations;
  run->nodes_visited = after.nodes_visited - before.nodes_visited;
  run->candidates_refined =
      after.candidates_refined - before.candidates_refined;

  for (const ThreadResult& local : results) {
    run->issued += local.issued;
    run->ok += local.ok;
    run->truncated += local.truncated;
    run->resource_exhausted += local.resource_exhausted;
    run->other_errors += local.other_errors;
    run->brownout_queries += local.brownout_queries;
    run->admitted_latencies_us.insert(run->admitted_latencies_us.end(),
                                      local.latencies_us.begin(),
                                      local.latencies_us.end());
  }
  std::sort(run->admitted_latencies_us.begin(),
            run->admitted_latencies_us.end());

  const AdmissionController* admission = serving.admission();
  if (admission == nullptr) {
    std::fprintf(stderr, "loadgen: %s has no admission controller\n",
                 run->facade.c_str());
    return false;
  }
  run->totals = admission->Totals();
  run->breaker_state = admission->BreakerState();

  // The accounting invariant, checked two ways: the controller's books
  // balance, and they agree with what the threads actually observed.
  const AdmissionTotals& totals = run->totals;
  if (totals.offered != totals.admitted + totals.shed + totals.rejected) {
    std::fprintf(stderr,
                 "loadgen: %s accounting broken: offered %" PRIu64
                 " != admitted %" PRIu64 " + shed %" PRIu64 " + rejected %"
                 PRIu64 "\n",
                 run->facade.c_str(), totals.offered, totals.admitted,
                 totals.shed, totals.rejected);
    return false;
  }
  if (totals.offered != run->issued) {
    std::fprintf(stderr,
                 "loadgen: %s offered %" PRIu64 " != issued %" PRIu64 "\n",
                 run->facade.c_str(), totals.offered, run->issued);
    return false;
  }
  const uint64_t admitted_seen = run->ok + run->truncated;
  const uint64_t rejected_seen = run->resource_exhausted;
  if (totals.admitted != admitted_seen ||
      totals.shed + totals.rejected != rejected_seen ||
      run->other_errors != 0) {
    std::fprintf(stderr,
                 "loadgen: %s outcome mismatch: controller admitted %" PRIu64
                 "/shed+rejected %" PRIu64 ", threads saw %" PRIu64 "/%"
                 PRIu64 " (+%" PRIu64 " other errors)\n",
                 run->facade.c_str(), totals.admitted,
                 totals.shed + totals.rejected, admitted_seen, rejected_seen,
                 run->other_errors);
    return false;
  }
  return true;
}

double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void AppendSeriesJson(const LoadgenConfig& config, const EngineRun& run,
                      std::string* out) {
  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016" PRIx64, run.dataset_fingerprint);
  const std::vector<double>& lat = run.admitted_latencies_us;
  double mean = 0.0;
  for (double v : lat) mean += v;
  if (!lat.empty()) mean /= static_cast<double>(lat.size());
  const double wall_s = run.wall_us * 1e-6;
  const double goodput =
      wall_s > 0.0 ? static_cast<double>(run.ok) / wall_s : 0.0;
  const double offered_qps =
      wall_s > 0.0 ? static_cast<double>(run.issued) / wall_s : 0.0;
  const double shed_rate =
      run.totals.offered > 0
          ? static_cast<double>(run.totals.shed + run.totals.rejected) /
                static_cast<double>(run.totals.offered)
          : 0.0;

  *out += "    {\n";
  *out += "      \"name\": \"loadgen.synthetic." + run.facade + ".closed\",\n";
  *out += "      \"dataset\": \"synthetic\",\n";
  *out += "      \"dataset_fingerprint\": \"" + std::string(fp) + "\",\n";
  *out += "      \"engine\": \"" + run.facade + "\",\n";
  *out += "      \"backend\": \"linear_scan\",\n";
  *out += "      \"target_dim\": \"d8\",\n";
  *out += "      \"reduced_dims\": " + std::to_string(run.reduced_dims) +
          ",\n";
  *out += "      \"k\": " + std::to_string(config.k) + ",\n";
  *out += "      \"mode\": \"closed_loop\",\n";
  // Never regression-gated: shed rate and tail latency under deliberate
  // overload are machine-load-sensitive by construction.
  *out += "      \"gate\": false,\n";
  *out += "      \"queries\": " + std::to_string(run.issued) + ",\n";
  *out += "      \"wall_us\": " + Num(run.wall_us) + ",\n";
  *out += "      \"throughput_qps\": " + Num(offered_qps) + ",\n";
  *out += "      \"latency_us\": {";
  *out += "\"count\": " + std::to_string(lat.size());
  *out += ", \"mean\": " + Num(mean);
  *out += ", \"p50\": " + Num(Quantile(lat, 0.5));
  *out += ", \"p95\": " + Num(Quantile(lat, 0.95));
  *out += ", \"p99\": " + Num(Quantile(lat, 0.99));
  *out += ", \"max\": " + Num(lat.empty() ? 0.0 : lat.back());
  *out += "},\n";
  *out += "      \"work\": {";
  *out += "\"distance_evaluations\": " +
          std::to_string(run.distance_evaluations);
  *out += ", \"nodes_visited\": " + std::to_string(run.nodes_visited);
  *out += ", \"candidates_refined\": " +
          std::to_string(run.candidates_refined);
  *out += "},\n";
  // Schema-additive overload accounting (bench_compare.py ignores unknown
  // fields; scripts/tier1.sh asserts the invariant from here).
  *out += "      \"admission\": {";
  *out += "\"offered\": " + std::to_string(run.totals.offered);
  *out += ", \"admitted\": " + std::to_string(run.totals.admitted);
  *out += ", \"queued\": " + std::to_string(run.totals.queued);
  *out += ", \"shed\": " + std::to_string(run.totals.shed);
  *out += ", \"rejected\": " + std::to_string(run.totals.rejected);
  *out += ", \"breaker_trips\": " + std::to_string(run.totals.breaker_trips);
  *out += ", \"breaker_state\": \"" + run.breaker_state + "\"";
  *out += ", \"brownout_queries\": " +
          std::to_string(run.totals.brownout_queries);
  *out += ", \"truncated\": " + std::to_string(run.truncated);
  *out += ", \"goodput_qps\": " + Num(goodput);
  *out += ", \"shed_rate\": " + Num(shed_rate);
  *out += ", \"deadline_us\": " + Num(config.deadline_us);
  *out += ", \"max_concurrency\": " + std::to_string(config.max_concurrency);
  *out += ", \"threads\": " + std::to_string(config.threads);
  *out += ", \"inserts\": " + std::to_string(run.inserts_done);
  *out += ", \"insert_failures\": " + std::to_string(run.insert_failures);
  *out += ", \"insert_backoff\": " + Num(run.insert_backoff_gauge);
  *out += "}\n";
  *out += "    }";
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: cohere_loadgen [--threads N] [--queries N] [--k K]\n"
      "                      [--deadline-us D] [--max-concurrency M]\n"
      "                      [--max-queue Q] [--inserts N]\n"
      "                      [--engines static,dynamic,local] [--out FILE]\n"
      "  --threads          closed-loop query threads (default 8)\n"
      "  --queries          queries per thread (default 200)\n"
      "  --k                neighbors per query (default 4)\n"
      "  --deadline-us      per-query deadline budget (default 2000)\n"
      "  --max-concurrency  admission concurrency limit (default 2)\n"
      "  --max-queue        admission wait-queue bound (default 8)\n"
      "  --inserts          concurrent dynamic-engine inserts (default 64)\n"
      "  --engines          comma list of facades (default all three)\n"
      "  --out              output path (default BENCH_loadgen.json)\n");
  return 2;
}

int Main(int argc, char** argv) {
  LoadgenConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    auto parse_count = [&](size_t* out, bool allow_zero) {
      Result<long long> parsed = ParseInt(value());
      if (!parsed.ok() || *parsed < (allow_zero ? 0 : 1)) {
        std::fprintf(stderr, "bad %s value\n", arg.c_str());
        return false;
      }
      *out = static_cast<size_t>(*parsed);
      return true;
    };
    if (arg == "--threads") {
      if (!parse_count(&config.threads, false)) return 2;
    } else if (arg == "--queries") {
      if (!parse_count(&config.queries_per_thread, false)) return 2;
    } else if (arg == "--k") {
      if (!parse_count(&config.k, false)) return 2;
    } else if (arg == "--max-concurrency") {
      if (!parse_count(&config.max_concurrency, false)) return 2;
    } else if (arg == "--max-queue") {
      if (!parse_count(&config.max_queue, true)) return 2;
    } else if (arg == "--inserts") {
      if (!parse_count(&config.inserts, true)) return 2;
    } else if (arg == "--deadline-us") {
      Result<double> parsed = ParseDouble(value());
      if (!parsed.ok() || !(*parsed > 0.0)) {
        std::fprintf(stderr, "bad --deadline-us value\n");
        return 2;
      }
      config.deadline_us = *parsed;
    } else if (arg == "--engines") {
      config.engines.clear();
      for (const std::string& part : Split(value(), ',')) {
        const std::string facade(Trim(part));
        if (facade != "static" && facade != "dynamic" && facade != "local") {
          std::fprintf(stderr, "unknown engine '%s'\n", facade.c_str());
          return 2;
        }
        config.engines.push_back(facade);
      }
      if (config.engines.empty()) {
        std::fprintf(stderr, "--engines needs at least one facade\n");
        return 2;
      }
    } else if (arg == "--out") {
      config.out_path = value();
      if (config.out_path.empty()) {
        std::fprintf(stderr, "--out needs a file path\n");
        return 2;
      }
    } else {
      return Usage();
    }
  }

  if (!obs::MetricsRegistry::Enabled()) {
    std::fprintf(stderr,
                 "cohere_loadgen needs the metrics registry (unset "
                 "COHERE_METRICS)\n");
    return 2;
  }

  LatentFactorConfig dataset_config;
  dataset_config.num_records = 320;
  dataset_config.num_attributes = 48;
  dataset_config.num_concepts = 6;
  dataset_config.num_classes = 2;
  dataset_config.seed = 9001;
  const Dataset dataset = GenerateLatentFactor(dataset_config);
  const uint64_t fingerprint = DatasetFingerprint(dataset);

  ReductionOptions reduction;
  reduction.strategy = SelectionStrategy::kCoherenceOrder;
  reduction.target_dim = 8;
  AdmissionOptions admission;
  admission.enabled = true;
  admission.max_concurrency = config.max_concurrency;
  admission.max_queue = config.max_queue;

  std::vector<EngineRun> runs;
  for (const std::string& facade : config.engines) {
    EngineRun run;
    run.facade = facade;
    run.dataset_fingerprint = fingerprint;
    bool ok = false;
    if (facade == "static") {
      EngineOptions options;
      options.backend = IndexBackend::kLinearScan;
      options.reduction = reduction;
      options.admission = admission;
      Result<ReducedSearchEngine> engine =
          ReducedSearchEngine::Build(dataset, options);
      if (!engine.ok()) {
        std::fprintf(stderr, "static build failed: %s\n",
                     engine.status().ToString().c_str());
        return 1;
      }
      run.scope = "engine";
      run.reduced_dims = engine->ReducedDims();
      ok = RunClosedLoop(config, dataset, engine->serving(), nullptr, &run);
    } else if (facade == "dynamic") {
      DynamicEngineOptions options;
      options.reduction = reduction;
      options.admission = admission;
      Result<DynamicReducedIndex> engine =
          DynamicReducedIndex::Build(dataset, options);
      if (!engine.ok()) {
        std::fprintf(stderr, "dynamic build failed: %s\n",
                     engine.status().ToString().c_str());
        return 1;
      }
      run.scope = "dynamic_index";
      run.reduced_dims = engine->pipeline().ReducedDims();
      ok = RunClosedLoop(config, dataset, engine->serving(), &*engine, &run);
      run.insert_backoff_gauge =
          obs::MetricsRegistry::Global()
              .GetGauge("dynamic_index.insert_backoff")
              ->Value();
    } else {
      LocalEngineOptions options;
      options.reduction = reduction;
      options.probe_clusters = 2;
      options.admission = admission;
      Result<LocalReducedSearchEngine> engine =
          LocalReducedSearchEngine::Build(dataset, options);
      if (!engine.ok()) {
        std::fprintf(stderr, "local build failed: %s\n",
                     engine.status().ToString().c_str());
        return 1;
      }
      run.scope = "local_engine";
      run.reduced_dims = engine->ClusterPipeline(0).ReducedDims();
      ok = RunClosedLoop(config, dataset, engine->serving(), nullptr, &run);
    }
    if (!ok) return 1;
    const double shed_pct =
        run.totals.offered > 0
            ? 100.0 *
                  static_cast<double>(run.totals.shed + run.totals.rejected) /
                  static_cast<double>(run.totals.offered)
            : 0.0;
    std::fprintf(stderr,
                 "%-8s offered %6" PRIu64 "  admitted %6" PRIu64
                 "  shed %5.1f%%  goodput %8.0f q/s  p99 %8.1f us\n",
                 facade.c_str(), run.totals.offered, run.totals.admitted,
                 shed_pct,
                 run.wall_us > 0.0
                     ? static_cast<double>(run.ok) / (run.wall_us * 1e-6)
                     : 0.0,
                 Quantile(run.admitted_latencies_us, 0.99));
    runs.push_back(std::move(run));
  }

  std::string out = "{\n";
  out += "  \"schema\": \"" + std::string(kBenchSchema) + "\",\n";
  out += "  \"suite\": \"loadgen\",\n";
  out += "  \"generated_by\": \"cohere_loadgen\",\n";
  out += "  \"machine\": {";
  out += "\"hardware_concurrency\": " +
         std::to_string(std::thread::hardware_concurrency());
  out += ", \"pool_threads\": " + std::to_string(ParallelThreadCount());
  out += ", \"pointer_bits\": " + std::to_string(sizeof(void*) * 8);
#ifdef NDEBUG
  out += ", \"assertions\": false";
#else
  out += ", \"assertions\": true";
#endif
  out += ", \"compiler\": \"" __VERSION__ "\"";
  out += "},\n";
  out += "  \"config\": {";
  out += "\"threads\": " + std::to_string(config.threads);
  out += ", \"queries_per_thread\": " +
         std::to_string(config.queries_per_thread);
  out += ", \"deadline_us\": " + Num(config.deadline_us);
  out += ", \"max_concurrency\": " + std::to_string(config.max_concurrency);
  out += ", \"max_queue\": " + std::to_string(config.max_queue);
  out += "},\n";
  out += "  \"series\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    AppendSeriesJson(config, runs[i], &out);
    out += i + 1 < runs.size() ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";

  FILE* f = std::fopen(config.out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != out.size() || !closed) {
    std::fprintf(stderr, "short write to %s\n", config.out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu series to %s\n", runs.size(),
               config.out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace cohere

int main(int argc, char** argv) { return cohere::Main(argc, argv); }
