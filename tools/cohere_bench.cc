// cohere_bench: the canonical performance-trajectory harness.
//
//   cohere_bench [--suite smoke|standard] [--out FILE] [--queries N]
//                [--query-log FILE] [--list]
//
// Runs a fixed grid of k-NN benchmark cases — per-backend query latency and
// throughput at several (d', k) points, on synthetic and UCI-like data, in
// serial (engine.Query loop) and pooled (engine.QueryBatch) modes, at
// reduced and full dimensionality — and writes one schema-versioned JSON
// document (`BENCH_<suite>.json` by default). Latency quantiles come from
// interval deltas of the `index.<backend>.query_latency_us` registry
// histograms (obs::LatencyHistogram::Bins), work counts from the matching
// counters, throughput from wall clock, so the numbers are exactly what the
// observability layer reports in production.
//
// `scripts/bench_compare.py OLD NEW` diffs two such documents and exits
// nonzero on regression; `scripts/tier1.sh` runs the smoke suite as a gate.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/dynamic_engine.h"
#include "core/engine.h"
#include "core/local_engine.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "data/uci_like.h"
#include "linalg/blocked_matrix.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "simd/kernels.h"

namespace cohere {
namespace {

/// Schema identifier stamped into every emitted document. Bump on any
/// backwards-incompatible change and teach bench_compare.py both versions.
constexpr const char* kBenchSchema = "cohere.bench.v1";

/// target_dim sentinel: index at full (rotated) dimensionality — every
/// principal component is kept, so distances match the original space.
constexpr size_t kFullDim = static_cast<size_t>(-1);

/// Which serving facade a case exercises. Dynamic and local cases ignore
/// `backend` (their shards are linear scans under the serving core).
enum class EngineKind { kStatic, kDynamic, kLocal };

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kStatic:
      return "static";
    case EngineKind::kDynamic:
      return "dynamic";
    case EngineKind::kLocal:
      return "local";
  }
  return "unknown";
}

/// One cell of the benchmark grid.
struct CaseSpec {
  const char* dataset;   ///< Key into MakeDataset.
  IndexBackend backend;
  size_t target_dim;     ///< 0 = automatic (coherence cut), kFullDim = all.
  size_t k;
  bool pooled;           ///< QueryBatch across the pool vs serial Query loop.
  bool gate;             ///< Regression-gated by bench_compare.py.
  EngineKind engine = EngineKind::kStatic;
  size_t probes = 1;     ///< Localities probed per query (local engine only).
  /// Zipfian repeated-query workload: the nq measured queries are drawn
  /// (deterministically) from a pool of nq/10 distinct records under a
  /// Zipf(1) rank distribution, so at least 90% of queries repeat an
  /// earlier one — the scenario the result cache exists for. Zipf cases
  /// measure at the serving scope ("engine"), where cache hits are
  /// recorded, instead of the per-index scope hits never reach.
  bool zipf = false;
  /// EngineOptions::cache_budget_bytes for this case (0 = cache off).
  size_t cache_budget = 0;
};

/// The smoke suite: one pass is a few hundred milliseconds, small enough to
/// run in tier-1 CI, but still covering backend x (d', k) x execution-mode
/// variation. Pooled series are not gated — their latency depends on the
/// machine's core count.
const CaseSpec kSmokeSuite[] = {
    {"synthetic", IndexBackend::kLinearScan, 0, 4, false, true},
    {"synthetic", IndexBackend::kKdTree, 0, 4, false, true},
    {"synthetic", IndexBackend::kVaFile, 0, 4, false, true},
    {"synthetic", IndexBackend::kKdTree, 4, 2, false, true},
    {"synthetic", IndexBackend::kKdTree, 8, 8, false, true},
    {"synthetic", IndexBackend::kKdTree, kFullDim, 4, false, true},
    {"synthetic", IndexBackend::kKdTree, 0, 4, true, false},
    {"ionosphere_like", IndexBackend::kLinearScan, 0, 4, false, true},
    {"ionosphere_like", IndexBackend::kKdTree, 0, 4, false, true},
    // Snapshot-serving facades: the dynamic index and the local engine
    // route the same query path through the serving core.
    {"synthetic", IndexBackend::kLinearScan, 8, 4, false, true,
     EngineKind::kDynamic},
    {"synthetic", IndexBackend::kLinearScan, 6, 4, false, true,
     EngineKind::kLocal, 2},
    {"synthetic", IndexBackend::kLinearScan, 6, 4, true, false,
     EngineKind::kLocal, 2},
    // The repeated-query pair: identical Zipfian workload with the result
    // cache off and on. bench_compare.py gates each against its own
    // baseline; scripts/tier1.sh additionally asserts the cached series
    // beats the cold one by the documented multiple.
    {"synthetic", IndexBackend::kKdTree, 8, 4, false, true,
     EngineKind::kStatic, 1, /*zipf=*/true, /*cache_budget=*/0},
    {"synthetic", IndexBackend::kKdTree, 8, 4, false, true,
     EngineKind::kStatic, 1, /*zipf=*/true, /*cache_budget=*/4u << 20},
};

/// The standard suite: the full dataset grid the paper's experiments walk —
/// all three UCI stand-ins plus synthetic, four backends, reduced vs full
/// dimensionality, small and large k.
const CaseSpec kStandardSuite[] = {
    // synthetic
    {"synthetic", IndexBackend::kLinearScan, 0, 10, false, true},
    {"synthetic", IndexBackend::kKdTree, 0, 10, false, true},
    {"synthetic", IndexBackend::kVaFile, 0, 10, false, true},
    {"synthetic", IndexBackend::kVpTree, 0, 10, false, true},
    {"synthetic", IndexBackend::kKdTree, 4, 1, false, true},
    {"synthetic", IndexBackend::kKdTree, 8, 10, false, true},
    {"synthetic", IndexBackend::kKdTree, kFullDim, 10, false, true},
    {"synthetic", IndexBackend::kKdTree, 0, 10, true, false},
    // musk_like (166 attributes; the paper's optimum keeps 13)
    {"musk_like", IndexBackend::kLinearScan, 0, 10, false, true},
    {"musk_like", IndexBackend::kKdTree, 13, 10, false, true},
    {"musk_like", IndexBackend::kVaFile, 13, 10, false, true},
    {"musk_like", IndexBackend::kKdTree, kFullDim, 10, false, true},
    {"musk_like", IndexBackend::kKdTree, 13, 10, true, false},
    // ionosphere_like (34 attributes; optimum at 10)
    {"ionosphere_like", IndexBackend::kLinearScan, 0, 10, false, true},
    {"ionosphere_like", IndexBackend::kKdTree, 10, 10, false, true},
    {"ionosphere_like", IndexBackend::kVpTree, 10, 10, false, true},
    {"ionosphere_like", IndexBackend::kKdTree, kFullDim, 10, false, true},
    // arrhythmia_like (279 attributes; optimum at 10)
    {"arrhythmia_like", IndexBackend::kLinearScan, 0, 10, false, true},
    {"arrhythmia_like", IndexBackend::kKdTree, 10, 10, false, true},
    {"arrhythmia_like", IndexBackend::kVaFile, 10, 10, false, true},
    {"arrhythmia_like", IndexBackend::kKdTree, kFullDim, 10, false, true},
    {"arrhythmia_like", IndexBackend::kKdTree, 10, 10, true, false},
    // snapshot-serving facades
    {"synthetic", IndexBackend::kLinearScan, 8, 10, false, true,
     EngineKind::kDynamic},
    {"synthetic", IndexBackend::kLinearScan, 8, 10, true, false,
     EngineKind::kDynamic},
    {"synthetic", IndexBackend::kLinearScan, 6, 10, false, true,
     EngineKind::kLocal, 2},
    {"synthetic", IndexBackend::kLinearScan, 6, 10, true, false,
     EngineKind::kLocal, 2},
    // repeated-query (Zipfian) pair, cache off vs on
    {"synthetic", IndexBackend::kKdTree, 8, 10, false, true,
     EngineKind::kStatic, 1, /*zipf=*/true, /*cache_budget=*/0},
    {"synthetic", IndexBackend::kKdTree, 8, 10, false, true,
     EngineKind::kStatic, 1, /*zipf=*/true, /*cache_budget=*/4u << 20},
};

Dataset MakeDataset(const std::string& key) {
  if (key == "synthetic") {
    LatentFactorConfig config;
    config.num_records = 320;
    config.num_attributes = 48;
    config.num_concepts = 6;
    config.num_classes = 2;
    config.seed = 9001;
    return GenerateLatentFactor(config);
  }
  if (key == "musk_like") return MuskLike();
  if (key == "ionosphere_like") return IonosphereLike();
  if (key == "arrhythmia_like") return ArrhythmiaLike();
  std::fprintf(stderr, "unknown benchmark dataset '%s'\n", key.c_str());
  std::abort();
}

/// FNV-1a over the dataset's feature bytes (plus its shape), so two BENCH
/// documents can prove they measured the same inputs.
uint64_t DatasetFingerprint(const Dataset& dataset) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const void* data, size_t bytes) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  const uint64_t rows = dataset.NumRecords();
  const uint64_t cols = dataset.NumAttributes();
  mix(&rows, sizeof(rows));
  mix(&cols, sizeof(cols));
  mix(dataset.features().data(), rows * cols * sizeof(double));
  return h;
}

std::string DimLabel(size_t target_dim) {
  if (target_dim == 0) return "dauto";
  if (target_dim == kFullDim) return "dfull";
  return "d" + std::to_string(target_dim);
}

std::string SeriesName(const CaseSpec& spec) {
  std::string facade;
  switch (spec.engine) {
    case EngineKind::kStatic:
      facade = IndexBackendName(spec.backend);
      break;
    case EngineKind::kDynamic:
      facade = "dynamic";
      break;
    case EngineKind::kLocal:
      facade = "local_p" + std::to_string(spec.probes);
      break;
  }
  std::string name = std::string(spec.dataset) + "." + facade + "." +
                     DimLabel(spec.target_dim) + ".k" + std::to_string(spec.k);
  if (spec.zipf) {
    name += spec.cache_budget > 0 ? ".zipf_cached" : ".zipf_cold";
  }
  return name + (spec.pooled ? ".pooled" : ".serial");
}

/// %.17g formatting: round-trips doubles and keeps the JSON diffable.
std::string Num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

struct SeriesResult {
  std::string name;
  const CaseSpec* spec = nullptr;
  uint64_t dataset_fingerprint = 0;
  size_t reduced_dims = 0;
  size_t num_queries = 0;
  double wall_us = 0.0;
  double throughput_qps = 0.0;
  obs::LatencyHistogram::Bins latency;
  uint64_t distance_evaluations = 0;
  uint64_t nodes_visited = 0;
  uint64_t candidates_refined = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t deadline_exceeded = 0;
};

struct WorkSnapshot {
  obs::LatencyHistogram::Bins latency;
  uint64_t distance_evaluations = 0;
  uint64_t nodes_visited = 0;
  uint64_t candidates_refined = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t deadline_exceeded = 0;
};

WorkSnapshot TakeWorkSnapshot(const std::string& scope) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  WorkSnapshot snap;
  snap.latency =
      registry.GetHistogram(scope + ".query_latency_us")->SnapshotBins();
  snap.distance_evaluations =
      registry.GetCounter(scope + ".distance_evaluations")->Value();
  snap.nodes_visited = registry.GetCounter(scope + ".nodes_visited")->Value();
  snap.candidates_refined =
      registry.GetCounter(scope + ".candidates_refined")->Value();
  // Process-wide service counters (GetCounter registers-on-absence, so a
  // run that never touches the cache or a deadline reads zero deltas).
  snap.cache_hits = registry.GetCounter("cache.hits")->Value();
  snap.cache_misses = registry.GetCounter("cache.misses")->Value();
  snap.deadline_exceeded =
      registry.GetCounter("queries.deadline_exceeded")->Value();
  return snap;
}

/// Spec backing the `kernel_scan.*` series: a microbenchmark of the blocked
/// L2 kernel itself — no index, no heap, no instrumentation — run once per
/// dispatch level this CPU supports, so a BENCH document records what each
/// SIMD tier actually buys on this machine. Never gated by bench_compare.py
/// (the level grid differs across machines); scripts/tier1.sh instead
/// compares the scalar and avx2 series within ONE document.
const CaseSpec kKernelScanSpec = {"kernel_scan_grid", IndexBackend::kLinearScan,
                                  kFullDim, 1, false, /*gate=*/false};

std::vector<simd::Level> KernelScanLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::DetectedLevel() >= simd::Level::kSse2) {
    levels.push_back(simd::Level::kSse2);
  }
  if (simd::DetectedLevel() >= simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  return levels;
}

/// Times full blocked-L2 scans of `rows` (one timed pass per query row) with
/// the kernel table for `level`. The per-pass argmin feeds a checksum that is
/// folded into the series fingerprint: the block kernels are bit-exact, so
/// every level of the same document must print the same fingerprint — a
/// drifted tier is visible right in the JSON.
SeriesResult RunKernelScanCase(simd::Level level, const BlockedMatrix& rows,
                               const Matrix& queries) {
  const simd::KernelTable& kernels = simd::KernelsFor(level);
  const size_t n = rows.rows();
  const size_t d = rows.cols();
  constexpr size_t kSpan = 256;
  double dist[kSpan];
  obs::LatencyHistogram hist("bench.kernel_scan");
  double checksum = 0.0;
  Stopwatch wall;
  for (size_t qi = 0; qi < queries.rows(); ++qi) {
    const double* q = queries.RowPtr(qi);
    Stopwatch pass;
    double best = std::numeric_limits<double>::infinity();
    for (size_t base = 0; base < n; base += kSpan) {
      const size_t span = std::min(kSpan, n - base);
      kernels.l2_block(q, rows.RowPtr(base), span, d, dist);
      for (size_t r = 0; r < span; ++r) {
        if (dist[r] < best) best = dist[r];
      }
    }
    hist.Record(pass.ElapsedMicros());
    checksum += best;
  }
  const double wall_us = wall.ElapsedMicros();

  uint64_t fp = 1469598103934665603ULL;
  auto mix = [&fp](const void* data, size_t bytes) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < bytes; ++i) {
      fp ^= p[i];
      fp *= 1099511628211ULL;
    }
  };
  const uint64_t shape[2] = {n, d};
  mix(shape, sizeof(shape));
  mix(&checksum, sizeof(checksum));

  SeriesResult out;
  out.name = std::string("kernel_scan.l2.") + simd::LevelName(level);
  out.spec = &kKernelScanSpec;
  out.dataset_fingerprint = fp;
  out.reduced_dims = d;
  out.num_queries = queries.rows();
  out.wall_us = wall_us;
  out.throughput_qps = wall_us > 0.0
                           ? static_cast<double>(queries.rows()) /
                                 (wall_us * 1e-6)
                           : 0.0;
  out.latency = hist.SnapshotBins();
  out.distance_evaluations = queries.rows() * n;
  out.nodes_visited = queries.rows() * n;
  return out;
}

Result<SeriesResult> RunCase(const CaseSpec& spec, const Dataset& dataset,
                             size_t num_queries) {
  ReductionOptions reduction;
  if (spec.target_dim == kFullDim) {
    // Keep every principal component: a pure rotation, so the index serves
    // the original-space distances — the paper's unreduced baseline.
    reduction.strategy = SelectionStrategy::kEigenvalueOrder;
    reduction.target_dim = dataset.NumAttributes();
  } else {
    reduction.strategy = SelectionStrategy::kCoherenceOrder;
    reduction.target_dim = spec.target_dim;  // 0 = automatic cut
  }

  // Build the facade under test. All three route queries through the same
  // serving core; the work snapshot scope follows where each path records
  // its per-query numbers: the static engine reports at the index level,
  // the dynamic/local serial paths at their serving scope, and the pooled
  // dynamic/local fan-outs at the per-row shard indexes (linear scans).
  std::optional<ReducedSearchEngine> static_engine;
  std::optional<DynamicReducedIndex> dynamic_engine;
  std::optional<LocalReducedSearchEngine> local_engine;
  std::string scope;
  size_t reduced_dims = 0;
  switch (spec.engine) {
    case EngineKind::kStatic: {
      EngineOptions options;
      options.backend = spec.backend;
      options.metric = MetricKind::kEuclidean;
      options.reduction = reduction;
      options.cache_budget_bytes = spec.cache_budget;
      Result<ReducedSearchEngine> engine =
          ReducedSearchEngine::Build(dataset, options);
      if (!engine.ok()) return engine.status();
      static_engine.emplace(std::move(*engine));
      // Zipf cases measure at the serving scope: cache hits return before
      // the index and would be invisible to the index-level histogram.
      scope = spec.zipf
                  ? "engine"
                  : "index." + std::string(IndexBackendName(spec.backend));
      reduced_dims = static_engine->ReducedDims();
      break;
    }
    case EngineKind::kDynamic: {
      DynamicEngineOptions options;
      options.metric = MetricKind::kEuclidean;
      options.reduction = reduction;
      Result<DynamicReducedIndex> engine =
          DynamicReducedIndex::Build(dataset, options);
      if (!engine.ok()) return engine.status();
      dynamic_engine.emplace(std::move(*engine));
      scope = spec.pooled ? "index.linear_scan" : "dynamic_index";
      reduced_dims = dynamic_engine->pipeline().ReducedDims();
      break;
    }
    case EngineKind::kLocal: {
      LocalEngineOptions options;
      options.metric = MetricKind::kEuclidean;
      options.reduction = reduction;
      options.probe_clusters = spec.probes;
      Result<LocalReducedSearchEngine> engine =
          LocalReducedSearchEngine::Build(dataset, options);
      if (!engine.ok()) return engine.status();
      local_engine.emplace(std::move(*engine));
      scope = spec.pooled ? "index.linear_scan" : "local_engine";
      reduced_dims = local_engine->ClusterPipeline(0).ReducedDims();
      break;
    }
  }
  auto query_one = [&](const Vector& query) {
    if (static_engine) {
      (void)static_engine->Query(query, spec.k);
    } else if (dynamic_engine) {
      (void)dynamic_engine->Query(query, spec.k);
    } else {
      (void)local_engine->Query(query, spec.k);
    }
  };
  auto query_batch = [&](const Matrix& batch) {
    if (static_engine) {
      (void)static_engine->QueryBatch(batch, spec.k);
    } else if (dynamic_engine) {
      (void)dynamic_engine->QueryBatch(batch, spec.k);
    } else {
      (void)local_engine->QueryBatch(batch, spec.k);
    }
  };

  const size_t nq = std::min(num_queries, dataset.NumRecords());
  Matrix queries(nq, dataset.NumAttributes());
  if (spec.zipf) {
    // Repeated-query workload: nq draws over a pool of nq/10 distinct
    // records, rank-weighted by Zipf(1). The SplitMix64 stream is seeded
    // with a constant so every run (and both halves of a cold/cached pair)
    // measures the exact same query sequence; with pool <= nq/10, at least
    // 90% of draws repeat an earlier query whatever the skew does.
    const size_t pool = std::max<size_t>(1, nq / 10);
    std::vector<double> cdf(pool);
    double total = 0.0;
    for (size_t r = 0; r < pool; ++r) {
      total += 1.0 / static_cast<double>(r + 1);
      cdf[r] = total;
    }
    uint64_t state = 0x5eedc0de2024ULL;
    auto split_mix = [](uint64_t* s) {
      uint64_t z = (*s += 0x9e3779b97f4a7c15ULL);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (size_t i = 0; i < nq; ++i) {
      const double u =
          static_cast<double>(split_mix(&state) >> 11) * 0x1.0p-53 * total;
      size_t rank = static_cast<size_t>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      if (rank >= pool) rank = pool - 1;
      queries.SetRow(i, dataset.Record(rank));
    }
  } else {
    for (size_t i = 0; i < nq; ++i) queries.SetRow(i, dataset.Record(i));
  }

  // Touch the path once so lazy metric registration, pool spin-up and cache
  // warming happen outside the measured interval.
  query_one(dataset.Record(0));

  const WorkSnapshot before = TakeWorkSnapshot(scope);

  Stopwatch wall;
  if (spec.pooled) {
    query_batch(queries);
  } else {
    Vector query(dataset.NumAttributes());
    for (size_t i = 0; i < nq; ++i) {
      const double* src = queries.RowPtr(i);
      std::copy(src, src + queries.cols(), query.data());
      query_one(query);
    }
  }
  const double wall_us = wall.ElapsedMicros();
  const WorkSnapshot after = TakeWorkSnapshot(scope);

  SeriesResult out;
  out.name = SeriesName(spec);
  out.spec = &spec;
  out.dataset_fingerprint = DatasetFingerprint(dataset);
  out.reduced_dims = reduced_dims;
  out.num_queries = nq;
  out.wall_us = wall_us;
  out.throughput_qps =
      wall_us > 0.0 ? static_cast<double>(nq) / (wall_us * 1e-6) : 0.0;
  out.latency =
      obs::LatencyHistogram::Delta(before.latency, after.latency);
  out.distance_evaluations =
      after.distance_evaluations - before.distance_evaluations;
  out.nodes_visited = after.nodes_visited - before.nodes_visited;
  out.candidates_refined =
      after.candidates_refined - before.candidates_refined;
  out.cache_hits = after.cache_hits - before.cache_hits;
  out.cache_misses = after.cache_misses - before.cache_misses;
  out.deadline_exceeded =
      after.deadline_exceeded - before.deadline_exceeded;
  return out;
}

void AppendSeriesJson(const SeriesResult& r, std::string* out) {
  const CaseSpec& spec = *r.spec;
  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016" PRIx64, r.dataset_fingerprint);
  *out += "    {\n";
  *out += "      \"name\": \"" + r.name + "\",\n";
  *out += "      \"dataset\": \"" + std::string(spec.dataset) + "\",\n";
  *out += "      \"dataset_fingerprint\": \"" + std::string(fp) + "\",\n";
  *out += "      \"engine\": \"" + std::string(EngineKindName(spec.engine)) +
          "\",\n";
  *out += "      \"backend\": \"" +
          std::string(IndexBackendName(spec.backend)) + "\",\n";
  *out += "      \"target_dim\": \"" + DimLabel(spec.target_dim) + "\",\n";
  *out += "      \"reduced_dims\": " + std::to_string(r.reduced_dims) + ",\n";
  *out += "      \"k\": " + std::to_string(spec.k) + ",\n";
  *out += "      \"mode\": \"" +
          std::string(spec.pooled ? "pooled" : "serial") + "\",\n";
  *out += "      \"gate\": " + std::string(spec.gate ? "true" : "false") +
          ",\n";
  *out += "      \"queries\": " + std::to_string(r.num_queries) + ",\n";
  *out += "      \"wall_us\": " + Num(r.wall_us) + ",\n";
  *out += "      \"throughput_qps\": " + Num(r.throughput_qps) + ",\n";
  *out += "      \"latency_us\": {";
  *out += "\"count\": " + std::to_string(r.latency.TotalCount());
  *out += ", \"mean\": " + Num(r.latency.Mean());
  *out += ", \"p50\": " + Num(r.latency.Quantile(0.5));
  *out += ", \"p95\": " + Num(r.latency.Quantile(0.95));
  *out += ", \"p99\": " + Num(r.latency.Quantile(0.99));
  *out += ", \"max\": " + Num(r.latency.max);
  *out += "},\n";
  *out += "      \"counters\": {";
  *out += "\"cache_hits\": " + std::to_string(r.cache_hits);
  *out += ", \"cache_misses\": " + std::to_string(r.cache_misses);
  *out += ", \"deadline_exceeded\": " + std::to_string(r.deadline_exceeded);
  *out += "},\n";
  *out += "      \"work\": {";
  *out += "\"distance_evaluations\": " +
          std::to_string(r.distance_evaluations);
  *out += ", \"nodes_visited\": " + std::to_string(r.nodes_visited);
  *out += ", \"candidates_refined\": " + std::to_string(r.candidates_refined);
  *out += "}\n";
  *out += "    }";
}

std::string RenderDocument(const std::string& suite, size_t num_queries,
                           const std::vector<SeriesResult>& series) {
  std::string out = "{\n";
  out += "  \"schema\": \"" + std::string(kBenchSchema) + "\",\n";
  out += "  \"suite\": \"" + suite + "\",\n";
  out += "  \"generated_by\": \"cohere_bench\",\n";
  out += "  \"machine\": {";
  out += "\"hardware_concurrency\": " +
         std::to_string(std::thread::hardware_concurrency());
  out += ", \"pool_threads\": " + std::to_string(ParallelThreadCount());
  out += ", \"pointer_bits\": " + std::to_string(sizeof(void*) * 8);
#ifdef NDEBUG
  out += ", \"assertions\": false";
#else
  out += ", \"assertions\": true";
#endif
  out += ", \"compiler\": \"" __VERSION__ "\"";
  // The kernel tier the run dispatched to (and the best this CPU supports):
  // bench_compare.py refuses to silently diff documents measured at
  // different levels.
  out += ", \"simd_level\": \"" +
         std::string(simd::LevelName(simd::ActiveLevel())) + "\"";
  out += ", \"simd_detected\": \"" +
         std::string(simd::LevelName(simd::DetectedLevel())) + "\"";
  out += "},\n";
  out += "  \"config\": {\"queries_per_case\": " +
         std::to_string(num_queries) + "},\n";
  out += "  \"series\": [\n";
  for (size_t i = 0; i < series.size(); ++i) {
    AppendSeriesJson(series[i], &out);
    out += i + 1 < series.size() ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

int Usage() {
  std::fprintf(stderr,
               "usage: cohere_bench [--suite smoke|standard] [--out FILE]\n"
               "                    [--queries N] [--query-log FILE] [--list]\n"
               "  --suite      case grid to run (default smoke)\n"
               "  --out        output path (default BENCH_<suite>.json)\n"
               "  --queries    queries per case (default: 64 smoke, 256 "
               "standard)\n"
               "  --query-log  drain the wide-event query log to FILE "
               "(JSONL)\n"
               "  --list       print the suite's series names and exit\n");
  return 2;
}

int Main(int argc, char** argv) {
  std::string suite = "smoke";
  std::string out_path;
  std::string query_log_path;
  size_t num_queries = 0;
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--suite") {
      suite = value();
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--queries") {
      Result<long long> parsed = ParseInt(value());
      if (!parsed.ok() || *parsed <= 0) {
        std::fprintf(stderr, "bad --queries value\n");
        return 2;
      }
      num_queries = static_cast<size_t>(*parsed);
    } else if (arg == "--query-log") {
      query_log_path = value();
      if (query_log_path.empty()) {
        std::fprintf(stderr, "--query-log needs a file path\n");
        return 2;
      }
    } else if (arg == "--list") {
      list_only = true;
    } else {
      return Usage();
    }
  }

  const CaseSpec* cases = nullptr;
  size_t num_cases = 0;
  if (suite == "smoke") {
    cases = kSmokeSuite;
    num_cases = sizeof(kSmokeSuite) / sizeof(kSmokeSuite[0]);
    if (num_queries == 0) num_queries = 64;
  } else if (suite == "standard") {
    cases = kStandardSuite;
    num_cases = sizeof(kStandardSuite) / sizeof(kStandardSuite[0]);
    if (num_queries == 0) num_queries = 256;
  } else {
    std::fprintf(stderr, "unknown suite '%s' (want smoke or standard)\n",
                 suite.c_str());
    return 2;
  }
  if (out_path.empty()) out_path = "BENCH_" + suite + ".json";

  if (list_only) {
    for (size_t i = 0; i < num_cases; ++i) {
      std::printf("%s\n", SeriesName(cases[i]).c_str());
    }
    for (simd::Level level : KernelScanLevels()) {
      std::printf("kernel_scan.l2.%s\n", simd::LevelName(level));
    }
    return 0;
  }

  if (!obs::MetricsRegistry::Enabled()) {
    std::fprintf(stderr,
                 "cohere_bench needs the metrics registry (unset "
                 "COHERE_METRICS)\n");
    return 2;
  }

  if (!query_log_path.empty()) {
    obs::QueryLog::Global().Start(obs::QueryLogOptions{});
  }

  std::map<std::string, Dataset> datasets;
  std::vector<SeriesResult> series;
  series.reserve(num_cases);
  for (size_t i = 0; i < num_cases; ++i) {
    const CaseSpec& spec = cases[i];
    auto it = datasets.find(spec.dataset);
    if (it == datasets.end()) {
      it = datasets.emplace(spec.dataset, MakeDataset(spec.dataset)).first;
    }
    Result<SeriesResult> result = RunCase(spec, it->second, num_queries);
    if (!result.ok()) {
      std::fprintf(stderr, "case %s failed: %s\n",
                   SeriesName(spec).c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "%-44s p50 %8.2f us  %10.0f q/s\n",
                 result->name.c_str(), result->latency.Quantile(0.5),
                 result->throughput_qps);
    series.push_back(std::move(*result));
  }

  // Kernel microbenchmark: one blocked-L2 scan series per dispatch level
  // this CPU supports, over a grid large enough that a full pass dwarfs the
  // timer resolution but small enough to stay cache-resident (1024 x 32
  // doubles = 256 KiB) — the serving shards it stands in for are L2-sized,
  // and a DRAM-bound grid would flatten every tier to memory bandwidth.
  // Same rows and queries at every level; the bit-exact kernel contract
  // means every level prints the same fingerprint.
  {
    LatentFactorConfig config;
    config.num_records = 1024;
    config.num_attributes = 32;
    config.num_concepts = 6;
    config.num_classes = 2;
    config.seed = 9007;
    const Dataset grid = GenerateLatentFactor(config);
    const BlockedMatrix rows(grid.features());
    const size_t nq = std::min(num_queries, grid.NumRecords());
    Matrix queries(nq, grid.NumAttributes());
    for (size_t i = 0; i < nq; ++i) queries.SetRow(i, grid.Record(i));
    for (simd::Level level : KernelScanLevels()) {
      SeriesResult result = RunKernelScanCase(level, rows, queries);
      std::fprintf(stderr, "%-44s p50 %8.2f us  %10.0f q/s\n",
                   result.name.c_str(), result.latency.Quantile(0.5),
                   result.throughput_qps);
      series.push_back(std::move(result));
    }
  }

  const std::string rendered = RenderDocument(suite, num_queries, series);
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  const size_t written = std::fwrite(rendered.data(), 1, rendered.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != rendered.size() || !closed) {
    std::fprintf(stderr, "short write to %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu series to %s\n", series.size(),
               out_path.c_str());

  if (!query_log_path.empty()) {
    obs::QueryLog& log = obs::QueryLog::Global();
    log.Stop();
    const Status status = log.WriteJsonl(query_log_path);
    if (!status.ok()) {
      std::fprintf(stderr, "cannot write query log: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "query log written to %s (%llu events, %llu dropped, %llu "
                 "sampled out)\n",
                 query_log_path.c_str(),
                 static_cast<unsigned long long>(log.CapturedCount()),
                 static_cast<unsigned long long>(log.DroppedCount()),
                 static_cast<unsigned long long>(log.SampledOutCount()));
  }
  return 0;
}

}  // namespace
}  // namespace cohere

int main(int argc, char** argv) { return cohere::Main(argc, argv); }
