#!/usr/bin/env python3
"""Validate and diff cohere_bench BENCH_*.json documents.

Usage:
  bench_compare.py --validate FILE
      Schema-check one document; exit 0 when it is a well-formed
      cohere.bench.v1 file, 2 otherwise.

  bench_compare.py [--threshold FRAC] [--floor-us US] [--all] OLD NEW
      Compare two documents series-by-series. A gated series regresses when
      its NEW p50 or mean latency exceeds OLD by more than FRAC (default
      0.25, i.e. +25%). Relative growth is measured against
      max(OLD, --floor-us) — the absolute floor (default 0.5µs) keeps a
      zero or near-zero OLD latency from swallowing the gate: without it,
      OLD p50 == 0 made any NEW value pass trivially. Exit codes: 0 no
      regression, 1 regression, 2 schema error or a gated OLD series
      missing from NEW. --all also gates series marked "gate": false
      (pooled runs, machine-sensitive).

Latency-only gating is deliberate: throughput is derived from the same
interval (wall clock), so gating it too would double-report every miss.
"""

import argparse
import json
import math
import sys

SCHEMA = "cohere.bench.v1"

SERIES_FIELDS = {
    "name": str,
    "dataset": str,
    "dataset_fingerprint": str,
    "backend": str,
    "target_dim": str,
    "reduced_dims": int,
    "k": int,
    "mode": str,
    "gate": bool,
    "queries": int,
    "wall_us": (int, float),
    "throughput_qps": (int, float),
    "latency_us": dict,
    "work": dict,
}

LATENCY_FIELDS = ("count", "mean", "p50", "p95", "p99", "max")
WORK_FIELDS = ("distance_evaluations", "nodes_visited", "candidates_refined")
# Per-series registry counter deltas (schema-additive: documents written
# before the field existed still validate). Drift is reported, never gated —
# cache behaviour is config-sensitive, not a latency regression.
COUNTER_FIELDS = ("cache_hits", "cache_misses", "deadline_exceeded")


def fail(msg):
    print(f"bench_compare: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def validate(doc, path):
    """Checks `doc` against the cohere.bench.v1 schema; exits 2 on error."""
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    for key in ("suite", "generated_by"):
        if not isinstance(doc.get(key), str):
            fail(f"{path}: missing or non-string {key!r}")
    if not isinstance(doc.get("machine"), dict):
        fail(f"{path}: missing machine object")
    series = doc.get("series")
    if not isinstance(series, list) or not series:
        fail(f"{path}: missing or empty series list")
    seen = set()
    for s in series:
        if not isinstance(s, dict):
            fail(f"{path}: series entry is not an object")
        for field, types in SERIES_FIELDS.items():
            if field not in s:
                fail(f"{path}: series {s.get('name', '?')!r} missing {field!r}")
            if not isinstance(s[field], types) or isinstance(s[field], bool) != (
                types is bool
            ):
                fail(f"{path}: series {s['name']!r} field {field!r} has wrong type")
        name = s["name"]
        if name in seen:
            fail(f"{path}: duplicate series {name!r}")
        seen.add(name)
        for field in LATENCY_FIELDS:
            v = s["latency_us"].get(field)
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                fail(f"{path}: series {name!r} latency_us.{field} is not numeric")
            if isinstance(v, float) and not math.isfinite(v):
                fail(f"{path}: series {name!r} latency_us.{field} is not finite")
        if s["latency_us"]["count"] <= 0:
            fail(f"{path}: series {name!r} recorded no latencies")
        for field in WORK_FIELDS:
            v = s["work"].get(field)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                fail(f"{path}: series {name!r} work.{field} is not a count")
        if "counters" in s:
            if not isinstance(s["counters"], dict):
                fail(f"{path}: series {name!r} counters is not an object")
            for field in COUNTER_FIELDS:
                v = s["counters"].get(field)
                if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                    fail(f"{path}: series {name!r} counters.{field} "
                         f"is not a count")


def counter_drift(old, new):
    """Human-readable counter deltas between two series, or None."""
    old_c, new_c = old.get("counters"), new.get("counters")
    if not isinstance(old_c, dict) or not isinstance(new_c, dict):
        return None
    parts = []
    for field in COUNTER_FIELDS:
        ov, nv = old_c.get(field, 0), new_c.get(field, 0)
        if ov != nv:
            parts.append(f"{field} {ov} -> {nv}")
    return "; ".join(parts) if parts else None


def compare(old_doc, new_doc, threshold, gate_all, floor_us):
    """Prints a per-series delta table; returns the number of regressions."""
    new_by_name = {s["name"]: s for s in new_doc["series"]}
    regressions = 0
    drifts = []
    width = max(len(s["name"]) for s in old_doc["series"])
    print(f"{'series':<{width}}  {'old p50':>10}  {'new p50':>10}  "
          f"{'delta':>8}  gate")
    for old in old_doc["series"]:
        name = old["name"]
        gated = old["gate"] or gate_all
        new = new_by_name.get(name)
        if new is None:
            if gated:
                fail(f"gated series {name!r} missing from the new document")
            print(f"{name:<{width}}  {'-':>10}  {'-':>10}  {'-':>8}  skipped")
            continue
        if old["dataset_fingerprint"] != new["dataset_fingerprint"]:
            fail(f"series {name!r}: dataset fingerprints differ "
                 f"({old['dataset_fingerprint']} vs "
                 f"{new['dataset_fingerprint']}) — not comparable")
        worst = 0.0
        for field in ("p50", "mean"):
            old_v = old["latency_us"][field]
            new_v = new["latency_us"][field]
            # Growth against max(old, floor): a zero/near-zero OLD sample
            # (clock granularity, degenerate run) must not disable the gate.
            worst = max(worst, (new_v - old_v) / max(old_v, floor_us))
        regressed = gated and worst > threshold
        regressions += regressed
        flag = "REGRESSED" if regressed else ("yes" if gated else "no")
        print(f"{name:<{width}}  {old['latency_us']['p50']:>10.3f}  "
              f"{new['latency_us']['p50']:>10.3f}  {worst:>+7.1%}  {flag}")
        drift = counter_drift(old, new)
        if drift is not None:
            drifts.append((name, drift))
    # Informational only: counter drift flags behavioural change (cache hit
    # rate, deadline pressure) that a latency gate would misattribute.
    for name, drift in drifts:
        print(f"bench_compare: counter drift in {name}: {drift}")
    return regressions


def main():
    parser = argparse.ArgumentParser(add_help=True)
    parser.add_argument("--validate", action="store_true",
                        help="schema-check a single file")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative latency growth tolerated (default 0.25)")
    parser.add_argument("--floor-us", type=float, default=0.5,
                        help="absolute latency floor in µs used as the "
                        "denominator for near-zero OLD samples (default 0.5)")
    parser.add_argument("--all", action="store_true",
                        help="gate every series, including machine-sensitive ones")
    parser.add_argument("files", nargs="+", metavar="FILE")
    args = parser.parse_args()

    if args.validate:
        if len(args.files) != 1:
            fail("--validate takes exactly one file")
        doc = load(args.files[0])
        validate(doc, args.files[0])
        print(f"{args.files[0]}: valid {SCHEMA} "
              f"({len(doc['series'])} series, suite {doc['suite']!r})")
        return 0

    if len(args.files) != 2:
        fail("compare mode takes exactly two files (OLD NEW)")
    if not 0 <= args.threshold:
        fail("--threshold must be non-negative")
    if not args.floor_us > 0:
        fail("--floor-us must be positive")
    old_doc, new_doc = load(args.files[0]), load(args.files[1])
    validate(old_doc, args.files[0])
    validate(new_doc, args.files[1])
    if old_doc["suite"] != new_doc["suite"]:
        fail(f"suite mismatch: {old_doc['suite']!r} vs {new_doc['suite']!r}")
    # Documents measured at different SIMD dispatch tiers are not latency-
    # comparable: a COHERE_SIMD=scalar run "regressing" against an avx2
    # baseline (or quietly improving the other way) would gate the wrong
    # thing. Warn loudly; documents predating the field stay silent.
    old_simd = old_doc["machine"].get("simd_level")
    new_simd = new_doc["machine"].get("simd_level")
    if old_simd != new_simd:
        print(f"bench_compare: WARNING: SIMD dispatch levels differ "
              f"(old={old_simd!r}, new={new_simd!r}) — latency deltas "
              f"reflect the kernel tier, not the code under test",
              file=sys.stderr)

    regressions = compare(old_doc, new_doc, args.threshold, args.all,
                          args.floor_us)
    if regressions:
        print(f"bench_compare: {regressions} series regressed beyond "
              f"{args.threshold:.0%}", file=sys.stderr)
        return 1
    print("bench_compare: no regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
