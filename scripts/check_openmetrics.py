#!/usr/bin/env python3
"""Strict validator for cohere's OpenMetrics text exposition.

Usage:
  check_openmetrics.py FILE       validate FILE
  check_openmetrics.py -          validate stdin

Checks the subset of the OpenMetrics 1.0 text format that
`MetricsSnapshot::ToOpenMetrics()` promises to emit:

  - the last line is exactly `# EOF`, with nothing after it;
  - every metric family is introduced by a `# TYPE` line (counter, gauge
    or histogram) before any of its samples, at most one TYPE per family,
    and families are not interleaved;
  - metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`;
  - counter samples use the `_total` suffix and are non-negative finite;
  - histogram families expose `_bucket{le="..."}` series with strictly
    increasing `le` bounds and non-decreasing cumulative counts, ending at
    `le="+Inf"` whose count equals the family's `_count`, plus a `_sum`.

Exit codes: 0 valid, 1 invalid, 2 usage/IO error.
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"$')
TYPES = ("counter", "gauge", "histogram")


def parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


class Family:
    def __init__(self, name, kind):
        self.name = name
        self.kind = kind
        self.buckets = []  # (le, cumulative count) in emission order
        self.count = None
        self.sum = None
        self.samples = 0


def fail(lineno, message):
    print(f"check_openmetrics: line {lineno}: {message}", file=sys.stderr)
    return 1


def validate(lines):
    families = {}
    current = None  # family open for samples; TYPE of another closes it
    saw_eof = False

    for lineno, line in enumerate(lines, start=1):
        if saw_eof:
            return fail(lineno, "content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if not line:
            return fail(lineno, "blank line")

        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                return fail(lineno, f"malformed TYPE line: {line!r}")
            _, _, name, kind = parts
            if not NAME_RE.match(name):
                return fail(lineno, f"bad metric name {name!r}")
            if kind not in TYPES:
                return fail(lineno, f"unknown type {kind!r}")
            if name in families:
                return fail(lineno, f"duplicate TYPE for {name}")
            current = Family(name, kind)
            families[name] = current
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not NAME_RE.match(parts[2]):
                return fail(lineno, f"malformed HELP line: {line!r}")
            if current is None or parts[2] != current.name:
                return fail(lineno, f"HELP for {parts[2]} outside its family")
            continue
        if line.startswith("#"):
            return fail(lineno, f"unknown comment line: {line!r}")

        m = SAMPLE_RE.match(line)
        if m is None:
            return fail(lineno, f"malformed sample line: {line!r}")
        sample = m.group("name")
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            return fail(lineno, f"bad sample value {m.group('value')!r}")
        labels = {}
        if m.group("labels") is not None:
            for item in m.group("labels").split(","):
                lm = LABEL_RE.match(item)
                if lm is None:
                    return fail(lineno, f"malformed label {item!r}")
                labels[lm.group("key")] = lm.group("val")

        if current is None:
            return fail(lineno, f"sample {sample!r} before any TYPE line")

        fam = current
        if fam.kind == "counter":
            if sample != fam.name + "_total":
                return fail(
                    lineno,
                    f"counter sample {sample!r} must be {fam.name}_total")
            if labels:
                return fail(lineno, f"unexpected labels on {sample!r}")
            if not (value >= 0 and math.isfinite(value)):
                return fail(lineno, f"counter value {value} not a finite >= 0")
        elif fam.kind == "gauge":
            if sample != fam.name:
                return fail(
                    lineno, f"gauge sample {sample!r} must be {fam.name}")
            if labels:
                return fail(lineno, f"unexpected labels on {sample!r}")
        else:  # histogram
            if sample == fam.name + "_bucket":
                if set(labels) != {"le"}:
                    return fail(lineno, f"bucket needs exactly an le label")
                try:
                    le = parse_value(labels["le"])
                except ValueError:
                    return fail(lineno, f"bad le bound {labels['le']!r}")
                if fam.count is not None or fam.sum is not None:
                    return fail(
                        lineno, f"bucket after _count/_sum in {fam.name}")
                if fam.buckets:
                    prev_le, prev_count = fam.buckets[-1]
                    if not le > prev_le:
                        return fail(
                            lineno,
                            f"le bounds not strictly increasing in {fam.name}")
                    if value < prev_count:
                        return fail(
                            lineno,
                            f"bucket counts not monotone in {fam.name}")
                if not (value >= 0 and math.isfinite(value)):
                    return fail(lineno, f"bucket count {value} invalid")
                fam.buckets.append((le, value))
            elif sample == fam.name + "_count":
                if labels:
                    return fail(lineno, f"unexpected labels on {sample!r}")
                fam.count = value
            elif sample == fam.name + "_sum":
                if labels:
                    return fail(lineno, f"unexpected labels on {sample!r}")
                fam.sum = value
            else:
                return fail(
                    lineno,
                    f"histogram sample {sample!r} not _bucket/_count/_sum")
        fam.samples += 1

    if not saw_eof:
        return fail(len(lines) + 1, "missing terminal # EOF")

    for fam in families.values():
        if fam.samples == 0:
            return fail(0, f"family {fam.name} has no samples")
        if fam.kind != "histogram":
            continue
        if not fam.buckets:
            return fail(0, f"histogram {fam.name} has no buckets")
        if fam.buckets[-1][0] != math.inf:
            return fail(0, f"histogram {fam.name} missing le=\"+Inf\" bucket")
        if fam.count is None or fam.sum is None:
            return fail(0, f"histogram {fam.name} missing _count or _sum")
        if fam.buckets[-1][1] != fam.count:
            return fail(
                0,
                f"histogram {fam.name}: +Inf bucket {fam.buckets[-1][1]} != "
                f"_count {fam.count}")
    return 0


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        if argv[1] == "-":
            text = sys.stdin.read()
        else:
            with open(argv[1], "r", encoding="utf-8") as f:
                text = f.read()
    except OSError as e:
        print(f"check_openmetrics: {e}", file=sys.stderr)
        return 2
    if not text.endswith("\n"):
        print("check_openmetrics: exposition must end with a newline",
              file=sys.stderr)
        return 1
    lines = text.split("\n")[:-1]  # drop the empty tail from the final \n
    rc = validate(lines)
    if rc == 0:
        families = sum(1 for line in lines if line.startswith("# TYPE "))
        print(f"check_openmetrics: OK ({families} families, "
              f"{len(lines)} lines)")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
