#!/usr/bin/env bash
# Tier-1 gate: the standard build + full ctest run, a cohere_bench smoke
# run whose JSON is schema-validated and pushed through the
# bench_compare.py regression gate (self-compare must pass, an injected
# 50% latency inflation must fail), a SIMD kernel leg (the kernel-parity
# and golden-hash suites pinned to COHERE_SIMD=scalar and =avx2, plus a
# measured avx2-vs-scalar speedup gate over the kernel_scan bench series),
# a query-flight-recorder probe (the CLI's
# OpenMetrics exposition strict-parsed by check_openmetrics.py, the EXPLAIN
# profile round-tripped through json.load with phase counters summing to its
# totals, the query log drained as JSONL), then a ThreadSanitizer
# build that re-runs the concurrency-sensitive suites, then an
# UndefinedBehaviorSanitizer build that re-runs the numeric/metrics suites
# (the histogram binning paths cast doubles around; UBSan is the regression
# net for the non-finite-cast class of bug), then an AddressSanitizer build
# that re-runs the suites exercising the failure paths, and finally a
# fault-injection sweep: the robustness suite re-runs with each registered
# COHERE_FAULT point forced at probability 1.0, proving every documented
# failure outcome holds when its fault actually fires. Run from the repo
# root:
#
#   scripts/tier1.sh [build-dir] [tsan-build-dir] [ubsan-build-dir] [asan-build-dir]
#
# Set COHERE_SKIP_TSAN=1 / COHERE_SKIP_UBSAN=1 / COHERE_SKIP_ASAN=1 to skip
# a sanitizer stage (e.g. on toolchains or kernels where it is unavailable).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
TSAN_DIR="${2:-$ROOT/build-tsan}"
UBSAN_DIR="${3:-$ROOT/build-ubsan}"
ASAN_DIR="${4:-$ROOT/build-asan}"

echo "==> tier-1: standard build"
cmake -B "$BUILD_DIR" -S "$ROOT" >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "==> tier-1: full test suite"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "==> tier-1: benchmark smoke suite + regression-gate self-check"
BENCH_TMP="$(mktemp -d)"
trap 'rm -rf "$BENCH_TMP"' EXIT
"$BUILD_DIR/tools/cohere_bench" --suite smoke --out "$BENCH_TMP/BENCH_smoke.json"
python3 "$ROOT/scripts/bench_compare.py" --validate "$BENCH_TMP/BENCH_smoke.json"
# A document must never regress against itself...
python3 "$ROOT/scripts/bench_compare.py" \
  "$BENCH_TMP/BENCH_smoke.json" "$BENCH_TMP/BENCH_smoke.json"
# ...and a 50% latency inflation must trip the gate (exit 1).
python3 - "$BENCH_TMP/BENCH_smoke.json" "$BENCH_TMP/BENCH_inflated.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for series in doc["series"]:
    for field in ("mean", "p50", "p95", "p99"):
        series["latency_us"][field] *= 1.5
json.dump(doc, open(sys.argv[2], "w"))
EOF
if python3 "$ROOT/scripts/bench_compare.py" \
    "$BENCH_TMP/BENCH_smoke.json" "$BENCH_TMP/BENCH_inflated.json" >/dev/null; then
  echo "ERROR: bench_compare did not flag a 50% latency inflation" >&2
  exit 1
fi
# ...and a zeroed OLD latency must not bypass the gate: the --floor-us
# denominator floor turns OLD p50 == 0 vs a real NEW latency into a
# regression, while 0-vs-0 still compares clean.
python3 - "$BENCH_TMP/BENCH_smoke.json" "$BENCH_TMP/BENCH_zero_old.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for series in doc["series"]:
    if series["gate"]:
        series["latency_us"]["p50"] = 0.0
        series["latency_us"]["mean"] = 0.0
json.dump(doc, open(sys.argv[2], "w"))
EOF
if python3 "$ROOT/scripts/bench_compare.py" \
    "$BENCH_TMP/BENCH_zero_old.json" "$BENCH_TMP/BENCH_smoke.json" >/dev/null; then
  echo "ERROR: bench_compare passed gated series whose OLD p50 was zero" >&2
  exit 1
fi
python3 "$ROOT/scripts/bench_compare.py" \
  "$BENCH_TMP/BENCH_zero_old.json" "$BENCH_TMP/BENCH_zero_old.json" >/dev/null
# The cached Zipf series must beat the cold one by >=5x at p50 — the
# end-to-end proof that the result cache actually serves repeat queries.
python3 - "$BENCH_TMP/BENCH_smoke.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
p50 = {s["name"]: s["latency_us"]["p50"] for s in doc["series"]}
cold = p50["synthetic.kd_tree.d8.k4.zipf_cold.serial"]
cached = p50["synthetic.kd_tree.d8.k4.zipf_cached.serial"]
speedup = cold / max(cached, 1e-9)
print(f"zipf cache speedup: {speedup:.1f}x (cold {cold}us, cached {cached}us)")
if speedup < 5.0:
    sys.exit("ERROR: cached Zipf series is not >=5x faster than cold")
EOF
echo "==> tier-1: bench gate OK (self-compare clean, inflation + zero-floor flagged)"

echo "==> tier-1: SIMD kernel leg (forced dispatch levels + speedup gate)"
# The kernel-parity and golden-hash suites re-run with the dispatch level
# pinned through the COHERE_SIMD override: scalar always, avx2 when this
# CPU has it (graceful skip otherwise — the suites' own level loops already
# clamp to DetectedLevel). The serving pins must hold bit-for-bit however
# the process-wide default resolves.
KERNEL_FILTER='*Kernel*:*Simd*:*Golden*'
COHERE_SIMD=scalar "$BUILD_DIR/tests/simd_tests" --gtest_brief=1
COHERE_SIMD=scalar "$BUILD_DIR/tests/core_tests" \
  --gtest_filter="$KERNEL_FILTER" --gtest_brief=1
if grep -qw avx2 /proc/cpuinfo 2>/dev/null \
    && grep -qw fma /proc/cpuinfo 2>/dev/null; then
  COHERE_SIMD=avx2 "$BUILD_DIR/tests/simd_tests" --gtest_brief=1
  COHERE_SIMD=avx2 "$BUILD_DIR/tests/core_tests" \
    --gtest_filter="$KERNEL_FILTER" --gtest_brief=1
  # Measured-speedup gate: the smoke document's kernel_scan series time the
  # same blocked-L2 scan per dispatch level; avx2 must actually beat scalar.
  # The bar is 1.3x, not the naive 4x: the scalar oracle TU is itself
  # auto-vectorized 2-wide by the compiler (legal — across-row vectorization
  # preserves per-lane accumulation order), and the bit-exactness contract
  # forbids the reassociation that would widen the gap, so the structural
  # ceiling is ~2x and measured runs land around 1.45x. 1.3x is far above
  # run-to-run noise while never flaking on an honest build.
  python3 - "$BENCH_TMP/BENCH_smoke.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
p50 = {s["name"]: s["latency_us"]["p50"] for s in doc["series"]}
scalar = p50.get("kernel_scan.l2.scalar")
avx2 = p50.get("kernel_scan.l2.avx2")
assert scalar is not None and avx2 is not None, "kernel_scan series missing"
speedup = scalar / max(avx2, 1e-9)
print(f"kernel_scan avx2 speedup: {speedup:.2f}x "
      f"(scalar {scalar}us, avx2 {avx2}us)")
if speedup < 1.3:
    sys.exit("ERROR: blocked avx2 kernel is not >=1.3x faster than scalar")
EOF
  echo "==> tier-1: kernel leg OK (parity + goldens at scalar/avx2, speedup gated)"
else
  echo "==> tier-1: avx2 kernel leg skipped (CPU lacks avx2+fma)"
fi

echo "==> tier-1: query flight recorder (openmetrics + explain + query log)"
# The CLI is the end-to-end probe for the whole recorder: one engine build
# and one query emit (a) a strict OpenMetrics exposition, (b) an EXPLAIN
# profile whose phase counters sum to its totals, and (c) a JSONL query log.
printf '1.0,2.0,3.5\n2.0,2.5,3.0\n0.5,1.5,4.0\n3.0,2.0,2.5\n1.5,2.2,3.1\n' \
  > "$BENCH_TMP/flight.csv"
"$BUILD_DIR/tools/cohere_cli" query "$BENCH_TMP/flight.csv" --row 0 --k 2 \
  --cache-budget 65536 \
  --explain --explain-out "$BENCH_TMP/explain.json" \
  --query-log "$BENCH_TMP/queries.jsonl" \
  --metrics openmetrics --metrics-out "$BENCH_TMP/metrics.om" >/dev/null
python3 "$ROOT/scripts/check_openmetrics.py" "$BENCH_TMP/metrics.om"
python3 - "$BENCH_TMP/explain.json" "$BENCH_TMP/queries.jsonl" <<'EOF'
import json, sys
profile = json.load(open(sys.argv[1]))  # must round-trip as strict JSON
for key in ("scope", "totals", "phases", "latency_us", "cache_hit"):
    assert key in profile, f"explain profile missing {key!r}"
for counter in ("distance_evaluations", "nodes_visited", "candidates_refined"):
    total = profile["totals"][counter]
    phase_sum = sum(p[counter] for p in profile["phases"])
    assert phase_sum == total, (
        f"explain {counter}: phases sum to {phase_sum}, totals say {total}")
events = [json.loads(line) for line in open(sys.argv[2]) if line.strip()]
assert events, "query log is empty"
for event in events:
    for key in ("scope", "sequence", "latency_us", "distance_evaluations"):
        assert key in event, f"query-log event missing {key!r}"
print(f"flight recorder OK: explain phases sum to totals, "
      f"{len(events)} query-log events")
EOF
echo "==> tier-1: flight recorder OK (openmetrics strict-parsed, explain sums, log drained)"

echo "==> tier-1: loadgen overload smoke (admission accounting + tail latency)"
# Closed-loop overload: 8 threads against 1 slot + 2 queue entries forces
# real shedding. The binary self-checks the accounting invariant (exit 1 on
# any mismatch); the asserts below re-check it from the emitted JSON and pin
# the serving promise — admitted queries finish inside their deadline
# budget (2x slack for scheduler noise), and overload actually shed load.
"$BUILD_DIR/tools/cohere_loadgen" --threads 8 --queries 100 \
  --max-concurrency 1 --max-queue 2 --deadline-us 300 \
  --out "$BENCH_TMP/BENCH_loadgen.json" >/dev/null
python3 "$ROOT/scripts/bench_compare.py" --validate "$BENCH_TMP/BENCH_loadgen.json"
python3 - "$BENCH_TMP/BENCH_loadgen.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["series"], "loadgen emitted no series"
total_shed = 0
for series in doc["series"]:
    adm = series["admission"]
    name = series["name"]
    offered = adm["offered"]
    assert offered == adm["admitted"] + adm["shed"] + adm["rejected"], (
        f"{name}: offered {offered} != admitted {adm['admitted']} + "
        f"shed {adm['shed']} + rejected {adm['rejected']}")
    assert offered == series["queries"], (
        f"{name}: offered {offered} != issued {series['queries']}")
    p99 = series["latency_us"]["p99"]
    budget = 2.0 * adm["deadline_us"]
    assert p99 <= budget, (
        f"{name}: admitted p99 {p99}us blew the deadline budget {budget}us")
    total_shed += adm["shed"] + adm["rejected"]
print(f"loadgen OK: invariant exact on {len(doc['series'])} series, "
      f"{total_shed} queries shed/rejected under overload")
assert total_shed > 0, "overload run shed nothing: knobs no longer overload"
EOF
# Brownout-to-blackout sweep: with core.admission.shed forced at p=1.0
# every arrival is shed — the harness must degrade (zero goodput, exact
# accounting, exit 0), never hang or crash. The schema validator is skipped
# here: an all-shed run legitimately has an empty latency distribution.
COHERE_FAULT=core.admission.shed:1.0 "$BUILD_DIR/tools/cohere_loadgen" \
  --threads 4 --queries 32 --inserts 0 \
  --out "$BENCH_TMP/BENCH_loadgen_shed.json" >/dev/null
python3 - "$BENCH_TMP/BENCH_loadgen_shed.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for series in doc["series"]:
    adm = series["admission"]
    assert adm["admitted"] == 0, f"{series['name']}: fault run admitted queries"
    assert adm["offered"] == adm["shed"], (
        f"{series['name']}: offered {adm['offered']} != shed {adm['shed']}")
print("loadgen all-shed fault run OK: degraded cleanly, accounting exact")
EOF
echo "==> tier-1: loadgen OK (invariant exact, p99 within budget, all-shed degrades)"

if [[ "${COHERE_SKIP_TSAN:-0}" == "1" ]]; then
  echo "==> tier-1: TSAN stage skipped (COHERE_SKIP_TSAN=1)"
else
  echo "==> tier-1: ThreadSanitizer build"
  cmake -B "$TSAN_DIR" -S "$ROOT" -DCOHERE_SANITIZE=thread \
    -DCOHERE_BUILD_BENCHMARKS=OFF >/dev/null
  cmake --build "$TSAN_DIR" -j "$(nproc)" --target common_tests index_tests \
    linalg_tests stats_tests reduction_tests core_tests obs_tests cache_tests

  echo "==> tier-1: parallel suites under TSAN"
  "$TSAN_DIR/tests/common_tests" --gtest_filter='Parallel*'
  "$TSAN_DIR/tests/index_tests" --gtest_filter='QueryBatch*'
  # The whole cache binary is concurrency-sensitive (lock-striped shards,
  # lossy frequency buffer, manager rebalance), so run it unfiltered.
  "$TSAN_DIR/tests/cache_tests"
  "$TSAN_DIR/tests/linalg_tests" --gtest_filter='MatrixParallelTest*'
  "$TSAN_DIR/tests/stats_tests" --gtest_filter='CovarianceParallelTest*'
  "$TSAN_DIR/tests/reduction_tests" --gtest_filter='CoherenceParallelTest*'
  # scripts/tsan.supp masks the libstdc++ atomic<shared_ptr> false positive
  # (GCC PR 101761) that the snapshot handle would otherwise trip.
  TSAN_OPTIONS="suppressions=$ROOT/scripts/tsan.supp ${TSAN_OPTIONS:-}" \
    "$TSAN_DIR/tests/core_tests" \
    --gtest_filter='EngineTest.QueryBatch*:EngineTest.NumThreads*:Serving*'
  "$TSAN_DIR/tests/obs_tests" --gtest_filter='*Concurrent*'
fi

if [[ "${COHERE_SKIP_UBSAN:-0}" == "1" ]]; then
  echo "==> tier-1: UBSAN stage skipped (COHERE_SKIP_UBSAN=1)"
else
  echo "==> tier-1: UndefinedBehaviorSanitizer build"
  cmake -B "$UBSAN_DIR" -S "$ROOT" -DCOHERE_SANITIZE=undefined \
    -DCOHERE_BUILD_BENCHMARKS=OFF >/dev/null
  cmake --build "$UBSAN_DIR" -j "$(nproc)" --target stats_tests obs_tests \
    simd_tests

  echo "==> tier-1: stats + obs + simd suites under UBSAN"
  "$UBSAN_DIR/tests/stats_tests"
  "$UBSAN_DIR/tests/obs_tests"
  # The kernel suite feeds denormals/inf/NaN through every vector path;
  # UBSan would flag any misaligned load or bad pointer arithmetic there.
  "$UBSAN_DIR/tests/simd_tests"
fi

if [[ "${COHERE_SKIP_ASAN:-0}" == "1" ]]; then
  echo "==> tier-1: ASAN stage skipped (COHERE_SKIP_ASAN=1)"
else
  echo "==> tier-1: AddressSanitizer build"
  cmake -B "$ASAN_DIR" -S "$ROOT" -DCOHERE_SANITIZE=address \
    -DCOHERE_BUILD_BENCHMARKS=OFF >/dev/null
  cmake --build "$ASAN_DIR" -j "$(nproc)" --target common_tests core_tests \
    reduction_tests integration_tests simd_tests linalg_tests

  echo "==> tier-1: failure-path suites under ASAN"
  "$ASAN_DIR/tests/common_tests" --gtest_filter='Fault*:Parallel*'
  "$ASAN_DIR/tests/core_tests" --gtest_filter='DynamicEngine*'
  "$ASAN_DIR/tests/reduction_tests" --gtest_filter='Pipeline*'
  "$ASAN_DIR/tests/integration_tests"
  # Aligned-load coverage: the block kernels read row tails and the padded
  # BlockedMatrix region; ASan proves no kernel reads past an allocation.
  "$ASAN_DIR/tests/simd_tests"
  "$ASAN_DIR/tests/linalg_tests" --gtest_filter='BlockedMatrix*'
fi

echo "==> tier-1: fault-injection sweep (each point at probability 1.0)"
# The robustness suite documents one outcome per fault point; sweeping each
# point armed unconditionally proves those outcomes hold when the fault
# really fires, not just in the targeted Arm()-based tests.
#
# parallel.dispatch and core.snapshot.publish are special-cased: at p=1.0
# the former poisons *every* pooled region and the latter fails *every*
# replacement snapshot publish (insert/refit/rebuild) in the process, so
# only the FaultMatrix tests (which disarm in their fixture before touching
# those paths) can run under them.
ROBUSTNESS_FILTER='RobustnessTest.*:PipelinePropertyTest.*'
ROBUSTNESS_FILTER+=':SerializationIntegrationTest.*:FaultMatrix*'
FAULT_POINTS=(
  linalg.symmetric_eigen.converge linalg.jacobi_eigen.converge
  linalg.power_iteration.converge linalg.svd.converge
  data.loader.io reduction.fit.primary dynamic_index.refit
  parallel.dispatch core.snapshot.publish cache.insert.pressure
  core.admission.shed
)
for point in "${FAULT_POINTS[@]}"; do
  filter="$ROBUSTNESS_FILTER"
  if [[ "$point" == "parallel.dispatch" || "$point" == "core.snapshot.publish" ]]; then
    filter='FaultMatrix*'
  fi
  echo "==> tier-1: sweep COHERE_FAULT=$point:1.0"
  COHERE_FAULT="$point:1.0" "$BUILD_DIR/tests/integration_tests" \
    --gtest_filter="$filter" --gtest_brief=1
done

echo "==> tier-1: all stages passed"
