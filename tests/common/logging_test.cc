#include "common/logging.h"

#include <gtest/gtest.h>

namespace cohere {
namespace {

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, EmitsToStderr) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  COHERE_LOG(Info) << "visible " << 42;
  COHERE_LOG(Debug) << "suppressed";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("visible 42"), std::string::npos);
  EXPECT_EQ(captured.find("suppressed"), std::string::npos);
  EXPECT_NE(captured.find("[I "), std::string::npos);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedMessageDoesNotEvaluateNothing) {
  // The macro must still be an expression statement usable in if/else.
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  if (true)
    COHERE_LOG(Info) << "never";
  else
    COHERE_LOG(Info) << "also never";
  SetLogLevel(original);
  SUCCEED();
}

}  // namespace
}  // namespace cohere
