#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <utility>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"

namespace cohere {
namespace {

// Forces a known pool size for the duration of one test and restores
// automatic sizing afterwards so tests stay order-independent.
class ScopedThreadCount {
 public:
  explicit ScopedThreadCount(size_t n) { SetParallelThreadCount(n); }
  ~ScopedThreadCount() { SetParallelThreadCount(0); }
};

TEST(ParallelThreadCountTest, ExplicitSettingWins) {
  ScopedThreadCount guard(3);
  EXPECT_EQ(ParallelThreadCount(), 3u);
}

TEST(ParallelThreadCountTest, AutoIsAtLeastOne) {
  ScopedThreadCount guard(0);
  EXPECT_GE(ParallelThreadCount(), 1u);
}

TEST(ParallelThreadCountTest, EnvironmentVariableFeedsAutoSizing) {
  ASSERT_EQ(setenv("COHERE_THREADS", "5", /*overwrite=*/1), 0);
  {
    ScopedThreadCount guard(0);
    EXPECT_EQ(ParallelThreadCount(), 5u);
    // An explicit setting overrides the environment.
    SetParallelThreadCount(2);
    EXPECT_EQ(ParallelThreadCount(), 2u);
  }
  ASSERT_EQ(unsetenv("COHERE_THREADS"), 0);
}

TEST(ParallelChunkCountTest, CeilDivisionWithZeroGuards) {
  EXPECT_EQ(ParallelChunkCount(0, 16), 0u);
  EXPECT_EQ(ParallelChunkCount(1, 16), 1u);
  EXPECT_EQ(ParallelChunkCount(16, 16), 1u);
  EXPECT_EQ(ParallelChunkCount(17, 16), 2u);
  EXPECT_EQ(ParallelChunkCount(100, 7), 15u);
  EXPECT_EQ(ParallelChunkCount(10, 0), 10u);  // grain 0 behaves like 1
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 4u}) {
    ScopedThreadCount guard(threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    ParallelFor(0, hits.size(), 16, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads
                                   << " threads";
    }
  }
}

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  ScopedThreadCount guard(4);
  bool called = false;
  ParallelFor(5, 5, 1, [&](size_t, size_t) { called = true; });
  ParallelFor(7, 3, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, NonZeroBeginIsRespected) {
  ScopedThreadCount guard(4);
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h.store(0);
  ParallelFor(10, 90, 8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 10 && i < 90) ? 1 : 0) << "index " << i;
  }
}

TEST(ParallelForIndexedTest, ChunkLayoutIsIndependentOfThreadCount) {
  const size_t n = 103;
  const size_t grain = 10;
  const size_t chunks = ParallelChunkCount(n, grain);
  ASSERT_EQ(chunks, 11u);
  for (size_t threads : {1u, 4u}) {
    ScopedThreadCount guard(threads);
    std::vector<std::pair<size_t, size_t>> bounds(chunks, {0, 0});
    ParallelForIndexed(0, n, grain, [&](size_t chunk, size_t b, size_t e) {
      bounds[chunk] = {b, e};
    });
    for (size_t c = 0; c < chunks; ++c) {
      EXPECT_EQ(bounds[c].first, c * grain);
      EXPECT_EQ(bounds[c].second, std::min(n, (c + 1) * grain));
    }
  }
}

TEST(ParallelForIndexedTest, ChunkOrderedReductionMatchesSerialSum) {
  // The canonical reduction pattern: per-chunk partials merged in chunk
  // order must give the same result at every thread count.
  const size_t n = 1000;
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = 1.0 / (1.0 + static_cast<double>(i));
  }
  std::vector<double> sums;
  for (size_t threads : {1u, 2u, 4u}) {
    ScopedThreadCount guard(threads);
    const size_t chunks = ParallelChunkCount(n, 64);
    std::vector<double> partial(chunks, 0.0);
    ParallelForIndexed(0, n, 64, [&](size_t chunk, size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) partial[chunk] += values[i];
    });
    double total = 0.0;
    for (double p : partial) total += p;
    sums.push_back(total);
  }
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(sums[0], sums[2]);
}

TEST(ParallelForTest, NestedRegionsRunSeriallyWithoutDeadlock) {
  ScopedThreadCount guard(4);
  std::atomic<int> total{0};
  ParallelFor(0, 8, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ParallelFor(0, 10, 2, [&](size_t b, size_t e) {
        total.fetch_add(static_cast<int>(e - b));
      });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ParallelForTest, PropagatesBodyException) {
  ScopedThreadCount guard(4);
  EXPECT_THROW(
      ParallelFor(0, 100, 1,
                  [](size_t begin, size_t) {
                    if (begin == 57) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ParallelExceptionTest, PoolSurvivesAThrowingTask) {
  ScopedThreadCount guard(4);
  ResetParallelTaskFailureCount();
  EXPECT_THROW(
      ParallelFor(0, 64, 1,
                  [](size_t begin, size_t) {
                    if (begin % 2 == 0) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  EXPECT_GT(ParallelTaskFailureCount(), 0u);

  // The pool must keep dispatching normally afterwards — no wedged workers,
  // no dead queue.
  std::atomic<int> count{0};
  ParallelFor(0, 100, 4, [&](size_t begin, size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 100);
  ResetParallelTaskFailureCount();
}

TEST(ParallelExceptionTest, EachFailedChunkCountsOnce) {
  ScopedThreadCount guard(2);
  ResetParallelTaskFailureCount();
  // 8 chunks of 8, every chunk throws: exactly 8 failures, first rethrown.
  EXPECT_THROW(ParallelFor(0, 64, 8,
                           [](size_t, size_t) {
                             throw std::runtime_error("each chunk fails");
                           }),
               std::runtime_error);
  EXPECT_EQ(ParallelTaskFailureCount(), 8u);
  ResetParallelTaskFailureCount();
  EXPECT_EQ(ParallelTaskFailureCount(), 0u);
}

TEST(ParallelExceptionTest, FaultInjectedDispatchThrowsAndPoolRecovers) {
  ScopedThreadCount guard(4);
  ResetParallelTaskFailureCount();
  fault::Arm(fault::kPointParallelDispatch, 1.0);
  EXPECT_THROW(ParallelFor(0, 256, 1, [](size_t, size_t) {}),
               fault::InjectedFaultError);
  EXPECT_GT(ParallelTaskFailureCount(), 0u);
  fault::DisarmAll();
  fault::ResetCounters();
  ResetParallelTaskFailureCount();

  std::atomic<int> count{0};
  ParallelFor(0, 64, 2, [&](size_t begin, size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelExceptionTest, IndexedFormAlsoRethrowsAndSurvives) {
  ScopedThreadCount guard(4);
  ResetParallelTaskFailureCount();
  EXPECT_THROW(ParallelForIndexed(0, 64, 4,
                                  [](size_t chunk, size_t, size_t) {
                                    if (chunk == 3) {
                                      throw std::runtime_error("chunk 3");
                                    }
                                  }),
               std::runtime_error);
  EXPECT_EQ(ParallelTaskFailureCount(), 1u);
  ResetParallelTaskFailureCount();

  std::atomic<int> chunks_run{0};
  ParallelForIndexed(0, 64, 4, [&](size_t, size_t, size_t) {
    chunks_run.fetch_add(1);
  });
  EXPECT_EQ(chunks_run.load(), 16);
}

TEST(ParallelForTest, PoolSurvivesThreadCountReconfiguration) {
  std::atomic<int> count{0};
  const auto body = [&](size_t begin, size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  };
  for (size_t threads : {2u, 4u, 1u, 3u}) {
    SetParallelThreadCount(threads);
    ParallelFor(0, 50, 4, body);
  }
  SetParallelThreadCount(0);
  EXPECT_EQ(count.load(), 200);
}

}  // namespace
}  // namespace cohere
