// Unit tests for the deterministic fault-injection registry.
#include "common/fault.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace cohere {
namespace fault {
namespace {

// Every test leaves the registry disarmed; faults must never leak across
// test boundaries (other suites in this binary run fault-free paths).
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DisarmAll();
    ResetCounters();
  }
  void TearDown() override {
    DisarmAll();
    ResetCounters();
  }
};

TEST_F(FaultTest, UnarmedPointNeverFires) {
  EXPECT_FALSE(AnyArmed());
  FaultPoint* point = Point("test.unarmed");
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(point->ShouldFire());
  EXPECT_EQ(point->triggers(), 0u);
  EXPECT_FALSE(COHERE_INJECT_FAULT("test.unarmed"));
}

TEST_F(FaultTest, ArmAtProbabilityOneAlwaysFires) {
  Arm("test.always", 1.0);
  EXPECT_TRUE(AnyArmed());
  FaultPoint* point = Point("test.always");
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(point->ShouldFire());
  EXPECT_EQ(point->triggers(), 50u);
  Disarm("test.always");
  EXPECT_FALSE(point->ShouldFire());
}

TEST_F(FaultTest, ProbabilityZeroNeverFires) {
  Arm("test.never", 0.0);
  FaultPoint* point = Point("test.never");
  for (int i = 0; i < 200; ++i) EXPECT_FALSE(point->ShouldFire());
  EXPECT_EQ(point->triggers(), 0u);
}

TEST_F(FaultTest, DrawsAreDeterministicForAFixedSeed) {
  // Two arming sessions with the same (probability, seed) must fire on the
  // same draw ordinals; a different seed should give a different pattern.
  auto draw_pattern = [](std::uint64_t seed) {
    Arm("test.deterministic", 0.5, seed);
    FaultPoint* point = Point("test.deterministic");
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(point->ShouldFire());
    Disarm("test.deterministic");
    return fired;
  };
  const std::vector<bool> a = draw_pattern(7);
  const std::vector<bool> b = draw_pattern(7);
  const std::vector<bool> c = draw_pattern(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // p=0.5 over 64 draws: some fire, some don't.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST_F(FaultTest, IntermediateProbabilityFiresAtRoughlyTheRequestedRate) {
  Arm("test.quarter", 0.25, 1234);
  FaultPoint* point = Point("test.quarter");
  int fired = 0;
  constexpr int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) fired += point->ShouldFire() ? 1 : 0;
  EXPECT_GT(fired, kDraws / 8);      // well above 12.5%
  EXPECT_LT(fired, kDraws / 2);      // well below 50%
  EXPECT_EQ(point->triggers(), static_cast<std::uint64_t>(fired));
}

TEST_F(FaultTest, ResetCountersClearsTriggersButKeepsArming) {
  Arm("test.reset", 1.0);
  FaultPoint* point = Point("test.reset");
  ASSERT_TRUE(point->ShouldFire());
  ASSERT_GT(point->triggers(), 0u);
  ResetCounters();
  EXPECT_EQ(point->triggers(), 0u);
  EXPECT_TRUE(point->armed());
  EXPECT_TRUE(point->ShouldFire());
}

TEST_F(FaultTest, PointsSnapshotListsRegisteredPointsSorted) {
  Arm("test.zz_b", 1.0);
  Point("test.aa_a");
  const std::vector<PointInfo> points = Points();
  ASSERT_GE(points.size(), 2u);
  EXPECT_TRUE(std::is_sorted(
      points.begin(), points.end(),
      [](const PointInfo& x, const PointInfo& y) { return x.name < y.name; }));
  bool saw_armed = false;
  bool saw_unarmed = false;
  for (const PointInfo& info : points) {
    if (info.name == "test.zz_b") saw_armed = info.armed;
    if (info.name == "test.aa_a") saw_unarmed = !info.armed;
  }
  EXPECT_TRUE(saw_armed);
  EXPECT_TRUE(saw_unarmed);
}

TEST_F(FaultTest, ArmFromSpecParsesEntries) {
  ASSERT_TRUE(ArmFromSpec("test.spec_a").ok());
  EXPECT_TRUE(Point("test.spec_a")->armed());
  EXPECT_TRUE(Point("test.spec_a")->ShouldFire());  // bare name => p=1

  ASSERT_TRUE(ArmFromSpec("test.spec_b:0.0").ok());
  EXPECT_TRUE(Point("test.spec_b")->armed());
  EXPECT_FALSE(Point("test.spec_b")->ShouldFire());

  ASSERT_TRUE(ArmFromSpec(" test.spec_c : 0.5 : 99 ,test.spec_d:1.0").ok());
  EXPECT_TRUE(Point("test.spec_c")->armed());
  EXPECT_TRUE(Point("test.spec_d")->ShouldFire());
}

TEST_F(FaultTest, ArmFromSpecRejectsMalformedEntries) {
  EXPECT_TRUE(ArmFromSpec("").ok());                      // empty = no-op
  EXPECT_FALSE(ArmFromSpec(":0.5").ok());                 // empty name
  EXPECT_FALSE(ArmFromSpec("test.bad:frequently").ok());  // non-numeric p
  EXPECT_FALSE(ArmFromSpec("test.bad:1.5").ok());         // p out of range
  EXPECT_FALSE(ArmFromSpec("test.bad:-0.1").ok());
  EXPECT_FALSE(ArmFromSpec("test.bad:0.5xyz").ok());      // trailing garbage
  EXPECT_FALSE(ArmFromSpec("test.bad:0.5:soon").ok());    // non-numeric seed
  EXPECT_FALSE(ArmFromSpec("test.bad:0.5:12x").ok());     // garbage in seed
  EXPECT_FALSE(ArmFromSpec("test.bad:0.5:1:extra").ok()); // too many fields
  EXPECT_FALSE(ArmFromSpec("test.bad::").ok());           // empty probability
  EXPECT_FALSE(Point("test.bad")->armed());
}

TEST_F(FaultTest, ArmFromSpecErrorsNameTheOffendingEntry) {
  // A rejected spec must say what was wrong in one line — the env-var user
  // only ever sees this message.
  const Status bad_p = ArmFromSpec("test.bad:1.5");
  ASSERT_FALSE(bad_p.ok());
  EXPECT_NE(bad_p.ToString().find("test.bad:1.5"), std::string::npos);
  const Status unknown = ArmFromSpec("core.no_such_point:0.5");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.ToString().find("unknown fault point"),
            std::string::npos);
  EXPECT_NE(unknown.ToString().find("core.no_such_point"), std::string::npos);
}

TEST_F(FaultTest, ArmFromSpecRejectsUnknownPointNames) {
  // A typo'd point name must fail loudly instead of arming a point nothing
  // will ever draw from (the classic silently-ignored COHERE_FAULT).
  EXPECT_FALSE(ArmFromSpec("core.no_such_point").ok());
  EXPECT_FALSE(ArmFromSpec("core.admission.shedd:1.0").ok());  // typo
  // One bad entry rejects the whole spec; the good point must not be armed.
  EXPECT_FALSE(ArmFromSpec("core.admission.shed:1.0,core.bogus:0.5").ok());
  EXPECT_TRUE(Point(kPointAdmissionShed)->armed());  // first entry applied
  DisarmAll();

  // Catalog names, test.* names, and already-registered dynamic points all
  // remain armable.
  EXPECT_TRUE(ArmFromSpec(std::string(kPointAdmissionShed) + ":0.5").ok());
  EXPECT_TRUE(ArmFromSpec("test.anything_goes:1.0").ok());
  Point("custom.registered.point");
  EXPECT_TRUE(ArmFromSpec("custom.registered.point:1.0").ok());
}

TEST_F(FaultTest, DisarmAllQuiescesEveryPoint) {
  Arm("test.bulk_a", 1.0);
  Arm("test.bulk_b", 0.5);
  ASSERT_TRUE(AnyArmed());
  DisarmAll();
  EXPECT_FALSE(AnyArmed());
  EXPECT_FALSE(Point("test.bulk_a")->ShouldFire());
  EXPECT_FALSE(Point("test.bulk_b")->ShouldFire());
}

TEST_F(FaultTest, KnownPointsCatalogIsSortedAndComplete) {
  const std::vector<std::string> points = KnownPoints();
  EXPECT_TRUE(std::is_sorted(points.begin(), points.end()));
  for (const char* expected :
       {kPointSymmetricEigen, kPointJacobiEigen, kPointPowerIteration,
        kPointSvd, kPointLoaderIo, kPointParallelDispatch, kPointReductionFit,
        kPointDynamicRefit, kPointSnapshotPublish, kPointCacheInsertPressure,
        kPointAdmissionShed}) {
    EXPECT_NE(std::find(points.begin(), points.end(), expected), points.end())
        << "missing " << expected;
  }
}

TEST_F(FaultTest, InjectMacroFiresOnlyWhenArmed) {
  EXPECT_FALSE(COHERE_INJECT_FAULT("test.macro"));
  Arm("test.macro", 1.0);
  EXPECT_TRUE(COHERE_INJECT_FAULT("test.macro"));
  Disarm("test.macro");
  EXPECT_FALSE(COHERE_INJECT_FAULT("test.macro"));
}

TEST_F(FaultTest, InjectedFaultErrorNamesThePoint) {
  const InjectedFaultError error("some.point");
  EXPECT_NE(std::string(error.what()).find("some.point"), std::string::npos);
}

}  // namespace
}  // namespace fault
}  // namespace cohere
