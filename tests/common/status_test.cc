#include "common/status.h"

#include <gtest/gtest.h>

namespace cohere {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNumericalError), "NumericalError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH(r.value(), "Result::value");
}

TEST(ResultDeathTest, OkStatusConstructionAborts) {
  EXPECT_DEATH(Result<int>(Status::Ok()), "without a value");
}

}  // namespace
}  // namespace cohere
