#include "common/string_util.h"

#include <gtest/gtest.h>

namespace cohere {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, AdjacentDelimitersYieldEmptyFields) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitTest, LeadingAndTrailingDelimiters) {
  const auto parts = Split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
}

TEST(SplitTest, NoDelimiterGivesWholeString) {
  const auto parts = Split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(SplitTest, EmptyInputGivesOneEmptyField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" inner space kept "), "inner space kept");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(EqualsIgnoreCaseTest, Basic) {
  EXPECT_TRUE(EqualsIgnoreCase("Hello", "hELLO"));
  EXPECT_FALSE(EqualsIgnoreCase("Hello", "Hell"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("@attribute x", "@attribute"));
  EXPECT_FALSE(StartsWith("@attr", "@attribute"));
}

TEST(ToLowerTest, Basic) { EXPECT_EQ(ToLower("AbC1"), "abc1"); }

TEST(ParseDoubleTest, ParsesValidNumbers) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("  7 "), 7.0);
}

TEST(ParseDoubleTest, RejectsInvalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("?").ok());
}

TEST(ParseIntTest, ParsesValidIntegers) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt("-7"), -7);
  EXPECT_EQ(*ParseInt(" 0 "), 0);
}

TEST(ParseIntTest, RejectsInvalid) {
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("1.5").ok());
  EXPECT_FALSE(ParseInt("seven").ok());
}

}  // namespace
}  // namespace cohere
