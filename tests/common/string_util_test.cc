#include "common/string_util.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cohere {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, AdjacentDelimitersYieldEmptyFields) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitTest, LeadingAndTrailingDelimiters) {
  const auto parts = Split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
}

TEST(SplitTest, NoDelimiterGivesWholeString) {
  const auto parts = Split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(SplitTest, EmptyInputGivesOneEmptyField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" inner space kept "), "inner space kept");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(EqualsIgnoreCaseTest, Basic) {
  EXPECT_TRUE(EqualsIgnoreCase("Hello", "hELLO"));
  EXPECT_FALSE(EqualsIgnoreCase("Hello", "Hell"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("@attribute x", "@attribute"));
  EXPECT_FALSE(StartsWith("@attr", "@attribute"));
}

TEST(ToLowerTest, Basic) { EXPECT_EQ(ToLower("AbC1"), "abc1"); }

TEST(ParseDoubleTest, ParsesValidNumbers) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("  7 "), 7.0);
}

TEST(ParseDoubleTest, RejectsInvalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("?").ok());
  EXPECT_FALSE(ParseDouble("12abc").ok());
  EXPECT_FALSE(ParseDouble("1e5 3").ok());
}

TEST(ParseDoubleTest, OverflowIsAnErrorUnderflowIsNot) {
  // Overflow saturates to HUGE_VAL and must be rejected.
  EXPECT_FALSE(ParseDouble("1e999").ok());
  EXPECT_FALSE(ParseDouble("-1e999").ok());
  // Underflow also sets ERANGE in strtod, but a denormal (or zero) result
  // is a faithful nearest representation, not an error.
  Result<double> denormal = ParseDouble("1e-320");
  ASSERT_TRUE(denormal.ok()) << denormal.status().ToString();
  EXPECT_GT(*denormal, 0.0);
  EXPECT_LT(*denormal, 1e-300);
  Result<double> tiny = ParseDouble("1e-5000");
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(*tiny, 0.0);
}

TEST(ParseDoubleTest, ParsesNonFiniteLiteralsCallersMustGate) {
  // strtod accepts these; rejecting them is a loader policy (see
  // CsvTest/ArffTest NonFinite tests), not a ParseDouble concern.
  Result<double> inf = ParseDouble("inf");
  ASSERT_TRUE(inf.ok());
  EXPECT_TRUE(std::isinf(*inf));
  Result<double> nan = ParseDouble("nan");
  ASSERT_TRUE(nan.ok());
  EXPECT_TRUE(std::isnan(*nan));
}

TEST(ParseIntTest, ParsesValidIntegers) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt("-7"), -7);
  EXPECT_EQ(*ParseInt(" 0 "), 0);
}

TEST(ParseIntTest, RejectsInvalid) {
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("1.5").ok());
  EXPECT_FALSE(ParseInt("seven").ok());
}

}  // namespace
}  // namespace cohere
