#ifndef COHERE_TESTS_TEST_UTIL_H_
#define COHERE_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "stats/rng.h"

namespace cohere {
namespace testing_util {

/// Random matrix with iid N(0,1) entries.
inline Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m.At(i, j) = rng->Gaussian();
  }
  return m;
}

/// Random symmetric matrix (A + A^T)/2.
inline Matrix RandomSymmetric(size_t n, Rng* rng) {
  Matrix a = RandomMatrix(n, n, rng);
  Matrix at = a.Transposed();
  Matrix sym = a;
  sym += at;
  sym *= 0.5;
  return sym;
}

/// Random symmetric positive definite matrix A^T A + n*I.
inline Matrix RandomSpd(size_t n, Rng* rng) {
  Matrix a = RandomMatrix(n, n, rng);
  Matrix spd = MultiplyTransposeA(a, a);
  for (size_t i = 0; i < n; ++i) {
    spd.At(i, i) += static_cast<double>(n);
  }
  return spd;
}

/// EXPECT that two matrices agree entrywise within tol.
inline void ExpectMatrixNear(const Matrix& a, const Matrix& b, double tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(a.At(i, j), b.At(i, j), tol)
          << "mismatch at (" << i << ", " << j << ")";
    }
  }
}

/// EXPECT that two vectors agree within tol.
inline void ExpectVectorNear(const Vector& a, const Vector& b, double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "mismatch at " << i;
  }
}

/// EXPECT that the columns of `m` are orthonormal within tol.
inline void ExpectOrthonormalColumns(const Matrix& m, double tol) {
  const Matrix gram = MultiplyTransposeA(m, m);
  ExpectMatrixNear(gram, Matrix::Identity(m.cols()), tol);
}

}  // namespace testing_util
}  // namespace cohere

#endif  // COHERE_TESTS_TEST_UTIL_H_
