#include "linalg/blocked_matrix.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "../test_util.h"

namespace cohere {
namespace {

using testing_util::RandomMatrix;

TEST(BlockedMatrixTest, EmptyMatrix) {
  BlockedMatrix b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.rows(), 0u);
  EXPECT_EQ(b.cols(), 0u);
  EXPECT_EQ(b.num_blocks(), 0u);
  EXPECT_EQ(b.padded_rows(), 0u);
}

TEST(BlockedMatrixTest, PreservesValuesAndShape) {
  Rng rng(7);
  const Matrix m = RandomMatrix(37, 5, &rng);
  BlockedMatrix b(m);
  EXPECT_EQ(b.rows(), 37u);
  EXPECT_EQ(b.cols(), 5u);
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      EXPECT_EQ(b.At(i, j), m.At(i, j)) << "(" << i << ", " << j << ")";
    }
  }
}

TEST(BlockedMatrixTest, RowMajorLayoutWithRowPtr) {
  Rng rng(11);
  const Matrix m = RandomMatrix(20, 3, &rng);
  BlockedMatrix b(m);
  // Plain row-major: RowPtr(i) == data() + i * cols, rows contiguous.
  for (size_t i = 0; i < b.rows(); ++i) {
    EXPECT_EQ(b.RowPtr(i), b.data() + i * b.cols());
    for (size_t j = 0; j < b.cols(); ++j) {
      EXPECT_EQ(b.RowPtr(i)[j], m.At(i, j));
    }
  }
}

TEST(BlockedMatrixTest, SixtyFourByteAlignment) {
  Rng rng(13);
  BlockedMatrix b(RandomMatrix(18, 7, &rng));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % BlockedMatrix::kAlignment,
            0u);
}

TEST(BlockedMatrixTest, PadsToWholeBlocksWithZeros) {
  Rng rng(17);
  const size_t rows = 18;  // 2 blocks of 16: 14 rows of padding
  BlockedMatrix b(RandomMatrix(rows, 4, &rng));
  EXPECT_EQ(b.num_blocks(), 2u);
  EXPECT_EQ(b.padded_rows(), 32u);
  EXPECT_EQ(b.BlockRows(0), 16u);
  EXPECT_EQ(b.BlockRows(1), 2u);
  const double* pad_begin = b.data() + rows * b.cols();
  const double* pad_end = b.data() + b.padded_rows() * b.cols();
  for (const double* p = pad_begin; p < pad_end; ++p) {
    EXPECT_EQ(*p, 0.0);
  }
}

TEST(BlockedMatrixTest, BlockPtrAddressesWholeBlocks) {
  Rng rng(19);
  const Matrix m = RandomMatrix(33, 6, &rng);
  BlockedMatrix b(m);
  EXPECT_EQ(b.num_blocks(), 3u);
  for (size_t blk = 0; blk < b.num_blocks(); ++blk) {
    EXPECT_EQ(b.BlockPtr(blk),
              b.RowPtr(blk * BlockedMatrix::kRowsPerBlock));
  }
}

TEST(BlockedMatrixTest, ToMatrixRoundTrips) {
  Rng rng(23);
  const Matrix m = RandomMatrix(29, 9, &rng);
  const Matrix back = BlockedMatrix(m).ToMatrix();
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.cols(), m.cols());
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      EXPECT_EQ(back.At(i, j), m.At(i, j));
    }
  }
}

TEST(BlockedMatrixTest, RowCopiesOneRow) {
  Rng rng(29);
  const Matrix m = RandomMatrix(17, 4, &rng);
  BlockedMatrix b(m);
  const Vector row = b.Row(16);
  ASSERT_EQ(row.size(), 4u);
  for (size_t j = 0; j < 4; ++j) EXPECT_EQ(row[j], m.At(16, j));
}

TEST(BlockedMatrixTest, MemoryBytesCoversPadding) {
  Rng rng(31);
  BlockedMatrix b(RandomMatrix(5, 3, &rng));
  EXPECT_EQ(b.MemoryBytes(), b.padded_rows() * b.cols() * sizeof(double));
}

}  // namespace
}  // namespace cohere
