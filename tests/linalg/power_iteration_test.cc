#include "linalg/power_iteration.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "linalg/qr.h"
#include "stats/covariance.h"

namespace cohere {
namespace {

using testing_util::ExpectOrthonormalColumns;
using testing_util::RandomMatrix;

// SPD matrix with a controlled geometric spectrum lambda_i = top * decay^i —
// the fast-decaying regime subspace iteration is built for.
Matrix SpdWithDecay(size_t d, double top, double decay, Rng* rng) {
  Matrix gaussian = RandomMatrix(d, d, rng);
  Result<QrDecomposition> qr = HouseholderQr(gaussian);
  COHERE_CHECK(qr.ok());
  Vector spectrum(d);
  double value = top;
  for (size_t i = 0; i < d; ++i) {
    spectrum[i] = value;
    value *= decay;
  }
  return Multiply(Multiply(qr->q, Matrix::Diagonal(spectrum)),
                  qr->q.Transposed());
}

TEST(TopKEigenTest, MatchesFullSolverOnSpdMatrix) {
  Rng rng(1001);
  const Matrix a = SpdWithDecay(20, 50.0, 0.7, &rng);
  Result<EigenDecomposition> full = SymmetricEigen(a);
  ASSERT_TRUE(full.ok());

  TopKEigenOptions options;
  options.k = 5;
  Result<EigenDecomposition> top = TopKEigen(a, options);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  ASSERT_EQ(top->eigenvalues.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(top->eigenvalues[i], full->eigenvalues[i],
                1e-7 * full->eigenvalues[0]);
  }
  ExpectOrthonormalColumns(top->eigenvectors, 1e-9);
}

TEST(TopKEigenTest, EigenvectorsSatisfyEigenEquation) {
  Rng rng(1002);
  const Matrix a = SpdWithDecay(15, 20.0, 0.5, &rng);
  TopKEigenOptions options;
  options.k = 3;
  Result<EigenDecomposition> top = TopKEigen(a, options);
  ASSERT_TRUE(top.ok());
  for (size_t j = 0; j < 3; ++j) {
    const Vector v = top->eigenvectors.Col(j);
    const Vector av = MatVec(a, v);
    for (size_t i = 0; i < a.rows(); ++i) {
      EXPECT_NEAR(av[i], top->eigenvalues[j] * v[i], 1e-4);
    }
  }
}

TEST(TopKEigenTest, WorksOnCovarianceOfConceptData) {
  // The intended use: fast leading directions of a low-implicit-dim
  // covariance matrix.
  Rng rng(1003);
  Matrix data(300, 40);
  for (size_t i = 0; i < 300; ++i) {
    const double z1 = rng.Gaussian() * 3.0;
    const double z2 = rng.Gaussian() * 2.0;
    for (size_t j = 0; j < 40; ++j) {
      data.At(i, j) = z1 * std::sin(0.1 * static_cast<double>(j)) +
                      z2 * std::cos(0.2 * static_cast<double>(j)) +
                      rng.Gaussian() * 0.1;
    }
  }
  const Matrix cov = CovarianceMatrix(data);
  Result<EigenDecomposition> full = SymmetricEigen(cov);
  TopKEigenOptions options;
  options.k = 2;
  Result<EigenDecomposition> top = TopKEigen(cov, options);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(top.ok());
  EXPECT_NEAR(top->eigenvalues[0], full->eigenvalues[0],
              1e-6 * full->eigenvalues[0]);
  EXPECT_NEAR(top->eigenvalues[1], full->eigenvalues[1],
              1e-6 * full->eigenvalues[0]);
}

TEST(TopKEigenTest, FullKEqualsFullSolver) {
  Rng rng(1004);
  const Matrix a = SpdWithDecay(8, 10.0, 0.6, &rng);
  Result<EigenDecomposition> full = SymmetricEigen(a);
  TopKEigenOptions options;
  options.k = 8;
  Result<EigenDecomposition> top = TopKEigen(a, options);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(top.ok());
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(top->eigenvalues[i], full->eigenvalues[i], 1e-6);
  }
}

TEST(TopKEigenTest, RejectsBadInputs) {
  TopKEigenOptions options;
  options.k = 1;
  EXPECT_FALSE(TopKEigen(Matrix(2, 3), options).ok());
  Matrix asym{{1.0, 2.0}, {0.0, 1.0}};
  EXPECT_FALSE(TopKEigen(asym, options).ok());
  options.k = 0;
  EXPECT_FALSE(TopKEigen(Matrix::Identity(3), options).ok());
  options.k = 4;
  EXPECT_FALSE(TopKEigen(Matrix::Identity(3), options).ok());
}

TEST(TopKEigenTest, DegenerateSpectrumFailsGracefully) {
  // The identity has a fully degenerate spectrum: any k-subspace is
  // invariant, so the Rayleigh estimates settle instantly — this must
  // succeed with eigenvalues 1. (Failure mode guarded: near-ties *between*
  // rank k and k+1 with distinct values elsewhere.)
  TopKEigenOptions options;
  options.k = 2;
  Result<EigenDecomposition> top = TopKEigen(Matrix::Identity(5), options);
  ASSERT_TRUE(top.ok());
  EXPECT_NEAR(top->eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(top->eigenvalues[1], 1.0, 1e-12);
}

class TopKPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TopKPropertyTest, LeadingEigenvaluesMatch) {
  const size_t k = GetParam();
  Rng rng(1100 + k);
  const Matrix a = SpdWithDecay(30, 100.0, 0.75, &rng);
  Result<EigenDecomposition> full = SymmetricEigen(a);
  TopKEigenOptions options;
  options.k = k;
  Result<EigenDecomposition> top = TopKEigen(a, options);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(top.ok());
  for (size_t i = 0; i < k; ++i) {
    EXPECT_NEAR(top->eigenvalues[i], full->eigenvalues[i],
                1e-6 * full->eigenvalues[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKPropertyTest,
                         ::testing::Values(1, 2, 5, 10));

}  // namespace
}  // namespace cohere
