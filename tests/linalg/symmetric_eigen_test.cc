#include "linalg/symmetric_eigen.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace cohere {
namespace {

using testing_util::ExpectMatrixNear;
using testing_util::ExpectOrthonormalColumns;
using testing_util::RandomSymmetric;

TEST(SymmetricEigenTest, DiagonalMatrix) {
  Matrix a = Matrix::Diagonal(Vector{3.0, 1.0, 2.0});
  Result<EigenDecomposition> result = SymmetricEigen(a);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(result->eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(result->eigenvalues[2], 1.0, 1e-12);
}

TEST(SymmetricEigenTest, TwoByTwoAnalytic) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1 with eigenvectors along
  // (1,1)/sqrt(2) and (1,-1)/sqrt(2).
  Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  Result<EigenDecomposition> result = SymmetricEigen(a);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(result->eigenvalues[1], 1.0, 1e-12);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::fabs(result->eigenvectors.At(0, 0)), inv_sqrt2, 1e-12);
  EXPECT_NEAR(std::fabs(result->eigenvectors.At(1, 0)), inv_sqrt2, 1e-12);
}

TEST(SymmetricEigenTest, ReconstructsRandomMatrix) {
  Rng rng(11);
  const Matrix a = RandomSymmetric(20, &rng);
  Result<EigenDecomposition> result = SymmetricEigen(a);
  ASSERT_TRUE(result.ok());
  // A = V diag(w) V^T.
  const Matrix& v = result->eigenvectors;
  Matrix reconstructed =
      Multiply(Multiply(v, Matrix::Diagonal(result->eigenvalues)),
               v.Transposed());
  ExpectMatrixNear(reconstructed, a, 1e-10);
}

TEST(SymmetricEigenTest, EigenvectorsAreOrthonormal) {
  Rng rng(12);
  const Matrix a = RandomSymmetric(15, &rng);
  Result<EigenDecomposition> result = SymmetricEigen(a);
  ASSERT_TRUE(result.ok());
  ExpectOrthonormalColumns(result->eigenvectors, 1e-12);
}

TEST(SymmetricEigenTest, EigenvaluesSortedDescending) {
  Rng rng(13);
  const Matrix a = RandomSymmetric(25, &rng);
  Result<EigenDecomposition> result = SymmetricEigen(a);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->eigenvalues.size(); ++i) {
    EXPECT_GE(result->eigenvalues[i - 1], result->eigenvalues[i]);
  }
}

TEST(SymmetricEigenTest, TraceEqualsEigenvalueSum) {
  Rng rng(14);
  const Matrix a = RandomSymmetric(30, &rng);
  Result<EigenDecomposition> result = SymmetricEigen(a);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->eigenvalues.Sum(), a.Trace(), 1e-9);
}

TEST(SymmetricEigenTest, SatisfiesEigenEquation) {
  Rng rng(15);
  const Matrix a = RandomSymmetric(12, &rng);
  Result<EigenDecomposition> result = SymmetricEigen(a);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < a.rows(); ++i) {
    const Vector v = result->eigenvectors.Col(i);
    const Vector av = MatVec(a, v);
    const Vector lv = v * result->eigenvalues[i];
    for (size_t j = 0; j < v.size(); ++j) {
      EXPECT_NEAR(av[j], lv[j], 1e-9);
    }
  }
}

TEST(SymmetricEigenTest, RepeatedEigenvalues) {
  // 3x identity scaled: all eigenvalues 5.
  Matrix a = Matrix::Identity(3);
  a *= 5.0;
  Result<EigenDecomposition> result = SymmetricEigen(a);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(result->eigenvalues[i], 5.0, 1e-12);
  }
  ExpectOrthonormalColumns(result->eigenvectors, 1e-12);
}

TEST(SymmetricEigenTest, RankDeficientMatrix) {
  // Rank-1: outer product of (1,2,3) with itself.
  const Vector u{1.0, 2.0, 3.0};
  Matrix a = OuterProduct(u, u);
  Result<EigenDecomposition> result = SymmetricEigen(a);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->eigenvalues[0], u.SquaredNorm2(), 1e-10);
  EXPECT_NEAR(result->eigenvalues[1], 0.0, 1e-10);
  EXPECT_NEAR(result->eigenvalues[2], 0.0, 1e-10);
}

TEST(SymmetricEigenTest, OneByOne) {
  Matrix a{{4.0}};
  Result<EigenDecomposition> result = SymmetricEigen(a);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->eigenvalues[0], 4.0);
  EXPECT_NEAR(std::fabs(result->eigenvectors.At(0, 0)), 1.0, 1e-15);
}

TEST(SymmetricEigenTest, RejectsNonSquare) {
  EXPECT_FALSE(SymmetricEigen(Matrix(2, 3)).ok());
}

TEST(SymmetricEigenTest, RejectsNonSymmetric) {
  Matrix a{{1.0, 2.0}, {0.0, 1.0}};
  Result<EigenDecomposition> result = SymmetricEigen(a);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SymmetricEigenTest, HouseholderProducesSimilarTridiagonal) {
  Rng rng(16);
  const Matrix a = RandomSymmetric(10, &rng);
  Matrix z;
  Vector d;
  Vector e;
  HouseholderTridiagonalize(a, &z, &d, &e);
  // Rebuild T from d, e and verify Z T Z^T == A.
  Matrix t(10, 10);
  for (size_t i = 0; i < 10; ++i) {
    t.At(i, i) = d[i];
    if (i > 0) {
      t.At(i, i - 1) = e[i];
      t.At(i - 1, i) = e[i];
    }
  }
  ExpectMatrixNear(Multiply(Multiply(z, t), z.Transposed()), a, 1e-10);
  ExpectOrthonormalColumns(z, 1e-12);
}

// Property sweep over sizes: decomposition invariants hold for every n.
class SymmetricEigenPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SymmetricEigenPropertyTest, InvariantsHold) {
  const size_t n = GetParam();
  Rng rng(100 + n);
  const Matrix a = RandomSymmetric(n, &rng);
  Result<EigenDecomposition> result = SymmetricEigen(a);
  ASSERT_TRUE(result.ok());
  ExpectOrthonormalColumns(result->eigenvectors, 1e-11);
  EXPECT_NEAR(result->eigenvalues.Sum(), a.Trace(),
              1e-9 * std::max(1.0, std::fabs(a.Trace())));
  const Matrix& v = result->eigenvectors;
  Matrix reconstructed =
      Multiply(Multiply(v, Matrix::Diagonal(result->eigenvalues)),
               v.Transposed());
  ExpectMatrixNear(reconstructed, a, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SymmetricEigenPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace cohere
