#include "linalg/cholesky.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace cohere {
namespace {

using testing_util::ExpectMatrixNear;
using testing_util::ExpectVectorNear;
using testing_util::RandomSpd;

TEST(CholeskyTest, FactorsKnownMatrix) {
  // [[4,2],[2,3]] = L L^T with L = [[2,0],[1,sqrt(2)]].
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  Result<Matrix> l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(l->At(0, 0), 2.0, 1e-14);
  EXPECT_NEAR(l->At(1, 0), 1.0, 1e-14);
  EXPECT_NEAR(l->At(1, 1), std::sqrt(2.0), 1e-14);
  EXPECT_EQ(l->At(0, 1), 0.0);
}

TEST(CholeskyTest, FactorReconstructs) {
  Rng rng(41);
  const Matrix a = RandomSpd(10, &rng);
  Result<Matrix> l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  ExpectMatrixNear(MultiplyTransposeB(*l, *l), a, 1e-9);
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  Rng rng(42);
  const Matrix a = RandomSpd(8, &rng);
  const Vector x_true = rng.GaussianVector(8);
  // Build the RHS from the true solution and solve back.
  Vector b = MatVec(a, x_true);
  Result<Vector> x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  ExpectVectorNear(*x, x_true, 1e-9);
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_FALSE(CholeskyFactor(Matrix(2, 3)).ok());
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3 and -1
  Result<Matrix> l = CholeskyFactor(a);
  EXPECT_FALSE(l.ok());
  EXPECT_EQ(l.status().code(), StatusCode::kNumericalError);
}

TEST(CholeskyTest, RejectsSingular) {
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(CholeskyFactor(a).ok());
}

class CholeskyPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CholeskyPropertyTest, RoundTripSolve) {
  const size_t n = GetParam();
  Rng rng(600 + n);
  const Matrix a = RandomSpd(n, &rng);
  const Vector x_true = rng.GaussianVector(n);
  Result<Vector> x = SolveSpd(a, MatVec(a, x_true));
  ASSERT_TRUE(x.ok());
  ExpectVectorNear(*x, x_true, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyPropertyTest,
                         ::testing::Values(1, 2, 5, 10, 25, 50));

}  // namespace
}  // namespace cohere
