#include "linalg/qr.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace cohere {
namespace {

using testing_util::ExpectMatrixNear;
using testing_util::ExpectOrthonormalColumns;
using testing_util::ExpectVectorNear;
using testing_util::RandomMatrix;

TEST(QrTest, ReconstructsSquareMatrix) {
  Rng rng(51);
  const Matrix a = RandomMatrix(6, 6, &rng);
  Result<QrDecomposition> qr = HouseholderQr(a);
  ASSERT_TRUE(qr.ok());
  ExpectMatrixNear(Multiply(qr->q, qr->r), a, 1e-11);
  ExpectOrthonormalColumns(qr->q, 1e-12);
}

TEST(QrTest, ReconstructsTallMatrix) {
  Rng rng(52);
  const Matrix a = RandomMatrix(12, 4, &rng);
  Result<QrDecomposition> qr = HouseholderQr(a);
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr->q.rows(), 12u);
  EXPECT_EQ(qr->q.cols(), 4u);
  EXPECT_EQ(qr->r.rows(), 4u);
  ExpectMatrixNear(Multiply(qr->q, qr->r), a, 1e-11);
}

TEST(QrTest, RIsUpperTriangular) {
  Rng rng(53);
  const Matrix a = RandomMatrix(7, 5, &rng);
  Result<QrDecomposition> qr = HouseholderQr(a);
  ASSERT_TRUE(qr.ok());
  for (size_t i = 0; i < qr->r.rows(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      EXPECT_EQ(qr->r.At(i, j), 0.0);
    }
  }
}

TEST(QrTest, RejectsWideMatrix) {
  EXPECT_FALSE(HouseholderQr(Matrix(3, 5)).ok());
}

TEST(QrTest, LeastSquaresExactSystem) {
  Matrix a{{2.0, 0.0}, {0.0, 3.0}};
  Vector b{4.0, 9.0};
  Result<Vector> x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-13);
  EXPECT_NEAR((*x)[1], 3.0, 1e-13);
}

TEST(QrTest, LeastSquaresOverdetermined) {
  // Fit y = c0 + c1 * t to points on the exact line y = 1 + 2t.
  Matrix a{{1.0, 0.0}, {1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}};
  Vector b{1.0, 3.0, 5.0, 7.0};
  Result<Vector> x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(QrTest, LeastSquaresMinimizesResidual) {
  Rng rng(54);
  const Matrix a = RandomMatrix(20, 5, &rng);
  const Vector b = rng.GaussianVector(20);
  Result<Vector> x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  // At the minimum, the residual is orthogonal to the column space.
  Vector residual = MatVec(a, *x) - b;
  Vector gradient = MatTransposeVec(a, residual);
  for (size_t j = 0; j < 5; ++j) {
    EXPECT_NEAR(gradient[j], 0.0, 1e-10);
  }
}

TEST(QrTest, LeastSquaresRejectsRankDeficient) {
  Matrix a{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  Vector b{1.0, 2.0, 3.0};
  Result<Vector> x = LeastSquares(a, b);
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kNumericalError);
}

TEST(QrTest, LeastSquaresRejectsSizeMismatch) {
  EXPECT_FALSE(LeastSquares(Matrix(3, 2), Vector(4)).ok());
}

class QrPropertyTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(QrPropertyTest, FactorizationInvariants) {
  const auto [m, n] = GetParam();
  Rng rng(700 + m * 31 + n);
  const Matrix a = RandomMatrix(m, n, &rng);
  Result<QrDecomposition> qr = HouseholderQr(a);
  ASSERT_TRUE(qr.ok());
  ExpectMatrixNear(Multiply(qr->q, qr->r), a, 1e-10);
  ExpectOrthonormalColumns(qr->q, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrPropertyTest,
    ::testing::Values(std::make_pair<size_t, size_t>(1, 1),
                      std::make_pair<size_t, size_t>(5, 5),
                      std::make_pair<size_t, size_t>(10, 3),
                      std::make_pair<size_t, size_t>(50, 20),
                      std::make_pair<size_t, size_t>(30, 30)));

}  // namespace
}  // namespace cohere
