#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/parallel.h"

namespace cohere {
namespace {

using testing_util::ExpectMatrixNear;
using testing_util::RandomMatrix;

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ShapeConstructorZeroFills) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 0.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(MatrixDeathTest, RaggedInitializerAborts) {
  EXPECT_DEATH((Matrix{{1.0, 2.0}, {3.0}}), "ragged");
}

TEST(MatrixTest, Identity) {
  Matrix eye = Matrix::Identity(3);
  EXPECT_EQ(eye(0, 0), 1.0);
  EXPECT_EQ(eye(0, 1), 0.0);
  EXPECT_EQ(eye.Trace(), 3.0);
}

TEST(MatrixTest, Diagonal) {
  Matrix d = Matrix::Diagonal(Vector{2.0, 3.0});
  EXPECT_EQ(d(0, 0), 2.0);
  EXPECT_EQ(d(1, 1), 3.0);
  EXPECT_EQ(d(0, 1), 0.0);
}

TEST(MatrixTest, RowAndColCopies) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  Vector row = m.Row(1);
  Vector col = m.Col(0);
  EXPECT_EQ(row[0], 3.0);
  EXPECT_EQ(row[1], 4.0);
  EXPECT_EQ(col[0], 1.0);
  EXPECT_EQ(col[1], 3.0);
}

TEST(MatrixTest, SetRowAndSetCol) {
  Matrix m(2, 2);
  m.SetRow(0, Vector{1.0, 2.0});
  m.SetCol(1, Vector{5.0, 6.0});
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 5.0);
  EXPECT_EQ(m(1, 1), 6.0);
}

TEST(MatrixTest, Transposed) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, ArithmeticAndNorms) {
  Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  Matrix b{{0.0, 2.0}, {3.0, 0.0}};
  Matrix sum = a + b;
  EXPECT_EQ(sum(0, 1), 2.0);
  Matrix diff = sum - b;
  EXPECT_TRUE(diff == a);
  Matrix scaled = a * 2.0;
  EXPECT_EQ(scaled(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(b.FrobeniusNorm(), std::sqrt(13.0));
  EXPECT_EQ(b.MaxAbs(), 3.0);
}

TEST(MatrixTest, MultiplyMatchesHandComputation) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  Matrix c = Multiply(a, b);
  Matrix expected{{19.0, 22.0}, {43.0, 50.0}};
  EXPECT_TRUE(c == expected);
}

TEST(MatrixTest, MultiplyIdentityIsNoOp) {
  Rng rng(1);
  Matrix a = RandomMatrix(7, 7, &rng);
  ExpectMatrixNear(Multiply(a, Matrix::Identity(7)), a, 1e-14);
  ExpectMatrixNear(Multiply(Matrix::Identity(7), a), a, 1e-14);
}

TEST(MatrixTest, MultiplyTransposeAMatchesExplicit) {
  Rng rng(2);
  Matrix a = RandomMatrix(5, 3, &rng);
  Matrix b = RandomMatrix(5, 4, &rng);
  ExpectMatrixNear(MultiplyTransposeA(a, b),
                   Multiply(a.Transposed(), b), 1e-12);
}

TEST(MatrixTest, MultiplyTransposeBMatchesExplicit) {
  Rng rng(3);
  Matrix a = RandomMatrix(4, 6, &rng);
  Matrix b = RandomMatrix(5, 6, &rng);
  ExpectMatrixNear(MultiplyTransposeB(a, b),
                   Multiply(a, b.Transposed()), 1e-12);
}

TEST(MatrixTest, BlockedMultiplyMatchesNaiveOnLargerShapes) {
  // Sizes straddling the 64-wide GEMM block boundary.
  Rng rng(4);
  Matrix a = RandomMatrix(70, 65, &rng);
  Matrix b = RandomMatrix(65, 67, &rng);
  Matrix c = Multiply(a, b);
  // Naive reference.
  Matrix expected(70, 67);
  for (size_t i = 0; i < 70; ++i) {
    for (size_t j = 0; j < 67; ++j) {
      double sum = 0.0;
      for (size_t k = 0; k < 65; ++k) sum += a.At(i, k) * b.At(k, j);
      expected.At(i, j) = sum;
    }
  }
  ExpectMatrixNear(c, expected, 1e-10);
}

TEST(MatrixTest, MatVecAndTransposeVec) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  Vector x{1.0, 1.0};
  Vector y = MatVec(a, x);
  EXPECT_EQ(y[0], 3.0);
  EXPECT_EQ(y[2], 11.0);
  Vector z{1.0, 0.0, 1.0};
  Vector w = MatTransposeVec(a, z);
  EXPECT_EQ(w[0], 6.0);
  EXPECT_EQ(w[1], 8.0);
}

TEST(MatrixTest, OuterProduct) {
  Matrix m = OuterProduct(Vector{1.0, 2.0}, Vector{3.0, 4.0, 5.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 10.0);
}

TEST(MatrixTest, SelectRowsAndCols) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}};
  Matrix rows = m.SelectRows({2, 0});
  EXPECT_EQ(rows(0, 0), 7.0);
  EXPECT_EQ(rows(1, 2), 3.0);
  Matrix cols = m.SelectCols({1});
  EXPECT_EQ(cols.cols(), 1u);
  EXPECT_EQ(cols(2, 0), 8.0);
}

TEST(MatrixTest, IsSymmetric) {
  Matrix sym{{1.0, 2.0}, {2.0, 3.0}};
  Matrix asym{{1.0, 2.0}, {2.5, 3.0}};
  EXPECT_TRUE(sym.IsSymmetric());
  EXPECT_FALSE(asym.IsSymmetric());
  EXPECT_TRUE(asym.IsSymmetric(1.0));
  EXPECT_FALSE(Matrix(2, 3).IsSymmetric());
}

TEST(MatrixParallelTest, ProductsAreBitwiseIdenticalAcrossThreadCounts) {
  // The GEMM kernels stripe output rows across the pool without changing any
  // per-element accumulation order, so the parallel results must match the
  // serial ones exactly — not just within tolerance.
  Rng rng(77);
  const Matrix a = testing_util::RandomMatrix(130, 70, &rng);
  const Matrix b = testing_util::RandomMatrix(70, 90, &rng);
  const Matrix c = testing_util::RandomMatrix(90, 70, &rng);

  SetParallelThreadCount(1);
  const Matrix ab_serial = Multiply(a, b);
  const Matrix ata_serial = MultiplyTransposeA(a, a);
  const Matrix act_serial = MultiplyTransposeB(a, c);

  SetParallelThreadCount(4);
  EXPECT_EQ(Multiply(a, b), ab_serial);
  EXPECT_EQ(MultiplyTransposeA(a, a), ata_serial);
  EXPECT_EQ(MultiplyTransposeB(a, c), act_serial);
  SetParallelThreadCount(0);
}

TEST(MatrixDeathTest, ShapeMismatchAborts) {
  Matrix a(2, 3);
  Matrix b(3, 3);
  EXPECT_DEATH(a += b, "COHERE_CHECK");
  EXPECT_DEATH(Multiply(a, a), "COHERE_CHECK");
  EXPECT_DEATH(Matrix(2, 3).Trace(), "COHERE_CHECK");
}

}  // namespace
}  // namespace cohere
