#include "linalg/vector.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cohere {
namespace {

TEST(VectorTest, DefaultIsEmpty) {
  Vector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(VectorTest, SizeConstructorZeroFills) {
  Vector v(4);
  EXPECT_EQ(v.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], 0.0);
}

TEST(VectorTest, FillConstructor) {
  Vector v(3, 2.5);
  EXPECT_EQ(v[0], 2.5);
  EXPECT_EQ(v[2], 2.5);
}

TEST(VectorTest, InitializerList) {
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], 2.0);
}

TEST(VectorTest, AdoptBuffer) {
  Vector v(std::vector<double>{4.0, 5.0});
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 4.0);
}

TEST(VectorTest, IndexingIsWritable) {
  Vector v(2);
  v[1] = 7.0;
  EXPECT_EQ(v[1], 7.0);
}

TEST(VectorTest, AdditionSubtraction) {
  Vector a{1.0, 2.0};
  Vector b{3.0, 5.0};
  Vector sum = a + b;
  Vector diff = b - a;
  EXPECT_EQ(sum[0], 4.0);
  EXPECT_EQ(sum[1], 7.0);
  EXPECT_EQ(diff[0], 2.0);
  EXPECT_EQ(diff[1], 3.0);
}

TEST(VectorTest, ScalarOps) {
  Vector v{1.0, -2.0};
  Vector doubled = v * 2.0;
  Vector halved = v / 2.0;
  EXPECT_EQ(doubled[1], -4.0);
  EXPECT_EQ(halved[0], 0.5);
  EXPECT_EQ((3.0 * v)[0], 3.0);
}

TEST(VectorTest, Axpy) {
  Vector y{1.0, 1.0};
  Vector x{2.0, 3.0};
  y.Axpy(0.5, x);
  EXPECT_EQ(y[0], 2.0);
  EXPECT_EQ(y[1], 2.5);
}

TEST(VectorTest, DotProduct) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{4.0, 5.0, 6.0};
  EXPECT_EQ(Dot(a, b), 32.0);
}

TEST(VectorTest, Norms) {
  Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(v.Norm2(), 5.0);
  EXPECT_DOUBLE_EQ(v.SquaredNorm2(), 25.0);
  EXPECT_DOUBLE_EQ(v.Norm1(), 7.0);
  EXPECT_DOUBLE_EQ(v.NormInf(), 4.0);
}

TEST(VectorTest, SumAndFill) {
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.Sum(), 6.0);
  v.Fill(1.0);
  EXPECT_EQ(v.Sum(), 3.0);
}

TEST(VectorTest, NormalizeUnitLength) {
  Vector v{3.0, 4.0};
  v.Normalize();
  EXPECT_NEAR(v.Norm2(), 1.0, 1e-15);
  EXPECT_NEAR(v[0], 0.6, 1e-15);
}

TEST(VectorTest, NormalizeZeroVectorIsNoOp) {
  Vector v(3);
  v.Normalize();
  EXPECT_EQ(v.Norm2(), 0.0);
}

TEST(VectorTest, ResizePreservesAndZeroFills) {
  Vector v{1.0, 2.0};
  v.Resize(4);
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[3], 0.0);
}

TEST(VectorTest, EqualityAndAlmostEqual) {
  Vector a{1.0, 2.0};
  Vector b{1.0, 2.0};
  Vector c{1.0, 2.0001};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(AlmostEqual(a, c, 1e-3));
  EXPECT_FALSE(AlmostEqual(a, c, 1e-6));
  EXPECT_FALSE(AlmostEqual(a, Vector(3), 1.0));
}

TEST(VectorTest, ToStringTruncates) {
  Vector v(20, 1.0);
  const std::string s = v.ToString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
}

TEST(VectorDeathTest, SizeMismatchAborts) {
  Vector a{1.0};
  Vector b{1.0, 2.0};
  EXPECT_DEATH(Dot(a, b), "COHERE_CHECK");
  EXPECT_DEATH(a += b, "COHERE_CHECK");
}

TEST(VectorDeathTest, OutOfBoundsAborts) {
  Vector v(2);
  EXPECT_DEATH(v[2], "COHERE_CHECK");
}

}  // namespace
}  // namespace cohere
