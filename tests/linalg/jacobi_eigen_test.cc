#include "linalg/jacobi_eigen.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "linalg/symmetric_eigen.h"

namespace cohere {
namespace {

using testing_util::ExpectMatrixNear;
using testing_util::ExpectOrthonormalColumns;
using testing_util::RandomSymmetric;

TEST(JacobiEigenTest, DiagonalMatrix) {
  Matrix a = Matrix::Diagonal(Vector{1.0, 4.0, 2.0});
  Result<EigenDecomposition> result = JacobiEigen(a);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->eigenvalues[0], 4.0, 1e-13);
  EXPECT_NEAR(result->eigenvalues[1], 2.0, 1e-13);
  EXPECT_NEAR(result->eigenvalues[2], 1.0, 1e-13);
}

TEST(JacobiEigenTest, ReconstructsRandomMatrix) {
  Rng rng(21);
  const Matrix a = RandomSymmetric(12, &rng);
  Result<EigenDecomposition> result = JacobiEigen(a);
  ASSERT_TRUE(result.ok());
  const Matrix& v = result->eigenvectors;
  ExpectMatrixNear(
      Multiply(Multiply(v, Matrix::Diagonal(result->eigenvalues)),
               v.Transposed()),
      a, 1e-10);
  ExpectOrthonormalColumns(v, 1e-12);
}

TEST(JacobiEigenTest, RejectsNonSquareAndNonSymmetric) {
  EXPECT_FALSE(JacobiEigen(Matrix(2, 3)).ok());
  Matrix asym{{1.0, 5.0}, {0.0, 1.0}};
  EXPECT_FALSE(JacobiEigen(asym).ok());
}

// Cross-check: Jacobi and tridiagonal-QL must agree on the spectrum.
class SolverAgreementTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SolverAgreementTest, EigenvaluesAgree) {
  const size_t n = GetParam();
  Rng rng(300 + n);
  const Matrix a = RandomSymmetric(n, &rng);
  Result<EigenDecomposition> jacobi = JacobiEigen(a);
  Result<EigenDecomposition> ql = SymmetricEigen(a);
  ASSERT_TRUE(jacobi.ok());
  ASSERT_TRUE(ql.ok());
  const double scale = std::max(1.0, a.MaxAbs());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(jacobi->eigenvalues[i], ql->eigenvalues[i], 1e-10 * scale);
  }
}

TEST_P(SolverAgreementTest, EigenvectorsSpanSameSubspaces) {
  const size_t n = GetParam();
  Rng rng(400 + n);
  const Matrix a = RandomSymmetric(n, &rng);
  Result<EigenDecomposition> jacobi = JacobiEigen(a);
  Result<EigenDecomposition> ql = SymmetricEigen(a);
  ASSERT_TRUE(jacobi.ok());
  ASSERT_TRUE(ql.ok());
  // For each eigenvector of one solver, A v must equal lambda v for the
  // other solver's eigenvalue at that rank (robust to sign/rotation within
  // degenerate eigenspaces, which random matrices avoid anyway).
  for (size_t i = 0; i < n; ++i) {
    const Vector v = jacobi->eigenvectors.Col(i);
    const Vector av = MatVec(a, v);
    for (size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(av[j], ql->eigenvalues[i] * v[j], 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolverAgreementTest,
                         ::testing::Values(2, 4, 8, 16, 32));

}  // namespace
}  // namespace cohere
