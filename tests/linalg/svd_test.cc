#include "linalg/svd.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "linalg/symmetric_eigen.h"

namespace cohere {
namespace {

using testing_util::ExpectMatrixNear;
using testing_util::ExpectOrthonormalColumns;
using testing_util::RandomMatrix;

Matrix ReassembleThin(const SvdDecomposition& svd) {
  return Multiply(Multiply(svd.u, Matrix::Diagonal(svd.singular_values)),
                  svd.v.Transposed());
}

TEST(SvdTest, DiagonalMatrix) {
  Matrix a = Matrix::Diagonal(Vector{3.0, 1.0, 2.0});
  Result<SvdDecomposition> svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->singular_values[0], 3.0, 1e-12);
  EXPECT_NEAR(svd->singular_values[1], 2.0, 1e-12);
  EXPECT_NEAR(svd->singular_values[2], 1.0, 1e-12);
}

TEST(SvdTest, ReconstructsTallMatrix) {
  Rng rng(31);
  const Matrix a = RandomMatrix(12, 5, &rng);
  Result<SvdDecomposition> svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  ExpectMatrixNear(ReassembleThin(*svd), a, 1e-10);
  ExpectOrthonormalColumns(svd->u, 1e-12);
  ExpectOrthonormalColumns(svd->v, 1e-12);
}

TEST(SvdTest, ReconstructsWideMatrix) {
  Rng rng(32);
  const Matrix a = RandomMatrix(4, 9, &rng);
  Result<SvdDecomposition> svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_EQ(svd->u.rows(), 4u);
  EXPECT_EQ(svd->u.cols(), 4u);
  EXPECT_EQ(svd->v.rows(), 9u);
  EXPECT_EQ(svd->v.cols(), 4u);
  ExpectMatrixNear(ReassembleThin(*svd), a, 1e-10);
}

TEST(SvdTest, SingularValuesNonNegativeDescending) {
  Rng rng(33);
  const Matrix a = RandomMatrix(10, 7, &rng);
  Result<SvdDecomposition> svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  for (size_t i = 0; i < svd->singular_values.size(); ++i) {
    EXPECT_GE(svd->singular_values[i], 0.0);
    if (i > 0) {
      EXPECT_LE(svd->singular_values[i], svd->singular_values[i - 1]);
    }
  }
}

TEST(SvdTest, RankDeficientHasZeroSingularValues) {
  // Two identical columns -> rank 1.
  Matrix a{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  Result<SvdDecomposition> svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_GT(svd->singular_values[0], 0.0);
  EXPECT_NEAR(svd->singular_values[1], 0.0, 1e-12);
  ExpectMatrixNear(ReassembleThin(*svd), a, 1e-10);
}

TEST(SvdTest, SingularValuesMatchEigenvaluesOfGram) {
  // sigma_i^2 are the eigenvalues of A^T A.
  Rng rng(34);
  const Matrix a = RandomMatrix(15, 6, &rng);
  Result<SvdDecomposition> svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  Result<EigenDecomposition> eig = SymmetricEigen(MultiplyTransposeA(a, a));
  ASSERT_TRUE(eig.ok());
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(svd->singular_values[i] * svd->singular_values[i],
                eig->eigenvalues[i], 1e-9);
  }
}

TEST(SvdTest, FrobeniusNormIsSingularValueNorm) {
  Rng rng(35);
  const Matrix a = RandomMatrix(8, 8, &rng);
  Result<SvdDecomposition> svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->singular_values.Norm2(), a.FrobeniusNorm(), 1e-10);
}

TEST(SvdTest, RejectsEmptyMatrix) { EXPECT_FALSE(JacobiSvd(Matrix()).ok()); }

class SvdPropertyTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(SvdPropertyTest, ReconstructionAndOrthogonality) {
  const auto [m, n] = GetParam();
  Rng rng(500 + m * 37 + n);
  const Matrix a = RandomMatrix(m, n, &rng);
  Result<SvdDecomposition> svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  ExpectMatrixNear(ReassembleThin(*svd), a, 1e-9);
  ExpectOrthonormalColumns(svd->u, 1e-11);
  ExpectOrthonormalColumns(svd->v, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdPropertyTest,
    ::testing::Values(std::make_pair<size_t, size_t>(1, 1),
                      std::make_pair<size_t, size_t>(5, 1),
                      std::make_pair<size_t, size_t>(1, 5),
                      std::make_pair<size_t, size_t>(6, 6),
                      std::make_pair<size_t, size_t>(20, 7),
                      std::make_pair<size_t, size_t>(7, 20),
                      std::make_pair<size_t, size_t>(40, 25)));

}  // namespace
}  // namespace cohere
