#include "reduction/coherence.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/parallel.h"
#include "data/synthetic.h"
#include "data/uci_like.h"
#include "reduction/selection.h"
#include "stats/covariance.h"
#include "stats/descriptive.h"
#include "stats/normal.h"

namespace cohere {
namespace {

// 2*Phi(1) - 1, the paper's uniform-data coherence probability.
constexpr double kUniformCoherence = 0.6826894921370859;

TEST(CoherenceFactorTest, AxisVectorGivesFactorOne) {
  // Section 3 of the paper: for e1 = (1, 0, ..., 0) the contributions are
  // (x1, 0, ..., 0) and the factor is exactly 1 regardless of x1 != 0.
  const Vector point{3.7, -1.2, 0.4, 9.9};
  const Vector e1{1.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(CoherenceFactor(point, e1), 1.0, 1e-14);
  EXPECT_NEAR(CoherenceProbability(point, e1), kUniformCoherence, 1e-12);
}

TEST(CoherenceFactorTest, PerfectAgreementGrowsWithDimension) {
  // All contributions equal: factor = |d*c| / sqrt(d*c^2) = sqrt(d).
  for (size_t d : {4u, 16u, 64u}) {
    const Vector point(d, 1.0);
    Vector e(d, 1.0 / std::sqrt(static_cast<double>(d)));
    EXPECT_NEAR(CoherenceFactor(point, e), std::sqrt(static_cast<double>(d)),
                1e-12);
  }
}

TEST(CoherenceFactorTest, PerfectCancellationGivesZero) {
  const Vector point{1.0, -1.0};
  const Vector e{0.5, 0.5};
  EXPECT_NEAR(CoherenceFactor(point, e), 0.0, 1e-14);
  EXPECT_NEAR(CoherenceProbability(point, e), 0.0, 1e-14);
}

TEST(CoherenceFactorTest, ZeroPointGivesZero) {
  EXPECT_EQ(CoherenceFactor(Vector(5), Vector(5, 0.3)), 0.0);
}

TEST(CoherenceFactorTest, ScaleInvariantInPointMagnitude) {
  const Vector point{1.0, 2.0, -0.5};
  const Vector e{0.3, 0.2, 0.93};
  const Vector scaled = point * 17.0;
  EXPECT_NEAR(CoherenceFactor(point, e), CoherenceFactor(scaled, e), 1e-12);
}

TEST(ComputeCoherenceTest, UniformDataAxisDirectionsGivePaperConstant) {
  // The flagship analytical result (paper Section 3): for uniform data with
  // the axis system as eigenvectors, every point has coherence factor
  // exactly 1, so P(D, e_i) = 2*Phi(1) - 1 ~= 0.68 exactly — per point, not
  // just on average.
  Dataset uniform = GenerateUniformCube(200, 12, -0.5, 0.5, 121);
  const Vector mean(12);  // centered by construction up to sampling error
  for (size_t axis = 0; axis < 12; ++axis) {
    Vector e(12);
    e[axis] = 1.0;
    double total = 0.0;
    for (size_t r = 0; r < uniform.NumRecords(); ++r) {
      const double p = CoherenceProbability(uniform.Record(r), e);
      EXPECT_NEAR(p, kUniformCoherence, 1e-12);
      total += p;
    }
    EXPECT_NEAR(total / static_cast<double>(uniform.NumRecords()),
                kUniformCoherence, 1e-12);
  }
}

TEST(ComputeCoherenceTest, UniformDataHasFlatCoherenceProfile) {
  // Finite-sample PCA on uniform data returns an arbitrary rotation of a
  // near-degenerate spectrum; the paper's operational conclusion is that no
  // direction stands out, so nothing can be pruned. Assert the flatness.
  Dataset uniform = GenerateUniformCube(800, 20, -0.5, 0.5, 121);
  Result<PcaModel> pca =
      PcaModel::Fit(uniform.features(), PcaScaling::kCovariance);
  ASSERT_TRUE(pca.ok());
  CoherenceAnalysis coherence = ComputeCoherence(*pca, uniform.features());
  ASSERT_EQ(coherence.dims(), 20u);
  double lo = 1.0;
  double hi = 0.0;
  for (size_t i = 0; i < 20; ++i) {
    lo = std::min(lo, coherence.probability[i]);
    hi = std::max(hi, coherence.probability[i]);
  }
  EXPECT_GT(lo, 0.40);
  EXPECT_LT(hi, 0.70);
  EXPECT_LT(hi - lo, 0.15);
  // And the automatic cut-off heuristic refuses to prune: the profile has
  // no separated prefix.
  EXPECT_EQ(DetectSeparatedPrefix(coherence.probability,
                                  OrderByCoherence(coherence)),
            1u);
}

TEST(ComputeCoherenceTest, ConceptDirectionsBeatNoiseDirections) {
  // Latent-factor data: the top (concept) eigenvectors must carry clearly
  // higher coherence probability than the trailing noise directions.
  LatentFactorConfig config;
  config.num_records = 400;
  config.num_attributes = 40;
  config.num_concepts = 4;
  config.noise_stddev = 0.3;
  config.seed = 122;
  Dataset data = GenerateLatentFactor(config);
  Result<PcaModel> pca =
      PcaModel::Fit(data.features(), PcaScaling::kCorrelation);
  ASSERT_TRUE(pca.ok());
  CoherenceAnalysis coherence = ComputeCoherence(*pca, data.features());
  double top_mean = 0.0;
  for (size_t i = 0; i < 4; ++i) top_mean += coherence.probability[i];
  top_mean /= 4.0;
  double tail_mean = 0.0;
  for (size_t i = 20; i < 40; ++i) tail_mean += coherence.probability[i];
  tail_mean /= 20.0;
  EXPECT_GT(top_mean, tail_mean + 0.1);
}

TEST(ComputeCoherenceTest, ProbabilitiesAreInUnitInterval) {
  Dataset data = IonosphereLike(123);
  Result<PcaModel> pca =
      PcaModel::Fit(data.features(), PcaScaling::kCorrelation);
  ASSERT_TRUE(pca.ok());
  CoherenceAnalysis coherence = ComputeCoherence(*pca, data.features());
  for (size_t i = 0; i < coherence.dims(); ++i) {
    EXPECT_GE(coherence.probability[i], 0.0);
    EXPECT_LE(coherence.probability[i], 1.0);
    EXPECT_GE(coherence.mean_factor[i], 0.0);
  }
}

TEST(ComputeCoherenceTest, MatchesNaivePerPointComputation) {
  Rng rng(124);
  Matrix data = testing_util::RandomMatrix(30, 6, &rng);
  Result<PcaModel> pca = PcaModel::Fit(data, PcaScaling::kCovariance);
  ASSERT_TRUE(pca.ok());
  CoherenceAnalysis fast = ComputeCoherence(*pca, data);

  // Naive recomputation straight from the definition.
  Matrix normalized = pca->NormalizeRows(data);
  for (size_t i = 0; i < 6; ++i) {
    const Vector e = pca->eigenvectors().Col(i);
    double mean_prob = 0.0;
    for (size_t r = 0; r < 30; ++r) {
      mean_prob += CoherenceProbability(normalized.Row(r), e);
    }
    mean_prob /= 30.0;
    EXPECT_NEAR(fast.probability[i], mean_prob, 1e-10);
  }
}

TEST(PerPointCoherenceTest, ShapeAndAgreement) {
  Rng rng(125);
  Matrix data = testing_util::RandomMatrix(12, 4, &rng);
  Result<PcaModel> pca = PcaModel::Fit(data, PcaScaling::kCovariance);
  ASSERT_TRUE(pca.ok());
  Matrix per_point = PerPointCoherenceProbabilities(*pca, data);
  EXPECT_EQ(per_point.rows(), 12u);
  EXPECT_EQ(per_point.cols(), 4u);
  // Column means equal the dataset-level probabilities.
  CoherenceAnalysis agg = ComputeCoherence(*pca, data);
  for (size_t i = 0; i < 4; ++i) {
    double mean = 0.0;
    for (size_t r = 0; r < 12; ++r) mean += per_point.At(r, i);
    mean /= 12.0;
    EXPECT_NEAR(mean, agg.probability[i], 1e-12);
  }
}

TEST(CoherenceParallelTest, ResultsAreIdenticalAcrossThreadCounts) {
  // ComputeCoherence reduces over records through fixed-layout chunks
  // (common/parallel.h), so its summation tree — and therefore its result —
  // is the same at every thread count, not merely close.
  Dataset data = IonosphereLike(321);
  Result<PcaModel> pca =
      PcaModel::Fit(data.features(), PcaScaling::kCorrelation);
  ASSERT_TRUE(pca.ok());
  SetParallelThreadCount(1);
  const CoherenceAnalysis serial = ComputeCoherence(*pca, data.features());
  const Matrix per_point_serial =
      PerPointCoherenceProbabilities(*pca, data.features());
  for (size_t threads : {2u, 4u}) {
    SetParallelThreadCount(threads);
    const CoherenceAnalysis parallel = ComputeCoherence(*pca, data.features());
    ASSERT_EQ(parallel.dims(), serial.dims());
    for (size_t i = 0; i < serial.dims(); ++i) {
      EXPECT_EQ(parallel.probability[i], serial.probability[i]);
      EXPECT_EQ(parallel.mean_factor[i], serial.mean_factor[i]);
    }
    EXPECT_EQ(PerPointCoherenceProbabilities(*pca, data.features()),
              per_point_serial);
  }
  SetParallelThreadCount(0);
}

TEST(CoherenceParallelTest, ChunkedReductionStaysNearExactSerialSum) {
  // The chunked reduction reassociates floating-point addition; it must
  // still agree with a straight per-record loop to ~1e-12.
  Rng rng(322);
  Matrix data = testing_util::RandomMatrix(200, 10, &rng);
  Result<PcaModel> pca = PcaModel::Fit(data, PcaScaling::kCovariance);
  ASSERT_TRUE(pca.ok());
  SetParallelThreadCount(4);
  const CoherenceAnalysis fast = ComputeCoherence(*pca, data);
  SetParallelThreadCount(0);

  Matrix normalized = pca->NormalizeRows(data);
  for (size_t i = 0; i < fast.dims(); ++i) {
    const Vector e = pca->eigenvectors().Col(i);
    double mean_prob = 0.0;
    for (size_t r = 0; r < data.rows(); ++r) {
      mean_prob += CoherenceProbability(normalized.Row(r), e);
    }
    mean_prob /= static_cast<double>(data.rows());
    EXPECT_NEAR(fast.probability[i], mean_prob, 1e-12);
  }
}

TEST(ComputeCoherenceTest, StudentizationRaisesCoherence) {
  // Paper Section 2.2: scaling the attributes to unit variance raises the
  // absolute coherence probabilities on scale-heterogeneous data.
  Dataset data = ArrhythmiaLike(126);
  Result<PcaModel> cov =
      PcaModel::Fit(data.features(), PcaScaling::kCovariance);
  Result<PcaModel> corr =
      PcaModel::Fit(data.features(), PcaScaling::kCorrelation);
  ASSERT_TRUE(cov.ok());
  ASSERT_TRUE(corr.ok());
  const CoherenceAnalysis raw = ComputeCoherence(*cov, data.features());
  const CoherenceAnalysis scaled = ComputeCoherence(*corr, data.features());
  EXPECT_GT(Mean(scaled.probability), Mean(raw.probability));
}

}  // namespace
}  // namespace cohere
