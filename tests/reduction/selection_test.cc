#include "reduction/selection.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace cohere {
namespace {

// Builds a PcaModel via Fit on data whose covariance spectrum we control by
// construction: independent columns with the given standard deviations.
PcaModel ModelWithSpectrum(const std::vector<double>& stddevs, uint64_t seed) {
  Rng rng(seed);
  Matrix data(4000, stddevs.size());
  for (size_t i = 0; i < data.rows(); ++i) {
    for (size_t j = 0; j < stddevs.size(); ++j) {
      data.At(i, j) = rng.Gaussian() * stddevs[j];
    }
  }
  Result<PcaModel> pca = PcaModel::Fit(data, PcaScaling::kCovariance);
  COHERE_CHECK(pca.ok());
  return std::move(*pca);
}

TEST(SelectionTest, OrderByEigenvalueIsIdentityPermutation) {
  PcaModel model = ModelWithSpectrum({3.0, 2.0, 1.0}, 1);
  const auto order = OrderByEigenvalue(model);
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2}));
}

TEST(SelectionTest, OrderByCoherenceSortsDescending) {
  CoherenceAnalysis coherence;
  coherence.probability = Vector{0.3, 0.9, 0.6, 0.9};
  coherence.mean_factor = Vector(4);
  const auto order = OrderByCoherence(coherence);
  // 0.9 (index 1), 0.9 (index 3, tie broken by smaller index first), 0.6, 0.3.
  EXPECT_EQ(order, (std::vector<size_t>{1, 3, 2, 0}));
}

TEST(SelectionTest, TakePrefix) {
  const std::vector<size_t> order{5, 2, 8};
  EXPECT_EQ(TakePrefix(order, 2), (std::vector<size_t>{5, 2}));
  EXPECT_TRUE(TakePrefix(order, 0).empty());
}

TEST(SelectionDeathTest, TakePrefixOverrunAborts) {
  EXPECT_DEATH(TakePrefix({1, 2}, 3), "COHERE_CHECK");
}

TEST(SelectionTest, EnergyFractionKeepsSmallestSufficientPrefix) {
  // Variances ~ 9, 4, 1 -> fractions ~ 0.643, 0.929, 1.0.
  PcaModel model = ModelWithSpectrum({3.0, 2.0, 1.0}, 2);
  EXPECT_EQ(SelectEnergyFraction(model, 0.5).size(), 1u);
  EXPECT_EQ(SelectEnergyFraction(model, 0.9).size(), 2u);
  EXPECT_EQ(SelectEnergyFraction(model, 0.99).size(), 3u);
  EXPECT_EQ(SelectEnergyFraction(model, 1.0).size(), 3u);
}

TEST(SelectionTest, EnergyFractionAlwaysKeepsOne) {
  PcaModel model = ModelWithSpectrum({1.0, 1.0}, 3);
  EXPECT_GE(SelectEnergyFraction(model, 0.001).size(), 1u);
}

TEST(SelectionTest, RelativeThresholdMatchesPaperBaseline) {
  // Eigenvalues ~ 100, 25, 4, 0.25: with the 10% rule (cutoff ~10) only the
  // first two survive.
  PcaModel model = ModelWithSpectrum({10.0, 5.0, 2.0, 0.5}, 4);
  const auto kept = SelectRelativeThreshold(model, 0.1);
  EXPECT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], 0u);
  EXPECT_EQ(kept[1], 1u);
}

TEST(SelectionTest, RelativeThresholdZeroKeepsAll) {
  PcaModel model = ModelWithSpectrum({2.0, 1.0, 0.5}, 5);
  EXPECT_EQ(SelectRelativeThreshold(model, 0.0).size(), 3u);
}

TEST(SelectionTest, RelativeThresholdOneKeepsAtLeastTop) {
  PcaModel model = ModelWithSpectrum({2.0, 1.0}, 6);
  EXPECT_GE(SelectRelativeThreshold(model, 1.0).size(), 1u);
}

TEST(SelectionTest, DetectSeparatedPrefixFindsCluster) {
  // Scores: 3 clear leaders far above a flat tail.
  Vector scores{0.95, 0.93, 0.90, 0.31, 0.30, 0.29, 0.30, 0.31, 0.30, 0.29};
  std::vector<size_t> order{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(DetectSeparatedPrefix(scores, order), 3u);
}

TEST(SelectionTest, DetectSeparatedPrefixFlatScoresGiveOne) {
  Vector scores(8, 0.68);
  std::vector<size_t> order{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(DetectSeparatedPrefix(scores, order), 1u);
}

TEST(SelectionTest, StrategyNames) {
  EXPECT_STREQ(SelectionStrategyName(SelectionStrategy::kEigenvalueOrder),
               "eigenvalue_order");
  EXPECT_STREQ(SelectionStrategyName(SelectionStrategy::kCoherenceOrder),
               "coherence_order");
  EXPECT_STREQ(SelectionStrategyName(SelectionStrategy::kEnergyFraction),
               "energy_fraction");
  EXPECT_STREQ(SelectionStrategyName(SelectionStrategy::kRelativeThreshold),
               "relative_threshold");
}

}  // namespace
}  // namespace cohere
