#include "reduction/pca.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "data/transforms.h"
#include "stats/covariance.h"

namespace cohere {
namespace {

using testing_util::ExpectOrthonormalColumns;
using testing_util::ExpectVectorNear;
using testing_util::RandomMatrix;

TEST(PcaTest, RecoversDominantDirection) {
  // Data along the line y = x with a little orthogonal jitter: the first
  // eigenvector must align with (1,1)/sqrt(2).
  Rng rng(101);
  Matrix data(500, 2);
  for (size_t i = 0; i < 500; ++i) {
    const double t = rng.Gaussian() * 5.0;
    const double jitter = rng.Gaussian() * 0.1;
    data.At(i, 0) = t + jitter;
    data.At(i, 1) = t - jitter;
  }
  Result<PcaModel> pca = PcaModel::Fit(data, PcaScaling::kCovariance);
  ASSERT_TRUE(pca.ok());
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::fabs(pca->eigenvectors().At(0, 0)), inv_sqrt2, 0.01);
  EXPECT_NEAR(std::fabs(pca->eigenvectors().At(1, 0)), inv_sqrt2, 0.01);
  EXPECT_GT(pca->eigenvalues()[0], 10.0 * pca->eigenvalues()[1]);
}

TEST(PcaTest, EigenvaluesDescendingAndVectorsOrthonormal) {
  Rng rng(102);
  Matrix data = RandomMatrix(120, 10, &rng);
  Result<PcaModel> pca = PcaModel::Fit(data, PcaScaling::kCovariance);
  ASSERT_TRUE(pca.ok());
  for (size_t i = 1; i < 10; ++i) {
    EXPECT_GE(pca->eigenvalues()[i - 1], pca->eigenvalues()[i]);
  }
  ExpectOrthonormalColumns(pca->eigenvectors(), 1e-10);
}

TEST(PcaTest, TotalVarianceMatchesCovarianceTrace) {
  Rng rng(103);
  Matrix data = RandomMatrix(80, 6, &rng);
  Result<PcaModel> pca = PcaModel::Fit(data, PcaScaling::kCovariance);
  ASSERT_TRUE(pca.ok());
  EXPECT_NEAR(pca->TotalVariance(), CovarianceMatrix(data).Trace(), 1e-9);
}

TEST(PcaTest, CorrelationScalingTotalVarianceIsDimension) {
  // The correlation matrix has unit diagonal, so its trace is d.
  Rng rng(104);
  Matrix data = RandomMatrix(60, 8, &rng);
  Result<PcaModel> pca = PcaModel::Fit(data, PcaScaling::kCorrelation);
  ASSERT_TRUE(pca.ok());
  EXPECT_NEAR(pca->TotalVariance(), 8.0, 1e-9);
}

TEST(PcaTest, TransformedDataHasEigenvalueVariances) {
  Rng rng(105);
  Matrix data = RandomMatrix(300, 5, &rng);
  // Stretch column 2 to make the spectrum interesting.
  for (size_t i = 0; i < data.rows(); ++i) data.At(i, 2) *= 4.0;
  Result<PcaModel> pca = PcaModel::Fit(data, PcaScaling::kCovariance);
  ASSERT_TRUE(pca.ok());
  Matrix scores = pca->TransformRows(data);
  for (size_t j = 0; j < 5; ++j) {
    const Vector col = scores.Col(j);
    double var = 0.0;
    for (double v : col) var += v * v;  // scores are centered
    var /= static_cast<double>(col.size());
    EXPECT_NEAR(var, pca->eigenvalues()[j],
                1e-8 * std::max(1.0, pca->eigenvalues()[j]));
  }
}

TEST(PcaTest, TransformedColumnsAreUncorrelated) {
  Rng rng(106);
  Matrix data = RandomMatrix(200, 4, &rng);
  Result<PcaModel> pca = PcaModel::Fit(data, PcaScaling::kCovariance);
  ASSERT_TRUE(pca.ok());
  Matrix cov = CovarianceMatrix(pca->TransformRows(data));
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      if (i != j) {
        EXPECT_NEAR(cov(i, j), 0.0, 1e-9);
      }
    }
  }
}

TEST(PcaTest, ProjectMatchesTransformColumns) {
  Rng rng(107);
  Matrix data = RandomMatrix(50, 6, &rng);
  Result<PcaModel> pca = PcaModel::Fit(data, PcaScaling::kCorrelation);
  ASSERT_TRUE(pca.ok());
  const Vector point = data.Row(3);
  const Vector full = pca->Transform(point);
  const Vector projected = pca->Project(point, {4, 0, 2});
  EXPECT_NEAR(projected[0], full[4], 1e-12);
  EXPECT_NEAR(projected[1], full[0], 1e-12);
  EXPECT_NEAR(projected[2], full[2], 1e-12);
}

TEST(PcaTest, ProjectRowsMatchesPerPointProject) {
  Rng rng(108);
  Matrix data = RandomMatrix(20, 5, &rng);
  Result<PcaModel> pca = PcaModel::Fit(data, PcaScaling::kCovariance);
  ASSERT_TRUE(pca.ok());
  const std::vector<size_t> comps{1, 3};
  Matrix projected = pca->ProjectRows(data, comps);
  for (size_t i = 0; i < data.rows(); ++i) {
    ExpectVectorNear(projected.Row(i), pca->Project(data.Row(i), comps),
                     1e-11);
  }
}

TEST(PcaTest, FullReconstructionRoundTrips) {
  Rng rng(109);
  Matrix data = RandomMatrix(40, 4, &rng);
  Result<PcaModel> pca = PcaModel::Fit(data, PcaScaling::kCorrelation);
  ASSERT_TRUE(pca.ok());
  const std::vector<size_t> all{0, 1, 2, 3};
  const Vector point = data.Row(11);
  ExpectVectorNear(pca->Reconstruct(pca->Project(point, all), all), point,
                   1e-10);
}

TEST(PcaTest, PartialReconstructionLosesOnlyDiscardedVariance) {
  Rng rng(110);
  Matrix data = RandomMatrix(200, 6, &rng);
  Result<PcaModel> pca = PcaModel::Fit(data, PcaScaling::kCovariance);
  ASSERT_TRUE(pca.ok());
  const std::vector<size_t> kept{0, 1, 2};
  double error_sum = 0.0;
  for (size_t i = 0; i < data.rows(); ++i) {
    const Vector rec = pca->Reconstruct(pca->Project(data.Row(i), kept), kept);
    error_sum += (rec - data.Row(i)).SquaredNorm2();
  }
  error_sum /= static_cast<double>(data.rows());
  const double discarded = pca->eigenvalues()[3] + pca->eigenvalues()[4] +
                           pca->eigenvalues()[5];
  EXPECT_NEAR(error_sum, discarded, 1e-8 * std::max(1.0, discarded));
}

TEST(PcaTest, VarianceRetainedFraction) {
  Rng rng(111);
  Matrix data = RandomMatrix(60, 3, &rng);
  Result<PcaModel> pca = PcaModel::Fit(data, PcaScaling::kCovariance);
  ASSERT_TRUE(pca.ok());
  EXPECT_NEAR(pca->VarianceRetainedFraction({0, 1, 2}), 1.0, 1e-12);
  const double f0 = pca->VarianceRetainedFraction({0});
  EXPECT_GT(f0, 1.0 / 3.0 - 1e-9);
  EXPECT_LT(f0, 1.0);
}

TEST(PcaTest, CorrelationScalingEqualsStudentizeThenCovariance) {
  // Fitting correlation PCA must match covariance PCA on studentized data.
  Rng rng(112);
  Matrix data = RandomMatrix(100, 5, &rng);
  for (size_t i = 0; i < data.rows(); ++i) data.At(i, 1) *= 40.0;

  Result<PcaModel> corr = PcaModel::Fit(data, PcaScaling::kCorrelation);
  ASSERT_TRUE(corr.ok());

  Dataset studentized = Studentize(Dataset(data));
  Result<PcaModel> cov =
      PcaModel::Fit(studentized.features(), PcaScaling::kCovariance);
  ASSERT_TRUE(cov.ok());

  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(corr->eigenvalues()[i], cov->eigenvalues()[i], 1e-9);
  }
}

TEST(PcaTest, RejectsEmptyData) {
  EXPECT_FALSE(PcaModel::Fit(Matrix(), PcaScaling::kCovariance).ok());
}

TEST(PcaTest, ScalingNames) {
  EXPECT_STREQ(PcaScalingName(PcaScaling::kCovariance), "covariance");
  EXPECT_STREQ(PcaScalingName(PcaScaling::kCorrelation), "correlation");
}

}  // namespace
}  // namespace cohere
