#include "reduction/random_projection.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace cohere {
namespace {

TEST(RandomProjectionTest, ShapeAndDeterminism) {
  RandomProjection a = RandomProjection::Make(20, 5, 7);
  RandomProjection b = RandomProjection::Make(20, 5, 7);
  EXPECT_EQ(a.input_dim(), 20u);
  EXPECT_EQ(a.target_dim(), 5u);
  Rng rng(141);
  const Vector x = rng.GaussianVector(20);
  testing_util::ExpectVectorNear(a.TransformPoint(x), b.TransformPoint(x),
                                 1e-15);
}

TEST(RandomProjectionTest, TransformRowsMatchesPerPoint) {
  RandomProjection rp = RandomProjection::Make(10, 3, 8);
  Rng rng(142);
  Matrix data = testing_util::RandomMatrix(15, 10, &rng);
  Matrix rows = rp.TransformRows(data);
  for (size_t i = 0; i < 15; ++i) {
    testing_util::ExpectVectorNear(rows.Row(i),
                                   rp.TransformPoint(data.Row(i)), 1e-12);
  }
}

TEST(RandomProjectionTest, ApproximatelyPreservesNormsInExpectation) {
  // JL property: E[|Rx|^2] = |x|^2; with many trials the average ratio is
  // near 1.
  Rng rng(143);
  double ratio_sum = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    RandomProjection rp = RandomProjection::Make(50, 25, 1000 + t);
    const Vector x = rng.GaussianVector(50);
    ratio_sum += rp.TransformPoint(x).SquaredNorm2() / x.SquaredNorm2();
  }
  EXPECT_NEAR(ratio_sum / trials, 1.0, 0.1);
}

TEST(RandomProjectionTest, DatasetTransformKeepsLabels) {
  Dataset d(Matrix(6, 8), std::vector<int>{0, 1, 0, 1, 0, 1});
  RandomProjection rp = RandomProjection::Make(8, 2, 9);
  Dataset out = rp.TransformDataset(d);
  EXPECT_EQ(out.NumAttributes(), 2u);
  EXPECT_EQ(out.labels(), d.labels());
}

TEST(RandomProjectionDeathTest, BadDimsAbort) {
  EXPECT_DEATH(RandomProjection::Make(5, 6, 1), "COHERE_CHECK");
  EXPECT_DEATH(RandomProjection::Make(0, 0, 1), "COHERE_CHECK");
}

}  // namespace
}  // namespace cohere
