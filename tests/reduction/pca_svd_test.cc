#include <gtest/gtest.h>

#include "../test_util.h"
#include "reduction/pca.h"

namespace cohere {
namespace {

using testing_util::RandomMatrix;

// The SVD path and the eigen path must produce the same model up to
// floating-point error and eigenvector sign.
class PcaSvdAgreementTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(PcaSvdAgreementTest, MatchesEigenPath) {
  const auto [n, d] = GetParam();
  Rng rng(900 + n + d);
  Matrix data = RandomMatrix(n, d, &rng);
  for (size_t i = 0; i < n; ++i) data.At(i, 0) *= 50.0;  // scale spread

  for (PcaScaling scaling :
       {PcaScaling::kCovariance, PcaScaling::kCorrelation}) {
    Result<PcaModel> eig = PcaModel::Fit(data, scaling);
    Result<PcaModel> svd = PcaModel::FitWithSvd(data, scaling);
    ASSERT_TRUE(eig.ok());
    ASSERT_TRUE(svd.ok());
    for (size_t i = 0; i < d; ++i) {
      EXPECT_NEAR(svd->eigenvalues()[i], eig->eigenvalues()[i],
                  1e-8 * std::max(1.0, eig->eigenvalues()[0]));
      // Columns agree up to sign.
      double dot = 0.0;
      for (size_t j = 0; j < d; ++j) {
        dot += svd->eigenvectors().At(j, i) * eig->eigenvectors().At(j, i);
      }
      EXPECT_NEAR(std::fabs(dot), 1.0, 1e-6)
          << "eigenvector " << i << " scaling "
          << PcaScalingName(scaling);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PcaSvdAgreementTest,
    ::testing::Values(std::make_pair<size_t, size_t>(30, 5),
                      std::make_pair<size_t, size_t>(100, 12),
                      std::make_pair<size_t, size_t>(64, 64)));

TEST(PcaSvdTest, ProjectionsAgreeUpToSign) {
  Rng rng(910);
  Matrix data = RandomMatrix(80, 6, &rng);
  Result<PcaModel> eig = PcaModel::Fit(data, PcaScaling::kCorrelation);
  Result<PcaModel> svd = PcaModel::FitWithSvd(data, PcaScaling::kCorrelation);
  ASSERT_TRUE(eig.ok());
  ASSERT_TRUE(svd.ok());
  const Vector point = data.Row(17);
  const Vector a = eig->Transform(point);
  const Vector b = svd->Transform(point);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(std::fabs(a[i]), std::fabs(b[i]), 1e-8);
  }
}

TEST(PcaSvdTest, RejectsWideData) {
  EXPECT_FALSE(
      PcaModel::FitWithSvd(Matrix(3, 5, 1.0), PcaScaling::kCovariance).ok());
}

TEST(PcaSvdTest, RejectsEmptyData) {
  EXPECT_FALSE(PcaModel::FitWithSvd(Matrix(), PcaScaling::kCovariance).ok());
}

TEST(PcaSvdTest, RankDeficientDataGetsZeroEigenvalues) {
  // Duplicate column -> one zero eigenvalue; the SVD path handles this
  // without forming a singular covariance matrix.
  Rng rng(911);
  Matrix data(40, 3);
  for (size_t i = 0; i < 40; ++i) {
    data.At(i, 0) = rng.Gaussian();
    data.At(i, 1) = rng.Gaussian();
    data.At(i, 2) = data.At(i, 0);
  }
  Result<PcaModel> svd = PcaModel::FitWithSvd(data, PcaScaling::kCovariance);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->eigenvalues()[2], 0.0, 1e-10);
  EXPECT_GT(svd->eigenvalues()[0], 0.0);
}

}  // namespace
}  // namespace cohere
