#include "reduction/serialization.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "data/uci_like.h"

namespace cohere {
namespace {

using testing_util::ExpectMatrixNear;
using testing_util::ExpectVectorNear;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(ModelSerializationTest, RoundTripPreservesModel) {
  Dataset data = IonosphereLike(601);
  Result<PcaModel> original =
      PcaModel::Fit(data.features(), PcaScaling::kCorrelation);
  ASSERT_TRUE(original.ok());

  const std::string path = TempPath("model_roundtrip.txt");
  ASSERT_TRUE(SavePcaModel(*original, path).ok());
  Result<PcaModel> loaded = LoadPcaModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->scaling(), original->scaling());
  ExpectVectorNear(loaded->eigenvalues(), original->eigenvalues(), 0.0);
  ExpectVectorNear(loaded->mean(), original->mean(), 0.0);
  ExpectVectorNear(loaded->scale(), original->scale(), 0.0);
  ExpectMatrixNear(loaded->eigenvectors(), original->eigenvectors(), 0.0);

  // Behavioral equivalence: identical transforms.
  const Vector point = data.Record(5);
  ExpectVectorNear(loaded->Transform(point), original->Transform(point), 0.0);
  std::remove(path.c_str());
}

TEST(ModelSerializationTest, RejectsCorruptFiles) {
  const std::string path = TempPath("model_corrupt.txt");
  {
    std::ofstream file(path);
    file << "not a model\n";
  }
  EXPECT_EQ(LoadPcaModel(path).status().code(), StatusCode::kParseError);
  {
    std::ofstream file(path);
    file << "cohere_pca_model v1\nscaling correlation\ndims 2\n"
         << "eigenvalues 1.0\n";  // short line
  }
  EXPECT_FALSE(LoadPcaModel(path).ok());
  std::remove(path.c_str());
}

TEST(ModelSerializationTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadPcaModel("/nonexistent/m.txt").status().code(),
            StatusCode::kIoError);
}

TEST(PipelineSerializationTest, RoundTripPreservesBehavior) {
  Dataset data = NoisyDataA(602);
  ReductionOptions options;
  options.scaling = PcaScaling::kCovariance;
  options.strategy = SelectionStrategy::kCoherenceOrder;
  options.target_dim = 7;
  Result<ReductionPipeline> original = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(original.ok());

  const std::string path = TempPath("pipeline_roundtrip.txt");
  ASSERT_TRUE(SaveReductionPipeline(*original, path).ok());
  Result<ReductionPipeline> loaded = LoadReductionPipeline(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->options().strategy, options.strategy);
  EXPECT_EQ(loaded->options().scaling, options.scaling);
  EXPECT_EQ(loaded->options().target_dim, options.target_dim);
  EXPECT_EQ(loaded->components(), original->components());
  ExpectVectorNear(loaded->coherence().probability,
                   original->coherence().probability, 0.0);

  const Vector point = data.Record(13);
  ExpectVectorNear(loaded->TransformPoint(point),
                   original->TransformPoint(point), 0.0);
  EXPECT_DOUBLE_EQ(loaded->VarianceRetainedFraction(),
                   original->VarianceRetainedFraction());
  std::remove(path.c_str());
}

TEST(PipelineSerializationTest, AllStrategiesRoundTrip) {
  Dataset data = IonosphereLike(603);
  const std::string path = TempPath("pipeline_strategies.txt");
  for (SelectionStrategy strategy :
       {SelectionStrategy::kEigenvalueOrder,
        SelectionStrategy::kCoherenceOrder,
        SelectionStrategy::kEnergyFraction,
        SelectionStrategy::kRelativeThreshold}) {
    ReductionOptions options;
    options.strategy = strategy;
    options.target_dim =
        (strategy == SelectionStrategy::kEigenvalueOrder ||
         strategy == SelectionStrategy::kCoherenceOrder)
            ? 6
            : 0;
    Result<ReductionPipeline> original =
        ReductionPipeline::Fit(data, options);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(SaveReductionPipeline(*original, path).ok());
    Result<ReductionPipeline> loaded = LoadReductionPipeline(path);
    ASSERT_TRUE(loaded.ok()) << SelectionStrategyName(strategy) << ": "
                             << loaded.status().ToString();
    EXPECT_EQ(loaded->options().strategy, strategy);
    EXPECT_EQ(loaded->components(), original->components());
  }
  std::remove(path.c_str());
}

TEST(PipelineSerializationTest, RejectsCorruptFile) {
  const std::string path = TempPath("pipeline_corrupt.txt");
  {
    std::ofstream file(path);
    file << "cohere_reduction_pipeline v1\nstrategy bogus\n";
  }
  EXPECT_FALSE(LoadReductionPipeline(path).ok());
  std::remove(path.c_str());
}

TEST(FromComponentsTest, ValidatesInputs) {
  // Shape mismatch.
  EXPECT_FALSE(PcaModel::FromComponents(PcaScaling::kCovariance, Vector(3),
                                        Matrix(3, 3), Vector(2), Vector(3))
                   .ok());
  // Non-descending eigenvalues.
  EXPECT_FALSE(PcaModel::FromComponents(PcaScaling::kCovariance,
                                        Vector{1.0, 2.0}, Matrix::Identity(2),
                                        Vector(2), Vector(2, 1.0))
                   .ok());
  // Non-positive scale.
  EXPECT_FALSE(PcaModel::FromComponents(PcaScaling::kCovariance,
                                        Vector{2.0, 1.0}, Matrix::Identity(2),
                                        Vector(2), Vector(2, 0.0))
                   .ok());
  // Valid.
  EXPECT_TRUE(PcaModel::FromComponents(PcaScaling::kCovariance,
                                       Vector{2.0, 1.0}, Matrix::Identity(2),
                                       Vector(2), Vector(2, 1.0))
                  .ok());
}

TEST(FromPartsTest, ValidatesComponents) {
  Result<PcaModel> model = PcaModel::FromComponents(
      PcaScaling::kCovariance, Vector{2.0, 1.0}, Matrix::Identity(2),
      Vector(2), Vector(2, 1.0));
  ASSERT_TRUE(model.ok());
  CoherenceAnalysis coherence;
  coherence.probability = Vector(2, 0.5);
  coherence.mean_factor = Vector(2, 1.0);

  ReductionOptions options;
  // Out of range.
  EXPECT_FALSE(
      ReductionPipeline::FromParts(options, *model, coherence, {0, 2}).ok());
  // Duplicate.
  EXPECT_FALSE(
      ReductionPipeline::FromParts(options, *model, coherence, {1, 1}).ok());
  // Mismatched coherence.
  CoherenceAnalysis bad;
  bad.probability = Vector(3, 0.5);
  bad.mean_factor = Vector(3, 1.0);
  EXPECT_FALSE(
      ReductionPipeline::FromParts(options, *model, bad, {0}).ok());
  // Valid.
  EXPECT_TRUE(
      ReductionPipeline::FromParts(options, *model, coherence, {1}).ok());
}

}  // namespace
}  // namespace cohere
