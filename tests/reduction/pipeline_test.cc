#include "reduction/pipeline.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "data/uci_like.h"

namespace cohere {
namespace {

TEST(PipelineTest, FitWithExplicitTargetDim) {
  Dataset data = IonosphereLike(131);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kEigenvalueOrder;
  options.target_dim = 5;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  EXPECT_EQ(pipeline->ReducedDims(), 5u);
  EXPECT_EQ(pipeline->components(), (std::vector<size_t>{0, 1, 2, 3, 4}));
  EXPECT_GT(pipeline->VarianceRetainedFraction(), 0.0);
  EXPECT_LE(pipeline->VarianceRetainedFraction(), 1.0);
}

TEST(PipelineTest, CoherenceOrderingUsesCoherence) {
  Dataset data = NoisyDataA(132);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kCoherenceOrder;
  options.target_dim = 8;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok());
  // The retained components must be the 8 highest-coherence ones.
  const Vector& prob = pipeline->coherence().probability;
  double min_kept = 1.0;
  for (size_t c : pipeline->components()) {
    min_kept = std::min(min_kept, prob[c]);
  }
  size_t better_than_kept = 0;
  for (size_t i = 0; i < prob.size(); ++i) {
    if (prob[i] > min_kept) ++better_than_kept;
  }
  EXPECT_LE(better_than_kept, 8u);
}

TEST(PipelineTest, AutoTargetDimUsesSeparationHeuristic) {
  Dataset data = IonosphereLike(133);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kCoherenceOrder;
  options.target_dim = 0;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok());
  EXPECT_GE(pipeline->ReducedDims(), 1u);
  EXPECT_LE(pipeline->ReducedDims(), 34u);
}

TEST(PipelineTest, ThresholdStrategySizesItself) {
  Dataset data = MuskLike(134);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kRelativeThreshold;
  options.relative_threshold = 0.01;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok());
  // The paper observes 1%-thresholding keeps close to full dimensionality
  // in quality but the kept count is data dependent; sanity-bound it.
  EXPECT_GE(pipeline->ReducedDims(), 1u);
  EXPECT_LE(pipeline->ReducedDims(), 166u);
}

TEST(PipelineTest, EnergyFractionStrategy) {
  Dataset data = IonosphereLike(135);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kEnergyFraction;
  options.energy_fraction = 0.8;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok());
  EXPECT_GE(pipeline->VarianceRetainedFraction(), 0.8 - 1e-9);
}

TEST(PipelineTest, TransformDatasetShapeAndLabels) {
  Dataset data = IonosphereLike(136);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kEigenvalueOrder;
  options.target_dim = 7;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok());
  Dataset reduced = pipeline->TransformDataset(data);
  EXPECT_EQ(reduced.NumRecords(), data.NumRecords());
  EXPECT_EQ(reduced.NumAttributes(), 7u);
  EXPECT_EQ(reduced.labels(), data.labels());
}

TEST(PipelineTest, TransformPointMatchesDatasetRows) {
  Dataset data = IonosphereLike(137);
  ReductionOptions options;
  options.target_dim = 4;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok());
  Dataset reduced = pipeline->TransformDataset(data);
  const Vector point = data.Record(17);
  testing_util::ExpectVectorNear(pipeline->TransformPoint(point),
                                 reduced.Record(17), 1e-10);
}

TEST(PipelineTest, RejectsOversizedTargetDim) {
  Dataset data = IonosphereLike(138);
  ReductionOptions options;
  options.target_dim = 35;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  EXPECT_FALSE(pipeline.ok());
  EXPECT_EQ(pipeline.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineTest, DescribeMentionsStrategyAndDims) {
  Dataset data = IonosphereLike(139);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kCoherenceOrder;
  options.target_dim = 10;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok());
  const std::string desc = pipeline->Describe();
  EXPECT_NE(desc.find("coherence_order"), std::string::npos);
  EXPECT_NE(desc.find("10/34"), std::string::npos);
}

}  // namespace
}  // namespace cohere
