#include "reduction/pipeline.h"

#include <cmath>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/fault.h"
#include "data/uci_like.h"
#include "obs/metrics.h"

namespace cohere {
namespace {

TEST(PipelineTest, FitWithExplicitTargetDim) {
  Dataset data = IonosphereLike(131);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kEigenvalueOrder;
  options.target_dim = 5;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  EXPECT_EQ(pipeline->ReducedDims(), 5u);
  EXPECT_EQ(pipeline->components(), (std::vector<size_t>{0, 1, 2, 3, 4}));
  EXPECT_GT(pipeline->VarianceRetainedFraction(), 0.0);
  EXPECT_LE(pipeline->VarianceRetainedFraction(), 1.0);
}

TEST(PipelineTest, CoherenceOrderingUsesCoherence) {
  Dataset data = NoisyDataA(132);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kCoherenceOrder;
  options.target_dim = 8;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok());
  // The retained components must be the 8 highest-coherence ones.
  const Vector& prob = pipeline->coherence().probability;
  double min_kept = 1.0;
  for (size_t c : pipeline->components()) {
    min_kept = std::min(min_kept, prob[c]);
  }
  size_t better_than_kept = 0;
  for (size_t i = 0; i < prob.size(); ++i) {
    if (prob[i] > min_kept) ++better_than_kept;
  }
  EXPECT_LE(better_than_kept, 8u);
}

TEST(PipelineTest, AutoTargetDimUsesSeparationHeuristic) {
  Dataset data = IonosphereLike(133);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kCoherenceOrder;
  options.target_dim = 0;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok());
  EXPECT_GE(pipeline->ReducedDims(), 1u);
  EXPECT_LE(pipeline->ReducedDims(), 34u);
}

TEST(PipelineTest, ThresholdStrategySizesItself) {
  Dataset data = MuskLike(134);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kRelativeThreshold;
  options.relative_threshold = 0.01;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok());
  // The paper observes 1%-thresholding keeps close to full dimensionality
  // in quality but the kept count is data dependent; sanity-bound it.
  EXPECT_GE(pipeline->ReducedDims(), 1u);
  EXPECT_LE(pipeline->ReducedDims(), 166u);
}

TEST(PipelineTest, EnergyFractionStrategy) {
  Dataset data = IonosphereLike(135);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kEnergyFraction;
  options.energy_fraction = 0.8;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok());
  EXPECT_GE(pipeline->VarianceRetainedFraction(), 0.8 - 1e-9);
}

TEST(PipelineTest, TransformDatasetShapeAndLabels) {
  Dataset data = IonosphereLike(136);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kEigenvalueOrder;
  options.target_dim = 7;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok());
  Dataset reduced = pipeline->TransformDataset(data);
  EXPECT_EQ(reduced.NumRecords(), data.NumRecords());
  EXPECT_EQ(reduced.NumAttributes(), 7u);
  EXPECT_EQ(reduced.labels(), data.labels());
}

TEST(PipelineTest, TransformPointMatchesDatasetRows) {
  Dataset data = IonosphereLike(137);
  ReductionOptions options;
  options.target_dim = 4;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok());
  Dataset reduced = pipeline->TransformDataset(data);
  const Vector point = data.Record(17);
  testing_util::ExpectVectorNear(pipeline->TransformPoint(point),
                                 reduced.Record(17), 1e-10);
}

TEST(PipelineTest, RejectsOversizedTargetDim) {
  Dataset data = IonosphereLike(138);
  ReductionOptions options;
  options.target_dim = 35;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  EXPECT_FALSE(pipeline.ok());
  EXPECT_EQ(pipeline.status().code(), StatusCode::kInvalidArgument);
}

// The degradation ladder: primary eigensolver -> SVD -> studentized
// identity. Faults are disarmed even when assertions fail (fixture
// teardown), so a broken expectation cannot poison later tests.
class PipelineFallbackTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::DisarmAll();
    fault::ResetCounters();
  }
};

TEST_F(PipelineFallbackTest, PrimaryFailureFallsBackToSvd) {
  Dataset data = IonosphereLike(140);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kCoherenceOrder;
  options.target_dim = 6;
  const uint64_t svd_before =
      obs::MetricsRegistry::Global().GetCounter("pipeline.fallback_svd")
          ->Value();

  fault::Arm(fault::kPointReductionFit, 1.0);
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  EXPECT_EQ(pipeline->ReducedDims(), 6u);
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetCounter("pipeline.fallback_svd")
                ->Value(),
            svd_before);
  // The SVD path fits the same model as the eigensolver path (up to sign),
  // so the degraded pipeline still retains real variance.
  EXPECT_GT(pipeline->VarianceRetainedFraction(), 0.0);
  const Vector projected = pipeline->TransformPoint(data.Record(0));
  for (size_t j = 0; j < projected.size(); ++j) {
    EXPECT_TRUE(std::isfinite(projected[j]));
  }
}

TEST_F(PipelineFallbackTest, RealEigensolverFailureAlsoEngagesTheChain) {
  // Arm the solver-level point instead of the pipeline-level one: the chain
  // must catch a NumericalError coming out of the actual linalg call.
  Dataset data = IonosphereLike(141);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kEigenvalueOrder;
  options.target_dim = 5;
  fault::Arm(fault::kPointSymmetricEigen, 1.0);
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  EXPECT_EQ(pipeline->ReducedDims(), 5u);
}

TEST_F(PipelineFallbackTest, DoubleFailureDegradesToIdentityProjection) {
  Dataset data = IonosphereLike(142);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kEigenvalueOrder;
  options.target_dim = 4;
  const uint64_t identity_before =
      obs::MetricsRegistry::Global()
          .GetCounter("pipeline.fallback_identity")
          ->Value();

  fault::Arm(fault::kPointReductionFit, 1.0);
  fault::Arm(fault::kPointSvd, 1.0);
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  EXPECT_EQ(pipeline->ReducedDims(), 4u);
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetCounter("pipeline.fallback_identity")
                ->Value(),
            identity_before);

  // The identity model is axis-aligned: every "eigenvector" is a standard
  // basis vector, so transforms are finite and well-defined.
  const PcaModel& model = pipeline->model();
  for (size_t j = 0; j < model.dims(); ++j) {
    double col_sum = 0.0;
    for (size_t i = 0; i < model.dims(); ++i) {
      col_sum += std::abs(model.eigenvectors().At(i, j));
    }
    EXPECT_NEAR(col_sum, 1.0, 1e-12) << "column " << j;
  }
  // Eigenvalues descend.
  for (size_t i = 1; i < model.eigenvalues().size(); ++i) {
    EXPECT_LE(model.eigenvalues()[i], model.eigenvalues()[i - 1] + 1e-12);
  }
  const Vector projected = pipeline->TransformPoint(data.Record(3));
  for (size_t j = 0; j < projected.size(); ++j) {
    EXPECT_TRUE(std::isfinite(projected[j]));
  }
}

TEST_F(PipelineFallbackTest, DegradationCanBeDisabled) {
  Dataset data = IonosphereLike(143);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kEigenvalueOrder;
  options.target_dim = 4;
  options.allow_degraded_fit = false;
  fault::Arm(fault::kPointReductionFit, 1.0);
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_FALSE(pipeline.ok());
  EXPECT_EQ(pipeline.status().code(), StatusCode::kNumericalError);
}

TEST(PipelineTest, DescribeMentionsStrategyAndDims) {
  Dataset data = IonosphereLike(139);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kCoherenceOrder;
  options.target_dim = 10;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok());
  const std::string desc = pipeline->Describe();
  EXPECT_NE(desc.find("coherence_order"), std::string::npos);
  EXPECT_NE(desc.find("10/34"), std::string::npos);
}

}  // namespace
}  // namespace cohere
