#include "cache/query_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "cache/cache_manager.h"
#include "common/fault.h"
#include "index/knn.h"
#include "linalg/vector.h"

namespace cohere {
namespace cache {
namespace {

std::vector<Neighbor> MakeNeighbors(size_t n, uint64_t salt) {
  std::vector<Neighbor> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Neighbor nb;
    nb.index = i + salt;
    nb.distance = static_cast<double>(i) + 0.25 * static_cast<double>(salt);
    out.push_back(nb);
  }
  return out;
}

CacheKey MakeKey(uint64_t version, uint64_t fingerprint, uint32_t k = 5,
                 uint32_t probes = 1, uint64_t metric_hash = 0xabcdef) {
  CacheKey key;
  key.snapshot_version = version;
  key.metric_hash = metric_hash;
  key.query_fingerprint = fingerprint;
  key.k = k;
  key.probes = probes;
  return key;
}

ResultCacheOptions Options(size_t budget, size_t shards = 1) {
  ResultCacheOptions options;
  options.scope = "test";
  options.budget_bytes = budget;
  options.num_shards = shards;
  return options;
}

TEST(CacheFingerprintTest, VectorFingerprintIsDeterministicAndDiscriminates) {
  Vector a(3);
  a[0] = 1.0; a[1] = 2.0; a[2] = 3.0;
  Vector b(3);
  b[0] = 1.0; b[1] = 2.0; b[2] = 3.0;
  EXPECT_EQ(FingerprintVector(a), FingerprintVector(b));

  b[2] = 3.0000001;
  EXPECT_NE(FingerprintVector(a), FingerprintVector(b));

  // Same leading bytes, different length, must not collide trivially.
  Vector shorter(2);
  shorter[0] = 1.0; shorter[1] = 2.0;
  EXPECT_NE(FingerprintVector(a), FingerprintVector(shorter));

  // Signed zero is a distinct bit pattern, hence a distinct fingerprint.
  Vector pos(1), neg(1);
  pos[0] = 0.0;
  neg[0] = -0.0;
  EXPECT_NE(FingerprintVector(pos), FingerprintVector(neg));
}

TEST(CacheKeyTest, EveryFieldParticipatesInHashAndEquality) {
  const CacheKey base = MakeKey(3, 0x1234, 5, 2);
  EXPECT_EQ(base, MakeKey(3, 0x1234, 5, 2));
  const CacheKey variants[] = {
      MakeKey(4, 0x1234, 5, 2),            // version
      MakeKey(3, 0x9999, 5, 2),            // fingerprint
      MakeKey(3, 0x1234, 6, 2),            // k
      MakeKey(3, 0x1234, 5, 3),            // probes
      MakeKey(3, 0x1234, 5, 2, 0x777777),  // metric
  };
  for (const CacheKey& v : variants) {
    EXPECT_FALSE(v == base);
    EXPECT_NE(HashKey(v), HashKey(base));
  }
}

TEST(CacheBasicTest, InsertLookupRoundTrip) {
  ResultCache cache(Options(1 << 20));
  const CacheKey key = MakeKey(1, 42);
  std::vector<Neighbor> got;
  EXPECT_FALSE(cache.Lookup(key, &got));

  const std::vector<Neighbor> want = MakeNeighbors(5, 7);
  cache.Insert(key, want);
  ASSERT_TRUE(cache.Lookup(key, &got));
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index);
    EXPECT_EQ(got[i].distance, want[i].distance);
  }

  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(CacheBasicTest, DistinctKeysNeverAlias) {
  ResultCache cache(Options(1 << 20, 4));
  cache.Insert(MakeKey(1, 42, 5), MakeNeighbors(5, 1));
  cache.Insert(MakeKey(1, 42, 10), MakeNeighbors(10, 2));
  cache.Insert(MakeKey(2, 42, 5), MakeNeighbors(5, 3));

  std::vector<Neighbor> got;
  ASSERT_TRUE(cache.Lookup(MakeKey(1, 42, 5), &got));
  EXPECT_EQ(got.size(), 5u);
  EXPECT_EQ(got[0].index, 1u);
  ASSERT_TRUE(cache.Lookup(MakeKey(1, 42, 10), &got));
  EXPECT_EQ(got.size(), 10u);
  EXPECT_EQ(got[0].index, 2u);
  ASSERT_TRUE(cache.Lookup(MakeKey(2, 42, 5), &got));
  EXPECT_EQ(got[0].index, 3u);
  // A version that was never inserted misses even though the fingerprint is
  // hot — this is the COW-publish invalidation contract.
  EXPECT_FALSE(cache.Lookup(MakeKey(3, 42, 5), &got));
}

TEST(CacheBasicTest, ReinsertReplacesValue) {
  ResultCache cache(Options(1 << 20));
  const CacheKey key = MakeKey(1, 42);
  cache.Insert(key, MakeNeighbors(5, 1));
  cache.Insert(key, MakeNeighbors(3, 9));
  std::vector<Neighbor> got;
  ASSERT_TRUE(cache.Lookup(key, &got));
  EXPECT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].index, 9u);
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(CacheBudgetTest, EvictionKeepsBytesUnderBudget) {
  const size_t budget = 8 * 1024;
  ResultCache cache(Options(budget, 2));
  for (uint64_t i = 0; i < 200; ++i) {
    cache.Insert(MakeKey(1, i), MakeNeighbors(8, i));
    EXPECT_LE(cache.bytes(), budget);
  }
  const ResultCacheStats stats = cache.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.entries, 0u);
  EXPECT_LE(stats.bytes, budget);
}

TEST(CacheBudgetTest, ZeroBudgetRejectsEverything) {
  ResultCache cache(Options(0));
  cache.Insert(MakeKey(1, 1), MakeNeighbors(4, 0));
  std::vector<Neighbor> got;
  EXPECT_FALSE(cache.Lookup(MakeKey(1, 1), &got));
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_GE(stats.rejected, 1u);
}

TEST(CacheBudgetTest, OversizedEntryIsRejectedNotThrashed) {
  ResultCache cache(Options(512));
  cache.Insert(MakeKey(1, 1), MakeNeighbors(4, 0));  // fits
  const size_t entries_before = cache.Stats().entries;
  cache.Insert(MakeKey(1, 2), MakeNeighbors(4096, 0));  // larger than budget
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, entries_before);  // nothing thrown out for it
  EXPECT_GE(stats.rejected, 1u);
}

TEST(CacheBudgetTest, SetBudgetShrinkEvictsDown) {
  ResultCache cache(Options(64 * 1024, 2));
  for (uint64_t i = 0; i < 100; ++i) {
    cache.Insert(MakeKey(1, i), MakeNeighbors(8, i));
  }
  ASSERT_GT(cache.bytes(), 2048u);
  cache.SetBudget(2048);
  EXPECT_LE(cache.bytes(), 2048u);
  EXPECT_EQ(cache.budget_bytes(), 2048u);
  cache.SetBudget(0);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(CacheBudgetTest, ClearDropsEntriesButKeepsBudget) {
  ResultCache cache(Options(1 << 20));
  cache.Insert(MakeKey(1, 1), MakeNeighbors(4, 0));
  cache.InsertProjection(1, 99, 7, Vector(4));
  cache.Clear();
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_EQ(cache.budget_bytes(), 1u << 20);
  std::vector<Neighbor> got;
  EXPECT_FALSE(cache.Lookup(MakeKey(1, 1), &got));
}

TEST(CacheClockTest, RecentlyHitEntrySurvivesEviction) {
  // One shard so the CLOCK order is deterministic. Budget fits roughly four
  // 8-neighbor entries.
  const std::vector<Neighbor> payload = MakeNeighbors(8, 0);
  ResultCache probe(Options(1 << 20));
  probe.Insert(MakeKey(1, 0), payload);
  const size_t per_entry = probe.bytes();
  ASSERT_GT(per_entry, 0u);

  ResultCache cache(Options(4 * per_entry, 1));
  for (uint64_t i = 0; i < 4; ++i) {
    cache.Insert(MakeKey(1, i), payload);
  }
  ASSERT_EQ(cache.Stats().entries, 4u);

  // Hit entry 0 (the clock hand's first victim candidate): the reference
  // bit must buy it a second chance, so the next insert evicts entry 1.
  std::vector<Neighbor> got;
  ASSERT_TRUE(cache.Lookup(MakeKey(1, 0), &got));
  cache.Insert(MakeKey(1, 100), payload);

  EXPECT_TRUE(cache.Lookup(MakeKey(1, 0), &got)) << "hot entry was evicted";
  EXPECT_FALSE(cache.Lookup(MakeKey(1, 1), &got)) << "cold entry survived";
  EXPECT_TRUE(cache.Lookup(MakeKey(1, 100), &got));
}

TEST(CacheProjectionTest, ProjectionRoundTripSharedAcrossK) {
  ResultCache cache(Options(1 << 20));
  Vector projected(3);
  projected[0] = 0.5; projected[1] = -1.5; projected[2] = 2.0;
  cache.InsertProjection(7, 0xfeed, 0xabc, projected);

  // The projection table is keyed without k/probes, so any result-level
  // caller with the same (version, fingerprint, metric) reuses it.
  Vector got;
  ASSERT_TRUE(cache.LookupProjection(7, 0xfeed, 0xabc, &got));
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], 0.5);
  EXPECT_EQ(got[1], -1.5);
  EXPECT_EQ(got[2], 2.0);

  // Any key-field change misses.
  EXPECT_FALSE(cache.LookupProjection(8, 0xfeed, 0xabc, &got));
  EXPECT_FALSE(cache.LookupProjection(7, 0xfeee, 0xabc, &got));
  EXPECT_FALSE(cache.LookupProjection(7, 0xfeed, 0xabd, &got));
}

TEST(CacheFaultTest, InsertPressurePointRejectsButLookupsStayCorrect) {
  fault::DisarmAll();
  ResultCache cache(Options(1 << 20));
  cache.Insert(MakeKey(1, 1), MakeNeighbors(4, 1));

  fault::Arm(fault::kPointCacheInsertPressure, 1.0);
  cache.Insert(MakeKey(1, 2), MakeNeighbors(4, 2));
  std::vector<Neighbor> got;
  EXPECT_FALSE(cache.Lookup(MakeKey(1, 2), &got));
  // Pre-pressure entries keep serving.
  EXPECT_TRUE(cache.Lookup(MakeKey(1, 1), &got));
  EXPECT_GE(cache.Stats().rejected, 1u);
  EXPECT_GT(fault::Point(fault::kPointCacheInsertPressure)->triggers(), 0u);

  fault::DisarmAll();
  cache.Insert(MakeKey(1, 2), MakeNeighbors(4, 2));
  EXPECT_TRUE(cache.Lookup(MakeKey(1, 2), &got));  // no sticky state
}

TEST(CacheManagerTest, UncappedGrantsExactlyWhatWasRequested) {
  CacheManager manager;
  auto cache = manager.CreateCache("engine", 123456);
  EXPECT_EQ(cache->budget_bytes(), 123456u);
  const CacheManager::ManagerStats stats = manager.GetStats();
  EXPECT_EQ(stats.caches, 1u);
  EXPECT_EQ(stats.total_budget, 0u);
  EXPECT_EQ(stats.granted_bytes, 123456u);
}

TEST(CacheManagerTest, CapDividesBudgetAndFavorsTheHotCache) {
  CacheManager manager;
  auto hot = manager.CreateCache("hot", 1 << 20);
  auto cold = manager.CreateCache("cold", 1 << 20);
  // The kMinGrant floor may overshoot the cap by at most caches * 4096.
  const size_t cap_slack = 256 * 1024 + 2 * 4096;
  manager.SetTotalBudget(256 * 1024);
  EXPECT_LE(hot->budget_bytes() + cold->budget_bytes(), cap_slack);

  // Build hit history on `hot` only, then rebalance: demand weighting must
  // grant the hot cache strictly more than the idle one.
  const CacheKey key = MakeKey(1, 1);
  hot->Insert(key, MakeNeighbors(4, 0));
  std::vector<Neighbor> got;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(hot->Lookup(key, &got));
  }
  manager.Rebalance();
  EXPECT_GT(hot->budget_bytes(), cold->budget_bytes());
  EXPECT_LE(hot->budget_bytes() + cold->budget_bytes(), cap_slack);
  EXPECT_GE(cold->budget_bytes(), 4096u);  // kMinGrant floor

  // Dropping the cap restores grant-what-was-requested.
  manager.SetTotalBudget(0);
  EXPECT_EQ(hot->budget_bytes(), 1u << 20);
  EXPECT_EQ(cold->budget_bytes(), 1u << 20);
}

TEST(CacheManagerTest, DroppedCachesRetireAtRebalance) {
  CacheManager manager;
  auto keep = manager.CreateCache("keep", 4096);
  {
    auto retire = manager.CreateCache("retire", 4096);
    EXPECT_EQ(manager.GetStats().caches, 2u);
  }
  manager.Rebalance();
  EXPECT_EQ(manager.GetStats().caches, 1u);
  EXPECT_EQ(keep->budget_bytes(), 4096u);
}

TEST(CacheManagerTest, GlobalSingletonResetForTest) {
  CacheManager& manager = CacheManager::Global();
  manager.ResetForTest();
  auto cache = manager.CreateCache("tmp", 4096);
  EXPECT_GE(manager.GetStats().caches, 1u);
  manager.ResetForTest();
  EXPECT_EQ(manager.GetStats().caches, 0u);
  EXPECT_EQ(manager.total_budget(), 0u);
  // The orphaned cache keeps serving with its last grant.
  cache->Insert(MakeKey(1, 1), MakeNeighbors(2, 0));
  std::vector<Neighbor> got;
  EXPECT_TRUE(cache->Lookup(MakeKey(1, 1), &got));
}

// Exercised under TSAN by the tier-1 cache leg: concurrent inserts,
// lookups, budget retargets, and clears on shared shards.
TEST(CacheConcurrencyTest, HammerMixedOperations) {
  ResultCache cache(Options(32 * 1024, 4));
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<uint64_t> observed_hits{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &observed_hits, t] {
      std::vector<Neighbor> got;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t fp = static_cast<uint64_t>((t * 7 + i) % 64);
        const CacheKey key = MakeKey(1, fp);
        if (i % 3 == 0) {
          cache.Insert(key, MakeNeighbors(4, fp));
        } else if (cache.Lookup(key, &got)) {
          observed_hits.fetch_add(1, std::memory_order_relaxed);
          // A hit must always carry the payload inserted under that
          // fingerprint, never a torn or foreign value.
          ASSERT_EQ(got.size(), 4u);
          ASSERT_EQ(got[0].index, fp);
        }
        if (t == 0 && i % 500 == 250) cache.SetBudget(16 * 1024);
        if (t == 1 && i % 900 == 450) cache.Clear();
      }
    });
  }
  for (auto& th : threads) th.join();

  const ResultCacheStats stats = cache.Stats();
  EXPECT_GT(stats.insertions, 0u);
  EXPECT_GE(stats.hits, observed_hits.load());
  EXPECT_LE(cache.bytes(), 32u * 1024u);
}

TEST(CacheConcurrencyTest, ConcurrentVersionsStayIsolated) {
  ResultCache cache(Options(256 * 1024, 4));
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  // Each thread works a distinct snapshot version; payload index encodes
  // the version so a cross-version hit would be detected immediately.
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      const uint64_t version = static_cast<uint64_t>(t + 1);
      std::vector<Neighbor> got;
      for (int i = 0; i < 1500; ++i) {
        const uint64_t fp = static_cast<uint64_t>(i % 32);
        const CacheKey key = MakeKey(version, fp);
        if (i % 2 == 0) {
          cache.Insert(key, MakeNeighbors(3, version * 1000));
        } else if (cache.Lookup(key, &got)) {
          ASSERT_EQ(got[0].index, version * 1000);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace cache
}  // namespace cohere
