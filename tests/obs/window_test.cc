// RollingWindow turns the registry's cumulative histograms/counters into
// "over the last N buckets" answers by subtracting boundary snapshots. The
// clock is injected, so every rotation scenario here is deterministic:
// bucket attribution, idle-gap clearing, boundary eviction, and window
// quantiles that must match hand-computed interpolation values.
#include "obs/window.h"

#include <array>
#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace cohere {
namespace {

// 3 buckets of 1000us: the window covers the current bucket plus two.
obs::RollingWindowOptions SmallWindow() {
  obs::RollingWindowOptions options;
  options.num_buckets = 3;
  options.bucket_width_us = 1000;
  return options;
}

TEST(RollingWindowTest, WindowCoversOnlyTheLastNBuckets) {
  obs::LatencyHistogram histogram("test.window.rotate");
  uint64_t now = 0;
  obs::RollingWindow window(&histogram, SmallWindow(),
                            [&now] { return now; });

  // Observations attribute to the bucket current at record time, so a
  // periodic tick (Advance) opens each bucket before recording into it.
  for (int i = 0; i < 5; ++i) histogram.Record(8.0);  // bucket 0
  now = 1000;
  window.Advance();
  for (int i = 0; i < 7; ++i) histogram.Record(8.0);  // bucket 1
  now = 2000;
  window.Advance();
  for (int i = 0; i < 9; ++i) histogram.Record(8.0);  // bucket 2

  // Window = buckets {0, 1, 2}: everything so far.
  EXPECT_EQ(window.WindowCount(), 21u);

  // Bucket 3: the five bucket-0 observations rotate out.
  now = 3000;
  EXPECT_EQ(window.WindowCount(), 16u);

  // Bucket 4: bucket 1's seven go too.
  now = 4000;
  EXPECT_EQ(window.WindowCount(), 9u);

  // Bucket 6: nothing recorded in {4, 5, 6}.
  now = 6000;
  EXPECT_EQ(window.WindowCount(), 0u);
}

TEST(RollingWindowTest, RotationIsDeterministicUnderAFakeClock) {
  // The same record/advance script against two independent windows must
  // produce identical per-step window counts — rotation depends only on
  // the injected clock, never on wall time.
  const std::array<uint64_t, 6> times = {0, 500, 1400, 2100, 2900, 5200};
  std::array<uint64_t, 6> counts_a{}, counts_b{};
  for (int run = 0; run < 2; ++run) {
    obs::LatencyHistogram histogram(run == 0 ? "test.window.det_a"
                                             : "test.window.det_b");
    uint64_t now = 0;
    obs::RollingWindow window(&histogram, SmallWindow(),
                              [&now] { return now; });
    auto& counts = run == 0 ? counts_a : counts_b;
    for (size_t step = 0; step < times.size(); ++step) {
      now = times[step];
      histogram.Record(static_cast<double>(step + 1));
      counts[step] = window.WindowCount();
    }
  }
  EXPECT_EQ(counts_a, counts_b);
}

TEST(RollingWindowTest, IdleGapDropsEveryRetainedBoundary) {
  obs::LatencyHistogram histogram("test.window.idle");
  uint64_t now = 0;
  obs::RollingWindow window(&histogram, SmallWindow(),
                            [&now] { return now; });

  for (int i = 0; i < 10; ++i) histogram.Record(4.0);
  now = 1000;
  window.Advance();
  now = 2000;
  window.Advance();
  ASSERT_GT(window.WindowCount(), 0u);
  ASSERT_GT(window.boundary_count(), 1u);

  // A gap of >= num_buckets buckets (3 * 1000us) skips the window
  // entirely: every retained boundary is stale, so rotation must clear
  // them all rather than walking the skipped buckets one by one.
  now = 2000 + 3 * 1000;
  EXPECT_EQ(window.WindowCount(), 0u);
  EXPECT_EQ(window.boundary_count(), 1u);

  // Observations recorded after the gap are visible again.
  histogram.Record(4.0);
  EXPECT_EQ(window.WindowCount(), 1u);
}

TEST(RollingWindowTest, StalledOrBackwardsClockKeepsTheCurrentBucket) {
  obs::LatencyHistogram histogram("test.window.stall");
  uint64_t now = 5000;
  obs::RollingWindow window(&histogram, SmallWindow(),
                            [&now] { return now; });
  ASSERT_EQ(window.current_bucket(), 5u);

  histogram.Record(2.0);
  now = 5999;  // same bucket
  EXPECT_EQ(window.current_bucket(), 5u);
  EXPECT_EQ(window.WindowCount(), 1u);

  now = 100;  // a clock step backwards must not rotate or lose anything
  EXPECT_EQ(window.current_bucket(), 5u);
  EXPECT_EQ(window.WindowCount(), 1u);
}

TEST(RollingWindowTest, WindowBinsEqualTheCumulativeDeltaAcrossTheWindow) {
  // The window is defined as Delta(snapshot at window start, snapshot now);
  // check that definition literally, bin by bin, against snapshots taken
  // by hand at the right moments.
  obs::LatencyHistogram histogram("test.window.delta");
  uint64_t now = 0;
  obs::RollingWindow window(&histogram, SmallWindow(),
                            [&now] { return now; });

  for (int i = 0; i < 4; ++i) histogram.Record(3.0);  // bucket 0
  now = 1000;
  window.Advance();
  // Everything before this snapshot is outside the window once the
  // current bucket is 3 (window = {1, 2, 3}).
  const obs::LatencyHistogram::Bins at_bucket1 = histogram.SnapshotBins();
  for (int i = 0; i < 6; ++i) histogram.Record(7.0);   // bucket 1
  now = 2000;
  window.Advance();
  for (int i = 0; i < 2; ++i) histogram.Record(90.0);  // bucket 2
  now = 3000;

  const obs::LatencyHistogram::Bins expected =
      obs::LatencyHistogram::Delta(at_bucket1, histogram.SnapshotBins());
  const obs::LatencyHistogram::Bins got = window.WindowBins();
  EXPECT_EQ(got.TotalCount(), 8u);
  for (size_t b = 0; b < obs::LatencyHistogram::kNumBins; ++b) {
    ASSERT_EQ(got.bins[b], expected.bins[b]) << "bin " << b;
  }
  EXPECT_DOUBLE_EQ(got.sum, expected.sum);
}

TEST(RollingWindowTest, WindowQuantilesMatchHandComputedValues) {
  // 90 observations at 8.0 land in the geometric bin [8, 10) (frexp
  // exponent 4, sub-bucket 0); 10 observations at 100.0 land in [96, 112)
  // (exponent 7, sub-bucket 2). The quantile estimator interpolates
  // linearly inside a bin, so over 100 observations:
  //   p50: rank 50 of 90 in [8, 10)  -> 8 + (50/90) * 2  = 9.111...
  //   p95: rank 95, 5th of 10 in [96, 112) -> 96 + 0.5 * 16 = 104
  //   p99: rank 99, 9th of 10       -> 96 + 0.9 * 16 = 110.4
  obs::LatencyHistogram histogram("test.window.quantiles");
  uint64_t now = 0;
  obs::RollingWindow window(&histogram, SmallWindow(),
                            [&now] { return now; });

  // Poison the pre-window past with huge values that must NOT contaminate
  // the windowed quantiles once they rotate out.
  for (int i = 0; i < 300; ++i) histogram.Record(1.0e6);
  now = 3000;  // >= num_buckets ahead: the poison is outside the window
  window.Advance();

  for (int i = 0; i < 90; ++i) histogram.Record(8.0);
  for (int i = 0; i < 10; ++i) histogram.Record(100.0);

  EXPECT_EQ(window.WindowCount(), 100u);
  EXPECT_NEAR(window.Quantile(0.5), 8.0 + (50.0 / 90.0) * 2.0, 1e-12);
  EXPECT_NEAR(window.Quantile(0.95), 104.0, 1e-12);
  EXPECT_NEAR(window.Quantile(0.99), 110.4, 1e-12);
  // The full cumulative histogram is dominated by the poison; the window
  // must not be.
  EXPECT_GT(histogram.Quantile(0.5), 1000.0);
}

TEST(RollingWindowTest, EmptyWindowQuantileIsNaN) {
  obs::LatencyHistogram histogram("test.window.empty");
  uint64_t now = 0;
  obs::RollingWindow window(&histogram, SmallWindow(),
                            [&now] { return now; });
  EXPECT_TRUE(std::isnan(window.Quantile(0.5)));
  EXPECT_EQ(window.WindowCount(), 0u);
}

TEST(RollingCounterWindowTest, CountsOnlyInWindowIncrements) {
  obs::Counter counter("test.window.counter");
  uint64_t now = 0;
  obs::RollingCounterWindow window(&counter, SmallWindow(),
                                   [&now] { return now; });

  counter.Increment(5);  // bucket 0
  now = 1000;
  window.Advance();
  counter.Increment(7);  // bucket 1
  now = 2000;
  EXPECT_EQ(window.WindowValue(), 12u);

  now = 3000;  // bucket 0's increments rotate out
  EXPECT_EQ(window.WindowValue(), 7u);
  now = 4000;
  EXPECT_EQ(window.WindowValue(), 0u);

  // Idle gap: increments before the gap never resurface.
  counter.Increment(3);
  now = 4000 + 5 * 1000;
  EXPECT_EQ(window.WindowValue(), 0u);
}

TEST(RollingCounterWindowTest, DegenerateOptionsAreClamped) {
  obs::Counter counter("test.window.degenerate");
  obs::RollingWindowOptions options;
  options.num_buckets = 0;   // clamped to 1
  options.bucket_width_us = 0;  // clamped to 1
  uint64_t now = 0;
  obs::RollingCounterWindow window(&counter, options,
                                   [&now] { return now; });
  counter.Increment(4);
  EXPECT_EQ(window.WindowValue(), 4u);
  now = 1;  // one (1us-wide) bucket later: the single-bucket window moved on
  EXPECT_EQ(window.WindowValue(), 0u);
}

}  // namespace
}  // namespace cohere
