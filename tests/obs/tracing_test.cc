#include "obs/tracing.h"

#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/engine.h"
#include "data/synthetic.h"

namespace cohere {
namespace obs {
namespace {

// The tracer is a process-wide singleton; every test Starts it with its own
// options (which resets all buffers) and Stops it on the way out so tests
// stay order-independent.

struct TracerGuard {
  explicit TracerGuard(const TracerOptions& options) {
    Tracer::Global().Start(options);
  }
  ~TracerGuard() { Tracer::Global().Stop(); }
};

const SpanRecord* FindByName(const std::vector<SpanRecord>& spans,
                             const char* name) {
  for (const SpanRecord& s : spans) {
    if (std::string(s.name) == name) return &s;
  }
  return nullptr;
}

TEST(TraceSpanTest, DisabledTracerCapturesNothing) {
  Tracer::Global().Stop();
  const uint64_t before = Tracer::Global().CapturedCount();
  {
    TraceSpan root("test.disabled.root");
    TraceSpan child("test.disabled.child");
    EXPECT_FALSE(root.recording());
    EXPECT_FALSE(child.recording());
  }
  EXPECT_EQ(Tracer::Global().CapturedCount(), before);
}

TEST(TraceSpanTest, NestedSpansLinkToTheirParents) {
  TracerGuard guard(TracerOptions{});
  {
    TraceSpan a("test.nest.a");
    {
      TraceSpan b("test.nest.b");
      TraceSpan c("test.nest.c");
      EXPECT_TRUE(c.recording());
    }
  }
  const std::vector<SpanRecord> spans = Tracer::Global().CapturedSpans();
  ASSERT_EQ(spans.size(), 3u);
  const SpanRecord* a = FindByName(spans, "test.nest.a");
  const SpanRecord* b = FindByName(spans, "test.nest.b");
  const SpanRecord* c = FindByName(spans, "test.nest.c");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(a->parent_id, 0u);
  EXPECT_EQ(b->parent_id, a->id);
  EXPECT_EQ(c->parent_id, b->id);
  EXPECT_NE(a->id, b->id);
  EXPECT_NE(b->id, c->id);
  // Children close first, so they precede their parents in capture order.
  EXPECT_GE(a->duration_us, 0.0);
  EXPECT_LE(b->start_us, c->start_us);
}

TEST(TraceSpanTest, ArgsAreCapturedUpToTheLimit) {
  TracerGuard guard(TracerOptions{});
  {
    TraceSpan span("test.args");
    span.AddArg("k", 7.0);
    span.AddArg("evals", 123.0);
    span.AddArg("overflow", 1.0);  // beyond kMaxSpanArgs: dropped
  }
  const std::vector<SpanRecord> spans = Tracer::Global().CapturedSpans();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].num_args, kMaxSpanArgs);
  EXPECT_STREQ(spans[0].args[0].key, "k");
  EXPECT_DOUBLE_EQ(spans[0].args[0].value, 7.0);
  EXPECT_STREQ(spans[0].args[1].key, "evals");
  EXPECT_DOUBLE_EQ(spans[0].args[1].value, 123.0);
}

TEST(TracerTest, RingOverflowDropsNewestAndCounts) {
  TracerOptions options;
  options.ring_capacity = 8;
  TracerGuard guard(options);
  for (int i = 0; i < 20; ++i) {
    TraceSpan span("test.overflow");
  }
  EXPECT_EQ(Tracer::Global().CapturedCount(), 8u);
  EXPECT_EQ(Tracer::Global().DroppedCount(), 12u);
  // Keep-oldest: the survivors are the first eight spans (ids 1..8), so
  // captured parents are never orphaned by later overflow.
  const std::vector<SpanRecord> spans = Tracer::Global().CapturedSpans();
  ASSERT_EQ(spans.size(), 8u);
  for (const SpanRecord& s : spans) EXPECT_LE(s.id, 8u);
}

TEST(TracerTest, SamplingIsDeterministicUnderAFixedSeed) {
  TracerOptions options;
  options.sample_probability = 0.5;
  options.sample_seed = 42;

  // Runs 200 root spans, each tagged with its sequence index, and returns
  // the set of indices that were captured.
  auto run = [&options]() {
    Tracer::Global().Start(options);
    for (int i = 0; i < 200; ++i) {
      TraceSpan span("test.sample");
      span.AddArg("i", static_cast<double>(i));
    }
    Tracer::Global().Stop();
    std::set<int> captured;
    for (const SpanRecord& s : Tracer::Global().CapturedSpans()) {
      EXPECT_EQ(s.num_args, 1u) << "sampled root lost its arg";
      if (s.num_args == 1) captured.insert(static_cast<int>(s.args[0].value));
    }
    return captured;
  };

  const std::set<int> first = run();
  // p = 0.5 over 200 trials: expect a two-sided but non-degenerate split.
  EXPECT_GT(first.size(), 50u);
  EXPECT_LT(first.size(), 150u);
  EXPECT_EQ(first, run());

  // A different seed flips at least one decision over 200 roots.
  options.sample_seed = 43;
  EXPECT_NE(first, run());
}

TEST(TracerTest, SampleProbabilityExtremes) {
  TracerOptions options;
  options.sample_probability = 0.0;
  {
    TracerGuard guard(options);
    for (int i = 0; i < 50; ++i) TraceSpan span("test.none");
    EXPECT_EQ(Tracer::Global().CapturedCount(), 0u);
  }
  options.sample_probability = 1.0;
  {
    TracerGuard guard(options);
    for (int i = 0; i < 50; ++i) TraceSpan span("test.all");
    EXPECT_EQ(Tracer::Global().CapturedCount(), 50u);
  }
}

TEST(TracerTest, SlowRootsAreLoggedRegardlessOfSampling) {
  TracerOptions options;
  options.sample_probability = 0.0;  // slow-query log only
  options.slow_query_us = 0.0;       // every root qualifies
  TracerGuard guard(options);
  {
    TraceSpan root("test.slow.root");
    TraceSpan child("test.slow.child");  // non-root: never in the slow log
  }
  EXPECT_EQ(Tracer::Global().CapturedCount(), 0u);
  EXPECT_EQ(Tracer::Global().SlowCount(), 1u);
  const std::vector<SpanRecord> slow = Tracer::Global().SlowQueries();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_STREQ(slow[0].name, "test.slow.root");
  EXPECT_TRUE(slow[0].slow);
  EXPECT_NE(slow[0].id, 0u);
}

TEST(TracerTest, SlowThresholdSeparatesFastFromSlow) {
  TracerOptions options;
  options.sample_probability = 0.0;
  options.slow_query_us = 1000.0;  // 1 ms
  TracerGuard guard(options);
  {
    TraceSpan fast("test.threshold.fast");
  }
  EXPECT_EQ(Tracer::Global().SlowCount(), 0u);
  {
    TraceSpan slow("test.threshold.slow");
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  EXPECT_EQ(Tracer::Global().SlowCount(), 1u);
  const std::vector<SpanRecord> slow = Tracer::Global().SlowQueries();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_STREQ(slow[0].name, "test.threshold.slow");
  EXPECT_GE(slow[0].duration_us, 1000.0);
}

TEST(TracerTest, EnableSlowQueryCaptureAdjustsARunningTracer) {
  TracerGuard guard(TracerOptions{});
  Tracer::Global().EnableSlowQueryCapture(0.0);
  EXPECT_DOUBLE_EQ(Tracer::Global().slow_query_threshold_us(), 0.0);
  {
    TraceSpan span("test.adjust");
  }
  EXPECT_EQ(Tracer::Global().SlowCount(), 1u);
  // Raising the threshold takes effect immediately.
  Tracer::Global().EnableSlowQueryCapture(1e12);
  {
    TraceSpan span("test.adjust2");
  }
  EXPECT_EQ(Tracer::Global().SlowCount(), 1u);
}

TEST(TracerTest, InternNameReturnsStablePointers) {
  const char* a = Tracer::InternName("test.intern.alpha");
  const char* b = Tracer::InternName("test.intern.alpha");
  const char* c = Tracer::InternName("test.intern.beta");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_STREQ(a, "test.intern.alpha");
  EXPECT_STREQ(c, "test.intern.beta");
}

TEST(TracerTest, ChromeTraceJsonExportsNestedSpans) {
  TracerGuard guard(TracerOptions{});
  {
    TraceSpan a("test.chrome.a");
    TraceSpan b("test.chrome.b");
  }
  const std::string json = Tracer::Global().ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("test.chrome.a"), std::string::npos);
  EXPECT_NE(json.find("test.chrome.b"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);

  const std::string path = ::testing::TempDir() + "cohere_trace_test.json";
  ASSERT_TRUE(Tracer::Global().WriteChromeTrace(path).ok());
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());

  EXPECT_FALSE(Tracer::Global()
                   .WriteChromeTrace("/nonexistent-dir/trace.json")
                   .ok());
}

TEST(TracerTest, EngineQueryProducesEngineToBackendSpanTree) {
  LatentFactorConfig config;
  config.num_records = 120;
  config.num_attributes = 24;
  config.num_concepts = 4;
  config.seed = 7;
  const Dataset data = GenerateLatentFactor(config);

  TracerGuard guard(TracerOptions{});
  EngineOptions options;
  options.backend = IndexBackend::kKdTree;
  Result<ReducedSearchEngine> engine = ReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(engine.ok());
  (void)engine->Query(data.Record(0), 3);

  const std::vector<SpanRecord> spans = Tracer::Global().CapturedSpans();
  const SpanRecord* query = FindByName(spans, "engine.query");
  const SpanRecord* project = FindByName(spans, "engine.project");
  const SpanRecord* backend = FindByName(spans, "index.kd_tree.query");
  const SpanRecord* build = FindByName(spans, "engine.build");
  const SpanRecord* fit = FindByName(spans, "pipeline.fit");
  ASSERT_NE(query, nullptr);
  ASSERT_NE(project, nullptr);
  ASSERT_NE(backend, nullptr);
  ASSERT_NE(build, nullptr);
  ASSERT_NE(fit, nullptr);
  EXPECT_EQ(query->parent_id, 0u);
  EXPECT_EQ(project->parent_id, query->id);
  EXPECT_EQ(backend->parent_id, query->id);
  EXPECT_EQ(fit->parent_id, build->id);
  // The backend span carries the query's k as an arg.
  ASSERT_GE(backend->num_args, 1u);
  EXPECT_STREQ(backend->args[0].key, "k");
  EXPECT_DOUBLE_EQ(backend->args[0].value, 3.0);
}

TEST(TracerTest, SlowQueryLogCapsAtCapacity) {
  TracerOptions options;
  options.sample_probability = 0.0;
  options.slow_query_us = 0.0;
  TracerGuard guard(options);
  const size_t n = Tracer::kSlowLogCapacity + 20;
  for (size_t i = 0; i < n; ++i) {
    TraceSpan span("test.slowcap");
  }
  EXPECT_EQ(Tracer::Global().SlowCount(), n);
  EXPECT_EQ(Tracer::Global().SlowQueries().size(), Tracer::kSlowLogCapacity);
}

// Exercised under TSAN by scripts/tier1.sh (--gtest_filter='*Concurrent*'):
// pool lanes emit nested spans while another lane snapshots the ring.
TEST(TracerTest, ConcurrentSpansFromPoolThreadsAreCapturedSafely) {
  TracerOptions options;
  options.ring_capacity = 1 << 12;
  TracerGuard guard(options);
  SetParallelThreadCount(4);
  constexpr size_t kItems = 600;
  ParallelFor(0, kItems, /*grain=*/16, [](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      TraceSpan root("test.concurrent.root");
      TraceSpan child("test.concurrent.child");
      if (i % 37 == 0) {
        // Readers may run concurrently with writers.
        (void)Tracer::Global().CapturedSpans();
        (void)Tracer::Global().ToChromeTraceJson();
      }
    }
  });
  SetParallelThreadCount(0);
  EXPECT_EQ(Tracer::Global().CapturedCount() + Tracer::Global().DroppedCount(),
            2 * kItems);
  // Every captured child names its parent, and the parent is in the ring
  // (keep-oldest drop policy).
  const std::vector<SpanRecord> spans = Tracer::Global().CapturedSpans();
  std::set<uint64_t> ids;
  for (const SpanRecord& s : spans) ids.insert(s.id);
  for (const SpanRecord& s : spans) {
    if (std::string(s.name) == "test.concurrent.child") {
      EXPECT_NE(s.parent_id, 0u);
    }
  }
}

TEST(TracerTest, EngineOptionsSlowThresholdFeedsTheSlowLog) {
  LatentFactorConfig config;
  config.num_records = 80;
  config.num_attributes = 16;
  config.seed = 11;
  const Dataset data = GenerateLatentFactor(config);

  Tracer::Global().Stop();
  EngineOptions options;
  options.backend = IndexBackend::kLinearScan;
  options.trace_slow_query_us = 0.001;  // everything is "slow"
  Result<ReducedSearchEngine> engine = ReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE(Tracer::Enabled());
  const uint64_t before = Tracer::Global().SlowCount();
  (void)engine->Query(data.Record(0), 2);
  EXPECT_GT(Tracer::Global().SlowCount(), before);
  const std::vector<SpanRecord> slow = Tracer::Global().SlowQueries();
  ASSERT_FALSE(slow.empty());
  EXPECT_STREQ(slow.back().name, "engine.query");
  Tracer::Global().Stop();
}

}  // namespace
}  // namespace obs
}  // namespace cohere
