#include "obs/metrics.h"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "common/fault.h"
#include "common/parallel.h"

namespace cohere {
namespace obs {
namespace {

// Registry metrics are process-lifetime, so every test uses names unique to
// itself (prefixed "test.") and resets them up front instead of assuming a
// clean slate.

TEST(CounterTest, IncrementsAndMerges) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter.basic");
  c->Reset();
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
  c->Reset();
  EXPECT_EQ(c->Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter.parallel");
  c->Reset();
  SetParallelThreadCount(4);
  constexpr size_t kItems = 100000;
  ParallelFor(0, kItems, /*grain=*/256, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) c->Increment();
  });
  SetParallelThreadCount(0);
  EXPECT_EQ(c->Value(), kItems);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge* g = MetricsRegistry::Global().GetGauge("test.gauge.basic");
  g->Set(3.5);
  EXPECT_DOUBLE_EQ(g->Value(), 3.5);
  g->Set(-1.0);
  EXPECT_DOUBLE_EQ(g->Value(), -1.0);
  g->Reset();
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
}

TEST(LatencyHistogramTest, BinBoundsArePartition) {
  // Every bin's upper bound is the next bin's lower bound; bounds increase.
  for (size_t b = 0; b + 1 < LatencyHistogram::kNumBins; ++b) {
    EXPECT_DOUBLE_EQ(LatencyHistogram::BinUpperBound(b),
                     LatencyHistogram::BinLowerBound(b + 1));
    EXPECT_LT(LatencyHistogram::BinLowerBound(b),
              LatencyHistogram::BinLowerBound(b + 1));
  }
  EXPECT_TRUE(std::isinf(
      LatencyHistogram::BinUpperBound(LatencyHistogram::kNumBins - 1)));
}

TEST(LatencyHistogramTest, BinForRespectsItsOwnBounds) {
  for (double v : {1e-4, 0.5, 1.0, 3.7, 100.0, 12345.6, 1e9}) {
    const size_t b = LatencyHistogram::BinFor(v);
    EXPECT_GE(v, LatencyHistogram::BinLowerBound(b)) << "v=" << v;
    EXPECT_LT(v, LatencyHistogram::BinUpperBound(b)) << "v=" << v;
  }
}

TEST(LatencyHistogramTest, NonFiniteRouting) {
  LatencyHistogram* h =
      MetricsRegistry::Global().GetHistogram("test.hist.nonfinite");
  h->Reset();
  h->Record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h->TotalCount(), 0u);
  EXPECT_EQ(h->NonFiniteCount(), 1u);

  h->Record(std::numeric_limits<double>::infinity());
  h->Record(-std::numeric_limits<double>::infinity());
  h->Record(-5.0);  // finite but <= 0: underflows into bin 0
  EXPECT_EQ(h->TotalCount(), 3u);
  // Infinities are binned but do not pollute the finite sum/max; the finite
  // -5 is still part of the sum, and Max only tracks the largest-so-far.
  EXPECT_DOUBLE_EQ(h->Sum(), -5.0);
  EXPECT_DOUBLE_EQ(h->Max(), 0.0);
}

TEST(LatencyHistogramTest, QuantilesTrackUniformData) {
  LatencyHistogram* h =
      MetricsRegistry::Global().GetHistogram("test.hist.quantiles");
  h->Reset();
  EXPECT_TRUE(std::isnan(h->Quantile(0.5)));
  for (int i = 1; i <= 1000; ++i) h->Record(static_cast<double>(i));
  // Log-scaled bins are ~19% wide, so allow that much relative slack.
  EXPECT_NEAR(h->Quantile(0.5), 500.0, 500.0 * 0.2);
  EXPECT_NEAR(h->Quantile(0.95), 950.0, 950.0 * 0.2);
  EXPECT_NEAR(h->Quantile(0.99), 990.0, 990.0 * 0.2);
  double prev = h->Quantile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double est = h->Quantile(q);
    EXPECT_GE(est, prev);
    prev = est;
  }
  EXPECT_DOUBLE_EQ(h->Max(), 1000.0);
  EXPECT_NEAR(h->Sum(), 500500.0, 1e-6);
}

TEST(LatencyHistogramTest, ConcurrentRecordsMergeExactly) {
  LatencyHistogram* h =
      MetricsRegistry::Global().GetHistogram("test.hist.parallel");
  h->Reset();
  SetParallelThreadCount(4);
  constexpr size_t kItems = 50000;
  ParallelFor(0, kItems, /*grain=*/128, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      h->Record(static_cast<double>(i % 100) + 1.0);
    }
  });
  SetParallelThreadCount(0);
  EXPECT_EQ(h->TotalCount(), kItems);
  EXPECT_DOUBLE_EQ(h->Max(), 100.0);
}

TEST(ScopedTimerTest, RecordsOnDestruction) {
  LatencyHistogram* h =
      MetricsRegistry::Global().GetHistogram("test.hist.scoped_timer");
  h->Reset();
  { ScopedTimer timer(h); }
  EXPECT_EQ(h->TotalCount(), 1u);
  { ScopedTimer disabled(nullptr); }  // must be a no-op
  EXPECT_EQ(h->TotalCount(), 1u);
}

TEST(MetricsRegistryTest, SameNameReturnsSamePointer) {
  Counter* a = MetricsRegistry::Global().GetCounter("test.registry.same");
  Counter* b = MetricsRegistry::Global().GetCounter("test.registry.same");
  EXPECT_EQ(a, b);
}

TEST(MetricsRegistryDeathTest, CrossTypeNameCollisionAborts) {
  MetricsRegistry::Global().GetCounter("test.registry.collision");
  EXPECT_DEATH(MetricsRegistry::Global().GetGauge("test.registry.collision"),
               "different type");
}

TEST(MetricsRegistryTest, SnapshotCarriesRegisteredMetrics) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* c = registry.GetCounter("test.snapshot.counter");
  Gauge* g = registry.GetGauge("test.snapshot.gauge");
  LatencyHistogram* h = registry.GetHistogram("test.snapshot.hist");
  c->Reset();
  h->Reset();
  c->Increment(7);
  g->Set(2.25);
  h->Record(10.0);

  const MetricsSnapshot snapshot = registry.Snapshot();
  bool saw_counter = false;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "test.snapshot.counter") {
      saw_counter = true;
      EXPECT_EQ(value, 7u);
    }
  }
  bool saw_gauge = false;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name == "test.snapshot.gauge") {
      saw_gauge = true;
      EXPECT_DOUBLE_EQ(value, 2.25);
    }
  }
  bool saw_hist = false;
  for (const HistogramSnapshot& hs : snapshot.histograms) {
    if (hs.name == "test.snapshot.hist") {
      saw_hist = true;
      EXPECT_EQ(hs.count, 1u);
      EXPECT_DOUBLE_EQ(hs.max, 10.0);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist);

  const std::string text = snapshot.ToText();
  EXPECT_NE(text.find("test.snapshot.counter"), std::string::npos);
  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"test.snapshot.counter\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistryTest, SnapshotIsNameSortedAndTimestamped) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  // Register in non-sorted order; the snapshot must come back sorted.
  registry.GetCounter("test.sort.zzz");
  registry.GetCounter("test.sort.aaa");
  registry.GetGauge("test.sort.g2");
  registry.GetGauge("test.sort.g1");
  registry.GetHistogram("test.sort.h2");
  registry.GetHistogram("test.sort.h1");

  const MetricsSnapshot first = registry.Snapshot();
  for (size_t i = 1; i < first.counters.size(); ++i) {
    EXPECT_LT(first.counters[i - 1].first, first.counters[i].first);
  }
  for (size_t i = 1; i < first.gauges.size(); ++i) {
    EXPECT_LT(first.gauges[i - 1].first, first.gauges[i].first);
  }
  for (size_t i = 1; i < first.histograms.size(); ++i) {
    EXPECT_LT(first.histograms[i - 1].name, first.histograms[i].name);
  }

  EXPECT_GT(first.monotonic_us, 0u);
  const MetricsSnapshot second = registry.Snapshot();
  EXPECT_GE(second.monotonic_us, first.monotonic_us);

  // Both renderings lead with the timestamp so exports self-describe when
  // they were cut.
  EXPECT_EQ(first.ToText().rfind("snapshot: monotonic_us=", 0), 0u);
  EXPECT_NE(first.ToJson().find("\"monotonic_us\""), std::string::npos);
}

TEST(MetricsRegistryTest, SnapshotSurfacesFaultTriggersAndTaskFailures) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  fault::DisarmAll();
  fault::ResetCounters();
  ResetParallelTaskFailureCount();

  // With the failure count at zero, the synthetic counter is absent — a
  // fault-free process snapshot is byte-identical to the pre-fault layout.
  {
    const MetricsSnapshot clean = registry.Snapshot();
    for (const auto& [name, value] : clean.counters) {
      EXPECT_NE(name, "parallel.task_failures");
    }
  }

  fault::Arm("test.metrics.point", 1.0);
  ASSERT_TRUE(fault::Point("test.metrics.point")->ShouldFire());
  ASSERT_TRUE(fault::Point("test.metrics.point")->ShouldFire());
  SetParallelThreadCount(2);
  EXPECT_THROW(ParallelFor(0, 64, 8,
                           [](size_t, size_t) {
                             throw std::runtime_error("fail");
                           }),
               std::runtime_error);
  SetParallelThreadCount(0);

  const MetricsSnapshot snapshot = registry.Snapshot();
  bool saw_triggers = false;
  bool saw_failures = false;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "fault.test.metrics.point.triggers") {
      saw_triggers = true;
      EXPECT_EQ(value, 2u);
    }
    if (name == "parallel.task_failures") {
      saw_failures = true;
      EXPECT_GT(value, 0u);
    }
  }
  EXPECT_TRUE(saw_triggers);
  EXPECT_TRUE(saw_failures);
  // The merged counter list stays sorted despite the synthetic entries.
  EXPECT_TRUE(std::is_sorted(
      snapshot.counters.begin(), snapshot.counters.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));

  // ResetAll clears the synthetic sources along with the registry.
  registry.ResetAll();
  EXPECT_EQ(fault::Point("test.metrics.point")->triggers(), 0u);
  EXPECT_EQ(ParallelTaskFailureCount(), 0u);
  fault::DisarmAll();
}

TEST(LatencyHistogramTest, BinsDeltaIsolatesTheInterval) {
  LatencyHistogram* h =
      MetricsRegistry::Global().GetHistogram("test.hist.delta");
  h->Reset();
  for (int i = 0; i < 100; ++i) h->Record(1.0);
  const LatencyHistogram::Bins before = h->SnapshotBins();
  EXPECT_EQ(before.TotalCount(), 100u);
  for (int i = 0; i < 100; ++i) h->Record(1000.0);
  const LatencyHistogram::Bins after = h->SnapshotBins();
  EXPECT_EQ(after.TotalCount(), 200u);

  const LatencyHistogram::Bins delta = LatencyHistogram::Delta(before, after);
  EXPECT_EQ(delta.TotalCount(), 100u);
  // Only the interval's observations (all 1000 µs) remain: the median sits
  // in the 1000 µs bin (~19% relative bin width), far from the 1 µs mass.
  EXPECT_GT(delta.Quantile(0.5), 800.0);
  EXPECT_LT(delta.Quantile(0.5), 1300.0);
  EXPECT_NEAR(delta.Mean(), 1000.0, 1.0);
  EXPECT_NEAR(delta.sum, 100000.0, 1.0);
  // The cumulative histogram still sees both populations.
  EXPECT_LT(h->Quantile(0.25), 2.0);

  // Delta against an identical snapshot is empty, and Quantile reports NaN.
  const LatencyHistogram::Bins empty = LatencyHistogram::Delta(after, after);
  EXPECT_EQ(empty.TotalCount(), 0u);
  EXPECT_TRUE(std::isnan(empty.Quantile(0.5)));
}

TEST(MetricsRegistryTest, SnapshotBucketsAreCumulativeAndEndAtCount) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  LatencyHistogram* h = registry.GetHistogram("test.buckets.hist");
  h->Reset();
  // Values chosen off the coarse power-of-four bucket grid so each lands
  // unambiguously inside one bucket: 0.5 <= 2^0, 8 <= 2^4, 100 <= 2^8.
  h->Record(0.5);
  h->Record(8.0);
  h->Record(100.0);
  h->Record(std::numeric_limits<double>::infinity());  // overflow bin

  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSnapshot* hs = nullptr;
  for (const HistogramSnapshot& candidate : snapshot.histograms) {
    if (candidate.name == "test.buckets.hist") hs = &candidate;
  }
  ASSERT_NE(hs, nullptr);
  ASSERT_FALSE(hs->buckets.empty());
  // Cumulative and closed: counts never decrease and the terminal bucket
  // is (+inf, count).
  for (size_t i = 1; i < hs->buckets.size(); ++i) {
    EXPECT_LT(hs->buckets[i - 1].first, hs->buckets[i].first);
    EXPECT_GE(hs->buckets[i].second, hs->buckets[i - 1].second);
  }
  EXPECT_TRUE(std::isinf(hs->buckets.back().first));
  EXPECT_EQ(hs->buckets.back().second, hs->count);
  // The bucket bounds are exact internal bin edges, so the cumulative
  // counts are exact, not interpolated.
  for (const auto& [bound, cumulative] : hs->buckets) {
    if (bound == 1.0) {
      EXPECT_EQ(cumulative, 1u);  // 0.5
    }
    if (bound == 16.0) {
      EXPECT_EQ(cumulative, 2u);  // + 8.0
    }
    if (bound == 256.0) {
      EXPECT_EQ(cumulative, 3u);  // + 100.0
    }
  }
}

TEST(MetricsRegistryTest, ToOpenMetricsRendersAScrapeableExposition) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* c = registry.GetCounter("test.openmetrics.counter");
  Gauge* g = registry.GetGauge("test.openmetrics.gauge");
  LatencyHistogram* h = registry.GetHistogram("test.openmetrics.hist");
  c->Reset();
  h->Reset();
  c->Increment(12);
  g->Set(-3.5);
  h->Record(9.0);

  const std::string om = registry.Snapshot().ToOpenMetrics();
  // Terminal marker, nothing after it.
  ASSERT_GE(om.size(), 6u);
  EXPECT_EQ(om.substr(om.size() - 6), "# EOF\n");
  // Names are prefixed and sanitized to the OpenMetrics charset (dots
  // become underscores), counters carry the mandated _total suffix.
  EXPECT_NE(om.find("# TYPE cohere_test_openmetrics_counter counter"),
            std::string::npos);
  EXPECT_NE(om.find("cohere_test_openmetrics_counter_total 12"),
            std::string::npos);
  EXPECT_NE(om.find("# TYPE cohere_test_openmetrics_gauge gauge"),
            std::string::npos);
  EXPECT_NE(om.find("cohere_test_openmetrics_gauge -3.5"), std::string::npos);
  // Histograms expose cumulative le-labelled buckets ending at +Inf, plus
  // _sum and _count.
  EXPECT_NE(om.find("# TYPE cohere_test_openmetrics_hist histogram"),
            std::string::npos);
  EXPECT_NE(om.find("cohere_test_openmetrics_hist_bucket{le=\"16\"} 1"),
            std::string::npos);
  EXPECT_NE(om.find("cohere_test_openmetrics_hist_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(om.find("cohere_test_openmetrics_hist_count 1"),
            std::string::npos);
  EXPECT_NE(om.find("cohere_test_openmetrics_hist_sum 9"), std::string::npos);
  // HELP lines keep the original dotted name as the description.
  EXPECT_NE(om.find("# HELP cohere_test_openmetrics_counter "
                    "test.openmetrics.counter"),
            std::string::npos);
  // No raw (unprefixed) names leak into the exposition.
  EXPECT_EQ(om.find("\ntest.openmetrics"), std::string::npos);
}

TEST(TraceHookTest, DeliversSpansWhileInstalled) {
  struct Capture {
    std::vector<std::string> names;
  } capture;
  ASSERT_FALSE(TraceHookInstalled());
  SetTraceHook(
      [](const TraceEvent& event, void* user_data) {
        static_cast<Capture*>(user_data)->names.emplace_back(event.name);
      },
      &capture);
  EXPECT_TRUE(TraceHookInstalled());
  { ScopedTrace span("test.span"); }
  SetTraceHook(nullptr, nullptr);
  EXPECT_FALSE(TraceHookInstalled());
  { ScopedTrace span("test.untraced"); }

  ASSERT_EQ(capture.names.size(), 1u);
  EXPECT_EQ(capture.names[0], "test.span");
}

}  // namespace
}  // namespace obs
}  // namespace cohere
