// The registry's per-backend work counters must agree *exactly* with the
// QueryStats out-params — they are published from the same per-query local
// in the KnnIndex::Query wrapper, and this suite pins that contract for all
// five backends, including the QueryBatch fan-out and the disabled switch.
#include "obs/query_metrics.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "index/kd_tree.h"
#include "index/knn.h"
#include "index/linear_scan.h"
#include "index/rstar_tree.h"
#include "index/va_file.h"
#include "index/vp_tree.h"
#include "obs/metrics.h"
#include "stats/rng.h"

namespace cohere {
namespace {

class ScopedThreadCount {
 public:
  explicit ScopedThreadCount(size_t n) { SetParallelThreadCount(n); }
  ~ScopedThreadCount() { SetParallelThreadCount(0); }
};

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m.At(i, j) = rng.Gaussian();
  }
  return m;
}

struct Backend {
  const char* name;
  std::unique_ptr<KnnIndex> (*make)(const Matrix&, const Metric*);
};

const Backend kBackends[] = {
    {"linear_scan",
     [](const Matrix& data, const Metric* metric) -> std::unique_ptr<KnnIndex> {
       return std::make_unique<LinearScanIndex>(data, metric);
     }},
    {"kd_tree",
     [](const Matrix& data, const Metric* metric) -> std::unique_ptr<KnnIndex> {
       return std::make_unique<KdTreeIndex>(data, metric, 16);
     }},
    {"va_file",
     [](const Matrix& data, const Metric* metric) -> std::unique_ptr<KnnIndex> {
       return std::make_unique<VaFileIndex>(data, metric, 5);
     }},
    {"vp_tree",
     [](const Matrix& data, const Metric* metric) -> std::unique_ptr<KnnIndex> {
       return std::make_unique<VpTreeIndex>(data, metric, 8);
     }},
    {"rstar_tree",
     [](const Matrix& data, const Metric* metric) -> std::unique_ptr<KnnIndex> {
       return std::make_unique<RStarTreeIndex>(data, metric, 16);
     }},
};

// Counter totals of one backend's "index.<name>" bundle.
struct BundleReading {
  uint64_t queries;
  uint64_t distance_evaluations;
  uint64_t nodes_visited;
  uint64_t candidates_refined;
  uint64_t latency_count;
};

BundleReading ReadBundle(const std::string& backend) {
  const obs::QueryPathMetrics& bundle =
      obs::QueryPathMetricsFor("index." + backend);
  BundleReading reading;
  reading.queries = bundle.queries->Value();
  reading.distance_evaluations = bundle.distance_evaluations->Value();
  reading.nodes_visited = bundle.nodes_visited->Value();
  reading.candidates_refined = bundle.candidates_refined->Value();
  reading.latency_count = bundle.query_latency_us->TotalCount();
  return reading;
}

TEST(QueryMetricsTest, BundleRegistersTheFiveScopeMetrics) {
  const obs::QueryPathMetrics& bundle =
      obs::QueryPathMetricsFor("test.bundle");
  ASSERT_NE(bundle.queries, nullptr);
  ASSERT_NE(bundle.distance_evaluations, nullptr);
  ASSERT_NE(bundle.nodes_visited, nullptr);
  ASSERT_NE(bundle.candidates_refined, nullptr);
  ASSERT_NE(bundle.query_latency_us, nullptr);
  // Same scope resolves to the same bundle (and thus the same counters).
  EXPECT_EQ(&bundle, &obs::QueryPathMetricsFor("test.bundle"));
  EXPECT_EQ(bundle.queries,
            obs::MetricsRegistry::Global().GetCounter("test.bundle.queries"));
}

TEST(QueryMetricsTest, CountersMatchQueryStatsExactlyOnEveryBackend) {
  const Matrix data = RandomMatrix(250, 7, 51);
  const Matrix queries = RandomMatrix(20, 7, 52);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  for (const Backend& backend : kBackends) {
    SCOPED_TRACE(backend.name);
    auto index = backend.make(data, metric.get());
    const BundleReading before = ReadBundle(backend.name);

    QueryStats stats;
    for (size_t i = 0; i < queries.rows(); ++i) {
      index->Query(queries.Row(i), 4, KnnIndex::kNoSkip, &stats);
    }

    const BundleReading after = ReadBundle(backend.name);
    EXPECT_EQ(after.queries - before.queries, queries.rows());
    EXPECT_EQ(after.latency_count - before.latency_count, queries.rows());
    EXPECT_EQ(after.distance_evaluations - before.distance_evaluations,
              stats.distance_evaluations);
    EXPECT_EQ(after.nodes_visited - before.nodes_visited,
              stats.nodes_visited);
    EXPECT_EQ(after.candidates_refined - before.candidates_refined,
              stats.candidates_refined);
  }
}

TEST(QueryMetricsTest, CountersAccumulateWithoutStatsOutParam) {
  // The registry must see the work counters even when the caller passes no
  // QueryStats — the wrapper always counts into its own local.
  const Matrix data = RandomMatrix(120, 5, 53);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  LinearScanIndex index(data, metric.get());

  const BundleReading before = ReadBundle("linear_scan");
  index.Query(data.Row(0), 3);
  const BundleReading after = ReadBundle("linear_scan");
  EXPECT_EQ(after.queries - before.queries, 1u);
  // A linear scan evaluates every record.
  EXPECT_EQ(after.distance_evaluations - before.distance_evaluations,
            data.rows());
}

TEST(QueryMetricsTest, QueryBatchPublishesTheSameTotals) {
  const Matrix data = RandomMatrix(200, 6, 54);
  const Matrix queries = RandomMatrix(30, 6, 55);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  for (const Backend& backend : kBackends) {
    SCOPED_TRACE(backend.name);
    auto index = backend.make(data, metric.get());
    for (size_t threads : {1u, 4u}) {
      SCOPED_TRACE(threads);
      ScopedThreadCount guard(threads);
      const BundleReading before = ReadBundle(backend.name);
      QueryStats merged;
      index->QueryBatch(queries, 3, &merged);
      const BundleReading after = ReadBundle(backend.name);
      EXPECT_EQ(after.queries - before.queries, queries.rows());
      EXPECT_EQ(after.latency_count - before.latency_count, queries.rows());
      EXPECT_EQ(after.distance_evaluations - before.distance_evaluations,
                merged.distance_evaluations);
      EXPECT_EQ(after.nodes_visited - before.nodes_visited,
                merged.nodes_visited);
      EXPECT_EQ(after.candidates_refined - before.candidates_refined,
                merged.candidates_refined);
    }
  }
}

TEST(QueryMetricsTest, ConcurrentBatchCountsRemainExact) {
  // The striped counters must not lose updates when pool workers publish
  // concurrently; QueryBatch over the 4-thread pool is the production
  // concurrent writer. (Runs under TSAN via the tier-1 script.)
  const Matrix data = RandomMatrix(150, 5, 56);
  const Matrix queries = RandomMatrix(64, 5, 57);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  LinearScanIndex index(data, metric.get());

  ScopedThreadCount guard(4);
  const BundleReading before = ReadBundle("linear_scan");
  index.QueryBatch(queries, 3);
  const BundleReading after = ReadBundle("linear_scan");
  EXPECT_EQ(after.queries - before.queries, queries.rows());
  // Every query scans every record.
  EXPECT_EQ(after.distance_evaluations - before.distance_evaluations,
            queries.rows() * data.rows());
}

TEST(QueryMetricsTest, TruncatedLatenciesLandInTheSeparateHistogram) {
  const obs::QueryPathMetrics& bundle =
      obs::QueryPathMetricsFor("test.truncsplit");
  ASSERT_NE(bundle.truncated_latency_us, nullptr);
  EXPECT_EQ(bundle.truncated_latency_us->name(),
            "test.truncsplit.query_latency_us.truncated");

  bundle.query_latency_us->Reset();
  bundle.truncated_latency_us->Reset();
  bundle.queries->Reset();

  bundle.Record(10, 2, 0, 5.0, /*truncated=*/false);
  bundle.Record(4, 1, 0, 7.0, /*truncated=*/true);

  // Both queries count as queries, and their work counters accumulate
  // identically — only the latency sample is routed by the truncated flag,
  // so a deadline storm's budget-capped latencies cannot deflate the main
  // histogram's tail.
  EXPECT_EQ(bundle.queries->Value(), 2u);
  EXPECT_EQ(bundle.query_latency_us->TotalCount(), 1u);
  EXPECT_DOUBLE_EQ(bundle.query_latency_us->Sum(), 5.0);
  EXPECT_EQ(bundle.truncated_latency_us->TotalCount(), 1u);
  EXPECT_DOUBLE_EQ(bundle.truncated_latency_us->Sum(), 7.0);
}

TEST(QueryMetricsTest, DisabledSwitchStopsPublishingButKeepsStats) {
  const Matrix data = RandomMatrix(100, 4, 58);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  LinearScanIndex index(data, metric.get());

  ASSERT_TRUE(obs::MetricsRegistry::Enabled());
  obs::MetricsRegistry::SetEnabled(false);
  const BundleReading before = ReadBundle("linear_scan");
  QueryStats stats;
  index.Query(data.Row(1), 3, KnnIndex::kNoSkip, &stats);
  const BundleReading after = ReadBundle("linear_scan");
  obs::MetricsRegistry::SetEnabled(true);

  EXPECT_EQ(after.queries, before.queries);
  EXPECT_EQ(after.distance_evaluations, before.distance_evaluations);
  EXPECT_EQ(after.latency_count, before.latency_count);
  // The caller's stats still work with instrumentation off.
  EXPECT_EQ(stats.distance_evaluations, data.rows());
}

}  // namespace
}  // namespace cohere
