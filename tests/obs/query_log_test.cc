// The query log's accounting invariant — offered == captured + dropped +
// sampled_out — must hold through ring overflow, sampling, and concurrent
// writers racing a draining reader (the Concurrent suite runs under TSAN in
// tier-1). The log is process-global, so every test Starts its own epoch
// and Stops on the way out.
#include "obs/query_log.h"

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cohere {
namespace {

obs::QueryLogOptions SmallRing(size_t capacity, double p = 1.0,
                               uint64_t seed = 0) {
  obs::QueryLogOptions options;
  options.ring_capacity = capacity;
  options.sample_probability = p;
  options.sample_seed = seed;
  return options;
}

obs::QueryEvent MakeEvent(uint64_t work) {
  obs::QueryEvent event;
  event.scope = "test";  // string literal: process lifetime, no intern needed
  event.k = 3;
  event.distance_evaluations = work;
  event.latency_us = static_cast<double>(work) * 0.5;
  return event;
}

// Stops and clears the global log even when a test fails mid-way.
class QueryLogFixture : public ::testing::Test {
 protected:
  ~QueryLogFixture() override {
    obs::QueryLog::Global().Stop();
    obs::QueryLog::Global().Clear();
  }
};

using QueryLogTest = QueryLogFixture;
using QueryLogConcurrentTest = QueryLogFixture;

TEST_F(QueryLogTest, DisabledByDefaultAndTogglesWithStartStop) {
  obs::QueryLog& log = obs::QueryLog::Global();
  EXPECT_FALSE(obs::QueryLog::Enabled());
  log.Start(SmallRing(8));
  EXPECT_TRUE(obs::QueryLog::Enabled());
  log.Stop();
  EXPECT_FALSE(obs::QueryLog::Enabled());
}

TEST_F(QueryLogTest, OverflowKeepsTheOldestAndCountsTheRest) {
  obs::QueryLog& log = obs::QueryLog::Global();
  log.Start(SmallRing(4));
  for (uint64_t i = 0; i < 10; ++i) log.Record(MakeEvent(i));

  EXPECT_EQ(log.OfferedCount(), 10u);
  EXPECT_EQ(log.CapturedCount(), 4u);
  EXPECT_EQ(log.DroppedCount(), 6u);
  EXPECT_EQ(log.SampledOutCount(), 0u);
  EXPECT_EQ(log.OfferedCount(),
            log.CapturedCount() + log.DroppedCount() + log.SampledOutCount());

  // Keep-oldest: the surviving prefix is the first four offers, in order.
  const std::vector<obs::QueryEvent> events = log.Events();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].sequence, i);
    EXPECT_EQ(events[i].distance_evaluations, i);
  }
}

TEST_F(QueryLogTest, StartResetsTheEpochAndTheRing) {
  obs::QueryLog& log = obs::QueryLog::Global();
  log.Start(SmallRing(4));
  for (uint64_t i = 0; i < 6; ++i) log.Record(MakeEvent(i));
  ASSERT_EQ(log.DroppedCount(), 2u);

  log.Start(SmallRing(4));
  EXPECT_EQ(log.OfferedCount(), 0u);
  EXPECT_EQ(log.CapturedCount(), 0u);
  EXPECT_EQ(log.DroppedCount(), 0u);
  EXPECT_TRUE(log.Events().empty());
}

TEST_F(QueryLogTest, SamplingDecisionsAreDeterministicUnderAFixedSeed) {
  obs::QueryLog& log = obs::QueryLog::Global();
  std::set<uint64_t> first_run;
  log.Start(SmallRing(256, 0.5, 42));
  for (uint64_t i = 0; i < 200; ++i) log.Record(MakeEvent(i));
  for (const obs::QueryEvent& e : log.Events()) first_run.insert(e.sequence);
  // p = 0.5 over 200 offers: some in, some out — never all or nothing.
  ASSERT_GT(first_run.size(), 0u);
  ASSERT_LT(first_run.size(), 200u);
  EXPECT_EQ(log.SampledOutCount(), 200u - first_run.size());

  // Same seed, same offers: the identical subset survives.
  log.Start(SmallRing(256, 0.5, 42));
  for (uint64_t i = 0; i < 200; ++i) log.Record(MakeEvent(i));
  std::set<uint64_t> second_run;
  for (const obs::QueryEvent& e : log.Events()) second_run.insert(e.sequence);
  EXPECT_EQ(first_run, second_run);

  // A different seed selects a different subset.
  log.Start(SmallRing(256, 0.5, 43));
  for (uint64_t i = 0; i < 200; ++i) log.Record(MakeEvent(i));
  std::set<uint64_t> other_seed;
  for (const obs::QueryEvent& e : log.Events()) other_seed.insert(e.sequence);
  EXPECT_NE(first_run, other_seed);
}

TEST_F(QueryLogTest, ProbabilityEndpointsAreExact) {
  obs::QueryLog& log = obs::QueryLog::Global();
  log.Start(SmallRing(64, 0.0));
  for (uint64_t i = 0; i < 32; ++i) log.Record(MakeEvent(i));
  EXPECT_EQ(log.CapturedCount(), 0u);
  EXPECT_EQ(log.SampledOutCount(), 32u);

  log.Start(SmallRing(64, 1.0));
  for (uint64_t i = 0; i < 32; ++i) log.Record(MakeEvent(i));
  EXPECT_EQ(log.CapturedCount(), 32u);
  EXPECT_EQ(log.SampledOutCount(), 0u);
}

TEST_F(QueryLogTest, RecordIsANoOpWhileStopped) {
  obs::QueryLog& log = obs::QueryLog::Global();
  log.Start(SmallRing(8));
  log.Stop();
  // The serving path gates on Enabled(); direct Record calls after Stop
  // still account (the switch is the caller's contract), so drive the gate
  // the way production does.
  if (obs::QueryLog::Enabled()) log.Record(MakeEvent(1));
  EXPECT_EQ(log.OfferedCount(), 0u);
  EXPECT_EQ(log.CapturedCount(), 0u);
}

TEST_F(QueryLogTest, ToJsonlEmitsOneStableLinePerEvent) {
  obs::QueryLog& log = obs::QueryLog::Global();
  log.Start(SmallRing(8));
  obs::QueryEvent event = MakeEvent(7);
  event.snapshot_version = 3;
  event.cache_hit = true;
  event.truncated = true;
  event.nodes_visited = 2;
  event.candidates_refined = 5;
  log.Record(event);
  log.Record(MakeEvent(1));

  const std::string jsonl = log.ToJsonl();
  // One '\n'-terminated object per event, no trailer.
  size_t lines = 0;
  for (char c : jsonl) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
  EXPECT_EQ(jsonl.back(), '\n');
  EXPECT_NE(jsonl.find("\"scope\": \"test\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"sequence\": 0"), std::string::npos);
  EXPECT_NE(jsonl.find("\"snapshot_version\": 3"), std::string::npos);
  EXPECT_NE(jsonl.find("\"cache_hit\": true"), std::string::npos);
  EXPECT_NE(jsonl.find("\"truncated\": true"), std::string::npos);
  EXPECT_NE(jsonl.find("\"distance_evaluations\": 7"), std::string::npos);
  EXPECT_NE(jsonl.find("\"candidates_refined\": 5"), std::string::npos);
  EXPECT_NE(jsonl.find("\"latency_us\": 3.500"), std::string::npos);
}

TEST_F(QueryLogTest, WriteJsonlReportsUnwritablePaths) {
  obs::QueryLog& log = obs::QueryLog::Global();
  log.Start(SmallRing(8));
  log.Record(MakeEvent(1));
  const Status status = log.WriteJsonl("/nonexistent-dir/query-log.jsonl");
  EXPECT_FALSE(status.ok());
}

TEST_F(QueryLogConcurrentTest, WritersRaceDrainingReader) {
  // Several writer threads hammer Record while a reader drains Events()
  // in a loop: no torn payloads (every drained event must be internally
  // consistent) and exact accounting afterwards. Runs under TSAN via
  // tier-1's obs '*Concurrent*' leg.
  obs::QueryLog& log = obs::QueryLog::Global();
  constexpr size_t kCapacity = 128;
  constexpr size_t kWriters = 4;
  constexpr uint64_t kPerWriter = 2000;
  log.Start(SmallRing(kCapacity));

  std::atomic<bool> stop_reader{false};
  std::atomic<uint64_t> torn{0};
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_acquire)) {
      for (const obs::QueryEvent& e : log.Events()) {
        // Writer invariant: latency is always work / 2 (see MakeEvent), so
        // any torn read shows up as a mismatched pair.
        if (e.latency_us != static_cast<double>(e.distance_evaluations) * 0.5) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&log] {
      for (uint64_t i = 0; i < kPerWriter; ++i) log.Record(MakeEvent(i));
    });
  }
  for (std::thread& t : writers) t.join();
  stop_reader.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(log.OfferedCount(), kWriters * kPerWriter);
  EXPECT_EQ(log.CapturedCount(), kCapacity);
  EXPECT_EQ(log.OfferedCount(),
            log.CapturedCount() + log.DroppedCount() + log.SampledOutCount());
  // Every captured slot is published by now; sequences are unique.
  const std::vector<obs::QueryEvent> events = log.Events();
  EXPECT_EQ(events.size(), kCapacity);
  std::set<uint64_t> sequences;
  for (const obs::QueryEvent& e : events) sequences.insert(e.sequence);
  EXPECT_EQ(sequences.size(), events.size());
}

}  // namespace
}  // namespace cohere
