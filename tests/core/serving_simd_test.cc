// Cross-dispatch-level golden tests: the serving stack must produce
// BITWISE-identical answers whichever SIMD kernel tier is active. The hash
// values are the very same pins tests/core/serving_test.cc carries for the
// pre-refactor scalar engines — if any level drifts by one distance bit or
// one neighbor, the FNV hash changes.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/dynamic_engine.h"
#include "core/engine.h"
#include "core/local_engine.h"
#include "data/synthetic.h"
#include "data/uci_like.h"
#include "simd/dispatch.h"

namespace cohere {
namespace {

constexpr uint64_t kFnvSeed = 1469598103934665603ULL;

uint64_t Fnv(uint64_t h, const void* data, size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t HashNeighbors(uint64_t h, const std::vector<Neighbor>& neighbors) {
  for (const Neighbor& n : neighbors) {
    const uint64_t index = n.index;
    uint64_t bits;
    std::memcpy(&bits, &n.distance, sizeof(bits));
    h = Fnv(h, &index, sizeof(index));
    h = Fnv(h, &bits, sizeof(bits));
  }
  return h;
}

std::vector<simd::Level> AvailableLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::DetectedLevel() >= simd::Level::kSse2) {
    levels.push_back(simd::Level::kSse2);
  }
  if (simd::DetectedLevel() >= simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  return levels;
}

// RAII level override so a failing assertion cannot leak a forced level
// into the other tests of this binary.
class ScopedLevel {
 public:
  explicit ScopedLevel(simd::Level level)
      : previous_(simd::ActiveLevel()) {
    simd::SetActiveLevelForTest(level);
  }
  ~ScopedLevel() { simd::SetActiveLevelForTest(previous_); }

 private:
  simd::Level previous_;
};

TEST(ServingSimdGoldenTest, StaticEnginesBitIdenticalAtEveryLevel) {
  Dataset data = IonosphereLike(152);
  const IndexBackend backends[] = {
      IndexBackend::kLinearScan, IndexBackend::kKdTree, IndexBackend::kVaFile,
      IndexBackend::kVpTree, IndexBackend::kRStarTree,
  };
  for (simd::Level level : AvailableLevels()) {
    ScopedLevel scoped(level);
    for (IndexBackend backend : backends) {
      EngineOptions options;
      options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
      options.reduction.target_dim = 8;
      options.backend = backend;
      Result<ReducedSearchEngine> engine =
          ReducedSearchEngine::Build(data, options);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      uint64_t h = kFnvSeed;
      for (size_t q = 0; q < 20; ++q) {
        const Vector query = data.Record(q * 17 % data.NumRecords());
        h = HashNeighbors(h, engine->Query(query, 4));
      }
      // Same pin as ServingGoldenTest.StaticEnginesMatchPreRefactorResults.
      EXPECT_EQ(h, 0x5fc625f230dd3617ULL)
          << IndexBackendName(backend) << " at " << simd::LevelName(level);
    }
  }
}

TEST(ServingSimdGoldenTest, LocalEngineBitIdenticalAtEveryLevel) {
  MultiPopulationConfig config;
  LatentFactorConfig pop;
  pop.num_records = 180;
  pop.num_attributes = 40;
  pop.num_concepts = 6;
  pop.num_classes = 4;
  pop.class_separation = 1.0;
  pop.noise_stddev = 0.4;
  pop.seed = 411;
  config.populations.push_back(pop);
  pop.seed = 511;
  config.populations.push_back(pop);
  config.center_separation = 2.0;
  config.seed = 412;
  Dataset data = GenerateMultiPopulation(config);

  LocalEngineOptions options;
  options.num_clusters = 3;
  options.cluster_subspace_dim = 10;
  options.reduction.scaling = PcaScaling::kCorrelation;
  options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
  options.reduction.target_dim = 6;
  options.probe_clusters = 3;

  // Same pin as ServingGoldenTest.LocalEngineMatchesPreRefactorResults
  // (probes=3 case).
  for (simd::Level level : AvailableLevels()) {
    ScopedLevel scoped(level);
    Result<LocalReducedSearchEngine> engine =
        LocalReducedSearchEngine::Build(data, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    uint64_t h = kFnvSeed;
    for (size_t q = 0; q < 15; ++q) {
      h = HashNeighbors(
          h, engine->Query(data.Record(q * 11 % data.NumRecords()), 5));
    }
    EXPECT_EQ(h, 0x3513a7c9bc68e92bULL) << simd::LevelName(level);
  }
}

TEST(ServingSimdGoldenTest, QueryBatchBitIdenticalAcrossLevels) {
  // The LinearScan batch override (multi-query kernel) must agree with the
  // serial Query path entry for entry, bit for bit, at every level.
  Dataset data = IonosphereLike(273);
  EngineOptions options;
  options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
  options.reduction.target_dim = 8;
  options.backend = IndexBackend::kLinearScan;
  const size_t n_queries = 23;
  Matrix queries(n_queries, data.NumAttributes());
  for (size_t i = 0; i < n_queries; ++i) {
    queries.SetRow(i, data.Record(i * 7 % data.NumRecords()));
  }
  uint64_t serial_hash = 0;
  for (simd::Level level : AvailableLevels()) {
    ScopedLevel scoped(level);
    Result<ReducedSearchEngine> engine =
        ReducedSearchEngine::Build(data, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    uint64_t h_serial = kFnvSeed;
    for (size_t i = 0; i < n_queries; ++i) {
      h_serial = HashNeighbors(h_serial, engine->Query(queries.Row(i), 5));
    }
    uint64_t h_batch = kFnvSeed;
    for (const auto& result : engine->QueryBatch(queries, 5)) {
      h_batch = HashNeighbors(h_batch, result);
    }
    EXPECT_EQ(h_batch, h_serial) << simd::LevelName(level);
    if (level == simd::Level::kScalar) {
      serial_hash = h_serial;
    } else {
      EXPECT_EQ(h_serial, serial_hash)
          << simd::LevelName(level) << " drifted from scalar";
    }
  }
}

TEST(ServingSimdTest, FastMathAgreesOnNeighborSets) {
  // fast_math reassociates pair sums, so distances may differ in the last
  // bits — but on this well-separated data the neighbor sets must match.
  Dataset data = IonosphereLike(331);
  EngineOptions exact;
  exact.reduction.strategy = SelectionStrategy::kCoherenceOrder;
  exact.reduction.target_dim = 8;
  exact.backend = IndexBackend::kKdTree;
  EngineOptions fast = exact;
  fast.fast_math = true;
  Result<ReducedSearchEngine> exact_engine =
      ReducedSearchEngine::Build(data, exact);
  Result<ReducedSearchEngine> fast_engine =
      ReducedSearchEngine::Build(data, fast);
  ASSERT_TRUE(exact_engine.ok());
  ASSERT_TRUE(fast_engine.ok());
  for (size_t q = 0; q < 10; ++q) {
    const Vector query = data.Record(q * 19 % data.NumRecords());
    const auto want = exact_engine->Query(query, 4);
    const auto got = fast_engine->Query(query, 4);
    ASSERT_EQ(got.size(), want.size());
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(got[j].index, want[j].index) << "q=" << q << " slot " << j;
      EXPECT_NEAR(got[j].distance, want[j].distance,
                  1e-9 * (1.0 + want[j].distance));
    }
  }
}

}  // namespace
}  // namespace cohere
