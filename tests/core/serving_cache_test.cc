// Serving-level cache behavior: bit-identity with the cache off and on the
// miss path, hit/miss accounting against QueryStats, snapshot-version
// invalidation across COW publishes, and correctness under eviction
// pressure. The ServingCacheConcurrencyTest suite at the bottom is part of
// the tier-1 TSAN leg.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "cache/cache_manager.h"
#include "cache/query_cache.h"
#include "common/fault.h"
#include "core/dynamic_engine.h"
#include "core/engine.h"
#include "core/local_engine.h"
#include "core/serving.h"
#include "data/synthetic.h"
#include "data/uci_like.h"
#include "index/knn.h"
#include "obs/metrics.h"

namespace cohere {
namespace {

constexpr uint64_t kFnvSeed = 1469598103934665603ULL;

uint64_t Fnv(uint64_t h, const void* data, size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t HashNeighbors(uint64_t h, const std::vector<Neighbor>& neighbors) {
  for (const Neighbor& n : neighbors) {
    const uint64_t index = n.index;
    uint64_t bits;
    std::memcpy(&bits, &n.distance, sizeof(bits));
    h = Fnv(h, &index, sizeof(index));
    h = Fnv(h, &bits, sizeof(bits));
  }
  return h;
}

void ExpectSameNeighbors(const std::vector<Neighbor>& got,
                         const std::vector<Neighbor>& want, size_t tag) {
  ASSERT_EQ(got.size(), want.size()) << "query " << tag;
  for (size_t j = 0; j < got.size(); ++j) {
    EXPECT_EQ(got[j].index, want[j].index) << "query " << tag << " slot " << j;
    EXPECT_EQ(got[j].distance, want[j].distance)
        << "query " << tag << " slot " << j;
  }
}

EngineOptions StaticOptions(size_t cache_budget) {
  EngineOptions options;
  options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
  options.reduction.target_dim = 8;
  options.cache_budget_bytes = cache_budget;
  return options;
}

Dataset DynamicData() {
  LatentFactorConfig config;
  config.num_records = 300;
  config.num_attributes = 30;
  config.num_concepts = 5;
  config.num_classes = 2;
  config.noise_stddev = 0.5;
  config.seed = 701;
  return GenerateLatentFactor(config);
}

DynamicEngineOptions DynamicOptions(size_t cache_budget) {
  DynamicEngineOptions options;
  options.reduction.scaling = PcaScaling::kCorrelation;
  options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
  options.reduction.target_dim = 5;
  options.drift_window = 40;
  options.cache_budget_bytes = cache_budget;
  return options;
}

Dataset MixedPopulations(uint64_t seed) {
  MultiPopulationConfig config;
  LatentFactorConfig pop;
  pop.num_records = 180;
  pop.num_attributes = 40;
  pop.num_concepts = 6;
  pop.num_classes = 4;
  pop.class_separation = 1.0;
  pop.noise_stddev = 0.4;
  pop.seed = seed;
  config.populations.push_back(pop);
  pop.seed = seed + 100;
  config.populations.push_back(pop);
  config.center_separation = 2.0;
  config.seed = seed + 1;
  return GenerateMultiPopulation(config);
}

LocalEngineOptions LocalOptions(size_t probes, size_t cache_budget) {
  LocalEngineOptions options;
  options.num_clusters = 3;
  options.cluster_subspace_dim = 10;
  options.reduction.scaling = PcaScaling::kCorrelation;
  options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
  options.reduction.target_dim = 6;
  options.probe_clusters = probes;
  options.cache_budget_bytes = cache_budget;
  return options;
}

// The recipe (and pinned hash) from ServingGoldenTest: with a cache
// attached, the first pass is all misses — results must still be
// bit-identical to the cache-free engine — and the second pass is all hits,
// which must replay exactly the same bits.
TEST(ServingCacheGoldenTest, MissAndHitPassesMatchThePinnedHash) {
  Dataset data = IonosphereLike(152);
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, StaticOptions(1 << 20));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_NE(engine->serving().result_cache(), nullptr);

  for (int pass = 0; pass < 2; ++pass) {
    uint64_t h = kFnvSeed;
    for (size_t q = 0; q < 20; ++q) {
      const Vector query = data.Record(q * 17 % data.NumRecords());
      h = HashNeighbors(h, engine->Query(query, 4));
    }
    EXPECT_EQ(h, 0x5fc625f230dd3617ULL) << "pass " << pass;
  }
  const cache::ResultCacheStats stats =
      engine->serving().result_cache()->Stats();
  EXPECT_EQ(stats.misses, 20u);
  EXPECT_EQ(stats.hits, 20u);
  // 20 result lists plus 20 projected query vectors.
  EXPECT_EQ(stats.insertions, 40u);
}

TEST(ServingCacheTest, BudgetZeroBuildsNoCache) {
  Dataset data = IonosphereLike(152);
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, StaticOptions(0));
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->serving().result_cache(), nullptr);
}

TEST(ServingCacheTest, HitDoesNoIndexWorkAndCountersAgreeWithQueryStats) {
  Dataset data = IonosphereLike(251);
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, StaticOptions(1 << 20));
  ASSERT_TRUE(engine.ok());
  const Vector query = data.Record(7);

  // Registry counters are process-cumulative; compare deltas.
  const bool metrics_on = obs::MetricsRegistry::Enabled();
  const uint64_t hits_before =
      metrics_on
          ? obs::MetricsRegistry::Global().GetCounter("cache.hits")->Value()
          : 0;

  QueryStats miss_stats;
  const auto first = engine->Query(query, 5, KnnIndex::kNoSkip, &miss_stats);
  EXPECT_GT(miss_stats.distance_evaluations, 0u);

  QueryStats hit_stats;
  const auto second = engine->Query(query, 5, KnnIndex::kNoSkip, &hit_stats);
  ExpectSameNeighbors(second, first, 0);
  // A cache hit bypasses the index entirely, so the caller-visible
  // QueryStats must stay at zero work (consistent with the metrics path,
  // which records a zero-work sample for hits).
  EXPECT_EQ(hit_stats.distance_evaluations, 0u);
  EXPECT_EQ(hit_stats.nodes_visited, 0u);
  EXPECT_FALSE(hit_stats.truncated);

  const cache::ResultCacheStats stats =
      engine->serving().result_cache()->Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  if (metrics_on) {
    EXPECT_EQ(
        obs::MetricsRegistry::Global().GetCounter("cache.hits")->Value(),
        hits_before + 1);
  }
}

TEST(ServingCacheTest, SkipIndexQueriesBypassTheCacheEntirely) {
  Dataset data = IonosphereLike(311);
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, StaticOptions(1 << 20));
  ASSERT_TRUE(engine.ok());
  const Vector query = data.Record(11);

  // Warm the cache with the unrestricted answer.
  const auto full = engine->Query(query, 5);
  ASSERT_FALSE(full.empty());
  const size_t nearest = full[0].index;

  // A leave-one-out query must not be served the cached full answer.
  const auto skipped = engine->Query(query, 5, nearest);
  for (const Neighbor& n : skipped) {
    EXPECT_NE(n.index, nearest);
  }
  // And it must not have polluted the cache either: the full answer is
  // still what a plain repeat gets.
  ExpectSameNeighbors(engine->Query(query, 5), full, 1);
  // Only the warm query inserted (one result list + its projection); the
  // skip_index queries wrote nothing.
  EXPECT_EQ(engine->serving().result_cache()->Stats().insertions, 2u);
}

TEST(ServingCacheTest, CancelledQueriesAreNeverCached) {
  Dataset data = IonosphereLike(333);
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, StaticOptions(1 << 20));
  ASSERT_TRUE(engine.ok());
  const Vector query = data.Record(3);

  CancelToken cancel;
  cancel.Cancel();
  QueryLimits limits;
  limits.cancel = &cancel;
  QueryStats stats;
  const auto truncated = engine->Query(query, 5, KnnIndex::kNoSkip, &stats,
                                       limits);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(engine->serving().result_cache()->Stats().insertions, 0u);

  // The partial answer must not poison later full queries.
  Result<ReducedSearchEngine> reference =
      ReducedSearchEngine::Build(data, StaticOptions(0));
  ASSERT_TRUE(reference.ok());
  ExpectSameNeighbors(engine->Query(query, 5), reference->Query(query, 5), 2);
}

TEST(ServingCacheTest, CowPublishInvalidatesCachedResults) {
  Dataset data = DynamicData();
  auto [fit_part, insert_part] = data.Split(250);
  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(fit_part, DynamicOptions(1 << 20));
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  const uint64_t version_before = index->SnapshotVersion();

  // Warm the cache for this query at the current version.
  const Vector query = data.Record(260);
  const auto before = index->Query(query, 3);
  ExpectSameNeighbors(index->Query(query, 3), before, 0);
  ASSERT_GT(index->serving().result_cache()->Stats().hits, 0u);

  // Insert the query point itself: the COW publish bumps the snapshot
  // version, so the stale cached answer (which cannot contain the new
  // record) must be unreachable.
  ASSERT_TRUE(index->Insert(query).ok());
  EXPECT_GT(index->SnapshotVersion(), version_before);
  const auto after = index->Query(query, 3);
  ASSERT_FALSE(after.empty());
  EXPECT_EQ(after[0].distance, 0.0)
      << "stale pre-publish result served from the cache";
}

TEST(ServingCacheTest, BatchRepeatsHitAndMatchSerialResults) {
  Dataset data = IonosphereLike(277);
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, StaticOptions(1 << 20));
  ASSERT_TRUE(engine.ok());

  Matrix queries(12, data.NumAttributes());
  for (size_t i = 0; i < queries.rows(); ++i) {
    const Vector record = data.Record(i * 13 % data.NumRecords());
    for (size_t d = 0; d < data.NumAttributes(); ++d) {
      queries.At(i, d) = record[d];
    }
  }

  const auto first = engine->QueryBatch(queries, 4);
  const cache::ResultCacheStats after_first =
      engine->serving().result_cache()->Stats();
  EXPECT_EQ(after_first.hits, 0u);
  EXPECT_GT(after_first.insertions, 0u);

  const auto second = engine->QueryBatch(queries, 4);
  ASSERT_EQ(second.size(), first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ExpectSameNeighbors(second[i], first[i], i);
    ExpectSameNeighbors(engine->Query(queries.Row(i), 4), first[i], i);
  }
  EXPECT_GT(engine->serving().result_cache()->Stats().hits, 0u);
}

TEST(ServingCacheTest, LocalEngineMultiProbePathServesCachedResults) {
  Dataset data = MixedPopulations(411);
  Result<LocalReducedSearchEngine> cached =
      LocalReducedSearchEngine::Build(data, LocalOptions(2, 1 << 20));
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  Result<LocalReducedSearchEngine> plain =
      LocalReducedSearchEngine::Build(data, LocalOptions(2, 0));
  ASSERT_TRUE(plain.ok());

  // Serial repeats through the multi-shard (probe fan-out) path.
  for (size_t q = 0; q < 8; ++q) {
    const Vector query = data.Record(q * 11 % data.NumRecords());
    const auto want = plain->Query(query, 5);
    ExpectSameNeighbors(cached->Query(query, 5), want, q);  // miss pass
    ExpectSameNeighbors(cached->Query(query, 5), want, q);  // hit pass
  }
  EXPECT_GE(cached->serving().result_cache()->Stats().hits, 8u);

  // Batched repeats (row-level caching inside the batch fan-out).
  Matrix queries(8, data.NumAttributes());
  for (size_t i = 0; i < queries.rows(); ++i) {
    const Vector record = data.Record((i * 11 + 3) % data.NumRecords());
    for (size_t d = 0; d < data.NumAttributes(); ++d) {
      queries.At(i, d) = record[d];
    }
  }
  const auto first = cached->QueryBatch(queries, 5);
  const auto second = cached->QueryBatch(queries, 5);
  const auto reference = plain->QueryBatch(queries, 5);
  for (size_t i = 0; i < queries.rows(); ++i) {
    ExpectSameNeighbors(first[i], reference[i], i);
    ExpectSameNeighbors(second[i], reference[i], i);
  }
}

TEST(ServingCacheTest, TinyBudgetEvictsButNeverCorruptsResults) {
  Dataset data = IonosphereLike(199);
  // A budget this small can only hold a handful of result lists, so steady
  // misses force constant eviction/rejection.
  Result<ReducedSearchEngine> cached =
      ReducedSearchEngine::Build(data, StaticOptions(2048));
  ASSERT_TRUE(cached.ok());
  Result<ReducedSearchEngine> plain =
      ReducedSearchEngine::Build(data, StaticOptions(0));
  ASSERT_TRUE(plain.ok());

  for (size_t q = 0; q < 60; ++q) {
    const Vector query = data.Record(q % data.NumRecords());
    ExpectSameNeighbors(cached->Query(query, 4), plain->Query(query, 4), q);
  }
  const cache::ResultCacheStats stats =
      cached->serving().result_cache()->Stats();
  EXPECT_LE(stats.bytes, 2048u);
  EXPECT_GT(stats.evictions + stats.rejected, 0u);
}

TEST(ServingCacheTest, InsertPressureFaultDegradesToColdButCorrect) {
  fault::DisarmAll();
  Dataset data = IonosphereLike(421);
  Result<ReducedSearchEngine> cached =
      ReducedSearchEngine::Build(data, StaticOptions(1 << 20));
  ASSERT_TRUE(cached.ok());
  Result<ReducedSearchEngine> plain =
      ReducedSearchEngine::Build(data, StaticOptions(0));
  ASSERT_TRUE(plain.ok());

  fault::Arm(fault::kPointCacheInsertPressure, 1.0);
  const Vector query = data.Record(5);
  const auto want = plain->Query(query, 4);
  ExpectSameNeighbors(cached->Query(query, 4), want, 0);
  ExpectSameNeighbors(cached->Query(query, 4), want, 1);
  const cache::ResultCacheStats under_pressure =
      cached->serving().result_cache()->Stats();
  EXPECT_EQ(under_pressure.insertions, 0u);
  EXPECT_EQ(under_pressure.hits, 0u);
  EXPECT_GT(under_pressure.rejected, 0u);

  fault::DisarmAll();
  ExpectSameNeighbors(cached->Query(query, 4), want, 2);  // inserts now
  ExpectSameNeighbors(cached->Query(query, 4), want, 3);  // and hits
  EXPECT_GT(cached->serving().result_cache()->Stats().hits, 0u);
}

// Tier-1 runs this under TSAN: concurrent readers racing COW publishes,
// with the version-keyed cache in the middle. The end-state assertion is
// the stale-result check — after every publish has landed, a query for an
// inserted record must see it (a stale cached answer could not).
TEST(ServingCacheConcurrencyTest, ReadersRacePublishesWithoutStaleResults) {
  Dataset data = DynamicData();
  auto [fit_part, insert_part] = data.Split(250);
  Result<DynamicReducedIndex> built =
      DynamicReducedIndex::Build(fit_part, DynamicOptions(1 << 20));
  ASSERT_TRUE(built.ok());
  DynamicReducedIndex& index = *built;

  constexpr size_t kReaders = 4;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&index, &data, &stop, t] {
      size_t q = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto result =
            index.Query(data.Record(q % 250), 4);
        // Results must always be well-formed: sorted ascending, no
        // torn/foreign payloads regardless of which snapshot served them.
        for (size_t j = 1; j < result.size(); ++j) {
          ASSERT_LE(result[j - 1].distance, result[j].distance);
        }
        q += 7;
      }
    });
  }

  for (size_t i = 0; i < insert_part.NumRecords(); ++i) {
    ASSERT_TRUE(index.Insert(insert_part.Record(i)).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  for (size_t i = 0; i < insert_part.NumRecords(); ++i) {
    const auto result = index.Query(insert_part.Record(i), 1);
    ASSERT_FALSE(result.empty());
    EXPECT_EQ(result[0].distance, 0.0) << "inserted record " << i;
  }
}

}  // namespace
}  // namespace cohere
