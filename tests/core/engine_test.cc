#include "core/engine.h"

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "data/uci_like.h"
#include "index/linear_scan.h"

namespace cohere {
namespace {

EngineOptions BasicOptions(IndexBackend backend) {
  EngineOptions options;
  options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
  options.reduction.target_dim = 8;
  options.backend = backend;
  return options;
}

TEST(EngineTest, BuildsAndQueries) {
  Dataset data = IonosphereLike(151);
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, BasicOptions(IndexBackend::kKdTree));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->ReducedDims(), 8u);
  const auto neighbors = engine->Query(data.Record(0), 5);
  ASSERT_EQ(neighbors.size(), 5u);
  // The query point itself is indexed, so the nearest hit is itself at
  // distance ~0.
  EXPECT_EQ(neighbors[0].index, 0u);
  EXPECT_NEAR(neighbors[0].distance, 0.0, 1e-9);
}

TEST(EngineTest, AllBackendsAgree) {
  Dataset data = IonosphereLike(152);
  Result<ReducedSearchEngine> scan =
      ReducedSearchEngine::Build(data, BasicOptions(IndexBackend::kLinearScan));
  Result<ReducedSearchEngine> tree =
      ReducedSearchEngine::Build(data, BasicOptions(IndexBackend::kKdTree));
  Result<ReducedSearchEngine> va =
      ReducedSearchEngine::Build(data, BasicOptions(IndexBackend::kVaFile));
  Result<ReducedSearchEngine> vp =
      ReducedSearchEngine::Build(data, BasicOptions(IndexBackend::kVpTree));
  Result<ReducedSearchEngine> rstar = ReducedSearchEngine::Build(
      data, BasicOptions(IndexBackend::kRStarTree));
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(vp.ok());
  ASSERT_TRUE(rstar.ok());
  for (size_t q = 0; q < 20; ++q) {
    const Vector query = data.Record(q * 17 % data.NumRecords());
    const auto expected = scan->Query(query, 4);
    EXPECT_EQ(tree->Query(query, 4), expected);
    EXPECT_EQ(va->Query(query, 4), expected);
    EXPECT_EQ(rstar->Query(query, 4), expected);
    for (size_t i = 0; i < expected.size(); ++i) {
      // The vp-tree computes true distances directly (no comparable-form
      // round trip), so allow for last-ulp differences.
      const auto vp_result = vp->Query(query, 4);
      ASSERT_EQ(vp_result.size(), expected.size());
      EXPECT_EQ(vp_result[i].index, expected[i].index);
      EXPECT_NEAR(vp_result[i].distance, expected[i].distance, 1e-10);
    }
  }
}

TEST(EngineTest, SkipIndexSupportsLeaveOneOut) {
  Dataset data = IonosphereLike(153);
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, BasicOptions(IndexBackend::kKdTree));
  ASSERT_TRUE(engine.ok());
  const auto neighbors = engine->Query(data.Record(3), 2, /*skip_index=*/3);
  for (const auto& n : neighbors) EXPECT_NE(n.index, 3u);
}

TEST(EngineTest, QueryStatsShowReducedWork) {
  Dataset data = MuskLike(154);
  EngineOptions options = BasicOptions(IndexBackend::kKdTree);
  options.reduction.target_dim = 4;
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(engine.ok());
  QueryStats stats;
  engine->Query(data.Record(10), 3, KnnIndex::kNoSkip, &stats);
  // In 4 reduced dimensions the kd-tree must prune a meaningful share.
  EXPECT_LT(stats.distance_evaluations, data.NumRecords());
}

TEST(EngineTest, RejectsKdTreeWithNonTrueMetric) {
  Dataset data = IonosphereLike(155);
  EngineOptions options = BasicOptions(IndexBackend::kKdTree);
  options.metric = MetricKind::kCosine;
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, options);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, RejectsVaFileWithFractionalMetric) {
  Dataset data = IonosphereLike(156);
  EngineOptions options = BasicOptions(IndexBackend::kVaFile);
  options.metric = MetricKind::kFractional;
  EXPECT_FALSE(ReducedSearchEngine::Build(data, options).ok());
}

TEST(EngineTest, LinearScanAllowsFractionalMetric) {
  Dataset data = IonosphereLike(157);
  EngineOptions options = BasicOptions(IndexBackend::kLinearScan);
  options.metric = MetricKind::kFractional;
  options.metric_p = 0.5;
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->Query(data.Record(1), 3).size(), 3u);
}

TEST(EngineTest, RejectsEmptyDataset) {
  EXPECT_FALSE(
      ReducedSearchEngine::Build(Dataset(Matrix(0, 3)),
                                 BasicOptions(IndexBackend::kLinearScan))
          .ok());
}

TEST(EngineTest, DescribeListsConfiguration) {
  Dataset data = IonosphereLike(158);
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, BasicOptions(IndexBackend::kVaFile));
  ASSERT_TRUE(engine.ok());
  const std::string desc = engine->Describe();
  EXPECT_NE(desc.find("va_file"), std::string::npos);
  EXPECT_NE(desc.find("coherence_order"), std::string::npos);
  EXPECT_NE(desc.find("euclidean"), std::string::npos);
}

TEST(EngineTest, BackendNames) {
  EXPECT_STREQ(IndexBackendName(IndexBackend::kLinearScan), "linear_scan");
  EXPECT_STREQ(IndexBackendName(IndexBackend::kKdTree), "kd_tree");
  EXPECT_STREQ(IndexBackendName(IndexBackend::kVaFile), "va_file");
  EXPECT_STREQ(IndexBackendName(IndexBackend::kVpTree), "vp_tree");
  EXPECT_STREQ(IndexBackendName(IndexBackend::kRStarTree), "rstar_tree");
}

TEST(EngineTest, RejectsVpTreeWithNonTrueMetric) {
  Dataset data = IonosphereLike(159);
  EngineOptions options = BasicOptions(IndexBackend::kVpTree);
  options.metric = MetricKind::kFractional;
  EXPECT_FALSE(ReducedSearchEngine::Build(data, options).ok());
}

TEST(EngineTest, QueryBatchMatchesPerQueryResults) {
  Dataset data = IonosphereLike(160);
  for (IndexBackend backend :
       {IndexBackend::kLinearScan, IndexBackend::kKdTree,
        IndexBackend::kVaFile}) {
    EngineOptions options = BasicOptions(backend);
    options.num_threads = 4;  // exercise the pool even on small machines
    Result<ReducedSearchEngine> engine =
        ReducedSearchEngine::Build(data, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();

    Matrix queries(30, data.NumAttributes());
    for (size_t i = 0; i < queries.rows(); ++i) {
      queries.SetRow(i, data.Record(i * 7 % data.NumRecords()));
    }
    QueryStats batch_stats;
    const auto batch = engine->QueryBatch(queries, 4, &batch_stats);
    ASSERT_EQ(batch.size(), queries.rows());

    QueryStats expected_stats;
    for (size_t i = 0; i < queries.rows(); ++i) {
      const auto expected =
          engine->Query(queries.Row(i), 4, KnnIndex::kNoSkip, &expected_stats);
      EXPECT_EQ(batch[i], expected) << "query " << i;
    }
    EXPECT_EQ(batch_stats.distance_evaluations,
              expected_stats.distance_evaluations);
    EXPECT_EQ(batch_stats.nodes_visited, expected_stats.nodes_visited);
    EXPECT_EQ(batch_stats.candidates_refined,
              expected_stats.candidates_refined);
  }
  SetParallelThreadCount(0);
}

TEST(EngineTest, NumThreadsOptionConfiguresThePool) {
  Dataset data = IonosphereLike(161);
  EngineOptions options = BasicOptions(IndexBackend::kLinearScan);
  options.num_threads = 2;
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(ParallelThreadCount(), 2u);
  SetParallelThreadCount(0);
}

TEST(EngineTest, NumThreadsReconfigurationIsObservableAsGauge) {
  Dataset data = IonosphereLike(162);
  EngineOptions options = BasicOptions(IndexBackend::kLinearScan);
  options.num_threads = 3;
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(engine.ok());
  EXPECT_DOUBLE_EQ(
      obs::MetricsRegistry::Global().GetGauge("parallel.threads")->Value(),
      3.0);
  SetParallelThreadCount(0);
}

TEST(EngineTest, QueryBatchHonorsTheEngineDeadlineOption) {
  Dataset data = IonosphereLike(164);
  EngineOptions options = BasicOptions(IndexBackend::kLinearScan);
  options.num_threads = 4;
  options.query_deadline_us = 1e-3;  // expired at the first control check
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(engine.ok());

  Matrix queries(12, data.NumAttributes());
  for (size_t i = 0; i < queries.rows(); ++i) {
    queries.SetRow(i, data.Record(i));
  }
  QueryStats stats;
  const auto batch = engine->QueryBatch(queries, 4, &stats);
  ASSERT_EQ(batch.size(), queries.rows());
  EXPECT_TRUE(stats.truncated);

  // Per-call limits override the engine default: a generous budget restores
  // the exact answers.
  QueryLimits generous;
  generous.deadline_us = 60e6;
  QueryStats exact_stats;
  const auto exact = engine->QueryBatch(queries, 4, &exact_stats, generous);
  EXPECT_FALSE(exact_stats.truncated);
  QueryLimits off;  // inactive limits: deadline disabled entirely
  for (size_t i = 0; i < queries.rows(); ++i) {
    EXPECT_EQ(exact[i], engine->Query(queries.Row(i), 4, KnnIndex::kNoSkip,
                                      nullptr, off))
        << "query " << i;
  }
  SetParallelThreadCount(0);
}

TEST(EngineTest, QueryBatchCancelTokenStopsAllRows) {
  Dataset data = IonosphereLike(165);
  EngineOptions options = BasicOptions(IndexBackend::kKdTree);
  options.num_threads = 4;
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(engine.ok());

  Matrix queries(8, data.NumAttributes());
  for (size_t i = 0; i < queries.rows(); ++i) {
    queries.SetRow(i, data.Record(i * 3 % data.NumRecords()));
  }
  CancelToken token;
  token.Cancel();
  QueryLimits limits;
  limits.cancel = &token;
  QueryStats stats;
  const auto batch = engine->QueryBatch(queries, 4, &stats, limits);
  ASSERT_EQ(batch.size(), queries.rows());
  EXPECT_TRUE(stats.truncated);
  SetParallelThreadCount(0);
}

TEST(EngineTest, QueryDeadlineOptionAppliesToSerialQueries) {
  Dataset data = IonosphereLike(166);
  EngineOptions options = BasicOptions(IndexBackend::kLinearScan);
  options.query_deadline_us = 1e-3;
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(engine.ok());
  QueryStats stats;
  engine->Query(data.Record(0), 5, KnnIndex::kNoSkip, &stats);
  EXPECT_TRUE(stats.truncated);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  EXPECT_GT(registry.GetCounter("queries.deadline_exceeded")->Value(), 0u);
}

TEST(EngineTest, QueriesFeedTheEngineRegistryMetrics) {
  Dataset data = IonosphereLike(163);
  Result<ReducedSearchEngine> engine = ReducedSearchEngine::Build(
      data, BasicOptions(IndexBackend::kLinearScan));
  ASSERT_TRUE(engine.ok());
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const uint64_t queries_before =
      registry.GetCounter("engine.queries")->Value();
  const uint64_t latencies_before =
      registry.GetHistogram("engine.query_latency_us")->TotalCount();
  engine->Query(data.Record(0), 3);
  engine->Query(data.Record(1), 3);
  EXPECT_EQ(registry.GetCounter("engine.queries")->Value() - queries_before,
            2u);
  EXPECT_EQ(registry.GetHistogram("engine.query_latency_us")->TotalCount() -
                latencies_before,
            2u);
  EXPECT_GE(registry.GetCounter("engine.builds")->Value(), 1u);
}

}  // namespace
}  // namespace cohere
