#include "core/serving.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "core/dynamic_engine.h"
#include "core/engine.h"
#include "core/local_engine.h"
#include "core/snapshot.h"
#include "data/synthetic.h"
#include "data/uci_like.h"
#include "obs/metrics.h"

namespace cohere {
namespace {

// ---------------------------------------------------------------------------
// Golden-result hashing. The expected values below were captured by running
// the exact same recipes against the pre-refactor engines (before the
// snapshot/serving-core extraction), so these tests pin the refactor to
// bit-identical single-threaded behavior: every neighbor index and every
// distance bit pattern must match.
// ---------------------------------------------------------------------------

constexpr uint64_t kFnvSeed = 1469598103934665603ULL;

uint64_t Fnv(uint64_t h, const void* data, size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t HashNeighbors(uint64_t h, const std::vector<Neighbor>& neighbors) {
  for (const Neighbor& n : neighbors) {
    const uint64_t index = n.index;
    uint64_t bits;
    std::memcpy(&bits, &n.distance, sizeof(bits));
    h = Fnv(h, &index, sizeof(index));
    h = Fnv(h, &bits, sizeof(bits));
  }
  return h;
}

// Two latent-factor populations with disjoint concept subspaces (the
// Section 3.1 regime the local engine exists for).
Dataset MixedPopulations(uint64_t seed) {
  MultiPopulationConfig config;
  LatentFactorConfig pop;
  pop.num_records = 180;
  pop.num_attributes = 40;
  pop.num_concepts = 6;
  pop.num_classes = 4;
  pop.class_separation = 1.0;
  pop.noise_stddev = 0.4;
  pop.seed = seed;
  config.populations.push_back(pop);
  pop.seed = seed + 100;  // different loadings => different concepts
  config.populations.push_back(pop);
  config.center_separation = 2.0;
  config.seed = seed + 1;
  return GenerateMultiPopulation(config);
}

Dataset DynamicData() {
  LatentFactorConfig config;
  config.num_records = 300;
  config.num_attributes = 30;
  config.num_concepts = 5;
  config.num_classes = 2;
  config.noise_stddev = 0.5;
  config.seed = 701;
  return GenerateLatentFactor(config);
}

DynamicEngineOptions DynamicOptions() {
  DynamicEngineOptions options;
  options.reduction.scaling = PcaScaling::kCorrelation;
  options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
  options.reduction.target_dim = 5;
  options.drift_window = 40;
  return options;
}

LocalEngineOptions LocalOptions(size_t probes) {
  LocalEngineOptions options;
  options.num_clusters = 3;
  options.cluster_subspace_dim = 10;
  options.reduction.scaling = PcaScaling::kCorrelation;
  options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
  options.reduction.target_dim = 6;
  options.probe_clusters = probes;
  return options;
}

TEST(ServingGoldenTest, StaticEnginesMatchPreRefactorResults) {
  Dataset data = IonosphereLike(152);
  struct Case {
    IndexBackend backend;
    uint64_t expected;
  };
  const Case cases[] = {
      {IndexBackend::kLinearScan, 0x5fc625f230dd3617ULL},
      {IndexBackend::kKdTree, 0x5fc625f230dd3617ULL},
      {IndexBackend::kVaFile, 0x5fc625f230dd3617ULL},
      {IndexBackend::kVpTree, 0x5fc625f230dd3617ULL},
      {IndexBackend::kRStarTree, 0x5fc625f230dd3617ULL},
  };
  for (const Case& c : cases) {
    EngineOptions options;
    options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
    options.reduction.target_dim = 8;
    options.backend = c.backend;
    Result<ReducedSearchEngine> engine =
        ReducedSearchEngine::Build(data, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    uint64_t h = kFnvSeed;
    for (size_t q = 0; q < 20; ++q) {
      const Vector query = data.Record(q * 17 % data.NumRecords());
      h = HashNeighbors(h, engine->Query(query, 4));
    }
    EXPECT_EQ(h, c.expected) << IndexBackendName(c.backend);
  }
}

TEST(ServingGoldenTest, DynamicEngineMatchesPreRefactorResults) {
  Dataset data = DynamicData();
  auto [fit_part, insert_part] = data.Split(250);
  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(fit_part, DynamicOptions());
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  for (size_t i = 0; i < insert_part.NumRecords(); ++i) {
    ASSERT_TRUE(index->Insert(insert_part.Record(i), insert_part.label(i))
                    .ok());
  }
  uint64_t h = kFnvSeed;
  for (size_t q = 0; q < 20; ++q) {
    h = HashNeighbors(h,
                      index->Query(data.Record(q * 13 % data.NumRecords()), 5));
  }
  EXPECT_EQ(h, 0xf57cdcc25ad7f662ULL) << "after inserts";

  ASSERT_TRUE(index->Refit().ok());
  h = kFnvSeed;
  for (size_t q = 0; q < 20; ++q) {
    h = HashNeighbors(h,
                      index->Query(data.Record(q * 13 % data.NumRecords()), 5));
  }
  EXPECT_EQ(h, 0x83284f467ec26586ULL) << "after refit";
}

TEST(ServingGoldenTest, LocalEngineMatchesPreRefactorResults) {
  Dataset data = MixedPopulations(411);
  struct Case {
    size_t probes;
    uint64_t expected;
  };
  const Case cases[] = {
      {1, 0x7612cde2a47eb504ULL},
      {3, 0x3513a7c9bc68e92bULL},
  };
  for (const Case& c : cases) {
    Result<LocalReducedSearchEngine> engine =
        LocalReducedSearchEngine::Build(data, LocalOptions(c.probes));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    uint64_t h = kFnvSeed;
    for (size_t q = 0; q < 15; ++q) {
      h = HashNeighbors(
          h, engine->Query(data.Record(q * 11 % data.NumRecords()), 5));
    }
    EXPECT_EQ(h, c.expected) << "probes=" << c.probes;
  }
}

// ---------------------------------------------------------------------------
// Batch / limits parity: the pooled fan-out must produce entry-wise exactly
// what the serial overload produces.
// ---------------------------------------------------------------------------

void ExpectSameNeighbors(const std::vector<Neighbor>& got,
                         const std::vector<Neighbor>& want, size_t row) {
  ASSERT_EQ(got.size(), want.size()) << "row " << row;
  for (size_t j = 0; j < got.size(); ++j) {
    EXPECT_EQ(got[j].index, want[j].index) << "row " << row << " slot " << j;
    EXPECT_EQ(got[j].distance, want[j].distance)
        << "row " << row << " slot " << j;
  }
}

Matrix QueryRows(const Dataset& data, size_t n, size_t stride) {
  Matrix queries(n, data.NumAttributes());
  for (size_t i = 0; i < n; ++i) {
    const Vector record = data.Record(i * stride % data.NumRecords());
    for (size_t d = 0; d < data.NumAttributes(); ++d) {
      queries.At(i, d) = record[d];
    }
  }
  return queries;
}

TEST(ServingParityTest, DynamicQueryBatchMatchesSerialQueries) {
  Dataset data = DynamicData();
  auto [fit_part, insert_part] = data.Split(250);
  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(fit_part, DynamicOptions());
  ASSERT_TRUE(index.ok());
  for (size_t i = 0; i < insert_part.NumRecords(); ++i) {
    ASSERT_TRUE(index->Insert(insert_part.Record(i)).ok());
  }

  const Matrix queries = QueryRows(data, 12, 7);
  QueryStats batch_stats;
  const auto batch = index->QueryBatch(queries, 5, &batch_stats);
  ASSERT_EQ(batch.size(), 12u);

  QueryStats serial_stats;
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectSameNeighbors(batch[i], index->Query(queries.Row(i), 5,
                                               KnnIndex::kNoSkip,
                                               &serial_stats),
                        i);
  }
  EXPECT_EQ(batch_stats.distance_evaluations,
            serial_stats.distance_evaluations);
  EXPECT_FALSE(batch_stats.truncated);
}

TEST(ServingParityTest, LocalQueryBatchMatchesSerialQueries) {
  Dataset data = MixedPopulations(421);
  Result<LocalReducedSearchEngine> engine =
      LocalReducedSearchEngine::Build(data, LocalOptions(2));
  ASSERT_TRUE(engine.ok());

  const Matrix queries = QueryRows(data, 10, 11);
  QueryStats batch_stats;
  const auto batch = engine->QueryBatch(queries, 5, &batch_stats);
  ASSERT_EQ(batch.size(), 10u);

  QueryStats serial_stats;
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectSameNeighbors(batch[i], engine->Query(queries.Row(i), 5,
                                                KnnIndex::kNoSkip,
                                                &serial_stats),
                        i);
  }
  EXPECT_EQ(batch_stats.distance_evaluations,
            serial_stats.distance_evaluations);
  EXPECT_EQ(batch_stats.nodes_visited, serial_stats.nodes_visited);
  EXPECT_EQ(batch_stats.candidates_refined, serial_stats.candidates_refined);
}

TEST(ServingParityTest, InactiveLimitsMatchPlainQuery) {
  Dataset data = MixedPopulations(422);
  Result<LocalReducedSearchEngine> local =
      LocalReducedSearchEngine::Build(data, LocalOptions(3));
  ASSERT_TRUE(local.ok());
  Result<DynamicReducedIndex> dynamic =
      DynamicReducedIndex::Build(DynamicData(), DynamicOptions());
  ASSERT_TRUE(dynamic.ok());

  const QueryLimits inactive;
  ASSERT_FALSE(inactive.active());
  for (size_t q = 0; q < 6; ++q) {
    const Vector local_query = data.Record(q * 29 % data.NumRecords());
    ExpectSameNeighbors(
        local->Query(local_query, 4, KnnIndex::kNoSkip, nullptr, inactive),
        local->Query(local_query, 4), q);
  }
  Dataset dyn_data = DynamicData();
  for (size_t q = 0; q < 6; ++q) {
    const Vector query = dyn_data.Record(q * 31 % dyn_data.NumRecords());
    ExpectSameNeighbors(
        dynamic->Query(query, 4, KnnIndex::kNoSkip, nullptr, inactive),
        dynamic->Query(query, 4), q);
  }
}

TEST(ServingParityTest, CancelledLimitsTruncateEveryEngine) {
  Dataset data = MixedPopulations(423);
  Result<LocalReducedSearchEngine> local =
      LocalReducedSearchEngine::Build(data, LocalOptions(3));
  ASSERT_TRUE(local.ok());
  Dataset dyn_data = DynamicData();
  Result<DynamicReducedIndex> dynamic =
      DynamicReducedIndex::Build(dyn_data, DynamicOptions());
  ASSERT_TRUE(dynamic.ok());

  CancelToken cancel;
  cancel.Cancel();
  QueryLimits limits;
  limits.cancel = &cancel;

  QueryStats stats;
  (void)dynamic->Query(dyn_data.Record(0), 3, KnnIndex::kNoSkip, &stats,
                       limits);
  EXPECT_TRUE(stats.truncated);

  stats = QueryStats();
  (void)local->Query(data.Record(0), 3, KnnIndex::kNoSkip, &stats, limits);
  EXPECT_TRUE(stats.truncated);
  // The routing decision per probed shard is still accounted.
  EXPECT_EQ(stats.nodes_visited, 3u);

  stats = QueryStats();
  (void)dynamic->QueryBatch(QueryRows(dyn_data, 4, 5), 3, &stats, limits);
  EXPECT_TRUE(stats.truncated);
}

// ---------------------------------------------------------------------------
// Unified work accounting (the former LocalReducedSearchEngine::Query
// double-counting bug): one nodes_visited per probed shard, index counters
// passed through untouched, one candidates_refined per merged candidate
// scored in the full-space re-rank.
// ---------------------------------------------------------------------------

TEST(ServingAccountingTest, SingleProbeCountsIndexWorkPlusRouting) {
  Dataset data = MixedPopulations(431);
  Result<LocalReducedSearchEngine> engine =
      LocalReducedSearchEngine::Build(data, LocalOptions(1));
  ASSERT_TRUE(engine.ok());

  QueryStats stats;
  const auto neighbors = engine->Query(data.Record(42), 5, KnnIndex::kNoSkip,
                                       &stats);
  ASSERT_FALSE(neighbors.empty());
  // One routing decision; the probed locality's linear scan evaluates each
  // of its members exactly once; nothing is re-ranked with a single probe.
  EXPECT_EQ(stats.nodes_visited, 1u);
  const size_t probed = engine->assignment()[neighbors[0].index];
  EXPECT_EQ(stats.distance_evaluations,
            engine->ClusterMembers(probed).size());
  EXPECT_EQ(stats.candidates_refined, 0u);
}

TEST(ServingAccountingTest, MultiProbeAddsOneRefinementPerMergedCandidate) {
  Dataset data = MixedPopulations(432);
  Result<LocalReducedSearchEngine> engine =
      LocalReducedSearchEngine::Build(data, LocalOptions(3));
  ASSERT_TRUE(engine.ok());
  ASSERT_EQ(engine->NumClusters(), 3u);

  const size_t k = 5;
  size_t expected_candidates = 0;
  for (size_t c = 0; c < engine->NumClusters(); ++c) {
    expected_candidates += std::min(k, engine->ClusterMembers(c).size());
  }

  QueryStats stats;
  (void)engine->Query(data.Record(17), k, KnnIndex::kNoSkip, &stats);
  // All three localities probed: every record scanned exactly once, one
  // node per routing decision, one refinement per merged re-rank candidate.
  EXPECT_EQ(stats.nodes_visited, 3u);
  EXPECT_EQ(stats.distance_evaluations, data.NumRecords());
  EXPECT_EQ(stats.candidates_refined, expected_candidates);
}

// ---------------------------------------------------------------------------
// Snapshot lifecycle: versions, publish counters, old snapshots staying
// valid for readers that still hold them.
// ---------------------------------------------------------------------------

TEST(ServingSnapshotTest, DynamicPublishesAdvanceVersion) {
  Dataset data = DynamicData();
  auto [fit_part, rest] = data.Split(250);
  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(fit_part, DynamicOptions());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->SnapshotVersion(), 1u);

  ASSERT_TRUE(index->Insert(rest.Record(0)).ok());
  EXPECT_EQ(index->SnapshotVersion(), 2u);
  ASSERT_TRUE(index->Insert(rest.Record(1)).ok());
  EXPECT_EQ(index->SnapshotVersion(), 3u);
  ASSERT_TRUE(index->Refit().ok());
  EXPECT_EQ(index->SnapshotVersion(), 4u);
  EXPECT_EQ(index->serving().snapshot()->version, 4u);
}

TEST(ServingSnapshotTest, LocalRebuildPublishesWhileOldSnapshotStaysValid) {
  Dataset data = MixedPopulations(441);
  Result<LocalReducedSearchEngine> engine =
      LocalReducedSearchEngine::Build(data, LocalOptions(1));
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->SnapshotVersion(), 1u);

  // A reader that acquired the snapshot before the rebuild keeps a complete,
  // untouched copy alive after the publish.
  const std::shared_ptr<const EngineSnapshot> held =
      engine->serving().snapshot();
  ASSERT_TRUE(engine->Rebuild(data).ok());
  EXPECT_EQ(engine->SnapshotVersion(), 2u);
  EXPECT_EQ(held->version, 1u);
  EXPECT_EQ(held->shards.size(), 3u);
  for (const SnapshotShard& shard : held->shards) {
    EXPECT_FALSE(shard.members.empty());
    EXPECT_NE(shard.index, nullptr);
  }
  // The rebuilt engine still answers.
  EXPECT_EQ(engine->Query(data.Record(3), 4).size(), 4u);
}

TEST(ServingSnapshotTest, PublishCountersTrackReplacements) {
  if (!obs::MetricsRegistry::Enabled()) {
    GTEST_SKIP() << "metrics disabled";
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const uint64_t publishes_before =
      registry.GetCounter("core.snapshot.publishes")->Value();
  const uint64_t retired_before =
      registry.GetCounter("core.snapshot.retired")->Value();

  Dataset data = DynamicData();
  auto [fit_part, rest] = data.Split(250);
  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(fit_part, DynamicOptions());
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->Insert(rest.Record(0)).ok());
  ASSERT_TRUE(index->Insert(rest.Record(1)).ok());

  // Build + two COW inserts: three publishes, of which the two replacements
  // each retired a predecessor.
  EXPECT_EQ(registry.GetCounter("core.snapshot.publishes")->Value() -
                publishes_before,
            3u);
  EXPECT_EQ(registry.GetCounter("core.snapshot.retired")->Value() -
                retired_before,
            2u);
  EXPECT_EQ(registry.GetGauge("core.snapshot.version")->Value(), 3.0);
}

// ---------------------------------------------------------------------------
// Publish fault point: a failed replacement publish must leave the previous
// snapshot serving, unchanged.
// ---------------------------------------------------------------------------

class ServingFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DisarmAll();
    fault::ResetCounters();
  }
  void TearDown() override {
    fault::DisarmAll();
    fault::ResetCounters();
  }
};

TEST_F(ServingFaultTest, FailedInsertPublishKeepsOldSnapshotServing) {
  Dataset data = DynamicData();
  auto [fit_part, rest] = data.Split(250);
  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(fit_part, DynamicOptions());
  ASSERT_TRUE(index.ok());
  const uint64_t before_hash =
      HashNeighbors(kFnvSeed, index->Query(data.Record(5), 5));

  fault::Arm(fault::kPointSnapshotPublish, 1.0);
  const Status failed = index->Insert(rest.Record(0));
  EXPECT_FALSE(failed.ok()) << failed.ToString();
  EXPECT_EQ(index->size(), 250u);
  EXPECT_EQ(index->SnapshotVersion(), 1u);
  EXPECT_EQ(HashNeighbors(kFnvSeed, index->Query(data.Record(5), 5)),
            before_hash);

  fault::DisarmAll();
  ASSERT_TRUE(index->Insert(rest.Record(0)).ok());
  EXPECT_EQ(index->size(), 251u);
  EXPECT_EQ(index->SnapshotVersion(), 2u);
}

TEST_F(ServingFaultTest, FailedRefitPublishBacksOffAndKeepsServing) {
  Dataset data = DynamicData();
  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(data, DynamicOptions());
  ASSERT_TRUE(index.ok());

  fault::Arm(fault::kPointSnapshotPublish, 1.0);
  EXPECT_FALSE(index->Refit().ok());
  EXPECT_EQ(index->SnapshotVersion(), 1u);
  EXPECT_GT(index->RefitBackoffRemaining(), 0u);
  EXPECT_EQ(index->Query(data.Record(2), 3).size(), 3u);

  fault::DisarmAll();
  ASSERT_TRUE(index->Refit().ok());
  EXPECT_EQ(index->SnapshotVersion(), 2u);
  EXPECT_EQ(index->RefitBackoffRemaining(), 0u);
}

TEST_F(ServingFaultTest, FailedRebuildPublishKeepsLocalEngineServing) {
  Dataset data = MixedPopulations(451);
  Result<LocalReducedSearchEngine> engine =
      LocalReducedSearchEngine::Build(data, LocalOptions(2));
  ASSERT_TRUE(engine.ok());
  const uint64_t before_hash =
      HashNeighbors(kFnvSeed, engine->Query(data.Record(9), 5));

  fault::Arm(fault::kPointSnapshotPublish, 1.0);
  EXPECT_FALSE(engine->Rebuild(data).ok());
  EXPECT_EQ(engine->SnapshotVersion(), 1u);
  EXPECT_EQ(HashNeighbors(kFnvSeed, engine->Query(data.Record(9), 5)),
            before_hash);

  fault::DisarmAll();
  ASSERT_TRUE(engine->Rebuild(data).ok());
  EXPECT_EQ(engine->SnapshotVersion(), 2u);
}

// ---------------------------------------------------------------------------
// Concurrency hammer (run under TSAN by scripts/tier1.sh): lock-free readers
// racing COW inserts/refits and local rebuilds. Readers must always see a
// complete snapshot — full result sets, in-range indices, sorted finite
// distances — regardless of interleaving.
// ---------------------------------------------------------------------------

void ExpectWellFormed(const std::vector<Neighbor>& neighbors, size_t k,
                      size_t max_records) {
  ASSERT_EQ(neighbors.size(), k);
  double previous = -1.0;
  for (const Neighbor& n : neighbors) {
    EXPECT_LT(n.index, max_records);
    EXPECT_TRUE(std::isfinite(n.distance));
    EXPECT_GE(n.distance, previous);
    previous = n.distance;
  }
}

TEST(ServingConcurrencyTest, QueriesRaceInsertsAndRefits) {
  Dataset data = DynamicData();
  auto [fit_part, insert_part] = data.Split(250);
  Result<DynamicReducedIndex> built =
      DynamicReducedIndex::Build(fit_part, DynamicOptions());
  ASSERT_TRUE(built.ok());
  DynamicReducedIndex& index = *built;

  std::atomic<bool> done{false};
  const size_t k = 5;
  auto reader = [&](size_t thread_seed) {
    const Matrix batch_queries = QueryRows(data, 4, thread_seed + 3);
    size_t i = 0;
    // Keep reading at least a few rounds after the writer finishes so the
    // final snapshot is exercised too.
    while (!done.load(std::memory_order_acquire) || i < 40) {
      const Vector query =
          data.Record((i * 13 + thread_seed) % data.NumRecords());
      QueryStats stats;
      ExpectWellFormed(index.Query(query, k, KnnIndex::kNoSkip, &stats), k,
                       data.NumRecords());
      EXPECT_FALSE(stats.truncated);
      if (i % 8 == 0) {
        for (const auto& row : index.QueryBatch(batch_queries, k)) {
          ExpectWellFormed(row, k, data.NumRecords());
        }
      }
      ++i;
    }
  };

  std::vector<std::thread> readers;
  for (size_t t = 0; t < 3; ++t) readers.emplace_back(reader, t + 1);

  size_t refits = 0;
  for (size_t i = 0; i < insert_part.NumRecords(); ++i) {
    ASSERT_TRUE(index.Insert(insert_part.Record(i)).ok());
    if ((i + 1) % 20 == 0) {
      ASSERT_TRUE(index.Refit().ok());
      ++refits;
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(index.size(), data.NumRecords());
  EXPECT_EQ(index.SnapshotVersion(), 1u + insert_part.NumRecords() + refits);
}

TEST(ServingConcurrencyTest, QueriesRaceLocalRebuilds) {
  Dataset data = MixedPopulations(461);
  Result<LocalReducedSearchEngine> built =
      LocalReducedSearchEngine::Build(data, LocalOptions(2));
  ASSERT_TRUE(built.ok());
  LocalReducedSearchEngine& engine = *built;

  std::atomic<bool> done{false};
  const size_t k = 4;
  auto reader = [&](size_t thread_seed) {
    const Matrix batch_queries = QueryRows(data, 3, thread_seed + 5);
    size_t i = 0;
    while (!done.load(std::memory_order_acquire) || i < 30) {
      const Vector query =
          data.Record((i * 7 + thread_seed) % data.NumRecords());
      ExpectWellFormed(engine.Query(query, k), k, data.NumRecords());
      if (i % 6 == 0) {
        for (const auto& row : engine.QueryBatch(batch_queries, k)) {
          ExpectWellFormed(row, k, data.NumRecords());
        }
      }
      ++i;
    }
  };

  std::vector<std::thread> readers;
  for (size_t t = 0; t < 3; ++t) readers.emplace_back(reader, t + 1);

  const size_t rebuilds = 5;
  for (size_t r = 0; r < rebuilds; ++r) {
    ASSERT_TRUE(engine.Rebuild(data).ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(engine.SnapshotVersion(), 1u + rebuilds);
  EXPECT_EQ(engine.NumClusters(), 3u);
}

// ---------------------------------------------------------------------------
// Cancellation racing the batch fan-out (run under TSAN by scripts/tier1.sh):
// a CancelToken flipped concurrently with a batch must stop every lane
// promptly, return only well-formed partial rows, and merge the truncation
// flag into the batch-wide stats.
// ---------------------------------------------------------------------------

// A (possibly partial) result: bounded by k, sorted finite distances,
// in-range indices. Unlike ExpectWellFormed, the size may be short — a
// cancelled lane legitimately returns fewer (or zero) neighbors.
void ExpectWellFormedPrefix(const std::vector<Neighbor>& neighbors, size_t k,
                            size_t max_records) {
  ASSERT_LE(neighbors.size(), k);
  double previous = -1.0;
  for (const Neighbor& n : neighbors) {
    EXPECT_LT(n.index, max_records);
    EXPECT_TRUE(std::isfinite(n.distance));
    EXPECT_GE(n.distance, previous);
    previous = n.distance;
  }
}

TEST(ServingCancelRaceTest, PreCancelledBatchTruncatesEveryLaneWithinWindow) {
  Dataset data = MixedPopulations(471);
  Result<LocalReducedSearchEngine> engine =
      LocalReducedSearchEngine::Build(data, LocalOptions(3));
  ASSERT_TRUE(engine.ok());

  CancelToken cancel;
  cancel.Cancel();
  QueryLimits limits;
  limits.cancel = &cancel;
  QueryStats stats;
  const size_t rows = 16;
  const size_t k = 4;
  const auto batch =
      engine->QueryBatch(QueryRows(data, rows, 7), k, &stats, limits);
  ASSERT_EQ(batch.size(), rows);
  EXPECT_TRUE(stats.truncated);
  // Each lane consults the token at its first control check and then every
  // kCheckInterval evaluations, so no probed shard may run more than one
  // check window past the cancellation.
  EXPECT_LE(stats.distance_evaluations,
            rows * engine->NumClusters() * QueryControl::kCheckInterval);
  for (const auto& row : batch) {
    ExpectWellFormedPrefix(row, k, data.NumRecords());
  }
}

TEST(ServingCancelRaceTest, ConcurrentCancelRacesBatchFanOutLanes) {
  Dataset data = MixedPopulations(472);
  Result<LocalReducedSearchEngine> engine =
      LocalReducedSearchEngine::Build(data, LocalOptions(3));
  ASSERT_TRUE(engine.ok());
  const size_t k = 4;
  const Matrix queries = QueryRows(data, 24, 5);

  for (size_t round = 0; round < 6; ++round) {
    CancelToken cancel;
    QueryLimits limits;
    limits.cancel = &cancel;
    QueryStats stats;
    // The cancel lands at an arbitrary point inside the fan-out; every
    // interleaving must terminate with well-formed (possibly short) rows.
    std::thread canceller([&] { cancel.Cancel(); });
    const auto batch = engine->QueryBatch(queries, k, &stats, limits);
    canceller.join();
    ASSERT_EQ(batch.size(), 24u);
    for (const auto& row : batch) {
      ExpectWellFormedPrefix(row, k, data.NumRecords());
    }
    // Once the token is settled cancelled, a fresh batch on it observes the
    // cancellation in every lane and reports it batch-wide exactly once.
    QueryStats after;
    const auto cancelled_batch =
        engine->QueryBatch(queries, k, &after, limits);
    ASSERT_EQ(cancelled_batch.size(), 24u);
    EXPECT_TRUE(after.truncated);
    EXPECT_LE(after.distance_evaluations,
              24u * engine->NumClusters() * QueryControl::kCheckInterval);
  }
}

}  // namespace
}  // namespace cohere
