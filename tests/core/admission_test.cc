// Unit tests for the overload policy: AdmissionController (intake, queue,
// feasibility shedding, circuit breaker, brownout ladder) and RetryPolicy
// (deterministic jittered backoff behind a token-bucket retry budget).
//
// The ServingAdmission* suites at the bottom run under TSAN via the
// Serving* filter in scripts/tier1.sh; the hammer asserts the exact
// accounting invariant `offered == admitted + shed + rejected` after a
// multi-threaded overload burst.
#include "core/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/serving.h"
#include "data/synthetic.h"
#include "index/knn.h"

namespace cohere {
namespace {

AdmissionOptions BaseOptions() {
  AdmissionOptions options;
  options.enabled = true;
  options.max_concurrency = 2;
  options.max_queue = 4;
  return options;
}

void ExpectInvariant(const AdmissionTotals& t) {
  EXPECT_EQ(t.offered, t.admitted + t.shed + t.rejected);
}

// --- RetryPolicy -----------------------------------------------------------

TEST(RetryPolicyTest, CappedExponentialStepsMatchesLegacyInsertLadder) {
  // The dynamic engine's historical refit backoff: 8, 16, 32, 64, cap 128.
  EXPECT_EQ(RetryPolicy::CappedExponentialSteps(8, 128, 0), 0u);
  EXPECT_EQ(RetryPolicy::CappedExponentialSteps(8, 128, 1), 8u);
  EXPECT_EQ(RetryPolicy::CappedExponentialSteps(8, 128, 2), 16u);
  EXPECT_EQ(RetryPolicy::CappedExponentialSteps(8, 128, 3), 32u);
  EXPECT_EQ(RetryPolicy::CappedExponentialSteps(8, 128, 4), 64u);
  EXPECT_EQ(RetryPolicy::CappedExponentialSteps(8, 128, 5), 128u);
  EXPECT_EQ(RetryPolicy::CappedExponentialSteps(8, 128, 6), 128u);
  EXPECT_EQ(RetryPolicy::CappedExponentialSteps(8, 128, 100), 128u);
  EXPECT_EQ(RetryPolicy::CappedExponentialSteps(0, 128, 3), 0u);
}

TEST(RetryPolicyTest, BackoffIsDeterministicForAFixedSeed) {
  RetryPolicyOptions options;
  options.base_backoff_us = 100.0;
  options.max_backoff_us = 10000.0;
  options.seed = 42;
  RetryPolicy a(options);
  RetryPolicy b(options);
  options.seed = 43;
  RetryPolicy c(options);
  bool any_differs = false;
  for (size_t attempt = 1; attempt <= 8; ++attempt) {
    const double step_a = a.BackoffUs(attempt);
    EXPECT_EQ(step_a, b.BackoffUs(attempt)) << "attempt " << attempt;
    if (step_a != c.BackoffUs(attempt)) any_differs = true;
    // Jitter spans [0.5, 1.0) of the capped exponential step.
    const double raw =
        std::min(options.max_backoff_us,
                 options.base_backoff_us * static_cast<double>(1u << (attempt - 1)));
    EXPECT_GE(step_a, 0.5 * raw) << "attempt " << attempt;
    EXPECT_LT(step_a, raw) << "attempt " << attempt;
  }
  EXPECT_TRUE(any_differs) << "different seed produced an identical stream";
}

TEST(RetryPolicyTest, TokenBucketBoundsRetriesAndRefillsOverTime) {
  uint64_t fake_now_us = 0;
  RetryPolicyOptions options;
  options.max_attempts = 10;
  options.budget_tokens = 2.0;
  options.tokens_per_second = 1.0;
  RetryPolicy policy(options, [&] { return fake_now_us; });

  EXPECT_FALSE(policy.AcquireRetry(0));    // the first attempt is not a retry
  EXPECT_FALSE(policy.AcquireRetry(10));   // attempt limit reached
  EXPECT_TRUE(policy.AcquireRetry(1));
  EXPECT_TRUE(policy.AcquireRetry(2));
  EXPECT_FALSE(policy.AcquireRetry(3));    // bucket empty
  fake_now_us += 1500000;                  // 1.5s at 1 token/s -> 1.5 tokens
  EXPECT_NEAR(policy.TokensAvailable(), 1.5, 1e-9);
  EXPECT_TRUE(policy.AcquireRetry(4));
  EXPECT_FALSE(policy.AcquireRetry(5));    // 0.5 tokens is not a whole token
}

// --- AdmissionController intake -------------------------------------------

TEST(AdmissionControllerTest, AdmitsUpToConcurrencyAndShedsOnFullQueue) {
  AdmissionOptions options = BaseOptions();
  options.max_queue = 0;  // no waiting: the third arrival must shed
  AdmissionController controller("test", options);

  const AdmissionGrant g1 = controller.Admit(0.0);
  const AdmissionGrant g2 = controller.Admit(0.0);
  ASSERT_TRUE(g1.admitted);
  ASSERT_TRUE(g2.admitted);
  EXPECT_EQ(g1.brownout_level, 0u);
  EXPECT_EQ(g1.probe_limit, std::numeric_limits<size_t>::max());
  EXPECT_EQ(g1.rerank_cap, std::numeric_limits<size_t>::max());

  const AdmissionGrant g3 = controller.Admit(0.0);
  EXPECT_FALSE(g3.admitted);
  EXPECT_EQ(g3.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(g3.status.ToString().find("queue full"), std::string::npos);

  controller.Release(50.0, true);
  controller.Release(50.0, true);
  const AdmissionTotals totals = controller.Totals();
  EXPECT_EQ(totals.offered, 3u);
  EXPECT_EQ(totals.admitted, 2u);
  EXPECT_EQ(totals.shed, 1u);
  EXPECT_EQ(totals.rejected, 0u);
  ExpectInvariant(totals);
}

TEST(AdmissionControllerTest, ShedsInfeasibleDeadlinesAfterServiceSignal) {
  AdmissionController controller("test", BaseOptions());
  // Before any completion there is no service-time signal: even a tiny
  // budget is admitted rather than guessed at.
  const AdmissionGrant g1 = controller.Admit(1.0);
  ASSERT_TRUE(g1.admitted);
  controller.Release(1000.0, true);  // EWMA seeds at 1000us

  const AdmissionGrant infeasible = controller.Admit(10.0);
  EXPECT_FALSE(infeasible.admitted);
  EXPECT_NE(infeasible.status.ToString().find("expected service"),
            std::string::npos);

  const AdmissionGrant feasible = controller.Admit(50000.0);
  EXPECT_TRUE(feasible.admitted);
  controller.Release(900.0, true);
  ExpectInvariant(controller.Totals());
}

TEST(AdmissionControllerTest, QueuedArrivalTimesOutAndSheds) {
  AdmissionOptions options = BaseOptions();
  options.max_concurrency = 1;
  AdmissionController controller("test", options);
  ASSERT_TRUE(controller.Admit(0.0).admitted);  // holds the only slot

  // 2ms of budget, no release coming: the waiter must shed itself.
  const AdmissionGrant timed_out = controller.Admit(2000.0);
  EXPECT_FALSE(timed_out.admitted);
  EXPECT_TRUE(timed_out.queued);
  EXPECT_NE(timed_out.status.ToString().find("while queued"),
            std::string::npos);

  controller.Release(10.0, true);
  const AdmissionTotals totals = controller.Totals();
  EXPECT_EQ(totals.offered, 2u);
  EXPECT_EQ(totals.admitted, 1u);
  EXPECT_EQ(totals.queued, 1u);
  EXPECT_EQ(totals.shed, 1u);
  ExpectInvariant(totals);
}

TEST(AdmissionControllerTest, QueuedArrivalGetsSlotOnRelease) {
  AdmissionOptions options = BaseOptions();
  options.max_concurrency = 1;
  options.default_queue_wait_us = 5e6;  // ample; the release below unblocks
  AdmissionController controller("test", options);
  ASSERT_TRUE(controller.Admit(0.0).admitted);

  AdmissionGrant waiter_grant;
  std::thread waiter([&] { waiter_grant = controller.Admit(0.0); });
  // Wait until the arrival is actually queued, then free the slot.
  while (controller.Totals().queued < 1) std::this_thread::yield();
  controller.Release(10.0, true);
  waiter.join();

  EXPECT_TRUE(waiter_grant.admitted);
  EXPECT_TRUE(waiter_grant.queued);
  controller.Release(10.0, true);
  const AdmissionTotals totals = controller.Totals();
  EXPECT_EQ(totals.offered, 2u);
  EXPECT_EQ(totals.admitted, 2u);
  EXPECT_EQ(totals.queued, 1u);
  ExpectInvariant(totals);
}

// --- circuit breaker -------------------------------------------------------

AdmissionOptions BreakerOptions() {
  AdmissionOptions options = BaseOptions();
  options.max_concurrency = 4;
  options.breaker_min_samples = 4;
  options.breaker_failure_ratio = 0.5;
  options.breaker_open_us = 1000.0;
  options.breaker_half_open_probes = 2;
  return options;
}

TEST(AdmissionControllerTest, BreakerTripsHalfOpensAndRecloses) {
  uint64_t fake_now_us = 0;
  AdmissionController controller("test", BreakerOptions(),
                                 [&] { return fake_now_us; });
  EXPECT_EQ(controller.BreakerState(), "closed");

  // Four straight failures inside the window: 4/4 >= 0.5 trips the breaker.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(controller.Admit(0.0).admitted);
    controller.Release(10.0, false);
  }
  EXPECT_EQ(controller.BreakerState(), "open");

  const AdmissionGrant rejected = controller.Admit(0.0);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rejected.status.ToString().find("circuit breaker"),
            std::string::npos);

  // Past the open interval: half-open admits exactly the probe quota.
  fake_now_us += 2000;
  const AdmissionGrant probe1 = controller.Admit(0.0);
  ASSERT_TRUE(probe1.admitted);
  EXPECT_EQ(controller.BreakerState(), "half_open");
  const AdmissionGrant probe2 = controller.Admit(0.0);
  ASSERT_TRUE(probe2.admitted);
  const AdmissionGrant beyond_quota = controller.Admit(0.0);
  EXPECT_FALSE(beyond_quota.admitted);

  // Both probes succeeding re-closes with fresh windows: the pre-trip
  // failures must not instantly re-trip.
  controller.Release(10.0, true);
  EXPECT_EQ(controller.BreakerState(), "half_open");
  controller.Release(10.0, true);
  EXPECT_EQ(controller.BreakerState(), "closed");
  EXPECT_TRUE(controller.Admit(0.0).admitted);
  controller.Release(10.0, true);
  EXPECT_EQ(controller.BreakerState(), "closed");

  const AdmissionTotals totals = controller.Totals();
  EXPECT_EQ(totals.breaker_trips, 1u);
  EXPECT_EQ(totals.rejected, 2u);
  ExpectInvariant(totals);
}

TEST(AdmissionControllerTest, FailedHalfOpenProbeReopensTheBreaker) {
  uint64_t fake_now_us = 0;
  AdmissionController controller("test", BreakerOptions(),
                                 [&] { return fake_now_us; });
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(controller.Admit(0.0).admitted);
    controller.Release(10.0, false);
  }
  ASSERT_EQ(controller.BreakerState(), "open");

  fake_now_us += 2000;
  ASSERT_TRUE(controller.Admit(0.0).admitted);
  controller.Release(10.0, false);  // probe verdict: still failing
  EXPECT_EQ(controller.BreakerState(), "open");
  EXPECT_EQ(controller.Totals().breaker_trips, 2u);
  ExpectInvariant(controller.Totals());
}

// --- brownout ladder -------------------------------------------------------

TEST(AdmissionControllerTest, BrownoutEngagesUnderQueuePressureAndDecays) {
  AdmissionOptions options = BaseOptions();
  options.max_concurrency = 1;
  options.max_queue = 1;
  options.ewma_alpha = 1.0;  // pressure tracks occupancy instantly
  options.default_queue_wait_us = 5e6;
  options.brownout_rerank_cap = 4;
  AdmissionController controller("test", options);
  ASSERT_TRUE(controller.Admit(0.0).admitted);
  EXPECT_EQ(controller.BrownoutLevel(), 0u);

  AdmissionGrant waiter_grant;
  std::thread waiter([&] { waiter_grant = controller.Admit(0.0); });
  while (controller.Totals().queued < 1) std::this_thread::yield();

  // Queue now full: this arrival sheds, and its pressure sample drives the
  // ladder to level 2 for whatever is admitted next.
  const AdmissionGrant shed = controller.Admit(0.0);
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(controller.BrownoutLevel(), 2u);

  controller.Release(10.0, true);
  waiter.join();
  ASSERT_TRUE(waiter_grant.admitted);
  EXPECT_EQ(waiter_grant.brownout_level, 2u);
  EXPECT_EQ(waiter_grant.probe_limit, 1u);
  EXPECT_EQ(waiter_grant.rerank_cap, 4u);
  controller.Release(10.0, true);

  // With the queue drained the pressure sample collapses back to zero and
  // full fidelity returns.
  const AdmissionGrant recovered = controller.Admit(0.0);
  ASSERT_TRUE(recovered.admitted);
  EXPECT_EQ(recovered.brownout_level, 0u);
  controller.Release(10.0, true);

  const AdmissionTotals totals = controller.Totals();
  EXPECT_EQ(totals.brownout_queries, 1u);
  ExpectInvariant(totals);
}

// --- fault point -----------------------------------------------------------

TEST(AdmissionControllerTest, ArmedShedFaultShedsEveryArrival) {
  fault::DisarmAll();
  AdmissionController controller("test", BaseOptions());
  fault::Arm(fault::kPointAdmissionShed, 1.0);
  const AdmissionGrant shed = controller.Admit(0.0);
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status.ToString().find("injected"), std::string::npos);
  fault::DisarmAll();
  const AdmissionGrant ok = controller.Admit(0.0);
  EXPECT_TRUE(ok.admitted);
  controller.Release(10.0, true);
  ExpectInvariant(controller.Totals());
}

// --- ServingCore::TryQuery -------------------------------------------------

Dataset HammerData() {
  LatentFactorConfig config;
  config.num_records = 200;
  config.num_attributes = 24;
  config.num_concepts = 4;
  config.num_classes = 2;
  config.noise_stddev = 0.5;
  config.seed = 811;
  return GenerateLatentFactor(config);
}

EngineOptions HammerOptions() {
  EngineOptions options;
  options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
  options.reduction.target_dim = 6;
  return options;
}

TEST(ServingAdmissionTest, DisabledAdmissionDelegatesToPlainQuery) {
  Dataset data = HammerData();
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, HammerOptions());
  ASSERT_TRUE(engine.ok());
  ASSERT_EQ(engine->serving().admission(), nullptr);

  QueryStats stats;
  std::vector<Neighbor> via_try;
  const Status status = engine->serving().TryQuery(
      data.Record(7), 4, KnnIndex::kNoSkip, &stats, QueryLimits(), &via_try);
  ASSERT_TRUE(status.ok());
  const std::vector<Neighbor> via_query = engine->Query(data.Record(7), 4);
  ASSERT_EQ(via_try.size(), via_query.size());
  for (size_t i = 0; i < via_try.size(); ++i) {
    EXPECT_EQ(via_try[i].index, via_query[i].index);
    EXPECT_EQ(via_try[i].distance, via_query[i].distance);
  }
  EXPECT_EQ(stats.brownout_level, 0u);
}

TEST(ServingAdmissionTest, EnabledAdmissionServesAndAccountsOneQuery) {
  Dataset data = HammerData();
  EngineOptions options = HammerOptions();
  options.admission.enabled = true;
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(engine.ok());
  ASSERT_NE(engine->serving().admission(), nullptr);

  QueryStats stats;
  std::vector<Neighbor> neighbors;
  ASSERT_TRUE(engine->serving()
                  .TryQuery(data.Record(3), 4, KnnIndex::kNoSkip, &stats,
                            QueryLimits(), &neighbors)
                  .ok());
  EXPECT_EQ(neighbors.size(), 4u);
  const AdmissionTotals totals = engine->serving().admission()->Totals();
  EXPECT_EQ(totals.offered, 1u);
  EXPECT_EQ(totals.admitted, 1u);
  ExpectInvariant(totals);
}

// Overload burst against a real engine (runs under TSAN via the Serving*
// tier-1 filter): the accounting invariant must hold *exactly* across every
// interleaving of admits, queue waits, sheds and releases, and every
// thread-observed outcome must reconcile with the controller's books.
TEST(ServingAdmissionHammerTest, InvariantHoldsExactlyUnderConcurrentOverload) {
  Dataset data = HammerData();
  EngineOptions options = HammerOptions();
  options.admission.enabled = true;
  options.admission.max_concurrency = 2;
  options.admission.max_queue = 2;
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(engine.ok());
  const ServingCore& serving = engine->serving();

  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 60;
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> resource_exhausted{0};
  std::atomic<uint64_t> other_errors{0};

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        QueryLimits limits;
        limits.deadline_us = 500;  // tight enough to queue-timeout under load
        QueryStats stats;
        std::vector<Neighbor> neighbors;
        const Vector query =
            data.Record((i * 13 + t * 7) % data.NumRecords());
        const Status status = serving.TryQuery(query, 4, KnnIndex::kNoSkip,
                                               &stats, limits, &neighbors);
        if (status.ok()) {
          served.fetch_add(1, std::memory_order_relaxed);
          EXPECT_LE(neighbors.size(), 4u);
        } else if (status.code() == StatusCode::kResourceExhausted) {
          resource_exhausted.fetch_add(1, std::memory_order_relaxed);
          EXPECT_TRUE(neighbors.empty());
        } else {
          other_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  ASSERT_NE(serving.admission(), nullptr);
  const AdmissionTotals totals = serving.admission()->Totals();
  EXPECT_EQ(totals.offered, kThreads * kPerThread);
  EXPECT_EQ(totals.offered, totals.admitted + totals.shed + totals.rejected);
  EXPECT_EQ(totals.admitted, served.load());
  EXPECT_EQ(totals.shed + totals.rejected, resource_exhausted.load());
  EXPECT_EQ(other_errors.load(), 0u);
}

}  // namespace
}  // namespace cohere
