#include "core/local_engine.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "data/transforms.h"
#include "eval/knn_quality.h"
#include "index/metric.h"

namespace cohere {
namespace {

// Two latent-factor populations with disjoint concept subspaces and
// disjoint class blocks: the Section 3.1 regime.
Dataset MixedPopulations(uint64_t seed) {
  MultiPopulationConfig config;
  LatentFactorConfig pop;
  pop.num_records = 180;
  pop.num_attributes = 40;
  pop.num_concepts = 6;
  pop.num_classes = 4;
  pop.class_separation = 1.0;
  pop.noise_stddev = 0.4;
  pop.seed = seed;
  config.populations.push_back(pop);
  pop.seed = seed + 100;  // different loadings => different concepts
  config.populations.push_back(pop);
  config.center_separation = 2.0;
  config.seed = seed + 1;
  return GenerateMultiPopulation(config);
}

LocalEngineOptions DefaultOptions() {
  LocalEngineOptions options;
  options.num_clusters = 2;
  options.cluster_subspace_dim = 10;
  options.reduction.scaling = PcaScaling::kCorrelation;
  options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
  options.reduction.target_dim = 6;
  return options;
}

TEST(LocalEngineTest, BuildsAndPartitions) {
  Dataset data = MixedPopulations(401);
  Result<LocalReducedSearchEngine> engine =
      LocalReducedSearchEngine::Build(data, DefaultOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->NumClusters(), 2u);
  size_t total = 0;
  for (size_t c = 0; c < 2; ++c) {
    total += engine->ClusterMembers(c).size();
    EXPECT_EQ(engine->ClusterPipeline(c).ReducedDims(), 6u);
  }
  EXPECT_EQ(total, data.NumRecords());
  EXPECT_EQ(engine->assignment().size(), data.NumRecords());
}

TEST(LocalEngineTest, QueriesReturnGlobalIndices) {
  Dataset data = MixedPopulations(402);
  Result<LocalReducedSearchEngine> engine =
      LocalReducedSearchEngine::Build(data, DefaultOptions());
  ASSERT_TRUE(engine.ok());
  const auto neighbors = engine->Query(data.Record(7), 5);
  ASSERT_EQ(neighbors.size(), 5u);
  for (const Neighbor& n : neighbors) {
    EXPECT_LT(n.index, data.NumRecords());
  }
  // The query record itself is indexed: it must come back first at ~0.
  EXPECT_EQ(neighbors[0].index, 7u);
  EXPECT_NEAR(neighbors[0].distance, 0.0, 1e-9);
}

TEST(LocalEngineTest, SkipIndexExcludesGlobalRow) {
  Dataset data = MixedPopulations(403);
  Result<LocalReducedSearchEngine> engine =
      LocalReducedSearchEngine::Build(data, DefaultOptions());
  ASSERT_TRUE(engine.ok());
  for (const Neighbor& n : engine->Query(data.Record(11), 4, 11)) {
    EXPECT_NE(n.index, 11u);
  }
}

TEST(LocalEngineTest, RoutesQueriesToOwnPopulation) {
  Dataset data = MixedPopulations(404);
  Result<LocalReducedSearchEngine> engine =
      LocalReducedSearchEngine::Build(data, DefaultOptions());
  ASSERT_TRUE(engine.ok());
  // Neighbors of a record should overwhelmingly share its cluster.
  size_t same_cluster = 0;
  size_t total = 0;
  for (size_t i = 0; i < data.NumRecords(); i += 7) {
    for (const Neighbor& n : engine->Query(data.Record(i), 3, i)) {
      ++total;
      if (engine->assignment()[n.index] == engine->assignment()[i]) {
        ++same_cluster;
      }
    }
  }
  EXPECT_GT(static_cast<double>(same_cluster) / static_cast<double>(total),
            0.95);
}

TEST(LocalEngineTest, LocalBeatsGlobalOnMixedConcepts) {
  // The headline property of the extension: on multi-population data, local
  // coherence reduction preserves semantic quality better than one global
  // reduction of the same dimensionality.
  Dataset data = MixedPopulations(405);

  LocalEngineOptions local_options = DefaultOptions();
  Result<LocalReducedSearchEngine> local =
      LocalReducedSearchEngine::Build(data, local_options);
  ASSERT_TRUE(local.ok());

  size_t matches = 0;
  size_t slots = 0;
  for (size_t i = 0; i < data.NumRecords(); ++i) {
    for (const Neighbor& n : local->Query(data.Record(i), 3, i)) {
      ++slots;
      if (data.label(n.index) == data.label(i)) ++matches;
    }
  }
  const double local_accuracy =
      static_cast<double>(matches) / static_cast<double>(slots);

  // Global reduction to the same dimensionality.
  ReductionOptions global_options;
  global_options.scaling = PcaScaling::kCorrelation;
  global_options.strategy = SelectionStrategy::kCoherenceOrder;
  global_options.target_dim = 6;
  Result<ReductionPipeline> global = ReductionPipeline::Fit(data, global_options);
  ASSERT_TRUE(global.ok());
  auto metric = MakeMetric(MetricKind::kEuclidean);
  const double global_accuracy = KnnPredictionAccuracy(
      global->TransformDataset(data).features(), data.labels(), 3, *metric);

  EXPECT_GT(local_accuracy, global_accuracy);
}

TEST(LocalEngineTest, KMeansPartitionModeWorks) {
  Dataset data = MixedPopulations(406);
  LocalEngineOptions options = DefaultOptions();
  options.use_projected_clustering = false;
  Result<LocalReducedSearchEngine> engine =
      LocalReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->Query(data.Record(0), 3).size(), 3u);
}

TEST(LocalEngineTest, MultiProbeRanksInStudentizedSpace) {
  // With more than one probe, merged candidates are re-ranked by the metric
  // in the shared studentized space; the reported distances must therefore
  // be the studentized-space distances and non-decreasing.
  Dataset data = MixedPopulations(410);
  LocalEngineOptions options = DefaultOptions();
  options.num_clusters = 3;
  options.probe_clusters = 3;
  Result<LocalReducedSearchEngine> engine =
      LocalReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(engine.ok());

  const Matrix studentized =
      ColumnAffineTransform::FitZScore(data.features())
          .ApplyToRows(data.features());
  auto metric = MakeMetric(MetricKind::kEuclidean);
  const size_t q = 4;
  const auto neighbors = engine->Query(data.Record(q), 5, q);
  double previous = 0.0;
  for (const Neighbor& n : neighbors) {
    EXPECT_GE(n.distance, previous);
    previous = n.distance;
    const double expected =
        metric->Distance(studentized.Row(q), studentized.Row(n.index));
    EXPECT_NEAR(n.distance, expected, 1e-9);
  }
}

TEST(LocalEngineTest, MultiProbeReturnsMoreCandidates) {
  Dataset data = MixedPopulations(407);
  LocalEngineOptions options = DefaultOptions();
  options.num_clusters = 4;
  options.probe_clusters = 4;
  Result<LocalReducedSearchEngine> engine =
      LocalReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(engine.ok());
  QueryStats stats;
  const auto neighbors =
      engine->Query(data.Record(3), 6, KnnIndex::kNoSkip, &stats);
  EXPECT_EQ(neighbors.size(), 6u);
  EXPECT_EQ(stats.nodes_visited, 4u);  // all four localities probed
}

TEST(LocalEngineTest, RejectsBadOptions) {
  Dataset data = MixedPopulations(408);
  LocalEngineOptions options = DefaultOptions();
  options.num_clusters = 0;
  EXPECT_FALSE(LocalReducedSearchEngine::Build(data, options).ok());
  options = DefaultOptions();
  options.probe_clusters = 0;
  EXPECT_FALSE(LocalReducedSearchEngine::Build(data, options).ok());
  options = DefaultOptions();
  options.num_clusters = data.NumRecords() + 1;
  EXPECT_FALSE(LocalReducedSearchEngine::Build(data, options).ok());
}

TEST(LocalEngineTest, DescribeListsLocalities) {
  Dataset data = MixedPopulations(409);
  Result<LocalReducedSearchEngine> engine =
      LocalReducedSearchEngine::Build(data, DefaultOptions());
  ASSERT_TRUE(engine.ok());
  const std::string desc = engine->Describe();
  EXPECT_NE(desc.find("projected clustering"), std::string::npos);
  EXPECT_NE(desc.find("locality 0"), std::string::npos);
  EXPECT_NE(desc.find("locality 1"), std::string::npos);
}

}  // namespace
}  // namespace cohere
