#include "core/dynamic_engine.h"

#include <gtest/gtest.h>

#include "common/fault.h"
#include "data/synthetic.h"

namespace cohere {
namespace {

LatentFactorConfig PopulationConfig(uint64_t seed) {
  LatentFactorConfig config;
  config.num_records = 300;
  config.num_attributes = 30;
  config.num_concepts = 5;
  config.num_classes = 2;
  config.noise_stddev = 0.5;
  config.seed = seed;
  return config;
}

DynamicEngineOptions DefaultOptions() {
  DynamicEngineOptions options;
  options.reduction.scaling = PcaScaling::kCorrelation;
  options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
  options.reduction.target_dim = 5;
  options.drift_threshold = 1.5;
  options.drift_window = 40;
  return options;
}

TEST(DynamicEngineTest, BuildsAndQueries) {
  Dataset data = GenerateLatentFactor(PopulationConfig(701));
  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(data, DefaultOptions());
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index->size(), 300u);
  const auto neighbors = index->Query(data.Record(0), 4);
  ASSERT_EQ(neighbors.size(), 4u);
  EXPECT_EQ(neighbors[0].index, 0u);
  EXPECT_NEAR(neighbors[0].distance, 0.0, 1e-9);
  EXPECT_EQ(index->label(0), data.label(0));
}

TEST(DynamicEngineTest, InsertedRecordsAreQueryable) {
  Dataset data = GenerateLatentFactor(PopulationConfig(702));
  auto [fit_part, insert_part] = data.Split(250);
  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(fit_part, DefaultOptions());
  ASSERT_TRUE(index.ok());

  const Vector inserted = insert_part.Record(0);
  ASSERT_TRUE(index->Insert(inserted, insert_part.label(0)).ok());
  EXPECT_EQ(index->size(), 251u);
  // Querying with the inserted record finds it first.
  const auto neighbors = index->Query(inserted, 1);
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0].index, 250u);
  EXPECT_NEAR(neighbors[0].distance, 0.0, 1e-9);
  EXPECT_EQ(index->label(250), insert_part.label(0));
}

TEST(DynamicEngineTest, InsertRejectsWrongDimensionality) {
  Dataset data = GenerateLatentFactor(PopulationConfig(703));
  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(data, DefaultOptions());
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index->Insert(Vector(31)).ok());
}

TEST(DynamicEngineTest, SameDistributionInsertsDoNotAlarm) {
  Dataset data = GenerateLatentFactor(PopulationConfig(704));
  auto [fit_part, insert_part] = data.Split(200);
  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(fit_part, DefaultOptions());
  ASSERT_TRUE(index.ok());
  for (size_t i = 0; i < insert_part.NumRecords(); ++i) {
    ASSERT_TRUE(index->Insert(insert_part.Record(i)).ok());
  }
  EXPECT_LT(index->DriftRatio(), 1.3);
  EXPECT_FALSE(index->NeedsRefit());
}

TEST(DynamicEngineTest, DistributionShiftRaisesDriftAlarm) {
  Dataset fit_data = GenerateLatentFactor(PopulationConfig(705));
  // A different seed gives different concept loadings: the fitted axis
  // system cannot represent the new population compactly.
  Dataset shifted = GenerateLatentFactor(PopulationConfig(99705));

  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(fit_data, DefaultOptions());
  ASSERT_TRUE(index.ok());
  EXPECT_NEAR(index->DriftRatio(), 1.0, 1e-9);  // empty window

  for (size_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(index->Insert(shifted.Record(i)).ok());
  }
  EXPECT_GT(index->DriftRatio(), 1.5);
  EXPECT_TRUE(index->NeedsRefit());
}

TEST(DynamicEngineTest, RefitClearsAlarmAndKeepsRecords) {
  Dataset fit_data = GenerateLatentFactor(PopulationConfig(706));
  Dataset shifted = GenerateLatentFactor(PopulationConfig(99706));

  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(fit_data, DefaultOptions());
  ASSERT_TRUE(index.ok());
  for (size_t i = 0; i < 80; ++i) {
    ASSERT_TRUE(index->Insert(shifted.Record(i), shifted.label(i)).ok());
  }
  ASSERT_TRUE(index->NeedsRefit());

  const size_t before = index->size();
  ASSERT_TRUE(index->Refit().ok());
  EXPECT_EQ(index->size(), before);
  EXPECT_FALSE(index->NeedsRefit());
  EXPECT_NEAR(index->DriftRatio(), 1.0, 1e-9);

  // Inserted records are still queryable after the refit.
  const auto neighbors = index->Query(shifted.Record(0), 1);
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0].index, fit_data.NumRecords());
}

TEST(DynamicEngineTest, AlarmRequiresEnoughObservations) {
  Dataset fit_data = GenerateLatentFactor(PopulationConfig(707));
  Dataset shifted = GenerateLatentFactor(PopulationConfig(99707));
  DynamicEngineOptions options = DefaultOptions();
  options.drift_window = 100;
  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(fit_data, options);
  ASSERT_TRUE(index.ok());
  // Fewer than a quarter of the window: no alarm even with huge drift.
  for (size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(index->Insert(shifted.Record(i)).ok());
  }
  EXPECT_FALSE(index->NeedsRefit());
}

TEST(DynamicEngineTest, SkipIndexWorks) {
  Dataset data = GenerateLatentFactor(PopulationConfig(708));
  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(data, DefaultOptions());
  ASSERT_TRUE(index.ok());
  for (const Neighbor& n : index->Query(data.Record(5), 3, 5)) {
    EXPECT_NE(n.index, 5u);
  }
}

TEST(DynamicEngineTest, RejectsBadOptions) {
  Dataset data = GenerateLatentFactor(PopulationConfig(709));
  DynamicEngineOptions options = DefaultOptions();
  options.drift_threshold = 0.5;
  EXPECT_FALSE(DynamicReducedIndex::Build(data, options).ok());
  options = DefaultOptions();
  options.drift_window = 0;
  EXPECT_FALSE(DynamicReducedIndex::Build(data, options).ok());
  EXPECT_FALSE(
      DynamicReducedIndex::Build(Dataset(Matrix(0, 3)), DefaultOptions())
          .ok());
}

TEST(DynamicEngineTest, FailedRefitKeepsTheOldProjectionServing) {
  Dataset data = GenerateLatentFactor(PopulationConfig(711));
  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(data, DefaultOptions());
  ASSERT_TRUE(index.ok());
  const auto before = index->Query(data.Record(3), 5);
  const std::vector<size_t> components_before = index->pipeline().components();

  fault::Arm(fault::kPointDynamicRefit, 1.0);
  const Status failed = index->Refit();
  fault::DisarmAll();
  fault::ResetCounters();

  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kNumericalError);
  // Transactional: the old pipeline answers exactly as before the failure.
  EXPECT_EQ(index->Query(data.Record(3), 5), before);
  EXPECT_EQ(index->pipeline().components(), components_before);
}

TEST(DynamicEngineTest, RefitFailureBackoffGrowsAndGatesNeedsRefit) {
  Dataset data = GenerateLatentFactor(PopulationConfig(712));
  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(data, DefaultOptions());
  ASSERT_TRUE(index.ok());
  ASSERT_EQ(index->RefitBackoffRemaining(), 0u);

  fault::Arm(fault::kPointDynamicRefit, 1.0);
  ASSERT_FALSE(index->Refit().ok());
  EXPECT_EQ(index->RefitBackoffRemaining(), 8u);
  ASSERT_FALSE(index->Refit().ok());  // explicit Refit still attempts
  EXPECT_EQ(index->RefitBackoffRemaining(), 16u);
  ASSERT_FALSE(index->Refit().ok());
  EXPECT_EQ(index->RefitBackoffRemaining(), 32u);
  fault::DisarmAll();
  fault::ResetCounters();

  // Backoff gates only the recommendation; inserts tick it down.
  EXPECT_FALSE(index->NeedsRefit());
  const size_t before = index->RefitBackoffRemaining();
  ASSERT_TRUE(index->Insert(data.Record(0)).ok());
  EXPECT_EQ(index->RefitBackoffRemaining(), before - 1);

  // A successful explicit Refit clears the backoff entirely.
  ASSERT_TRUE(index->Refit().ok());
  EXPECT_EQ(index->RefitBackoffRemaining(), 0u);
}

TEST(DynamicEngineTest, BackoffCapsAtTheConfiguredCeiling) {
  Dataset data = GenerateLatentFactor(PopulationConfig(713));
  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(data, DefaultOptions());
  ASSERT_TRUE(index.ok());
  fault::Arm(fault::kPointDynamicRefit, 1.0);
  for (int i = 0; i < 8; ++i) ASSERT_FALSE(index->Refit().ok());
  fault::DisarmAll();
  fault::ResetCounters();
  EXPECT_EQ(index->RefitBackoffRemaining(), 128u);
}

TEST(DynamicEngineTest, QueryDeadlineTruncatesTheScan) {
  Dataset data = GenerateLatentFactor(PopulationConfig(714));
  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(data, DefaultOptions());
  ASSERT_TRUE(index.ok());

  QueryLimits limits;
  limits.deadline_us = 1e-3;  // already expired at the first control check
  QueryStats stats;
  index->Query(data.Record(0), 5, KnnIndex::kNoSkip, &stats, limits);
  EXPECT_TRUE(stats.truncated);

  CancelToken token;
  token.Cancel();
  QueryLimits cancelled;
  cancelled.cancel = &token;
  QueryStats cancel_stats;
  index->Query(data.Record(0), 5, KnnIndex::kNoSkip, &cancel_stats, cancelled);
  EXPECT_TRUE(cancel_stats.truncated);

  // Inactive limits leave the answer exact and untruncated.
  QueryStats exact_stats;
  const auto exact =
      index->Query(data.Record(0), 5, KnnIndex::kNoSkip, &exact_stats,
                   QueryLimits{});
  EXPECT_FALSE(exact_stats.truncated);
  EXPECT_EQ(exact, index->Query(data.Record(0), 5));
}

TEST(DynamicEngineTest, DescribeReportsDrift) {
  Dataset data = GenerateLatentFactor(PopulationConfig(710));
  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(data, DefaultOptions());
  ASSERT_TRUE(index.ok());
  const std::string desc = index->Describe();
  EXPECT_NE(desc.find("n=300"), std::string::npos);
  EXPECT_NE(desc.find("drift="), std::string::npos);
}

}  // namespace
}  // namespace cohere
