// EXPLAIN profiles are only trustworthy if their numbers are the query's
// numbers: the profile's totals must equal the caller's merged QueryStats,
// and the phase counters must partition those totals exactly — for every
// backend, on the cache-miss and cache-hit paths, and through multi-probe
// scatter-gather. This suite also pins the truncated-latency split: a storm
// of deadline-truncated queries lands in `*.query_latency_us.truncated` and
// leaves the main latency histogram bit-identical.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/local_engine.h"
#include "core/serving.h"
#include "data/synthetic.h"
#include "data/uci_like.h"
#include "index/knn.h"
#include "obs/metrics.h"
#include "obs/query_metrics.h"

namespace cohere {
namespace {

EngineOptions StaticOptions(IndexBackend backend) {
  EngineOptions options;
  options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
  options.reduction.target_dim = 8;
  options.backend = backend;
  options.cache_budget_bytes = 1 << 20;
  options.explain = true;
  return options;
}

LocalEngineOptions LocalOptions() {
  LocalEngineOptions options;
  options.num_clusters = 3;
  options.cluster_subspace_dim = 10;
  options.reduction.scaling = PcaScaling::kCorrelation;
  options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
  options.reduction.target_dim = 6;
  options.probe_clusters = 2;
  options.explain = true;
  return options;
}

Dataset MixedPopulations(uint64_t seed) {
  MultiPopulationConfig config;
  LatentFactorConfig pop;
  pop.num_records = 180;
  pop.num_attributes = 40;
  pop.num_concepts = 6;
  pop.num_classes = 4;
  pop.class_separation = 1.0;
  pop.noise_stddev = 0.4;
  pop.seed = seed;
  config.populations.push_back(pop);
  pop.seed = seed + 100;
  config.populations.push_back(pop);
  config.center_separation = 2.0;
  config.seed = seed + 1;
  return GenerateMultiPopulation(config);
}

struct PhaseSums {
  uint64_t distance_evaluations = 0;
  uint64_t nodes_visited = 0;
  uint64_t candidates_refined = 0;
};

PhaseSums SumPhases(const obs::QueryProfile& profile) {
  PhaseSums sums;
  for (const obs::QueryPhase& phase : profile.phases) {
    sums.distance_evaluations += phase.distance_evaluations;
    sums.nodes_visited += phase.nodes_visited;
    sums.candidates_refined += phase.candidates_refined;
  }
  return sums;
}

void ExpectProfileMatchesStats(const obs::QueryProfile& profile,
                               const QueryStats& stats) {
  // Totals are the query's merged QueryStats, verbatim.
  EXPECT_EQ(profile.distance_evaluations, stats.distance_evaluations);
  EXPECT_EQ(profile.nodes_visited, stats.nodes_visited);
  EXPECT_EQ(profile.candidates_refined, stats.candidates_refined);
  EXPECT_EQ(profile.truncated, stats.truncated);
  // And the phases partition the totals exactly — no double counting, no
  // work unattributed to a phase.
  const PhaseSums sums = SumPhases(profile);
  EXPECT_EQ(sums.distance_evaluations, profile.distance_evaluations);
  EXPECT_EQ(sums.nodes_visited, profile.nodes_visited);
  EXPECT_EQ(sums.candidates_refined, profile.candidates_refined);
}

bool HasPhase(const obs::QueryProfile& profile, const std::string& name) {
  for (const obs::QueryPhase& phase : profile.phases) {
    if (phase.name == name) return true;
  }
  return false;
}

TEST(ServingExplainTest, PhaseCountersSumToTotalsOnEveryBackend) {
  const IndexBackend backends[] = {
      IndexBackend::kLinearScan, IndexBackend::kKdTree, IndexBackend::kVaFile,
      IndexBackend::kVpTree, IndexBackend::kRStarTree};
  Dataset data = IonosphereLike(407);
  for (IndexBackend backend : backends) {
    SCOPED_TRACE(IndexBackendName(backend));
    Result<ReducedSearchEngine> engine =
        ReducedSearchEngine::Build(data, StaticOptions(backend));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    const Vector query = data.Record(5);

    // Pass 1: cache miss — real index work, attributed to the scan phase.
    QueryStats miss_stats;
    obs::QueryProfile miss;
    engine->serving().Query(query, 4, KnnIndex::kNoSkip, &miss_stats,
                            QueryLimits(), &miss);
    EXPECT_TRUE(miss.cacheable);
    EXPECT_FALSE(miss.cache_hit);
    EXPECT_GT(miss.distance_evaluations, 0u);
    ExpectProfileMatchesStats(miss, miss_stats);
    EXPECT_TRUE(HasPhase(miss, "cache.lookup"));
    EXPECT_TRUE(HasPhase(miss, "project"));
    EXPECT_TRUE(HasPhase(miss, "scan"));
    EXPECT_TRUE(HasPhase(miss, "cache.insert"));

    // Pass 2: cache hit — zero work, and the equality holds trivially but
    // must still be *reported* consistently.
    QueryStats hit_stats;
    obs::QueryProfile hit;
    engine->serving().Query(query, 4, KnnIndex::kNoSkip, &hit_stats,
                            QueryLimits(), &hit);
    EXPECT_TRUE(hit.cache_hit);
    EXPECT_EQ(hit.distance_evaluations, 0u);
    ExpectProfileMatchesStats(hit, hit_stats);
    EXPECT_TRUE(HasPhase(hit, "cache.lookup"));
    EXPECT_FALSE(HasPhase(hit, "scan"));
  }
}

TEST(ServingExplainTest, LastProfileCapturesSerialQueriesUnderExplainOption) {
  Dataset data = IonosphereLike(411);
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, StaticOptions(IndexBackend::kKdTree));
  ASSERT_TRUE(engine.ok());

  obs::QueryProfile before;
  EXPECT_FALSE(engine->serving().LastProfile(&before));

  QueryStats stats;
  engine->Query(data.Record(3), 4, KnnIndex::kNoSkip, &stats);
  obs::QueryProfile profile;
  ASSERT_TRUE(engine->serving().LastProfile(&profile));
  EXPECT_EQ(profile.scope, "engine");
  EXPECT_EQ(profile.k, 4u);
  EXPECT_EQ(profile.snapshot_version, engine->serving().version());
  ExpectProfileMatchesStats(profile, stats);
}

TEST(ServingExplainTest, MultiProbeProfileBreaksWorkDownPerShard) {
  Dataset data = MixedPopulations(421);
  Result<LocalReducedSearchEngine> engine =
      LocalReducedSearchEngine::Build(data, LocalOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  QueryStats stats;
  obs::QueryProfile profile;
  engine->serving().Query(data.Record(17), 5, KnnIndex::kNoSkip, &stats,
                          QueryLimits(), &profile);
  ExpectProfileMatchesStats(profile, stats);
  EXPECT_TRUE(HasPhase(profile, "route"));
  EXPECT_TRUE(HasPhase(profile, "merge"));
  // Two probed shards => two probe phases, each tagged with its shard id
  // and carrying that shard's work (including the +1 routing node).
  size_t probes = 0;
  for (const obs::QueryPhase& phase : profile.phases) {
    if (phase.name != "probe") continue;
    ++probes;
    EXPECT_GE(phase.shard, 0);
    EXPECT_GE(phase.nodes_visited, 1u);
    EXPECT_FALSE(phase.detail.empty());
  }
  EXPECT_EQ(probes, 2u);
}

TEST(ServingExplainTest, ToJsonRendersAllSections) {
  Dataset data = IonosphereLike(431);
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, StaticOptions(IndexBackend::kVaFile));
  ASSERT_TRUE(engine.ok());

  QueryStats stats;
  obs::QueryProfile profile;
  engine->serving().Query(data.Record(9), 3, KnnIndex::kNoSkip, &stats,
                          QueryLimits(), &profile);
  const std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"scope\": \"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"k\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"totals\": {\"distance_evaluations\": "),
            std::string::npos);
  EXPECT_NE(json.find("\"phases\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"scan\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\": \"va_file\""), std::string::npos);
  EXPECT_NE(json.find("\"deadline_us\": "), std::string::npos);
}

TEST(ServingExplainTest, DeadlineFieldsReportBudgetAndHeadroom) {
  Dataset data = IonosphereLike(433);
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, StaticOptions(IndexBackend::kKdTree));
  ASSERT_TRUE(engine.ok());

  QueryLimits limits;
  limits.deadline_us = 5.0e6;  // generous: the query finishes well inside
  QueryStats stats;
  obs::QueryProfile profile;
  engine->serving().Query(data.Record(2), 4, KnnIndex::kNoSkip, &stats,
                          limits, &profile);
  EXPECT_DOUBLE_EQ(profile.deadline_us, 5.0e6);
  EXPECT_GT(profile.deadline_headroom_us, 0.0);
  EXPECT_LT(profile.deadline_headroom_us, 5.0e6);
  EXPECT_FALSE(profile.truncated);

  // No deadline: both fields are zero.
  obs::QueryProfile unbounded;
  engine->serving().Query(data.Record(2), 4, KnnIndex::kNoSkip, nullptr,
                          QueryLimits(), &unbounded);
  EXPECT_DOUBLE_EQ(unbounded.deadline_us, 0.0);
  EXPECT_DOUBLE_EQ(unbounded.deadline_headroom_us, 0.0);
}

TEST(ServingExplainTest, TruncationStormLeavesTheMainHistogramUntouched) {
  if (!obs::MetricsRegistry::Enabled()) GTEST_SKIP();
  Dataset data = IonosphereLike(439);
  EngineOptions options = StaticOptions(IndexBackend::kLinearScan);
  options.cache_budget_bytes = 0;  // keep every query on the index path
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(engine.ok());

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::LatencyHistogram* main_hist =
      registry.GetHistogram("engine.query_latency_us");
  obs::LatencyHistogram* truncated_hist =
      registry.GetHistogram("engine.query_latency_us.truncated");

  // Seed the main histogram with a healthy query so it has a tail to
  // protect, then snapshot it.
  engine->Query(data.Record(0), 4);
  const obs::LatencyHistogram::Bins main_before = main_hist->SnapshotBins();
  const uint64_t truncated_before = truncated_hist->TotalCount();
  const double p99_before = main_before.Quantile(0.99);

  // The storm: every query arrives already cancelled, so each one records
  // a truncated (near-zero-latency) sample.
  CancelToken cancel;
  cancel.Cancel();
  QueryLimits limits;
  limits.cancel = &cancel;
  constexpr size_t kStorm = 50;
  for (size_t i = 0; i < kStorm; ++i) {
    QueryStats stats;
    engine->Query(data.Record(1), 4, KnnIndex::kNoSkip, &stats, limits);
    ASSERT_TRUE(stats.truncated);
  }

  // Truncated samples all landed in the dedicated histogram...
  EXPECT_EQ(truncated_hist->TotalCount(), truncated_before + kStorm);
  // ...and the main histogram is bit-identical: same count, same bins,
  // and therefore the same p99.
  const obs::LatencyHistogram::Bins main_after = main_hist->SnapshotBins();
  EXPECT_EQ(main_after.TotalCount(), main_before.TotalCount());
  for (size_t b = 0; b < obs::LatencyHistogram::kNumBins; ++b) {
    ASSERT_EQ(main_after.bins[b], main_before.bins[b]) << "bin " << b;
  }
  EXPECT_EQ(main_after.Quantile(0.99), p99_before);
}

}  // namespace
}  // namespace cohere
