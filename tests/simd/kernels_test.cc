#include "simd/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "simd/dispatch.h"
#include "stats/rng.h"

namespace cohere {
namespace simd {
namespace {

// Independent scalar references, written out in this file so a drift in the
// production oracle (src/simd/kernels_internal.h) cannot hide: these repeat
// the historical Metric / VaFileIndex loops operation for operation.

double RefL2(const double* q, const double* row, size_t d) {
  double sum = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double t = q[j] - row[j];
    sum += t * t;
  }
  return sum;
}

double RefL1(const double* q, const double* row, size_t d) {
  double sum = 0.0;
  for (size_t j = 0; j < d; ++j) sum += std::fabs(q[j] - row[j]);
  return sum;
}

double RefLinf(const double* q, const double* row, size_t d) {
  double best = 0.0;
  for (size_t j = 0; j < d; ++j) best = std::max(best, std::fabs(q[j] - row[j]));
  return best;
}

double RefCosine(const double* q, const double* row, size_t d) {
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t j = 0; j < d; ++j) {
    dot += q[j] * row[j];
    na += q[j] * q[j];
    nb += row[j] * row[j];
  }
  if (na == 0.0 && nb == 0.0) return 0.0;
  if (na == 0.0 || nb == 0.0) return 1.0;
  const double sim = dot / std::sqrt(na * nb);
  return 1.0 - std::clamp(sim, -1.0, 1.0);
}

double RefFractional(const double* q, const double* row, size_t d, double p) {
  double sum = 0.0;
  for (size_t j = 0; j < d; ++j) sum += std::pow(std::fabs(q[j] - row[j]), p);
  return sum;
}

void RefVaBounds(const double* q, const uint8_t* code, size_t d,
                 const double* boundaries, size_t bstride, int kind,
                 double* lb_out, double* ub_out) {
  double lb = 0.0;
  double ub = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double* b = boundaries + j * bstride;
    const double lo = b[code[j]];
    const double hi = b[code[j] + 1];
    const double qj = q[j];
    double lb_j = 0.0;
    if (qj < lo) {
      lb_j = lo - qj;
    } else if (qj > hi) {
      lb_j = qj - hi;
    }
    const double ub_j = std::max(std::fabs(qj - lo), std::fabs(qj - hi));
    switch (kind) {
      case 0:  // L2
        lb += lb_j * lb_j;
        ub += ub_j * ub_j;
        break;
      case 1:  // L1
        lb += lb_j;
        ub += ub_j;
        break;
      default:  // Linf
        lb = std::max(lb, lb_j);
        ub = std::max(ub, ub_j);
        break;
    }
  }
  *lb_out = lb;
  *ub_out = ub;
}

uint64_t Bits(double x) {
  uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

::testing::AssertionResult BitEqual(double actual, double expected) {
  // Any-NaN equals any-NaN: IEEE leaves the sign/payload of a generated or
  // propagated NaN unspecified, and GCC lowers the add/mul intrinsics to
  // generic (commutable) vector ops, so which NaN operand x86 selects can
  // differ between the scalar and vector pipelines. Everything non-NaN —
  // finite values, ±0, ±inf — stays bit-strict.
  if (std::isnan(actual) && std::isnan(expected)) {
    return ::testing::AssertionSuccess();
  }
  if (Bits(actual) == Bits(expected)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "bit mismatch: got " << actual << " (0x" << std::hex
         << Bits(actual) << "), want " << expected << " (0x" << Bits(expected)
         << ")";
}

std::vector<Level> AvailableLevels() {
  std::vector<Level> levels = {Level::kScalar};
  if (DetectedLevel() >= Level::kSse2) levels.push_back(Level::kSse2);
  if (DetectedLevel() >= Level::kAvx2) levels.push_back(Level::kAvx2);
  return levels;
}

// Gaussian fill with a sprinkling of exactly-representable special values so
// tails, denormals and non-finite propagation are all exercised.
std::vector<double> FillValues(size_t count, uint64_t seed,
                               bool with_specials) {
  Rng rng(seed);
  std::vector<double> v(count);
  for (double& x : v) x = rng.Gaussian();
  if (with_specials && count >= 12) {
    v[0] = 0.0;
    v[1] = -0.0;
    v[2] = 5e-324;   // smallest denormal
    v[3] = -1e-308;  // denormal-range magnitude
    v[4] = 1e300;
    v[5] = -1e300;
    v[6] = std::numeric_limits<double>::infinity();
    v[7] = -std::numeric_limits<double>::infinity();
    v[8] = std::numeric_limits<double>::quiet_NaN();
    v[9] = 1.0;
    v[10] = -1.0;
    v[11] = 0.5;
  }
  return v;
}

const size_t kDims[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17, 31, 32, 33};
const size_t kRowCounts[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 15, 16, 17};

TEST(SimdKernelParityTest, BlockKernelsMatchScalarReferenceBitwise) {
  for (Level level : AvailableLevels()) {
    const KernelTable& k = KernelsFor(level);
    for (size_t d : kDims) {
      for (size_t n_rows : kRowCounts) {
        const uint64_t seed = 1000 + d * 131 + n_rows;
        const std::vector<double> q = FillValues(std::max<size_t>(d, 1), seed,
                                                 /*with_specials=*/false);
        const std::vector<double> rows =
            FillValues(std::max<size_t>(n_rows * d, 1), seed + 1,
                       /*with_specials=*/true);
        std::vector<double> out(n_rows + 1, -7.0);

        k.l2_block(q.data(), rows.data(), n_rows, d, out.data());
        for (size_t r = 0; r < n_rows; ++r) {
          EXPECT_TRUE(BitEqual(out[r], RefL2(q.data(), rows.data() + r * d, d)))
              << LevelName(level) << " l2 d=" << d << " r=" << r;
        }
        k.l1_block(q.data(), rows.data(), n_rows, d, out.data());
        for (size_t r = 0; r < n_rows; ++r) {
          EXPECT_TRUE(BitEqual(out[r], RefL1(q.data(), rows.data() + r * d, d)))
              << LevelName(level) << " l1 d=" << d << " r=" << r;
        }
        k.linf_block(q.data(), rows.data(), n_rows, d, out.data());
        for (size_t r = 0; r < n_rows; ++r) {
          EXPECT_TRUE(
              BitEqual(out[r], RefLinf(q.data(), rows.data() + r * d, d)))
              << LevelName(level) << " linf d=" << d << " r=" << r;
        }
        k.cosine_block(q.data(), rows.data(), n_rows, d, out.data());
        for (size_t r = 0; r < n_rows; ++r) {
          EXPECT_TRUE(
              BitEqual(out[r], RefCosine(q.data(), rows.data() + r * d, d)))
              << LevelName(level) << " cosine d=" << d << " r=" << r;
        }
        k.fractional_block(q.data(), rows.data(), n_rows, d, 0.5, out.data());
        for (size_t r = 0; r < n_rows; ++r) {
          EXPECT_TRUE(BitEqual(
              out[r], RefFractional(q.data(), rows.data() + r * d, d, 0.5)))
              << LevelName(level) << " fractional d=" << d << " r=" << r;
        }
      }
    }
  }
}

TEST(SimdKernelParityTest, SpecialValuesInQueryPropagateBitwise) {
  // NaN / inf / denormals in the QUERY hit every row of a group at once.
  for (Level level : AvailableLevels()) {
    const KernelTable& k = KernelsFor(level);
    const size_t d = 13;
    const size_t n_rows = 9;
    std::vector<double> q = FillValues(d, 77, /*with_specials=*/true);
    const std::vector<double> rows =
        FillValues(n_rows * d, 78, /*with_specials=*/false);
    std::vector<double> out(n_rows);
    k.l2_block(q.data(), rows.data(), n_rows, d, out.data());
    for (size_t r = 0; r < n_rows; ++r) {
      EXPECT_TRUE(BitEqual(out[r], RefL2(q.data(), rows.data() + r * d, d)))
          << LevelName(level) << " r=" << r;
    }
    k.linf_block(q.data(), rows.data(), n_rows, d, out.data());
    for (size_t r = 0; r < n_rows; ++r) {
      EXPECT_TRUE(BitEqual(out[r], RefLinf(q.data(), rows.data() + r * d, d)))
          << LevelName(level) << " r=" << r;
    }
  }
}

TEST(SimdKernelParityTest, UnalignedRowBasePointerIsSupported) {
  // Scans call kernels at RowPtr(base) for arbitrary base, so row pointers
  // are not 32-byte aligned in general.
  for (Level level : AvailableLevels()) {
    const KernelTable& k = KernelsFor(level);
    const size_t d = 7;
    const size_t n_rows = 6;
    const std::vector<double> backing =
        FillValues(n_rows * d + 1, 97, /*with_specials=*/false);
    const double* rows = backing.data() + 1;  // deliberately odd offset
    const std::vector<double> q = FillValues(d, 98, /*with_specials=*/false);
    std::vector<double> out(n_rows);
    k.l2_block(q.data(), rows, n_rows, d, out.data());
    for (size_t r = 0; r < n_rows; ++r) {
      EXPECT_TRUE(BitEqual(out[r], RefL2(q.data(), rows + r * d, d)))
          << LevelName(level) << " r=" << r;
    }
  }
}

TEST(SimdKernelParityTest, ZeroVectorCosineRulesHold) {
  for (Level level : AvailableLevels()) {
    const KernelTable& k = KernelsFor(level);
    const size_t d = 6;
    std::vector<double> rows(3 * d, 0.0);
    rows[2 * d + 0] = 3.0;  // row 2 nonzero
    const std::vector<double> zero_q(d, 0.0);
    std::vector<double> out(3);
    k.cosine_block(zero_q.data(), rows.data(), 3, d, out.data());
    EXPECT_EQ(out[0], 0.0) << "zero vs zero";
    EXPECT_EQ(out[1], 0.0);
    EXPECT_EQ(out[2], 1.0) << "zero vs nonzero";

    std::vector<double> q(d, 0.0);
    q[1] = 2.0;
    k.cosine_block(q.data(), rows.data(), 3, d, out.data());
    EXPECT_EQ(out[0], 1.0) << "nonzero vs zero";
  }
}

TEST(SimdKernelParityTest, MultiQueryBlockMatchesSingleQueryBitwise) {
  for (Level level : AvailableLevels()) {
    const KernelTable& k = KernelsFor(level);
    for (size_t n_queries : {size_t{1}, size_t{3}, size_t{4}, size_t{5}}) {
      const size_t d = 11;
      const size_t n_rows = 21;
      const std::vector<double> queries =
          FillValues(n_queries * d, 201 + n_queries, /*with_specials=*/false);
      const std::vector<double> rows =
          FillValues(n_rows * d, 202, /*with_specials=*/true);
      std::vector<double> multi(n_queries * n_rows);
      k.l2_multi_block(queries.data(), n_queries, rows.data(), n_rows, d,
                       multi.data());
      std::vector<double> single(n_rows);
      for (size_t qi = 0; qi < n_queries; ++qi) {
        k.l2_block(queries.data() + qi * d, rows.data(), n_rows, d,
                   single.data());
        for (size_t r = 0; r < n_rows; ++r) {
          EXPECT_TRUE(BitEqual(multi[qi * n_rows + r], single[r]))
              << LevelName(level) << " qi=" << qi << " r=" << r;
        }
      }
    }
  }
}

TEST(SimdKernelParityTest, VaBoundsMatchScalarReferenceBitwise) {
  const size_t cells = 8;
  const size_t bstride = cells + 1;
  for (Level level : AvailableLevels()) {
    const KernelTable& k = KernelsFor(level);
    decltype(k.va_bounds_l2) kernels[3] = {k.va_bounds_l2, k.va_bounds_l1,
                                           k.va_bounds_linf};
    for (size_t d : {size_t{1}, size_t{3}, size_t{8}, size_t{17}}) {
      for (size_t n_rows : kRowCounts) {
        Rng rng(300 + d * 31 + n_rows);
        // Ascending boundaries per dimension.
        std::vector<double> boundaries(d * bstride);
        for (size_t j = 0; j < d; ++j) {
          double v = rng.Gaussian() - 4.0;
          for (size_t c = 0; c < bstride; ++c) {
            boundaries[j * bstride + c] = v;
            v += std::fabs(rng.Gaussian()) + 1e-3;
          }
        }
        std::vector<uint8_t> codes(std::max<size_t>(n_rows * d, 1));
        for (uint8_t& c : codes) {
          c = static_cast<uint8_t>(
              rng.UniformInt(0, static_cast<int64_t>(cells - 1)));
        }
        std::vector<double> q = FillValues(d, 400 + d, /*with_specials=*/false);
        if (d >= 3) q[2] = std::numeric_limits<double>::quiet_NaN();
        std::vector<double> lb(n_rows + 1), ub(n_rows + 1);
        for (int kind = 0; kind < 3; ++kind) {
          kernels[kind](q.data(), codes.data(), n_rows, d, boundaries.data(),
                        bstride, lb.data(), ub.data());
          for (size_t r = 0; r < n_rows; ++r) {
            double want_lb;
            double want_ub;
            RefVaBounds(q.data(), codes.data() + r * d, d, boundaries.data(),
                        bstride, kind, &want_lb, &want_ub);
            EXPECT_TRUE(BitEqual(lb[r], want_lb))
                << LevelName(level) << " kind=" << kind << " lb r=" << r;
            EXPECT_TRUE(BitEqual(ub[r], want_ub))
                << LevelName(level) << " kind=" << kind << " ub r=" << r;
          }
        }
      }
    }
  }
}

TEST(SimdKernelTest, FastPairKernelsAgreeWithinRoundingSlack) {
  for (Level level : AvailableLevels()) {
    const KernelTable& k = KernelsFor(level);
    for (size_t d : {size_t{1}, size_t{5}, size_t{16}, size_t{33},
                     size_t{64}}) {
      const std::vector<double> a = FillValues(d, 500 + d, false);
      const std::vector<double> b = FillValues(d, 501 + d, false);
      const double l2 = RefL2(a.data(), b.data(), d);
      const double l1 = RefL1(a.data(), b.data(), d);
      const double linf = RefLinf(a.data(), b.data(), d);
      const double cos = RefCosine(a.data(), b.data(), d);
      EXPECT_NEAR(k.l2_pair_fast(a.data(), b.data(), d), l2,
                  1e-12 * (1.0 + l2));
      EXPECT_NEAR(k.l1_pair_fast(a.data(), b.data(), d), l1,
                  1e-12 * (1.0 + l1));
      // max is order-insensitive: exact at every level.
      EXPECT_TRUE(BitEqual(k.linf_pair_fast(a.data(), b.data(), d), linf));
      EXPECT_NEAR(k.cosine_pair_fast(a.data(), b.data(), d), cos, 1e-12);
    }
  }
}

TEST(SimdKernelTest, L2SquaredMatchesReferenceBitwise) {
  const size_t d = 19;
  const std::vector<double> a = FillValues(d, 600, true);
  const std::vector<double> b = FillValues(d, 601, false);
  EXPECT_TRUE(BitEqual(L2Squared(a.data(), b.data(), d),
                       RefL2(a.data(), b.data(), d)));
}

TEST(SimdDispatchTest, ParseLevelRoundTrips) {
  Level out = Level::kAvx2;
  EXPECT_TRUE(ParseLevel("scalar", &out));
  EXPECT_EQ(out, Level::kScalar);
  EXPECT_TRUE(ParseLevel("sse2", &out));
  EXPECT_EQ(out, Level::kSse2);
  EXPECT_TRUE(ParseLevel("avx2", &out));
  EXPECT_EQ(out, Level::kAvx2);
  out = Level::kSse2;
  EXPECT_FALSE(ParseLevel("avx512", &out));
  EXPECT_EQ(out, Level::kSse2) << "failed parse must not clobber";
  for (Level level : AvailableLevels()) {
    Level parsed;
    ASSERT_TRUE(ParseLevel(LevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
}

TEST(SimdDispatchTest, SetActiveLevelClampsToDetected) {
  const Level before = ActiveLevel();
  const Level installed = SetActiveLevelForTest(Level::kAvx2);
  EXPECT_LE(static_cast<int>(installed), static_cast<int>(DetectedLevel()));
  EXPECT_EQ(installed, ActiveLevel());
  const Level scalar = SetActiveLevelForTest(Level::kScalar);
  EXPECT_EQ(scalar, Level::kScalar);
  EXPECT_EQ(ActiveLevel(), Level::kScalar);
  SetActiveLevelForTest(before);  // restore for other tests
  EXPECT_EQ(ActiveLevel(), before);
}

TEST(SimdDispatchTest, ActiveKernelsTracksActiveLevel) {
  const Level before = ActiveLevel();
  for (Level level : AvailableLevels()) {
    SetActiveLevelForTest(level);
    EXPECT_EQ(&ActiveKernels(), &KernelsFor(level)) << LevelName(level);
  }
  SetActiveLevelForTest(before);
}

}  // namespace
}  // namespace simd
}  // namespace cohere
