#include "stats/descriptive.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cohere {
namespace {

TEST(DescriptiveTest, Mean) {
  EXPECT_DOUBLE_EQ(Mean(Vector{1.0, 2.0, 3.0}), 2.0);
  EXPECT_EQ(Mean(Vector()), 0.0);
}

TEST(DescriptiveTest, Variances) {
  const Vector v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(PopulationVariance(v), 4.0);
  EXPECT_NEAR(SampleVariance(v), 32.0 / 7.0, 1e-14);
  EXPECT_NEAR(SampleStdDev(v), std::sqrt(32.0 / 7.0), 1e-14);
}

TEST(DescriptiveTest, VarianceEdgeCases) {
  EXPECT_EQ(SampleVariance(Vector{5.0}), 0.0);
  EXPECT_EQ(PopulationVariance(Vector{5.0}), 0.0);
  EXPECT_EQ(PopulationVariance(Vector()), 0.0);
}

TEST(DescriptiveTest, RootMeanSquareAboutZero) {
  EXPECT_DOUBLE_EQ(RootMeanSquareAbout(Vector{3.0, 4.0}, 0.0),
                   std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(RootMeanSquareAbout(Vector{1.0, 1.0}, 1.0), 0.0);
  EXPECT_EQ(RootMeanSquareAbout(Vector(), 0.0), 0.0);
}

TEST(DescriptiveTest, QuantilesAndMedian) {
  const Vector v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Median(v), 2.5);
  EXPECT_DOUBLE_EQ(Median(Vector{1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 1.75);
}

TEST(DescriptiveTest, MinMax) {
  const Vector v{3.0, -1.0, 2.0};
  EXPECT_EQ(Min(v), -1.0);
  EXPECT_EQ(Max(v), 3.0);
}

TEST(DescriptiveTest, Summarize) {
  const Summary s = Summarize(Vector{1.0, 2.0, 3.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.stddev, 1.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 3.0);
}

TEST(DescriptiveTest, SummarizeEmpty) {
  const Summary s = Summarize(Vector());
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(DescriptiveDeathTest, EmptyInputAborts) {
  EXPECT_DEATH(Min(Vector()), "COHERE_CHECK");
  EXPECT_DEATH(Quantile(Vector(), 0.5), "COHERE_CHECK");
}

}  // namespace
}  // namespace cohere
