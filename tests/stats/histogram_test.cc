#include "stats/histogram.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace cohere {
namespace {

TEST(HistogramTest, BinsValues) {
  Histogram h(0.0, 10.0, 5);
  h.Add(1.0);   // bin 0
  h.Add(3.0);   // bin 1
  h.Add(9.9);   // bin 4
  EXPECT_EQ(h.Count(0), 1u);
  EXPECT_EQ(h.Count(1), 1u);
  EXPECT_EQ(h.Count(4), 1u);
  EXPECT_EQ(h.total_count(), 3u);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-5.0);
  h.Add(7.0);
  EXPECT_EQ(h.Count(0), 1u);
  EXPECT_EQ(h.Count(1), 1u);
}

TEST(HistogramTest, UpperEdgeGoesToLastBin) {
  Histogram h(0.0, 1.0, 4);
  h.Add(1.0);
  EXPECT_EQ(h.Count(3), 1u);
}

TEST(HistogramTest, FractionsAndCenters) {
  Histogram h(0.0, 4.0, 4);
  h.AddAll(Vector{0.5, 1.5, 1.7, 3.5});
  EXPECT_DOUBLE_EQ(h.Fraction(1), 0.5);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 0.5);
  EXPECT_DOUBLE_EQ(h.BinCenter(3), 3.5);
}

TEST(HistogramTest, FractionOfEmptyHistogramIsZero) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_EQ(h.Fraction(0), 0.0);
}

TEST(HistogramTest, AsciiRendering) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(0.6);
  h.Add(1.5);
  const std::string art = h.ToAscii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find(" 2\n"), std::string::npos);
}

// Regression: Add() used to cast the raw double straight to int, which is
// undefined behavior for NaN/inf and produced garbage bins under UBSan.
TEST(HistogramTest, NanGoesToNonFiniteCounterNotBins) {
  Histogram h(0.0, 1.0, 4);
  h.Add(std::numeric_limits<double>::quiet_NaN());
  h.Add(0.5);
  EXPECT_EQ(h.non_finite_count(), 1u);
  EXPECT_EQ(h.total_count(), 1u);
  size_t binned = 0;
  for (size_t b = 0; b < h.num_bins(); ++b) binned += h.Count(b);
  EXPECT_EQ(binned, 1u);
}

TEST(HistogramTest, InfinitiesClampToEdgeBins) {
  Histogram h(0.0, 1.0, 4);
  h.Add(std::numeric_limits<double>::infinity());
  h.Add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.Count(3), 1u);
  EXPECT_EQ(h.Count(0), 1u);
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_EQ(h.non_finite_count(), 0u);
}

TEST(HistogramTest, HugeFiniteValuesClampWithoutOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.Add(std::numeric_limits<double>::max());
  h.Add(-std::numeric_limits<double>::max());
  EXPECT_EQ(h.Count(3), 1u);
  EXPECT_EQ(h.Count(0), 1u);
}

TEST(HistogramTest, QuantileOfEmptyHistogramIsNan) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_TRUE(std::isnan(h.Quantile(0.5)));
}

TEST(HistogramTest, QuantileSingleSampleStaysInItsBin) {
  Histogram h(0.0, 10.0, 10);
  h.Add(3.5);  // bin 3 spans [3, 4)
  for (double q : {0.0, 0.25, 0.5, 1.0}) {
    const double est = h.Quantile(q);
    EXPECT_GE(est, 3.0) << "q=" << q;
    EXPECT_LE(est, 4.0) << "q=" << q;
  }
}

TEST(HistogramTest, QuantileSingleBinInterpolatesAcrossRange) {
  Histogram h(0.0, 1.0, 1);
  for (int i = 0; i < 100; ++i) h.Add(0.5);
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 1e-12);
  EXPECT_NEAR(h.Quantile(0.5), 0.5, 1e-12);
  EXPECT_NEAR(h.Quantile(1.0), 1.0, 1e-12);
}

TEST(HistogramTest, QuantilesAreMonotoneAndBracketUniformData) {
  Histogram h(0.0, 100.0, 20);
  for (int i = 0; i < 1000; ++i) h.Add(static_cast<double>(i) * 0.1);
  double prev = h.Quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double est = h.Quantile(q);
    EXPECT_GE(est, prev);
    prev = est;
  }
  // Uniform data on [0, 100): the interpolated median lands near 50.
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 5.0);
  EXPECT_NEAR(h.Quantile(0.95), 95.0, 5.0);
}

TEST(HistogramTest, AsciiBarWidthsStayProportional) {
  // Companion to the bar-math overflow fix (counts * max_width used to be
  // computed in size_t): widths now come from floating point and the
  // fullest bin always gets exactly max_width characters.
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 4; ++i) h.Add(0.25);
  h.Add(0.75);
  const std::string art = h.ToAscii(40);
  EXPECT_NE(art.find(std::string(40, '#') + " 4\n"), std::string::npos);
  EXPECT_NE(art.find(std::string(10, '#') + " 1\n"), std::string::npos);
}

TEST(HistogramDeathTest, BadConstructionAborts) {
  EXPECT_DEATH(Histogram(1.0, 1.0, 3), "COHERE_CHECK");
  EXPECT_DEATH(Histogram(0.0, 1.0, 0), "COHERE_CHECK");
}

TEST(HistogramDeathTest, OutOfRangeBinAborts) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DEATH(h.Count(2), "COHERE_CHECK");
}

}  // namespace
}  // namespace cohere
