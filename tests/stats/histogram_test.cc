#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace cohere {
namespace {

TEST(HistogramTest, BinsValues) {
  Histogram h(0.0, 10.0, 5);
  h.Add(1.0);   // bin 0
  h.Add(3.0);   // bin 1
  h.Add(9.9);   // bin 4
  EXPECT_EQ(h.Count(0), 1u);
  EXPECT_EQ(h.Count(1), 1u);
  EXPECT_EQ(h.Count(4), 1u);
  EXPECT_EQ(h.total_count(), 3u);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-5.0);
  h.Add(7.0);
  EXPECT_EQ(h.Count(0), 1u);
  EXPECT_EQ(h.Count(1), 1u);
}

TEST(HistogramTest, UpperEdgeGoesToLastBin) {
  Histogram h(0.0, 1.0, 4);
  h.Add(1.0);
  EXPECT_EQ(h.Count(3), 1u);
}

TEST(HistogramTest, FractionsAndCenters) {
  Histogram h(0.0, 4.0, 4);
  h.AddAll(Vector{0.5, 1.5, 1.7, 3.5});
  EXPECT_DOUBLE_EQ(h.Fraction(1), 0.5);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 0.5);
  EXPECT_DOUBLE_EQ(h.BinCenter(3), 3.5);
}

TEST(HistogramTest, FractionOfEmptyHistogramIsZero) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_EQ(h.Fraction(0), 0.0);
}

TEST(HistogramTest, AsciiRendering) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(0.6);
  h.Add(1.5);
  const std::string art = h.ToAscii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find(" 2\n"), std::string::npos);
}

TEST(HistogramDeathTest, BadConstructionAborts) {
  EXPECT_DEATH(Histogram(1.0, 1.0, 3), "COHERE_CHECK");
  EXPECT_DEATH(Histogram(0.0, 1.0, 0), "COHERE_CHECK");
}

TEST(HistogramDeathTest, OutOfRangeBinAborts) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DEATH(h.Count(2), "COHERE_CHECK");
}

}  // namespace
}  // namespace cohere
