#include "stats/normal.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cohere {
namespace {

TEST(NormalPdfTest, KnownValues) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-15);
  EXPECT_NEAR(NormalPdf(1.0), 0.24197072451914337, 1e-15);
  EXPECT_DOUBLE_EQ(NormalPdf(2.0), NormalPdf(-2.0));
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(NormalCdf(-1.0), 0.15865525393145705, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(NormalCdf(-6.0), 9.865876450377018e-10, 1e-18);
}

TEST(NormalCdfTest, Monotone) {
  double prev = 0.0;
  for (double z = -8.0; z <= 8.0; z += 0.25) {
    const double p = NormalCdf(z);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(NormalQuantileTest, InvertsCdf) {
  for (double p = 0.001; p < 1.0; p += 0.017) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-12) << "p=" << p;
  }
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.8413447460685429), 1.0, 1e-9);
}

TEST(NormalQuantileTest, TailBehaviour) {
  EXPECT_TRUE(std::isinf(NormalQuantile(0.0)));
  EXPECT_TRUE(std::isinf(NormalQuantile(1.0)));
  EXPECT_LT(NormalQuantile(0.0), 0.0);
  EXPECT_GT(NormalQuantile(1.0), 0.0);
  EXPECT_NEAR(NormalQuantile(1e-10), -6.361340902404056, 1e-6);
}

TEST(TwoSidedNormalMassTest, MatchesCdfIdentity) {
  // 2*Phi(z) - 1 for z >= 0.
  for (double z = 0.0; z <= 5.0; z += 0.1) {
    EXPECT_NEAR(TwoSidedNormalMass(z), 2.0 * NormalCdf(z) - 1.0, 1e-12);
  }
}

TEST(TwoSidedNormalMassTest, SymmetricInSign) {
  EXPECT_DOUBLE_EQ(TwoSidedNormalMass(1.5), TwoSidedNormalMass(-1.5));
}

TEST(TwoSidedNormalMassTest, PaperConstantAtOneSigma) {
  // The paper's Section 3 result: P(D(d), e_i) = 2*Phi(1) - 1 ~= 0.68.
  EXPECT_NEAR(TwoSidedNormalMass(1.0), 0.6826894921370859, 1e-12);
}

TEST(TwoSidedNormalMassTest, Bounds) {
  EXPECT_EQ(TwoSidedNormalMass(0.0), 0.0);
  EXPECT_NEAR(TwoSidedNormalMass(40.0), 1.0, 1e-15);
}

}  // namespace
}  // namespace cohere
