#include "stats/covariance.h"

#include <cmath>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/parallel.h"

namespace cohere {
namespace {

using testing_util::ExpectMatrixNear;

TEST(ColumnStatsTest, MeansAndStdDevs) {
  Matrix data{{1.0, 10.0}, {3.0, 30.0}};
  Vector means = ColumnMeans(data);
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 20.0);
  Vector stds = ColumnStdDevs(data);
  EXPECT_DOUBLE_EQ(stds[0], 1.0);
  EXPECT_DOUBLE_EQ(stds[1], 10.0);
}

TEST(CovarianceTest, KnownTwoColumnCase) {
  // Perfectly correlated columns y = 2x.
  Matrix data{{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
  Matrix cov = CovarianceMatrix(data);
  const double var_x = 2.0 / 3.0;  // population variance of {1,2,3}
  EXPECT_NEAR(cov(0, 0), var_x, 1e-14);
  EXPECT_NEAR(cov(1, 1), 4.0 * var_x, 1e-14);
  EXPECT_NEAR(cov(0, 1), 2.0 * var_x, 1e-14);
  EXPECT_NEAR(cov(0, 1), cov(1, 0), 1e-15);
}

TEST(CovarianceTest, TraceIsMeanSquaredDeviationFromCentroid) {
  // The paper's invariant: trace(C) equals the mean squared Euclidean
  // deviation of records from the centroid.
  Rng rng(61);
  Matrix data = testing_util::RandomMatrix(50, 7, &rng);
  Matrix cov = CovarianceMatrix(data);
  const Vector mean = ColumnMeans(data);
  double msd = 0.0;
  for (size_t i = 0; i < data.rows(); ++i) {
    for (size_t j = 0; j < data.cols(); ++j) {
      const double d = data.At(i, j) - mean[j];
      msd += d * d;
    }
  }
  msd /= static_cast<double>(data.rows());
  EXPECT_NEAR(cov.Trace(), msd, 1e-10);
}

TEST(CorrelationMatrixTest, UnitDiagonalAndBounds) {
  Rng rng(62);
  Matrix data = testing_util::RandomMatrix(40, 5, &rng);
  Matrix corr = CorrelationMatrix(data);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(corr(i, i), 1.0);
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_LE(std::fabs(corr(i, j)), 1.0 + 1e-12);
    }
  }
}

TEST(CorrelationMatrixTest, PerfectCorrelationIsOne) {
  Matrix data{{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
  Matrix corr = CorrelationMatrix(data);
  EXPECT_NEAR(corr(0, 1), 1.0, 1e-12);
}

TEST(CorrelationMatrixTest, ConstantColumnStaysInert) {
  Matrix data{{1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}};
  Matrix corr = CorrelationMatrix(data);
  EXPECT_DOUBLE_EQ(corr(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(corr(0, 1), 0.0);
}

TEST(PearsonTest, KnownValues) {
  EXPECT_NEAR(
      PearsonCorrelation(Vector{1.0, 2.0, 3.0}, Vector{2.0, 4.0, 6.0}), 1.0,
      1e-14);
  EXPECT_NEAR(
      PearsonCorrelation(Vector{1.0, 2.0, 3.0}, Vector{6.0, 4.0, 2.0}), -1.0,
      1e-14);
  EXPECT_EQ(PearsonCorrelation(Vector{1.0, 1.0}, Vector{2.0, 3.0}), 0.0);
}

TEST(AverageRanksTest, HandlesTies) {
  const Vector ranks = AverageRanks(Vector{10.0, 20.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(SpearmanTest, MonotoneNonlinearIsOne) {
  // Spearman sees the monotone relationship Pearson would understate.
  Vector x{1.0, 2.0, 3.0, 4.0, 5.0};
  Vector y{1.0, 8.0, 27.0, 64.0, 125.0};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-14);
  Vector y_rev{125.0, 64.0, 27.0, 8.0, 1.0};
  EXPECT_NEAR(SpearmanCorrelation(x, y_rev), -1.0, 1e-14);
}

TEST(SpearmanTest, TinyInputs) {
  EXPECT_EQ(SpearmanCorrelation(Vector{1.0}, Vector{2.0}), 0.0);
}

TEST(CorrelationTest, ZeroVarianceColumnsStayFinite) {
  // Column 1 is constant: its correlation row/column must be zero (no
  // correlation signal) with a 1 on the diagonal — never NaN or Inf.
  Matrix data(6, 3);
  for (size_t i = 0; i < data.rows(); ++i) {
    data.At(i, 0) = static_cast<double>(i);
    data.At(i, 1) = 42.0;
    data.At(i, 2) = static_cast<double>(i * i);
  }
  const Matrix corr = CorrelationMatrix(data);
  for (size_t i = 0; i < corr.rows(); ++i) {
    for (size_t j = 0; j < corr.cols(); ++j) {
      EXPECT_TRUE(std::isfinite(corr.At(i, j))) << i << "," << j;
    }
    EXPECT_DOUBLE_EQ(corr.At(i, i), 1.0);
  }
  EXPECT_DOUBLE_EQ(corr.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(corr.At(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(corr.At(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(corr.At(2, 1), 0.0);
  // The varying columns keep their real (perfectly monotone) correlation.
  EXPECT_GT(corr.At(0, 2), 0.9);
}

TEST(CovarianceParallelTest, MatrixIsBitwiseIdenticalAcrossThreadCounts) {
  // Centering is element-wise and the product keeps its per-element
  // accumulation order under row striping, so the covariance matrix must be
  // exactly the same at any thread count.
  Rng rng(177);
  const Matrix data = testing_util::RandomMatrix(220, 35, &rng);
  SetParallelThreadCount(1);
  const Matrix serial = CovarianceMatrix(data);
  const Matrix corr_serial = CorrelationMatrix(data);
  SetParallelThreadCount(4);
  EXPECT_EQ(CovarianceMatrix(data), serial);
  EXPECT_EQ(CorrelationMatrix(data), corr_serial);
  SetParallelThreadCount(0);
}

}  // namespace
}  // namespace cohere
