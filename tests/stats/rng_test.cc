#include "stats/rng.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "stats/descriptive.h"

namespace cohere {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Uniform() != b.Uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(4);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.UniformInt(0, 4);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit with overwhelming odds
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(5);
  Vector sample = rng.GaussianVector(20000);
  EXPECT_NEAR(Mean(sample), 0.0, 0.03);
  EXPECT_NEAR(SampleStdDev(sample), 1.0, 0.03);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(6);
  Vector sample(5000);
  for (size_t i = 0; i < sample.size(); ++i) sample[i] = rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(Mean(sample), 10.0, 0.15);
  EXPECT_NEAR(SampleStdDev(sample), 2.0, 0.15);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(8);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = items;
  rng.Shuffle(&items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(9);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWholePopulation) {
  Rng rng(10);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngDeathTest, OversampleAborts) {
  Rng rng(11);
  EXPECT_DEATH(rng.SampleWithoutReplacement(3, 4), "COHERE_CHECK");
}

}  // namespace
}  // namespace cohere
