#include "stats/streaming.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "stats/covariance.h"

namespace cohere {
namespace {

using testing_util::ExpectMatrixNear;
using testing_util::ExpectVectorNear;
using testing_util::RandomMatrix;

TEST(StreamingMomentsTest, EmptyAccumulator) {
  StreamingMoments m(3);
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.Mean().Norm2(), 0.0);
  EXPECT_EQ(m.Covariance().FrobeniusNorm(), 0.0);
}

TEST(StreamingMomentsTest, MatchesBatchStatistics) {
  Rng rng(1201);
  Matrix data = RandomMatrix(200, 6, &rng);
  for (size_t i = 0; i < data.rows(); ++i) data.At(i, 2) *= 30.0;

  StreamingMoments m(6);
  for (size_t i = 0; i < data.rows(); ++i) m.Add(data.Row(i));

  EXPECT_EQ(m.count(), 200u);
  ExpectVectorNear(m.Mean(), ColumnMeans(data), 1e-10);
  ExpectMatrixNear(m.Covariance(), CovarianceMatrix(data), 1e-8);
  const Vector stds = ColumnStdDevs(data);
  const Vector vars = m.Variances();
  for (size_t j = 0; j < 6; ++j) {
    EXPECT_NEAR(vars[j], stds[j] * stds[j], 1e-8 * std::max(1.0, vars[j]));
  }
}

TEST(StreamingMomentsTest, SingleObservation) {
  StreamingMoments m(2);
  m.Add(Vector{3.0, 4.0});
  EXPECT_EQ(m.count(), 1u);
  EXPECT_DOUBLE_EQ(m.Mean()[0], 3.0);
  EXPECT_DOUBLE_EQ(m.Covariance()(0, 0), 0.0);
}

TEST(StreamingMomentsTest, MergeMatchesSequential) {
  Rng rng(1202);
  Matrix data = RandomMatrix(150, 4, &rng);

  StreamingMoments sequential(4);
  for (size_t i = 0; i < 150; ++i) sequential.Add(data.Row(i));

  StreamingMoments a(4);
  StreamingMoments b(4);
  for (size_t i = 0; i < 60; ++i) a.Add(data.Row(i));
  for (size_t i = 60; i < 150; ++i) b.Add(data.Row(i));
  a.Merge(b);

  EXPECT_EQ(a.count(), sequential.count());
  ExpectVectorNear(a.Mean(), sequential.Mean(), 1e-11);
  ExpectMatrixNear(a.Covariance(), sequential.Covariance(), 1e-9);
}

TEST(StreamingMomentsTest, MergeWithEmptySides) {
  Rng rng(1203);
  Matrix data = RandomMatrix(30, 3, &rng);
  StreamingMoments filled(3);
  for (size_t i = 0; i < 30; ++i) filled.Add(data.Row(i));

  StreamingMoments empty(3);
  StreamingMoments copy = filled;
  copy.Merge(empty);  // no-op
  ExpectMatrixNear(copy.Covariance(), filled.Covariance(), 0.0);

  StreamingMoments other(3);
  other.Merge(filled);  // adopt
  EXPECT_EQ(other.count(), 30u);
  ExpectVectorNear(other.Mean(), filled.Mean(), 0.0);
}

TEST(StreamingMomentsTest, NumericallyStableUnderLargeOffsets) {
  // Welford's selling point: a large common offset does not destroy the
  // variance estimate.
  Rng rng(1204);
  StreamingMoments m(1);
  Matrix data(500, 1);
  for (size_t i = 0; i < 500; ++i) {
    data.At(i, 0) = 1e9 + rng.Gaussian();
    m.Add(data.Row(i));
  }
  const Matrix batch = CovarianceMatrix(data);
  EXPECT_NEAR(m.Covariance()(0, 0), batch(0, 0),
              1e-6 * std::max(1.0, batch(0, 0)));
  EXPECT_NEAR(m.Covariance()(0, 0), 1.0, 0.2);
}

TEST(StreamingMomentsDeathTest, DimensionMismatchAborts) {
  StreamingMoments m(2);
  EXPECT_DEATH(m.Add(Vector(3)), "COHERE_CHECK");
  StreamingMoments other(3);
  EXPECT_DEATH(m.Merge(other), "COHERE_CHECK");
}

}  // namespace
}  // namespace cohere
