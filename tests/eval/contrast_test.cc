#include "eval/contrast.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace cohere {
namespace {

TEST(ContrastTest, LowDimensionalUniformHasHighContrast) {
  Dataset d = GenerateUniformCube(500, 2, 0.0, 1.0, 181);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  Rng rng(182);
  const ContrastResult r = RelativeContrast(d.features(), *metric, 100, &rng);
  EXPECT_EQ(r.num_queries, 100u);
  EXPECT_GT(r.mean_relative_contrast, 5.0);
}

TEST(ContrastTest, ContrastCollapsesWithDimensionality) {
  // The Beyer et al. phenomenon the paper builds on: relative contrast
  // shrinks monotonically (statistically) as dimensionality grows.
  auto metric = MakeMetric(MetricKind::kEuclidean);
  double prev = std::numeric_limits<double>::infinity();
  for (size_t d : {2u, 10u, 50u, 200u}) {
    Dataset data = GenerateUniformCube(400, d, 0.0, 1.0, 183 + d);
    Rng rng(184);
    const ContrastResult r =
        RelativeContrast(data.features(), *metric, 80, &rng);
    EXPECT_LT(r.mean_relative_contrast, prev) << "d=" << d;
    prev = r.mean_relative_contrast;
  }
  EXPECT_LT(prev, 0.5);  // essentially no contrast at d=200
}

TEST(ContrastTest, AllRowsUsedWhenQueriesExceedData) {
  Dataset d = GenerateUniformCube(50, 3, 0.0, 1.0, 185);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  Rng rng(186);
  const ContrastResult r = RelativeContrast(d.features(), *metric, 500, &rng);
  EXPECT_EQ(r.num_queries, 50u);
}

TEST(ContrastTest, DuplicatePointsSkipped) {
  Matrix data(4, 2);
  data.At(0, 0) = 1.0;
  data.At(1, 0) = 1.0;  // duplicate of row 0
  data.At(2, 0) = 5.0;
  data.At(3, 0) = 9.0;
  auto metric = MakeMetric(MetricKind::kEuclidean);
  Rng rng(187);
  const ContrastResult r = RelativeContrast(data, *metric, 4, &rng);
  // Queries 0 and 1 have dmin = 0 and are skipped.
  EXPECT_EQ(r.num_queries, 2u);
  EXPECT_GT(r.mean_ratio, 1.0);
}

TEST(ContrastTest, MedianAndRatioConsistent) {
  Dataset d = GenerateUniformCube(200, 5, 0.0, 1.0, 188);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  Rng rng(189);
  const ContrastResult r = RelativeContrast(d.features(), *metric, 60, &rng);
  EXPECT_GT(r.median_relative_contrast, 0.0);
  // ratio = contrast + 1 per query, so means obey the same identity.
  EXPECT_NEAR(r.mean_ratio, r.mean_relative_contrast + 1.0, 1e-9);
}

TEST(ContrastDeathTest, TooFewRowsAbort) {
  auto metric = MakeMetric(MetricKind::kEuclidean);
  Rng rng(190);
  EXPECT_DEATH(RelativeContrast(Matrix(1, 2), *metric, 1, &rng),
               "COHERE_CHECK");
}

}  // namespace
}  // namespace cohere
