#include "eval/sweep.h"

#include <gtest/gtest.h>

#include "eval/knn_quality.h"
#include "index/metric.h"
#include "stats/rng.h"

namespace cohere {
namespace {

TEST(MakeSweepDimsTest, SmallDimensionalityEnumeratesAll) {
  const auto dims = MakeSweepDims(5);
  EXPECT_EQ(dims, (std::vector<size_t>{1, 2, 3, 4, 5}));
}

TEST(MakeSweepDimsTest, LargeDimensionalityCapsPointsAndCoversEnds) {
  const auto dims = MakeSweepDims(500, 20);
  EXPECT_LE(dims.size(), 20u);
  EXPECT_EQ(dims.front(), 1u);
  EXPECT_EQ(dims.back(), 500u);
  EXPECT_TRUE(std::is_sorted(dims.begin(), dims.end()));
}

TEST(MakeSweepDimsTest, SingleDimension) {
  EXPECT_EQ(MakeSweepDims(1), (std::vector<size_t>{1}));
}

TEST(SweepTest, MatchesDirectAccuracyAtEachDimensionality) {
  Rng rng(171);
  Matrix scores(80, 6);
  std::vector<int> labels(80);
  for (size_t i = 0; i < 80; ++i) {
    labels[i] = static_cast<int>(rng.UniformInt(0, 1));
    for (size_t j = 0; j < 6; ++j) {
      scores.At(i, j) = rng.Gaussian() + (labels[i] == 1 && j < 2 ? 2.0 : 0.0);
    }
  }
  auto metric = MakeMetric(MetricKind::kEuclidean);
  const auto dims = MakeSweepDims(6);
  const DimensionSweepResult sweep =
      SweepPredictionAccuracy(scores, labels, 3, dims);
  ASSERT_EQ(sweep.points.size(), 6u);
  for (const SweepPoint& p : sweep.points) {
    std::vector<size_t> cols(p.dims);
    for (size_t c = 0; c < p.dims; ++c) cols[c] = c;
    const double direct =
        KnnPredictionAccuracy(scores.SelectCols(cols), labels, 3, *metric);
    EXPECT_NEAR(p.accuracy, direct, 1e-12) << "at dims=" << p.dims;
  }
}

TEST(SweepTest, BestAccessorsConsistent) {
  DimensionSweepResult r;
  r.points = {{1, 0.5}, {2, 0.8}, {3, 0.8}, {4, 0.6}};
  EXPECT_EQ(r.BestDims(), 2u);  // smallest dims among ties
  EXPECT_DOUBLE_EQ(r.BestAccuracy(), 0.8);
  EXPECT_DOUBLE_EQ(r.LastAccuracy(), 0.6);
}

TEST(SweepTest, InformativeFirstColumnPeaksEarly) {
  // Column 0 separates the classes; the rest are pure noise. Accuracy must
  // peak at low dimensionality and decay as noise is appended.
  Rng rng(172);
  const size_t n = 150;
  Matrix scores(n, 12);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(rng.UniformInt(0, 1));
    scores.At(i, 0) = labels[i] == 1 ? 4.0 + rng.Gaussian() * 0.2
                                     : rng.Gaussian() * 0.2;
    for (size_t j = 1; j < 12; ++j) scores.At(i, j) = rng.Gaussian() * 3.0;
  }
  const DimensionSweepResult sweep =
      SweepPredictionAccuracy(scores, labels, 3, MakeSweepDims(12));
  EXPECT_EQ(sweep.BestDims(), 1u);
  EXPECT_GT(sweep.BestAccuracy(), 0.95);
  EXPECT_LT(sweep.LastAccuracy(), sweep.BestAccuracy());
}

TEST(SweepTest, SubsetOfDimsEvaluated) {
  Rng rng(173);
  Matrix scores(30, 10);
  std::vector<int> labels(30);
  for (size_t i = 0; i < 30; ++i) {
    labels[i] = static_cast<int>(i % 2);
    for (size_t j = 0; j < 10; ++j) scores.At(i, j) = rng.Gaussian();
  }
  const std::vector<size_t> dims{2, 5, 10};
  const DimensionSweepResult sweep =
      SweepPredictionAccuracy(scores, labels, 1, dims);
  ASSERT_EQ(sweep.points.size(), 3u);
  EXPECT_EQ(sweep.points[0].dims, 2u);
  EXPECT_EQ(sweep.points[2].dims, 10u);
}

TEST(SweepDeathTest, BadArgumentsAbort) {
  Matrix scores(10, 3);
  std::vector<int> labels(10, 0);
  EXPECT_DEATH(SweepPredictionAccuracy(scores, labels, 3, {}), "COHERE_CHECK");
  EXPECT_DEATH(SweepPredictionAccuracy(scores, labels, 3, {4}),
               "COHERE_CHECK");
  EXPECT_DEATH(SweepPredictionAccuracy(scores, labels, 3, {2, 1}),
               "COHERE_CHECK");
}

}  // namespace
}  // namespace cohere
