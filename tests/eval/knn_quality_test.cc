#include "eval/knn_quality.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "index/linear_scan.h"

namespace cohere {
namespace {

TEST(KnnAccuracyTest, PerfectlySeparatedClustersScoreOne) {
  // Two tight clusters far apart, labels matching clusters.
  Matrix features(20, 2);
  std::vector<int> labels(20);
  Rng rng(161);
  for (size_t i = 0; i < 20; ++i) {
    const bool second = i >= 10;
    features.At(i, 0) = (second ? 100.0 : 0.0) + rng.Gaussian() * 0.01;
    features.At(i, 1) = rng.Gaussian() * 0.01;
    labels[i] = second ? 1 : 0;
  }
  auto metric = MakeMetric(MetricKind::kEuclidean);
  EXPECT_DOUBLE_EQ(KnnPredictionAccuracy(features, labels, 3, *metric), 1.0);
}

TEST(KnnAccuracyTest, AlternatingLineScoresZeroForKOne) {
  // Points on a line with strictly alternating labels: every nearest
  // neighbor has the other label.
  Matrix features(10, 1);
  std::vector<int> labels(10);
  for (size_t i = 0; i < 10; ++i) {
    features.At(i, 0) = static_cast<double>(i);
    labels[i] = static_cast<int>(i % 2);
  }
  auto metric = MakeMetric(MetricKind::kEuclidean);
  EXPECT_DOUBLE_EQ(KnnPredictionAccuracy(features, labels, 1, *metric), 0.0);
}

TEST(KnnAccuracyTest, RandomLabelsScoreNearChance) {
  Rng rng(162);
  Matrix features(300, 5);
  std::vector<int> labels(300);
  for (size_t i = 0; i < 300; ++i) {
    for (size_t j = 0; j < 5; ++j) features.At(i, j) = rng.Gaussian();
    labels[i] = static_cast<int>(rng.UniformInt(0, 1));
  }
  auto metric = MakeMetric(MetricKind::kEuclidean);
  const double acc = KnnPredictionAccuracy(features, labels, 3, *metric);
  EXPECT_NEAR(acc, 0.5, 0.08);
}

TEST(KnnAccuracyTest, IndexOverloadMatchesMatrixOverload) {
  Rng rng(163);
  Matrix features(60, 4);
  std::vector<int> labels(60);
  for (size_t i = 0; i < 60; ++i) {
    for (size_t j = 0; j < 4; ++j) features.At(i, j) = rng.Gaussian();
    labels[i] = static_cast<int>(rng.UniformInt(0, 2));
  }
  auto metric = MakeMetric(MetricKind::kEuclidean);
  LinearScanIndex index(features, metric.get());
  EXPECT_DOUBLE_EQ(KnnPredictionAccuracy(features, labels, 3, *metric),
                   KnnPredictionAccuracy(index, features, labels, 3));
}

TEST(KnnAccuracyDeathTest, BadArgumentsAbort) {
  Matrix features(5, 2);
  std::vector<int> labels(4);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  EXPECT_DEATH(KnnPredictionAccuracy(features, labels, 3, *metric),
               "COHERE_CHECK");
  std::vector<int> ok_labels(5, 0);
  EXPECT_DEATH(KnnPredictionAccuracy(features, ok_labels, 0, *metric),
               "COHERE_CHECK");
}

TEST(OverlapTest, IdenticalSpacesOverlapFully) {
  Rng rng(164);
  Matrix features(40, 3);
  for (size_t i = 0; i < 40; ++i) {
    for (size_t j = 0; j < 3; ++j) features.At(i, j) = rng.Gaussian();
  }
  auto metric = MakeMetric(MetricKind::kEuclidean);
  const NeighborOverlap o = ReducedSpaceOverlap(features, features, 4, *metric);
  EXPECT_DOUBLE_EQ(o.precision, 1.0);
  EXPECT_DOUBLE_EQ(o.recall, 1.0);
  EXPECT_EQ(o.k, 4u);
}

TEST(OverlapTest, UnrelatedSpacesOverlapNearChance) {
  Rng rng(165);
  Matrix a(100, 4);
  Matrix b(100, 4);
  for (size_t i = 0; i < 100; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      a.At(i, j) = rng.Gaussian();
      b.At(i, j) = rng.Gaussian();
    }
  }
  auto metric = MakeMetric(MetricKind::kEuclidean);
  const NeighborOverlap o = ReducedSpaceOverlap(a, b, 3, *metric);
  // Chance overlap for k of n-1 candidates is ~k/(n-1) ~= 0.03.
  EXPECT_LT(o.precision, 0.15);
}

TEST(OverlapTest, ScaledSpaceKeepsNeighbors) {
  // Isotropic scaling preserves the neighbor sets exactly.
  Rng rng(166);
  Matrix a(50, 3);
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = 0; j < 3; ++j) a.At(i, j) = rng.Gaussian();
  }
  Matrix b = a;
  b *= 42.0;
  auto metric = MakeMetric(MetricKind::kEuclidean);
  EXPECT_DOUBLE_EQ(ReducedSpaceOverlap(a, b, 5, *metric).precision, 1.0);
}

}  // namespace
}  // namespace cohere
