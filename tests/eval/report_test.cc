#include "eval/report.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace cohere {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22.5"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Column 2 entries start at the same offset on each data line.
  std::istringstream lines(out);
  std::string header;
  std::string underline;
  std::string row1;
  std::string row2;
  std::getline(lines, header);
  std::getline(lines, underline);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(header.find("value"), row1.find('1'));
  EXPECT_EQ(header.find("value"), row2.find("22.5"));
}

TEST(TextTableTest, CountsRows) {
  TextTable table({"x"});
  EXPECT_EQ(table.NumRows(), 0u);
  table.AddRow({"1"});
  EXPECT_EQ(table.NumRows(), 1u);
}

TEST(TextTableDeathTest, WrongArityAborts) {
  TextTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only one"}), "COHERE_CHECK");
}

TEST(FormatTest, Doubles) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-1.0, 0), "-1");
}

TEST(FormatTest, Percent) {
  EXPECT_EQ(FormatPercent(0.4235), "42.4%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

TEST(SeriesCsvTest, WritesColumns) {
  const std::string path = ::testing::TempDir() + "/cohere_series.csv";
  Status s = WriteSeriesCsv(path, {"dims", "acc"},
                            {{1.0, 2.0, 3.0}, {0.5, 0.75, 0.7}});
  ASSERT_TRUE(s.ok()) << s.ToString();
  std::ifstream file(path);
  std::string line;
  std::getline(file, line);
  EXPECT_EQ(line, "dims,acc");
  std::getline(file, line);
  EXPECT_EQ(line, "1,0.5");
  std::remove(path.c_str());
}

TEST(SeriesCsvTest, RejectsMismatchedColumns) {
  EXPECT_FALSE(WriteSeriesCsv("/tmp/x.csv", {"a"}, {{1.0}, {2.0}}).ok());
  EXPECT_FALSE(
      WriteSeriesCsv("/tmp/x.csv", {"a", "b"}, {{1.0}, {2.0, 3.0}}).ok());
  EXPECT_FALSE(WriteSeriesCsv("/tmp/x.csv", {}, {}).ok());
}

TEST(SeriesCsvTest, BadPathFails) {
  EXPECT_EQ(WriteSeriesCsv("/nonexistent_dir/x.csv", {"a"}, {{1.0}})
                .code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace cohere
