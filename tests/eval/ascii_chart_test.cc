#include <gtest/gtest.h>

#include "eval/report.h"

namespace cohere {
namespace {

TEST(AsciiChartTest, RendersSeriesGlyphsAndLegend) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<ChartSeries> series{
      {"rising", {0.1, 0.2, 0.3, 0.4}},
      {"falling", {0.4, 0.3, 0.2, 0.1}},
  };
  const std::string chart = RenderAsciiChart(x, series, 32, 8);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('+'), std::string::npos);
  EXPECT_NE(chart.find("* = rising"), std::string::npos);
  EXPECT_NE(chart.find("+ = falling"), std::string::npos);
  // Axis labels carry the y range.
  EXPECT_NE(chart.find("0.4"), std::string::npos);
  EXPECT_NE(chart.find("0.1"), std::string::npos);
}

TEST(AsciiChartTest, ExtremesLandOnTopAndBottomRows) {
  const std::vector<double> x{0.0, 1.0};
  const std::vector<ChartSeries> series{{"line", {0.0, 1.0}}};
  const std::string chart = RenderAsciiChart(x, series, 16, 6);
  // First rendered row holds the max, the 6th the min.
  std::istringstream lines(chart);
  std::string row;
  std::getline(lines, row);
  EXPECT_NE(row.find('*'), std::string::npos);  // max value at the top
  for (int i = 0; i < 5; ++i) std::getline(lines, row);
  EXPECT_NE(row.find('*'), std::string::npos);  // min value at the bottom
}

TEST(AsciiChartTest, ConstantSeriesDoesNotDivideByZero) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<ChartSeries> series{{"flat", {0.5, 0.5, 0.5}}};
  const std::string chart = RenderAsciiChart(x, series);
  EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(AsciiChartTest, SinglePoint) {
  const std::vector<double> x{7.0};
  const std::vector<ChartSeries> series{{"dot", {1.0}}};
  EXPECT_NE(RenderAsciiChart(x, series).find('*'), std::string::npos);
}

TEST(AsciiChartDeathTest, BadInputsAbort) {
  const std::vector<double> x{1.0, 2.0};
  EXPECT_DEATH(RenderAsciiChart(x, {}), "COHERE_CHECK");
  EXPECT_DEATH(RenderAsciiChart(x, {{"short", {1.0}}}), "COHERE_CHECK");
  EXPECT_DEATH(RenderAsciiChart({2.0, 1.0}, {{"dec", {1.0, 2.0}}}),
               "COHERE_CHECK");
  EXPECT_DEATH(RenderAsciiChart({}, {{"empty", {}}}), "COHERE_CHECK");
}

}  // namespace
}  // namespace cohere
