#include "cluster/kmeans.h"

#include <set>

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace cohere {
namespace {

// Three well-separated Gaussian blobs in 2-d.
Matrix ThreeBlobs(size_t per_blob, Rng* rng) {
  Matrix data(3 * per_blob, 2);
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (size_t b = 0; b < 3; ++b) {
    for (size_t i = 0; i < per_blob; ++i) {
      data.At(b * per_blob + i, 0) = centers[b][0] + rng->Gaussian() * 0.3;
      data.At(b * per_blob + i, 1) = centers[b][1] + rng->Gaussian() * 0.3;
    }
  }
  return data;
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  Rng rng(201);
  Matrix data = ThreeBlobs(50, &rng);
  KMeansOptions options;
  options.num_clusters = 3;
  options.seed = 5;
  Result<KMeansResult> result = RunKMeans(data, options);
  ASSERT_TRUE(result.ok());
  // Every blob must be pure: all members of a ground-truth blob share one id.
  for (size_t b = 0; b < 3; ++b) {
    const size_t id = result->assignment[b * 50];
    for (size_t i = 1; i < 50; ++i) {
      EXPECT_EQ(result->assignment[b * 50 + i], id) << "blob " << b;
    }
  }
  // And the three blobs map to three distinct ids.
  std::set<size_t> ids{result->assignment[0], result->assignment[50],
                       result->assignment[100]};
  EXPECT_EQ(ids.size(), 3u);
}

TEST(KMeansTest, InertiaDecreasesToTightClusters) {
  Rng rng(202);
  Matrix data = ThreeBlobs(40, &rng);
  KMeansOptions options;
  options.num_clusters = 3;
  Result<KMeansResult> result = RunKMeans(data, options);
  ASSERT_TRUE(result.ok());
  // 120 points with sigma 0.3: inertia ~ 120 * 2 * 0.09 ~= 21.6.
  EXPECT_LT(result->inertia, 40.0);
}

TEST(KMeansTest, SingleClusterCentroidIsMean) {
  Matrix data{{0.0, 0.0}, {2.0, 4.0}, {4.0, 2.0}};
  KMeansOptions options;
  options.num_clusters = 1;
  Result<KMeansResult> result = RunKMeans(data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->centroids(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(result->centroids(0, 1), 2.0, 1e-12);
}

TEST(KMeansTest, KEqualsNAssignsEachPointItsOwnCluster) {
  Matrix data{{0.0}, {5.0}, {10.0}};
  KMeansOptions options;
  options.num_clusters = 3;
  Result<KMeansResult> result = RunKMeans(data, options);
  ASSERT_TRUE(result.ok());
  std::set<size_t> ids(result->assignment.begin(), result->assignment.end());
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_NEAR(result->inertia, 0.0, 1e-12);
}

TEST(KMeansTest, Deterministic) {
  Rng rng(203);
  Matrix data = ThreeBlobs(20, &rng);
  KMeansOptions options;
  options.num_clusters = 3;
  options.seed = 99;
  Result<KMeansResult> a = RunKMeans(data, options);
  Result<KMeansResult> b = RunKMeans(data, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
  EXPECT_EQ(a->inertia, b->inertia);
}

TEST(KMeansTest, RejectsBadArguments) {
  Matrix data(2, 2);
  KMeansOptions options;
  options.num_clusters = 0;
  EXPECT_FALSE(RunKMeans(data, options).ok());
  options.num_clusters = 3;
  EXPECT_FALSE(RunKMeans(data, options).ok());
}

TEST(KMeansTest, NearestCentroid) {
  Matrix centroids{{0.0, 0.0}, {10.0, 10.0}};
  EXPECT_EQ(NearestCentroid(centroids, Vector{1.0, 1.0}), 0u);
  EXPECT_EQ(NearestCentroid(centroids, Vector{9.0, 9.0}), 1u);
}

TEST(KMeansTest, DuplicatePointsDoNotCrash) {
  Matrix data(30, 2, 1.0);
  KMeansOptions options;
  options.num_clusters = 3;
  Result<KMeansResult> result = RunKMeans(data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-12);
}

}  // namespace
}  // namespace cohere
