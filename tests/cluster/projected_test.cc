#include "cluster/projected.h"

#include <set>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "stats/rng.h"

namespace cohere {
namespace {

// Two populations living on different 1-d lines inside a noisy 6-d space:
// population 0 varies along e0, population 1 along e1; both have small
// isotropic noise. A projected clustering with l = 5 (the directions each
// cluster is tight in) should separate them.
Matrix TwoSubspacePopulations(size_t per_pop, Rng* rng) {
  Matrix data(2 * per_pop, 6);
  for (size_t i = 0; i < per_pop; ++i) {
    const double t = rng->Gaussian() * 5.0;
    for (size_t j = 0; j < 6; ++j) {
      data.At(i, j) = rng->Gaussian() * 0.2;
    }
    data.At(i, 0) += t;
  }
  for (size_t i = 0; i < per_pop; ++i) {
    const double t = rng->Gaussian() * 5.0;
    for (size_t j = 0; j < 6; ++j) {
      data.At(per_pop + i, j) = rng->Gaussian() * 0.2;
    }
    data.At(per_pop + i, 1) += t;
    data.At(per_pop + i, 2) += 3.0;  // small offset to break symmetry
  }
  return data;
}

TEST(ProjectedClusteringTest, SeparatesSubspacePopulations) {
  Rng rng(301);
  Matrix data = TwoSubspacePopulations(80, &rng);
  ProjectedClusteringOptions options;
  options.num_clusters = 2;
  options.subspace_dim = 5;
  options.seed = 4;
  Result<ProjectedClusteringResult> result =
      RunProjectedClustering(data, options);
  ASSERT_TRUE(result.ok());

  // Count the majority assignment per population; the split must be clean
  // for at least 90% of the points.
  size_t correct = 0;
  const size_t pop0_major = result->assignment[0];
  for (size_t i = 0; i < 80; ++i) {
    if (result->assignment[i] == pop0_major) ++correct;
  }
  for (size_t i = 80; i < 160; ++i) {
    if (result->assignment[i] != pop0_major) ++correct;
  }
  EXPECT_GE(correct, 144u);
}

TEST(ProjectedClusteringTest, BasesAreOrthonormalAndTight) {
  Rng rng(302);
  Matrix data = TwoSubspacePopulations(60, &rng);
  ProjectedClusteringOptions options;
  options.num_clusters = 2;
  options.subspace_dim = 5;
  Result<ProjectedClusteringResult> result =
      RunProjectedClustering(data, options);
  ASSERT_TRUE(result.ok());
  for (const ProjectedCluster& cluster : result->clusters) {
    ASSERT_EQ(cluster.basis.rows(), 6u);
    ASSERT_EQ(cluster.basis.cols(), 5u);
    testing_util::ExpectOrthonormalColumns(cluster.basis, 1e-9);
  }
  // The energy (mean projected distance^2) must be far below the raw
  // variance of the data (~25 along the sprawl direction).
  EXPECT_LT(result->energy, 3.0);
}

TEST(ProjectedClusteringTest, ProjectedDistanceIgnoresSprawlDirection) {
  ProjectedCluster cluster;
  cluster.centroid = Vector{0.0, 0.0, 0.0};
  // Subspace spanned by e1, e2: distance ignores movement along e0.
  cluster.basis = Matrix(3, 2);
  cluster.basis.At(1, 0) = 1.0;
  cluster.basis.At(2, 1) = 1.0;
  EXPECT_DOUBLE_EQ(ProjectedSquaredDistance(Vector{100.0, 0.0, 0.0}, cluster),
                   0.0);
  EXPECT_DOUBLE_EQ(ProjectedSquaredDistance(Vector{0.0, 3.0, 4.0}, cluster),
                   25.0);
}

TEST(ProjectedClusteringTest, NearestProjectedCluster) {
  ProjectedCluster a;
  a.centroid = Vector{0.0, 0.0};
  a.basis = Matrix::Identity(2);
  ProjectedCluster b;
  b.centroid = Vector{10.0, 0.0};
  b.basis = Matrix::Identity(2);
  std::vector<ProjectedCluster> clusters{a, b};
  EXPECT_EQ(NearestProjectedCluster(clusters, Vector{1.0, 0.0}), 0u);
  EXPECT_EQ(NearestProjectedCluster(clusters, Vector{9.0, 0.0}), 1u);
}

TEST(ProjectedClusteringTest, FullSubspaceDimReducesToKMeansGeometry) {
  // With l = d the projected distance is the full Euclidean distance, so
  // separated blobs still split cleanly.
  Rng rng(303);
  Matrix data(60, 2);
  for (size_t i = 0; i < 30; ++i) {
    data.At(i, 0) = rng.Gaussian() * 0.3;
    data.At(i, 1) = rng.Gaussian() * 0.3;
    data.At(30 + i, 0) = 10.0 + rng.Gaussian() * 0.3;
    data.At(30 + i, 1) = rng.Gaussian() * 0.3;
  }
  ProjectedClusteringOptions options;
  options.num_clusters = 2;
  options.subspace_dim = 2;
  Result<ProjectedClusteringResult> result =
      RunProjectedClustering(data, options);
  ASSERT_TRUE(result.ok());
  const size_t id0 = result->assignment[0];
  for (size_t i = 0; i < 30; ++i) EXPECT_EQ(result->assignment[i], id0);
  for (size_t i = 30; i < 60; ++i) EXPECT_NE(result->assignment[i], id0);
}

TEST(ProjectedClusteringTest, RejectsBadArguments) {
  Matrix data(10, 4);
  ProjectedClusteringOptions options;
  options.num_clusters = 0;
  EXPECT_FALSE(RunProjectedClustering(data, options).ok());
  options.num_clusters = 2;
  options.subspace_dim = 0;
  EXPECT_FALSE(RunProjectedClustering(data, options).ok());
  options.subspace_dim = 5;  // > d
  EXPECT_FALSE(RunProjectedClustering(data, options).ok());
  options.subspace_dim = 2;
  options.num_clusters = 11;  // > n
  EXPECT_FALSE(RunProjectedClustering(data, options).ok());
}

TEST(ProjectedClusteringTest, Deterministic) {
  Rng rng(304);
  Matrix data = TwoSubspacePopulations(40, &rng);
  ProjectedClusteringOptions options;
  options.num_clusters = 2;
  options.subspace_dim = 4;
  options.seed = 11;
  Result<ProjectedClusteringResult> a = RunProjectedClustering(data, options);
  Result<ProjectedClusteringResult> b = RunProjectedClustering(data, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
}

}  // namespace
}  // namespace cohere
