#include "data/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace cohere {
namespace {

TEST(CsvTest, ParsesUnlabeledNumeric) {
  CsvOptions opts;
  Result<Dataset> d = ParseCsv("1,2\n3,4\n", opts);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->NumRecords(), 2u);
  EXPECT_EQ(d->NumAttributes(), 2u);
  EXPECT_EQ(d->features()(1, 1), 4.0);
  EXPECT_FALSE(d->HasLabels());
}

TEST(CsvTest, ParsesHeaderAndLabels) {
  CsvOptions opts;
  opts.has_header = true;
  opts.label_column = -1;  // last column
  Result<Dataset> d = ParseCsv("x,y,class\n1,2,cat\n3,4,dog\n5,6,cat\n", opts);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->NumAttributes(), 2u);
  ASSERT_TRUE(d->HasLabels());
  EXPECT_EQ(d->label(0), 0);
  EXPECT_EQ(d->label(1), 1);
  EXPECT_EQ(d->label(2), 0);
  ASSERT_EQ(d->class_names().size(), 2u);
  EXPECT_EQ(d->class_names()[0], "cat");
  ASSERT_EQ(d->attribute_names().size(), 2u);
  EXPECT_EQ(d->attribute_names()[1], "y");
}

TEST(CsvTest, LabelColumnInMiddle) {
  CsvOptions opts;
  opts.label_column = 1;
  Result<Dataset> d = ParseCsv("1,a,2\n3,b,4\n", opts);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumAttributes(), 2u);
  EXPECT_EQ(d->features()(0, 1), 2.0);
  EXPECT_EQ(d->label(1), 1);
}

TEST(CsvTest, SkipsCommentsAndBlankLines) {
  CsvOptions opts;
  Result<Dataset> d = ParseCsv("# comment\n\n1,2\n\n3,4\n", opts);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumRecords(), 2u);
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions opts;
  opts.delimiter = ';';
  Result<Dataset> d = ParseCsv("1;2\n3;4\n", opts);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->features()(1, 0), 3.0);
}

TEST(CsvTest, RejectsRaggedRows) {
  CsvOptions opts;
  Result<Dataset> d = ParseCsv("1,2\n3\n", opts);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, RejectsNonNumericFeature) {
  CsvOptions opts;
  EXPECT_FALSE(ParseCsv("1,abc\n", opts).ok());
}

TEST(CsvTest, RejectsEmptyInput) {
  CsvOptions opts;
  EXPECT_FALSE(ParseCsv("", opts).ok());
  EXPECT_FALSE(ParseCsv("# only a comment\n", opts).ok());
}

TEST(CsvTest, MissingValuesErrorByDefault) {
  CsvOptions opts;
  EXPECT_FALSE(ParseCsv("1,?\n2,3\n", opts).ok());
}

TEST(CsvTest, MissingValuesImputedWithColumnMean) {
  CsvOptions opts;
  opts.missing_values = MissingValuePolicy::kImputeColumnMean;
  Result<Dataset> d = ParseCsv("1,?\n2,4\n3,8\n", opts);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->features()(0, 1), 6.0);  // mean of 4 and 8
}

TEST(CsvTest, RoundTripThroughFile) {
  Matrix features{{1.5, 2.5}, {3.5, 4.5}};
  Dataset original(features, std::vector<int>{1, 0});
  original.SetAttributeNames({"alpha", "beta"});
  original.SetClassNames({"no", "yes"});

  const std::string path = ::testing::TempDir() + "/cohere_csv_roundtrip.csv";
  ASSERT_TRUE(WriteCsv(original, path).ok());

  CsvOptions opts;
  opts.has_header = true;
  opts.label_column = -1;
  Result<Dataset> loaded = LoadCsv(path, opts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumRecords(), 2u);
  EXPECT_EQ(loaded->NumAttributes(), 2u);
  EXPECT_DOUBLE_EQ(loaded->features()(0, 0), 1.5);
  // "yes" is seen first in the file order (row 0), so ids may permute;
  // compare through names.
  EXPECT_EQ(loaded->class_names()[loaded->label(0)], "yes");
  EXPECT_EQ(loaded->class_names()[loaded->label(1)], "no");
  std::remove(path.c_str());
}

TEST(CsvTest, NonFiniteValuesRejectedWithLineNumber) {
  CsvOptions opts;
  // strtod happily parses these literals; the loader must refuse them.
  const char* cases[] = {
      "1,2\n3,inf\n",
      "1,2\nnan,4\n",
      "1,2\n3,Infinity\n",
      "1,2\n-inf,4\n",
      "1,2\n3,1e999\n",  // overflow saturates to inf inside strtod
  };
  for (const char* content : cases) {
    Result<Dataset> d = ParseCsv(content, opts);
    ASSERT_FALSE(d.ok()) << content;
    EXPECT_EQ(d.status().code(), StatusCode::kParseError) << content;
    EXPECT_NE(d.status().message().find("line 2"), std::string::npos)
        << d.status().message();
  }
}

TEST(CsvTest, MissingMarkersStillImputeDespiteNonFiniteGate) {
  // "?" and empty fields are handled as missing *before* numeric parsing,
  // so the non-finite rejection must not affect them.
  CsvOptions opts;
  opts.missing_values = MissingValuePolicy::kImputeColumnMean;
  Result<Dataset> d = ParseCsv("1,10\n?,20\n3,\n", opts);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_DOUBLE_EQ(d->features()(1, 0), 2.0);   // mean of 1, 3
  EXPECT_DOUBLE_EQ(d->features()(2, 1), 15.0);  // mean of 10, 20
}

TEST(CsvTest, DenormalValuesLoadExactly) {
  CsvOptions opts;
  Result<Dataset> d = ParseCsv("1e-320,1\n2,3\n", opts);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_GT(d->features()(0, 0), 0.0);
  EXPECT_LT(d->features()(0, 0), 1e-300);
}

TEST(CsvTest, LoadMissingFileFails) {
  CsvOptions opts;
  Result<Dataset> d = LoadCsv("/nonexistent/definitely_missing.csv", opts);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace cohere
