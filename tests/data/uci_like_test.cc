#include "data/uci_like.h"

#include <gtest/gtest.h>

#include "stats/covariance.h"
#include "stats/descriptive.h"

namespace cohere {
namespace {

TEST(UciLikeTest, MuskLikeShape) {
  Dataset d = MuskLike();
  EXPECT_EQ(d.NumRecords(), 476u);
  EXPECT_EQ(d.NumAttributes(), 166u);
  EXPECT_EQ(d.NumClasses(), 2u);
  EXPECT_EQ(d.name(), "musk_like");
}

TEST(UciLikeTest, IonosphereLikeShape) {
  Dataset d = IonosphereLike();
  EXPECT_EQ(d.NumRecords(), 351u);
  EXPECT_EQ(d.NumAttributes(), 34u);
  EXPECT_EQ(d.NumClasses(), 2u);
}

TEST(UciLikeTest, ArrhythmiaLikeShapeAndDominantClass) {
  Dataset d = ArrhythmiaLike();
  EXPECT_EQ(d.NumRecords(), 452u);
  EXPECT_EQ(d.NumAttributes(), 279u);
  EXPECT_EQ(d.NumClasses(), 8u);
  const auto counts = d.ClassCounts();
  // Class 0 (the "normal" stand-in) dominates.
  for (size_t c = 1; c < counts.size(); ++c) {
    EXPECT_GT(counts[0], counts[c]);
  }
}

TEST(UciLikeTest, ScaleHeterogeneityPresent) {
  Dataset d = ArrhythmiaLike();
  Vector stds = ColumnStdDevs(d.features());
  EXPECT_GT(Max(stds) / Min(stds), 20.0);
}

TEST(UciLikeTest, NoisyDataAShapeAndNoiseVariance) {
  Dataset d = NoisyDataA();
  EXPECT_EQ(d.NumRecords(), 351u);
  EXPECT_EQ(d.NumAttributes(), 34u);
  // The corrupted columns have variance ~3 (= 6^2/12) on top of the
  // studentized unit-variance signal columns: the largest column variances
  // must clearly exceed 1.
  Vector stds = ColumnStdDevs(d.features());
  EXPECT_GT(Max(stds) * Max(stds), 2.0);
  // And a reasonable number of columns stay near unit variance.
  size_t near_unit = 0;
  for (double s : stds) {
    if (std::fabs(s - 1.0) < 0.1) ++near_unit;
  }
  EXPECT_GE(near_unit, 20u);
}

TEST(UciLikeTest, NoisyDataBShape) {
  Dataset d = NoisyDataB();
  EXPECT_EQ(d.NumRecords(), 452u);
  EXPECT_EQ(d.NumAttributes(), 279u);
  EXPECT_TRUE(d.HasLabels());
}

TEST(UciLikeTest, SeedsChangeData) {
  Dataset a = IonosphereLike(1);
  Dataset b = IonosphereLike(2);
  EXPECT_FALSE(a.features() == b.features());
}

TEST(UciLikeTest, DefaultSeedsAreReproducible) {
  EXPECT_TRUE(MuskLike().features() == MuskLike().features());
  EXPECT_TRUE(NoisyDataA().features() == NoisyDataA().features());
}

}  // namespace
}  // namespace cohere
