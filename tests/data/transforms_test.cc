#include "data/transforms.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "stats/covariance.h"

namespace cohere {
namespace {

using testing_util::ExpectVectorNear;
using testing_util::RandomMatrix;

TEST(ZScoreTest, ProducesZeroMeanUnitVarianceColumns) {
  Rng rng(81);
  Matrix data = RandomMatrix(200, 4, &rng);
  // Stretch the columns so the transform has work to do.
  for (size_t i = 0; i < data.rows(); ++i) {
    data.At(i, 0) = data.At(i, 0) * 100.0 + 7.0;
    data.At(i, 2) = data.At(i, 2) * 0.001 - 3.0;
  }
  auto transform = ColumnAffineTransform::FitZScore(data);
  Matrix scaled = transform.ApplyToRows(data);
  Vector means = ColumnMeans(scaled);
  Vector stds = ColumnStdDevs(scaled);
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(means[j], 0.0, 1e-10);
    EXPECT_NEAR(stds[j], 1.0, 1e-10);
  }
}

TEST(ZScoreTest, ConstantColumnStaysFinite) {
  Matrix data{{5.0, 1.0}, {5.0, 2.0}, {5.0, 3.0}};
  auto transform = ColumnAffineTransform::FitZScore(data);
  Matrix scaled = transform.ApplyToRows(data);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(scaled(i, 0), 0.0);  // (5-5)/1
    EXPECT_TRUE(std::isfinite(scaled(i, 1)));
  }
}

TEST(ZScoreTest, QueriesUseTrainingStatistics) {
  Matrix data{{0.0}, {10.0}};
  auto transform = ColumnAffineTransform::FitZScore(data);
  // mean 5, population std 5 -> 20 maps to 3.
  Vector out = transform.Apply(Vector{20.0});
  EXPECT_DOUBLE_EQ(out[0], 3.0);
}

TEST(MinMaxTest, MapsOntoUnitInterval) {
  Matrix data{{2.0, -1.0}, {4.0, 3.0}, {3.0, 1.0}};
  auto transform = ColumnAffineTransform::FitMinMax(data);
  Matrix scaled = transform.ApplyToRows(data);
  EXPECT_DOUBLE_EQ(scaled(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(scaled(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(scaled(2, 0), 0.5);
  EXPECT_DOUBLE_EQ(scaled(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(scaled(1, 1), 1.0);
}

TEST(MeanCenterTest, CentersWithoutScaling) {
  Matrix data{{1.0}, {3.0}};
  auto transform = ColumnAffineTransform::FitMeanCenter(data);
  Matrix out = transform.ApplyToRows(data);
  EXPECT_DOUBLE_EQ(out(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(out(1, 0), 1.0);
}

TEST(TransformTest, InvertRoundTrips) {
  Rng rng(82);
  Matrix data = RandomMatrix(50, 3, &rng);
  auto transform = ColumnAffineTransform::FitZScore(data);
  const Vector point = data.Row(7);
  ExpectVectorNear(transform.Invert(transform.Apply(point)), point, 1e-12);
}

TEST(TransformTest, ApplyToDatasetKeepsLabelsAndNames) {
  Dataset d(Matrix{{1.0, 10.0}, {3.0, 30.0}}, std::vector<int>{0, 1});
  d.SetAttributeNames({"a", "b"});
  Dataset out = Studentize(d);
  EXPECT_EQ(out.labels(), d.labels());
  ASSERT_EQ(out.attribute_names().size(), 2u);
  EXPECT_EQ(out.attribute_names()[0], "a");
  Vector stds = ColumnStdDevs(out.features());
  EXPECT_NEAR(stds[0], 1.0, 1e-12);
  EXPECT_NEAR(stds[1], 1.0, 1e-12);
}

TEST(TransformDeathTest, DimensionMismatchAborts) {
  auto transform = ColumnAffineTransform::FitZScore(Matrix(3, 2, 1.0));
  EXPECT_DEATH(transform.Apply(Vector(3)), "COHERE_CHECK");
}

}  // namespace
}  // namespace cohere
