#include "data/synthetic.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "stats/covariance.h"
#include "stats/descriptive.h"

namespace cohere {
namespace {

TEST(LatentFactorTest, ShapeAndLabels) {
  LatentFactorConfig config;
  config.num_records = 100;
  config.num_attributes = 20;
  config.num_concepts = 4;
  config.num_classes = 3;
  config.seed = 1;
  Dataset d = GenerateLatentFactor(config);
  EXPECT_EQ(d.NumRecords(), 100u);
  EXPECT_EQ(d.NumAttributes(), 20u);
  EXPECT_EQ(d.NumClasses(), 3u);
  for (int label : d.labels()) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 3);
  }
}

TEST(LatentFactorTest, Deterministic) {
  LatentFactorConfig config;
  config.seed = 9;
  Dataset a = GenerateLatentFactor(config);
  Dataset b = GenerateLatentFactor(config);
  EXPECT_TRUE(a.features() == b.features());
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(LatentFactorTest, ClassWeightsRespected) {
  LatentFactorConfig config;
  config.num_records = 2000;
  config.num_classes = 2;
  config.class_weights = {0.9, 0.1};
  config.seed = 3;
  Dataset d = GenerateLatentFactor(config);
  const auto counts = d.ClassCounts();
  EXPECT_NEAR(static_cast<double>(counts[0]) / 2000.0, 0.9, 0.03);
}

TEST(LatentFactorTest, LowImplicitDimensionalityShowsInSpectrum) {
  // With few concepts and little noise, most variance concentrates in the
  // top `num_concepts` principal directions.
  LatentFactorConfig config;
  config.num_records = 300;
  config.num_attributes = 30;
  config.num_concepts = 3;
  config.noise_stddev = 0.05;
  config.seed = 4;
  Dataset d = GenerateLatentFactor(config);
  Matrix cov = CovarianceMatrix(d.features());
  // Compare top-3 eigenvalue mass against the trace via power-iteration-free
  // proxy: the trace minus the best rank-3 approx must be small. Use the
  // covariance trace vs the sum of the 3 largest diagonal-dominant
  // directions through the eigensolver in the reduction tests; here check
  // the crude proxy that total variance >> noise variance.
  EXPECT_GT(cov.Trace(), 25.0 * config.noise_stddev * config.noise_stddev);
}

TEST(LatentFactorTest, ScaleHeterogeneityChangesColumnVariances) {
  LatentFactorConfig config;
  config.num_records = 400;
  config.num_attributes = 40;
  config.scale_min = 0.1;
  config.scale_max = 100.0;
  config.seed = 5;
  Dataset d = GenerateLatentFactor(config);
  Vector stds = ColumnStdDevs(d.features());
  EXPECT_GT(Max(stds) / Min(stds), 10.0);
}

TEST(UniformCubeTest, RangeAndShape) {
  Dataset d = GenerateUniformCube(500, 10, -0.5, 0.5, 6);
  EXPECT_EQ(d.NumRecords(), 500u);
  EXPECT_EQ(d.NumAttributes(), 10u);
  EXPECT_FALSE(d.HasLabels());
  for (size_t i = 0; i < d.NumRecords(); ++i) {
    for (size_t j = 0; j < d.NumAttributes(); ++j) {
      EXPECT_GE(d.features()(i, j), -0.5);
      EXPECT_LT(d.features()(i, j), 0.5);
    }
  }
}

TEST(UniformCubeTest, VarianceMatchesTheory) {
  // Var of U(0, a) is a^2/12.
  Dataset d = GenerateUniformCube(20000, 2, 0.0, 6.0, 7);
  Vector stds = ColumnStdDevs(d.features());
  EXPECT_NEAR(stds[0] * stds[0], 3.0, 0.1);
}

TEST(GaussianBlobTest, Moments) {
  Dataset d = GenerateGaussianBlob(10000, 3, 2.0, 8);
  Vector stds = ColumnStdDevs(d.features());
  Vector means = ColumnMeans(d.features());
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(means[j], 0.0, 0.08);
    EXPECT_NEAR(stds[j], 2.0, 0.08);
  }
}

TEST(CorruptTest, ReplacesOnlyChosenColumns) {
  Dataset base = GenerateGaussianBlob(50, 5, 1.0, 9);
  Dataset noisy = CorruptWithUniformNoise(base, std::vector<size_t>{1, 3},
                                          6.0, 10);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(noisy.features()(i, 0), base.features()(i, 0));
    EXPECT_EQ(noisy.features()(i, 2), base.features()(i, 2));
    EXPECT_GE(noisy.features()(i, 1), 0.0);
    EXPECT_LT(noisy.features()(i, 1), 6.0);
    EXPECT_GE(noisy.features()(i, 3), 0.0);
  }
}

TEST(CorruptTest, CountOverloadPicksDistinctColumns) {
  Dataset base = GenerateGaussianBlob(100, 20, 1.0, 11);
  Dataset noisy = CorruptWithUniformNoise(base, size_t{5}, 6.0, 12);
  // Exactly 5 columns should be in [0, 6) everywhere (Gaussian columns will
  // contain negatives with overwhelming probability at n=100).
  size_t corrupted = 0;
  for (size_t j = 0; j < 20; ++j) {
    bool all_in_range = true;
    for (size_t i = 0; i < 100; ++i) {
      const double v = noisy.features()(i, j);
      if (v < 0.0 || v >= 6.0) {
        all_in_range = false;
        break;
      }
    }
    if (all_in_range) ++corrupted;
  }
  EXPECT_EQ(corrupted, 5u);
}

TEST(CorruptTest, PreservesLabels) {
  LatentFactorConfig config;
  config.seed = 13;
  Dataset base = GenerateLatentFactor(config);
  Dataset noisy = CorruptWithUniformNoise(base, size_t{3}, 6.0, 14);
  EXPECT_EQ(noisy.labels(), base.labels());
}

TEST(ApplyAttributeScalesTest, MultipliesColumns) {
  Dataset base(Matrix{{1.0, 2.0}, {3.0, 4.0}});
  Dataset scaled = ApplyAttributeScales(base, Vector{10.0, 0.5});
  EXPECT_DOUBLE_EQ(scaled.features()(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(scaled.features()(1, 1), 2.0);
}

TEST(SyntheticDeathTest, BadConfigsAbort) {
  LatentFactorConfig config;
  config.num_concepts = 0;
  EXPECT_DEATH(GenerateLatentFactor(config), "COHERE_CHECK");
  LatentFactorConfig too_many;
  too_many.num_concepts = too_many.num_attributes + 1;
  EXPECT_DEATH(GenerateLatentFactor(too_many), "COHERE_CHECK");
}

}  // namespace
}  // namespace cohere
