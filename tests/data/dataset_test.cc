#include "data/dataset.h"

#include <gtest/gtest.h>

namespace cohere {
namespace {

Dataset MakeLabeled() {
  Matrix features{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0},
                  {10.0, 11.0, 12.0}};
  Dataset d(std::move(features), std::vector<int>{0, 1, 0, 1});
  d.set_name("toy");
  d.SetAttributeNames({"a", "b", "c"});
  d.SetClassNames({"neg", "pos"});
  return d;
}

TEST(DatasetTest, BasicAccessors) {
  Dataset d = MakeLabeled();
  EXPECT_EQ(d.NumRecords(), 4u);
  EXPECT_EQ(d.NumAttributes(), 3u);
  EXPECT_TRUE(d.HasLabels());
  EXPECT_EQ(d.label(2), 0);
  EXPECT_EQ(d.NumClasses(), 2u);
  EXPECT_EQ(d.name(), "toy");
}

TEST(DatasetTest, UnlabeledDataset) {
  Dataset d(Matrix(3, 2));
  EXPECT_FALSE(d.HasLabels());
  EXPECT_EQ(d.NumClasses(), 0u);
}

TEST(DatasetTest, ClassCounts) {
  Dataset d = MakeLabeled();
  const auto counts = d.ClassCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
}

TEST(DatasetTest, RecordCopies) {
  Dataset d = MakeLabeled();
  Vector r = d.Record(1);
  EXPECT_EQ(r[0], 4.0);
  EXPECT_EQ(r[2], 6.0);
}

TEST(DatasetTest, SelectAttributesKeepsLabelsAndNames) {
  Dataset d = MakeLabeled();
  Dataset sub = d.SelectAttributes({2, 0});
  EXPECT_EQ(sub.NumAttributes(), 2u);
  EXPECT_EQ(sub.features()(0, 0), 3.0);
  EXPECT_EQ(sub.features()(0, 1), 1.0);
  EXPECT_EQ(sub.labels(), d.labels());
  ASSERT_EQ(sub.attribute_names().size(), 2u);
  EXPECT_EQ(sub.attribute_names()[0], "c");
  EXPECT_EQ(sub.class_names()[1], "pos");
}

TEST(DatasetTest, SelectRecords) {
  Dataset d = MakeLabeled();
  Dataset sub = d.SelectRecords({3, 1});
  EXPECT_EQ(sub.NumRecords(), 2u);
  EXPECT_EQ(sub.features()(0, 0), 10.0);
  EXPECT_EQ(sub.label(0), 1);
  EXPECT_EQ(sub.label(1), 1);
}

TEST(DatasetTest, WithFeaturesReplacesMatrixKeepsLabels) {
  Dataset d = MakeLabeled();
  Dataset reduced = d.WithFeatures(Matrix(4, 2, 1.0));
  EXPECT_EQ(reduced.NumAttributes(), 2u);
  EXPECT_EQ(reduced.labels(), d.labels());
  // Attribute names no longer describe the new columns.
  EXPECT_TRUE(reduced.attribute_names().empty());
}

TEST(DatasetTest, ShuffleKeepsRecordLabelPairing) {
  Dataset d = MakeLabeled();
  // Mark each record's first feature with its label for pair checking.
  Matrix features = d.features();
  for (size_t i = 0; i < 4; ++i) {
    features.At(i, 0) = static_cast<double>(d.label(i));
  }
  Dataset tagged(features, d.labels());
  Rng rng(77);
  tagged.ShuffleRecords(&rng);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(static_cast<int>(tagged.features()(i, 0)), tagged.label(i));
  }
}

TEST(DatasetTest, SplitPartitionsInOrder) {
  Dataset d = MakeLabeled();
  auto [head, tail] = d.Split(3);
  EXPECT_EQ(head.NumRecords(), 3u);
  EXPECT_EQ(tail.NumRecords(), 1u);
  EXPECT_EQ(tail.features()(0, 0), 10.0);
  EXPECT_EQ(tail.label(0), 1);
}

TEST(DatasetDeathTest, MismatchedLabelsAbort) {
  EXPECT_DEATH(Dataset(Matrix(3, 2), std::vector<int>{0, 1}), "COHERE_CHECK");
}

TEST(DatasetDeathTest, LabelAccessOnUnlabeledAborts) {
  Dataset d(Matrix(2, 2));
  EXPECT_DEATH(d.label(0), "COHERE_CHECK");
}

TEST(DatasetDeathTest, BadAttributeNamesAbort) {
  Dataset d(Matrix(2, 3));
  EXPECT_DEATH(d.SetAttributeNames({"only", "two"}), "COHERE_CHECK");
}

}  // namespace
}  // namespace cohere
