#include "data/arff.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace cohere {
namespace {

constexpr char kBasicArff[] = R"(% a comment
@relation weather
@attribute temperature numeric
@attribute humidity real
@attribute class {sunny, rainy}

@data
20.5, 60, sunny
10.0, 90, rainy
15.0, 75, sunny
)";

TEST(ArffTest, ParsesBasicFile) {
  Result<Dataset> d = ParseArff(kBasicArff);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->name(), "weather");
  EXPECT_EQ(d->NumRecords(), 3u);
  EXPECT_EQ(d->NumAttributes(), 2u);
  EXPECT_DOUBLE_EQ(d->features()(0, 0), 20.5);
  ASSERT_TRUE(d->HasLabels());
  EXPECT_EQ(d->label(0), 0);
  EXPECT_EQ(d->label(1), 1);
  EXPECT_EQ(d->class_names()[0], "sunny");
  EXPECT_EQ(d->attribute_names()[1], "humidity");
}

TEST(ArffTest, PrefersAttributeNamedClass) {
  const char* arff =
      "@relation r\n"
      "@attribute class {a,b}\n"
      "@attribute x numeric\n"
      "@data\n"
      "a, 1\n"
      "b, 2\n";
  Result<Dataset> d = ParseArff(arff);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->NumAttributes(), 1u);
  EXPECT_EQ(d->label(1), 1);
  EXPECT_EQ(d->attribute_names()[0], "x");
}

TEST(ArffTest, QuotedAttributeNames) {
  const char* arff =
      "@relation r\n"
      "@attribute 'my attr' numeric\n"
      "@attribute class {p,q}\n"
      "@data\n"
      "3, q\n";
  Result<Dataset> d = ParseArff(arff);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->attribute_names()[0], "my attr");
  EXPECT_EQ(d->label(0), 1);
}

TEST(ArffTest, ImputesMissingNumericValues) {
  const char* arff =
      "@relation r\n"
      "@attribute x numeric\n"
      "@attribute class {u,v}\n"
      "@data\n"
      "2, u\n"
      "?, v\n"
      "4, u\n";
  Result<Dataset> d = ParseArff(arff);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->features()(1, 0), 3.0);
}

TEST(ArffTest, NoNominalAttributeMeansUnlabeled) {
  const char* arff =
      "@relation r\n"
      "@attribute x numeric\n"
      "@attribute y numeric\n"
      "@data\n"
      "1, 2\n";
  Result<Dataset> d = ParseArff(arff);
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->HasLabels());
  EXPECT_EQ(d->NumAttributes(), 2u);
}

TEST(ArffTest, RejectsUndeclaredClassValue) {
  const char* arff =
      "@relation r\n"
      "@attribute class {a,b}\n"
      "@data\n"
      "c\n";
  EXPECT_FALSE(ParseArff(arff).ok());
}

TEST(ArffTest, RejectsMissingClassValue) {
  const char* arff =
      "@relation r\n"
      "@attribute x numeric\n"
      "@attribute class {a,b}\n"
      "@data\n"
      "1, ?\n";
  EXPECT_FALSE(ParseArff(arff).ok());
}

TEST(ArffTest, RejectsNonClassNominalAttribute) {
  const char* arff =
      "@relation r\n"
      "@attribute color {red,blue}\n"
      "@attribute class {a,b}\n"
      "@data\n"
      "red, a\n";
  EXPECT_FALSE(ParseArff(arff).ok());
}

TEST(ArffTest, RejectsSparseData) {
  const char* arff =
      "@relation r\n"
      "@attribute x numeric\n"
      "@data\n"
      "{0 5}\n";
  EXPECT_FALSE(ParseArff(arff).ok());
}

TEST(ArffTest, RejectsStringAttributes) {
  const char* arff =
      "@relation r\n"
      "@attribute s string\n"
      "@data\n"
      "hello\n";
  EXPECT_FALSE(ParseArff(arff).ok());
}

TEST(ArffTest, RejectsMissingDataSection) {
  EXPECT_FALSE(ParseArff("@relation r\n@attribute x numeric\n").ok());
}

TEST(ArffTest, RejectsWrongFieldCount) {
  const char* arff =
      "@relation r\n"
      "@attribute x numeric\n"
      "@attribute y numeric\n"
      "@data\n"
      "1\n";
  EXPECT_FALSE(ParseArff(arff).ok());
}

TEST(ArffTest, RoundTripThroughFile) {
  Matrix features{{1.0, 2.0}, {3.0, 4.0}};
  Dataset original(features, std::vector<int>{0, 1});
  original.set_name("rt");
  original.SetAttributeNames({"f0", "f1"});
  original.SetClassNames({"neg", "pos"});

  const std::string path = ::testing::TempDir() + "/cohere_arff_rt.arff";
  ASSERT_TRUE(WriteArff(original, path).ok());
  Result<Dataset> loaded = LoadArff(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name(), "rt");
  EXPECT_EQ(loaded->NumRecords(), 2u);
  EXPECT_DOUBLE_EQ(loaded->features()(1, 1), 4.0);
  EXPECT_EQ(loaded->label(1), 1);
  EXPECT_EQ(loaded->class_names()[0], "neg");
  std::remove(path.c_str());
}

TEST(ArffTest, NonFiniteValuesRejectedWithLineNumber) {
  const char* header =
      "@relation r\n"
      "@attribute x numeric\n"
      "@attribute y numeric\n"
      "@data\n";
  const char* bad_rows[] = {"1, inf\n", "nan, 2\n", "3, Infinity\n",
                            "1e999, 4\n"};
  for (const char* row : bad_rows) {
    Result<Dataset> d = ParseArff(std::string(header) + "1, 2\n" + row);
    ASSERT_FALSE(d.ok()) << row;
    EXPECT_EQ(d.status().code(), StatusCode::kParseError) << row;
    // The offending row is line 6 of the document.
    EXPECT_NE(d.status().message().find("line 6"), std::string::npos)
        << d.status().message();
  }
}

TEST(ArffTest, MissingMarkersStillImputeDespiteNonFiniteGate) {
  const char* arff =
      "@relation r\n"
      "@attribute x numeric\n"
      "@attribute y numeric\n"
      "@data\n"
      "1, 10\n"
      "?, 20\n"
      "3, ?\n";
  Result<Dataset> d = ParseArff(arff);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_DOUBLE_EQ(d->features()(1, 0), 2.0);   // mean of 1, 3
  EXPECT_DOUBLE_EQ(d->features()(2, 1), 15.0);  // mean of 10, 20
}

TEST(ArffTest, DenormalValuesLoadExactly) {
  const char* arff =
      "@relation r\n"
      "@attribute x numeric\n"
      "@data\n"
      "1e-320\n"
      "2\n";
  Result<Dataset> d = ParseArff(arff);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_GT(d->features()(0, 0), 0.0);
  EXPECT_LT(d->features()(0, 0), 1e-300);
}

TEST(ArffTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadArff("/nonexistent/x.arff").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace cohere
