// Regression tests for deadline-budget rounding (QueryControl::DeadlineMicros).
// The original truncation bug: a budget in (0, 1) microseconds cast to 0,
// arming a deadline that was already expired at creation, while negative
// budgets silently meant "no deadline" instead of being clamped.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "index/knn.h"

namespace cohere {
namespace {

TEST(DeadlineMicrosTest, NonPositiveAndNanBudgetsAreInactive) {
  EXPECT_EQ(QueryControl::DeadlineMicros(0.0), 0);
  EXPECT_EQ(QueryControl::DeadlineMicros(-1.0), 0);
  EXPECT_EQ(QueryControl::DeadlineMicros(-1e300), 0);
  EXPECT_EQ(QueryControl::DeadlineMicros(-0.0), 0);
  EXPECT_EQ(QueryControl::DeadlineMicros(
                std::numeric_limits<double>::quiet_NaN()),
            0);
  EXPECT_EQ(QueryControl::DeadlineMicros(
                -std::numeric_limits<double>::infinity()),
            0);
}

TEST(DeadlineMicrosTest, SubMicrosecondBudgetsRoundUpNeverToZero) {
  // The regression: these all used to truncate to an already-expired 0.
  EXPECT_EQ(QueryControl::DeadlineMicros(0.5), 1);
  EXPECT_EQ(QueryControl::DeadlineMicros(0.001), 1);
  EXPECT_EQ(QueryControl::DeadlineMicros(1e-12), 1);
  EXPECT_EQ(QueryControl::DeadlineMicros(
                std::numeric_limits<double>::denorm_min()),
            1);
}

TEST(DeadlineMicrosTest, FractionalBudgetsRoundUpWholeOnesPassThrough) {
  EXPECT_EQ(QueryControl::DeadlineMicros(1.0), 1);
  EXPECT_EQ(QueryControl::DeadlineMicros(1.5), 2);
  EXPECT_EQ(QueryControl::DeadlineMicros(2.0), 2);
  EXPECT_EQ(QueryControl::DeadlineMicros(2.3), 3);
  EXPECT_EQ(QueryControl::DeadlineMicros(1000.0), 1000);
}

TEST(DeadlineMicrosTest, AstronomicalBudgetsClampBelowClockOverflow) {
  const long long cap = QueryControl::DeadlineMicros(
      std::numeric_limits<double>::infinity());
  EXPECT_GT(cap, 0);
  EXPECT_EQ(QueryControl::DeadlineMicros(1e300), cap);
  EXPECT_EQ(QueryControl::DeadlineMicros(std::numeric_limits<double>::max()),
            cap);
  // The cap converts to a steady_clock duration without overflow: about
  // 285 years of microseconds fits comfortably in 64-bit nanoseconds.
  EXPECT_LE(cap, 9'000'000'000'000'000LL);
}

TEST(QueryControlTest, NegativeDeadlineNeverStops) {
  QueryLimits limits;
  limits.deadline_us = -5.0;
  EXPECT_FALSE(limits.active());
  QueryControl control = QueryControl::FromLimits(limits);
  // Drive well past the first clock check: with no deadline armed the
  // control must never latch.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(control.ShouldStop());
  }
  EXPECT_FALSE(control.deadline_exceeded());
}

TEST(QueryControlTest, GenerousDeadlineDoesNotFirePrematurely) {
  QueryLimits limits;
  limits.deadline_us = 60'000'000.0;  // one minute
  QueryControl control = QueryControl::FromLimits(limits);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(control.ShouldStop());
  }
}

TEST(QueryControlTest, CancelledTokenStopsAtTheFirstCheck) {
  CancelToken cancel;
  cancel.Cancel();
  QueryLimits limits;
  limits.cancel = &cancel;
  QueryControl control = QueryControl::FromLimits(limits);
  // The first call always evaluates (countdown starts at 1), so a
  // pre-cancelled token stops the query before any real work.
  EXPECT_TRUE(control.ShouldStop());
  EXPECT_TRUE(control.stopped());
  EXPECT_FALSE(control.deadline_exceeded());
}

}  // namespace
}  // namespace cohere
