// QueryBatch must agree exactly with per-query Query for every backend and
// at every thread count — batch queries are independent, so parallel fan-out
// may not change a single bit of the answers.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "index/kd_tree.h"
#include "index/knn.h"
#include "index/linear_scan.h"
#include "index/rstar_tree.h"
#include "index/va_file.h"
#include "index/vp_tree.h"
#include "stats/rng.h"

namespace cohere {
namespace {

class ScopedThreadCount {
 public:
  explicit ScopedThreadCount(size_t n) { SetParallelThreadCount(n); }
  ~ScopedThreadCount() { SetParallelThreadCount(0); }
};

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m.At(i, j) = rng.Gaussian();
  }
  return m;
}

struct Backend {
  const char* name;
  std::unique_ptr<KnnIndex> (*make)(const Matrix&, const Metric*);
};

const Backend kBackends[] = {
    {"linear_scan",
     [](const Matrix& data, const Metric* metric) -> std::unique_ptr<KnnIndex> {
       return std::make_unique<LinearScanIndex>(data, metric);
     }},
    {"kd_tree",
     [](const Matrix& data, const Metric* metric) -> std::unique_ptr<KnnIndex> {
       return std::make_unique<KdTreeIndex>(data, metric, 16);
     }},
    {"va_file",
     [](const Matrix& data, const Metric* metric) -> std::unique_ptr<KnnIndex> {
       return std::make_unique<VaFileIndex>(data, metric, 5);
     }},
    {"vp_tree",
     [](const Matrix& data, const Metric* metric) -> std::unique_ptr<KnnIndex> {
       return std::make_unique<VpTreeIndex>(data, metric, 8);
     }},
    {"rstar_tree",
     [](const Matrix& data, const Metric* metric) -> std::unique_ptr<KnnIndex> {
       return std::make_unique<RStarTreeIndex>(data, metric, 16);
     }},
};

TEST(QueryBatchTest, MatchesPerQueryResultsOnEveryBackend) {
  const Matrix data = RandomMatrix(200, 8, 41);
  const Matrix queries = RandomMatrix(37, 8, 42);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  for (const Backend& backend : kBackends) {
    SCOPED_TRACE(backend.name);
    auto index = backend.make(data, metric.get());
    for (size_t threads : {1u, 4u}) {
      SCOPED_TRACE(threads);
      ScopedThreadCount guard(threads);
      const auto batch = index->QueryBatch(queries, 5);
      ASSERT_EQ(batch.size(), queries.rows());
      for (size_t i = 0; i < queries.rows(); ++i) {
        const auto expected = index->Query(queries.Row(i), 5);
        EXPECT_EQ(batch[i], expected) << "query " << i;
      }
    }
  }
}

TEST(QueryBatchTest, MergedStatsEqualPerQuerySums) {
  const Matrix data = RandomMatrix(300, 6, 43);
  const Matrix queries = RandomMatrix(25, 6, 44);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  for (const Backend& backend : kBackends) {
    SCOPED_TRACE(backend.name);
    auto index = backend.make(data, metric.get());
    QueryStats expected;
    for (size_t i = 0; i < queries.rows(); ++i) {
      index->Query(queries.Row(i), 3, KnnIndex::kNoSkip, &expected);
    }
    for (size_t threads : {1u, 4u}) {
      SCOPED_TRACE(threads);
      ScopedThreadCount guard(threads);
      QueryStats merged;
      index->QueryBatch(queries, 3, &merged);
      EXPECT_EQ(merged.distance_evaluations, expected.distance_evaluations);
      EXPECT_EQ(merged.nodes_visited, expected.nodes_visited);
      EXPECT_EQ(merged.candidates_refined, expected.candidates_refined);
    }
  }
}

TEST(QueryBatchTest, NonTrueMetricsWorkThroughTheScanBatchPath) {
  const Matrix data = RandomMatrix(150, 5, 45);
  const Matrix queries = RandomMatrix(11, 5, 46);
  ScopedThreadCount guard(4);
  for (MetricKind kind : {MetricKind::kCosine, MetricKind::kFractional}) {
    auto metric = MakeMetric(kind, 0.5);
    LinearScanIndex index(data, metric.get());
    const auto batch = index.QueryBatch(queries, 4);
    for (size_t i = 0; i < queries.rows(); ++i) {
      EXPECT_EQ(batch[i], index.Query(queries.Row(i), 4));
    }
  }
}

TEST(QueryBatchTest, EmptyBatchAndKZero) {
  const Matrix data = RandomMatrix(50, 4, 47);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  LinearScanIndex index(data, metric.get());
  EXPECT_TRUE(index.QueryBatch(Matrix(), 5).empty());
  const Matrix queries = RandomMatrix(7, 4, 48);
  const auto batch = index.QueryBatch(queries, 0);
  ASSERT_EQ(batch.size(), 7u);
  for (const auto& result : batch) EXPECT_TRUE(result.empty());
}

}  // namespace
}  // namespace cohere
