// QueryBatch must agree exactly with per-query Query for every backend and
// at every thread count — batch queries are independent, so parallel fan-out
// may not change a single bit of the answers.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "index/kd_tree.h"
#include "index/knn.h"
#include "index/linear_scan.h"
#include "index/rstar_tree.h"
#include "index/va_file.h"
#include "index/vp_tree.h"
#include "stats/rng.h"

namespace cohere {
namespace {

class ScopedThreadCount {
 public:
  explicit ScopedThreadCount(size_t n) { SetParallelThreadCount(n); }
  ~ScopedThreadCount() { SetParallelThreadCount(0); }
};

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m.At(i, j) = rng.Gaussian();
  }
  return m;
}

struct Backend {
  const char* name;
  std::unique_ptr<KnnIndex> (*make)(const Matrix&, const Metric*);
};

const Backend kBackends[] = {
    {"linear_scan",
     [](const Matrix& data, const Metric* metric) -> std::unique_ptr<KnnIndex> {
       return std::make_unique<LinearScanIndex>(data, metric);
     }},
    {"kd_tree",
     [](const Matrix& data, const Metric* metric) -> std::unique_ptr<KnnIndex> {
       return std::make_unique<KdTreeIndex>(data, metric, 16);
     }},
    {"va_file",
     [](const Matrix& data, const Metric* metric) -> std::unique_ptr<KnnIndex> {
       return std::make_unique<VaFileIndex>(data, metric, 5);
     }},
    {"vp_tree",
     [](const Matrix& data, const Metric* metric) -> std::unique_ptr<KnnIndex> {
       return std::make_unique<VpTreeIndex>(data, metric, 8);
     }},
    {"rstar_tree",
     [](const Matrix& data, const Metric* metric) -> std::unique_ptr<KnnIndex> {
       return std::make_unique<RStarTreeIndex>(data, metric, 16);
     }},
};

TEST(QueryBatchTest, MatchesPerQueryResultsOnEveryBackend) {
  const Matrix data = RandomMatrix(200, 8, 41);
  const Matrix queries = RandomMatrix(37, 8, 42);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  for (const Backend& backend : kBackends) {
    SCOPED_TRACE(backend.name);
    auto index = backend.make(data, metric.get());
    for (size_t threads : {1u, 4u}) {
      SCOPED_TRACE(threads);
      ScopedThreadCount guard(threads);
      const auto batch = index->QueryBatch(queries, 5);
      ASSERT_EQ(batch.size(), queries.rows());
      for (size_t i = 0; i < queries.rows(); ++i) {
        const auto expected = index->Query(queries.Row(i), 5);
        EXPECT_EQ(batch[i], expected) << "query " << i;
      }
    }
  }
}

TEST(QueryBatchTest, MergedStatsEqualPerQuerySums) {
  const Matrix data = RandomMatrix(300, 6, 43);
  const Matrix queries = RandomMatrix(25, 6, 44);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  for (const Backend& backend : kBackends) {
    SCOPED_TRACE(backend.name);
    auto index = backend.make(data, metric.get());
    QueryStats expected;
    for (size_t i = 0; i < queries.rows(); ++i) {
      index->Query(queries.Row(i), 3, KnnIndex::kNoSkip, &expected);
    }
    for (size_t threads : {1u, 4u}) {
      SCOPED_TRACE(threads);
      ScopedThreadCount guard(threads);
      QueryStats merged;
      index->QueryBatch(queries, 3, &merged);
      EXPECT_EQ(merged.distance_evaluations, expected.distance_evaluations);
      EXPECT_EQ(merged.nodes_visited, expected.nodes_visited);
      EXPECT_EQ(merged.candidates_refined, expected.candidates_refined);
    }
  }
}

TEST(QueryBatchTest, NonTrueMetricsWorkThroughTheScanBatchPath) {
  const Matrix data = RandomMatrix(150, 5, 45);
  const Matrix queries = RandomMatrix(11, 5, 46);
  ScopedThreadCount guard(4);
  for (MetricKind kind : {MetricKind::kCosine, MetricKind::kFractional}) {
    auto metric = MakeMetric(kind, 0.5);
    LinearScanIndex index(data, metric.get());
    const auto batch = index.QueryBatch(queries, 4);
    for (size_t i = 0; i < queries.rows(); ++i) {
      EXPECT_EQ(batch[i], index.Query(queries.Row(i), 4));
    }
  }
}

TEST(QueryBatchDeadlineTest, InactiveLimitsMatchTheDefaultPath) {
  const Matrix data = RandomMatrix(180, 6, 51);
  const Matrix queries = RandomMatrix(19, 6, 52);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  const QueryLimits inactive;  // deadline 0, no token
  ASSERT_FALSE(inactive.active());
  for (const Backend& backend : kBackends) {
    SCOPED_TRACE(backend.name);
    auto index = backend.make(data, metric.get());
    ScopedThreadCount guard(4);
    QueryStats plain_stats;
    QueryStats limited_stats;
    const auto plain = index->QueryBatch(queries, 5, &plain_stats);
    const auto limited =
        index->QueryBatch(queries, 5, &limited_stats, inactive);
    EXPECT_EQ(plain, limited);
    EXPECT_FALSE(limited_stats.truncated);
    EXPECT_EQ(plain_stats.distance_evaluations,
              limited_stats.distance_evaluations);
  }
}

TEST(QueryBatchDeadlineTest, GenerousDeadlineLeavesAnswersExact) {
  const Matrix data = RandomMatrix(150, 5, 53);
  const Matrix queries = RandomMatrix(13, 5, 54);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  QueryLimits limits;
  limits.deadline_us = 60e6;  // one minute: never expires inside the test
  for (const Backend& backend : kBackends) {
    SCOPED_TRACE(backend.name);
    auto index = backend.make(data, metric.get());
    ScopedThreadCount guard(4);
    QueryStats stats;
    const auto batch = index->QueryBatch(queries, 4, &stats, limits);
    EXPECT_FALSE(stats.truncated);
    for (size_t i = 0; i < queries.rows(); ++i) {
      EXPECT_EQ(batch[i], index->Query(queries.Row(i), 4)) << "query " << i;
    }
  }
}

TEST(QueryBatchDeadlineTest, ExpiredDeadlineTruncatesEveryBackend) {
  const Matrix data = RandomMatrix(400, 6, 55);
  const Matrix queries = RandomMatrix(9, 6, 56);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  QueryLimits limits;
  limits.deadline_us = 1e-3;  // already in the past at the first check
  for (const Backend& backend : kBackends) {
    SCOPED_TRACE(backend.name);
    auto index = backend.make(data, metric.get());
    for (size_t threads : {1u, 4u}) {
      SCOPED_TRACE(threads);
      ScopedThreadCount guard(threads);
      QueryStats stats;
      const auto batch = index->QueryBatch(queries, 5, &stats, limits);
      ASSERT_EQ(batch.size(), queries.rows());
      EXPECT_TRUE(stats.truncated);
      // The first control check fires before a full scan's worth of work:
      // far fewer evaluations than the exact answer needs.
      EXPECT_LT(stats.distance_evaluations,
                queries.rows() * data.rows());
    }
  }
}

TEST(QueryBatchDeadlineTest, CancelTokenStopsTheBatch) {
  const Matrix data = RandomMatrix(300, 5, 57);
  const Matrix queries = RandomMatrix(7, 5, 58);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  CancelToken token;
  token.Cancel();  // pre-cancelled: every row stops at its first check
  QueryLimits limits;
  limits.cancel = &token;
  ASSERT_TRUE(limits.active());
  for (const Backend& backend : kBackends) {
    SCOPED_TRACE(backend.name);
    auto index = backend.make(data, metric.get());
    ScopedThreadCount guard(4);
    QueryStats stats;
    const auto batch = index->QueryBatch(queries, 5, &stats, limits);
    ASSERT_EQ(batch.size(), queries.rows());
    EXPECT_TRUE(stats.truncated);

    token.Reset();
    QueryStats fresh;
    const auto exact = index->QueryBatch(queries, 5, &fresh, limits);
    EXPECT_FALSE(fresh.truncated);
    for (size_t i = 0; i < queries.rows(); ++i) {
      EXPECT_EQ(exact[i], index->Query(queries.Row(i), 5));
    }
    token.Cancel();  // restore for the next backend
  }
}

TEST(QueryBatchDeadlineTest, PerQueryDeadlineTruncatesSingleQueries) {
  const Matrix data = RandomMatrix(500, 6, 59);
  const Vector query = RandomMatrix(1, 6, 60).Row(0);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  QueryLimits limits;
  limits.deadline_us = 1e-3;
  for (const Backend& backend : kBackends) {
    SCOPED_TRACE(backend.name);
    auto index = backend.make(data, metric.get());
    QueryStats stats;
    const auto result =
        index->Query(query, 5, KnnIndex::kNoSkip, &stats, limits);
    EXPECT_TRUE(stats.truncated);
    EXPECT_LE(result.size(), 5u);
  }
}

TEST(QueryBatchTest, EmptyBatchAndKZero) {
  const Matrix data = RandomMatrix(50, 4, 47);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  LinearScanIndex index(data, metric.get());
  EXPECT_TRUE(index.QueryBatch(Matrix(), 5).empty());
  const Matrix queries = RandomMatrix(7, 4, 48);
  const auto batch = index.QueryBatch(queries, 0);
  ASSERT_EQ(batch.size(), 7u);
  for (const auto& result : batch) EXPECT_TRUE(result.empty());
}

}  // namespace
}  // namespace cohere
