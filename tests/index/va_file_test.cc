#include "index/va_file.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "index/linear_scan.h"

namespace cohere {
namespace {

using testing_util::RandomMatrix;

TEST(VaFileTest, MatchesLinearScanOnSmallExample) {
  Matrix data{{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.0}, {0.5, 0.5}, {3.0, 3.0}};
  auto metric = MakeMetric(MetricKind::kEuclidean);
  VaFileIndex va(data, metric.get(), 4);
  LinearScanIndex scan(data, metric.get());
  const Vector query{0.4, 0.4};
  EXPECT_EQ(va.Query(query, 3), scan.Query(query, 3));
}

TEST(VaFileTest, SkipIndexWorks) {
  Matrix data{{0.0}, {0.1}, {5.0}};
  auto metric = MakeMetric(MetricKind::kEuclidean);
  VaFileIndex va(data, metric.get());
  const auto result = va.Query(Vector{0.0}, 1, /*skip_index=*/0, nullptr);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].index, 1u);
}

TEST(VaFileTest, RefinesFewerThanScansWhenQuantizationHelps) {
  Rng rng(98);
  Matrix data = RandomMatrix(2000, 4, &rng);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  VaFileIndex va(data, metric.get(), 6);
  QueryStats stats;
  va.Query(rng.GaussianVector(4), 5, KnnIndex::kNoSkip, &stats);
  // Phase 1 scans every approximation; phase 2 must touch only a fraction.
  EXPECT_EQ(stats.nodes_visited, 2000u);
  EXPECT_LT(stats.candidates_refined, 400u);
}

TEST(VaFileTest, ApproximationBytesIsCompact) {
  Matrix data(100, 8);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  VaFileIndex va(data, metric.get(), 5);
  // One byte per cell code plus the flattened (d x (cells+1)) boundary
  // table of doubles.
  EXPECT_EQ(va.ApproximationBytes(), 100u * 8u + 8u * (32u + 1u) * 8u);
}

TEST(VaFileTest, ConstantColumnHandled) {
  Matrix data(30, 2);
  for (size_t i = 0; i < 30; ++i) {
    data.At(i, 0) = 5.0;  // constant
    data.At(i, 1) = static_cast<double>(i);
  }
  auto metric = MakeMetric(MetricKind::kEuclidean);
  VaFileIndex va(data, metric.get(), 3);
  LinearScanIndex scan(data, metric.get());
  const Vector query{5.0, 12.2};
  EXPECT_EQ(va.Query(query, 4), scan.Query(query, 4));
}

TEST(VaFileDeathTest, RejectsBadConfig) {
  auto cosine = MakeMetric(MetricKind::kCosine);
  EXPECT_DEATH(VaFileIndex(Matrix(3, 2), cosine.get()), "decomposable");
  auto l2 = MakeMetric(MetricKind::kEuclidean);
  EXPECT_DEATH(VaFileIndex(Matrix(3, 2), l2.get(), 0), "COHERE_CHECK");
  EXPECT_DEATH(VaFileIndex(Matrix(3, 2), l2.get(), 9), "COHERE_CHECK");
}

struct VaCase {
  MetricKind metric;
  size_t n;
  size_t d;
  size_t k;
  size_t bits;
};

class VaFileAgreementTest : public ::testing::TestWithParam<VaCase> {};

TEST_P(VaFileAgreementTest, AgreesWithLinearScan) {
  const VaCase& c = GetParam();
  Rng rng(2000 + c.n + c.d * 11 + c.k + c.bits);
  Matrix data = RandomMatrix(c.n, c.d, &rng);
  auto metric = MakeMetric(c.metric);
  VaFileIndex va(data, metric.get(), c.bits);
  LinearScanIndex scan(data, metric.get());
  for (int trial = 0; trial < 8; ++trial) {
    const Vector query = rng.GaussianVector(c.d);
    const auto expected = scan.Query(query, c.k);
    const auto actual = va.Query(query, c.k);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].index, expected[i].index) << "trial " << trial;
      EXPECT_NEAR(actual[i].distance, expected[i].distance, 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, VaFileAgreementTest,
    ::testing::Values(VaCase{MetricKind::kEuclidean, 200, 3, 5, 4},
                      VaCase{MetricKind::kEuclidean, 300, 8, 3, 6},
                      VaCase{MetricKind::kManhattan, 150, 5, 4, 5},
                      VaCase{MetricKind::kChebyshev, 100, 4, 2, 5},
                      VaCase{MetricKind::kEuclidean, 80, 20, 6, 1},
                      VaCase{MetricKind::kEuclidean, 500, 2, 1, 8}));

}  // namespace
}  // namespace cohere
