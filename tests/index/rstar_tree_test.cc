#include "index/rstar_tree.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "index/linear_scan.h"

namespace cohere {
namespace {

using testing_util::RandomMatrix;

TEST(RStarTreeTest, MatchesLinearScanOnSmallExample) {
  Matrix data{{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.0}, {0.5, 0.5}, {3.0, 3.0}};
  auto metric = MakeMetric(MetricKind::kEuclidean);
  RStarTreeIndex tree(data, metric.get(), 4);
  LinearScanIndex scan(data, metric.get());
  const Vector query{0.4, 0.4};
  EXPECT_EQ(tree.Query(query, 3), scan.Query(query, 3));
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RStarTreeTest, InvariantsHoldAcrossGrowth) {
  Rng rng(801);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  for (size_t n : {1u, 5u, 17u, 64u, 200u, 777u}) {
    Matrix data = RandomMatrix(n, 3, &rng);
    RStarTreeIndex tree(data, metric.get(), 8);
    EXPECT_TRUE(tree.CheckInvariants()) << "n=" << n;
    if (n > 64) {
      EXPECT_GT(tree.Height(), 1u);
    }
  }
}

TEST(RStarTreeTest, EmptyDataset) {
  auto metric = MakeMetric(MetricKind::kEuclidean);
  RStarTreeIndex tree(Matrix(0, 2), metric.get());
  EXPECT_TRUE(tree.Query(Vector(2), 5).empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RStarTreeTest, SkipIndexWorks) {
  Matrix data{{0.0}, {0.1}, {5.0}};
  auto metric = MakeMetric(MetricKind::kEuclidean);
  RStarTreeIndex tree(data, metric.get());
  const auto result = tree.Query(Vector{0.0}, 1, /*skip_index=*/0, nullptr);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].index, 1u);
}

TEST(RStarTreeTest, DuplicatePointsKeepAllRows) {
  Matrix data(60, 2, 3.0);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  RStarTreeIndex tree(data, metric.get(), 6);
  EXPECT_TRUE(tree.CheckInvariants());
  const auto result = tree.Query(Vector(2, 3.0), 10);
  ASSERT_EQ(result.size(), 10u);
  for (const auto& n : result) EXPECT_EQ(n.distance, 0.0);
}

TEST(RStarTreeTest, PrunesInLowDimensions) {
  Rng rng(802);
  Matrix data = RandomMatrix(3000, 2, &rng);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  RStarTreeIndex tree(data, metric.get(), 16);
  QueryStats stats;
  tree.Query(Vector(2), 5, KnnIndex::kNoSkip, &stats);
  EXPECT_LT(stats.distance_evaluations, 600u);
}

TEST(RStarTreeDeathTest, RejectsBadConfig) {
  auto cosine = MakeMetric(MetricKind::kCosine);
  EXPECT_DEATH(RStarTreeIndex(Matrix(3, 2), cosine.get()), "true metric");
  auto l2 = MakeMetric(MetricKind::kEuclidean);
  EXPECT_DEATH(RStarTreeIndex(Matrix(3, 2), l2.get(), 3), "COHERE_CHECK");
}

struct RStarCase {
  MetricKind metric;
  size_t n;
  size_t d;
  size_t k;
  size_t max_entries;
};

class RStarAgreementTest : public ::testing::TestWithParam<RStarCase> {};

TEST_P(RStarAgreementTest, AgreesWithLinearScanAndStaysValid) {
  const RStarCase& c = GetParam();
  Rng rng(4000 + c.n + c.d * 17 + c.k);
  Matrix data = RandomMatrix(c.n, c.d, &rng);
  auto metric = MakeMetric(c.metric);
  RStarTreeIndex tree(data, metric.get(), c.max_entries);
  ASSERT_TRUE(tree.CheckInvariants());
  LinearScanIndex scan(data, metric.get());
  for (int trial = 0; trial < 10; ++trial) {
    const Vector query = rng.GaussianVector(c.d);
    const auto expected = scan.Query(query, c.k);
    const auto actual = tree.Query(query, c.k);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].index, expected[i].index) << "trial " << trial;
      EXPECT_NEAR(actual[i].distance, expected[i].distance, 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RStarAgreementTest,
    ::testing::Values(RStarCase{MetricKind::kEuclidean, 100, 2, 1, 4},
                      RStarCase{MetricKind::kEuclidean, 400, 3, 5, 8},
                      RStarCase{MetricKind::kManhattan, 250, 4, 4, 16},
                      RStarCase{MetricKind::kChebyshev, 150, 5, 2, 8},
                      RStarCase{MetricKind::kEuclidean, 60, 30, 7, 8},
                      RStarCase{MetricKind::kEuclidean, 600, 2, 3, 32}));

}  // namespace
}  // namespace cohere
