#include "index/metric.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace cohere {
namespace {

TEST(MetricTest, EuclideanKnownValues) {
  auto m = MakeMetric(MetricKind::kEuclidean);
  EXPECT_DOUBLE_EQ(m->Distance(Vector{0.0, 0.0}, Vector{3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(m->ComparableDistance(Vector{0.0, 0.0}, Vector{3.0, 4.0}),
                   25.0);
  EXPECT_DOUBLE_EQ(m->ComparableToActual(25.0), 5.0);
  EXPECT_TRUE(m->IsTrueMetric());
}

TEST(MetricTest, ManhattanKnownValues) {
  auto m = MakeMetric(MetricKind::kManhattan);
  EXPECT_DOUBLE_EQ(m->Distance(Vector{1.0, -1.0}, Vector{4.0, 1.0}), 5.0);
  EXPECT_TRUE(m->IsTrueMetric());
}

TEST(MetricTest, ChebyshevKnownValues) {
  auto m = MakeMetric(MetricKind::kChebyshev);
  EXPECT_DOUBLE_EQ(m->Distance(Vector{1.0, -1.0}, Vector{4.0, 1.0}), 3.0);
}

TEST(MetricTest, FractionalKnownValues) {
  auto m = MakeMetric(MetricKind::kFractional, 0.5);
  // (sqrt(1) + sqrt(4))^2 = 9.
  EXPECT_NEAR(m->Distance(Vector{0.0, 0.0}, Vector{1.0, 4.0}), 9.0, 1e-12);
  EXPECT_FALSE(m->IsTrueMetric());
}

TEST(MetricTest, CosineKnownValues) {
  auto m = MakeMetric(MetricKind::kCosine);
  EXPECT_NEAR(m->Distance(Vector{1.0, 0.0}, Vector{0.0, 1.0}), 1.0, 1e-12);
  EXPECT_NEAR(m->Distance(Vector{1.0, 0.0}, Vector{2.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(m->Distance(Vector{1.0, 0.0}, Vector{-1.0, 0.0}), 2.0, 1e-12);
  EXPECT_EQ(m->Distance(Vector{0.0, 0.0}, Vector{1.0, 0.0}), 1.0);
  EXPECT_FALSE(m->IsTrueMetric());
}

TEST(MetricTest, CosineZeroVectorsSatisfyIdentity) {
  // D(x, x) = 0 must hold for the all-zero vector too; only a zero vector
  // against a nonzero one has undefined direction and maximal distance.
  auto m = MakeMetric(MetricKind::kCosine);
  const Vector zero(3);
  EXPECT_EQ(m->Distance(zero, zero), 0.0);
  EXPECT_EQ(m->Distance(zero, Vector{0.0, 2.0, 0.0}), 1.0);
  EXPECT_EQ(m->Distance(Vector{0.0, 2.0, 0.0}, zero), 1.0);
}

TEST(MetricTest, NamesAndKinds) {
  EXPECT_EQ(MakeMetric(MetricKind::kEuclidean)->name(), "euclidean");
  EXPECT_EQ(MakeMetric(MetricKind::kManhattan)->kind(),
            MetricKind::kManhattan);
}

TEST(MetricTest, FractionalNameTrimsPrecision) {
  EXPECT_EQ(MakeMetric(MetricKind::kFractional, 0.5)->name(),
            "fractional_l0.5");
  EXPECT_EQ(MakeMetric(MetricKind::kFractional, 0.25)->name(),
            "fractional_l0.25");
  EXPECT_EQ(MakeMetric(MetricKind::kFractional, 0.3)->name(),
            "fractional_l0.3");
}

TEST(MetricTest, RawBufferPathMatchesVectorPath) {
  Rng rng(94);
  for (MetricKind kind : {MetricKind::kEuclidean, MetricKind::kManhattan,
                          MetricKind::kChebyshev, MetricKind::kFractional,
                          MetricKind::kCosine}) {
    auto m = MakeMetric(kind, 0.5);
    for (int trial = 0; trial < 10; ++trial) {
      const Vector a = rng.GaussianVector(7);
      const Vector b = rng.GaussianVector(7);
      EXPECT_EQ(m->Distance(a, b), m->Distance(a.data(), b.data(), a.size()));
      EXPECT_EQ(m->ComparableDistance(a, b),
                m->ComparableDistance(a.data(), b.data(), a.size()));
    }
  }
}

class MetricPropertyTest : public ::testing::TestWithParam<MetricKind> {};

TEST_P(MetricPropertyTest, SymmetryAndIdentity) {
  auto m = MakeMetric(GetParam(), 0.5);
  Rng rng(91);
  for (int trial = 0; trial < 20; ++trial) {
    const Vector a = rng.GaussianVector(6);
    const Vector b = rng.GaussianVector(6);
    EXPECT_NEAR(m->Distance(a, b), m->Distance(b, a), 1e-12);
    EXPECT_NEAR(m->Distance(a, a), 0.0, 1e-12);
    EXPECT_GE(m->Distance(a, b), 0.0);
  }
}

TEST_P(MetricPropertyTest, ComparableIsMonotone) {
  auto m = MakeMetric(GetParam(), 0.5);
  Rng rng(92);
  const Vector origin(5);
  Vector prev_pair_a;
  double prev_actual = -1.0;
  double prev_comparable = -1.0;
  for (int trial = 0; trial < 30; ++trial) {
    const Vector x = rng.GaussianVector(5);
    const double actual = m->Distance(origin, x);
    const double comparable = m->ComparableDistance(origin, x);
    EXPECT_NEAR(m->ComparableToActual(comparable), actual, 1e-10);
    if (prev_actual >= 0.0) {
      EXPECT_EQ(actual < prev_actual, comparable < prev_comparable)
          << "comparable form must order like the actual distance";
    }
    prev_actual = actual;
    prev_comparable = comparable;
    prev_pair_a = x;
  }
}

TEST_P(MetricPropertyTest, TrueMetricsSatisfyTriangleInequality) {
  auto m = MakeMetric(GetParam(), 0.5);
  if (!m->IsTrueMetric()) GTEST_SKIP() << "not a true metric";
  Rng rng(93);
  for (int trial = 0; trial < 50; ++trial) {
    const Vector a = rng.GaussianVector(4);
    const Vector b = rng.GaussianVector(4);
    const Vector c = rng.GaussianVector(4);
    EXPECT_LE(m->Distance(a, c),
              m->Distance(a, b) + m->Distance(b, c) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricPropertyTest,
                         ::testing::Values(MetricKind::kEuclidean,
                                           MetricKind::kManhattan,
                                           MetricKind::kChebyshev,
                                           MetricKind::kFractional,
                                           MetricKind::kCosine));

}  // namespace
}  // namespace cohere
