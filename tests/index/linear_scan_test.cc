#include "index/linear_scan.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace cohere {
namespace {

TEST(KnnCollectorTest, KeepsKSmallest) {
  KnnCollector c(2);
  c.Offer(0, 5.0);
  c.Offer(1, 1.0);
  c.Offer(2, 3.0);
  c.Offer(3, 0.5);
  const auto out = c.Take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].index, 3u);
  EXPECT_EQ(out[1].index, 1u);
}

TEST(KnnCollectorTest, ThresholdIsInfinityUntilFull) {
  KnnCollector c(3);
  EXPECT_TRUE(std::isinf(c.Threshold()));
  c.Offer(0, 1.0);
  c.Offer(1, 2.0);
  EXPECT_TRUE(std::isinf(c.Threshold()));
  c.Offer(2, 3.0);
  EXPECT_EQ(c.Threshold(), 3.0);
  c.Offer(3, 0.5);
  EXPECT_EQ(c.Threshold(), 2.0);
}

TEST(KnnCollectorTest, TieBrokenByIndex) {
  KnnCollector c(2);
  c.Offer(5, 1.0);
  c.Offer(2, 1.0);
  c.Offer(9, 1.0);
  const auto out = c.Take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].index, 2u);
  EXPECT_EQ(out[1].index, 5u);
}

TEST(KnnCollectorTest, ZeroKReturnsEmpty) {
  KnnCollector c(0);
  c.Offer(0, 1.0);
  EXPECT_TRUE(c.Take().empty());
}

TEST(LinearScanTest, FindsExactNeighbors) {
  Matrix data{{0.0, 0.0}, {1.0, 0.0}, {0.0, 2.0}, {5.0, 5.0}};
  auto metric = MakeMetric(MetricKind::kEuclidean);
  LinearScanIndex index(data, metric.get());
  const auto result = index.Query(Vector{0.1, 0.0}, 2);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].index, 0u);
  EXPECT_EQ(result[1].index, 1u);
  EXPECT_NEAR(result[0].distance, 0.1, 1e-12);
  EXPECT_NEAR(result[1].distance, 0.9, 1e-12);
}

TEST(LinearScanTest, SkipIndexExcludesSelf) {
  Matrix data{{0.0}, {1.0}, {2.0}};
  auto metric = MakeMetric(MetricKind::kEuclidean);
  LinearScanIndex index(data, metric.get());
  const auto result = index.Query(Vector{0.0}, 1, /*skip_index=*/0, nullptr);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].index, 1u);
}

TEST(LinearScanTest, KLargerThanDataReturnsAll) {
  Matrix data{{0.0}, {1.0}};
  auto metric = MakeMetric(MetricKind::kEuclidean);
  LinearScanIndex index(data, metric.get());
  EXPECT_EQ(index.Query(Vector{0.0}, 10).size(), 2u);
}

TEST(LinearScanTest, StatsCountDistanceEvaluations) {
  Rng rng(95);
  Matrix data(50, 3);
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = 0; j < 3; ++j) data.At(i, j) = rng.Gaussian();
  }
  auto metric = MakeMetric(MetricKind::kEuclidean);
  LinearScanIndex index(data, metric.get());
  QueryStats stats;
  index.Query(Vector(3), 5, KnnIndex::kNoSkip, &stats);
  EXPECT_EQ(stats.distance_evaluations, 50u);
}

TEST(LinearScanTest, WorksWithNonMetricDistances) {
  Matrix data{{1.0, 0.0}, {0.0, 1.0}, {0.7, 0.7}};
  auto metric = MakeMetric(MetricKind::kCosine);
  LinearScanIndex index(data, metric.get());
  const auto result = index.Query(Vector{1.0, 1.0}, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].index, 2u);
}

TEST(LinearScanTest, SizeAndDims) {
  Matrix data(7, 4);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  LinearScanIndex index(data, metric.get());
  EXPECT_EQ(index.size(), 7u);
  EXPECT_EQ(index.dims(), 4u);
  EXPECT_EQ(index.name(), "linear_scan");
}

}  // namespace
}  // namespace cohere
