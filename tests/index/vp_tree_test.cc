#include "index/vp_tree.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "index/linear_scan.h"

namespace cohere {
namespace {

using testing_util::RandomMatrix;

TEST(VpTreeTest, MatchesLinearScanOnSmallExample) {
  Matrix data{{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.0}, {0.5, 0.5}, {3.0, 3.0}};
  auto metric = MakeMetric(MetricKind::kEuclidean);
  VpTreeIndex tree(data, metric.get(), /*leaf_size=*/2);
  LinearScanIndex scan(data, metric.get());
  const Vector query{0.4, 0.4};
  const auto expected = scan.Query(query, 3);
  const auto actual = tree.Query(query, 3);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].index, expected[i].index);
    EXPECT_NEAR(actual[i].distance, expected[i].distance, 1e-12);
  }
}

TEST(VpTreeTest, SkipIndexWorks) {
  Matrix data{{0.0}, {0.1}, {5.0}};
  auto metric = MakeMetric(MetricKind::kEuclidean);
  VpTreeIndex tree(data, metric.get());
  const auto result = tree.Query(Vector{0.0}, 1, /*skip_index=*/0, nullptr);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].index, 1u);
}

TEST(VpTreeTest, EmptyAndTiny) {
  auto metric = MakeMetric(MetricKind::kEuclidean);
  VpTreeIndex empty(Matrix(0, 2), metric.get());
  EXPECT_TRUE(empty.Query(Vector(2), 3).empty());
  VpTreeIndex one(Matrix(1, 2), metric.get());
  EXPECT_EQ(one.Query(Vector(2), 3).size(), 1u);
}

TEST(VpTreeTest, DuplicatePoints) {
  Matrix data(25, 3, 2.0);
  auto metric = MakeMetric(MetricKind::kManhattan);
  VpTreeIndex tree(data, metric.get(), 4);
  const auto result = tree.Query(Vector(3, 2.0), 5);
  ASSERT_EQ(result.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(result[i].distance, 0.0);
    EXPECT_EQ(result[i].index, i);  // ties broken by ascending index
  }
}

TEST(VpTreeTest, PrunesInLowDimensions) {
  Rng rng(501);
  Matrix data = RandomMatrix(3000, 2, &rng);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  VpTreeIndex tree(data, metric.get(), 8);
  QueryStats stats;
  tree.Query(Vector(2), 5, KnnIndex::kNoSkip, &stats);
  EXPECT_LT(stats.distance_evaluations, 1200u);
}

TEST(VpTreeDeathTest, RejectsNonTrueMetric) {
  auto cosine = MakeMetric(MetricKind::kCosine);
  EXPECT_DEATH(VpTreeIndex(Matrix(3, 2), cosine.get()), "true metric");
}

struct VpCase {
  MetricKind metric;
  size_t n;
  size_t d;
  size_t k;
  size_t leaf;
};

class VpTreeAgreementTest : public ::testing::TestWithParam<VpCase> {};

TEST_P(VpTreeAgreementTest, AgreesWithLinearScan) {
  const VpCase& c = GetParam();
  Rng rng(3000 + c.n + c.d * 13 + c.k);
  Matrix data = RandomMatrix(c.n, c.d, &rng);
  auto metric = MakeMetric(c.metric);
  VpTreeIndex tree(data, metric.get(), c.leaf);
  LinearScanIndex scan(data, metric.get());
  for (int trial = 0; trial < 10; ++trial) {
    const Vector query = rng.GaussianVector(c.d);
    const auto expected = scan.Query(query, c.k);
    const auto actual = tree.Query(query, c.k);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].index, expected[i].index) << "trial " << trial;
      EXPECT_NEAR(actual[i].distance, expected[i].distance, 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, VpTreeAgreementTest,
    ::testing::Values(VpCase{MetricKind::kEuclidean, 100, 2, 1, 1},
                      VpCase{MetricKind::kEuclidean, 300, 3, 5, 8},
                      VpCase{MetricKind::kManhattan, 250, 4, 4, 4},
                      VpCase{MetricKind::kChebyshev, 150, 5, 2, 8},
                      VpCase{MetricKind::kEuclidean, 60, 20, 7, 16},
                      VpCase{MetricKind::kEuclidean, 500, 8, 3, 2}));

}  // namespace
}  // namespace cohere
