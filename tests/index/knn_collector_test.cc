#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "index/knn.h"

namespace cohere {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(KnnCollectorTest, ThresholdIsInfiniteUntilFull) {
  KnnCollector collector(3);
  EXPECT_EQ(collector.Threshold(), kInf);
  collector.Offer(0, 5.0);
  EXPECT_FALSE(collector.Full());
  EXPECT_EQ(collector.Threshold(), kInf);
  collector.Offer(1, 2.0);
  EXPECT_EQ(collector.Threshold(), kInf);
  collector.Offer(2, 7.0);
  EXPECT_TRUE(collector.Full());
  EXPECT_EQ(collector.Threshold(), 7.0);
}

TEST(KnnCollectorTest, ThresholdShrinksAsBetterCandidatesArrive) {
  KnnCollector collector(2);
  collector.Offer(0, 10.0);
  collector.Offer(1, 8.0);
  EXPECT_EQ(collector.Threshold(), 10.0);
  collector.Offer(2, 4.0);  // evicts 10.0
  EXPECT_EQ(collector.Threshold(), 8.0);
  collector.Offer(3, 1.0);  // evicts 8.0
  EXPECT_EQ(collector.Threshold(), 4.0);
  collector.Offer(4, 9.0);  // worse than threshold: ignored
  EXPECT_EQ(collector.Threshold(), 4.0);
}

TEST(KnnCollectorTest, KZeroCollectsNothingAndPrunesEverything) {
  KnnCollector collector(0);
  // Trivially full: any pruning bound exceeds the threshold, so index scans
  // can stop immediately.
  EXPECT_TRUE(collector.Full());
  EXPECT_EQ(collector.Threshold(), -kInf);
  collector.Offer(0, 1.0);
  collector.Offer(1, 0.0);
  EXPECT_EQ(collector.Threshold(), -kInf);
  EXPECT_TRUE(collector.Take().empty());
}

TEST(KnnCollectorTest, EqualDistanceTiesPreferSmallerIndices) {
  // Arrival order must not matter: offering equal distances in any order
  // keeps the smallest row indices.
  {
    KnnCollector collector(2);
    collector.Offer(5, 1.0);
    collector.Offer(7, 1.0);
    collector.Offer(3, 1.0);  // displaces index 7
    const auto out = collector.Take();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].index, 3u);
    EXPECT_EQ(out[1].index, 5u);
  }
  {
    KnnCollector collector(2);
    collector.Offer(3, 1.0);
    collector.Offer(5, 1.0);
    collector.Offer(7, 1.0);  // worse tie: ignored
    const auto out = collector.Take();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].index, 3u);
    EXPECT_EQ(out[1].index, 5u);
  }
}

TEST(KnnCollectorTest, TakeSortsByDistanceThenIndex) {
  KnnCollector collector(4);
  collector.Offer(9, 2.0);
  collector.Offer(1, 3.0);
  collector.Offer(4, 2.0);
  collector.Offer(0, 1.0);
  const auto out = collector.Take();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], (Neighbor{0, 1.0}));
  EXPECT_EQ(out[1], (Neighbor{4, 2.0}));
  EXPECT_EQ(out[2], (Neighbor{9, 2.0}));
  EXPECT_EQ(out[3], (Neighbor{1, 3.0}));
}

TEST(KnnCollectorTest, FewerOffersThanKReturnsAll) {
  KnnCollector collector(10);
  collector.Offer(2, 0.5);
  collector.Offer(1, 0.25);
  const auto out = collector.Take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].index, 1u);
  EXPECT_EQ(out[1].index, 2u);
}

}  // namespace
}  // namespace cohere
