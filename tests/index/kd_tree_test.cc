#include "index/kd_tree.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "index/linear_scan.h"

namespace cohere {
namespace {

using testing_util::RandomMatrix;

TEST(KdTreeTest, MatchesLinearScanOnSmallExample) {
  Matrix data{{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.0}, {0.5, 0.5}, {3.0, 3.0}};
  auto metric = MakeMetric(MetricKind::kEuclidean);
  KdTreeIndex tree(data, metric.get(), /*leaf_size=*/2);
  LinearScanIndex scan(data, metric.get());
  const Vector query{0.4, 0.4};
  EXPECT_EQ(tree.Query(query, 3), scan.Query(query, 3));
}

TEST(KdTreeTest, SkipIndexWorks) {
  Matrix data{{0.0}, {0.1}, {5.0}};
  auto metric = MakeMetric(MetricKind::kEuclidean);
  KdTreeIndex tree(data, metric.get());
  const auto result = tree.Query(Vector{0.0}, 1, /*skip_index=*/0, nullptr);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].index, 1u);
}

TEST(KdTreeTest, HandlesDuplicatePoints) {
  Matrix data(20, 2, 1.0);  // all identical
  auto metric = MakeMetric(MetricKind::kEuclidean);
  KdTreeIndex tree(data, metric.get(), 4);
  const auto result = tree.Query(Vector{1.0, 1.0}, 5);
  ASSERT_EQ(result.size(), 5u);
  for (const auto& n : result) EXPECT_EQ(n.distance, 0.0);
  // Ties are broken by index, ascending.
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(result[i].index, i);
}

TEST(KdTreeTest, EmptyAndTinyDatasets) {
  auto metric = MakeMetric(MetricKind::kEuclidean);
  KdTreeIndex empty(Matrix(0, 3), metric.get());
  EXPECT_TRUE(empty.Query(Vector(3), 4).empty());
  KdTreeIndex one(Matrix(1, 2), metric.get());
  EXPECT_EQ(one.Query(Vector(2), 4).size(), 1u);
}

TEST(KdTreeTest, PrunesInLowDimensions) {
  Rng rng(96);
  Matrix data = RandomMatrix(2000, 2, &rng);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  KdTreeIndex tree(data, metric.get(), 8);
  QueryStats stats;
  tree.Query(Vector(2), 5, KnnIndex::kNoSkip, &stats);
  // In 2-d the tree must visit far fewer points than a full scan.
  EXPECT_LT(stats.distance_evaluations, 500u);
}

TEST(KdTreeTest, DegradesGracefullyInHighDimensions) {
  Rng rng(97);
  Matrix data = RandomMatrix(500, 64, &rng);
  auto metric = MakeMetric(MetricKind::kEuclidean);
  KdTreeIndex tree(data, metric.get(), 8);
  LinearScanIndex scan(data, metric.get());
  const Vector query = rng.GaussianVector(64);
  // Correctness is preserved even when pruning fails.
  EXPECT_EQ(tree.Query(query, 10), scan.Query(query, 10));
}

TEST(KdTreeDeathTest, RejectsNonTrueMetric) {
  auto cosine = MakeMetric(MetricKind::kCosine);
  EXPECT_DEATH(KdTreeIndex(Matrix(3, 2), cosine.get()), "true metric");
}

struct KnnCase {
  MetricKind metric;
  size_t n;
  size_t d;
  size_t k;
};

class KdTreeAgreementTest : public ::testing::TestWithParam<KnnCase> {};

TEST_P(KdTreeAgreementTest, AgreesWithLinearScan) {
  const KnnCase& c = GetParam();
  Rng rng(1000 + c.n + c.d * 7 + c.k);
  Matrix data = RandomMatrix(c.n, c.d, &rng);
  auto metric = MakeMetric(c.metric);
  KdTreeIndex tree(data, metric.get(), 6);
  LinearScanIndex scan(data, metric.get());
  for (int trial = 0; trial < 10; ++trial) {
    const Vector query = rng.GaussianVector(c.d);
    const auto expected = scan.Query(query, c.k);
    const auto actual = tree.Query(query, c.k);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].index, expected[i].index) << "trial " << trial;
      EXPECT_NEAR(actual[i].distance, expected[i].distance, 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, KdTreeAgreementTest,
    ::testing::Values(KnnCase{MetricKind::kEuclidean, 100, 2, 1},
                      KnnCase{MetricKind::kEuclidean, 300, 3, 5},
                      KnnCase{MetricKind::kEuclidean, 200, 10, 3},
                      KnnCase{MetricKind::kManhattan, 250, 4, 4},
                      KnnCase{MetricKind::kChebyshev, 150, 5, 2},
                      KnnCase{MetricKind::kEuclidean, 50, 30, 7}));

}  // namespace
}  // namespace cohere
