// Failure-injection and property tests across module boundaries: malformed
// inputs must fail with Status (never crash or poison results), and the
// selection machinery must honor its ordering contracts.
#include <cmath>

#include <gtest/gtest.h>

#include "data/arff.h"
#include "data/csv.h"
#include "data/uci_like.h"
#include "index/linear_scan.h"
#include "reduction/pipeline.h"
#include "reduction/serialization.h"

namespace cohere {
namespace {

TEST(RobustnessTest, MalformedCsvInputsFailCleanly) {
  CsvOptions options;
  const char* cases[] = {
      "",                         // empty
      "\n\n\n",                   // only blank lines
      "a,b,c\n",                  // all non-numeric, no header flag
      "1,2\n3\n",                 // ragged
      "1,2\nx,y\n",               // numbers then garbage
      "1,2\n3,1e999999\n",        // overflow
      ",,,\n,,,\n",               // empty fields (missing, default policy)
      "1;2\n",                    // wrong delimiter => one non-numeric field
  };
  for (const char* input : cases) {
    Result<Dataset> parsed = ParseCsv(input, options);
    EXPECT_FALSE(parsed.ok()) << "input: " << input;
  }
}

TEST(RobustnessTest, MalformedArffInputsFailCleanly) {
  const char* cases[] = {
      "",
      "@data\n1\n",                                  // data before attributes
      "@relation r\n@attribute x numeric\n",         // missing @data
      "@relation r\n@attribute x weird\n@data\n1\n", // bad type
      "@relation r\n@attribute x numeric\n@data\n1,2\n",  // arity
      "@relation r\n@attribute c {a\n@data\na\n",    // unterminated nominal
      "random noise\n",
  };
  for (const char* input : cases) {
    Result<Dataset> parsed = ParseArff(input);
    EXPECT_FALSE(parsed.ok()) << "input: " << input;
  }
}

TEST(RobustnessTest, PcaRejectsNonFiniteData) {
  Matrix data(5, 3, 1.0);
  data.At(2, 1) = std::nan("");
  EXPECT_FALSE(PcaModel::Fit(data, PcaScaling::kCovariance).ok());
  data.At(2, 1) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(PcaModel::Fit(data, PcaScaling::kCorrelation).ok());
  EXPECT_FALSE(PcaModel::FitWithSvd(data, PcaScaling::kCovariance).ok());
}

TEST(RobustnessTest, AllFiniteHelper) {
  Matrix clean(2, 2, 1.0);
  EXPECT_TRUE(AllFinite(clean));
  clean.At(0, 1) = -std::numeric_limits<double>::infinity();
  EXPECT_FALSE(AllFinite(clean));
  EXPECT_TRUE(AllFinite(Vector{1.0, 2.0}));
  EXPECT_FALSE(AllFinite(Vector{1.0, std::nan("")}));
}

TEST(PipelinePropertyTest, VarianceRetainedMonotoneInTargetDim) {
  Dataset data = IonosphereLike(1301);
  double previous = -1.0;
  for (size_t dims = 1; dims <= data.NumAttributes(); dims += 3) {
    ReductionOptions options;
    options.strategy = SelectionStrategy::kEigenvalueOrder;
    options.target_dim = dims;
    Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
    ASSERT_TRUE(pipeline.ok());
    EXPECT_GE(pipeline->VarianceRetainedFraction(), previous - 1e-12);
    previous = pipeline->VarianceRetainedFraction();
  }
  EXPECT_GT(previous, 0.9);  // near-full dims retain almost everything
}

TEST(PipelinePropertyTest, EigenvalueOrderMaximizesVarianceAtEveryDim) {
  // Among the built-in orderings, the eigenvalue prefix must retain at
  // least as much variance as the coherence prefix of the same size.
  Dataset data = NoisyDataA(1302);
  for (size_t dims : {3u, 8u, 15u}) {
    ReductionOptions eigen;
    eigen.scaling = PcaScaling::kCovariance;
    eigen.strategy = SelectionStrategy::kEigenvalueOrder;
    eigen.target_dim = dims;
    ReductionOptions coherence = eigen;
    coherence.strategy = SelectionStrategy::kCoherenceOrder;
    Result<ReductionPipeline> a = ReductionPipeline::Fit(data, eigen);
    Result<ReductionPipeline> b = ReductionPipeline::Fit(data, coherence);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_GE(a->VarianceRetainedFraction(),
              b->VarianceRetainedFraction() - 1e-12);
  }
}

TEST(PipelinePropertyTest, CoherencePrefixMaximizesCoherenceSum) {
  Dataset data = NoisyDataA(1303);
  ReductionOptions options;
  options.scaling = PcaScaling::kCovariance;
  options.strategy = SelectionStrategy::kCoherenceOrder;
  options.target_dim = 10;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok());
  const Vector& prob = pipeline->coherence().probability;
  double kept = 0.0;
  for (size_t c : pipeline->components()) kept += prob[c];
  // No other 10-subset can beat it; check against the eigenvalue prefix.
  double eigen_prefix = 0.0;
  for (size_t i = 0; i < 10; ++i) eigen_prefix += prob[i];
  EXPECT_GE(kept, eigen_prefix - 1e-12);
}

TEST(SerializationIntegrationTest, LoadedPipelineServesIdenticalQueries) {
  Dataset data = IonosphereLike(1304);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kCoherenceOrder;
  options.target_dim = 8;
  Result<ReductionPipeline> fitted = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(fitted.ok());

  const std::string path = ::testing::TempDir() + "/pipeline_queries.txt";
  ASSERT_TRUE(SaveReductionPipeline(*fitted, path).ok());
  Result<ReductionPipeline> loaded = LoadReductionPipeline(path);
  ASSERT_TRUE(loaded.ok());

  // Build identical indexes over both reduced spaces and compare answers.
  auto metric = MakeMetric(MetricKind::kEuclidean);
  LinearScanIndex fitted_index(fitted->TransformDataset(data).features(),
                               metric.get());
  LinearScanIndex loaded_index(loaded->TransformDataset(data).features(),
                               metric.get());
  for (size_t q = 0; q < data.NumRecords(); q += 13) {
    const Vector fitted_query = fitted->TransformPoint(data.Record(q));
    const Vector loaded_query = loaded->TransformPoint(data.Record(q));
    EXPECT_EQ(fitted_index.Query(fitted_query, 5),
              loaded_index.Query(loaded_query, 5));
  }
  std::remove(path.c_str());
}

TEST(RobustnessTest, ConstantDatasetSurvivesTheWholePipeline) {
  // All-identical records: zero variance everywhere. Nothing meaningful to
  // find, but nothing may crash either.
  Dataset data(Matrix(40, 6, 3.0), std::vector<int>(40, 0));
  ReductionOptions options;
  options.strategy = SelectionStrategy::kEigenvalueOrder;
  options.target_dim = 2;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok());
  Dataset reduced = pipeline->TransformDataset(data);
  EXPECT_EQ(reduced.NumAttributes(), 2u);
  for (size_t i = 0; i < reduced.NumRecords(); ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_TRUE(std::isfinite(reduced.features()(i, j)));
    }
  }
}

}  // namespace
}  // namespace cohere
