// Failure-injection and property tests across module boundaries: malformed
// inputs must fail with Status (never crash or poison results), and the
// selection machinery must honor its ordering contracts. The FaultMatrix
// suite at the bottom asserts the documented outcome of every registered
// fault point; scripts/tier1.sh re-runs it with each point forced via
// COHERE_FAULT at probability 1.0.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/parallel.h"
#include "core/dynamic_engine.h"
#include "core/engine.h"
#include "data/arff.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "data/uci_like.h"
#include "index/linear_scan.h"
#include "linalg/jacobi_eigen.h"
#include "linalg/power_iteration.h"
#include "linalg/svd.h"
#include "linalg/symmetric_eigen.h"
#include "obs/metrics.h"
#include "reduction/pipeline.h"
#include "reduction/serialization.h"

namespace cohere {
namespace {

TEST(RobustnessTest, MalformedCsvInputsFailCleanly) {
  CsvOptions options;
  const char* cases[] = {
      "",                         // empty
      "\n\n\n",                   // only blank lines
      "a,b,c\n",                  // all non-numeric, no header flag
      "1,2\n3\n",                 // ragged
      "1,2\nx,y\n",               // numbers then garbage
      "1,2\n3,1e999999\n",        // overflow
      ",,,\n,,,\n",               // empty fields (missing, default policy)
      "1;2\n",                    // wrong delimiter => one non-numeric field
  };
  for (const char* input : cases) {
    Result<Dataset> parsed = ParseCsv(input, options);
    EXPECT_FALSE(parsed.ok()) << "input: " << input;
  }
}

TEST(RobustnessTest, MalformedArffInputsFailCleanly) {
  const char* cases[] = {
      "",
      "@data\n1\n",                                  // data before attributes
      "@relation r\n@attribute x numeric\n",         // missing @data
      "@relation r\n@attribute x weird\n@data\n1\n", // bad type
      "@relation r\n@attribute x numeric\n@data\n1,2\n",  // arity
      "@relation r\n@attribute c {a\n@data\na\n",    // unterminated nominal
      "random noise\n",
  };
  for (const char* input : cases) {
    Result<Dataset> parsed = ParseArff(input);
    EXPECT_FALSE(parsed.ok()) << "input: " << input;
  }
}

TEST(RobustnessTest, PcaRejectsNonFiniteData) {
  Matrix data(5, 3, 1.0);
  data.At(2, 1) = std::nan("");
  EXPECT_FALSE(PcaModel::Fit(data, PcaScaling::kCovariance).ok());
  data.At(2, 1) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(PcaModel::Fit(data, PcaScaling::kCorrelation).ok());
  EXPECT_FALSE(PcaModel::FitWithSvd(data, PcaScaling::kCovariance).ok());
}

TEST(RobustnessTest, AllFiniteHelper) {
  Matrix clean(2, 2, 1.0);
  EXPECT_TRUE(AllFinite(clean));
  clean.At(0, 1) = -std::numeric_limits<double>::infinity();
  EXPECT_FALSE(AllFinite(clean));
  EXPECT_TRUE(AllFinite(Vector{1.0, 2.0}));
  EXPECT_FALSE(AllFinite(Vector{1.0, std::nan("")}));
}

TEST(PipelinePropertyTest, VarianceRetainedMonotoneInTargetDim) {
  Dataset data = IonosphereLike(1301);
  double previous = -1.0;
  for (size_t dims = 1; dims <= data.NumAttributes(); dims += 3) {
    ReductionOptions options;
    options.strategy = SelectionStrategy::kEigenvalueOrder;
    options.target_dim = dims;
    Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
    ASSERT_TRUE(pipeline.ok());
    EXPECT_GE(pipeline->VarianceRetainedFraction(), previous - 1e-12);
    previous = pipeline->VarianceRetainedFraction();
  }
  EXPECT_GT(previous, 0.9);  // near-full dims retain almost everything
}

TEST(PipelinePropertyTest, EigenvalueOrderMaximizesVarianceAtEveryDim) {
  // Among the built-in orderings, the eigenvalue prefix must retain at
  // least as much variance as the coherence prefix of the same size.
  Dataset data = NoisyDataA(1302);
  for (size_t dims : {3u, 8u, 15u}) {
    ReductionOptions eigen;
    eigen.scaling = PcaScaling::kCovariance;
    eigen.strategy = SelectionStrategy::kEigenvalueOrder;
    eigen.target_dim = dims;
    ReductionOptions coherence = eigen;
    coherence.strategy = SelectionStrategy::kCoherenceOrder;
    Result<ReductionPipeline> a = ReductionPipeline::Fit(data, eigen);
    Result<ReductionPipeline> b = ReductionPipeline::Fit(data, coherence);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_GE(a->VarianceRetainedFraction(),
              b->VarianceRetainedFraction() - 1e-12);
  }
}

TEST(PipelinePropertyTest, CoherencePrefixMaximizesCoherenceSum) {
  Dataset data = NoisyDataA(1303);
  ReductionOptions options;
  options.scaling = PcaScaling::kCovariance;
  options.strategy = SelectionStrategy::kCoherenceOrder;
  options.target_dim = 10;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok());
  const Vector& prob = pipeline->coherence().probability;
  double kept = 0.0;
  for (size_t c : pipeline->components()) kept += prob[c];
  // No other 10-subset can beat it; check against the eigenvalue prefix.
  double eigen_prefix = 0.0;
  for (size_t i = 0; i < 10; ++i) eigen_prefix += prob[i];
  EXPECT_GE(kept, eigen_prefix - 1e-12);
}

TEST(SerializationIntegrationTest, LoadedPipelineServesIdenticalQueries) {
  Dataset data = IonosphereLike(1304);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kCoherenceOrder;
  options.target_dim = 8;
  Result<ReductionPipeline> fitted = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(fitted.ok());

  const std::string path = ::testing::TempDir() + "/pipeline_queries.txt";
  ASSERT_TRUE(SaveReductionPipeline(*fitted, path).ok());
  Result<ReductionPipeline> loaded = LoadReductionPipeline(path);
  ASSERT_TRUE(loaded.ok());

  // Build identical indexes over both reduced spaces and compare answers.
  auto metric = MakeMetric(MetricKind::kEuclidean);
  LinearScanIndex fitted_index(fitted->TransformDataset(data).features(),
                               metric.get());
  LinearScanIndex loaded_index(loaded->TransformDataset(data).features(),
                               metric.get());
  for (size_t q = 0; q < data.NumRecords(); q += 13) {
    const Vector fitted_query = fitted->TransformPoint(data.Record(q));
    const Vector loaded_query = loaded->TransformPoint(data.Record(q));
    EXPECT_EQ(fitted_index.Query(fitted_query, 5),
              loaded_index.Query(loaded_query, 5));
  }
  std::remove(path.c_str());
}

TEST(RobustnessTest, ConstantDatasetSurvivesTheWholePipeline) {
  // All-identical records: zero variance everywhere. Nothing meaningful to
  // find, but nothing may crash either.
  Dataset data(Matrix(40, 6, 3.0), std::vector<int>(40, 0));
  ReductionOptions options;
  options.strategy = SelectionStrategy::kEigenvalueOrder;
  options.target_dim = 2;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok());
  Dataset reduced = pipeline->TransformDataset(data);
  EXPECT_EQ(reduced.NumAttributes(), 2u);
  for (size_t i = 0; i < reduced.NumRecords(); ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_TRUE(std::isfinite(reduced.features()(i, j)));
    }
  }
}

// --- FaultMatrix: documented outcome of every registered fault point. ---
//
// Each test arms points only for its own duration (SetUp/TearDown disarm
// everything), so the suite is safe to run with additional points forced
// from the environment — COHERE_FAULT arming from the tier-1 sweep is
// deliberately cleared here and re-asserted by FaultMatrixEnvTest below.
class FaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DisarmAll();
    fault::ResetCounters();
    ResetParallelTaskFailureCount();
  }
  void TearDown() override {
    fault::DisarmAll();
    fault::ResetCounters();
    ResetParallelTaskFailureCount();
    SetParallelThreadCount(0);
  }

  static Matrix SmallSpd() {
    Matrix m(3, 3);
    m.At(0, 0) = 4.0; m.At(0, 1) = 1.0; m.At(0, 2) = 0.5;
    m.At(1, 0) = 1.0; m.At(1, 1) = 3.0; m.At(1, 2) = 0.25;
    m.At(2, 0) = 0.5; m.At(2, 1) = 0.25; m.At(2, 2) = 2.0;
    return m;
  }
};

TEST_F(FaultMatrixTest, SymmetricEigenReturnsNumericalError) {
  fault::Arm(fault::kPointSymmetricEigen, 1.0);
  const Result<EigenDecomposition> eig = SymmetricEigen(SmallSpd());
  ASSERT_FALSE(eig.ok());
  EXPECT_EQ(eig.status().code(), StatusCode::kNumericalError);
  EXPECT_GT(fault::Point(fault::kPointSymmetricEigen)->triggers(), 0u);
  fault::DisarmAll();
  EXPECT_TRUE(SymmetricEigen(SmallSpd()).ok());  // no sticky state
}

TEST_F(FaultMatrixTest, JacobiEigenReturnsNumericalError) {
  fault::Arm(fault::kPointJacobiEigen, 1.0);
  const Result<EigenDecomposition> eig = JacobiEigen(SmallSpd());
  ASSERT_FALSE(eig.ok());
  EXPECT_EQ(eig.status().code(), StatusCode::kNumericalError);
  fault::DisarmAll();
  EXPECT_TRUE(JacobiEigen(SmallSpd()).ok());
}

TEST_F(FaultMatrixTest, PowerIterationReturnsNumericalError) {
  TopKEigenOptions top_k;
  top_k.k = 2;
  fault::Arm(fault::kPointPowerIteration, 1.0);
  const Result<EigenDecomposition> eig = TopKEigen(SmallSpd(), top_k);
  ASSERT_FALSE(eig.ok());
  EXPECT_EQ(eig.status().code(), StatusCode::kNumericalError);
  fault::DisarmAll();
  EXPECT_TRUE(TopKEigen(SmallSpd(), top_k).ok());
}

TEST_F(FaultMatrixTest, SvdReturnsNumericalError) {
  fault::Arm(fault::kPointSvd, 1.0);
  const Result<SvdDecomposition> svd = JacobiSvd(SmallSpd());
  ASSERT_FALSE(svd.ok());
  EXPECT_EQ(svd.status().code(), StatusCode::kNumericalError);
  fault::DisarmAll();
  EXPECT_TRUE(JacobiSvd(SmallSpd()).ok());
}

TEST_F(FaultMatrixTest, LoaderIoFailsFileLoadsButNotStringParses) {
  const std::string path = ::testing::TempDir() + "/fault_loader.csv";
  {
    std::ofstream out(path);
    out << "1.0,2.0\n3.0,4.0\n";
  }
  fault::Arm(fault::kPointLoaderIo, 1.0);
  CsvOptions options;
  options.label_column = CsvOptions::kNoLabelColumn;
  const Result<Dataset> loaded = LoadCsv(path, options);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_FALSE(LoadArff(path).ok());
  // String-level parsing has no IO and stays immune.
  EXPECT_TRUE(ParseCsv("1.0,2.0\n3.0,4.0\n", options).ok());
  fault::DisarmAll();
  EXPECT_TRUE(LoadCsv(path, options).ok());
  std::remove(path.c_str());
}

TEST_F(FaultMatrixTest, ParallelDispatchThrowsAndThePoolSurvives) {
  SetParallelThreadCount(4);
  fault::Arm(fault::kPointParallelDispatch, 1.0);
  EXPECT_THROW(ParallelFor(0, 128, 1, [](size_t, size_t) {}),
               fault::InjectedFaultError);
  EXPECT_GT(ParallelTaskFailureCount(), 0u);
  fault::DisarmAll();

  std::atomic<int> covered{0};
  ParallelFor(0, 128, 4, [&](size_t begin, size_t end) {
    covered.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(covered.load(), 128);
}

TEST_F(FaultMatrixTest, ReductionFitDegradesInsteadOfFailing) {
  Dataset data = IonosphereLike(1401);
  ReductionOptions options;
  options.strategy = SelectionStrategy::kCoherenceOrder;
  options.target_dim = 6;
  fault::Arm(fault::kPointReductionFit, 1.0);
  const Result<ReductionPipeline> degraded =
      ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->ReducedDims(), 6u);

  // Opting out of degradation surfaces the underlying NumericalError.
  options.allow_degraded_fit = false;
  const Result<ReductionPipeline> strict =
      ReductionPipeline::Fit(data, options);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kNumericalError);
}

TEST_F(FaultMatrixTest, EngineBuildSurvivesEigensolverFault) {
  // The engine's pipeline fit rides the fallback chain: a solver-level
  // fault degrades the reduction instead of failing the build.
  Dataset data = IonosphereLike(1402);
  EngineOptions options;
  options.reduction.strategy = SelectionStrategy::kEigenvalueOrder;
  options.reduction.target_dim = 8;
  options.backend = IndexBackend::kLinearScan;
  fault::Arm(fault::kPointSymmetricEigen, 1.0);
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->Query(data.Record(0), 3).size(), 3u);
}

TEST_F(FaultMatrixTest, DynamicRefitFailureKeepsServingAndCounts) {
  LatentFactorConfig config;
  config.num_records = 200;
  config.num_attributes = 20;
  config.num_concepts = 4;
  config.num_classes = 2;
  config.seed = 1403;
  Dataset data = GenerateLatentFactor(config);
  DynamicEngineOptions options;
  options.reduction.target_dim = 4;
  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(data, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  const auto before = index->Query(data.Record(1), 4);
  const uint64_t failures_before =
      obs::MetricsRegistry::Global()
          .GetCounter("dynamic_index.refit_failures")
          ->Value();
  fault::Arm(fault::kPointDynamicRefit, 1.0);
  ASSERT_FALSE(index->Refit().ok());
  fault::DisarmAll();

  EXPECT_EQ(index->Query(data.Record(1), 4), before);
  EXPECT_GT(index->RefitBackoffRemaining(), 0u);
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetCounter("dynamic_index.refit_failures")
                ->Value(),
            failures_before);
  EXPECT_TRUE(index->Refit().ok());  // recovery once the fault clears
}

TEST_F(FaultMatrixTest, SnapshotPublishFaultKeepsOldSnapshotServing) {
  // core.snapshot.publish sits at the RCU swap itself: when a replacement
  // publish fails, the mutation (insert or refit) must report the error and
  // the previously published snapshot must keep serving, unchanged.
  LatentFactorConfig config;
  config.num_records = 200;
  config.num_attributes = 20;
  config.num_concepts = 4;
  config.num_classes = 2;
  config.seed = 1405;
  Dataset data = GenerateLatentFactor(config);
  DynamicEngineOptions options;
  options.reduction.target_dim = 4;
  Result<DynamicReducedIndex> index =
      DynamicReducedIndex::Build(data, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  ASSERT_EQ(index->SnapshotVersion(), 1u);

  const auto before = index->Query(data.Record(3), 4);
  fault::Arm(fault::kPointSnapshotPublish, 1.0);
  const Status insert = index->Insert(data.Record(0));
  EXPECT_FALSE(insert.ok());
  EXPECT_EQ(insert.code(), StatusCode::kInternal);
  ASSERT_FALSE(index->Refit().ok());
  fault::DisarmAll();

  // Old snapshot still serving: same size, same version, same answers.
  EXPECT_EQ(index->size(), data.NumRecords());
  EXPECT_EQ(index->SnapshotVersion(), 1u);
  EXPECT_EQ(index->Query(data.Record(3), 4), before);

  // Recovery once the fault clears.
  EXPECT_TRUE(index->Insert(data.Record(0)).ok());
  EXPECT_EQ(index->size(), data.NumRecords() + 1);
  EXPECT_EQ(index->SnapshotVersion(), 2u);
}

TEST_F(FaultMatrixTest, DeadlineTruncationFeedsTheCounter) {
  Dataset data = IonosphereLike(1404);
  EngineOptions options;
  options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
  options.reduction.target_dim = 8;
  options.backend = IndexBackend::kLinearScan;
  options.query_deadline_us = 1e-3;
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(engine.ok());

  const uint64_t exceeded_before =
      obs::MetricsRegistry::Global()
          .GetCounter("queries.deadline_exceeded")
          ->Value();
  QueryStats stats;
  engine->Query(data.Record(0), 5, KnnIndex::kNoSkip, &stats);
  EXPECT_TRUE(stats.truncated);
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetCounter("queries.deadline_exceeded")
                ->Value(),
            exceeded_before);
}

TEST_F(FaultMatrixTest, CancelTokenTruncatesWithoutTheDeadlineCounter) {
  Dataset data = IonosphereLike(1405);
  EngineOptions options;
  options.reduction.target_dim = 8;
  options.backend = IndexBackend::kLinearScan;
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(engine.ok());

  CancelToken token;
  token.Cancel();
  QueryLimits limits;
  limits.cancel = &token;
  const uint64_t exceeded_before =
      obs::MetricsRegistry::Global()
          .GetCounter("queries.deadline_exceeded")
          ->Value();
  QueryStats stats;
  engine->Query(data.Record(0), 5, KnnIndex::kNoSkip, &stats, limits);
  EXPECT_TRUE(stats.truncated);
  // Cancellation is not a deadline miss.
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetCounter("queries.deadline_exceeded")
                ->Value(),
            exceeded_before);
}

TEST_F(FaultMatrixTest, ConstantAttributesSurviveCoherenceOrdering) {
  // Satellite of the zero-variance handling: constant columns under
  // correlation scaling must not poison the coherence ordering.
  Dataset base = IonosphereLike(1406);
  Matrix features = base.features();
  for (size_t i = 0; i < features.rows(); ++i) {
    features.At(i, 2) = 7.0;   // two constant attributes
    features.At(i, 10) = -1.5;
  }
  Dataset data(std::move(features), std::vector<int>(base.NumRecords(), 0));
  ReductionOptions options;
  options.scaling = PcaScaling::kCorrelation;
  options.strategy = SelectionStrategy::kCoherenceOrder;
  options.target_dim = 6;
  const Result<ReductionPipeline> pipeline =
      ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  const Dataset reduced = pipeline->TransformDataset(data);
  for (size_t i = 0; i < reduced.NumRecords(); ++i) {
    for (size_t j = 0; j < reduced.NumAttributes(); ++j) {
      EXPECT_TRUE(std::isfinite(reduced.features().At(i, j)));
    }
  }
  if (obs::MetricsRegistry::Enabled()) {
    EXPECT_GE(obs::MetricsRegistry::Global()
                  .GetGauge("scaling.zero_variance_dims")
                  ->Value(),
              2.0);
  }
}

TEST_F(FaultMatrixTest, CacheInsertPressureDegradesToColdNotWrong) {
  // The documented outcome of cache.insert.pressure: every result/projection
  // store is dropped, so the cache never warms — but answers stay exact.
  Dataset data = IonosphereLike(1407);
  EngineOptions options;
  options.reduction.target_dim = 8;
  options.backend = IndexBackend::kLinearScan;
  options.cache_budget_bytes = 1 << 20;
  Result<ReducedSearchEngine> cached =
      ReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  options.cache_budget_bytes = 0;
  Result<ReducedSearchEngine> plain =
      ReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(plain.ok());

  fault::Arm(fault::kPointCacheInsertPressure, 1.0);
  const Vector query = data.Record(9);
  const auto want = plain->Query(query, 4);
  for (int repeat = 0; repeat < 2; ++repeat) {
    const auto got = cached->Query(query, 4);
    ASSERT_EQ(got.size(), want.size());
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(got[j].index, want[j].index);
      EXPECT_EQ(got[j].distance, want[j].distance);
    }
  }
  const cache::ResultCacheStats stats =
      cached->serving().result_cache()->Stats();
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_GT(stats.rejected, 0u);
  EXPECT_GT(fault::Point(fault::kPointCacheInsertPressure)->triggers(), 0u);

  fault::DisarmAll();
  cached->Query(query, 4);  // inserts now
  cached->Query(query, 4);  // and hits
  EXPECT_GT(cached->serving().result_cache()->Stats().hits, 0u);
}

TEST_F(FaultMatrixTest, AdmissionShedFaultShedsCleanlyAndOnlyWhenEnabled) {
  // The documented outcome of core.admission.shed: with admission enabled,
  // every arrival is shed with a clean ResourceExhausted (degrade, never
  // crash); with admission disabled the armed point is never consulted.
  Dataset data = IonosphereLike(1408);
  EngineOptions options;
  options.reduction.target_dim = 8;
  options.backend = IndexBackend::kLinearScan;
  options.admission.enabled = true;
  Result<ReducedSearchEngine> admitted =
      ReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  options.admission.enabled = false;
  Result<ReducedSearchEngine> plain =
      ReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(plain.ok());

  fault::Arm(fault::kPointAdmissionShed, 1.0);
  QueryStats stats;
  std::vector<Neighbor> neighbors;
  const Status shed = admitted->serving().TryQuery(
      data.Record(4), 4, KnnIndex::kNoSkip, &stats, QueryLimits(),
      &neighbors);
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted) << shed.ToString();
  EXPECT_TRUE(neighbors.empty());
  EXPECT_GT(fault::Point(fault::kPointAdmissionShed)->triggers(), 0u);
  ASSERT_TRUE(plain->serving()
                  .TryQuery(data.Record(4), 4, KnnIndex::kNoSkip, &stats,
                            QueryLimits(), &neighbors)
                  .ok());
  EXPECT_EQ(neighbors.size(), 4u);

  // Recovery once the fault clears, with the shed fully accounted.
  fault::DisarmAll();
  ASSERT_TRUE(admitted->serving()
                  .TryQuery(data.Record(4), 4, KnnIndex::kNoSkip, &stats,
                            QueryLimits(), &neighbors)
                  .ok());
  EXPECT_EQ(neighbors.size(), 4u);
  const AdmissionTotals totals = admitted->serving().admission()->Totals();
  EXPECT_EQ(totals.offered, totals.admitted + totals.shed + totals.rejected);
  EXPECT_GE(totals.shed, 1u);
}

// When scripts/tier1.sh runs this binary under COHERE_FAULT, the env spec
// must actually have armed the named points before main() — that is the
// whole point of the sweep. Skipped in ordinary runs.
TEST(FaultMatrixEnvTest, EnvSpecPointsWereArmedAtStartup) {
  const char* spec = std::getenv("COHERE_FAULT");
  if (spec == nullptr || spec[0] == '\0') {
    GTEST_SKIP() << "COHERE_FAULT not set";
  }
  // NOTE: FaultMatrixTest fixtures disarm everything they touch, so this
  // test must run while nothing has disarmed the env points yet — gtest
  // runs suites in declaration order only within a file; to stay robust we
  // re-apply the spec instead of assuming pristine state.
  ASSERT_TRUE(fault::ArmFromSpec(spec).ok()) << spec;
  bool any = false;
  for (const fault::PointInfo& info : fault::Points()) {
    any = any || info.armed;
  }
  EXPECT_TRUE(any);
  fault::DisarmAll();
  fault::ResetCounters();
}

}  // namespace
}  // namespace cohere
