// End-to-end checks of the paper's headline claims on the simulated UCI
// stand-ins. These are the qualitative shapes the reproduction must carry;
// the bench/ harnesses print the full tables and figures.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "data/transforms.h"
#include "data/uci_like.h"
#include "eval/knn_quality.h"
#include "eval/sweep.h"
#include "reduction/coherence.h"
#include "reduction/pipeline.h"
#include "stats/covariance.h"
#include "stats/descriptive.h"

namespace cohere {
namespace {

// Scores matrix (n x d) with columns permuted into `order`.
Matrix OrderedScores(const PcaModel& model, const Matrix& features,
                     const std::vector<size_t>& order) {
  return model.ProjectRows(features, order);
}

TEST(PaperClaimsTest, CleanDataEigenvalueAndCoherenceOrderingsAgree) {
  // Section 4: on the clean (musk/iono/arrhythmia-like) data, eigenvalue
  // magnitude and coherence probability are strongly rank-correlated.
  for (uint64_t seed : {1001ull, 1002ull}) {
    Dataset data = IonosphereLike(seed);
    Result<PcaModel> pca =
        PcaModel::Fit(data.features(), PcaScaling::kCorrelation);
    ASSERT_TRUE(pca.ok());
    const CoherenceAnalysis coherence =
        ComputeCoherence(*pca, data.features());
    const double rank_corr =
        SpearmanCorrelation(pca->eigenvalues(), coherence.probability);
    EXPECT_GT(rank_corr, 0.6) << "seed " << seed;
  }
}

TEST(PaperClaimsTest, NoisyDataDecouplesEigenvaluesFromCoherence) {
  // Section 4.1 / Figure 12: after corrupting dimensions with
  // high-amplitude uniform noise, the largest eigenvalues belong to
  // low-coherence (noise) directions while the high-coherence concept
  // directions rank far down the eigenvalue order.
  Dataset clean = Studentize(IonosphereLike(1003));
  Dataset noisy = NoisyDataA(1003);

  auto top10_coherence_of_top10_eigen = [](const Dataset& d) {
    Result<PcaModel> pca =
        PcaModel::Fit(d.features(), PcaScaling::kCovariance);
    COHERE_CHECK(pca.ok());
    const CoherenceAnalysis c = ComputeCoherence(*pca, d.features());
    double sum = 0.0;
    for (size_t i = 0; i < 10; ++i) sum += c.probability[i];
    return sum / 10.0;
  };

  // On the clean data the top eigenvalue directions are the coherent
  // concepts; on the corrupted data they are noise.
  const double clean_top = top10_coherence_of_top10_eigen(clean);
  const double noisy_top = top10_coherence_of_top10_eigen(noisy);
  EXPECT_GT(clean_top, noisy_top + 0.05);

  // And within the noisy data, the best-coherence directions are NOT the
  // top-eigenvalue ones: selecting by coherence finds clearly more coherent
  // directions.
  Result<PcaModel> pca =
      PcaModel::Fit(noisy.features(), PcaScaling::kCovariance);
  ASSERT_TRUE(pca.ok());
  const CoherenceAnalysis coherence =
      ComputeCoherence(*pca, noisy.features());
  std::vector<size_t> by_coherence = OrderByCoherence(coherence);
  double top_coh = 0.0;
  for (size_t i = 0; i < 10; ++i) {
    top_coh += coherence.probability[by_coherence[i]];
  }
  top_coh /= 10.0;
  EXPECT_GT(top_coh, noisy_top + 0.02);
  // The best-coherence directions live outside the top-10 eigenvalue block.
  size_t outside = 0;
  for (size_t i = 0; i < 10; ++i) {
    if (by_coherence[i] >= 10) ++outside;
  }
  EXPECT_GE(outside, 5u);
}

TEST(PaperClaimsTest, CoherenceOrderingDominatesOnNoisyData) {
  // Figures 13/15: the accuracy-vs-dims curve of the coherence ordering
  // dominates the eigenvalue ordering on corrupted data.
  Dataset data = NoisyDataA(1004);
  Result<PcaModel> pca =
      PcaModel::Fit(data.features(), PcaScaling::kCovariance);
  ASSERT_TRUE(pca.ok());
  const CoherenceAnalysis coherence = ComputeCoherence(*pca, data.features());

  const auto dims = MakeSweepDims(data.NumAttributes());
  const DimensionSweepResult eigen_sweep = SweepPredictionAccuracy(
      OrderedScores(*pca, data.features(), OrderByEigenvalue(*pca)),
      data.labels(), 3, dims);
  const DimensionSweepResult coh_sweep = SweepPredictionAccuracy(
      OrderedScores(*pca, data.features(), OrderByCoherence(coherence)),
      data.labels(), 3, dims);

  EXPECT_GT(coh_sweep.BestAccuracy(), eigen_sweep.BestAccuracy());
  // The coherence curve peaks at a small dimensionality while the eigenvalue
  // ordering needs most dimensions to recover.
  EXPECT_LT(coh_sweep.BestDims(), 15u);
  EXPECT_GT(eigen_sweep.BestDims(), coh_sweep.BestDims());
}

TEST(PaperClaimsTest, AggressiveReductionBeatsOnePercentThresholding) {
  // Table 1: the optimal-quality dimensionality is far below the
  // 1%-threshold dimensionality, and its accuracy is at least as good.
  Dataset data = IonosphereLike(1005);
  Result<PcaModel> pca =
      PcaModel::Fit(data.features(), PcaScaling::kCorrelation);
  ASSERT_TRUE(pca.ok());

  const auto dims = MakeSweepDims(data.NumAttributes());
  const DimensionSweepResult sweep = SweepPredictionAccuracy(
      OrderedScores(*pca, data.features(), OrderByEigenvalue(*pca)),
      data.labels(), 3, dims);

  const size_t threshold_dims = SelectRelativeThreshold(*pca, 0.01).size();
  EXPECT_LT(sweep.BestDims(), threshold_dims);
  // Accuracy at the 1% threshold dimensionality must not beat the optimum.
  double threshold_acc = 0.0;
  for (const SweepPoint& p : sweep.points) {
    if (p.dims <= threshold_dims) threshold_acc = p.accuracy;
  }
  EXPECT_GE(sweep.BestAccuracy(), threshold_acc);
}

TEST(PaperClaimsTest, OptimalAccuracyBeatsFullDimensionality) {
  // The central quality claim: a well-chosen reduced representation is
  // *better* than the full-dimensional one, not just cheaper.
  Dataset data = MuskLike(1006);
  Result<PcaModel> pca =
      PcaModel::Fit(data.features(), PcaScaling::kCorrelation);
  ASSERT_TRUE(pca.ok());
  const auto dims = MakeSweepDims(data.NumAttributes());
  const DimensionSweepResult sweep = SweepPredictionAccuracy(
      OrderedScores(*pca, data.features(), OrderByEigenvalue(*pca)),
      data.labels(), 3, dims);
  EXPECT_GT(sweep.BestAccuracy(), sweep.LastAccuracy());
  EXPECT_LT(sweep.BestDims(), data.NumAttributes() / 2);
}

TEST(PaperClaimsTest, PrecisionCollapsesWhileQualityImproves) {
  // Section 4: at the aggressive optimum, precision/recall w.r.t. the
  // original neighbors is low even though semantic quality is high.
  Dataset data = MuskLike(1007);
  ReductionOptions options;
  options.scaling = PcaScaling::kCorrelation;
  options.strategy = SelectionStrategy::kCoherenceOrder;
  options.target_dim = 13;
  Result<ReductionPipeline> pipeline = ReductionPipeline::Fit(data, options);
  ASSERT_TRUE(pipeline.ok());
  auto metric = MakeMetric(MetricKind::kEuclidean);
  const Matrix reduced = pipeline->TransformDataset(data).features();
  const NeighborOverlap overlap =
      ReducedSpaceOverlap(data.features(), reduced, 3, *metric);
  EXPECT_LT(overlap.precision, 0.6);

  const double reduced_acc =
      KnnPredictionAccuracy(reduced, data.labels(), 3, *metric);
  const double full_acc =
      KnnPredictionAccuracy(data.features(), data.labels(), 3, *metric);
  EXPECT_GT(reduced_acc, full_acc - 0.02);
}

TEST(PaperClaimsTest, ScalingImprovesReducedSpaceQuality) {
  // Figures 5/8/11: the studentized (correlation) representation gives
  // better reduced-space accuracy than raw covariance PCA on
  // scale-heterogeneous data.
  Dataset data = ArrhythmiaLike(1008);
  const auto dims = MakeSweepDims(data.NumAttributes(), 32);

  Result<PcaModel> cov =
      PcaModel::Fit(data.features(), PcaScaling::kCovariance);
  Result<PcaModel> corr =
      PcaModel::Fit(data.features(), PcaScaling::kCorrelation);
  ASSERT_TRUE(cov.ok());
  ASSERT_TRUE(corr.ok());

  const DimensionSweepResult cov_sweep = SweepPredictionAccuracy(
      OrderedScores(*cov, data.features(), OrderByEigenvalue(*cov)),
      data.labels(), 3, dims);
  const DimensionSweepResult corr_sweep = SweepPredictionAccuracy(
      OrderedScores(*corr, data.features(), OrderByEigenvalue(*corr)),
      data.labels(), 3, dims);
  EXPECT_GE(corr_sweep.BestAccuracy(), cov_sweep.BestAccuracy());
}

TEST(PaperClaimsTest, EndToEndEngineImprovesOverFullDimensionalSearch) {
  // The library's facade, used as a downstream user would: build with
  // coherence selection, evaluate feature-stripped accuracy through the
  // index, compare against full-dimensional search.
  Dataset data = IonosphereLike(1009);
  EngineOptions options;
  options.reduction.scaling = PcaScaling::kCorrelation;
  options.reduction.strategy = SelectionStrategy::kCoherenceOrder;
  options.reduction.target_dim = 10;
  options.backend = IndexBackend::kKdTree;
  Result<ReducedSearchEngine> engine =
      ReducedSearchEngine::Build(data, options);
  ASSERT_TRUE(engine.ok());

  size_t matches = 0;
  size_t slots = 0;
  for (size_t i = 0; i < data.NumRecords(); ++i) {
    for (const Neighbor& nb : engine->Query(data.Record(i), 3, i)) {
      ++slots;
      if (data.label(nb.index) == data.label(i)) ++matches;
    }
  }
  const double engine_acc =
      static_cast<double>(matches) / static_cast<double>(slots);

  auto metric = MakeMetric(MetricKind::kEuclidean);
  const double full_acc =
      KnnPredictionAccuracy(data.features(), data.labels(), 3, *metric);
  EXPECT_GT(engine_acc, full_acc);
}

}  // namespace
}  // namespace cohere
