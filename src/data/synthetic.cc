#include "data/synthetic.h"

#include <cmath>
#include <string>

#include "common/check.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "stats/covariance.h"

namespace cohere {

Dataset GenerateLatentFactor(const LatentFactorConfig& config) {
  COHERE_CHECK_GT(config.num_records, 0u);
  COHERE_CHECK_GT(config.num_attributes, 0u);
  COHERE_CHECK_GT(config.num_concepts, 0u);
  COHERE_CHECK_GE(config.num_classes, 1u);
  COHERE_CHECK_LE(config.num_concepts, config.num_attributes);
  if (!config.class_weights.empty()) {
    COHERE_CHECK_EQ(config.class_weights.size(), config.num_classes);
  }

  Rng rng(config.seed);
  const size_t n = config.num_records;
  const size_t d = config.num_attributes;
  const size_t k = config.num_concepts;

  // Mixing matrix: orthonormalized dense loadings so every concept expresses
  // itself as a coherent agreement across many attributes while the concept
  // directions stay distinct (a flat-then-floor spectrum like the paper's
  // scatter plots, instead of one dominant direction). Column j is scaled by
  // strength_j * sqrt(d/k) so the per-attribute signal variance is about
  // mean(strength^2) independent of d and k.
  Matrix loadings(d, k);
  {
    Matrix gaussian(d, k);
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = 0; j < k; ++j) gaussian.At(i, j) = rng.Gaussian();
    }
    Result<QrDecomposition> qr = HouseholderQr(gaussian);
    COHERE_CHECK_MSG(qr.ok(), "loading orthonormalization failed");
    loadings = std::move(qr->q);
    const double base = std::sqrt(static_cast<double>(d) /
                                  static_cast<double>(k));
    double strength = config.concept_stddev * base;
    for (size_t j = 0; j < k; ++j) {
      for (size_t i = 0; i < d; ++i) loadings.At(i, j) *= strength;
      strength *= config.concept_decay;
    }
  }

  // Per-class centroids in latent space.
  Matrix centroids(config.num_classes, k);
  for (size_t c = 0; c < config.num_classes; ++c) {
    for (size_t j = 0; j < k; ++j) {
      centroids.At(c, j) = rng.Gaussian() * config.class_separation;
    }
  }

  // Cumulative class distribution.
  std::vector<double> cdf(config.num_classes, 0.0);
  {
    double total = 0.0;
    for (size_t c = 0; c < config.num_classes; ++c) {
      const double w = config.class_weights.empty()
                           ? 1.0
                           : config.class_weights[c];
      COHERE_CHECK_GE(w, 0.0);
      total += w;
      cdf[c] = total;
    }
    COHERE_CHECK_GT(total, 0.0);
    for (double& v : cdf) v /= total;
  }

  // Attribute scales, drawn log-uniformly.
  Vector scales(d, 1.0);
  if (config.scale_max > config.scale_min) {
    COHERE_CHECK_GT(config.scale_min, 0.0);
    const double log_lo = std::log(config.scale_min);
    const double log_hi = std::log(config.scale_max);
    for (size_t j = 0; j < d; ++j) {
      scales[j] = std::exp(rng.Uniform(log_lo, log_hi));
    }
  } else {
    for (size_t j = 0; j < d; ++j) scales[j] = config.scale_min;
  }

  Matrix features(n, d);
  std::vector<int> labels(n, 0);
  Vector latent(k);
  for (size_t i = 0; i < n; ++i) {
    // Draw the class, then the latent position around its centroid.
    const double u = rng.Uniform();
    size_t cls = 0;
    while (cls + 1 < config.num_classes && u > cdf[cls]) ++cls;
    labels[i] = static_cast<int>(cls);
    // Unit latent scatter: concept strength is carried by the loadings.
    for (size_t j = 0; j < k; ++j) {
      latent[j] = centroids.At(cls, j) + rng.Gaussian();
    }
    double* row = features.RowPtr(i);
    for (size_t a = 0; a < d; ++a) {
      double value = 0.0;
      const double* load_row = loadings.RowPtr(a);
      for (size_t j = 0; j < k; ++j) value += load_row[j] * latent[j];
      value += rng.Gaussian() * config.noise_stddev;
      row[a] = value * scales[a];
    }
  }

  Dataset out(std::move(features), std::move(labels));
  out.set_name("latent_factor");
  return out;
}

Dataset GenerateUniformCube(size_t num_records, size_t num_attributes,
                            double lo, double hi, uint64_t seed) {
  COHERE_CHECK_GT(hi, lo);
  Rng rng(seed);
  Matrix features(num_records, num_attributes);
  for (size_t i = 0; i < num_records; ++i) {
    double* row = features.RowPtr(i);
    for (size_t j = 0; j < num_attributes; ++j) row[j] = rng.Uniform(lo, hi);
  }
  Dataset out(std::move(features));
  out.set_name("uniform_cube");
  return out;
}

Dataset GenerateGaussianBlob(size_t num_records, size_t num_attributes,
                             double stddev, uint64_t seed) {
  Rng rng(seed);
  Matrix features(num_records, num_attributes);
  for (size_t i = 0; i < num_records; ++i) {
    double* row = features.RowPtr(i);
    for (size_t j = 0; j < num_attributes; ++j) {
      row[j] = rng.Gaussian() * stddev;
    }
  }
  Dataset out(std::move(features));
  out.set_name("gaussian_blob");
  return out;
}

Dataset CorruptWithUniformNoise(const Dataset& dataset,
                                const std::vector<size_t>& columns,
                                double amplitude, uint64_t seed) {
  COHERE_CHECK_GT(amplitude, 0.0);
  Rng rng(seed);
  Matrix features = dataset.features();
  for (size_t c : columns) {
    COHERE_CHECK_LT(c, features.cols());
    for (size_t i = 0; i < features.rows(); ++i) {
      features.At(i, c) = rng.Uniform(0.0, amplitude);
    }
  }
  Dataset out = dataset.WithFeatures(std::move(features));
  if (!dataset.attribute_names().empty()) {
    out.SetAttributeNames(dataset.attribute_names());
  }
  out.set_name(dataset.name() + "_noisy");
  return out;
}

Dataset CorruptWithUniformNoise(const Dataset& dataset, size_t num_columns,
                                double amplitude, uint64_t seed) {
  Rng rng(seed ^ 0x5bd1e995u);
  std::vector<size_t> columns =
      rng.SampleWithoutReplacement(dataset.NumAttributes(), num_columns);
  return CorruptWithUniformNoise(dataset, columns, amplitude, seed);
}

Dataset GenerateMultiPopulation(const MultiPopulationConfig& config) {
  COHERE_CHECK(!config.populations.empty());
  const size_t d = config.populations.front().num_attributes;
  size_t total_records = 0;
  for (const LatentFactorConfig& pop : config.populations) {
    COHERE_CHECK_EQ(pop.num_attributes, d);
    total_records += pop.num_records;
  }

  Rng rng(config.seed);
  Matrix features(total_records, d);
  std::vector<int> labels(total_records, 0);
  size_t row = 0;
  int class_offset = 0;
  for (const LatentFactorConfig& pop : config.populations) {
    Dataset part = GenerateLatentFactor(pop);
    // Shift the population by a random center scaled to its own attribute
    // spread, keeping populations distinguishable but overlapping in range.
    const Vector stds = ColumnStdDevs(part.features());
    Vector center(d);
    for (size_t j = 0; j < d; ++j) {
      center[j] = rng.Gaussian() * config.center_separation * stds[j];
    }
    for (size_t i = 0; i < part.NumRecords(); ++i) {
      const double* src = part.features().RowPtr(i);
      double* dst = features.RowPtr(row);
      for (size_t j = 0; j < d; ++j) dst[j] = src[j] + center[j];
      labels[row] = part.label(i) +
                    (config.offset_class_ids ? class_offset : 0);
      ++row;
    }
    class_offset += static_cast<int>(pop.num_classes);
  }

  Dataset out(std::move(features), std::move(labels));
  out.set_name("multi_population");
  Rng shuffle_rng(config.seed ^ 0xabcdef12u);
  out.ShuffleRecords(&shuffle_rng);
  return out;
}

Dataset ApplyAttributeScales(const Dataset& dataset, const Vector& scales) {
  COHERE_CHECK_EQ(scales.size(), dataset.NumAttributes());
  Matrix features = dataset.features();
  for (size_t i = 0; i < features.rows(); ++i) {
    double* row = features.RowPtr(i);
    for (size_t j = 0; j < features.cols(); ++j) row[j] *= scales[j];
  }
  Dataset out = dataset.WithFeatures(std::move(features));
  if (!dataset.attribute_names().empty()) {
    out.SetAttributeNames(dataset.attribute_names());
  }
  return out;
}

}  // namespace cohere
