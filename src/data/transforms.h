#ifndef COHERE_DATA_TRANSFORMS_H_
#define COHERE_DATA_TRANSFORMS_H_

#include "data/dataset.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace cohere {

/// Column-affine transform x' = (x - shift) / scale fitted on a dataset and
/// applicable to new points (queries must be normalized with the *training*
/// statistics, never their own).
class ColumnAffineTransform {
 public:
  ColumnAffineTransform() = default;
  /// `shift` and `scale` must be equally sized; zero scales are replaced by
  /// 1 so constant columns pass through inert (the paper suggests discarding
  /// them; keeping them inert preserves column indices for callers).
  ColumnAffineTransform(Vector shift, Vector scale);

  /// Fits the z-score ("studentizing") transform: shift = column mean,
  /// scale = column standard deviation. This is the paper's Section 2.2
  /// scaling; applying it before covariance-PCA is equivalent to running PCA
  /// on the correlation matrix.
  static ColumnAffineTransform FitZScore(const Matrix& data);

  /// Fits min-max scaling onto [0, 1].
  static ColumnAffineTransform FitMinMax(const Matrix& data);

  /// Fits mean centering only (unit scale).
  static ColumnAffineTransform FitMeanCenter(const Matrix& data);

  size_t dims() const { return shift_.size(); }
  const Vector& shift() const { return shift_; }
  const Vector& scale() const { return scale_; }

  /// Applies to a single point.
  Vector Apply(const Vector& point) const;
  /// Applies to every row.
  Matrix ApplyToRows(const Matrix& data) const;
  /// Applies to a dataset, preserving labels and metadata.
  Dataset ApplyToDataset(const Dataset& dataset) const;

  /// Inverse transform x = x' * scale + shift.
  Vector Invert(const Vector& point) const;

 private:
  Vector shift_;
  Vector scale_;
};

/// Convenience: returns a studentized copy of `dataset` (fit + apply).
Dataset Studentize(const Dataset& dataset);

}  // namespace cohere

#endif  // COHERE_DATA_TRANSFORMS_H_
