#ifndef COHERE_DATA_CSV_H_
#define COHERE_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace cohere {

/// How LoadCsv should treat fields that are "?" or empty.
enum class MissingValuePolicy {
  /// Return a ParseError on the first missing value.
  kError,
  /// Replace missing numeric values with the column mean of the present
  /// values (the standard preparation for the UCI arrhythmia data).
  kImputeColumnMean,
};

/// Options for LoadCsv.
struct CsvOptions {
  char delimiter = ',';
  /// When true, the first non-comment line provides attribute names.
  bool has_header = false;
  /// Column holding the class attribute: a 0-based index, -1 for the last
  /// column, or kNoLabelColumn for unlabeled data. The class column may be
  /// non-numeric; distinct values are mapped to ids in first-seen order.
  int label_column = kNoLabelColumn;
  MissingValuePolicy missing_values = MissingValuePolicy::kError;
  /// Lines starting with this character are skipped ('\0' disables).
  char comment_char = '#';

  static constexpr int kNoLabelColumn = -2;
};

/// Parses a CSV file into a Dataset. All non-label columns must be numeric
/// (after missing-value handling).
Result<Dataset> LoadCsv(const std::string& path, const CsvOptions& options);

/// Parses CSV content from a string (same semantics as LoadCsv).
Result<Dataset> ParseCsv(const std::string& content,
                         const CsvOptions& options);

/// Writes `dataset` as CSV; when labeled, the class is the last column
/// (class names are used when present, otherwise numeric ids). A header is
/// emitted when the dataset has attribute names.
Status WriteCsv(const Dataset& dataset, const std::string& path);

}  // namespace cohere

#endif  // COHERE_DATA_CSV_H_
