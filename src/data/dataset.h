#ifndef COHERE_DATA_DATASET_H_
#define COHERE_DATA_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "stats/rng.h"

namespace cohere {

/// A table of numeric records with an optional class attribute.
///
/// This is the unit every loader, generator, reducer, and evaluator works
/// with. Records are rows of `features()`; the class attribute (when
/// present) is kept outside the feature matrix — exactly the "feature
/// stripping" arrangement the paper's evaluation methodology requires.
class Dataset {
 public:
  Dataset() = default;
  /// Unlabeled dataset.
  explicit Dataset(Matrix features) : features_(std::move(features)) {}
  /// Labeled dataset; `labels.size()` must equal the number of rows.
  Dataset(Matrix features, std::vector<int> labels);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const Matrix& features() const { return features_; }
  Matrix& mutable_features() { return features_; }

  size_t NumRecords() const { return features_.rows(); }
  size_t NumAttributes() const { return features_.cols(); }

  bool HasLabels() const { return !labels_.empty(); }
  const std::vector<int>& labels() const { return labels_; }
  int label(size_t i) const;
  void SetLabels(std::vector<int> labels);

  /// Number of distinct classes (max label + 1); 0 when unlabeled.
  size_t NumClasses() const;
  /// Count of records per class id.
  std::vector<size_t> ClassCounts() const;

  /// Copies record `i` as a Vector.
  Vector Record(size_t i) const { return features_.Row(i); }

  /// Attribute names; empty when unnamed. When set, size matches columns.
  const std::vector<std::string>& attribute_names() const {
    return attribute_names_;
  }
  void SetAttributeNames(std::vector<std::string> names);

  /// Class-id-to-name mapping from loaders of nominal data; may be empty.
  const std::vector<std::string>& class_names() const { return class_names_; }
  void SetClassNames(std::vector<std::string> names) {
    class_names_ = std::move(names);
  }

  /// Returns a dataset with only the listed attribute columns (labels and
  /// name are preserved; attribute names are subset accordingly).
  Dataset SelectAttributes(const std::vector<size_t>& columns) const;

  /// Returns a dataset with only the listed records.
  Dataset SelectRecords(const std::vector<size_t>& rows) const;

  /// Returns a copy with the same labels/name but replaced feature matrix
  /// (row count must match; used after projection into a reduced space).
  Dataset WithFeatures(Matrix features) const;

  /// Shuffles records (and labels) in place.
  void ShuffleRecords(Rng* rng);

  /// Splits into (first `head_count` records, rest). Useful for
  /// train/query partitions.
  std::pair<Dataset, Dataset> Split(size_t head_count) const;

 private:
  std::string name_;
  Matrix features_;
  std::vector<int> labels_;
  std::vector<std::string> attribute_names_;
  std::vector<std::string> class_names_;
};

}  // namespace cohere

#endif  // COHERE_DATA_DATASET_H_
