#include "data/uci_like.h"

#include "data/synthetic.h"
#include "data/transforms.h"

namespace cohere {

Dataset MuskLike(uint64_t seed) {
  LatentFactorConfig config;
  config.num_records = 476;
  config.num_attributes = 166;
  config.num_concepts = 13;
  config.num_classes = 2;
  config.class_separation = 0.55;
  config.noise_stddev = 1.0;
  config.concept_decay = 0.92;
  // Musk features are integer distance measurements with widely differing
  // ranges; a two-decade scale spread reproduces the covariance/correlation
  // gap the paper observes.
  config.scale_min = 1.0;
  config.scale_max = 100.0;
  config.class_weights = {0.43, 0.57};
  config.seed = seed;
  Dataset out = GenerateLatentFactor(config);
  out.set_name("musk_like");
  return out;
}

Dataset IonosphereLike(uint64_t seed) {
  LatentFactorConfig config;
  config.num_records = 351;
  config.num_attributes = 34;
  config.num_concepts = 10;
  config.num_classes = 2;
  config.class_separation = 0.6;
  config.noise_stddev = 1.0;
  config.concept_decay = 0.9;
  // Ionosphere attributes are already normalized to [-1, 1]; keep scales
  // mildly heterogeneous so the scaling experiment has an effect to show.
  config.scale_min = 0.5;
  config.scale_max = 4.0;
  config.class_weights = {0.64, 0.36};
  config.seed = seed;
  Dataset out = GenerateLatentFactor(config);
  out.set_name("ionosphere_like");
  return out;
}

Dataset ArrhythmiaLike(uint64_t seed) {
  LatentFactorConfig config;
  config.num_records = 452;
  config.num_attributes = 279;
  config.num_concepts = 10;
  config.num_classes = 8;
  config.class_separation = 0.8;
  config.noise_stddev = 1.1;
  config.concept_decay = 0.9;
  // ECG-derived attributes mix millivolt amplitudes with millisecond
  // durations: roughly three decades of scale spread.
  config.scale_min = 0.1;
  config.scale_max = 100.0;
  // The arrhythmia data is dominated by the "normal" class (~54%).
  config.class_weights = {0.54, 0.1, 0.09, 0.07, 0.06, 0.06, 0.05, 0.03};
  config.seed = seed;
  Dataset out = GenerateLatentFactor(config);
  out.set_name("arrhythmia_like");
  return out;
}

// The paper corrupts with uniform noise of amplitude a = 6 on the raw UCI
// attribute scales, which makes the noise variance dominate every signal
// eigenvalue. Our stand-ins are corrupted after studentization, so the
// amplitude is chosen per data set to preserve that construction property
// (noise eigenvalue = a^2/12 strictly above the leading signal eigenvalues).

Dataset NoisyDataA(uint64_t seed) {
  Dataset base = Studentize(IonosphereLike(seed));
  Dataset out = CorruptWithUniformNoise(base, /*num_columns=*/10,
                                        /*amplitude=*/8.0, seed + 1);
  out.set_name("noisy_data_a");
  return out;
}

Dataset NoisyDataB(uint64_t seed) {
  Dataset base = Studentize(ArrhythmiaLike(seed));
  Dataset out = CorruptWithUniformNoise(base, /*num_columns=*/10,
                                        /*amplitude=*/14.0, seed + 1);
  out.set_name("noisy_data_b");
  return out;
}

}  // namespace cohere
