#include "data/transforms.h"

#include <algorithm>

#include "stats/covariance.h"

namespace cohere {

ColumnAffineTransform::ColumnAffineTransform(Vector shift, Vector scale)
    : shift_(std::move(shift)), scale_(std::move(scale)) {
  COHERE_CHECK_EQ(shift_.size(), scale_.size());
  for (size_t j = 0; j < scale_.size(); ++j) {
    if (scale_[j] == 0.0) scale_[j] = 1.0;
  }
}

ColumnAffineTransform ColumnAffineTransform::FitZScore(const Matrix& data) {
  return ColumnAffineTransform(ColumnMeans(data), ColumnStdDevs(data));
}

ColumnAffineTransform ColumnAffineTransform::FitMinMax(const Matrix& data) {
  const size_t d = data.cols();
  Vector lo(d);
  Vector hi(d);
  if (data.rows() > 0) {
    for (size_t j = 0; j < d; ++j) {
      lo[j] = data.At(0, j);
      hi[j] = data.At(0, j);
    }
    for (size_t i = 1; i < data.rows(); ++i) {
      const double* row = data.RowPtr(i);
      for (size_t j = 0; j < d; ++j) {
        lo[j] = std::min(lo[j], row[j]);
        hi[j] = std::max(hi[j], row[j]);
      }
    }
  }
  Vector scale(d);
  for (size_t j = 0; j < d; ++j) scale[j] = hi[j] - lo[j];
  return ColumnAffineTransform(std::move(lo), std::move(scale));
}

ColumnAffineTransform ColumnAffineTransform::FitMeanCenter(
    const Matrix& data) {
  return ColumnAffineTransform(ColumnMeans(data),
                               Vector(data.cols(), 1.0));
}

Vector ColumnAffineTransform::Apply(const Vector& point) const {
  COHERE_CHECK_EQ(point.size(), shift_.size());
  Vector out(point.size());
  for (size_t j = 0; j < point.size(); ++j) {
    out[j] = (point[j] - shift_[j]) / scale_[j];
  }
  return out;
}

Matrix ColumnAffineTransform::ApplyToRows(const Matrix& data) const {
  COHERE_CHECK_EQ(data.cols(), shift_.size());
  Matrix out = data;
  for (size_t i = 0; i < out.rows(); ++i) {
    double* row = out.RowPtr(i);
    for (size_t j = 0; j < out.cols(); ++j) {
      row[j] = (row[j] - shift_[j]) / scale_[j];
    }
  }
  return out;
}

Dataset ColumnAffineTransform::ApplyToDataset(const Dataset& dataset) const {
  Dataset out = dataset.WithFeatures(ApplyToRows(dataset.features()));
  if (!dataset.attribute_names().empty()) {
    out.SetAttributeNames(dataset.attribute_names());
  }
  return out;
}

Vector ColumnAffineTransform::Invert(const Vector& point) const {
  COHERE_CHECK_EQ(point.size(), shift_.size());
  Vector out(point.size());
  for (size_t j = 0; j < point.size(); ++j) {
    out[j] = point[j] * scale_[j] + shift_[j];
  }
  return out;
}

Dataset Studentize(const Dataset& dataset) {
  return ColumnAffineTransform::FitZScore(dataset.features())
      .ApplyToDataset(dataset);
}

}  // namespace cohere
