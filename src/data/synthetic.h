#ifndef COHERE_DATA_SYNTHETIC_H_
#define COHERE_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "stats/rng.h"

namespace cohere {

/// Configuration for the latent-factor ("concept") generator.
///
/// The generator realizes the data model underlying the paper's analysis:
/// a small number of latent concepts (the implicit dimensionality) are
/// linearly mixed into many observed attributes, the class attribute is a
/// function of the latent position, per-attribute noise is added, and the
/// attributes are finally stretched by heterogeneous scales. Every knob maps
/// to a quantity in the paper: concepts -> implicit dimensionality,
/// noise_stddev -> incoherent variation, scale range -> the Section 2.2
/// scaling effects.
struct LatentFactorConfig {
  size_t num_records = 400;
  size_t num_attributes = 50;
  size_t num_concepts = 8;
  size_t num_classes = 2;
  /// Standard deviation of the latent (concept) coordinates.
  double concept_stddev = 1.0;
  /// Multiplicative strength decay across concepts: concept j carries
  /// strength concept_stddev * concept_decay^j. Values below 1 create the
  /// separated leading cluster visible in the paper's scatter plots.
  double concept_decay = 0.92;
  /// Distance scale between per-class latent centroids.
  double class_separation = 1.0;
  /// Per-attribute iid Gaussian noise added after mixing.
  double noise_stddev = 1.0;
  /// Attribute scales are drawn log-uniformly from [scale_min, scale_max].
  /// Equal values disable scale heterogeneity.
  double scale_min = 1.0;
  double scale_max = 1.0;
  /// Relative class frequencies; empty means uniform. Size must match
  /// num_classes when non-empty.
  std::vector<double> class_weights;
  uint64_t seed = 42;
};

/// Generates a labeled dataset from the latent-factor model.
Dataset GenerateLatentFactor(const LatentFactorConfig& config);

/// Uniformly distributed points in [lo, hi]^d — the paper's "perfectly
/// noisy" worst case of Section 3. Unlabeled.
Dataset GenerateUniformCube(size_t num_records, size_t num_attributes,
                            double lo, double hi, uint64_t seed);

/// Isotropic Gaussian blob centered at the origin. Unlabeled.
Dataset GenerateGaussianBlob(size_t num_records, size_t num_attributes,
                             double stddev, uint64_t seed);

/// Replaces the attributes at `columns` with iid uniform noise of the given
/// amplitude (values in [0, amplitude]), reproducing the paper's synthetic
/// corruption for noisy data sets A and B. Labels are untouched.
Dataset CorruptWithUniformNoise(const Dataset& dataset,
                                const std::vector<size_t>& columns,
                                double amplitude, uint64_t seed);

/// Convenience overload: corrupts `num_columns` distinct columns chosen
/// uniformly at random.
Dataset CorruptWithUniformNoise(const Dataset& dataset, size_t num_columns,
                                double amplitude, uint64_t seed);

/// Multiplies each attribute by the corresponding scale factor.
Dataset ApplyAttributeScales(const Dataset& dataset, const Vector& scales);

/// Configuration for a mixture of latent-factor populations, each with its
/// own concept subspace — data whose *global* implicit dimensionality is the
/// sum of the per-population ones. This is the regime the paper's Section
/// 3.1 points at: a single global axis system cannot serve all populations,
/// and the projected-clustering extension (LocalReducedSearchEngine) can.
struct MultiPopulationConfig {
  /// Per-population generator configs; all must share num_attributes.
  /// Give populations distinct seeds so their concept subspaces differ.
  std::vector<LatentFactorConfig> populations;
  /// Population centers are shifted by N(0, (separation * column_std)^2)
  /// per attribute, keeping the populations spatially distinguishable.
  double center_separation = 3.0;
  /// When true (default), population p's class ids are offset so that each
  /// population owns a disjoint block of classes — a neighbor from the
  /// wrong population is then always a semantic miss.
  bool offset_class_ids = true;
  uint64_t seed = 77;
};

/// Generates the concatenated, shuffled multi-population dataset.
Dataset GenerateMultiPopulation(const MultiPopulationConfig& config);

}  // namespace cohere

#endif  // COHERE_DATA_SYNTHETIC_H_
