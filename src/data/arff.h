#ifndef COHERE_DATA_ARFF_H_
#define COHERE_DATA_ARFF_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace cohere {

/// Loads a dataset in the (UCI/Weka) ARFF format.
///
/// Supported attribute types: numeric / real / integer, and nominal
/// ("{a,b,c}"). Exactly one nominal attribute may be designated the class:
/// the attribute literally named "class" if present, otherwise the last
/// nominal attribute. All other attributes must be numeric. Missing values
/// ("?") in numeric attributes are imputed with the column mean; a missing
/// class value is an error. Sparse-format data rows ("{i v, ...}") and
/// string/date attributes are not supported.
Result<Dataset> LoadArff(const std::string& path);

/// Parses ARFF content from a string (same semantics as LoadArff).
Result<Dataset> ParseArff(const std::string& content);

/// Writes a dataset in ARFF format (numeric attributes plus a nominal class
/// when labels are present).
Status WriteArff(const Dataset& dataset, const std::string& path);

}  // namespace cohere

#endif  // COHERE_DATA_ARFF_H_
