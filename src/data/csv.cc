#include "data/csv.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "common/fault.h"
#include "common/string_util.h"

namespace cohere {
namespace {

bool IsMissingField(std::string_view field) {
  std::string_view t = Trim(field);
  return t.empty() || t == "?";
}

}  // namespace

Result<Dataset> ParseCsv(const std::string& content,
                         const CsvOptions& options) {
  std::istringstream stream(content);
  std::string line;
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  std::map<std::string, int> label_ids;
  std::vector<std::string> class_names;
  std::vector<std::vector<bool>> missing_mask;
  bool saw_header = false;
  size_t num_fields = 0;
  size_t line_no = 0;

  while (std::getline(stream, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (options.comment_char != '\0' &&
        trimmed.front() == options.comment_char) {
      continue;
    }
    std::vector<std::string> fields = Split(trimmed, options.delimiter);
    if (options.has_header && !saw_header) {
      for (auto& f : fields) header.emplace_back(Trim(f));
      saw_header = true;
      num_fields = fields.size();
      continue;
    }
    if (num_fields == 0) num_fields = fields.size();
    if (fields.size() != num_fields) {
      return Status::ParseError("line " + std::to_string(line_no) + " has " +
                                std::to_string(fields.size()) +
                                " fields, expected " +
                                std::to_string(num_fields));
    }

    int label_col = options.label_column;
    if (label_col == -1) label_col = static_cast<int>(num_fields) - 1;
    if (label_col != CsvOptions::kNoLabelColumn &&
        (label_col < 0 || static_cast<size_t>(label_col) >= num_fields)) {
      return Status::InvalidArgument("label column out of range");
    }

    std::vector<double> row;
    std::vector<bool> row_missing;
    row.reserve(num_fields);
    for (size_t j = 0; j < fields.size(); ++j) {
      if (label_col != CsvOptions::kNoLabelColumn &&
          j == static_cast<size_t>(label_col)) {
        std::string key(Trim(fields[j]));
        auto [it, inserted] =
            label_ids.emplace(key, static_cast<int>(label_ids.size()));
        if (inserted) class_names.push_back(key);
        labels.push_back(it->second);
        continue;
      }
      if (IsMissingField(fields[j])) {
        if (options.missing_values == MissingValuePolicy::kError) {
          return Status::ParseError("missing value at line " +
                                    std::to_string(line_no));
        }
        row.push_back(std::numeric_limits<double>::quiet_NaN());
        row_missing.push_back(true);
        continue;
      }
      Result<double> value = ParseDouble(fields[j]);
      if (!value.ok()) {
        return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                  value.status().message());
      }
      // strtod accepts "inf"/"nan" literals; a non-finite feature value
      // silently corrupts every downstream distance (and the dataset
      // fingerprints cache keys are built from), so reject it here with the
      // line number attached.
      if (!std::isfinite(*value)) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": non-finite value '" +
                                  std::string(Trim(fields[j])) + "'");
      }
      row.push_back(*value);
      row_missing.push_back(false);
    }
    rows.push_back(std::move(row));
    missing_mask.push_back(std::move(row_missing));
  }

  if (rows.empty()) return Status::ParseError("no data rows");
  const size_t d = rows[0].size();

  // Mean-impute missing values if requested.
  if (options.missing_values == MissingValuePolicy::kImputeColumnMean) {
    for (size_t j = 0; j < d; ++j) {
      double sum = 0.0;
      size_t present = 0;
      for (size_t i = 0; i < rows.size(); ++i) {
        if (!missing_mask[i][j]) {
          sum += rows[i][j];
          ++present;
        }
      }
      const double mean = present > 0 ? sum / static_cast<double>(present)
                                      : 0.0;
      for (size_t i = 0; i < rows.size(); ++i) {
        if (missing_mask[i][j]) rows[i][j] = mean;
      }
    }
  }

  Matrix features(rows.size(), d);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < d; ++j) features.At(i, j) = rows[i][j];
  }

  Dataset out = labels.empty() ? Dataset(std::move(features))
                               : Dataset(std::move(features),
                                         std::move(labels));
  if (!class_names.empty()) out.SetClassNames(std::move(class_names));
  if (!header.empty()) {
    // Drop the label column's name, if any.
    int label_col = options.label_column;
    if (label_col == -1) label_col = static_cast<int>(num_fields) - 1;
    std::vector<std::string> names;
    for (size_t j = 0; j < header.size(); ++j) {
      if (label_col != CsvOptions::kNoLabelColumn &&
          j == static_cast<size_t>(label_col)) {
        continue;
      }
      names.push_back(header[j]);
    }
    if (names.size() == out.NumAttributes()) {
      out.SetAttributeNames(std::move(names));
    }
  }
  return out;
}

Result<Dataset> LoadCsv(const std::string& path, const CsvOptions& options) {
  if (COHERE_INJECT_FAULT(fault::kPointLoaderIo)) {
    return Status::IoError("injected fault: " +
                           std::string(fault::kPointLoaderIo) + " reading " +
                           path);
  }
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  Result<Dataset> parsed = ParseCsv(buffer.str(), options);
  if (parsed.ok()) parsed->set_name(path);
  return parsed;
}

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  const Matrix& x = dataset.features();

  if (!dataset.attribute_names().empty()) {
    for (size_t j = 0; j < x.cols(); ++j) {
      if (j > 0) file << ',';
      file << dataset.attribute_names()[j];
    }
    if (dataset.HasLabels()) file << ",class";
    file << '\n';
  }

  file.precision(17);
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) {
      if (j > 0) file << ',';
      file << x.At(i, j);
    }
    if (dataset.HasLabels()) {
      const int label = dataset.label(i);
      file << ',';
      if (static_cast<size_t>(label) < dataset.class_names().size()) {
        file << dataset.class_names()[static_cast<size_t>(label)];
      } else {
        file << label;
      }
    }
    file << '\n';
  }
  if (!file) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace cohere
