#include "data/dataset.h"

#include <algorithm>
#include <numeric>
#include <utility>

namespace cohere {

Dataset::Dataset(Matrix features, std::vector<int> labels)
    : features_(std::move(features)), labels_(std::move(labels)) {
  COHERE_CHECK_EQ(features_.rows(), labels_.size());
}

int Dataset::label(size_t i) const {
  COHERE_CHECK(HasLabels());
  COHERE_CHECK_LT(i, labels_.size());
  return labels_[i];
}

void Dataset::SetLabels(std::vector<int> labels) {
  COHERE_CHECK_EQ(labels.size(), features_.rows());
  labels_ = std::move(labels);
}

size_t Dataset::NumClasses() const {
  if (labels_.empty()) return 0;
  int max_label = *std::max_element(labels_.begin(), labels_.end());
  COHERE_CHECK_GE(max_label, 0);
  return static_cast<size_t>(max_label) + 1;
}

std::vector<size_t> Dataset::ClassCounts() const {
  std::vector<size_t> counts(NumClasses(), 0);
  for (int l : labels_) ++counts[static_cast<size_t>(l)];
  return counts;
}

void Dataset::SetAttributeNames(std::vector<std::string> names) {
  COHERE_CHECK_EQ(names.size(), features_.cols());
  attribute_names_ = std::move(names);
}

Dataset Dataset::SelectAttributes(const std::vector<size_t>& columns) const {
  Dataset out(features_.SelectCols(columns));
  out.name_ = name_;
  out.labels_ = labels_;
  out.class_names_ = class_names_;
  if (!attribute_names_.empty()) {
    std::vector<std::string> names;
    names.reserve(columns.size());
    for (size_t c : columns) {
      COHERE_CHECK_LT(c, attribute_names_.size());
      names.push_back(attribute_names_[c]);
    }
    out.attribute_names_ = std::move(names);
  }
  return out;
}

Dataset Dataset::SelectRecords(const std::vector<size_t>& rows) const {
  Dataset out(features_.SelectRows(rows));
  out.name_ = name_;
  out.attribute_names_ = attribute_names_;
  out.class_names_ = class_names_;
  if (!labels_.empty()) {
    std::vector<int> labels;
    labels.reserve(rows.size());
    for (size_t r : rows) {
      COHERE_CHECK_LT(r, labels_.size());
      labels.push_back(labels_[r]);
    }
    out.labels_ = std::move(labels);
  }
  return out;
}

Dataset Dataset::WithFeatures(Matrix features) const {
  COHERE_CHECK_EQ(features.rows(), features_.rows());
  Dataset out(std::move(features));
  out.name_ = name_;
  out.labels_ = labels_;
  out.class_names_ = class_names_;
  // Attribute names describe the original columns and do not carry over to a
  // transformed feature space.
  return out;
}

void Dataset::ShuffleRecords(Rng* rng) {
  std::vector<size_t> order(NumRecords());
  std::iota(order.begin(), order.end(), size_t{0});
  rng->Shuffle(&order);
  Dataset shuffled = SelectRecords(order);
  features_ = std::move(shuffled.features_);
  labels_ = std::move(shuffled.labels_);
}

std::pair<Dataset, Dataset> Dataset::Split(size_t head_count) const {
  COHERE_CHECK_LE(head_count, NumRecords());
  std::vector<size_t> head(head_count);
  std::iota(head.begin(), head.end(), size_t{0});
  std::vector<size_t> tail(NumRecords() - head_count);
  std::iota(tail.begin(), tail.end(), head_count);
  return {SelectRecords(head), SelectRecords(tail)};
}

}  // namespace cohere
