#include "data/arff.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "common/fault.h"
#include "common/string_util.h"

namespace cohere {
namespace {

struct ArffAttribute {
  std::string name;
  bool nominal = false;
  std::vector<std::string> values;  // for nominal attributes
};

// Parses "@attribute name type" where type is numeric-ish or "{a, b, c}".
Result<ArffAttribute> ParseAttributeDecl(std::string_view line,
                                         size_t line_no) {
  // Strip the "@attribute" keyword.
  std::string_view rest = Trim(line.substr(std::string("@attribute").size()));
  if (rest.empty()) {
    return Status::ParseError("line " + std::to_string(line_no) +
                              ": empty attribute declaration");
  }

  ArffAttribute attr;
  // Attribute name may be quoted.
  if (rest.front() == '\'' || rest.front() == '"') {
    const char quote = rest.front();
    const size_t close = rest.find(quote, 1);
    if (close == std::string_view::npos) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": unterminated quoted attribute name");
    }
    attr.name = std::string(rest.substr(1, close - 1));
    rest = Trim(rest.substr(close + 1));
  } else {
    const size_t space = rest.find_first_of(" \t");
    if (space == std::string_view::npos) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": attribute declaration without a type");
    }
    attr.name = std::string(rest.substr(0, space));
    rest = Trim(rest.substr(space));
  }

  if (!rest.empty() && rest.front() == '{') {
    const size_t close = rest.find('}');
    if (close == std::string_view::npos) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": unterminated nominal value list");
    }
    attr.nominal = true;
    for (const std::string& v : Split(rest.substr(1, close - 1), ',')) {
      attr.values.emplace_back(Trim(v));
    }
    if (attr.values.empty()) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": nominal attribute with no values");
    }
    return attr;
  }

  const std::string type = ToLower(Trim(rest));
  if (type == "numeric" || type == "real" || type == "integer") {
    return attr;
  }
  return Status::ParseError("line " + std::to_string(line_no) +
                            ": unsupported attribute type '" + type + "'");
}

}  // namespace

Result<Dataset> ParseArff(const std::string& content) {
  std::istringstream stream(content);
  std::string line;
  std::vector<ArffAttribute> attributes;
  std::string relation_name;
  bool in_data = false;
  size_t line_no = 0;

  std::vector<std::vector<double>> rows;
  std::vector<std::vector<bool>> missing_mask;
  std::vector<int> labels;
  int class_attr = -1;  // index into `attributes`

  auto finalize_class_attr = [&]() {
    // Prefer the attribute named "class"; otherwise the last nominal one.
    for (size_t i = 0; i < attributes.size(); ++i) {
      if (attributes[i].nominal &&
          EqualsIgnoreCase(attributes[i].name, "class")) {
        class_attr = static_cast<int>(i);
        return;
      }
    }
    for (size_t i = attributes.size(); i-- > 0;) {
      if (attributes[i].nominal) {
        class_attr = static_cast<int>(i);
        return;
      }
    }
  };

  while (std::getline(stream, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '%') continue;

    if (!in_data) {
      const std::string lower = ToLower(trimmed.substr(0, 10));
      if (StartsWith(lower, "@relation")) {
        relation_name = std::string(Trim(trimmed.substr(9)));
        continue;
      }
      if (StartsWith(lower, "@attribute")) {
        Result<ArffAttribute> attr = ParseAttributeDecl(trimmed, line_no);
        if (!attr.ok()) return attr.status();
        attributes.push_back(std::move(*attr));
        continue;
      }
      if (StartsWith(lower, "@data")) {
        if (attributes.empty()) {
          return Status::ParseError("@data before any @attribute");
        }
        finalize_class_attr();
        // Every non-class attribute must be numeric.
        for (size_t i = 0; i < attributes.size(); ++i) {
          if (attributes[i].nominal && static_cast<int>(i) != class_attr) {
            return Status::ParseError("non-class nominal attribute '" +
                                      attributes[i].name +
                                      "' is not supported");
          }
        }
        in_data = true;
        continue;
      }
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": unrecognized header line");
    }

    // Data section.
    if (trimmed.front() == '{') {
      return Status::ParseError("sparse ARFF data is not supported (line " +
                                std::to_string(line_no) + ")");
    }
    std::vector<std::string> fields = Split(trimmed, ',');
    if (fields.size() != attributes.size()) {
      return Status::ParseError("line " + std::to_string(line_no) + " has " +
                                std::to_string(fields.size()) +
                                " fields, expected " +
                                std::to_string(attributes.size()));
    }
    std::vector<double> row;
    std::vector<bool> row_missing;
    for (size_t j = 0; j < fields.size(); ++j) {
      std::string field(Trim(fields[j]));
      if (static_cast<int>(j) == class_attr) {
        if (field == "?") {
          return Status::ParseError("missing class value at line " +
                                    std::to_string(line_no));
        }
        const auto& values = attributes[j].values;
        int id = -1;
        for (size_t v = 0; v < values.size(); ++v) {
          if (values[v] == field) {
            id = static_cast<int>(v);
            break;
          }
        }
        if (id < 0) {
          return Status::ParseError("line " + std::to_string(line_no) +
                                    ": class value '" + field +
                                    "' not declared");
        }
        labels.push_back(id);
        continue;
      }
      if (field == "?") {
        row.push_back(std::numeric_limits<double>::quiet_NaN());
        row_missing.push_back(true);
        continue;
      }
      Result<double> value = ParseDouble(field);
      if (!value.ok()) {
        return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                  value.status().message());
      }
      // Reject "inf"/"nan" literals (strtod parses them): a non-finite
      // feature poisons distances and dataset fingerprints downstream.
      if (!std::isfinite(*value)) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": non-finite value '" + field + "'");
      }
      row.push_back(*value);
      row_missing.push_back(false);
    }
    rows.push_back(std::move(row));
    missing_mask.push_back(std::move(row_missing));
  }

  if (!in_data) return Status::ParseError("missing @data section");
  if (rows.empty()) return Status::ParseError("no data rows");

  const size_t d = rows[0].size();
  // Impute missing numeric values with column means.
  for (size_t j = 0; j < d; ++j) {
    double sum = 0.0;
    size_t present = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (!missing_mask[i][j]) {
        sum += rows[i][j];
        ++present;
      }
    }
    const double mean = present > 0 ? sum / static_cast<double>(present) : 0.0;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (missing_mask[i][j]) rows[i][j] = mean;
    }
  }

  Matrix features(rows.size(), d);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < d; ++j) features.At(i, j) = rows[i][j];
  }

  Dataset out = class_attr >= 0
                    ? Dataset(std::move(features), std::move(labels))
                    : Dataset(std::move(features));
  out.set_name(relation_name);
  std::vector<std::string> names;
  for (size_t j = 0; j < attributes.size(); ++j) {
    if (static_cast<int>(j) == class_attr) continue;
    names.push_back(attributes[j].name);
  }
  out.SetAttributeNames(std::move(names));
  if (class_attr >= 0) {
    out.SetClassNames(attributes[static_cast<size_t>(class_attr)].values);
  }
  return out;
}

Result<Dataset> LoadArff(const std::string& path) {
  if (COHERE_INJECT_FAULT(fault::kPointLoaderIo)) {
    return Status::IoError("injected fault: " +
                           std::string(fault::kPointLoaderIo) + " reading " +
                           path);
  }
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseArff(buffer.str());
}

Status WriteArff(const Dataset& dataset, const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file << "@relation "
       << (dataset.name().empty() ? std::string("cohere") : dataset.name())
       << "\n\n";
  for (size_t j = 0; j < dataset.NumAttributes(); ++j) {
    std::string name = j < dataset.attribute_names().size()
                           ? dataset.attribute_names()[j]
                           : "attr" + std::to_string(j);
    file << "@attribute " << name << " numeric\n";
  }
  if (dataset.HasLabels()) {
    file << "@attribute class {";
    const size_t num_classes = dataset.NumClasses();
    for (size_t c = 0; c < num_classes; ++c) {
      if (c > 0) file << ',';
      if (c < dataset.class_names().size()) {
        file << dataset.class_names()[c];
      } else {
        file << 'c' << c;
      }
    }
    file << "}\n";
  }
  file << "\n@data\n";
  file.precision(17);
  const Matrix& x = dataset.features();
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) {
      if (j > 0) file << ',';
      file << x.At(i, j);
    }
    if (dataset.HasLabels()) {
      const size_t label = static_cast<size_t>(dataset.label(i));
      file << ',';
      if (label < dataset.class_names().size()) {
        file << dataset.class_names()[label];
      } else {
        file << 'c' << label;
      }
    }
    file << '\n';
  }
  if (!file) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace cohere
