#ifndef COHERE_DATA_UCI_LIKE_H_
#define COHERE_DATA_UCI_LIKE_H_

#include <cstdint>

#include "data/dataset.h"

namespace cohere {

/// Simulated stand-ins for the UCI data sets the paper evaluates on.
///
/// The original files (Musk v2, Ionosphere, Arrhythmia) are not available in
/// this offline environment; these presets use the latent-factor generator
/// with the dimensions, class structure, implicit dimensionality and scale
/// heterogeneity that the paper's analysis depends on. See DESIGN.md §3 for
/// the substitution rationale.

/// Musk-like: 476 records x 166 attributes, 2 classes, ~13 concepts
/// (the paper finds the optimum at 13 of 166 retained eigenvectors).
Dataset MuskLike(uint64_t seed = 101);

/// Ionosphere-like: 351 x 34, 2 classes, ~10 concepts (the paper reports a
/// cluster of 5 dominant eigenvalues and the optimum at 10).
Dataset IonosphereLike(uint64_t seed = 202);

/// Arrhythmia-like: 452 x 279, 8 classes with a dominant "normal" class,
/// ~10 concepts (the paper's optimum is the top 10 eigenvectors).
Dataset ArrhythmiaLike(uint64_t seed = 303);

/// Noisy data set A: the ionosphere-like data studentized, then 10 of the 34
/// attributes replaced by uniform noise — the noise directions carry the
/// largest variance, decoupling eigenvalue magnitude from coherence (paper
/// Section 4.1). The amplitude (8 here vs the paper's 6 on raw UCI scales)
/// is chosen so the noise eigenvalues strictly dominate the leading signal
/// eigenvalues, the property the paper's construction relies on.
Dataset NoisyDataA(uint64_t seed = 404);

/// Noisy data set B: the arrhythmia-like data studentized, then 10 of the
/// 279 attributes replaced by uniform noise of amplitude 14 (same
/// construction-property scaling as NoisyDataA; reproduces the ~11
/// high-eigenvalue outliers of the paper's Figure 14).
Dataset NoisyDataB(uint64_t seed = 505);

}  // namespace cohere

#endif  // COHERE_DATA_UCI_LIKE_H_
