#ifndef COHERE_LINALG_POWER_ITERATION_H_
#define COHERE_LINALG_POWER_ITERATION_H_

#include <cstdint>

#include "common/status.h"
#include "linalg/symmetric_eigen.h"

namespace cohere {

/// Options for TopKEigen.
struct TopKEigenOptions {
  /// Number of leading eigenpairs to compute (1 <= k <= dims).
  size_t k = 1;
  int max_iterations = 500;
  /// Converged when no Rayleigh eigenvalue estimate moves by more than
  /// tolerance * max(1, |lambda_1|) between sweeps.
  double tolerance = 1e-11;
  uint64_t seed = 1;
};

/// Computes the k leading eigenpairs of a symmetric positive semi-definite
/// matrix by orthogonal (block power) iteration with QR re-orthogonalization.
///
/// Costs O(d^2 k) per sweep instead of the full solver's O(d^3), but the
/// sweep count is gap-limited (convergence rate lambda_{k+1}/lambda_k), so
/// it only pays off for large d with fast spectral decay — bench_micro
/// shows the dense QL solver winning at d <= a few hundred. Eigenpairs
/// return in descending order, matching SymmetricEigen. Requires a PSD
/// input (eigenvalues are magnitudes under power iteration); returns
/// NumericalError when the subspace fails to settle, e.g. when eigenvalues
/// k and k+1 are (near-)equal.
Result<EigenDecomposition> TopKEigen(const Matrix& a,
                                     const TopKEigenOptions& options);

}  // namespace cohere

#endif  // COHERE_LINALG_POWER_ITERATION_H_
