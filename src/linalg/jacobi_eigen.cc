#include "linalg/jacobi_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/fault.h"

namespace cohere {

Result<EigenDecomposition> JacobiEigen(const Matrix& a, int max_sweeps) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("eigendecomposition requires a square matrix");
  }
  if (!a.IsSymmetric(1e-8 * std::max(1.0, a.MaxAbs()))) {
    return Status::InvalidArgument("matrix is not symmetric");
  }
  if (COHERE_INJECT_FAULT(fault::kPointJacobiEigen)) {
    return Status::NumericalError(
        "injected fault: " + std::string(fault::kPointJacobiEigen));
  }
  const size_t n = a.rows();
  if (n == 0) return EigenDecomposition{Vector(), Matrix()};

  Matrix m = a;
  Matrix v = Matrix::Identity(n);

  auto off_diagonal_norm = [&m, n]() {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) sum += m.At(i, j) * m.At(i, j);
    }
    return std::sqrt(2.0 * sum);
  };

  const double tol = 1e-14 * std::max(1.0, m.FrobeniusNorm());
  bool converged = off_diagonal_norm() <= tol;

  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = m.At(p, q);
        if (std::fabs(apq) <= tol / static_cast<double>(n)) continue;
        const double app = m.At(p, p);
        const double aqq = m.At(q, q);
        // Stable rotation angle computation (Golub & Van Loan, sec. 8.4).
        const double theta = (aqq - app) / (2.0 * apq);
        double t;
        if (theta >= 0.0) {
          t = 1.0 / (theta + std::sqrt(1.0 + theta * theta));
        } else {
          t = -1.0 / (-theta + std::sqrt(1.0 + theta * theta));
        }
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        // Apply the rotation to rows/columns p and q of M.
        for (size_t k = 0; k < n; ++k) {
          const double mkp = m.At(k, p);
          const double mkq = m.At(k, q);
          m.At(k, p) = c * mkp - s * mkq;
          m.At(k, q) = s * mkp + c * mkq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double mpk = m.At(p, k);
          const double mqk = m.At(q, k);
          m.At(p, k) = c * mpk - s * mqk;
          m.At(q, k) = s * mpk + c * mqk;
        }
        // Accumulate eigenvectors.
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v.At(k, p);
          const double vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
    converged = off_diagonal_norm() <= tol;
  }

  if (!converged) {
    return Status::NumericalError("Jacobi eigensolver did not converge");
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&m](size_t x, size_t y) {
    return m.At(x, x) > m.At(y, y);
  });

  EigenDecomposition out;
  out.eigenvalues.Resize(n);
  out.eigenvectors = Matrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = m.At(order[j], order[j]);
    for (size_t i = 0; i < n; ++i) {
      out.eigenvectors.At(i, j) = v.At(i, order[j]);
    }
  }
  return out;
}

}  // namespace cohere
