#ifndef COHERE_LINALG_QR_H_
#define COHERE_LINALG_QR_H_

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace cohere {

/// Thin QR decomposition A = Q R for an m x n matrix with m >= n:
/// `q` is m x n with orthonormal columns and `r` is n x n upper triangular.
struct QrDecomposition {
  Matrix q;
  Matrix r;
};

/// Computes the thin QR decomposition by Householder reflections.
/// Requires rows() >= cols().
Result<QrDecomposition> HouseholderQr(const Matrix& a);

/// Solves the least-squares problem min_x |A x - b|_2 via QR.
/// Returns NumericalError when A is (numerically) rank deficient.
Result<Vector> LeastSquares(const Matrix& a, const Vector& b);

}  // namespace cohere

#endif  // COHERE_LINALG_QR_H_
