#ifndef COHERE_LINALG_BLOCKED_MATRIX_H_
#define COHERE_LINALG_BLOCKED_MATRIX_H_

#include <algorithm>
#include <cstddef>
#include <new>
#include <vector>

#include "common/check.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace cohere {

/// Minimal aligned allocator so BlockedMatrix storage can live in a plain
/// std::vector (keeping value semantics) while guaranteeing the base-pointer
/// alignment the SIMD scan kernels want.
template <typename T, size_t Alignment>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// Contiguous, 64-byte-aligned, block-padded row storage for scan kernels.
///
/// Rows keep the plain row-major order of Matrix (`RowPtr(i) == data() +
/// i * cols()`), but the allocation is rounded up to whole blocks of
/// kRowsPerBlock rows and the padding rows are zero-filled. A kernel may
/// therefore always read complete SIMD row-groups from anywhere inside the
/// padded region without running off the allocation; results computed for
/// padding lanes are simply discarded by the caller.
///
/// A snapshot shard owns one BlockedMatrix (via shared_ptr) and every index
/// built over that shard references it, so publishing a snapshot no longer
/// duplicates the reduced dataset once per backend.
class BlockedMatrix {
 public:
  /// Rows per block. 16 rows of 8 doubles span exactly 16 cache lines at
  /// d = 8; every whole block starts 64-byte aligned whenever cols() is a
  /// multiple of 8.
  static constexpr size_t kRowsPerBlock = 16;
  static constexpr size_t kAlignment = 64;

  BlockedMatrix() = default;
  /// Copies the rows of `m` into blocked storage.
  explicit BlockedMatrix(const Matrix& m);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  /// Rows including the zero-filled block padding at the end.
  size_t padded_rows() const {
    return cols_ == 0 ? 0 : data_.size() / cols_;
  }
  size_t num_blocks() const {
    return (rows_ + kRowsPerBlock - 1) / kRowsPerBlock;
  }
  /// Logical (unpadded) rows in block `b`.
  size_t BlockRows(size_t b) const {
    return std::min(kRowsPerBlock, rows_ - b * kRowsPerBlock);
  }

  const double* data() const { return data_.data(); }
  const double* RowPtr(size_t i) const { return data_.data() + i * cols_; }
  const double* BlockPtr(size_t b) const {
    return data_.data() + b * kRowsPerBlock * cols_;
  }
  /// Unchecked element access (inner-loop use, mirrors Matrix::At).
  double At(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  /// Copies row `i` into a Vector.
  Vector Row(size_t i) const;
  /// Copies the logical (unpadded) rows back into a Matrix — used by
  /// copy-on-write growth paths that extend a snapshot's dataset.
  Matrix ToMatrix() const;

  /// Bytes held by the padded allocation.
  size_t MemoryBytes() const { return data_.size() * sizeof(double); }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double, AlignedAllocator<double, kAlignment>> data_;
};

}  // namespace cohere

#endif  // COHERE_LINALG_BLOCKED_MATRIX_H_
