#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/parallel.h"

namespace cohere {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(0) {
  for (const auto& row : rows) {
    if (cols_ == 0) cols_ = row.size();
    COHERE_CHECK_MSG(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix out(n, n);
  for (size_t i = 0; i < n; ++i) out.At(i, i) = 1.0;
  return out;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  Matrix out(diag.size(), diag.size());
  for (size_t i = 0; i < diag.size(); ++i) out.At(i, i) = diag[i];
  return out;
}

Vector Matrix::Row(size_t i) const {
  COHERE_CHECK_LT(i, rows_);
  Vector out(cols_);
  const double* src = RowPtr(i);
  std::copy(src, src + cols_, out.data());
  return out;
}

Vector Matrix::Col(size_t j) const {
  COHERE_CHECK_LT(j, cols_);
  Vector out(rows_);
  for (size_t i = 0; i < rows_; ++i) out[i] = At(i, j);
  return out;
}

void Matrix::SetRow(size_t i, const Vector& row) {
  COHERE_CHECK_LT(i, rows_);
  COHERE_CHECK_EQ(row.size(), cols_);
  std::copy(row.data(), row.data() + cols_, RowPtr(i));
}

void Matrix::SetCol(size_t j, const Vector& col) {
  COHERE_CHECK_LT(j, cols_);
  COHERE_CHECK_EQ(col.size(), rows_);
  for (size_t i = 0; i < rows_; ++i) At(i, j) = col[i];
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* src = RowPtr(i);
    for (size_t j = 0; j < cols_; ++j) out.At(j, i) = src[j];
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  COHERE_CHECK_EQ(rows_, other.rows_);
  COHERE_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  COHERE_CHECK_EQ(rows_, other.rows_);
  COHERE_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

double Matrix::Trace() const {
  COHERE_CHECK_EQ(rows_, cols_);
  double sum = 0.0;
  for (size_t i = 0; i < rows_; ++i) sum += At(i, i);
  return sum;
}

Matrix Matrix::SelectRows(const std::vector<size_t>& row_indices) const {
  Matrix out(row_indices.size(), cols_);
  for (size_t r = 0; r < row_indices.size(); ++r) {
    COHERE_CHECK_LT(row_indices[r], rows_);
    const double* src = RowPtr(row_indices[r]);
    std::copy(src, src + cols_, out.RowPtr(r));
  }
  return out;
}

Matrix Matrix::SelectCols(const std::vector<size_t>& col_indices) const {
  Matrix out(rows_, col_indices.size());
  for (size_t i = 0; i < rows_; ++i) {
    const double* src = RowPtr(i);
    double* dst = out.RowPtr(i);
    for (size_t c = 0; c < col_indices.size(); ++c) {
      COHERE_CHECK_LT(col_indices[c], cols_);
      dst[c] = src[col_indices[c]];
    }
  }
  return out;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = i + 1; j < cols_; ++j) {
      if (std::fabs(At(i, j) - At(j, i)) > tol) return false;
    }
  }
  return true;
}

std::string Matrix::ToString(size_t max_rows, size_t max_cols) const {
  std::string out;
  char buf[64];
  size_t show_rows = std::min(max_rows, rows_);
  size_t show_cols = std::min(max_cols, cols_);
  for (size_t i = 0; i < show_rows; ++i) {
    out += "[";
    for (size_t j = 0; j < show_cols; ++j) {
      std::snprintf(buf, sizeof(buf), "%10.4g", At(i, j));
      if (j > 0) out += " ";
      out += buf;
    }
    if (show_cols < cols_) out += " ...";
    out += "]\n";
  }
  if (show_rows < rows_) out += "...\n";
  return out;
}

namespace {

// Block edge for the cache-blocked GEMM kernels. 64 doubles = one 512-byte
// panel row; small enough that three blocks fit in L1 at typical sizes here.
// Also the parallel grain: each pool lane owns whole row blocks of C, so
// writes are disjoint and the per-element accumulation order matches the
// serial kernel exactly (parallel results are bitwise identical).
constexpr size_t kGemmBlock = 64;

}  // namespace

Matrix Multiply(const Matrix& a, const Matrix& b) {
  COHERE_CHECK_EQ(a.cols(), b.rows());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  Matrix c(m, n);
  ParallelFor(0, m, kGemmBlock, [&](size_t row_begin, size_t row_end) {
    for (size_t ii = row_begin; ii < row_end; ii += kGemmBlock) {
      const size_t i_end = std::min(ii + kGemmBlock, row_end);
      for (size_t kk = 0; kk < k; kk += kGemmBlock) {
        const size_t k_end = std::min(kk + kGemmBlock, k);
        for (size_t i = ii; i < i_end; ++i) {
          const double* a_row = a.RowPtr(i);
          double* c_row = c.RowPtr(i);
          for (size_t p = kk; p < k_end; ++p) {
            const double a_ip = a_row[p];
            if (a_ip == 0.0) continue;
            const double* b_row = b.RowPtr(p);
            for (size_t j = 0; j < n; ++j) c_row[j] += a_ip * b_row[j];
          }
        }
      }
    }
  });
  return c;
}

Matrix MultiplyTransposeA(const Matrix& a, const Matrix& b) {
  COHERE_CHECK_EQ(a.rows(), b.rows());
  const size_t m = a.cols();
  const size_t k = a.rows();
  const size_t n = b.cols();
  Matrix c(m, n);
  // Accumulate rank-1 updates row by row of a and b; sequential access on
  // both inputs. Parallel lanes own disjoint stripes of C's rows; each lane
  // still walks p in ascending order, so every C(i, j) accumulates its terms
  // in the same order as the serial kernel.
  ParallelFor(0, m, /*grain=*/16, [&](size_t i_begin, size_t i_end) {
    for (size_t p = 0; p < k; ++p) {
      const double* a_row = a.RowPtr(p);
      const double* b_row = b.RowPtr(p);
      for (size_t i = i_begin; i < i_end; ++i) {
        const double a_pi = a_row[i];
        if (a_pi == 0.0) continue;
        double* c_row = c.RowPtr(i);
        for (size_t j = 0; j < n; ++j) c_row[j] += a_pi * b_row[j];
      }
    }
  });
  return c;
}

Matrix MultiplyTransposeB(const Matrix& a, const Matrix& b) {
  COHERE_CHECK_EQ(a.cols(), b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.rows();
  Matrix c(m, n);
  ParallelFor(0, m, /*grain=*/16, [&](size_t i_begin, size_t i_end) {
    for (size_t i = i_begin; i < i_end; ++i) {
      const double* a_row = a.RowPtr(i);
      double* c_row = c.RowPtr(i);
      for (size_t j = 0; j < n; ++j) {
        const double* b_row = b.RowPtr(j);
        double sum = 0.0;
        for (size_t p = 0; p < k; ++p) sum += a_row[p] * b_row[p];
        c_row[j] = sum;
      }
    }
  });
  return c;
}

Vector MatVec(const Matrix& a, const Vector& x) {
  COHERE_CHECK_EQ(a.cols(), x.size());
  Vector y(a.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.RowPtr(i);
    double sum = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) sum += row[j] * x[j];
    y[i] = sum;
  }
  return y;
}

Vector MatTransposeVec(const Matrix& a, const Vector& x) {
  COHERE_CHECK_EQ(a.rows(), x.size());
  Vector y(a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.RowPtr(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (size_t j = 0; j < a.cols(); ++j) y[j] += row[j] * xi;
  }
  return y;
}

Matrix OuterProduct(const Vector& a, const Vector& b) {
  Matrix out(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    double* row = out.RowPtr(i);
    const double ai = a[i];
    for (size_t j = 0; j < b.size(); ++j) row[j] = ai * b[j];
  }
  return out;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out += b;
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out -= b;
  return out;
}

Matrix operator*(const Matrix& m, double scalar) {
  Matrix out = m;
  out *= scalar;
  return out;
}

Matrix operator*(double scalar, const Matrix& m) { return m * scalar; }

bool operator==(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      if (a.At(i, j) != b.At(i, j)) return false;
    }
  }
  return true;
}

bool AllFinite(const Matrix& m) {
  const double* data = m.data();
  const size_t total = m.rows() * m.cols();
  for (size_t i = 0; i < total; ++i) {
    if (!std::isfinite(data[i])) return false;
  }
  return true;
}

bool AllFinite(const Vector& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

bool AlmostEqual(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      if (std::fabs(a.At(i, j) - b.At(i, j)) > tol) return false;
    }
  }
  return true;
}

}  // namespace cohere
