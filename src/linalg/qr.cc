#include "linalg/qr.h"

#include <cmath>
#include <vector>

namespace cohere {
namespace {

// Householder vectors are stored below the diagonal of `w` and in `betas`;
// `r_diag` carries the diagonal of R.
struct HouseholderFactors {
  Matrix w;
  std::vector<double> betas;
  std::vector<double> r_diag;
};

Result<HouseholderFactors> Factorize(const Matrix& a) {
  if (a.rows() < a.cols()) {
    return Status::InvalidArgument("QR requires rows() >= cols()");
  }
  const size_t m = a.rows();
  const size_t n = a.cols();
  HouseholderFactors f{a, std::vector<double>(n, 0.0),
                       std::vector<double>(n, 0.0)};
  Matrix& w = f.w;

  for (size_t k = 0; k < n; ++k) {
    // Build the Householder vector for column k.
    double norm = 0.0;
    for (size_t i = k; i < m; ++i) norm += w.At(i, k) * w.At(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      f.betas[k] = 0.0;
      f.r_diag[k] = 0.0;
      continue;
    }
    double alpha = w.At(k, k) >= 0.0 ? -norm : norm;
    f.r_diag[k] = alpha;
    const double vk = w.At(k, k) - alpha;
    w.At(k, k) = vk;
    // beta = 2 / (v^T v) with v the stored column tail.
    double vtv = 0.0;
    for (size_t i = k; i < m; ++i) vtv += w.At(i, k) * w.At(i, k);
    f.betas[k] = vtv == 0.0 ? 0.0 : 2.0 / vtv;

    // Apply the reflector to the remaining columns.
    for (size_t j = k + 1; j < n; ++j) {
      double dot = 0.0;
      for (size_t i = k; i < m; ++i) dot += w.At(i, k) * w.At(i, j);
      const double scale = f.betas[k] * dot;
      for (size_t i = k; i < m; ++i) w.At(i, j) -= scale * w.At(i, k);
    }
  }
  return f;
}

}  // namespace

Result<QrDecomposition> HouseholderQr(const Matrix& a) {
  Result<HouseholderFactors> fr = Factorize(a);
  if (!fr.ok()) return fr.status();
  const HouseholderFactors& f = *fr;
  const size_t m = a.rows();
  const size_t n = a.cols();

  QrDecomposition out;
  out.r = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    out.r.At(i, i) = f.r_diag[i];
    for (size_t j = i + 1; j < n; ++j) out.r.At(i, j) = f.w.At(i, j);
  }

  // Form thin Q by applying the reflectors to the first n identity columns,
  // in reverse order.
  out.q = Matrix(m, n);
  for (size_t j = 0; j < n; ++j) out.q.At(j, j) = 1.0;
  for (size_t k = n; k-- > 0;) {
    if (f.betas[k] == 0.0) continue;
    for (size_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (size_t i = k; i < m; ++i) dot += f.w.At(i, k) * out.q.At(i, j);
      const double scale = f.betas[k] * dot;
      for (size_t i = k; i < m; ++i) out.q.At(i, j) -= scale * f.w.At(i, k);
    }
  }
  return out;
}

Result<Vector> LeastSquares(const Matrix& a, const Vector& b) {
  if (b.size() != a.rows()) {
    return Status::InvalidArgument("rhs size does not match matrix rows");
  }
  Result<HouseholderFactors> fr = Factorize(a);
  if (!fr.ok()) return fr.status();
  const HouseholderFactors& f = *fr;
  const size_t m = a.rows();
  const size_t n = a.cols();

  // Apply Q^T to b.
  Vector y = b;
  for (size_t k = 0; k < n; ++k) {
    if (f.betas[k] == 0.0) continue;
    double dot = 0.0;
    for (size_t i = k; i < m; ++i) dot += f.w.At(i, k) * y[i];
    const double scale = f.betas[k] * dot;
    for (size_t i = k; i < m; ++i) y[i] -= scale * f.w.At(i, k);
  }

  // Back substitution with R.
  Vector x(n);
  for (size_t i = n; i-- > 0;) {
    const double rii = f.r_diag[i];
    if (std::fabs(rii) < 1e-14) {
      return Status::NumericalError("matrix is numerically rank deficient");
    }
    double sum = y[i];
    for (size_t j = i + 1; j < n; ++j) sum -= f.w.At(i, j) * x[j];
    x[i] = sum / rii;
  }
  return x;
}

}  // namespace cohere
