#ifndef COHERE_LINALG_SVD_H_
#define COHERE_LINALG_SVD_H_

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace cohere {

/// Thin singular value decomposition A = U diag(s) V^T.
///
/// For an m x n input with r = min(m, n): `u` is m x r with orthonormal
/// columns, `singular_values` holds the r singular values in descending
/// order, and `v` is n x r with orthonormal columns.
struct SvdDecomposition {
  Matrix u;
  Vector singular_values;
  Matrix v;
};

/// Computes the thin SVD with the one-sided Jacobi (Hestenes) method.
///
/// The method orthogonalizes column pairs with plane rotations and computes
/// singular values to high relative accuracy — useful for PCA when the
/// covariance matrix would square the condition number. Returns
/// NumericalError if sweeps fail to converge.
Result<SvdDecomposition> JacobiSvd(const Matrix& a, int max_sweeps = 60);

}  // namespace cohere

#endif  // COHERE_LINALG_SVD_H_
