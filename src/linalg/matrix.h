#ifndef COHERE_LINALG_MATRIX_H_
#define COHERE_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"
#include "linalg/vector.h"

namespace cohere {

/// Dense double-precision matrix in row-major order.
///
/// The storage layout is row-major because the dominant access pattern in
/// this library is per-record (per-row) iteration over data sets. Kernels
/// that would suffer from the layout (GEMM) are blocked accordingly.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  /// Creates a zero matrix of shape `rows` x `cols`.
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols),
                                     data_(rows * cols, 0.0) {}
  /// Creates a constant matrix of shape `rows` x `cols`.
  Matrix(size_t rows, size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  /// Creates a matrix from nested initializer lists; all rows must have the
  /// same length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  /// Identity matrix of order `n`.
  static Matrix Identity(size_t n);
  /// Diagonal matrix with the components of `diag` on the diagonal.
  static Matrix Diagonal(const Vector& diag);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t i, size_t j) {
    COHERE_CHECK_LT(i, rows_);
    COHERE_CHECK_LT(j, cols_);
    return data_[i * cols_ + j];
  }
  double operator()(size_t i, size_t j) const {
    COHERE_CHECK_LT(i, rows_);
    COHERE_CHECK_LT(j, cols_);
    return data_[i * cols_ + j];
  }

  /// Unchecked access for inner loops of numerical kernels.
  double& At(size_t i, size_t j) { return data_[i * cols_ + j]; }
  double At(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  /// Pointer to the start of row `i`.
  double* RowPtr(size_t i) { return data_.data() + i * cols_; }
  const double* RowPtr(size_t i) const { return data_.data() + i * cols_; }

  /// Copies row `i` into a Vector.
  Vector Row(size_t i) const;
  /// Copies column `j` into a Vector.
  Vector Col(size_t j) const;
  /// Overwrites row `i` (sizes must agree).
  void SetRow(size_t i, const Vector& row);
  /// Overwrites column `j` (sizes must agree).
  void SetCol(size_t j, const Vector& col);

  /// Sets every entry to `value`.
  void Fill(double value);

  /// Returns the transpose as a new matrix.
  Matrix Transposed() const;

  /// In-place arithmetic; shapes must agree.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Frobenius norm: sqrt(sum of squared entries).
  double FrobeniusNorm() const;
  /// Maximum absolute entry.
  double MaxAbs() const;
  /// Sum of the diagonal entries (square matrices only).
  double Trace() const;

  /// Returns the sub-matrix of the given rows (copied in order).
  Matrix SelectRows(const std::vector<size_t>& row_indices) const;
  /// Returns the sub-matrix of the given columns (copied in order).
  Matrix SelectCols(const std::vector<size_t>& col_indices) const;

  /// True when the matrix equals its transpose up to `tol`.
  bool IsSymmetric(double tol = 1e-12) const;

  /// Human-readable rendering capped at `max_rows` x `max_cols`.
  std::string ToString(size_t max_rows = 8, size_t max_cols = 8) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// C = A * B (blocked; shapes must agree).
Matrix Multiply(const Matrix& a, const Matrix& b);
/// C = A^T * B without forming A^T.
Matrix MultiplyTransposeA(const Matrix& a, const Matrix& b);
/// C = A * B^T without forming B^T.
Matrix MultiplyTransposeB(const Matrix& a, const Matrix& b);

/// y = A * x.
Vector MatVec(const Matrix& a, const Vector& x);
/// y = A^T * x without forming A^T.
Vector MatTransposeVec(const Matrix& a, const Vector& x);

/// Rank-one product a * b^T.
Matrix OuterProduct(const Vector& a, const Vector& b);

Matrix operator+(const Matrix& a, const Matrix& b);
Matrix operator-(const Matrix& a, const Matrix& b);
Matrix operator*(const Matrix& m, double scalar);
Matrix operator*(double scalar, const Matrix& m);

bool operator==(const Matrix& a, const Matrix& b);

/// True when shapes agree and |a(i,j) - b(i,j)| <= tol everywhere.
bool AlmostEqual(const Matrix& a, const Matrix& b, double tol);

/// True when every entry is finite (no NaN/Inf). Numerical pipelines check
/// this up front: a single NaN silently poisons a covariance matrix.
bool AllFinite(const Matrix& m);
bool AllFinite(const Vector& v);

}  // namespace cohere

#endif  // COHERE_LINALG_MATRIX_H_
