#ifndef COHERE_LINALG_CHOLESKY_H_
#define COHERE_LINALG_CHOLESKY_H_

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace cohere {

/// Computes the lower-triangular Cholesky factor L with A = L L^T.
///
/// Returns NumericalError if `a` is not (numerically) positive definite and
/// InvalidArgument if it is not square. The strict upper triangle of the
/// result is zero.
Result<Matrix> CholeskyFactor(const Matrix& a);

/// Solves A x = b given the lower Cholesky factor `l` of A by forward and
/// back substitution.
Vector CholeskySolve(const Matrix& l, const Vector& b);

/// Solves A x = b for symmetric positive definite A (factor + solve).
Result<Vector> SolveSpd(const Matrix& a, const Vector& b);

}  // namespace cohere

#endif  // COHERE_LINALG_CHOLESKY_H_
