#include "linalg/vector.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cohere {

void Vector::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Vector& Vector::operator+=(const Vector& other) {
  COHERE_CHECK_EQ(size(), other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  COHERE_CHECK_EQ(size(), other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Vector& Vector::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

Vector& Vector::operator/=(double scalar) {
  for (double& v : data_) v /= scalar;
  return *this;
}

void Vector::Axpy(double alpha, const Vector& other) {
  COHERE_CHECK_EQ(size(), other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

double Vector::Norm2() const { return std::sqrt(SquaredNorm2()); }

double Vector::SquaredNorm2() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return sum;
}

double Vector::Norm1() const {
  double sum = 0.0;
  for (double v : data_) sum += std::fabs(v);
  return sum;
}

double Vector::NormInf() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

double Vector::Sum() const {
  double sum = 0.0;
  for (double v : data_) sum += v;
  return sum;
}

void Vector::Normalize() {
  double norm = Norm2();
  if (norm > 0.0) *this /= norm;
}

std::string Vector::ToString(size_t max_elems) const {
  std::string out = "[";
  size_t shown = std::min(max_elems, data_.size());
  char buf[64];
  for (size_t i = 0; i < shown; ++i) {
    std::snprintf(buf, sizeof(buf), "%g", data_[i]);
    if (i > 0) out += ", ";
    out += buf;
  }
  if (shown < data_.size()) out += ", ...";
  out += "]";
  return out;
}

double Dot(const Vector& a, const Vector& b) {
  COHERE_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

Vector operator+(const Vector& a, const Vector& b) {
  Vector out = a;
  out += b;
  return out;
}

Vector operator-(const Vector& a, const Vector& b) {
  Vector out = a;
  out -= b;
  return out;
}

Vector operator*(const Vector& v, double scalar) {
  Vector out = v;
  out *= scalar;
  return out;
}

Vector operator*(double scalar, const Vector& v) { return v * scalar; }

Vector operator/(const Vector& v, double scalar) {
  Vector out = v;
  out /= scalar;
  return out;
}

bool operator==(const Vector& a, const Vector& b) {
  return a.values() == b.values();
}

bool AlmostEqual(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace cohere
