#ifndef COHERE_LINALG_JACOBI_EIGEN_H_
#define COHERE_LINALG_JACOBI_EIGEN_H_

#include "common/status.h"
#include "linalg/symmetric_eigen.h"

namespace cohere {

/// Computes the eigendecomposition of symmetric `a` with the cyclic Jacobi
/// rotation method.
///
/// Slower than SymmetricEigen (O(d^3) per sweep, several sweeps) but
/// delivers small-componentwise-error eigenvectors and serves as the
/// cross-check reference implementation in the test suite and the
/// eigensolver ablation bench. Eigenpairs are returned sorted by descending
/// eigenvalue, matching SymmetricEigen.
Result<EigenDecomposition> JacobiEigen(const Matrix& a, int max_sweeps = 64);

}  // namespace cohere

#endif  // COHERE_LINALG_JACOBI_EIGEN_H_
