#include "linalg/blocked_matrix.h"

#include <cstring>

namespace cohere {

BlockedMatrix::BlockedMatrix(const Matrix& m)
    : rows_(m.rows()), cols_(m.cols()) {
  const size_t padded =
      num_blocks() * kRowsPerBlock;
  data_.assign(padded * cols_, 0.0);
  if (rows_ * cols_ > 0) {
    std::memcpy(data_.data(), m.data(), rows_ * cols_ * sizeof(double));
  }
}

Vector BlockedMatrix::Row(size_t i) const {
  COHERE_CHECK_LT(i, rows_);
  Vector out(cols_);
  const double* src = RowPtr(i);
  std::copy(src, src + cols_, out.data());
  return out;
}

Matrix BlockedMatrix::ToMatrix() const {
  Matrix out(rows_, cols_);
  if (rows_ * cols_ > 0) {
    std::memcpy(out.data(), data_.data(), rows_ * cols_ * sizeof(double));
  }
  return out;
}

}  // namespace cohere
