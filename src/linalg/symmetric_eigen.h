#ifndef COHERE_LINALG_SYMMETRIC_EIGEN_H_
#define COHERE_LINALG_SYMMETRIC_EIGEN_H_

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace cohere {

/// Eigendecomposition of a real symmetric matrix A = V diag(w) V^T.
///
/// `eigenvalues[i]` corresponds to column `i` of `eigenvectors`; pairs are
/// sorted by descending eigenvalue, which is the order PCA consumes them in.
/// The eigenvector matrix is orthonormal.
struct EigenDecomposition {
  Vector eigenvalues;
  Matrix eigenvectors;
};

/// Computes the full eigendecomposition of symmetric `a` via Householder
/// tridiagonalization followed by the implicit-shift QL iteration.
///
/// Cost is O(d^3) with a small constant; this is the production solver used
/// by PcaModel. Returns NumericalError if the QL iteration fails to converge
/// (pathological input) and InvalidArgument if `a` is not square/symmetric.
Result<EigenDecomposition> SymmetricEigen(const Matrix& a);

/// Reduces symmetric `a` to tridiagonal form, accumulating the orthogonal
/// transformation. On return `*z` holds the accumulated transform, `*d` the
/// diagonal, and `*e` the subdiagonal in e[1..n-1] (e[0] = 0).
///
/// Exposed for testing; most callers want SymmetricEigen.
void HouseholderTridiagonalize(const Matrix& a, Matrix* z, Vector* d,
                               Vector* e);

/// Diagonalizes a symmetric tridiagonal matrix (diagonal `*d`, subdiagonal
/// `*e` as produced by HouseholderTridiagonalize) with implicit-shift QL,
/// rotating the columns of `*z` along. On success `*d` holds the unsorted
/// eigenvalues and column j of `*z` the eigenvector for d[j].
Status TridiagonalQl(Vector* d, Vector* e, Matrix* z);

}  // namespace cohere

#endif  // COHERE_LINALG_SYMMETRIC_EIGEN_H_
