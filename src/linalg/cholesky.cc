#include "linalg/cholesky.h"

#include <cmath>

namespace cohere {

Result<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a.At(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l.At(j, k) * l.At(j, k);
    if (diag <= 0.0) {
      return Status::NumericalError(
          "matrix is not positive definite (non-positive pivot)");
    }
    const double ljj = std::sqrt(diag);
    l.At(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double sum = a.At(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l.At(i, k) * l.At(j, k);
      l.At(i, j) = sum * inv;
    }
  }
  return l;
}

Vector CholeskySolve(const Matrix& l, const Vector& b) {
  const size_t n = l.rows();
  COHERE_CHECK_EQ(l.cols(), n);
  COHERE_CHECK_EQ(b.size(), n);
  // Forward substitution: L y = b.
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l.At(i, k) * y[k];
    y[i] = sum / l.At(i, i);
  }
  // Back substitution: L^T x = y.
  Vector x(n);
  for (size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (size_t k = i + 1; k < n; ++k) sum -= l.At(k, i) * x[k];
    x[i] = sum / l.At(i, i);
  }
  return x;
}

Result<Vector> SolveSpd(const Matrix& a, const Vector& b) {
  Result<Matrix> l = CholeskyFactor(a);
  if (!l.ok()) return l.status();
  return CholeskySolve(*l, b);
}

}  // namespace cohere
