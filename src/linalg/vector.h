#ifndef COHERE_LINALG_VECTOR_H_
#define COHERE_LINALG_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"

namespace cohere {

/// Dense double-precision vector.
///
/// A thin owning wrapper over contiguous storage with the arithmetic used
/// throughout the library. All binary operations check size agreement.
class Vector {
 public:
  Vector() = default;
  /// Creates a zero vector of dimension `size`.
  explicit Vector(size_t size) : data_(size, 0.0) {}
  /// Creates a constant vector of dimension `size`.
  Vector(size_t size, double fill) : data_(size, fill) {}
  Vector(std::initializer_list<double> values) : data_(values) {}
  /// Adopts an existing buffer.
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  Vector(const Vector&) = default;
  Vector& operator=(const Vector&) = default;
  Vector(Vector&&) = default;
  Vector& operator=(Vector&&) = default;

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](size_t i) {
    COHERE_CHECK_LT(i, data_.size());
    return data_[i];
  }
  double operator[](size_t i) const {
    COHERE_CHECK_LT(i, data_.size());
    return data_[i];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  const std::vector<double>& values() const { return data_; }

  std::vector<double>::iterator begin() { return data_.begin(); }
  std::vector<double>::iterator end() { return data_.end(); }
  std::vector<double>::const_iterator begin() const { return data_.begin(); }
  std::vector<double>::const_iterator end() const { return data_.end(); }

  /// Sets every component to `value`.
  void Fill(double value);

  /// Resizes, zero-filling any new components.
  void Resize(size_t size) { data_.resize(size, 0.0); }

  /// In-place arithmetic. Sizes must agree.
  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double scalar);
  Vector& operator/=(double scalar);

  /// this += alpha * other (AXPY).
  void Axpy(double alpha, const Vector& other);

  /// Euclidean norm.
  double Norm2() const;
  /// Squared Euclidean norm.
  double SquaredNorm2() const;
  /// Sum of absolute values.
  double Norm1() const;
  /// Maximum absolute value.
  double NormInf() const;
  /// Sum of components.
  double Sum() const;

  /// Scales to unit Euclidean norm; a zero vector is left unchanged.
  void Normalize();

  /// "[v0, v1, ...]" with up to `max_elems` components shown.
  std::string ToString(size_t max_elems = 16) const;

 private:
  std::vector<double> data_;
};

/// Inner product. Sizes must agree.
double Dot(const Vector& a, const Vector& b);

/// Component-wise arithmetic. Sizes must agree.
Vector operator+(const Vector& a, const Vector& b);
Vector operator-(const Vector& a, const Vector& b);
Vector operator*(const Vector& v, double scalar);
Vector operator*(double scalar, const Vector& v);
Vector operator/(const Vector& v, double scalar);

bool operator==(const Vector& a, const Vector& b);

/// True when |a[i] - b[i]| <= tol for all i and sizes agree.
bool AlmostEqual(const Vector& a, const Vector& b, double tol);

}  // namespace cohere

#endif  // COHERE_LINALG_VECTOR_H_
