#include "linalg/power_iteration.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "common/fault.h"
#include "linalg/qr.h"

namespace cohere {

Result<EigenDecomposition> TopKEigen(const Matrix& a,
                                     const TopKEigenOptions& options) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("eigendecomposition requires a square matrix");
  }
  const size_t d = a.rows();
  const size_t k = options.k;
  if (k == 0 || k > d) {
    return Status::InvalidArgument("k must be in [1, dims]");
  }
  if (!a.IsSymmetric(1e-8 * std::max(1.0, a.MaxAbs()))) {
    return Status::InvalidArgument("matrix is not symmetric");
  }
  if (COHERE_INJECT_FAULT(fault::kPointPowerIteration)) {
    return Status::NumericalError(
        "injected fault: " + std::string(fault::kPointPowerIteration));
  }

  // Random orthonormal start.
  std::mt19937_64 engine(options.seed);
  std::normal_distribution<double> gaussian(0.0, 1.0);
  Matrix q(d, k);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < k; ++j) q.At(i, j) = gaussian(engine);
  }
  {
    Result<QrDecomposition> qr = HouseholderQr(q);
    if (!qr.ok()) return qr.status();
    q = std::move(qr->q);
  }

  // Subspace iteration with Rayleigh-Ritz projection: each sweep multiplies
  // the basis by A, re-orthonormalizes, and extracts Ritz values from the
  // k x k projected matrix T = Q^T A Q. Ritz values converge even when
  // individual eigenvectors rotate inside near-degenerate clusters, making
  // the eigenvalue-based stopping rule robust.
  Vector ritz(k);
  Vector previous(k, std::numeric_limits<double>::infinity());
  Matrix rotation;
  bool converged = false;

  for (int iter = 0; iter < options.max_iterations && !converged; ++iter) {
    Matrix aq = Multiply(a, q);
    Matrix t = MultiplyTransposeA(q, aq);
    Result<EigenDecomposition> small = SymmetricEigen(t);
    if (!small.ok()) return small.status();
    ritz = small->eigenvalues;
    rotation = std::move(small->eigenvectors);

    const double scale = std::max(1.0, std::fabs(ritz[0]));
    converged = true;
    for (size_t j = 0; j < k; ++j) {
      if (std::fabs(ritz[j] - previous[j]) > options.tolerance * scale) {
        converged = false;
      }
    }
    previous = ritz;
    if (converged) break;

    Result<QrDecomposition> qr = HouseholderQr(aq);
    if (!qr.ok()) return qr.status();
    q = std::move(qr->q);
  }

  if (!converged) {
    return Status::NumericalError(
        "subspace iteration did not converge (near-degenerate spectrum?)");
  }

  // Ritz vectors: rotate the settled basis by the small-problem
  // eigenvectors; SymmetricEigen already sorts descending.
  EigenDecomposition out;
  out.eigenvalues = ritz;
  out.eigenvectors = Multiply(q, rotation);
  return out;
}

}  // namespace cohere
