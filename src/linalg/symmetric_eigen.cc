#include "linalg/symmetric_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/fault.h"

namespace cohere {

// The tridiagonalization and QL iteration below follow the classic
// EISPACK tred2/tql2 algorithms (Wilkinson & Reinsch, Handbook for Automatic
// Computation; widely redistributed in public-domain translations such as
// JAMA). They are numerically robust for the dense symmetric systems PCA
// produces and accumulate the orthogonal transform as they go.

void HouseholderTridiagonalize(const Matrix& a, Matrix* z, Vector* d,
                               Vector* e) {
  COHERE_CHECK_EQ(a.rows(), a.cols());
  const size_t n = a.rows();
  *z = a;
  d->Resize(n);
  e->Resize(n);
  Matrix& v = *z;
  Vector& dd = *d;
  Vector& ee = *e;

  for (size_t j = 0; j < n; ++j) dd[j] = v.At(n - 1, j);

  // Householder reduction to tridiagonal form, working upwards.
  for (size_t i = n - 1; i > 0; --i) {
    double scale = 0.0;
    double h = 0.0;
    for (size_t k = 0; k < i; ++k) scale += std::fabs(dd[k]);
    if (scale == 0.0) {
      ee[i] = dd[i - 1];
      for (size_t j = 0; j < i; ++j) {
        dd[j] = v.At(i - 1, j);
        v.At(i, j) = 0.0;
        v.At(j, i) = 0.0;
      }
    } else {
      for (size_t k = 0; k < i; ++k) {
        dd[k] /= scale;
        h += dd[k] * dd[k];
      }
      double f = dd[i - 1];
      double g = std::sqrt(h);
      if (f > 0.0) g = -g;
      ee[i] = scale * g;
      h -= f * g;
      dd[i - 1] = f - g;
      for (size_t j = 0; j < i; ++j) ee[j] = 0.0;

      // Apply similarity transformation to the remaining submatrix.
      for (size_t j = 0; j < i; ++j) {
        f = dd[j];
        v.At(j, i) = f;
        g = ee[j] + v.At(j, j) * f;
        for (size_t k = j + 1; k < i; ++k) {
          g += v.At(k, j) * dd[k];
          ee[k] += v.At(k, j) * f;
        }
        ee[j] = g;
      }
      f = 0.0;
      for (size_t j = 0; j < i; ++j) {
        ee[j] /= h;
        f += ee[j] * dd[j];
      }
      const double hh = f / (h + h);
      for (size_t j = 0; j < i; ++j) ee[j] -= hh * dd[j];
      for (size_t j = 0; j < i; ++j) {
        f = dd[j];
        g = ee[j];
        for (size_t k = j; k < i; ++k) {
          v.At(k, j) -= f * ee[k] + g * dd[k];
        }
        dd[j] = v.At(i - 1, j);
        v.At(i, j) = 0.0;
      }
    }
    dd[i] = h;
  }

  // Accumulate the transformations.
  for (size_t i = 0; i + 1 < n; ++i) {
    v.At(n - 1, i) = v.At(i, i);
    v.At(i, i) = 1.0;
    const double h = dd[i + 1];
    if (h != 0.0) {
      for (size_t k = 0; k <= i; ++k) dd[k] = v.At(k, i + 1) / h;
      for (size_t j = 0; j <= i; ++j) {
        double g = 0.0;
        for (size_t k = 0; k <= i; ++k) g += v.At(k, i + 1) * v.At(k, j);
        for (size_t k = 0; k <= i; ++k) v.At(k, j) -= g * dd[k];
      }
    }
    for (size_t k = 0; k <= i; ++k) v.At(k, i + 1) = 0.0;
  }
  for (size_t j = 0; j < n; ++j) {
    dd[j] = v.At(n - 1, j);
    v.At(n - 1, j) = 0.0;
  }
  v.At(n - 1, n - 1) = 1.0;
  ee[0] = 0.0;
}

Status TridiagonalQl(Vector* d, Vector* e, Matrix* z) {
  const size_t n = d->size();
  COHERE_CHECK_EQ(e->size(), n);
  COHERE_CHECK_EQ(z->rows(), n);
  COHERE_CHECK_EQ(z->cols(), n);
  if (n == 0) return Status::Ok();
  Vector& dd = *d;
  Vector& ee = *e;
  Matrix& v = *z;

  for (size_t i = 1; i < n; ++i) ee[i - 1] = ee[i];
  ee[n - 1] = 0.0;

  constexpr int kMaxIterations = 64;
  const double eps = std::ldexp(1.0, -52);
  double f = 0.0;
  double tst1 = 0.0;

  for (size_t l = 0; l < n; ++l) {
    tst1 = std::max(tst1, std::fabs(dd[l]) + std::fabs(ee[l]));
    size_t m = l;
    while (m < n && std::fabs(ee[m]) > eps * tst1) ++m;
    if (m > l) {
      int iter = 0;
      do {
        if (++iter > kMaxIterations) {
          return Status::NumericalError(
              "tridiagonal QL failed to converge within iteration limit");
        }
        // Form the implicit shift.
        double g = dd[l];
        double p = (dd[l + 1] - g) / (2.0 * ee[l]);
        double r = std::hypot(p, 1.0);
        if (p < 0.0) r = -r;
        dd[l] = ee[l] / (p + r);
        dd[l + 1] = ee[l] * (p + r);
        const double dl1 = dd[l + 1];
        double h = g - dd[l];
        for (size_t i = l + 2; i < n; ++i) dd[i] -= h;
        f += h;

        // QL transformation.
        p = dd[m];
        double c = 1.0;
        double c2 = c;
        double c3 = c;
        const double el1 = ee[l + 1];
        double s = 0.0;
        double s2 = 0.0;
        for (size_t i = m; i-- > l;) {
          c3 = c2;
          c2 = c;
          s2 = s;
          g = c * ee[i];
          h = c * p;
          r = std::hypot(p, ee[i]);
          ee[i + 1] = s * r;
          s = ee[i] / r;
          c = p / r;
          p = c * dd[i] - s * g;
          dd[i + 1] = h + s * (c * g + s * dd[i]);
          // Rotate eigenvectors.
          for (size_t k = 0; k < n; ++k) {
            h = v.At(k, i + 1);
            v.At(k, i + 1) = s * v.At(k, i) + c * h;
            v.At(k, i) = c * v.At(k, i) - s * h;
          }
        }
        p = -s * s2 * c3 * el1 * ee[l] / dl1;
        ee[l] = s * p;
        dd[l] = c * p;
      } while (std::fabs(ee[l]) > eps * tst1);
    }
    dd[l] += f;
    ee[l] = 0.0;
  }
  return Status::Ok();
}

Result<EigenDecomposition> SymmetricEigen(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("eigendecomposition requires a square matrix");
  }
  if (!a.IsSymmetric(1e-8 * std::max(1.0, a.MaxAbs()))) {
    return Status::InvalidArgument("matrix is not symmetric");
  }
  if (COHERE_INJECT_FAULT(fault::kPointSymmetricEigen)) {
    return Status::NumericalError(
        "injected fault: " + std::string(fault::kPointSymmetricEigen));
  }
  const size_t n = a.rows();
  if (n == 0) {
    return EigenDecomposition{Vector(), Matrix()};
  }

  Matrix z;
  Vector d;
  Vector e;
  HouseholderTridiagonalize(a, &z, &d, &e);
  Status ql = TridiagonalQl(&d, &e, &z);
  if (!ql.ok()) return ql;

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&d](size_t x, size_t y) { return d[x] > d[y]; });

  EigenDecomposition out;
  out.eigenvalues.Resize(n);
  out.eigenvectors = Matrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = d[order[j]];
    for (size_t i = 0; i < n; ++i) {
      out.eigenvectors.At(i, j) = z.At(i, order[j]);
    }
  }
  return out;
}

}  // namespace cohere
