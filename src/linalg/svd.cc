#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/fault.h"

namespace cohere {
namespace {

// One-sided Jacobi on a tall (m >= n) matrix: rotates column pairs of `w`
// until all pairs are numerically orthogonal, accumulating the right-hand
// rotations into `v`.
Status OrthogonalizeColumns(Matrix* w, Matrix* v, int max_sweeps) {
  const size_t m = w->rows();
  const size_t n = w->cols();
  const double eps = 1e-15;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0;
        double beta = 0.0;
        double gamma = 0.0;
        for (size_t i = 0; i < m; ++i) {
          const double wip = w->At(i, p);
          const double wiq = w->At(i, q);
          alpha += wip * wip;
          beta += wiq * wiq;
          gamma += wip * wiq;
        }
        if (std::fabs(gamma) <= eps * std::sqrt(alpha * beta) ||
            alpha == 0.0 || beta == 0.0) {
          continue;
        }
        rotated = true;
        // Compute the rotation zeroing the inner product of columns p, q.
        const double zeta = (beta - alpha) / (2.0 * gamma);
        double t;
        if (zeta >= 0.0) {
          t = 1.0 / (zeta + std::sqrt(1.0 + zeta * zeta));
        } else {
          t = -1.0 / (-zeta + std::sqrt(1.0 + zeta * zeta));
        }
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (size_t i = 0; i < m; ++i) {
          const double wip = w->At(i, p);
          const double wiq = w->At(i, q);
          w->At(i, p) = c * wip - s * wiq;
          w->At(i, q) = s * wip + c * wiq;
        }
        for (size_t i = 0; i < n; ++i) {
          const double vip = v->At(i, p);
          const double viq = v->At(i, q);
          v->At(i, p) = c * vip - s * viq;
          v->At(i, q) = s * vip + c * viq;
        }
      }
    }
    if (!rotated) return Status::Ok();
  }
  return Status::NumericalError("one-sided Jacobi SVD did not converge");
}

}  // namespace

Result<SvdDecomposition> JacobiSvd(const Matrix& a, int max_sweeps) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("SVD of an empty matrix");
  }
  if (COHERE_INJECT_FAULT(fault::kPointSvd)) {
    return Status::NumericalError("injected fault: " +
                                  std::string(fault::kPointSvd));
  }

  // Work on a tall matrix; if the input is wide, decompose the transpose and
  // swap the roles of U and V at the end.
  const bool transposed = a.rows() < a.cols();
  Matrix w = transposed ? a.Transposed() : a;
  const size_t m = w.rows();
  const size_t n = w.cols();

  Matrix v = Matrix::Identity(n);
  Status s = OrthogonalizeColumns(&w, &v, max_sweeps);
  if (!s.ok()) return s;

  // Singular values are the column norms; U is the normalized columns.
  Vector sigma(n);
  for (size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (size_t i = 0; i < m; ++i) norm += w.At(i, j) * w.At(i, j);
    sigma[j] = std::sqrt(norm);
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&sigma](size_t x, size_t y) { return sigma[x] > sigma[y]; });

  Matrix u_sorted(m, n);
  Matrix v_sorted(n, n);
  Vector sigma_sorted(n);
  for (size_t j = 0; j < n; ++j) {
    const size_t src = order[j];
    sigma_sorted[j] = sigma[src];
    if (sigma[src] > 0.0) {
      const double inv = 1.0 / sigma[src];
      for (size_t i = 0; i < m; ++i) u_sorted.At(i, j) = w.At(i, src) * inv;
    } else {
      // Zero singular value: leave a zero column in U; the thin factor is
      // still consistent since sigma is zero.
      for (size_t i = 0; i < m; ++i) u_sorted.At(i, j) = 0.0;
    }
    for (size_t i = 0; i < n; ++i) v_sorted.At(i, j) = v.At(i, src);
  }

  SvdDecomposition out;
  out.singular_values = std::move(sigma_sorted);
  if (transposed) {
    out.u = std::move(v_sorted);
    out.v = std::move(u_sorted);
  } else {
    out.u = std::move(u_sorted);
    out.v = std::move(v_sorted);
  }
  return out;
}

}  // namespace cohere
