#ifndef COHERE_REDUCTION_COHERENCE_H_
#define COHERE_REDUCTION_COHERENCE_H_

#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "reduction/pca.h"

namespace cohere {

/// The paper's coherence model (Section 2), which tests for every
/// eigenvector whether the per-attribute contributions to a point's
/// coordinate "agree" (a concept) or cancel like noise.
///
/// For a normalized point X and eigenvector e, the contributions are
/// c_j = X_j * e_j. Under the null hypothesis that the c_j are iid draws
/// from a zero-mean distribution, their average X.e/d is approximately
/// N(0, sigma/sqrt(d)) with sigma = RMS(c). The coherence factor is the
/// number of such standard deviations the observed average sits away from
/// zero, which simplifies to
///
///     factor(X, e) = |sum_j c_j| / sqrt(sum_j c_j^2),
///
/// and the coherence probability is 2*Phi(factor) - 1.

/// Coherence factor of a single (already normalized/centered) point along
/// one direction. `direction` must be the same size as `point`. Returns 0
/// when the point has no component along the direction.
double CoherenceFactor(const Vector& point, const Vector& direction);

/// Coherence probability 2*Phi(CoherenceFactor) - 1 of one point.
double CoherenceProbability(const Vector& point, const Vector& direction);

/// Dataset-level coherence analysis of a fitted PCA axis system.
struct CoherenceAnalysis {
  /// P(D, e_i): mean coherence probability of eigenvector i over all
  /// records, in eigenvalue order (index i matches eigenvalue i).
  Vector probability;
  /// Mean coherence factor of eigenvector i (diagnostic).
  Vector mean_factor;

  size_t dims() const { return probability.size(); }
};

/// Computes P(D, e_i) for every eigenvector of `model` over the rows of
/// `data` (given in the original attribute space; the model's normalization
/// is applied internally). Cost: two n x d by d x d matrix products.
CoherenceAnalysis ComputeCoherence(const PcaModel& model, const Matrix& data);

/// Per-point coherence probabilities: entry (r, i) is the coherence
/// probability of record r along eigenvector i. Heavier output than
/// ComputeCoherence; used by the Figure-1 style diagnostics.
Matrix PerPointCoherenceProbabilities(const PcaModel& model,
                                      const Matrix& data);

}  // namespace cohere

#endif  // COHERE_REDUCTION_COHERENCE_H_
