#include "reduction/pipeline.h"

#include <cstdio>
#include <string>

#include "common/fault.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/tracing.h"

namespace cohere {

namespace {

// The degradation ladder of ReductionPipeline::Fit. Each rung only engages
// on a *numerical* failure of the previous one (argument errors propagate
// unchanged: retrying cannot fix an empty or non-finite matrix).
Result<PcaModel> FitModelWithFallback(const Matrix& data,
                                      const ReductionOptions& options) {
  Result<PcaModel> primary = [&]() -> Result<PcaModel> {
    if (COHERE_INJECT_FAULT(fault::kPointReductionFit)) {
      return Status::NumericalError("injected fault: " +
                                    std::string(fault::kPointReductionFit));
    }
    return PcaModel::Fit(data, options.scaling);
  }();
  if (primary.ok() || !options.allow_degraded_fit ||
      primary.status().code() != StatusCode::kNumericalError) {
    return primary;
  }

  COHERE_LOG(Warning) << "ReductionPipeline::Fit: primary eigensolver failed ("
                      << primary.status().ToString()
                      << "); falling back to the SVD path";
  if (obs::MetricsRegistry::Enabled()) {
    obs::MetricsRegistry::Global().GetCounter("pipeline.fallback_svd")
        ->Increment();
  }
  // The SVD path requires n >= d; when that precondition fails (an
  // InvalidArgument, not a numerical breakdown) skip straight to identity.
  Result<PcaModel> svd = PcaModel::FitWithSvd(data, options.scaling);
  if (svd.ok()) return svd;

  COHERE_LOG(Warning) << "ReductionPipeline::Fit: SVD fallback failed too ("
                      << svd.status().ToString()
                      << "); degrading to a studentized identity projection";
  if (obs::MetricsRegistry::Enabled()) {
    obs::MetricsRegistry::Global().GetCounter("pipeline.fallback_identity")
        ->Increment();
  }
  return PcaModel::FitIdentity(data, options.scaling);
}

}  // namespace

Result<ReductionPipeline> ReductionPipeline::Fit(
    const Dataset& dataset, const ReductionOptions& options) {
  obs::TraceSpan trace("pipeline.fit");
  const bool instrumented = obs::MetricsRegistry::Enabled();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  Stopwatch fit_watch;
  Stopwatch phase_watch;

  ReductionPipeline pipeline;
  pipeline.options_ = options;

  {
    obs::TraceSpan phase("pipeline.pca_fit");
    Result<PcaModel> model =
        FitModelWithFallback(dataset.features(), options);
    if (!model.ok()) return model.status();
    pipeline.model_ = std::move(*model);
  }
  if (instrumented) {
    registry.GetHistogram("pipeline.pca_fit_us")
        ->Record(phase_watch.ElapsedMicros());
  }

  phase_watch.Restart();
  {
    obs::TraceSpan phase("pipeline.coherence");
    pipeline.coherence_ =
        ComputeCoherence(pipeline.model_, dataset.features());
  }
  if (instrumented) {
    registry.GetHistogram("pipeline.coherence_us")
        ->Record(phase_watch.ElapsedMicros());
  }

  const size_t d = pipeline.model_.dims();
  if (options.target_dim > d) {
    return Status::InvalidArgument("target_dim exceeds data dimensionality");
  }

  phase_watch.Restart();
  obs::TraceSpan selection_phase("pipeline.selection");
  switch (options.strategy) {
    case SelectionStrategy::kEigenvalueOrder: {
      std::vector<size_t> order = OrderByEigenvalue(pipeline.model_);
      const size_t count =
          options.target_dim > 0
              ? options.target_dim
              : DetectSeparatedPrefix(pipeline.model_.eigenvalues(), order);
      pipeline.components_ = TakePrefix(order, count);
      break;
    }
    case SelectionStrategy::kCoherenceOrder: {
      std::vector<size_t> order = OrderByCoherence(pipeline.coherence_);
      const size_t count =
          options.target_dim > 0
              ? options.target_dim
              : DetectSeparatedPrefix(pipeline.coherence_.probability, order);
      pipeline.components_ = TakePrefix(order, count);
      break;
    }
    case SelectionStrategy::kEnergyFraction:
      pipeline.components_ =
          SelectEnergyFraction(pipeline.model_, options.energy_fraction);
      break;
    case SelectionStrategy::kRelativeThreshold:
      pipeline.components_ =
          SelectRelativeThreshold(pipeline.model_, options.relative_threshold);
      break;
  }
  if (instrumented) {
    registry.GetHistogram("pipeline.selection_us")
        ->Record(phase_watch.ElapsedMicros());
    registry.GetHistogram("pipeline.fit_us")
        ->Record(fit_watch.ElapsedMicros());
    registry.GetCounter("pipeline.fits")->Increment();
  }
  return pipeline;
}

Result<ReductionPipeline> ReductionPipeline::FromParts(
    const ReductionOptions& options, PcaModel model,
    CoherenceAnalysis coherence, std::vector<size_t> components) {
  const size_t d = model.dims();
  if (coherence.dims() != d || coherence.mean_factor.size() != d) {
    return Status::InvalidArgument(
        "coherence analysis does not match model dimensionality");
  }
  std::vector<bool> seen(d, false);
  for (size_t c : components) {
    if (c >= d) return Status::InvalidArgument("component index out of range");
    if (seen[c]) return Status::InvalidArgument("duplicate component index");
    seen[c] = true;
  }
  ReductionPipeline pipeline;
  pipeline.options_ = options;
  pipeline.model_ = std::move(model);
  pipeline.coherence_ = std::move(coherence);
  pipeline.components_ = std::move(components);
  return pipeline;
}

Dataset ReductionPipeline::TransformDataset(const Dataset& dataset) const {
  Matrix reduced = model_.ProjectRows(dataset.features(), components_);
  Dataset out = dataset.WithFeatures(std::move(reduced));
  out.set_name(dataset.name() + "_reduced");
  return out;
}

std::string ReductionPipeline::Describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s on %s PCA: kept %zu/%zu dims, %.1f%% variance",
                SelectionStrategyName(options_.strategy),
                PcaScalingName(options_.scaling), ReducedDims(), model_.dims(),
                100.0 * VarianceRetainedFraction());
  return buf;
}

}  // namespace cohere
