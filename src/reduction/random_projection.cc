#include "reduction/random_projection.h"

#include <cmath>

#include "common/check.h"
#include "stats/rng.h"

namespace cohere {

RandomProjection RandomProjection::Make(size_t input_dim, size_t target_dim,
                                        uint64_t seed) {
  COHERE_CHECK_GE(input_dim, 1u);
  COHERE_CHECK_GE(target_dim, 1u);
  COHERE_CHECK_LE(target_dim, input_dim);
  Rng rng(seed);
  RandomProjection out;
  out.projection_ = Matrix(input_dim, target_dim);
  const double scale = 1.0 / std::sqrt(static_cast<double>(target_dim));
  for (size_t i = 0; i < input_dim; ++i) {
    for (size_t j = 0; j < target_dim; ++j) {
      out.projection_.At(i, j) = rng.Gaussian() * scale;
    }
  }
  return out;
}

Vector RandomProjection::TransformPoint(const Vector& point) const {
  return MatTransposeVec(projection_, point);
}

Matrix RandomProjection::TransformRows(const Matrix& data) const {
  return Multiply(data, projection_);
}

Dataset RandomProjection::TransformDataset(const Dataset& dataset) const {
  Dataset out = dataset.WithFeatures(TransformRows(dataset.features()));
  out.set_name(dataset.name() + "_rp");
  return out;
}

}  // namespace cohere
