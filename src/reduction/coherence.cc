#include "reduction/coherence.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "stats/normal.h"

namespace cohere {
namespace {

// Returns |sum c_j| / sqrt(sum c_j^2) given the two accumulated moments.
double FactorFromMoments(double sum, double sum_sq) {
  if (sum_sq <= 0.0) return 0.0;
  return std::fabs(sum) / std::sqrt(sum_sq);
}

}  // namespace

double CoherenceFactor(const Vector& point, const Vector& direction) {
  COHERE_CHECK_EQ(point.size(), direction.size());
  double sum = 0.0;
  double sum_sq = 0.0;
  for (size_t j = 0; j < point.size(); ++j) {
    const double c = point[j] * direction[j];
    sum += c;
    sum_sq += c * c;
  }
  return FactorFromMoments(sum, sum_sq);
}

double CoherenceProbability(const Vector& point, const Vector& direction) {
  return TwoSidedNormalMass(CoherenceFactor(point, direction));
}

namespace {

// Shared kernel: computes, for every (record r, eigenvector i), the two
// moments sum_j c_j and sum_j c_j^2 where c_j = X_rj * P_ji, using two
// matrix products: S = X P and Q = (X o X)(P o P).
struct CoherenceMoments {
  Matrix sums;     // n x d: S(r, i) = X_r . e_i
  Matrix sum_sqs;  // n x d: Q(r, i) = sum_j c_j^2
};

// Per-record work chunk for the parallel loops below. Small enough to keep
// every pool lane busy on the paper-scale datasets (~350-500 records), large
// enough that chunk bookkeeping is negligible.
constexpr size_t kRecordGrain = 64;

CoherenceMoments ComputeMoments(const PcaModel& model, const Matrix& data) {
  const Matrix normalized = model.NormalizeRows(data);
  const Matrix& p = model.eigenvectors();
  const size_t d = p.rows();

  Matrix squared = normalized;
  ParallelFor(0, squared.rows(), kRecordGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      double* row = squared.RowPtr(i);
      for (size_t j = 0; j < d; ++j) row[j] *= row[j];
    }
  });
  Matrix p_squared = p;
  for (size_t i = 0; i < d; ++i) {
    double* row = p_squared.RowPtr(i);
    for (size_t j = 0; j < d; ++j) row[j] *= row[j];
  }

  CoherenceMoments moments;
  moments.sums = Multiply(normalized, p);
  moments.sum_sqs = Multiply(squared, p_squared);
  return moments;
}

}  // namespace

CoherenceAnalysis ComputeCoherence(const PcaModel& model, const Matrix& data) {
  COHERE_CHECK_GT(data.rows(), 0u);
  const CoherenceMoments moments = ComputeMoments(model, data);
  const size_t n = data.rows();
  const size_t d = model.dims();

  // Per-chunk partial sums over the records, merged in chunk order. The
  // chunk layout depends only on (n, grain) — see ParallelForIndexed — so
  // the summation tree, and therefore the result, is identical at every
  // thread count.
  const size_t chunks = ParallelChunkCount(n, kRecordGrain);
  std::vector<Vector> partial_prob(chunks, Vector(d));
  std::vector<Vector> partial_factor(chunks, Vector(d));
  ParallelForIndexed(0, n, kRecordGrain,
                     [&](size_t chunk, size_t begin, size_t end) {
    Vector& prob = partial_prob[chunk];
    Vector& factor_sum = partial_factor[chunk];
    for (size_t r = begin; r < end; ++r) {
      for (size_t i = 0; i < d; ++i) {
        const double factor =
            FactorFromMoments(moments.sums.At(r, i), moments.sum_sqs.At(r, i));
        factor_sum[i] += factor;
        prob[i] += TwoSidedNormalMass(factor);
      }
    }
  });

  CoherenceAnalysis out;
  out.probability.Resize(d);
  out.mean_factor.Resize(d);
  for (size_t chunk = 0; chunk < chunks; ++chunk) {
    out.probability += partial_prob[chunk];
    out.mean_factor += partial_factor[chunk];
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  out.probability *= inv_n;
  out.mean_factor *= inv_n;
  return out;
}

Matrix PerPointCoherenceProbabilities(const PcaModel& model,
                                      const Matrix& data) {
  const CoherenceMoments moments = ComputeMoments(model, data);
  Matrix out(data.rows(), model.dims());
  ParallelFor(0, out.rows(), kRecordGrain, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      for (size_t i = 0; i < out.cols(); ++i) {
        out.At(r, i) = TwoSidedNormalMass(FactorFromMoments(
            moments.sums.At(r, i), moments.sum_sqs.At(r, i)));
      }
    }
  });
  return out;
}

}  // namespace cohere
