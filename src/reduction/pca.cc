#include "reduction/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/svd.h"
#include "linalg/symmetric_eigen.h"
#include "obs/metrics.h"
#include "stats/covariance.h"

namespace cohere {

namespace {

// Fills the per-column divisors for correlation (studentized) scaling —
// zero-variance columns are pinned to divisor 1 so they pass through
// centered but unscaled — and publishes how many columns were degenerate
// (`scaling.zero_variance_dims`), since a constant attribute silently
// contributes nothing to a correlation-scaled reduction.
void ApplyCorrelationScale(const Matrix& data, Vector* scale) {
  const Vector stds = ColumnStdDevs(data);
  size_t zero_variance = 0;
  for (size_t j = 0; j < stds.size(); ++j) {
    if (stds[j] > 0.0) {
      (*scale)[j] = stds[j];
    } else {
      (*scale)[j] = 1.0;
      ++zero_variance;
    }
  }
  if (obs::MetricsRegistry::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetGauge("scaling.zero_variance_dims")
        ->Set(static_cast<double>(zero_variance));
  }
}

}  // namespace

const char* PcaScalingName(PcaScaling scaling) {
  switch (scaling) {
    case PcaScaling::kCovariance:
      return "covariance";
    case PcaScaling::kCorrelation:
      return "correlation";
  }
  return "unknown";
}

Result<PcaModel> PcaModel::Fit(const Matrix& data, PcaScaling scaling) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("PCA requires a non-empty data matrix");
  }
  if (!AllFinite(data)) {
    return Status::InvalidArgument("data contains NaN or Inf");
  }

  PcaModel model;
  model.scaling_ = scaling;
  model.mean_ = ColumnMeans(data);
  model.scale_ = Vector(data.cols(), 1.0);

  Matrix moment;
  if (scaling == PcaScaling::kCorrelation) {
    ApplyCorrelationScale(data, &model.scale_);
    moment = CorrelationMatrix(data);
  } else {
    moment = CovarianceMatrix(data);
  }

  Result<EigenDecomposition> eig = SymmetricEigen(moment);
  if (!eig.ok()) return eig.status();
  model.eigenvalues_ = std::move(eig->eigenvalues);
  model.eigenvectors_ = std::move(eig->eigenvectors);

  // Covariance matrices are positive semi-definite; clamp the tiny negative
  // eigenvalues that finite precision produces so downstream variance
  // accounting stays non-negative.
  for (size_t i = 0; i < model.eigenvalues_.size(); ++i) {
    if (model.eigenvalues_[i] < 0.0 && model.eigenvalues_[i] > -1e-9) {
      model.eigenvalues_[i] = 0.0;
    }
  }
  return model;
}

Result<PcaModel> PcaModel::FitWithSvd(const Matrix& data,
                                      PcaScaling scaling) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("PCA requires a non-empty data matrix");
  }
  if (data.rows() < data.cols()) {
    return Status::InvalidArgument(
        "SVD-path PCA requires at least as many records as attributes");
  }
  if (!AllFinite(data)) {
    return Status::InvalidArgument("data contains NaN or Inf");
  }

  PcaModel model;
  model.scaling_ = scaling;
  model.mean_ = ColumnMeans(data);
  model.scale_ = Vector(data.cols(), 1.0);
  if (scaling == PcaScaling::kCorrelation) {
    ApplyCorrelationScale(data, &model.scale_);
  }

  const Matrix normalized = model.NormalizeRows(data);
  Result<SvdDecomposition> svd = JacobiSvd(normalized);
  if (!svd.ok()) return svd.status();

  // sigma_i^2 / n are the eigenvalues of the (population) second-moment
  // matrix of the normalized data.
  const double inv_n = 1.0 / static_cast<double>(data.rows());
  const size_t d = data.cols();
  model.eigenvalues_.Resize(d);
  for (size_t i = 0; i < d; ++i) {
    const double sigma = svd->singular_values[i];
    model.eigenvalues_[i] = sigma * sigma * inv_n;
  }
  model.eigenvectors_ = std::move(svd->v);
  return model;
}

Result<PcaModel> PcaModel::FitIdentity(const Matrix& data,
                                       PcaScaling scaling) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("PCA requires a non-empty data matrix");
  }
  if (!AllFinite(data)) {
    return Status::InvalidArgument("data contains NaN or Inf");
  }

  PcaModel model;
  model.scaling_ = scaling;
  model.mean_ = ColumnMeans(data);
  model.scale_ = Vector(data.cols(), 1.0);
  if (scaling == PcaScaling::kCorrelation) {
    ApplyCorrelationScale(data, &model.scale_);
  }

  // The normalized data's per-attribute variances stand in for eigenvalues:
  // raw column variances under covariance scaling; 1 under correlation
  // scaling (0 for a constant column, whose divisor is pinned at 1).
  const size_t d = data.cols();
  const Vector stds = ColumnStdDevs(data);
  Vector variances(d);
  for (size_t j = 0; j < d; ++j) {
    const double sigma = stds[j] / model.scale_[j];
    variances[j] = sigma * sigma;
  }
  std::vector<size_t> order(d);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return variances[a] > variances[b];
  });

  model.eigenvalues_.Resize(d);
  model.eigenvectors_ = Matrix(d, d);
  for (size_t i = 0; i < d; ++i) {
    model.eigenvalues_[i] = variances[order[i]];
    model.eigenvectors_.At(order[i], i) = 1.0;
  }
  return model;
}

Result<PcaModel> PcaModel::FromComponents(PcaScaling scaling,
                                          Vector eigenvalues,
                                          Matrix eigenvectors, Vector mean,
                                          Vector scale) {
  const size_t d = mean.size();
  if (d == 0) return Status::InvalidArgument("empty model");
  if (eigenvalues.size() != d || scale.size() != d ||
      eigenvectors.rows() != d || eigenvectors.cols() != d) {
    return Status::InvalidArgument("component shapes disagree");
  }
  for (size_t i = 1; i < d; ++i) {
    if (eigenvalues[i] > eigenvalues[i - 1] + 1e-9) {
      return Status::InvalidArgument("eigenvalues are not descending");
    }
  }
  for (size_t j = 0; j < d; ++j) {
    if (scale[j] <= 0.0) {
      return Status::InvalidArgument("scales must be positive");
    }
  }
  PcaModel model;
  model.scaling_ = scaling;
  model.eigenvalues_ = std::move(eigenvalues);
  model.eigenvectors_ = std::move(eigenvectors);
  model.mean_ = std::move(mean);
  model.scale_ = std::move(scale);
  return model;
}

Vector PcaModel::Normalize(const Vector& point) const {
  COHERE_CHECK_EQ(point.size(), dims());
  Vector out(dims());
  for (size_t j = 0; j < dims(); ++j) {
    out[j] = (point[j] - mean_[j]) / scale_[j];
  }
  return out;
}

Matrix PcaModel::NormalizeRows(const Matrix& data) const {
  COHERE_CHECK_EQ(data.cols(), dims());
  Matrix out = data;
  for (size_t i = 0; i < out.rows(); ++i) {
    double* row = out.RowPtr(i);
    for (size_t j = 0; j < dims(); ++j) {
      row[j] = (row[j] - mean_[j]) / scale_[j];
    }
  }
  return out;
}

Vector PcaModel::Transform(const Vector& point) const {
  return MatTransposeVec(eigenvectors_, Normalize(point));
}

Matrix PcaModel::TransformRows(const Matrix& data) const {
  return Multiply(NormalizeRows(data), eigenvectors_);
}

Vector PcaModel::Project(const Vector& point,
                         const std::vector<size_t>& components) const {
  const Vector normalized = Normalize(point);
  Vector out(components.size());
  for (size_t c = 0; c < components.size(); ++c) {
    COHERE_CHECK_LT(components[c], dims());
    double dot = 0.0;
    for (size_t j = 0; j < dims(); ++j) {
      dot += normalized[j] * eigenvectors_.At(j, components[c]);
    }
    out[c] = dot;
  }
  return out;
}

Matrix PcaModel::ProjectRows(const Matrix& data,
                             const std::vector<size_t>& components) const {
  return Multiply(NormalizeRows(data),
                  eigenvectors_.SelectCols(components));
}

Vector PcaModel::Reconstruct(const Vector& coords,
                             const std::vector<size_t>& components) const {
  COHERE_CHECK_EQ(coords.size(), components.size());
  Vector normalized(dims());
  for (size_t c = 0; c < components.size(); ++c) {
    COHERE_CHECK_LT(components[c], dims());
    for (size_t j = 0; j < dims(); ++j) {
      normalized[j] += coords[c] * eigenvectors_.At(j, components[c]);
    }
  }
  Vector out(dims());
  for (size_t j = 0; j < dims(); ++j) {
    out[j] = normalized[j] * scale_[j] + mean_[j];
  }
  return out;
}

double PcaModel::TotalVariance() const { return eigenvalues_.Sum(); }

double PcaModel::VarianceRetainedFraction(
    const std::vector<size_t>& components) const {
  const double total = TotalVariance();
  if (total <= 0.0) return 0.0;
  double kept = 0.0;
  for (size_t c : components) {
    COHERE_CHECK_LT(c, eigenvalues_.size());
    kept += eigenvalues_[c];
  }
  return kept / total;
}

}  // namespace cohere
