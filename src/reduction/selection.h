#ifndef COHERE_REDUCTION_SELECTION_H_
#define COHERE_REDUCTION_SELECTION_H_

#include <cstddef>
#include <vector>

#include "reduction/coherence.h"
#include "reduction/pca.h"

namespace cohere {

/// How to choose (and order) the retained eigenvectors.
enum class SelectionStrategy {
  /// Descending eigenvalue — the conventional "least information loss" rule.
  kEigenvalueOrder,
  /// Descending coherence probability — the paper's proposal.
  kCoherenceOrder,
  /// Smallest eigenvalue-ordered prefix retaining a fraction of variance.
  kEnergyFraction,
  /// Keep eigenvalues at least `relative_threshold` times the largest — the
  /// paper's "1%-thresholding" baseline when the threshold is 0.01.
  kRelativeThreshold,
};

const char* SelectionStrategyName(SelectionStrategy strategy);

/// All component indices in descending-eigenvalue order (0, 1, ..., d-1 by
/// PcaModel's convention).
std::vector<size_t> OrderByEigenvalue(const PcaModel& model);

/// Component indices in descending coherence probability, ties broken by
/// descending eigenvalue.
std::vector<size_t> OrderByCoherence(const CoherenceAnalysis& coherence);

/// The first `count` entries of an ordering.
std::vector<size_t> TakePrefix(const std::vector<size_t>& ordering,
                               size_t count);

/// Smallest eigenvalue-ordered prefix whose retained variance fraction is at
/// least `fraction` (in (0, 1]). Always returns at least one component.
std::vector<size_t> SelectEnergyFraction(const PcaModel& model,
                                         double fraction);

/// Components whose eigenvalue is at least `relative_threshold` times the
/// largest eigenvalue. The paper's baseline uses 0.1. Always returns at
/// least one component.
std::vector<size_t> SelectRelativeThreshold(const PcaModel& model,
                                            double relative_threshold);

/// Detects the paper's scatter-plot "cut-off" heuristic: the number of
/// leading components (in the given ordering, which must put scores in
/// non-increasing order) that stand apart from the rest.
///
/// Implemented as a largest-gap rule: the cut is placed at the biggest drop
/// between consecutive ordered scores, provided that drop exceeds
/// `separation` times the mean of the other drops (otherwise the profile is
/// considered flat — the paper's "unsuited to reduction" case — and 1 is
/// returned). Returns a count in [1, ordering.size()]; inputs with fewer
/// than 3 scores return 1.
size_t DetectSeparatedPrefix(const Vector& scores,
                             const std::vector<size_t>& ordering,
                             double separation = 4.0);

}  // namespace cohere

#endif  // COHERE_REDUCTION_SELECTION_H_
