#ifndef COHERE_REDUCTION_SERIALIZATION_H_
#define COHERE_REDUCTION_SERIALIZATION_H_

#include <string>

#include "common/status.h"
#include "reduction/pca.h"
#include "reduction/pipeline.h"

namespace cohere {

/// Persists a fitted PcaModel as a versioned, line-oriented text file
/// (full double precision). Text was chosen over a binary format so model
/// files are portable across endianness and diffable in reviews.
Status SavePcaModel(const PcaModel& model, const std::string& path);

/// Loads a model saved by SavePcaModel; validates shapes and ordering.
Result<PcaModel> LoadPcaModel(const std::string& path);

/// Persists a fitted ReductionPipeline (options + model + coherence
/// analysis + retained components) so an engine can be rebuilt without
/// refitting.
Status SaveReductionPipeline(const ReductionPipeline& pipeline,
                             const std::string& path);

/// Loads a pipeline saved by SaveReductionPipeline.
Result<ReductionPipeline> LoadReductionPipeline(const std::string& path);

}  // namespace cohere

#endif  // COHERE_REDUCTION_SERIALIZATION_H_
