#ifndef COHERE_REDUCTION_PIPELINE_H_
#define COHERE_REDUCTION_PIPELINE_H_

#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "reduction/coherence.h"
#include "reduction/pca.h"
#include "reduction/selection.h"

namespace cohere {

/// Options controlling a fitted reduction.
struct ReductionOptions {
  PcaScaling scaling = PcaScaling::kCorrelation;
  SelectionStrategy strategy = SelectionStrategy::kCoherenceOrder;
  /// Retained dimensionality for the ordering strategies; 0 picks
  /// automatically (the scatter-plot separation heuristic for the ordering
  /// strategies; ignored by the threshold/fraction strategies which size
  /// themselves).
  size_t target_dim = 0;
  /// Used only by kEnergyFraction.
  double energy_fraction = 0.9;
  /// Used only by kRelativeThreshold; 0.01 is the paper's baseline.
  double relative_threshold = 0.01;
  /// When the primary eigensolver fails with a numerical error, Fit falls
  /// back to the SVD path and, failing that too, to a studentized identity
  /// projection (axis-aligned, variance-ordered) — each step logged and
  /// counted (`pipeline.fallback_svd` / `pipeline.fallback_identity`), so
  /// callers that can tolerate a degraded axis system never see a hard
  /// failure. Set to false to propagate the primary error instead.
  bool allow_degraded_fit = true;
};

/// End-to-end dimensionality reduction: PCA fit + coherence analysis +
/// component selection, with consistent transforms for data and queries.
class ReductionPipeline {
 public:
  ReductionPipeline() = default;

  /// Fits on `dataset` according to `options`.
  static Result<ReductionPipeline> Fit(const Dataset& dataset,
                                       const ReductionOptions& options);

  /// Reassembles a fitted pipeline from stored parts (used by
  /// serialization). Validates that the coherence analysis matches the
  /// model's dimensionality and that the component indices are unique and
  /// in range.
  static Result<ReductionPipeline> FromParts(const ReductionOptions& options,
                                             PcaModel model,
                                             CoherenceAnalysis coherence,
                                             std::vector<size_t> components);

  const ReductionOptions& options() const { return options_; }
  const PcaModel& model() const { return model_; }
  const CoherenceAnalysis& coherence() const { return coherence_; }

  /// Indices of the retained eigenvectors, in retention order.
  const std::vector<size_t>& components() const { return components_; }
  size_t ReducedDims() const { return components_.size(); }

  /// Fraction of the total variance the retained components carry.
  double VarianceRetainedFraction() const {
    return model_.VarianceRetainedFraction(components_);
  }

  /// Projects a point from the original attribute space into the reduced
  /// space.
  Vector TransformPoint(const Vector& point) const {
    return model_.Project(point, components_);
  }

  /// Projects a whole dataset (labels and name preserved).
  Dataset TransformDataset(const Dataset& dataset) const;

  /// One-line human-readable summary ("coherence_order on correlation PCA:
  /// kept 10/34 dims, 37.2% variance").
  std::string Describe() const;

 private:
  ReductionOptions options_;
  PcaModel model_;
  CoherenceAnalysis coherence_;
  std::vector<size_t> components_;
};

}  // namespace cohere

#endif  // COHERE_REDUCTION_PIPELINE_H_
