#include "reduction/serialization.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace cohere {
namespace {

constexpr char kModelMagic[] = "cohere_pca_model v1";
constexpr char kPipelineMagic[] = "cohere_reduction_pipeline v1";

void WriteVector(std::ostream& out, const std::string& tag, const Vector& v) {
  out << tag;
  for (double x : v) out << ' ' << x;
  out << '\n';
}

// Reads "<tag> v0 v1 ..." expecting exactly `size` values.
Result<Vector> ReadVectorLine(std::istream& in, const std::string& tag,
                              size_t size) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("unexpected end of file before " + tag);
  }
  std::istringstream fields(line);
  std::string seen_tag;
  fields >> seen_tag;
  if (seen_tag != tag) {
    return Status::ParseError("expected '" + tag + "', found '" + seen_tag +
                              "'");
  }
  Vector out(size);
  for (size_t i = 0; i < size; ++i) {
    if (!(fields >> out[i])) {
      return Status::ParseError("short " + tag + " line");
    }
  }
  double extra;
  if (fields >> extra) {
    return Status::ParseError("trailing values on " + tag + " line");
  }
  return out;
}

Status WriteModelBody(std::ostream& out, const PcaModel& model) {
  const size_t d = model.dims();
  out.precision(17);
  out << "scaling " << PcaScalingName(model.scaling()) << '\n';
  out << "dims " << d << '\n';
  WriteVector(out, "eigenvalues", model.eigenvalues());
  WriteVector(out, "mean", model.mean());
  WriteVector(out, "scale", model.scale());
  for (size_t i = 0; i < d; ++i) {
    WriteVector(out, "evrow", model.eigenvectors().Row(i));
  }
  return Status::Ok();
}

Result<PcaModel> ReadModelBody(std::istream& in) {
  std::string line;
  std::string word;

  if (!std::getline(in, line)) return Status::ParseError("missing scaling");
  std::istringstream scaling_line(line);
  std::string scaling_name;
  scaling_line >> word >> scaling_name;
  if (word != "scaling") return Status::ParseError("expected scaling line");
  PcaScaling scaling;
  if (scaling_name == "covariance") {
    scaling = PcaScaling::kCovariance;
  } else if (scaling_name == "correlation") {
    scaling = PcaScaling::kCorrelation;
  } else {
    return Status::ParseError("unknown scaling '" + scaling_name + "'");
  }

  if (!std::getline(in, line)) return Status::ParseError("missing dims");
  std::istringstream dims_line(line);
  size_t d = 0;
  dims_line >> word >> d;
  if (word != "dims" || d == 0) {
    return Status::ParseError("bad dims line");
  }

  Result<Vector> eigenvalues = ReadVectorLine(in, "eigenvalues", d);
  if (!eigenvalues.ok()) return eigenvalues.status();
  Result<Vector> mean = ReadVectorLine(in, "mean", d);
  if (!mean.ok()) return mean.status();
  Result<Vector> scale = ReadVectorLine(in, "scale", d);
  if (!scale.ok()) return scale.status();

  Matrix eigenvectors(d, d);
  for (size_t i = 0; i < d; ++i) {
    Result<Vector> row = ReadVectorLine(in, "evrow", d);
    if (!row.ok()) return row.status();
    eigenvectors.SetRow(i, *row);
  }

  return PcaModel::FromComponents(scaling, std::move(*eigenvalues),
                                  std::move(eigenvectors), std::move(*mean),
                                  std::move(*scale));
}

}  // namespace

Status SavePcaModel(const PcaModel& model, const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file << kModelMagic << '\n';
  Status body = WriteModelBody(file, model);
  if (!body.ok()) return body;
  if (!file) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Result<PcaModel> LoadPcaModel(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open " + path);
  std::string magic;
  std::getline(file, magic);
  if (magic != kModelMagic) {
    return Status::ParseError("not a cohere PCA model file");
  }
  return ReadModelBody(file);
}

Status SaveReductionPipeline(const ReductionPipeline& pipeline,
                             const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file.precision(17);
  file << kPipelineMagic << '\n';
  const ReductionOptions& options = pipeline.options();
  file << "strategy " << SelectionStrategyName(options.strategy) << '\n';
  file << "target_dim " << options.target_dim << '\n';
  file << "energy_fraction " << options.energy_fraction << '\n';
  file << "relative_threshold " << options.relative_threshold << '\n';
  file << "components";
  for (size_t c : pipeline.components()) file << ' ' << c;
  file << '\n';
  WriteVector(file, "coherence", pipeline.coherence().probability);
  WriteVector(file, "mean_factor", pipeline.coherence().mean_factor);
  Status body = WriteModelBody(file, pipeline.model());
  if (!body.ok()) return body;
  if (!file) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Result<ReductionPipeline> LoadReductionPipeline(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open " + path);
  std::string line;
  std::getline(file, line);
  if (line != kPipelineMagic) {
    return Status::ParseError("not a cohere reduction pipeline file");
  }

  ReductionOptions options;
  std::string word;

  if (!std::getline(file, line)) return Status::ParseError("missing strategy");
  {
    std::istringstream fields(line);
    std::string name;
    fields >> word >> name;
    if (word != "strategy") return Status::ParseError("expected strategy");
    if (name == "eigenvalue_order") {
      options.strategy = SelectionStrategy::kEigenvalueOrder;
    } else if (name == "coherence_order") {
      options.strategy = SelectionStrategy::kCoherenceOrder;
    } else if (name == "energy_fraction") {
      options.strategy = SelectionStrategy::kEnergyFraction;
    } else if (name == "relative_threshold") {
      options.strategy = SelectionStrategy::kRelativeThreshold;
    } else {
      return Status::ParseError("unknown strategy '" + name + "'");
    }
  }

  auto read_scalar = [&file, &word](const std::string& tag,
                                    double* value) -> Status {
    std::string scalar_line;
    if (!std::getline(file, scalar_line)) {
      return Status::ParseError("missing " + tag);
    }
    std::istringstream fields(scalar_line);
    fields >> word >> *value;
    if (word != tag || fields.fail()) {
      return Status::ParseError("bad " + tag + " line");
    }
    return Status::Ok();
  };

  double target_dim = 0.0;
  Status s = read_scalar("target_dim", &target_dim);
  if (!s.ok()) return s;
  options.target_dim = static_cast<size_t>(target_dim);
  s = read_scalar("energy_fraction", &options.energy_fraction);
  if (!s.ok()) return s;
  s = read_scalar("relative_threshold", &options.relative_threshold);
  if (!s.ok()) return s;

  if (!std::getline(file, line)) {
    return Status::ParseError("missing components");
  }
  std::vector<size_t> components;
  {
    std::istringstream fields(line);
    fields >> word;
    if (word != "components") return Status::ParseError("expected components");
    size_t c;
    while (fields >> c) components.push_back(c);
  }

  // The coherence vectors precede the model body but their length is the
  // model's dimensionality; peek it by buffering the lines.
  std::string coherence_line;
  std::string factor_line;
  if (!std::getline(file, coherence_line) ||
      !std::getline(file, factor_line)) {
    return Status::ParseError("missing coherence block");
  }

  Result<PcaModel> model = ReadModelBody(file);
  if (!model.ok()) return model.status();
  const size_t d = model->dims();

  auto parse_buffered = [d](const std::string& buffered,
                            const std::string& tag) -> Result<Vector> {
    std::istringstream stream(buffered + "\n");
    return ReadVectorLine(stream, tag, d);
  };
  Result<Vector> probability = parse_buffered(coherence_line, "coherence");
  if (!probability.ok()) return probability.status();
  Result<Vector> mean_factor = parse_buffered(factor_line, "mean_factor");
  if (!mean_factor.ok()) return mean_factor.status();

  CoherenceAnalysis coherence;
  coherence.probability = std::move(*probability);
  coherence.mean_factor = std::move(*mean_factor);
  options.scaling = model->scaling();
  return ReductionPipeline::FromParts(options, std::move(*model),
                                      std::move(coherence),
                                      std::move(components));
}

}  // namespace cohere
