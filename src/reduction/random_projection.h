#ifndef COHERE_REDUCTION_RANDOM_PROJECTION_H_
#define COHERE_REDUCTION_RANDOM_PROJECTION_H_

#include <cstdint>

#include "data/dataset.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace cohere {

/// Gaussian random projection baseline (Johnson-Lindenstrauss style).
///
/// Projects onto `target_dim` random directions with entries
/// N(0, 1/target_dim). Preserves pairwise distances in expectation but — by
/// construction — has no notion of concepts or noise, which is exactly what
/// the ablation benches contrast against PCA-based selection.
class RandomProjection {
 public:
  RandomProjection() = default;

  /// Builds a projection from `input_dim` to `target_dim` (both >= 1,
  /// target_dim <= input_dim).
  static RandomProjection Make(size_t input_dim, size_t target_dim,
                               uint64_t seed);

  size_t input_dim() const { return projection_.rows(); }
  size_t target_dim() const { return projection_.cols(); }

  Vector TransformPoint(const Vector& point) const;
  Matrix TransformRows(const Matrix& data) const;
  Dataset TransformDataset(const Dataset& dataset) const;

 private:
  Matrix projection_;  // input_dim x target_dim
};

}  // namespace cohere

#endif  // COHERE_REDUCTION_RANDOM_PROJECTION_H_
