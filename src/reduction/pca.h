#ifndef COHERE_REDUCTION_PCA_H_
#define COHERE_REDUCTION_PCA_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace cohere {

/// Which second-moment matrix PCA diagonalizes.
///
/// kCorrelation is equivalent to studentizing every attribute to unit
/// variance first (the paper's Section 2.2 scaling recommendation);
/// kCovariance works on the raw attribute scales.
enum class PcaScaling {
  kCovariance,
  kCorrelation,
};

const char* PcaScalingName(PcaScaling scaling);

/// Principal component analysis of a data matrix.
///
/// Fitting diagonalizes the covariance (or correlation) matrix
/// C = P Lambda P^T and stores the full axis system: eigenvalues in
/// descending order, the orthonormal eigenvectors as columns of
/// `eigenvectors()`, and the column statistics needed to normalize new
/// points consistently.
class PcaModel {
 public:
  PcaModel() = default;

  /// Fits on the rows of `data` (at least one record, at least one column)
  /// by diagonalizing the covariance/correlation matrix.
  static Result<PcaModel> Fit(const Matrix& data, PcaScaling scaling);

  /// Fits via the thin SVD of the normalized data matrix instead of forming
  /// the second-moment matrix. Numerically preferable when the data is
  /// ill-conditioned (forming C squares the condition number); requires at
  /// least as many records as attributes. Produces the same model as Fit up
  /// to floating-point error and eigenvector sign.
  static Result<PcaModel> FitWithSvd(const Matrix& data, PcaScaling scaling);

  /// Last-resort degraded fit: no diagonalization at all. The "eigenvectors"
  /// are the attribute axes themselves (a permutation matrix ordering the
  /// studentized per-attribute variances descending) and the "eigenvalues"
  /// are those variances. Transform/Project then just center, scale and
  /// reorder coordinates — a valid, if uninformed, axis system that cannot
  /// fail on finite non-empty data. Used by ReductionPipeline::Fit as the
  /// bottom of its fallback chain.
  static Result<PcaModel> FitIdentity(const Matrix& data, PcaScaling scaling);

  /// Reassembles a model from stored components (used by serialization).
  /// Validates shape agreement, descending eigenvalue order and positive
  /// scales; does NOT re-verify eigenvector orthonormality.
  static Result<PcaModel> FromComponents(PcaScaling scaling,
                                         Vector eigenvalues,
                                         Matrix eigenvectors, Vector mean,
                                         Vector scale);

  /// Number of original attributes d.
  size_t dims() const { return mean_.size(); }
  PcaScaling scaling() const { return scaling_; }

  /// Eigenvalues, descending. The sum equals the trace of the analyzed
  /// matrix (total variance).
  const Vector& eigenvalues() const { return eigenvalues_; }
  /// d x d orthonormal matrix; column i is the eigenvector of eigenvalue i.
  const Matrix& eigenvectors() const { return eigenvectors_; }
  /// Column means of the fitted data.
  const Vector& mean() const { return mean_; }
  /// Per-column divisors applied before rotation (all ones for covariance
  /// scaling; the column standard deviations for correlation scaling, with
  /// zero-variance columns mapped to divisor 1).
  const Vector& scale() const { return scale_; }

  /// Centers/scales a point into the normalized attribute space (the space
  /// the eigenvectors live in).
  Vector Normalize(const Vector& point) const;
  /// Normalizes every row.
  Matrix NormalizeRows(const Matrix& data) const;

  /// Full rotation: coordinates of `point` along all d eigenvectors.
  Vector Transform(const Vector& point) const;
  /// Transforms every row; column i of the result is the coordinate along
  /// eigenvector i.
  Matrix TransformRows(const Matrix& data) const;

  /// Coordinates along the chosen eigenvectors only (the reduced
  /// representation).
  Vector Project(const Vector& point,
                 const std::vector<size_t>& components) const;
  Matrix ProjectRows(const Matrix& data,
                     const std::vector<size_t>& components) const;

  /// Maps reduced coordinates back to the original attribute space (undoing
  /// scaling and centering); the lost components are filled with the mean.
  Vector Reconstruct(const Vector& coords,
                     const std::vector<size_t>& components) const;

  /// Sum of all eigenvalues.
  double TotalVariance() const;
  /// Fraction of TotalVariance captured by the chosen components (in [0,1]).
  double VarianceRetainedFraction(const std::vector<size_t>& components) const;

 private:
  PcaScaling scaling_ = PcaScaling::kCovariance;
  Vector eigenvalues_;
  Matrix eigenvectors_;
  Vector mean_;
  Vector scale_;
};

}  // namespace cohere

#endif  // COHERE_REDUCTION_PCA_H_
