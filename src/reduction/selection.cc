#include "reduction/selection.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace cohere {

const char* SelectionStrategyName(SelectionStrategy strategy) {
  switch (strategy) {
    case SelectionStrategy::kEigenvalueOrder:
      return "eigenvalue_order";
    case SelectionStrategy::kCoherenceOrder:
      return "coherence_order";
    case SelectionStrategy::kEnergyFraction:
      return "energy_fraction";
    case SelectionStrategy::kRelativeThreshold:
      return "relative_threshold";
  }
  return "unknown";
}

std::vector<size_t> OrderByEigenvalue(const PcaModel& model) {
  std::vector<size_t> order(model.dims());
  std::iota(order.begin(), order.end(), size_t{0});
  return order;
}

std::vector<size_t> OrderByCoherence(const CoherenceAnalysis& coherence) {
  std::vector<size_t> order(coherence.dims());
  std::iota(order.begin(), order.end(), size_t{0});
  const Vector& p = coherence.probability;
  std::stable_sort(order.begin(), order.end(), [&p](size_t a, size_t b) {
    if (p[a] != p[b]) return p[a] > p[b];
    // Tie-break on eigenvalue rank: smaller index = larger eigenvalue.
    return a < b;
  });
  return order;
}

std::vector<size_t> TakePrefix(const std::vector<size_t>& ordering,
                               size_t count) {
  COHERE_CHECK_LE(count, ordering.size());
  return std::vector<size_t>(ordering.begin(),
                             ordering.begin() + static_cast<ptrdiff_t>(count));
}

std::vector<size_t> SelectEnergyFraction(const PcaModel& model,
                                         double fraction) {
  COHERE_CHECK(fraction > 0.0 && fraction <= 1.0);
  const Vector& ev = model.eigenvalues();
  const double total = model.TotalVariance();
  std::vector<size_t> out;
  double kept = 0.0;
  for (size_t i = 0; i < ev.size(); ++i) {
    out.push_back(i);
    kept += ev[i];
    if (total <= 0.0 || kept / total >= fraction) break;
  }
  return out;
}

std::vector<size_t> SelectRelativeThreshold(const PcaModel& model,
                                            double relative_threshold) {
  COHERE_CHECK(relative_threshold >= 0.0 && relative_threshold <= 1.0);
  const Vector& ev = model.eigenvalues();
  COHERE_CHECK(!ev.empty());
  const double cutoff = ev[0] * relative_threshold;
  std::vector<size_t> out;
  for (size_t i = 0; i < ev.size(); ++i) {
    // Eigenvalues are sorted descending, so stop at the first miss.
    if (ev[i] < cutoff && !out.empty()) break;
    out.push_back(i);
  }
  return out;
}

size_t DetectSeparatedPrefix(const Vector& scores,
                             const std::vector<size_t>& ordering,
                             double separation) {
  const size_t d = ordering.size();
  COHERE_CHECK_GE(d, 1u);
  COHERE_CHECK_EQ(scores.size(), d);
  if (d < 3) return 1;

  // Drops between consecutive ordered scores; the cut goes at the largest
  // one when it dominates the typical drop. Only cuts in the first half are
  // candidates: a "separated prefix" of nearly everything is not a prune,
  // it is a tail artifact.
  size_t best_gap_index = 0;
  double best_gap = -1.0;
  double gap_sum = 0.0;
  const size_t max_cut = d / 2;
  for (size_t i = 0; i + 1 < d; ++i) {
    const double gap =
        scores[ordering[i]] - scores[ordering[i + 1]];
    gap_sum += gap;
    if (i < max_cut && gap > best_gap) {
      best_gap = gap;
      best_gap_index = i;
    }
  }
  const double mean_other_gap =
      (gap_sum - best_gap) / static_cast<double>(d - 2);
  if (best_gap > separation * std::max(mean_other_gap, 1e-12)) {
    return best_gap_index + 1;
  }
  return 1;
}

}  // namespace cohere
