#ifndef COHERE_EVAL_KNN_QUALITY_H_
#define COHERE_EVAL_KNN_QUALITY_H_

#include <cstddef>
#include <vector>

#include "index/knn.h"
#include "index/metric.h"
#include "linalg/matrix.h"

namespace cohere {

/// The paper's feature-stripping quality measure: leave-one-out k-NN over
/// every record of `features`, scoring the fraction of neighbor slots whose
/// (stripped) class label matches the query's label. `labels.size()` must
/// equal `features.rows()` and k >= 1.
///
/// Uses an exhaustive scan with the given metric, so the number reflects the
/// representation, not an index's approximation.
double KnnPredictionAccuracy(const Matrix& features,
                             const std::vector<int>& labels, size_t k,
                             const Metric& metric);

/// Same measure served by an already-built index. `queries` must correspond
/// row-for-row to the indexed records (row i is passed with skip_index = i,
/// the leave-one-out convention); `labels` labels those rows. Used to
/// evaluate ReducedSearchEngine configurations end to end.
double KnnPredictionAccuracy(const KnnIndex& index, const Matrix& queries,
                             const std::vector<int>& labels, size_t k);

/// Average overlap between the k-NN sets found in two representations of
/// the same records — the paper's precision/recall with respect to the
/// full-dimensional neighbors. With equal k the two coincide; both fields
/// are kept for readability of the experiment output.
struct NeighborOverlap {
  double precision = 0.0;
  double recall = 0.0;
  size_t k = 0;
};

/// Leave-one-out k-NN in both feature spaces (rows correspond), overlap
/// averaged over all records.
NeighborOverlap ReducedSpaceOverlap(const Matrix& full_features,
                                    const Matrix& reduced_features, size_t k,
                                    const Metric& metric);

}  // namespace cohere

#endif  // COHERE_EVAL_KNN_QUALITY_H_
