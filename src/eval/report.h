#ifndef COHERE_EVAL_REPORT_H_
#define COHERE_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace cohere {

/// Right-padded plain-text table used by every experiment harness to print
/// the paper's tables and figure series in a diff-friendly form.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  size_t NumRows() const { return rows_.size(); }

  /// Renders with aligned columns, a header underline, and a trailing
  /// newline.
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` significant decimal digits after the
/// point ("%.*f").
std::string FormatDouble(double value, int precision = 3);

/// Formats a fraction as a percentage ("42.3%").
std::string FormatPercent(double fraction, int precision = 1);

/// Writes named numeric columns as CSV (all columns equally sized). The
/// figure harnesses use this to dump plottable series next to the printed
/// tables.
Status WriteSeriesCsv(const std::string& path,
                      const std::vector<std::string>& column_names,
                      const std::vector<std::vector<double>>& columns);

/// One named series for RenderAsciiChart; y.size() must match the shared
/// x-axis length.
struct ChartSeries {
  std::string label;
  std::vector<double> y;
};

/// Renders an ASCII line chart of one or more series over a shared x axis —
/// the terminal rendition of the paper's figures that the bench harnesses
/// print next to the numeric tables. Each series uses its own glyph
/// ('*', '+', 'o', 'x', ...); y is auto-scaled with min/max labels and a
/// legend line is appended. x must be non-empty and strictly increasing.
std::string RenderAsciiChart(const std::vector<double>& x,
                             const std::vector<ChartSeries>& series,
                             size_t width = 64, size_t height = 16);

}  // namespace cohere

#endif  // COHERE_EVAL_REPORT_H_
