#include "eval/sweep.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "index/knn.h"

namespace cohere {

size_t DimensionSweepResult::BestDims() const {
  COHERE_CHECK(!points.empty());
  size_t best = points[0].dims;
  double best_acc = points[0].accuracy;
  for (const SweepPoint& p : points) {
    if (p.accuracy > best_acc ||
        (p.accuracy == best_acc && p.dims < best)) {
      best = p.dims;
      best_acc = p.accuracy;
    }
  }
  return best;
}

double DimensionSweepResult::BestAccuracy() const {
  COHERE_CHECK(!points.empty());
  double best = points[0].accuracy;
  for (const SweepPoint& p : points) best = std::max(best, p.accuracy);
  return best;
}

double DimensionSweepResult::LastAccuracy() const {
  COHERE_CHECK(!points.empty());
  return points.back().accuracy;
}

DimensionSweepResult SweepPredictionAccuracy(
    const Matrix& scores, const std::vector<int>& labels, size_t k,
    const std::vector<size_t>& dims_to_eval) {
  const size_t n = scores.rows();
  const size_t d = scores.cols();
  COHERE_CHECK_EQ(labels.size(), n);
  COHERE_CHECK_GT(n, 1u);
  COHERE_CHECK_GE(k, 1u);
  COHERE_CHECK(!dims_to_eval.empty());
  COHERE_CHECK(std::is_sorted(dims_to_eval.begin(), dims_to_eval.end()));
  COHERE_CHECK_GE(dims_to_eval.front(), 1u);
  COHERE_CHECK_LE(dims_to_eval.back(), d);

  // Accumulated squared distances over the first m columns, full n x n for
  // cheap per-query scans (the diagonal stays zero and is skipped).
  Matrix dist_sq(n, n);

  DimensionSweepResult result;
  size_t next_eval = 0;
  for (size_t m = 1; m <= d && next_eval < dims_to_eval.size(); ++m) {
    const size_t col = m - 1;
    for (size_t i = 0; i < n; ++i) {
      const double vi = scores.At(i, col);
      double* row = dist_sq.RowPtr(i);
      for (size_t j = i + 1; j < n; ++j) {
        const double diff = vi - scores.At(j, col);
        row[j] += diff * diff;
      }
    }

    if (dims_to_eval[next_eval] != m) continue;
    ++next_eval;

    size_t matches = 0;
    size_t slots = 0;
    for (size_t i = 0; i < n; ++i) {
      KnnCollector collector(k);
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double dsq = i < j ? dist_sq.At(i, j) : dist_sq.At(j, i);
        collector.Offer(j, dsq);
      }
      for (const Neighbor& nb : collector.Take()) {
        ++slots;
        if (labels[nb.index] == labels[i]) ++matches;
      }
    }
    result.points.push_back(
        {m, static_cast<double>(matches) / static_cast<double>(slots)});
  }
  return result;
}

std::vector<size_t> MakeSweepDims(size_t d, size_t max_points) {
  COHERE_CHECK_GE(d, 1u);
  COHERE_CHECK_GE(max_points, 2u);
  std::vector<size_t> dims;
  if (d <= max_points) {
    for (size_t m = 1; m <= d; ++m) dims.push_back(m);
    return dims;
  }
  for (size_t i = 0; i < max_points; ++i) {
    const double frac =
        static_cast<double>(i) / static_cast<double>(max_points - 1);
    const size_t m =
        1 + static_cast<size_t>(frac * static_cast<double>(d - 1) + 0.5);
    if (dims.empty() || dims.back() != m) dims.push_back(m);
  }
  return dims;
}

}  // namespace cohere
