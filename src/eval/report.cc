#include "eval/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/check.h"

namespace cohere {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  COHERE_CHECK(!headers_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  COHERE_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&widths](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) line += "  ";
      line += cells[c];
      line.append(widths[c] - cells[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line.push_back('\n');
    return line;
  };

  std::string out = render_row(headers_);
  size_t underline_width = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    underline_width += widths[c] + (c > 0 ? 2 : 0);
  }
  out.append(underline_width, '-');
  out.push_back('\n');
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, 100.0 * fraction);
  return buf;
}

std::string RenderAsciiChart(const std::vector<double>& x,
                             const std::vector<ChartSeries>& series,
                             size_t width, size_t height) {
  COHERE_CHECK(!x.empty());
  COHERE_CHECK(!series.empty());
  COHERE_CHECK_GE(width, 8u);
  COHERE_CHECK_GE(height, 4u);
  for (const ChartSeries& s : series) {
    COHERE_CHECK_EQ(s.y.size(), x.size());
  }
  for (size_t i = 1; i < x.size(); ++i) COHERE_CHECK_GT(x[i], x[i - 1]);

  double y_lo = series[0].y[0];
  double y_hi = y_lo;
  for (const ChartSeries& s : series) {
    for (double v : s.y) {
      y_lo = std::min(y_lo, v);
      y_hi = std::max(y_hi, v);
    }
  }
  if (y_hi == y_lo) y_hi = y_lo + 1.0;
  const double x_lo = x.front();
  const double x_hi = x.back() == x.front() ? x.front() + 1.0 : x.back();

  static const char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@'};
  std::vector<std::string> grid(height, std::string(width, ' '));
  for (size_t s = 0; s < series.size(); ++s) {
    const char glyph = kGlyphs[s % sizeof(kGlyphs)];
    for (size_t i = 0; i < x.size(); ++i) {
      const size_t col = static_cast<size_t>(
          (x[i] - x_lo) / (x_hi - x_lo) * static_cast<double>(width - 1) +
          0.5);
      const size_t row_from_bottom = static_cast<size_t>(
          (series[s].y[i] - y_lo) / (y_hi - y_lo) *
              static_cast<double>(height - 1) +
          0.5);
      grid[height - 1 - row_from_bottom][col] = glyph;
    }
  }

  char label[32];
  std::string out;
  for (size_t r = 0; r < height; ++r) {
    if (r == 0) {
      std::snprintf(label, sizeof(label), "%9.4g |", y_hi);
    } else if (r == height - 1) {
      std::snprintf(label, sizeof(label), "%9.4g |", y_lo);
    } else {
      std::snprintf(label, sizeof(label), "%9s |", "");
    }
    out += label;
    out += grid[r];
    out += '\n';
  }
  out += std::string(10, ' ') + '+' + std::string(width, '-') + '\n';
  {
    char lo_label[32];
    char hi_label[32];
    std::snprintf(lo_label, sizeof(lo_label), "%.4g", x_lo);
    std::snprintf(hi_label, sizeof(hi_label), "%.4g", x_hi);
    std::string axis(11, ' ');
    axis += lo_label;
    const size_t hi_col = 11 + width - std::string(hi_label).size();
    if (axis.size() < hi_col) axis.append(hi_col - axis.size(), ' ');
    axis += hi_label;
    out += axis + '\n';
  }
  out += "          ";
  for (size_t s = 0; s < series.size(); ++s) {
    if (s > 0) out += "   ";
    out += kGlyphs[s % sizeof(kGlyphs)];
    out += " = " + series[s].label;
  }
  out += '\n';
  return out;
}

Status WriteSeriesCsv(const std::string& path,
                      const std::vector<std::string>& column_names,
                      const std::vector<std::vector<double>>& columns) {
  if (column_names.size() != columns.size()) {
    return Status::InvalidArgument("column name/data count mismatch");
  }
  if (columns.empty()) {
    return Status::InvalidArgument("no columns to write");
  }
  const size_t rows = columns[0].size();
  for (const auto& col : columns) {
    if (col.size() != rows) {
      return Status::InvalidArgument("columns are not equally sized");
    }
  }
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  for (size_t c = 0; c < column_names.size(); ++c) {
    if (c > 0) file << ',';
    file << column_names[c];
  }
  file << '\n';
  file.precision(12);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      if (c > 0) file << ',';
      file << columns[c][r];
    }
    file << '\n';
  }
  if (!file) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace cohere
