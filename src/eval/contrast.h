#ifndef COHERE_EVAL_CONTRAST_H_
#define COHERE_EVAL_CONTRAST_H_

#include <cstddef>

#include "index/metric.h"
#include "linalg/matrix.h"
#include "stats/rng.h"

namespace cohere {

/// Distance-contrast statistics of a point set — the Beyer et al. [5]
/// meaningfulness probe behind the paper's Section 1.1: as dimensionality
/// grows, (Dmax - Dmin)/Dmin collapses toward zero and nearest-neighbor
/// queries stop discriminating.
struct ContrastResult {
  /// Mean over queries of (Dmax - Dmin) / Dmin.
  double mean_relative_contrast = 0.0;
  /// Median of the same quantity.
  double median_relative_contrast = 0.0;
  /// Mean over queries of Dmax / Dmin.
  double mean_ratio = 0.0;
  size_t num_queries = 0;
};

/// Evaluates the contrast of `data` using up to `num_queries` of its own
/// rows as query points (each excluded from its own distance scan; sampled
/// without replacement when fewer than all rows are used). Requires at
/// least 2 rows and Dmin > 0 for each sampled query; degenerate queries
/// (duplicate points) are skipped.
ContrastResult RelativeContrast(const Matrix& data, const Metric& metric,
                                size_t num_queries, Rng* rng);

}  // namespace cohere

#endif  // COHERE_EVAL_CONTRAST_H_
