#include "eval/knn_quality.h"

#include "common/check.h"
#include "index/linear_scan.h"

namespace cohere {

double KnnPredictionAccuracy(const Matrix& features,
                             const std::vector<int>& labels, size_t k,
                             const Metric& metric) {
  LinearScanIndex index(features, &metric);
  return KnnPredictionAccuracy(index, features, labels, k);
}

double KnnPredictionAccuracy(const KnnIndex& index, const Matrix& queries,
                             const std::vector<int>& labels, size_t k) {
  const size_t n = index.size();
  COHERE_CHECK_EQ(queries.rows(), n);
  COHERE_CHECK_EQ(labels.size(), n);
  COHERE_CHECK_GE(k, 1u);
  COHERE_CHECK_GT(n, 1u);

  size_t matches = 0;
  size_t slots = 0;
  for (size_t i = 0; i < n; ++i) {
    const std::vector<Neighbor> neighbors =
        index.Query(queries.Row(i), k, /*skip_index=*/i, nullptr);
    for (const Neighbor& nb : neighbors) {
      ++slots;
      if (labels[nb.index] == labels[i]) ++matches;
    }
  }
  COHERE_CHECK_GT(slots, 0u);
  return static_cast<double>(matches) / static_cast<double>(slots);
}

NeighborOverlap ReducedSpaceOverlap(const Matrix& full_features,
                                    const Matrix& reduced_features, size_t k,
                                    const Metric& metric) {
  const size_t n = full_features.rows();
  COHERE_CHECK_EQ(reduced_features.rows(), n);
  COHERE_CHECK_GE(k, 1u);
  COHERE_CHECK_GT(n, 1u);

  LinearScanIndex full_index(full_features, &metric);
  LinearScanIndex reduced_index(reduced_features, &metric);

  double overlap_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const std::vector<Neighbor> full =
        full_index.Query(full_features.Row(i), k, i, nullptr);
    const std::vector<Neighbor> reduced =
        reduced_index.Query(reduced_features.Row(i), k, i, nullptr);
    size_t overlap = 0;
    for (const Neighbor& a : reduced) {
      for (const Neighbor& b : full) {
        if (a.index == b.index) {
          ++overlap;
          break;
        }
      }
    }
    overlap_sum +=
        static_cast<double>(overlap) / static_cast<double>(full.size());
  }

  NeighborOverlap out;
  out.k = k;
  out.precision = overlap_sum / static_cast<double>(n);
  out.recall = out.precision;  // identical when both sides return k answers
  return out;
}

}  // namespace cohere
