#ifndef COHERE_EVAL_SWEEP_H_
#define COHERE_EVAL_SWEEP_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace cohere {

/// One evaluated point of a retained-dimensionality sweep.
struct SweepPoint {
  size_t dims = 0;
  double accuracy = 0.0;
};

/// Result of sweeping prediction accuracy against the number of retained
/// dimensions — the data behind the paper's Figures 5, 8, 11, 13 and 15.
struct DimensionSweepResult {
  std::vector<SweepPoint> points;

  /// Dimensionality with the highest accuracy (smallest dims on ties).
  size_t BestDims() const;
  /// Highest accuracy over the sweep.
  double BestAccuracy() const;
  /// Accuracy of the largest evaluated dimensionality (the full space when
  /// the sweep includes it).
  double LastAccuracy() const;
};

/// Sweeps leave-one-out k-NN prediction accuracy (Euclidean metric) over
/// growing prefixes of the columns of `scores`.
///
/// `scores` is an n x d matrix whose columns are the records' coordinates
/// along the retained directions *in retention order* (e.g. the output of
/// PcaModel::TransformRows with columns permuted by a selection ordering).
/// For each m in `dims_to_eval` (ascending, each in [1, d]) the accuracy of
/// the first m columns is computed. Squared distances are accumulated
/// incrementally across the sweep, so the whole curve costs one O(n^2 d)
/// pass instead of O(n^2 d^2).
DimensionSweepResult SweepPredictionAccuracy(
    const Matrix& scores, const std::vector<int>& labels, size_t k,
    const std::vector<size_t>& dims_to_eval);

/// Convenience: every dimensionality 1..d when d <= max_points, otherwise
/// ~max_points values evenly spread over [1, d] (always including 1 and d).
std::vector<size_t> MakeSweepDims(size_t d, size_t max_points = 64);

}  // namespace cohere

#endif  // COHERE_EVAL_SWEEP_H_
