#include "eval/contrast.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"
#include "stats/descriptive.h"

namespace cohere {

ContrastResult RelativeContrast(const Matrix& data, const Metric& metric,
                                size_t num_queries, Rng* rng) {
  const size_t n = data.rows();
  COHERE_CHECK_GT(n, 1u);
  COHERE_CHECK_GE(num_queries, 1u);

  std::vector<size_t> query_rows;
  if (num_queries >= n) {
    query_rows.resize(n);
    for (size_t i = 0; i < n; ++i) query_rows[i] = i;
  } else {
    query_rows = rng->SampleWithoutReplacement(n, num_queries);
  }

  std::vector<double> contrasts;
  std::vector<double> ratios;
  Vector query(data.cols());
  Vector row(data.cols());
  for (size_t q : query_rows) {
    const double* qsrc = data.RowPtr(q);
    std::copy(qsrc, qsrc + data.cols(), query.data());
    double dmin = std::numeric_limits<double>::infinity();
    double dmax = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (j == q) continue;
      const double* src = data.RowPtr(j);
      std::copy(src, src + data.cols(), row.data());
      const double dist = metric.Distance(query, row);
      dmin = std::min(dmin, dist);
      dmax = std::max(dmax, dist);
    }
    if (dmin <= 0.0) continue;  // duplicate point; contrast undefined
    contrasts.push_back((dmax - dmin) / dmin);
    ratios.push_back(dmax / dmin);
  }

  ContrastResult out;
  out.num_queries = contrasts.size();
  if (contrasts.empty()) return out;
  const Vector contrast_vec{std::vector<double>(contrasts)};
  out.mean_relative_contrast = Mean(contrast_vec);
  out.median_relative_contrast = Median(contrast_vec);
  out.mean_ratio = Mean(Vector{std::vector<double>(ratios)});
  return out;
}

}  // namespace cohere
