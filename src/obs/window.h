#ifndef COHERE_OBS_WINDOW_H_
#define COHERE_OBS_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "obs/metrics.h"

namespace cohere {
namespace obs {

/// Rolling time windows over the cumulative registry metrics, so "p99 over
/// the last 60 seconds" is answerable without resetting process-wide state.
///
/// The registry's counters and histograms only ever accumulate (see
/// DESIGN.md §7); a window is therefore a *pair of cumulative snapshots*:
/// the current one minus the one taken at the window's start. RollingWindow
/// maintains that start snapshot incrementally: time is divided into
/// fixed-width buckets, a boundary snapshot is pinned at the start of each
/// bucket, and the window of the last N buckets subtracts the boundary at
/// the window's start bucket from a fresh snapshot. Observations recorded
/// between two Advance() calls attribute to the bucket that was current
/// when they were recorded (they are included in every later boundary).
///
/// The clock is injectable so tests drive rotation deterministically; the
/// default reads the monotonic steady clock in microseconds. Instances are
/// NOT thread-safe — they are reader-side bookkeeping (an exporter or CLI
/// owns one), while the underlying histogram keeps taking lock-free writes
/// from any thread.

/// Monotonic microsecond clock. An empty function means steady_clock.
using WindowClock = std::function<uint64_t()>;

struct RollingWindowOptions {
  /// Buckets retained; the window covers the current bucket plus the
  /// num_buckets - 1 before it.
  size_t num_buckets = 6;
  /// Width of one bucket in microseconds (default: 10s buckets, so the
  /// default window answers "the last 60 seconds").
  uint64_t bucket_width_us = 10u * 1000u * 1000u;
};

namespace internal {

/// Bucket-rotation bookkeeping shared by the histogram and counter windows:
/// a deque of (bucket sequence number, cumulative snapshot) boundaries, one
/// per bucket start, bounded by the window length.
template <typename Snapshot>
class WindowBoundaries {
 public:
  WindowBoundaries(size_t num_buckets, uint64_t bucket_width_us)
      : num_buckets_(num_buckets == 0 ? 1 : num_buckets),
        width_us_(bucket_width_us == 0 ? 1 : bucket_width_us) {}

  /// Rotates to the bucket containing `now_us`, pinning `snap()` as the
  /// boundary of every bucket entered since the last call. A gap of at
  /// least the window length drops every retained boundary: the skipped
  /// buckets are empty by construction, and everything recorded before the
  /// gap has rotated out of the window.
  template <typename SnapFn>
  void Advance(uint64_t now_us, SnapFn snap) {
    const uint64_t seq = now_us / width_us_;
    if (!initialized_) {
      initialized_ = true;
      current_ = seq;
      boundaries_.push_back({seq, snap()});
      return;
    }
    // A clock that stalls (or steps backwards) keeps the current bucket.
    if (seq <= current_) return;
    if (seq - current_ >= num_buckets_) {
      boundaries_.clear();
      boundaries_.push_back({seq, snap()});
    } else {
      const Snapshot cum = snap();
      for (uint64_t s = current_ + 1; s <= seq; ++s) {
        boundaries_.push_back({s, cum});
      }
    }
    current_ = seq;
    // Keep exactly one boundary at or before the window start (the
    // subtraction base); older ones can never be needed again.
    const uint64_t start = WindowStart();
    while (boundaries_.size() > 1 && boundaries_[1].seq <= start) {
      boundaries_.pop_front();
    }
  }

  /// The cumulative snapshot at the window's start: the newest boundary at
  /// or before the start bucket, else the oldest retained one (the window
  /// reaches back past construction, so everything since counts).
  const Snapshot& Base() const { return boundaries_.front().snapshot; }

  /// First bucket inside the window.
  uint64_t WindowStart() const {
    return current_ >= num_buckets_ - 1 ? current_ - (num_buckets_ - 1) : 0;
  }

  uint64_t current_bucket() const { return current_; }
  size_t boundary_count() const { return boundaries_.size(); }
  size_t num_buckets() const { return num_buckets_; }
  uint64_t bucket_width_us() const { return width_us_; }

 private:
  struct Boundary {
    uint64_t seq = 0;
    Snapshot snapshot;
  };

  size_t num_buckets_;
  uint64_t width_us_;
  std::deque<Boundary> boundaries_;
  uint64_t current_ = 0;
  bool initialized_ = false;
};

}  // namespace internal

/// Windowed view over one LatencyHistogram: quantiles/counts of only the
/// observations recorded during the last `num_buckets` buckets.
class RollingWindow {
 public:
  /// `histogram` must outlive the window (registry histograms always do).
  /// An empty `clock` uses the monotonic steady clock.
  RollingWindow(const LatencyHistogram* histogram,
                const RollingWindowOptions& options, WindowClock clock = {});

  /// Rotates buckets to the clock's current time and returns the interval
  /// bins covering the window (subtractable Bins, see LatencyHistogram).
  LatencyHistogram::Bins WindowBins();

  /// Quantile over the window, q in [0, 1]; NaN when the window is empty.
  double Quantile(double q) { return WindowBins().Quantile(q); }

  /// Observations recorded inside the window.
  uint64_t WindowCount() { return WindowBins().TotalCount(); }

  /// Rotates without reading (e.g. from a periodic tick).
  void Advance();

  /// Bucket sequence number of the current bucket (test visibility).
  uint64_t current_bucket() const { return state_.current_bucket(); }
  /// Retained boundary snapshots (test visibility).
  size_t boundary_count() const { return state_.boundary_count(); }

 private:
  uint64_t Now() const;

  const LatencyHistogram* histogram_;
  WindowClock clock_;
  internal::WindowBoundaries<LatencyHistogram::Bins> state_;
};

/// Windowed view over one Counter: the increment observed during the last
/// `num_buckets` buckets.
class RollingCounterWindow {
 public:
  RollingCounterWindow(const Counter* counter,
                       const RollingWindowOptions& options,
                       WindowClock clock = {});

  /// Rotates to the clock's current time and returns the counter's growth
  /// inside the window.
  uint64_t WindowValue();

  void Advance();

  uint64_t current_bucket() const { return state_.current_bucket(); }
  size_t boundary_count() const { return state_.boundary_count(); }

 private:
  uint64_t Now() const;

  const Counter* counter_;
  WindowClock clock_;
  internal::WindowBoundaries<uint64_t> state_;
};

}  // namespace obs
}  // namespace cohere

#endif  // COHERE_OBS_WINDOW_H_
