#include "obs/tracing.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <set>

#include "common/check.h"

namespace cohere {
namespace obs {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point since, Clock::time_point now) {
  return std::chrono::duration<double, std::micro>(now - since).count();
}

// SplitMix64: the sampling decision for the i-th root span hashes
// (seed, i) so the captured set is reproducible under a fixed seed.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Per-thread span context. The parent stack holds the ids of the open
// captured spans; `depth` counts every open span (captured or not) so the
// root/sampling decision stays correct past kMaxTraceDepth.
struct ThreadContext {
  uint64_t parent_stack[kMaxTraceDepth];
  size_t depth = 0;
  bool capturing = false;
};

ThreadContext& Context() {
  thread_local ThreadContext ctx;
  return ctx;
}

uint32_t CurrentTraceThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

std::atomic<bool> Tracer::enabled_{false};

struct Tracer::Impl {
  // One ring slot: payload plus a release-published ready flag so readers
  // can copy concurrently with writers without tearing.
  struct Slot {
    std::atomic<uint32_t> ready{0};
    SpanRecord record;
  };

  // Configuration (written only by Start, between workloads).
  TracerOptions options;
  Clock::time_point epoch = Clock::now();
  uint64_t sample_threshold_bits = 0;  // hash < threshold => captured

  // Ring buffer: fetch_add ticket per event; tickets >= capacity are
  // dropped (keep-oldest preserves parents of already-captured spans).
  std::unique_ptr<Slot[]> slots;
  size_t capacity = 0;
  std::atomic<uint64_t> next_slot{0};
  std::atomic<uint64_t> dropped{0};

  std::atomic<uint64_t> next_id{1};
  std::atomic<uint64_t> sample_seq{0};
  std::atomic<uint64_t> slow_count{0};

  // Slow-query log: slow roots are rare, so a small mutexed deque is fine.
  std::mutex slow_mu;
  std::deque<SpanRecord> slow_log;

  Counter* slow_queries_metric = nullptr;
};

Tracer::Impl& Tracer::impl() const {
  // Leaked for the same reason as MetricsRegistry: spans may close during
  // static destruction.
  static Impl* impl = new Impl();
  return *impl;
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Start(const TracerOptions& options) {
  Impl& state = impl();
  Stop();
  state.options = options;
  if (state.capacity != options.ring_capacity) {
    state.slots = std::make_unique<Impl::Slot[]>(options.ring_capacity);
    state.capacity = options.ring_capacity;
  }
  const double p = std::clamp(options.sample_probability, 0.0, 1.0);
  // Map probability onto the top 53 bits of the hash; 2^53 keeps the
  // comparison exact for p in {0, 1}.
  state.sample_threshold_bits =
      static_cast<uint64_t>(p * 9007199254740992.0);  // p * 2^53
  slow_query_us_.store(options.slow_query_us, std::memory_order_relaxed);
  state.slow_queries_metric =
      MetricsRegistry::Global().GetCounter("trace.slow_queries");
  Clear();
  state.epoch = Clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::EnableSlowQueryCapture(double slow_query_us) {
  if (!Enabled()) {
    TracerOptions options;
    options.sample_probability = 0.0;
    options.slow_query_us = slow_query_us;
    Start(options);
    return;
  }
  slow_query_us_.store(slow_query_us, std::memory_order_relaxed);
}

void Tracer::Clear() {
  Impl& state = impl();
  for (size_t i = 0; i < state.capacity; ++i) {
    state.slots[i].ready.store(0, std::memory_order_relaxed);
  }
  state.next_slot.store(0, std::memory_order_relaxed);
  state.dropped.store(0, std::memory_order_relaxed);
  state.next_id.store(1, std::memory_order_relaxed);
  state.sample_seq.store(0, std::memory_order_relaxed);
  state.slow_count.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state.slow_mu);
  state.slow_log.clear();
}

bool Tracer::SampleDecision() {
  Impl& state = impl();
  if (state.sample_threshold_bits >= 9007199254740992ULL) return true;
  if (state.sample_threshold_bits == 0) return false;
  const uint64_t seq =
      state.sample_seq.fetch_add(1, std::memory_order_relaxed);
  const uint64_t hash = SplitMix64(state.options.sample_seed ^
                                   (seq * 0x2545f4914f6cdd1dULL + 1));
  return (hash >> 11) < state.sample_threshold_bits;
}

void Tracer::OpenSpan(TraceSpan* span) {
  Impl& state = impl();
  if (state.capacity == 0) return;  // enabled without Start(): ignore
  ThreadContext& ctx = Context();
  span->opened_ = true;
  span->root_ = ctx.depth == 0;
  if (span->root_) ctx.capturing = SampleDecision();
  span->recorded_ = ctx.capturing && ctx.depth < kMaxTraceDepth;
  if (span->recorded_) {
    span->id_ = state.next_id.fetch_add(1, std::memory_order_relaxed);
    span->parent_id_ = span->root_ ? 0 : ctx.parent_stack[ctx.depth - 1];
    ctx.parent_stack[ctx.depth] = span->id_;
  }
  ++ctx.depth;
  // Roots are timed even when unsampled so the slow-query log can see them —
  // but only while a finite threshold makes that observable.
  const bool timed =
      span->recorded_ ||
      (span->root_ &&
       std::isfinite(slow_query_us_.load(std::memory_order_relaxed)));
  if (timed) {
    if (!span->has_start_) {
      span->start_ = Clock::now();
      span->has_start_ = true;
    }
    span->start_us_ = MicrosSince(state.epoch, span->start_);
  }
}

void Tracer::CloseSpan(TraceSpan* span) {
  Impl& state = impl();
  ThreadContext& ctx = Context();
  if (ctx.depth > 0) --ctx.depth;
  if (ctx.depth == 0) ctx.capturing = false;
  if (!span->recorded_ && !(span->root_ && span->has_start_)) return;

  const double duration_us = MicrosSince(span->start_, Clock::now());
  const bool slow =
      span->root_ &&
      duration_us >= slow_query_us_.load(std::memory_order_relaxed);

  SpanRecord record;
  record.name = span->name_;
  record.id = span->id_;
  record.parent_id = span->parent_id_;
  record.thread_id = CurrentTraceThreadId();
  record.slow = slow;
  record.start_us = span->start_us_;
  record.duration_us = duration_us;
  record.num_args = span->num_args_;
  for (size_t i = 0; i < span->num_args_; ++i) record.args[i] = span->args_[i];

  if (span->recorded_) {
    const uint64_t ticket =
        state.next_slot.fetch_add(1, std::memory_order_relaxed);
    if (ticket < state.capacity) {
      Impl::Slot& slot = state.slots[ticket];
      slot.record = record;
      slot.ready.store(1, std::memory_order_release);
    } else {
      state.dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (slow) {
    if (record.id == 0) {
      record.id = state.next_id.fetch_add(1, std::memory_order_relaxed);
    }
    RecordSlow(record);
  }
}

void Tracer::RecordSlow(const SpanRecord& record) {
  Impl& state = impl();
  state.slow_count.fetch_add(1, std::memory_order_relaxed);
  if (state.slow_queries_metric != nullptr && MetricsRegistry::Enabled()) {
    state.slow_queries_metric->Increment();
  }
  std::lock_guard<std::mutex> lock(state.slow_mu);
  state.slow_log.push_back(record);
  while (state.slow_log.size() > kSlowLogCapacity) {
    state.slow_log.pop_front();
  }
}

uint64_t Tracer::CapturedCount() const {
  Impl& state = impl();
  const uint64_t tickets = state.next_slot.load(std::memory_order_relaxed);
  return std::min<uint64_t>(tickets, state.capacity);
}

uint64_t Tracer::DroppedCount() const {
  return impl().dropped.load(std::memory_order_relaxed);
}

uint64_t Tracer::SlowCount() const {
  return impl().slow_count.load(std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::CapturedSpans() const {
  Impl& state = impl();
  const uint64_t n = CapturedCount();
  std::vector<SpanRecord> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    // Skip tickets whose writer has not published yet; acquire pairs with
    // the writer's release so the payload read is safe.
    if (state.slots[i].ready.load(std::memory_order_acquire) != 0) {
      out.push_back(state.slots[i].record);
    }
  }
  return out;
}

std::vector<SpanRecord> Tracer::SlowQueries() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.slow_mu);
  return {state.slow_log.begin(), state.slow_log.end()};
}

namespace {

void AppendChromeEvent(std::string* out, const SpanRecord& record, int pid,
                       bool first) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s    {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                "\"ts\": %.3f, \"dur\": %.3f, \"pid\": %d, \"tid\": %u, "
                "\"args\": {\"id\": %llu, \"parent\": %llu",
                first ? "" : ",\n", record.name,
                pid == 2 ? "cohere.slow" : "cohere", record.start_us,
                record.duration_us, pid, record.thread_id,
                static_cast<unsigned long long>(record.id),
                static_cast<unsigned long long>(record.parent_id));
  *out += buf;
  for (size_t i = 0; i < record.num_args; ++i) {
    std::snprintf(buf, sizeof(buf), ", \"%s\": %.6g", record.args[i].key,
                  record.args[i].value);
    *out += buf;
  }
  *out += "}}";
}

}  // namespace

std::string Tracer::ToChromeTraceJson() const {
  const std::vector<SpanRecord> spans = CapturedSpans();
  const std::vector<SpanRecord> slow = SlowQueries();

  std::string out = "{\n  \"traceEvents\": [\n";
  out +=
      "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"args\": {\"name\": \"cohere\"}},\n"
      "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 2, "
      "\"args\": {\"name\": \"cohere slow queries\"}}";
  for (const SpanRecord& record : spans) {
    AppendChromeEvent(&out, record, /*pid=*/1, /*first=*/false);
  }
  for (const SpanRecord& record : slow) {
    AppendChromeEvent(&out, record, /*pid=*/2, /*first=*/false);
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\n  ],\n  \"otherData\": {\"dropped_events\": %llu, "
                "\"slow_queries\": %llu},\n  \"displayTimeUnit\": \"ms\"\n}\n",
                static_cast<unsigned long long>(DroppedCount()),
                static_cast<unsigned long long>(SlowCount()));
  out += buf;
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace output file: " + path);
  }
  const std::string json = ToChromeTraceJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed) {
    return Status::IoError("short write to trace output file: " + path);
  }
  return Status::Ok();
}

const char* Tracer::InternName(const std::string& name) {
  struct Table {
    std::mutex mu;
    std::set<std::string> names;
  };
  // Leaked: interned pointers are embedded in ring records that may be
  // exported during static destruction.
  static Table* table = new Table();
  std::lock_guard<std::mutex> lock(table->mu);
  return table->names.insert(name).first->c_str();
}

namespace {

// COHERE_TRACE=1 starts the process tracing with full sampling;
// COHERE_TRACE_SLOW_US=<µs> starts (or augments) it with a slow-query
// threshold. With only the threshold set, sampling stays at 0 — the
// slow-query log alone is captured.
struct TracerEnvInit {
  TracerEnvInit() {
    const char* trace = std::getenv("COHERE_TRACE");
    const bool want_trace = trace != nullptr && std::strcmp(trace, "0") != 0 &&
                            std::strcmp(trace, "off") != 0;
    double slow_us = std::numeric_limits<double>::infinity();
    const char* slow = std::getenv("COHERE_TRACE_SLOW_US");
    if (slow != nullptr) {
      char* end = nullptr;
      const double parsed = std::strtod(slow, &end);
      if (end != slow && std::isfinite(parsed) && parsed >= 0.0) {
        slow_us = parsed;
      }
    }
    if (want_trace || std::isfinite(slow_us)) {
      TracerOptions options;
      options.sample_probability = want_trace ? 1.0 : 0.0;
      options.slow_query_us = slow_us;
      Tracer::Global().Start(options);
    }
  }
};
TracerEnvInit tracer_env_init;

}  // namespace

}  // namespace obs
}  // namespace cohere
