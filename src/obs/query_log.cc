#include "obs/query_log.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>

#include "obs/metrics.h"

namespace cohere {
namespace obs {

namespace {

using Clock = std::chrono::steady_clock;

// Same hash as the tracer's sampler: the decision for the i-th offered
// event is a pure function of (seed, i).
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::atomic<bool> QueryLog::enabled_{false};

struct QueryLog::Impl {
  // One ring slot: payload plus a release-published ready flag so readers
  // can copy concurrently with writers without tearing.
  struct Slot {
    std::atomic<uint32_t> ready{0};
    QueryEvent event;
  };

  // Configuration (written only by Start, between workloads).
  QueryLogOptions options;
  Clock::time_point epoch = Clock::now();
  uint64_t sample_threshold_bits = 0;  // hash < threshold => captured

  // Ring buffer: fetch_add ticket per sampled-in event; tickets >= capacity
  // are dropped (keep-oldest: the surviving prefix is an unbiased head).
  std::unique_ptr<Slot[]> slots;
  size_t capacity = 0;
  std::atomic<uint64_t> next_slot{0};
  std::atomic<uint64_t> dropped{0};

  std::atomic<uint64_t> offered{0};
  std::atomic<uint64_t> sampled_out{0};

  // Registry counters mirroring the local accounting, so the drop rate is
  // visible in every exposition format without draining the ring.
  Counter* events_metric = nullptr;
  Counter* dropped_metric = nullptr;
  Counter* sampled_out_metric = nullptr;
};

QueryLog::Impl& QueryLog::impl() const {
  // Leaked for the same reason as MetricsRegistry: queries may complete
  // during static destruction.
  static Impl* impl = new Impl();
  return *impl;
}

QueryLog& QueryLog::Global() {
  static QueryLog* log = new QueryLog();
  return *log;
}

void QueryLog::Start(const QueryLogOptions& options) {
  Impl& state = impl();
  Stop();
  state.options = options;
  if (state.capacity != options.ring_capacity) {
    state.slots = std::make_unique<Impl::Slot[]>(options.ring_capacity);
    state.capacity = options.ring_capacity;
  }
  const double p = std::min(std::max(options.sample_probability, 0.0), 1.0);
  // Top 53 hash bits against p * 2^53; exact for p in {0, 1}.
  state.sample_threshold_bits = static_cast<uint64_t>(p * 9007199254740992.0);
  state.events_metric = MetricsRegistry::Global().GetCounter("query_log.events");
  state.dropped_metric =
      MetricsRegistry::Global().GetCounter("query_log.dropped");
  state.sampled_out_metric =
      MetricsRegistry::Global().GetCounter("query_log.sampled_out");
  Clear();
  state.epoch = Clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void QueryLog::Stop() { enabled_.store(false, std::memory_order_relaxed); }

void QueryLog::Clear() {
  Impl& state = impl();
  for (size_t i = 0; i < state.capacity; ++i) {
    state.slots[i].ready.store(0, std::memory_order_relaxed);
  }
  state.next_slot.store(0, std::memory_order_relaxed);
  state.dropped.store(0, std::memory_order_relaxed);
  state.offered.store(0, std::memory_order_relaxed);
  state.sampled_out.store(0, std::memory_order_relaxed);
}

void QueryLog::Record(QueryEvent event) {
  Impl& state = impl();
  if (state.capacity == 0) return;  // enabled without Start(): ignore
  const bool metrics_on =
      state.events_metric != nullptr && MetricsRegistry::Enabled();
  const uint64_t seq = state.offered.fetch_add(1, std::memory_order_relaxed);
  bool keep = true;
  if (state.sample_threshold_bits >= 9007199254740992ULL) {
    keep = true;
  } else if (state.sample_threshold_bits == 0) {
    keep = false;
  } else {
    const uint64_t hash = SplitMix64(state.options.sample_seed ^
                                     (seq * 0x2545f4914f6cdd1dULL + 1));
    keep = (hash >> 11) < state.sample_threshold_bits;
  }
  if (!keep) {
    state.sampled_out.fetch_add(1, std::memory_order_relaxed);
    if (metrics_on) state.sampled_out_metric->Increment();
    return;
  }
  event.sequence = seq;
  event.t_us = std::chrono::duration<double, std::micro>(Clock::now() -
                                                         state.epoch)
                   .count();
  const uint64_t ticket =
      state.next_slot.fetch_add(1, std::memory_order_relaxed);
  if (ticket < state.capacity) {
    Impl::Slot& slot = state.slots[ticket];
    slot.event = event;
    slot.ready.store(1, std::memory_order_release);
    if (metrics_on) state.events_metric->Increment();
  } else {
    state.dropped.fetch_add(1, std::memory_order_relaxed);
    if (metrics_on) state.dropped_metric->Increment();
  }
}

uint64_t QueryLog::OfferedCount() const {
  return impl().offered.load(std::memory_order_relaxed);
}

uint64_t QueryLog::CapturedCount() const {
  Impl& state = impl();
  const uint64_t tickets = state.next_slot.load(std::memory_order_relaxed);
  return std::min<uint64_t>(tickets, state.capacity);
}

uint64_t QueryLog::DroppedCount() const {
  return impl().dropped.load(std::memory_order_relaxed);
}

uint64_t QueryLog::SampledOutCount() const {
  return impl().sampled_out.load(std::memory_order_relaxed);
}

std::vector<QueryEvent> QueryLog::Events() const {
  Impl& state = impl();
  const uint64_t n = CapturedCount();
  std::vector<QueryEvent> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    // Acquire pairs with the writer's release so the payload read is safe;
    // unpublished tickets are skipped.
    if (state.slots[i].ready.load(std::memory_order_acquire) != 0) {
      out.push_back(state.slots[i].event);
    }
  }
  return out;
}

std::string QueryLog::ToJsonl() const {
  const std::vector<QueryEvent> events = Events();
  std::string out;
  out.reserve(events.size() * 200);
  char buf[512];
  for (const QueryEvent& e : events) {
    std::snprintf(
        buf, sizeof(buf),
        "{\"scope\": \"%s\", \"sequence\": %llu, \"snapshot_version\": %llu, "
        "\"t_us\": %.3f, \"k\": %u, \"cache_hit\": %s, \"truncated\": %s, "
        "\"distance_evaluations\": %llu, \"nodes_visited\": %llu, "
        "\"candidates_refined\": %llu, \"latency_us\": %.3f}\n",
        e.scope != nullptr ? e.scope : "",
        static_cast<unsigned long long>(e.sequence),
        static_cast<unsigned long long>(e.snapshot_version), e.t_us, e.k,
        e.cache_hit ? "true" : "false", e.truncated ? "true" : "false",
        static_cast<unsigned long long>(e.distance_evaluations),
        static_cast<unsigned long long>(e.nodes_visited),
        static_cast<unsigned long long>(e.candidates_refined), e.latency_us);
    out += buf;
  }
  return out;
}

Status QueryLog::WriteJsonl(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open query log output file: " + path);
  }
  const std::string jsonl = ToJsonl();
  const size_t written = std::fwrite(jsonl.data(), 1, jsonl.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != jsonl.size() || !closed) {
    return Status::IoError("short write to query log output file: " + path);
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace cohere
