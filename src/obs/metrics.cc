#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "common/check.h"
#include "common/fault.h"
#include "common/parallel.h"

namespace cohere {
namespace obs {

namespace {

// COHERE_METRICS=0 (or "off") starts the process with instrumentation
// disabled, mirroring the COHERE_THREADS convention; SetEnabled() can still
// flip it at runtime.
bool InitialEnabled() {
  const char* env = std::getenv("COHERE_METRICS");
  if (env == nullptr) return true;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0;
}

}  // namespace

std::atomic<bool> MetricsRegistry::enabled_{InitialEnabled()};

size_t CurrentThreadStripe() {
  // Round-robin assignment on first use gives adjacent pool lanes distinct
  // stripes, which is what matters for the QueryBatch fan-out.
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
  return stripe;
}

// --- LatencyHistogram -----------------------------------------------------

namespace {

// Atomically raises `slot` to at least `value`.
void AtomicMax(std::atomic<double>* slot, double value) {
  double current = slot->load(std::memory_order_relaxed);
  while (value > current &&
         !slot->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

size_t LatencyHistogram::BinFor(double value) {
  // NaN never reaches here (Record routes it to the non_finite counter);
  // treat it as underflow defensively anyway via the negated comparison.
  if (!(value > 0.0)) return 0;  // <= 0 and -inf underflow
  if (std::isinf(value)) return kNumBins - 1;
  int exp = 0;
  const double frac = std::frexp(value, &exp);  // value = frac * 2^exp
  if (exp < kMinExp) return 0;
  if (exp >= kMaxExp) return kNumBins - 1;
  // frac in [0.5, 1): sub-bucket by the leading mantissa bits.
  const size_t sub = std::min(
      kSubBuckets - 1,
      static_cast<size_t>((frac - 0.5) * 2.0 * static_cast<double>(kSubBuckets)));
  return 1 + static_cast<size_t>(exp - kMinExp) * kSubBuckets + sub;
}

double LatencyHistogram::BinLowerBound(size_t b) {
  COHERE_CHECK_LT(b, kNumBins);
  if (b == 0) return 0.0;
  const size_t t = b - 1;
  const int exp = kMinExp + static_cast<int>(t / kSubBuckets);
  const size_t sub = t % kSubBuckets;
  return std::ldexp(
      0.5 + 0.5 * static_cast<double>(sub) / static_cast<double>(kSubBuckets),
      exp);
}

double LatencyHistogram::BinUpperBound(size_t b) {
  COHERE_CHECK_LT(b, kNumBins);
  if (b == kNumBins - 1) return std::numeric_limits<double>::infinity();
  return BinLowerBound(b + 1);
}

void LatencyHistogram::RecordAt(size_t stripe_index, double value) {
  Stripe& stripe = stripes_[stripe_index];
  if (std::isnan(value)) {
    stripe.non_finite.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  stripe.bins[BinFor(value)].fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(value)) {
    stripe.sum.fetch_add(value, std::memory_order_relaxed);
    AtomicMax(&stripe.max, value);
  }
}

std::array<uint64_t, LatencyHistogram::kNumBins>
LatencyHistogram::MergedBins() const {
  std::array<uint64_t, kNumBins> merged{};
  for (const Stripe& s : stripes_) {
    for (size_t b = 0; b < kNumBins; ++b) {
      merged[b] += s.bins[b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

uint64_t LatencyHistogram::TotalCount() const {
  uint64_t total = 0;
  for (uint64_t c : MergedBins()) total += c;
  return total;
}

uint64_t LatencyHistogram::NonFiniteCount() const {
  uint64_t total = 0;
  for (const Stripe& s : stripes_) {
    total += s.non_finite.load(std::memory_order_relaxed);
  }
  return total;
}

double LatencyHistogram::Sum() const {
  double total = 0.0;
  for (const Stripe& s : stripes_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double LatencyHistogram::Max() const {
  double max = 0.0;
  for (const Stripe& s : stripes_) {
    max = std::max(max, s.max.load(std::memory_order_relaxed));
  }
  return max;
}

namespace {

// Shared quantile kernel over a merged bin table; `max_hint` closes the
// overflow bin (cumulative max for live reads, interval upper bound for
// snapshot deltas).
double QuantileFromBins(
    const std::array<uint64_t, LatencyHistogram::kNumBins>& bins, double q,
    double max_hint) {
  q = std::clamp(q, 0.0, 1.0);
  uint64_t total = 0;
  for (uint64_t c : bins) total += c;
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();

  // Rank of the requested quantile among the sorted observations, then
  // linear interpolation inside the bin that holds it.
  const double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < LatencyHistogram::kNumBins; ++b) {
    if (bins[b] == 0) continue;
    const uint64_t next = cumulative + bins[b];
    if (static_cast<double>(next) >= target) {
      const double lo = LatencyHistogram::BinLowerBound(b);
      double hi = LatencyHistogram::BinUpperBound(b);
      if (std::isinf(hi)) hi = std::max(lo, max_hint);  // overflow bin
      const double within =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(bins[b]);
      return lo + std::clamp(within, 0.0, 1.0) * (hi - lo);
    }
    cumulative = next;
  }
  // q == 0 with all mass above, or rounding: report the last populated bin.
  for (size_t b = LatencyHistogram::kNumBins; b-- > 0;) {
    if (bins[b] != 0) return LatencyHistogram::BinLowerBound(b);
  }
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace

double LatencyHistogram::Quantile(double q) const {
  return QuantileFromBins(MergedBins(), q, Max());
}

uint64_t LatencyHistogram::Bins::TotalCount() const {
  uint64_t total = 0;
  for (uint64_t c : bins) total += c;
  return total;
}

double LatencyHistogram::Bins::Mean() const {
  const uint64_t total = TotalCount();
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  return sum / static_cast<double>(total);
}

double LatencyHistogram::Bins::Quantile(double q) const {
  return QuantileFromBins(bins, q, max);
}

LatencyHistogram::Bins LatencyHistogram::SnapshotBins() const {
  Bins out;
  out.bins = MergedBins();
  out.non_finite = NonFiniteCount();
  out.sum = Sum();
  out.max = Max();
  return out;
}

LatencyHistogram::Bins LatencyHistogram::Delta(const Bins& before,
                                               const Bins& after) {
  Bins out;
  for (size_t b = 0; b < kNumBins; ++b) {
    // Cumulative counts are monotonic between snapshots of one histogram;
    // clamp defensively in case a Reset() slipped in between.
    out.bins[b] =
        after.bins[b] >= before.bins[b] ? after.bins[b] - before.bins[b] : 0;
  }
  out.non_finite = after.non_finite >= before.non_finite
                       ? after.non_finite - before.non_finite
                       : 0;
  out.sum = after.sum - before.sum;
  out.max = after.max;  // upper bound: the interval max is unrecoverable
  return out;
}

void LatencyHistogram::Reset() {
  for (Stripe& s : stripes_) {
    for (auto& bin : s.bins) bin.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
    s.max.store(0.0, std::memory_order_relaxed);
    s.non_finite.store(0, std::memory_order_relaxed);
  }
}

// --- MetricsRegistry ------------------------------------------------------

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // node-based maps: pointers to mapped values stay valid across inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  // Leaked singleton: metric pointers handed to instrumented code must stay
  // valid through static destruction.
  static Impl* impl = new Impl();
  return *impl;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  COHERE_CHECK_MSG(state.gauges.find(name) == state.gauges.end() &&
                       state.histograms.find(name) == state.histograms.end(),
                   "metric name registered with a different type");
  auto& slot = state.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(name);
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  COHERE_CHECK_MSG(state.counters.find(name) == state.counters.end() &&
                       state.histograms.find(name) == state.histograms.end(),
                   "metric name registered with a different type");
  auto& slot = state.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>(name);
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  COHERE_CHECK_MSG(state.counters.find(name) == state.counters.end() &&
                       state.gauges.find(name) == state.gauges.end(),
                   "metric name registered with a different type");
  auto& slot = state.histograms[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>(name);
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  MetricsSnapshot snapshot;
  // steady_clock so the stamp is monotonic across snapshots of one process;
  // the std::map iteration below guarantees name-sorted sections.
  snapshot.monotonic_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  snapshot.counters.reserve(state.counters.size());
  for (const auto& [name, counter] : state.counters) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  // Synthetic counters owned by cohere_common (which cannot link cohere_obs):
  // per-point fault triggers and pool task failures are merged here. Both
  // sets are empty in a fault-free process, so fault-free snapshots are
  // byte-identical to pre-fault builds.
  {
    bool appended = false;
    for (const fault::PointInfo& point : fault::Points()) {
      snapshot.counters.emplace_back("fault." + point.name + ".triggers",
                                     point.triggers);
      appended = true;
    }
    if (const uint64_t failures = ParallelTaskFailureCount(); failures > 0) {
      snapshot.counters.emplace_back("parallel.task_failures", failures);
      appended = true;
    }
    if (appended) {
      std::sort(snapshot.counters.begin(), snapshot.counters.end());
    }
  }
  snapshot.gauges.reserve(state.gauges.size());
  for (const auto& [name, gauge] : state.gauges) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(state.histograms.size());
  for (const auto& [name, histogram] : state.histograms) {
    const LatencyHistogram::Bins bins = histogram->SnapshotBins();
    HistogramSnapshot h;
    h.name = name;
    h.count = bins.TotalCount();
    h.non_finite = bins.non_finite;
    h.sum = bins.sum;
    h.max = bins.max;
    if (h.count > 0) {
      h.p50 = bins.Quantile(0.50);
      h.p95 = bins.Quantile(0.95);
      h.p99 = bins.Quantile(0.99);
    }
    // Cumulative buckets at every other power of two from 2^-4 to 2^22 µs
    // (62.5ns .. ~4.2s): the sub-bucket-0 bin starting at exactly 2^j sits
    // at internal index 1 + (j + 1 - kMinExp) * kSubBuckets (its frexp
    // exponent is j + 1), so each boundary aligns with an internal bin edge
    // and the counts are exact — every observation strictly below 2^j is in
    // the bins before that index.
    h.buckets.reserve(15);
    uint64_t cumulative = 0;
    size_t next_bin = 0;
    for (int j = -4; j <= 22; j += 2) {
      const size_t idx =
          1 + static_cast<size_t>(j + 1 - LatencyHistogram::kMinExp) *
                  LatencyHistogram::kSubBuckets;
      while (next_bin < idx) cumulative += bins.bins[next_bin++];
      h.buckets.emplace_back(std::ldexp(1.0, j), cumulative);
    }
    while (next_bin < LatencyHistogram::kNumBins) {
      cumulative += bins.bins[next_bin++];
    }
    h.buckets.emplace_back(std::numeric_limits<double>::infinity(),
                           cumulative);
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto& [name, counter] : state.counters) counter->Reset();
  for (auto& [name, gauge] : state.gauges) gauge->Reset();
  for (auto& [name, histogram] : state.histograms) histogram->Reset();
  // The synthetic counters merged into Snapshot() live in cohere_common;
  // reset them too so ResetAll means what it says.
  fault::ResetCounters();
  ResetParallelTaskFailureCount();
}

// --- snapshot rendering ---------------------------------------------------

namespace {

std::string FormatValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// JSON has no NaN/inf literals; export them as null.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  return FormatValue(v);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "snapshot: monotonic_us=%llu\n",
                static_cast<unsigned long long>(monotonic_us));
  out += buf;
  if (!counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : counters) {
      std::snprintf(buf, sizeof(buf), "  %-48s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out += buf;
    }
  }
  if (!gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, value] : gauges) {
      std::snprintf(buf, sizeof(buf), "  %-48s %s\n", name.c_str(),
                    FormatValue(value).c_str());
      out += buf;
    }
  }
  if (!histograms.empty()) {
    out += "histograms:\n";
    for (const HistogramSnapshot& h : histograms) {
      std::snprintf(buf, sizeof(buf),
                    "  %-48s count=%llu p50=%s p95=%s p99=%s max=%s\n",
                    h.name.c_str(), static_cast<unsigned long long>(h.count),
                    FormatValue(h.p50).c_str(), FormatValue(h.p95).c_str(),
                    FormatValue(h.p99).c_str(), FormatValue(h.max).c_str());
      out += buf;
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"snapshot\": {\"monotonic_us\": " +
                    std::to_string(monotonic_us) + "},\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) +
           "\": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": " + JsonNumber(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const HistogramSnapshot& h : histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(h.name) + "\": {\"count\": " +
           std::to_string(h.count) +
           ", \"non_finite\": " + std::to_string(h.non_finite) +
           ", \"sum\": " + JsonNumber(h.sum) +
           ", \"max\": " + JsonNumber(h.max) +
           ", \"p50\": " + JsonNumber(h.p50) +
           ", \"p95\": " + JsonNumber(h.p95) +
           ", \"p99\": " + JsonNumber(h.p99) + "}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

namespace {

// OpenMetrics metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. The `cohere_` prefix
// both namespaces the exposition and guarantees a legal first character;
// anything else in the dotted registry name becomes '_'.
std::string OpenMetricsName(const std::string& name) {
  std::string out = "cohere_";
  out.reserve(name.size() + 8);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

// Sample values: full round-trip precision, with the spec's spellings for
// the non-finite values.
std::string OpenMetricsNumber(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::ToOpenMetrics() const {
  std::string out;
  char buf[256];
  for (const auto& [name, value] : counters) {
    const std::string om = OpenMetricsName(name);
    out += "# TYPE " + om + " counter\n";
    out += "# HELP " + om + " " + name + "\n";
    std::snprintf(buf, sizeof(buf), "%s_total %llu\n", om.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const auto& [name, value] : gauges) {
    const std::string om = OpenMetricsName(name);
    out += "# TYPE " + om + " gauge\n";
    out += "# HELP " + om + " " + name + "\n";
    out += om + " " + OpenMetricsNumber(value) + "\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    const std::string om = OpenMetricsName(h.name);
    out += "# TYPE " + om + " histogram\n";
    out += "# HELP " + om + " " + h.name + " (microseconds)\n";
    for (const auto& [le, cumulative] : h.buckets) {
      std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%s\"} %llu\n",
                    om.c_str(), OpenMetricsNumber(le).c_str(),
                    static_cast<unsigned long long>(cumulative));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "%s_count %llu\n%s_sum %s\n", om.c_str(),
                  static_cast<unsigned long long>(h.count), om.c_str(),
                  OpenMetricsNumber(h.sum).c_str());
    out += buf;
  }
  out += "# EOF\n";
  return out;
}

// --- trace hooks ----------------------------------------------------------

namespace {

struct TraceHookState {
  std::mutex mu;
  TraceHookFn hook = nullptr;
  void* user_data = nullptr;
  std::atomic<bool> installed{false};
};

TraceHookState& TraceState() {
  static TraceHookState* state = new TraceHookState();
  return *state;
}

}  // namespace

void SetTraceHook(TraceHookFn hook, void* user_data) {
  TraceHookState& state = TraceState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.hook = hook;
  state.user_data = user_data;
  state.installed.store(hook != nullptr, std::memory_order_release);
}

bool TraceHookInstalled() {
  return TraceState().installed.load(std::memory_order_relaxed);
}

void EmitTraceEvent(const char* name, double duration_us) {
  TraceHookState& state = TraceState();
  if (!state.installed.load(std::memory_order_acquire)) return;
  TraceHookFn hook = nullptr;
  void* user_data = nullptr;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    hook = state.hook;
    user_data = state.user_data;
  }
  if (hook == nullptr) return;
  const TraceEvent event{name, duration_us};
  hook(event, user_data);
}

}  // namespace obs
}  // namespace cohere
