#include "obs/window.h"

#include <chrono>

namespace cohere {
namespace obs {
namespace {

uint64_t SteadyNowMicros() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace

RollingWindow::RollingWindow(const LatencyHistogram* histogram,
                             const RollingWindowOptions& options,
                             WindowClock clock)
    : histogram_(histogram),
      clock_(std::move(clock)),
      state_(options.num_buckets, options.bucket_width_us) {
  state_.Advance(Now(), [this] { return histogram_->SnapshotBins(); });
}

uint64_t RollingWindow::Now() const {
  return clock_ ? clock_() : SteadyNowMicros();
}

void RollingWindow::Advance() {
  state_.Advance(Now(), [this] { return histogram_->SnapshotBins(); });
}

LatencyHistogram::Bins RollingWindow::WindowBins() {
  Advance();
  return LatencyHistogram::Delta(state_.Base(), histogram_->SnapshotBins());
}

RollingCounterWindow::RollingCounterWindow(const Counter* counter,
                                           const RollingWindowOptions& options,
                                           WindowClock clock)
    : counter_(counter),
      clock_(std::move(clock)),
      state_(options.num_buckets, options.bucket_width_us) {
  state_.Advance(Now(), [this] { return counter_->Value(); });
}

uint64_t RollingCounterWindow::Now() const {
  return clock_ ? clock_() : SteadyNowMicros();
}

void RollingCounterWindow::Advance() {
  state_.Advance(Now(), [this] { return counter_->Value(); });
}

uint64_t RollingCounterWindow::WindowValue() {
  Advance();
  const uint64_t now_value = counter_->Value();
  const uint64_t base = state_.Base();
  return now_value >= base ? now_value - base : 0;
}

}  // namespace obs
}  // namespace cohere
