#ifndef COHERE_OBS_TRACING_H_
#define COHERE_OBS_TRACING_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace cohere {
namespace obs {

/// Structured tracing: nested spans with parent linkage, captured into a
/// lock-free bounded ring buffer and exportable as Chrome `trace_event`
/// JSON (loadable in Perfetto / chrome://tracing).
///
/// This grows the PR-2 trace hook (obs/metrics.h, `SetTraceHook`) into a
/// real subsystem. Design constraints mirror the metrics layer (see
/// DESIGN.md §7):
///  * with the tracer disabled a `TraceSpan` costs two relaxed atomic loads
///    and touches no clock — the query path stays bit-identical to the
///    uninstrumented one;
///  * span capture is decided once per *root* span (probabilistic sampling,
///    deterministic under a fixed seed); child spans inherit the decision
///    through a thread-local context, so unsampled trees do no work beyond
///    depth bookkeeping;
///  * independently of sampling, every root span slower than the slow-query
///    threshold (`EngineOptions::trace_slow_query_us` or the
///    `COHERE_TRACE_SLOW_US` environment variable) is always captured into a
///    dedicated slow-query log;
///  * writers are pool threads on the query hot path, so the ring buffer is
///    lock-free multi-producer (one fetch_add ticket + one release store per
///    event) and never blocks; when full, new events are dropped and
///    counted, preserving the already-captured parents.

class TraceSpan;

/// One numeric key/value attached to a span ("k", "distance_evaluations").
/// Keys must be string literals or interned names (process lifetime).
struct TraceArg {
  const char* key = nullptr;
  double value = 0.0;
};

/// Maximum args carried per span; extra AddArg calls are ignored.
inline constexpr size_t kMaxSpanArgs = 2;

/// Nesting depth tracked per thread; deeper spans are not captured (still
/// correctly paired, just absent from the output).
inline constexpr size_t kMaxTraceDepth = 32;

/// One completed span, as stored in the ring buffer and returned by
/// CapturedSpans()/SlowQueries().
struct SpanRecord {
  const char* name = nullptr;  ///< Static or interned span name.
  uint64_t id = 0;             ///< Unique per tracer epoch, starts at 1.
  uint64_t parent_id = 0;      ///< 0 for root spans.
  uint32_t thread_id = 0;      ///< Small stable per-thread id (1, 2, ...).
  bool slow = false;           ///< Crossed the slow-query threshold.
  double start_us = 0.0;       ///< Microseconds since the tracer epoch.
  double duration_us = 0.0;    ///< Wall time the span covered.
  TraceArg args[kMaxSpanArgs];
  size_t num_args = 0;
};

/// Configuration for Tracer::Start.
struct TracerOptions {
  /// Capacity of the span ring buffer. When full, further events are
  /// dropped (and counted) rather than overwriting captured parents.
  size_t ring_capacity = 1 << 14;
  /// Probability that a root span (and with it its whole subtree) is
  /// captured. 1 captures everything, 0 only the slow-query log.
  double sample_probability = 1.0;
  /// Root spans at least this slow (µs) are always captured into the
  /// slow-query log, regardless of sampling. +inf disables the log.
  double slow_query_us = std::numeric_limits<double>::infinity();
  /// Seed for the sampling decision sequence: the i-th root span's decision
  /// is a pure function of (seed, i), so runs with a fixed seed and a
  /// deterministic span order capture identical sets.
  uint64_t sample_seed = 0;
};

/// Process-wide tracing facility. `Start` resets all buffers and enables
/// span capture; `Stop` disables capture but keeps captured events around
/// for export. Start/Stop/Clear must not race live spans (configure between
/// workloads); span *emission* itself is thread-safe and lock-free.
///
/// Environment: `COHERE_TRACE=1` starts the process with full sampling;
/// `COHERE_TRACE_SLOW_US=<µs>` starts it in slow-query-only mode (sampling
/// probability 0) with the given threshold. Both combine.
class Tracer {
 public:
  static Tracer& Global();

  void Start(const TracerOptions& options);
  void Stop();

  /// Hot-path switch; one relaxed load.
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Adjusts the slow-query threshold of a running tracer; when the tracer
  /// is disabled, starts it in slow-query-only mode with this threshold
  /// (this is what `EngineOptions::trace_slow_query_us` calls).
  void EnableSlowQueryCapture(double slow_query_us);
  double slow_query_threshold_us() const {
    return slow_query_us_.load(std::memory_order_relaxed);
  }

  /// Events captured in the ring this epoch.
  uint64_t CapturedCount() const;
  /// Events rejected because the ring was full.
  uint64_t DroppedCount() const;
  /// Root spans that crossed the slow-query threshold.
  uint64_t SlowCount() const;

  /// Copies the captured ring events, in capture order. Safe to call while
  /// writers are active (in-flight events may be missed, never torn).
  std::vector<SpanRecord> CapturedSpans() const;
  /// Copies the slow-query log (most recent kSlowLogCapacity roots).
  std::vector<SpanRecord> SlowQueries() const;

  /// Renders ring + slow-log events as a Chrome trace_event JSON document:
  /// complete ("ph":"X") events, timestamps in microseconds, ring events
  /// under pid 1 and slow-query events under pid 2 so Perfetto shows the
  /// slow log as its own process group.
  std::string ToChromeTraceJson() const;
  /// Writes ToChromeTraceJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

  /// Drops all captured events and restarts ids/sampling sequence. Must not
  /// race live spans.
  void Clear();

  /// Interns a dynamically built span name ("index.kd_tree.query"),
  /// returning a pointer valid for the process lifetime. Intern once at
  /// build time, not per span.
  static const char* InternName(const std::string& name);

  static constexpr size_t kSlowLogCapacity = 256;

 private:
  friend class TraceSpan;
  Tracer() = default;

  void OpenSpan(TraceSpan* span);
  void CloseSpan(TraceSpan* span);
  bool SampleDecision();
  void RecordSlow(const SpanRecord& record);

  struct Impl;
  Impl& impl() const;

  std::atomic<double> slow_query_us_{
      std::numeric_limits<double>::infinity()};
  static std::atomic<bool> enabled_;
};

/// RAII span. Opens on construction when the tracer is enabled (and/or the
/// legacy PR-2 trace hook is installed — completed spans are still
/// delivered to it), closes and publishes on destruction.
///
/// Cost: disabled, two relaxed loads and no clock access; enabled but
/// unsampled, clock reads on root spans only (needed for the slow-query
/// log) plus depth bookkeeping.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : name_(name) {
    hook_armed_ = TraceHookInstalled();
    if (hook_armed_) {
      start_ = std::chrono::steady_clock::now();
      has_start_ = true;
    }
    if (Tracer::Enabled()) Tracer::Global().OpenSpan(this);
  }
  ~TraceSpan() {
    if (opened_) Tracer::Global().CloseSpan(this);
    if (hook_armed_) {
      EmitTraceEvent(
          name_,
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - start_)
              .count());
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric arg to a captured span; no-op when the span is not
  /// being recorded. `key` must outlive the tracer epoch (string literal or
  /// interned name).
  void AddArg(const char* key, double value) {
    if (!recorded_ || num_args_ >= kMaxSpanArgs) return;
    args_[num_args_++] = {key, value};
  }

  /// True when this span is being captured into the ring (sampled root or
  /// descendant of one). Lets callers skip arg computation.
  bool recording() const { return recorded_; }

 private:
  friend class Tracer;

  const char* name_;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  std::chrono::steady_clock::time_point start_{};
  double start_us_ = 0.0;
  TraceArg args_[kMaxSpanArgs];
  uint8_t num_args_ = 0;
  bool hook_armed_ = false;
  bool has_start_ = false;
  bool opened_ = false;    ///< Participates in the thread's span stack.
  bool recorded_ = false;  ///< Will be pushed into the ring on close.
  bool root_ = false;
};

}  // namespace obs
}  // namespace cohere

#endif  // COHERE_OBS_TRACING_H_
