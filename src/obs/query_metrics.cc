#include "obs/query_metrics.h"

#include <map>
#include <memory>
#include <mutex>

namespace cohere {
namespace obs {

const QueryPathMetrics& QueryPathMetricsFor(const std::string& scope) {
  struct Table {
    std::mutex mu;
    std::map<std::string, std::unique_ptr<QueryPathMetrics>> bundles;
  };
  // Leaked for the same reason as the registry: cached bundle pointers must
  // survive static destruction.
  static Table* table = new Table();

  std::lock_guard<std::mutex> lock(table->mu);
  auto& slot = table->bundles[scope];
  if (slot == nullptr) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    auto bundle = std::make_unique<QueryPathMetrics>();
    bundle->queries = registry.GetCounter(scope + ".queries");
    bundle->distance_evaluations =
        registry.GetCounter(scope + ".distance_evaluations");
    bundle->nodes_visited = registry.GetCounter(scope + ".nodes_visited");
    bundle->candidates_refined =
        registry.GetCounter(scope + ".candidates_refined");
    bundle->query_latency_us =
        registry.GetHistogram(scope + ".query_latency_us");
    slot = std::move(bundle);
  }
  return *slot;
}

ServingPathMetrics ServingPathMetricsFor(const std::string& scope) {
  ServingPathMetrics bundle;
  bundle.query = &QueryPathMetricsFor(scope);
  bundle.batch_latency_us =
      MetricsRegistry::Global().GetHistogram(scope + ".batch_latency_us");
  return bundle;
}

}  // namespace obs
}  // namespace cohere
