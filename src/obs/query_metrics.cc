#include "obs/query_metrics.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

namespace cohere {
namespace obs {

const QueryPathMetrics& QueryPathMetricsFor(const std::string& scope) {
  struct Table {
    std::mutex mu;
    std::map<std::string, std::unique_ptr<QueryPathMetrics>> bundles;
  };
  // Leaked for the same reason as the registry: cached bundle pointers must
  // survive static destruction.
  static Table* table = new Table();

  std::lock_guard<std::mutex> lock(table->mu);
  auto& slot = table->bundles[scope];
  if (slot == nullptr) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    auto bundle = std::make_unique<QueryPathMetrics>();
    bundle->queries = registry.GetCounter(scope + ".queries");
    bundle->distance_evaluations =
        registry.GetCounter(scope + ".distance_evaluations");
    bundle->nodes_visited = registry.GetCounter(scope + ".nodes_visited");
    bundle->candidates_refined =
        registry.GetCounter(scope + ".candidates_refined");
    bundle->query_latency_us =
        registry.GetHistogram(scope + ".query_latency_us");
    bundle->truncated_latency_us =
        registry.GetHistogram(scope + ".query_latency_us.truncated");
    slot = std::move(bundle);
  }
  return *slot;
}

ServingPathMetrics ServingPathMetricsFor(const std::string& scope) {
  ServingPathMetrics bundle;
  bundle.query = &QueryPathMetricsFor(scope);
  bundle.batch_latency_us =
      MetricsRegistry::Global().GetHistogram(scope + ".batch_latency_us");
  return bundle;
}

// --- QueryProfile rendering -----------------------------------------------

namespace {

// metrics.cc keeps its JSON helpers file-local; the profile needs the same
// escaping for its (rarely exotic) scope/detail strings.
std::string ProfileJsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string ProfileJsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string QueryProfile::ToJson() const {
  std::string out = "{\n";
  out += "  \"scope\": \"" + ProfileJsonEscape(scope) + "\",\n";
  out += "  \"snapshot_version\": " + std::to_string(snapshot_version) + ",\n";
  out += "  \"k\": " + std::to_string(k) + ",\n";
  out += std::string("  \"cacheable\": ") + (cacheable ? "true" : "false") +
         ",\n";
  out += std::string("  \"cache_hit\": ") + (cache_hit ? "true" : "false") +
         ",\n";
  out += std::string("  \"truncated\": ") + (truncated ? "true" : "false") +
         ",\n";
  out += "  \"brownout_level\": " + std::to_string(brownout_level) + ",\n";
  out += "  \"rerank_dropped\": " + std::to_string(rerank_dropped) + ",\n";
  out += "  \"deadline_us\": " + ProfileJsonNumber(deadline_us) + ",\n";
  out += "  \"deadline_headroom_us\": " +
         ProfileJsonNumber(deadline_headroom_us) + ",\n";
  out += "  \"latency_us\": " + ProfileJsonNumber(latency_us) + ",\n";
  out += "  \"totals\": {\"distance_evaluations\": " +
         std::to_string(distance_evaluations) +
         ", \"nodes_visited\": " + std::to_string(nodes_visited) +
         ", \"candidates_refined\": " + std::to_string(candidates_refined) +
         "},\n";
  out += "  \"phases\": [";
  bool first = true;
  for (const QueryPhase& phase : phases) {
    out += first ? "\n" : ",\n";
    out += "    {\"name\": \"" + ProfileJsonEscape(phase.name) + "\"";
    out += ", \"duration_us\": " + ProfileJsonNumber(phase.duration_us);
    out += ", \"distance_evaluations\": " +
           std::to_string(phase.distance_evaluations);
    out += ", \"nodes_visited\": " + std::to_string(phase.nodes_visited);
    out += ", \"candidates_refined\": " +
           std::to_string(phase.candidates_refined);
    out += std::string(", \"truncated\": ") +
           (phase.truncated ? "true" : "false");
    if (phase.shard >= 0) {
      out += ", \"shard\": " + std::to_string(phase.shard);
    }
    if (!phase.detail.empty()) {
      out += ", \"detail\": \"" + ProfileJsonEscape(phase.detail) + "\"";
    }
    out += "}";
    first = false;
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace obs
}  // namespace cohere
