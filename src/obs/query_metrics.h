#ifndef COHERE_OBS_QUERY_METRICS_H_
#define COHERE_OBS_QUERY_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace cohere {
namespace obs {

/// The registry metric bundle every query path reports through: one latency
/// histogram plus the paper's three work counters (the quantities
/// `QueryStats` carries per query, accumulated process-wide).
///
/// For a scope `S` the bundle registers
///   S.queries                 (counter)
///   S.distance_evaluations    (counter)
///   S.nodes_visited           (counter)
///   S.candidates_refined      (counter)
///   S.query_latency_us        (histogram)
///   S.query_latency_us.truncated  (histogram)
/// Bundles are created once per scope and cached, so Record() is lock-free;
/// resolve the bundle at build time, not per query.
///
/// Deadline- or cancel-truncated queries record their latency into the
/// separate `.truncated` histogram: a truncated answer's latency reflects
/// the budget, not the work the query needed, so folding it into the main
/// histogram would *deflate* the tail exactly when the system is overloaded.
/// The work counters still accumulate into the shared counters (partial
/// work is real work).
struct QueryPathMetrics {
  Counter* queries = nullptr;
  Counter* distance_evaluations = nullptr;
  Counter* nodes_visited = nullptr;
  Counter* candidates_refined = nullptr;
  LatencyHistogram* query_latency_us = nullptr;
  LatencyHistogram* truncated_latency_us = nullptr;

  /// Publishes one finished query. The three counts must be exactly the
  /// per-query `QueryStats` fields so registry totals and the `stats`
  /// out-params stay consistent.
  void Record(uint64_t distance_evals, uint64_t nodes, uint64_t refined,
              double latency_us, bool truncated = false) const {
    // One stripe lookup for the whole bundle keeps the per-query cost to a
    // handful of relaxed atomics.
    const size_t stripe = CurrentThreadStripe();
    queries->IncrementAt(stripe);
    if (distance_evals != 0) {
      distance_evaluations->IncrementAt(stripe, distance_evals);
    }
    if (nodes != 0) nodes_visited->IncrementAt(stripe, nodes);
    if (refined != 0) candidates_refined->IncrementAt(stripe, refined);
    (truncated ? truncated_latency_us : query_latency_us)
        ->RecordAt(stripe, latency_us);
  }
};

/// Returns the process-lifetime bundle for `scope` (e.g. "index.kd_tree",
/// "dynamic_index"), registering its metrics on first use.
const QueryPathMetrics& QueryPathMetricsFor(const std::string& scope);

/// The metric surface of one serving facade: the per-query bundle above
/// plus the batch-level latency histogram (`S.batch_latency_us`) the
/// QueryBatch entry point records as a whole. Pointers have process
/// lifetime; resolve once at engine build.
struct ServingPathMetrics {
  const QueryPathMetrics* query = nullptr;
  LatencyHistogram* batch_latency_us = nullptr;
};

/// Returns the serving-facade bundle for `scope` (e.g. "engine",
/// "dynamic_index", "local_engine"), registering on first use.
ServingPathMetrics ServingPathMetricsFor(const std::string& scope);

/// One phase of an EXPLAIN'd query: a named slice of the serving pipeline
/// with the wall time it covered and exactly the share of the query's work
/// counters it performed. Pure-orchestration phases (cache lookup, routing,
/// merge) carry zero work; the per-shard scan phases carry the full
/// per-probe `QueryStats`, so summing the phases reproduces the query's
/// merged stats exactly (tested to equality).
struct QueryPhase {
  std::string name;  ///< "cache.lookup", "project", "scan", "probe", ...
  double duration_us = 0.0;
  uint64_t distance_evaluations = 0;
  uint64_t nodes_visited = 0;
  uint64_t candidates_refined = 0;
  bool truncated = false;  ///< This phase hit the deadline/cancel.
  int shard = -1;          ///< Probed shard id; -1 when not shard-bound.
  std::string detail;      ///< Free-form annotation ("hit", backend name).
};

/// Per-query EXPLAIN: the full flight record of one served query, assembled
/// by ServingCore when explain is enabled (EngineOptions::explain /
/// `cohere_cli --explain`). Totals are the query's merged QueryStats.
struct QueryProfile {
  std::string scope;
  uint64_t snapshot_version = 0;
  size_t k = 0;
  bool cacheable = false;  ///< Eligible for the result cache.
  bool cache_hit = false;
  bool truncated = false;
  /// Brownout degradation the admission controller applied (0 = none,
  /// 1 = re-rank cap, 2 = probes forced to one); see core/admission.h.
  size_t brownout_level = 0;
  /// Re-rank candidates the brownout cap dropped — what EXPLAIN shows was
  /// sacrificed to stay within the overload budget.
  uint64_t rerank_dropped = 0;
  uint64_t distance_evaluations = 0;
  uint64_t nodes_visited = 0;
  uint64_t candidates_refined = 0;
  double latency_us = 0.0;  ///< End-to-end serving latency.
  /// Granted deadline budget in µs after QueryControl rounding; 0 = none.
  double deadline_us = 0.0;
  /// Budget minus elapsed wall time at completion, clamped at 0: how close
  /// the query came to truncation.
  double deadline_headroom_us = 0.0;
  std::vector<QueryPhase> phases;

  /// Stable JSON rendering: fixed key order, phases in execution order —
  /// {"scope": ..., "totals": {...}, "phases": [...]}.
  std::string ToJson() const;
};

}  // namespace obs
}  // namespace cohere

#endif  // COHERE_OBS_QUERY_METRICS_H_
