#ifndef COHERE_OBS_QUERY_METRICS_H_
#define COHERE_OBS_QUERY_METRICS_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace cohere {
namespace obs {

/// The registry metric bundle every query path reports through: one latency
/// histogram plus the paper's three work counters (the quantities
/// `QueryStats` carries per query, accumulated process-wide).
///
/// For a scope `S` the bundle registers
///   S.queries                 (counter)
///   S.distance_evaluations    (counter)
///   S.nodes_visited           (counter)
///   S.candidates_refined      (counter)
///   S.query_latency_us        (histogram)
/// Bundles are created once per scope and cached, so Record() is lock-free;
/// resolve the bundle at build time, not per query.
struct QueryPathMetrics {
  Counter* queries = nullptr;
  Counter* distance_evaluations = nullptr;
  Counter* nodes_visited = nullptr;
  Counter* candidates_refined = nullptr;
  LatencyHistogram* query_latency_us = nullptr;

  /// Publishes one finished query. The three counts must be exactly the
  /// per-query `QueryStats` fields so registry totals and the `stats`
  /// out-params stay consistent.
  void Record(uint64_t distance_evals, uint64_t nodes, uint64_t refined,
              double latency_us) const {
    // One stripe lookup for the whole bundle keeps the per-query cost to a
    // handful of relaxed atomics.
    const size_t stripe = CurrentThreadStripe();
    queries->IncrementAt(stripe);
    if (distance_evals != 0) {
      distance_evaluations->IncrementAt(stripe, distance_evals);
    }
    if (nodes != 0) nodes_visited->IncrementAt(stripe, nodes);
    if (refined != 0) candidates_refined->IncrementAt(stripe, refined);
    query_latency_us->RecordAt(stripe, latency_us);
  }
};

/// Returns the process-lifetime bundle for `scope` (e.g. "index.kd_tree",
/// "dynamic_index"), registering its metrics on first use.
const QueryPathMetrics& QueryPathMetricsFor(const std::string& scope);

/// The metric surface of one serving facade: the per-query bundle above
/// plus the batch-level latency histogram (`S.batch_latency_us`) the
/// QueryBatch entry point records as a whole. Pointers have process
/// lifetime; resolve once at engine build.
struct ServingPathMetrics {
  const QueryPathMetrics* query = nullptr;
  LatencyHistogram* batch_latency_us = nullptr;
};

/// Returns the serving-facade bundle for `scope` (e.g. "engine",
/// "dynamic_index", "local_engine"), registering on first use.
ServingPathMetrics ServingPathMetricsFor(const std::string& scope);

}  // namespace obs
}  // namespace cohere

#endif  // COHERE_OBS_QUERY_METRICS_H_
