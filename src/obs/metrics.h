#ifndef COHERE_OBS_METRICS_H_
#define COHERE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"

namespace cohere {
namespace obs {

/// Process-wide query-path observability: named counters, gauges and
/// log-scaled latency histograms behind a single `MetricsRegistry`.
///
/// Design constraints (see DESIGN.md §7):
///  * writers are the hot query paths fanned across the shared thread pool
///    (common/parallel.h), so every mutation is a relaxed atomic on a
///    per-thread *stripe* — no locks, no shared cache line between pool
///    lanes;
///  * readers (snapshot export) merge the stripes on demand; reads are
///    monotonic but not a consistent cut across metrics, which is the usual
///    contract for process metrics;
///  * metric objects are registered once and never destroyed, so the raw
///    pointers handed out by the registry stay valid for the process
///    lifetime and can be cached at index/engine build time.

/// Number of stripes each counter/histogram spreads its writes over. Threads
/// are assigned stripes round-robin on first use.
inline constexpr size_t kMetricStripes = 8;

/// Stable stripe index of the calling thread in [0, kMetricStripes).
size_t CurrentThreadStripe();

/// Monotonically increasing counter with per-thread-striped storage.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    IncrementAt(CurrentThreadStripe(), delta);
  }

  /// Increment against a pre-resolved stripe — lets callers updating several
  /// metrics per event look the thread's stripe up once.
  void IncrementAt(size_t stripe, uint64_t delta = 1) {
    stripes_[stripe].value.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Merged value across all stripes.
  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Stripe& s : stripes_) {
      sum += s.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  const std::string& name() const { return name_; }

  /// Zeroes every stripe (snapshot readers may observe a partial reset).
  void Reset() {
    for (Stripe& s : stripes_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> value{0};
  };
  std::string name_;
  std::array<Stripe, kMetricStripes> stripes_;
};

/// Last-write-wins instantaneous value (thread count, drift ratio, ...).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  void Reset() { Set(0.0); }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Log-scaled histogram for latency-like positive quantities.
///
/// Bins grow geometrically (4 sub-buckets per power of two, ~19% relative
/// width), so one fixed 202-bin table spans sub-nanosecond to ~12-day
/// latencies in microseconds with bounded quantile error. Non-finite inputs
/// are routed explicitly — NaN increments a separate `non_finite` counter,
/// +inf lands in the overflow bin, values <= 0 or -inf in the underflow bin
/// — mirroring the hardened stats::Histogram semantics.
class LatencyHistogram {
 public:
  /// frexp exponents covered by the geometric bins; values below
  /// 2^(kMinExp-1) fall into the underflow bin, values at or above
  /// 2^kMaxExp into the overflow bin.
  static constexpr int kMinExp = -10;
  static constexpr int kMaxExp = 40;
  static constexpr size_t kSubBuckets = 4;  // per power of two
  static constexpr size_t kNumBins =
      static_cast<size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;

  explicit LatencyHistogram(std::string name) : name_(std::move(name)) {}
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one observation (conventionally microseconds).
  void Record(double value) { RecordAt(CurrentThreadStripe(), value); }
  /// Record against a pre-resolved stripe (see Counter::IncrementAt).
  void RecordAt(size_t stripe, double value);

  /// Cumulative bin-level snapshot, subtractable via Delta() so harnesses
  /// (cohere_bench) can compute per-stage interval quantiles without
  /// resetting process-wide state mid-run.
  struct Bins {
    std::array<uint64_t, kNumBins> bins{};
    uint64_t non_finite = 0;
    double sum = 0.0;
    double max = 0.0;

    /// Observations across all bins.
    uint64_t TotalCount() const;
    /// Sum of finite observations divided by TotalCount(); NaN when empty.
    double Mean() const;
    /// Linear-interpolated quantile estimate over these bins, q in [0, 1];
    /// NaN when empty. The overflow bin is closed at `max`.
    double Quantile(double q) const;
  };

  /// Merged cumulative bins across stripes.
  Bins SnapshotBins() const;

  /// Interval statistics between two cumulative snapshots taken from the
  /// same histogram with no Reset() in between: counts and sum subtract
  /// per-bin (clamped at 0 defensively); `max` keeps the `after` cumulative
  /// maximum, which is an upper bound for the interval.
  static Bins Delta(const Bins& before, const Bins& after);

  /// Observations binned so far (includes +/-inf, excludes NaN).
  uint64_t TotalCount() const;
  /// NaN observations rejected from the bins.
  uint64_t NonFiniteCount() const;
  /// Sum of all finite observations.
  double Sum() const;
  /// Largest finite observation (0 when none recorded).
  double Max() const;
  /// Linear-interpolated quantile estimate, q in [0, 1]; NaN when empty.
  double Quantile(double q) const;

  const std::string& name() const { return name_; }
  void Reset();

  /// Bin index an observation falls into (exposed for tests).
  static size_t BinFor(double value);
  /// Inclusive lower bound of bin `b`.
  static double BinLowerBound(size_t b);
  /// Exclusive upper bound of bin `b` (+inf for the overflow bin).
  static double BinUpperBound(size_t b);

 private:
  struct alignas(64) Stripe {
    std::array<std::atomic<uint64_t>, kNumBins> bins{};
    std::atomic<double> sum{0.0};
    std::atomic<double> max{0.0};
    std::atomic<uint64_t> non_finite{0};
  };

  /// Merged bin counts across stripes.
  std::array<uint64_t, kNumBins> MergedBins() const;

  std::string name_;
  std::array<Stripe, kMetricStripes> stripes_;
};

/// Point-in-time export of one histogram.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t non_finite = 0;
  double sum = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Cumulative distribution at a coarse grid of the internal bin
  /// boundaries: (upper bound in µs, observations strictly below it),
  /// ending with (+inf, count). Each bound is an exact internal bin edge,
  /// so counts are exact, never interpolated; what an OpenMetrics histogram
  /// family needs, coarser than the 202 internal bins so expositions stay
  /// scrapeable.
  std::vector<std::pair<double, uint64_t>> buckets;
};

/// Point-in-time export of the whole registry. Each section is sorted by
/// metric name and both renderings emit sections in a fixed order, so two
/// exports of the same registry diff cleanly line-by-line across runs.
struct MetricsSnapshot {
  /// Monotonic (steady_clock) timestamp of the snapshot, microseconds.
  /// Subtracting two snapshots' timestamps gives the interval between them.
  uint64_t monotonic_us = 0;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Aligned human-readable rendering (leads with the snapshot timestamp).
  std::string ToText() const;
  /// Machine-readable rendering: {"snapshot": {"monotonic_us": N},
  /// "counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, non_finite, sum, max, p50, p95, p99}}}.
  std::string ToJson() const;
  /// OpenMetrics text exposition (the format Prometheus scrapes): every
  /// metric name is prefixed `cohere_` and sanitized to the OpenMetrics
  /// charset, counters gain the mandated `_total` suffix, histograms emit
  /// cumulative `_bucket{le="..."}` series plus `_sum`/`_count`, and the
  /// document ends with the required `# EOF` marker. Validated by
  /// scripts/check_openmetrics.py in tier-1.
  std::string ToOpenMetrics() const;
};

/// Process-wide name -> metric table. Lookups take a mutex and should be
/// done once at build time; the returned pointers are valid forever.
class MetricsRegistry {
 public:
  /// The singleton every instrumented path reports through.
  static MetricsRegistry& Global();

  /// Returns the metric registered under `name`, creating it on first use.
  /// Requesting the same name with a different metric type aborts.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (registration survives). Intended for
  /// tests and benchmark harness epochs.
  void ResetAll();

  /// Global instrumentation switch, default on (set COHERE_METRICS=0 or
  /// "off" in the environment to start disabled). When off the query-path
  /// wrappers skip all recording (and their per-query timing).
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

 private:
  MetricsRegistry() = default;

  struct Impl;
  Impl& impl() const;

  static std::atomic<bool> enabled_;
};

/// Records the lifetime of a scope into a latency histogram, in
/// microseconds. A null histogram disables the timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* histogram)
      : histogram_(histogram) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Record(watch_.ElapsedMicros());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedMicros() const { return watch_.ElapsedMicros(); }

 private:
  LatencyHistogram* histogram_;
  Stopwatch watch_;
};

/// One completed trace span, delivered synchronously on the thread that
/// closed the span.
struct TraceEvent {
  const char* name;    ///< Static span name ("engine.build", ...).
  double duration_us;  ///< Wall time the span covered.
};

/// Trace callback; `user_data` is the pointer passed to SetTraceHook.
using TraceHookFn = void (*)(const TraceEvent& event, void* user_data);

/// Installs (or, with nullptr, clears) the process-wide trace hook. The
/// hook must be callable from any thread; keep it cheap.
void SetTraceHook(TraceHookFn hook, void* user_data);

/// True when a hook is installed — spans skip all work otherwise.
bool TraceHookInstalled();

/// Delivers an event to the installed hook, if any.
void EmitTraceEvent(const char* name, double duration_us);

/// Emits a TraceEvent covering its lifetime when a hook is installed; near
/// zero cost (one relaxed atomic load) otherwise.
class ScopedTrace {
 public:
  explicit ScopedTrace(const char* name) : name_(name) {
    armed_ = TraceHookInstalled();
  }
  ~ScopedTrace() {
    if (armed_) EmitTraceEvent(name_, watch_.ElapsedMicros());
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  const char* name_;
  bool armed_;
  Stopwatch watch_;
};

}  // namespace obs
}  // namespace cohere

#endif  // COHERE_OBS_METRICS_H_
