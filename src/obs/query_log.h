#ifndef COHERE_OBS_QUERY_LOG_H_
#define COHERE_OBS_QUERY_LOG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace cohere {
namespace obs {

/// Wide-event query log: one fixed-size record per served query, captured
/// into a lock-free bounded ring and drained to JSONL (one JSON object per
/// line) by `cohere_cli --query-log FILE` or the bench harness.
///
/// Aggregated metrics (obs/metrics.h) answer "what is p99 right now"; the
/// query log answers "which queries were slow, and were they cache misses,
/// deadline-truncated, or just expensive" — every record carries the whole
/// context of its query (scope, snapshot version, k, cache outcome,
/// truncation, work counters, latency) so questions can be asked after the
/// fact without pre-declaring a metric for each.
///
/// The ring reuses the tracer's design (obs/tracing.h): a fetch_add ticket
/// per event, a release-published ready flag per slot, keep-oldest overflow
/// (tickets past capacity are dropped and counted — the surviving prefix is
/// an unbiased head of the workload, and writers never block). Sampling is
/// the same deterministic SplitMix64 scheme: the i-th offered event's
/// decision is a pure function of (seed, i).

/// One served query. `scope` must be a process-lifetime string (intern via
/// Tracer::InternName); records can outlive the engine that produced them.
struct QueryEvent {
  const char* scope = nullptr;  ///< Serving scope ("engine", ...).
  uint64_t sequence = 0;        ///< Capture order, assigned by Record.
  uint64_t snapshot_version = 0;
  double t_us = 0.0;  ///< Microseconds since the log epoch (Start/Clear).
  uint32_t k = 0;
  bool cache_hit = false;
  bool truncated = false;  ///< Deadline/cancel cut the scan short.
  uint64_t distance_evaluations = 0;
  uint64_t nodes_visited = 0;
  uint64_t candidates_refined = 0;
  double latency_us = 0.0;
};

/// Configuration for QueryLog::Start.
struct QueryLogOptions {
  /// Ring capacity; events offered past it are dropped and counted.
  size_t ring_capacity = 1 << 14;
  /// Probability an offered event is captured; the decision sequence is
  /// deterministic under a fixed seed.
  double sample_probability = 1.0;
  uint64_t sample_seed = 0;
};

/// Process-wide query log. `Start` resets buffers and enables capture;
/// `Stop` disables capture but keeps events for draining. Start/Stop/Clear
/// must not race live queries (configure between workloads); Record itself
/// is thread-safe and lock-free. Disabled, the serving path pays one
/// relaxed load.
class QueryLog {
 public:
  static QueryLog& Global();

  void Start(const QueryLogOptions& options);
  void Stop();

  /// Hot-path switch; one relaxed load.
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Offers one event. Applies sampling, assigns sequence + t_us, and
  /// publishes into the ring. No-op unless Enabled().
  void Record(QueryEvent event);

  /// Events offered to Record this epoch (before sampling).
  uint64_t OfferedCount() const;
  /// Events captured in the ring.
  uint64_t CapturedCount() const;
  /// Events sampled in but rejected because the ring was full.
  uint64_t DroppedCount() const;
  /// Events rejected by the sampling decision.
  uint64_t SampledOutCount() const;

  /// Copies captured events in capture order. Safe to call while writers
  /// are active (in-flight events may be missed, never torn).
  std::vector<QueryEvent> Events() const;

  /// Renders captured events as JSONL: one stable-keyed JSON object per
  /// line, followed by no trailer (concatenation-friendly).
  std::string ToJsonl() const;
  /// Writes ToJsonl() to `path`.
  Status WriteJsonl(const std::string& path) const;

  /// Drops all captured events and restarts the sequence/sampling counters.
  /// Must not race live queries.
  void Clear();

 private:
  QueryLog() = default;

  struct Impl;
  Impl& impl() const;

  static std::atomic<bool> enabled_;
};

}  // namespace obs
}  // namespace cohere

#endif  // COHERE_OBS_QUERY_LOG_H_
