#ifndef COHERE_CORE_ADMISSION_H_
#define COHERE_CORE_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/window.h"

namespace cohere {

/// Overload policy for one ServingCore (see DESIGN.md §12).
///
/// The controller sits in front of the query path and decides, per query:
/// admit now, wait briefly in a bounded queue, degrade (brownout), shed
/// (ResourceExhausted), or reject outright (circuit open). Everything is
/// off by default — with `enabled == false` ServingCore never constructs a
/// controller and the query path is byte-identical to the pre-admission
/// code.
struct AdmissionOptions {
  bool enabled = false;
  /// Queries served concurrently before new arrivals queue.
  size_t max_concurrency = 4;
  /// Bounded wait-queue length; arrivals beyond it are shed immediately
  /// (reject-on-overload, never queue-collapse).
  size_t max_queue = 16;
  /// Wait budget for queries that carry no deadline of their own, in
  /// microseconds. A queued entry always has an absolute expiry: its own
  /// remaining deadline when it has one, else this. Nothing waits forever.
  double default_queue_wait_us = 50000.0;
  /// Smoothing factor for the expected-service-time EWMA (and the queue
  /// pressure EWMA that drives the brownout ladder), in (0, 1].
  double ewma_alpha = 0.2;

  // --- circuit breaker ----------------------------------------------------
  /// Windowed failure ratio (failures / completions) at which the breaker
  /// trips from Closed to Open.
  double breaker_failure_ratio = 0.5;
  /// Completions the window must hold before the ratio is meaningful.
  uint64_t breaker_min_samples = 16;
  /// How long the breaker stays Open before half-opening, microseconds.
  double breaker_open_us = 1e6;
  /// Probe queries admitted in HalfOpen; all must succeed to re-close.
  size_t breaker_half_open_probes = 3;
  /// Rolling window the failure ratio is measured over.
  obs::RollingWindowOptions breaker_window;

  // --- brownout ladder ----------------------------------------------------
  /// Queue-pressure EWMA (queued / max_queue) at which level 1 engages:
  /// re-rank candidates are capped at `brownout_rerank_cap`.
  double brownout_l1_pressure = 0.25;
  /// Pressure at which level 2 engages: probes are forced down to one shard
  /// (plus the level-1 cap). Degrading comes before shedding.
  double brownout_l2_pressure = 0.75;
  /// Per-probe re-rank candidate cap at brownout level >= 1.
  size_t brownout_rerank_cap = 4;
};

/// What Admit() granted. When `admitted` the caller MUST call Release()
/// exactly once after the query finishes; otherwise `status` carries the
/// kResourceExhausted reject and the query must not run.
struct AdmissionGrant {
  bool admitted = false;
  bool queued = false;  ///< Waited in the queue before admission.
  Status status;        ///< OK when admitted.
  /// Brownout ladder applied to this query (0 = full fidelity).
  size_t brownout_level = 0;
  /// Max shards the query may probe (SIZE_MAX = engine-configured).
  size_t probe_limit = std::numeric_limits<size_t>::max();
  /// Max re-rank candidates per probe (SIZE_MAX = uncapped).
  size_t rerank_cap = std::numeric_limits<size_t>::max();
};

/// Point-in-time accounting snapshot; `offered == admitted + shed +
/// rejected` holds exactly at any instant no Admit() is blocked inside the
/// intake (every outcome is decided and counted under one mutex).
struct AdmissionTotals {
  uint64_t offered = 0;
  uint64_t admitted = 0;
  uint64_t queued = 0;    ///< Of the admitted+shed, how many waited first.
  uint64_t shed = 0;      ///< Infeasible deadline, full queue, queue timeout.
  uint64_t rejected = 0;  ///< Circuit breaker open.
  uint64_t breaker_trips = 0;
  uint64_t brownout_queries = 0;  ///< Admitted at level >= 1.
};

/// Concurrency-limited intake + bounded deadline-aware wait queue + per-
/// scope circuit breaker + brownout ladder. One instance per ServingCore.
///
/// Thread safety: fully thread-safe; one mutex covers the intake decision,
/// the totals (so the accounting invariant is exact), the service-time
/// EWMA and the breaker state. The queue is the condition variable's wait
/// set; entries carry their absolute expiry, so a waiter sheds itself the
/// moment its remaining budget runs out — a stalled server never collects
/// an unbounded backlog.
class AdmissionController {
 public:
  /// `scope` labels Status messages ("engine", "dynamic_index", ...).
  /// `clock` (microseconds, monotonic) is injectable for deterministic
  /// breaker/ladder tests; empty means the steady clock.
  AdmissionController(std::string scope, const AdmissionOptions& options,
                      obs::WindowClock clock = {});
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Decides one arrival. `remaining_budget_us <= 0` means the query has no
  /// deadline (it can still queue, bounded by default_queue_wait_us). A
  /// query whose remaining budget is below the expected service time (EWMA
  /// of completed queries) is shed immediately instead of queued.
  AdmissionGrant Admit(double remaining_budget_us);

  /// Completes one admitted query: frees the slot, feeds the service-time
  /// EWMA and the breaker window. `success` is false for deadline/cancel
  /// truncation or downstream failure — the breaker's failure signal.
  void Release(double latency_us, bool success);

  /// Exact accounting snapshot (mutex-consistent cut).
  AdmissionTotals Totals() const;

  /// Current brownout level the ladder would apply (0..2).
  size_t BrownoutLevel() const;

  /// Breaker state for observability: "closed", "open" or "half_open".
  std::string BreakerState() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  enum class Breaker { kClosed, kOpen, kHalfOpen };

  uint64_t NowUs() const;
  /// Rotates breaker windows / expiries to `now_us`; called under mu_.
  void AdvanceBreakerLocked(uint64_t now_us);
  /// Level for the current pressure EWMA; called under mu_.
  size_t BrownoutLevelLocked() const;
  /// Fills the grant's degradation fields for `level`.
  void ApplyBrownout(size_t level, AdmissionGrant* grant);
  void RecordGaugesLocked();

  const std::string scope_;
  const AdmissionOptions options_;
  const obs::WindowClock clock_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t inflight_ = 0;
  size_t waiting_ = 0;
  AdmissionTotals totals_;
  /// EWMA of completed-query latency, microseconds; 0 until the first
  /// completion (no feasibility shedding before any signal exists).
  double service_ewma_us_ = 0.0;
  /// EWMA of queue occupancy (waiting / max_queue), the ladder's input.
  double pressure_ewma_ = 0.0;

  // Breaker bookkeeping: completions/failures accumulate into private
  // (unregistered) counters so obs::RollingCounterWindow measures the
  // windowed rate; both windows are rebuilt on re-close so a recovered
  // breaker does not instantly re-trip on pre-trip failures. All accessed
  // under mu_ (the windows are not thread-safe by contract).
  Breaker breaker_ = Breaker::kClosed;
  uint64_t breaker_open_until_us_ = 0;
  size_t half_open_granted_ = 0;   ///< Probes issued this HalfOpen episode.
  size_t half_open_pending_ = 0;   ///< Probes admitted but not yet released.
  bool half_open_failed_ = false;
  obs::Counter completions_{"admission.internal.completions"};
  obs::Counter failures_{"admission.internal.failures"};
  std::optional<obs::RollingCounterWindow> completions_window_;
  std::optional<obs::RollingCounterWindow> failures_window_;

  // Registry metrics (process lifetime, resolved once; recording is gated
  // on MetricsRegistry::Enabled() like every other instrumented path).
  obs::Counter* m_admitted_ = nullptr;
  obs::Counter* m_queued_ = nullptr;
  obs::Counter* m_shed_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_breaker_open_ = nullptr;
  obs::Gauge* g_queue_depth_ = nullptr;
  obs::Gauge* g_brownout_level_ = nullptr;
};

/// Deterministic retry discipline shared by the dynamic engine's insert/
/// refit path and exposed for callers: capped exponential backoff with
/// SplitMix64 jitter plus a token-bucket retry *budget*, so a storm of
/// failures cannot amplify itself through retries.
struct RetryPolicyOptions {
  /// Total attempts (first try + retries).
  size_t max_attempts = 3;
  double base_backoff_us = 100.0;
  double max_backoff_us = 10000.0;
  /// SplitMix64 stream for the jitter draws.
  uint64_t seed = 0x5eedbacc0ffULL;
  /// Token bucket: capacity and steady refill rate. Each retry (not the
  /// first attempt) consumes one token; an empty bucket denies the retry.
  double budget_tokens = 8.0;
  double tokens_per_second = 2.0;
};

class RetryPolicy {
 public:
  explicit RetryPolicy(const RetryPolicyOptions& options = {},
                       obs::WindowClock clock = {});

  /// The dynamic engine's insert-backoff ladder, shared here so both
  /// backoff mechanisms are one implementation:
  /// 0 failures -> 0; else min(cap, base << min(failures - 1, 16)).
  static size_t CappedExponentialSteps(size_t base, size_t cap,
                                       size_t consecutive_failures);

  /// Jittered backoff before retry `attempt` (1-based retry index):
  /// uniform in [0.5, 1.0) x min(max, base * 2^(attempt-1)). Deterministic
  /// for a fixed seed and draw sequence.
  double BackoffUs(size_t attempt);

  /// True when a retry may proceed now (consumes a token and counts into
  /// the global `admission.retries` counter); false when either the
  /// attempt limit or the token budget is exhausted.
  bool AcquireRetry(size_t attempt);

  /// Tokens currently in the bucket (test visibility).
  double TokensAvailable();

  const RetryPolicyOptions& options() const { return options_; }

 private:
  uint64_t NowUs() const;
  void RefillLocked(uint64_t now_us);

  const RetryPolicyOptions options_;
  const obs::WindowClock clock_;
  std::mutex mu_;
  double tokens_;
  uint64_t last_refill_us_ = 0;
  bool refill_initialized_ = false;
  uint64_t draws_ = 0;
  obs::Counter* m_retries_ = nullptr;
};

}  // namespace cohere

#endif  // COHERE_CORE_ADMISSION_H_
