#ifndef COHERE_CORE_SNAPSHOT_H_
#define COHERE_CORE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "data/transforms.h"
#include "index/knn.h"
#include "index/metric.h"
#include "linalg/blocked_matrix.h"
#include "linalg/matrix.h"
#include "reduction/pipeline.h"

namespace cohere {

/// One locality of an engine snapshot: a fitted reduction plus the index
/// built over the reduced member rows. A single-shard snapshot with empty
/// `members` is the global case (row i of the index is record i); shards
/// with `members` map local index rows back to global record ids and carry
/// the routing geometry (centroid, optional subspace basis) the serving
/// layer uses to pick which shards a query probes.
struct SnapshotShard {
  ReductionPipeline pipeline;       ///< Fitted on the member records.
  /// The reduced member rows in blocked (64-byte-aligned, zero-padded)
  /// layout — the shard owns this one copy and the index references it, so
  /// scan backends hold no private row storage.
  std::shared_ptr<const BlockedMatrix> rows;
  std::unique_ptr<KnnIndex> index;  ///< Over `rows`.
  std::vector<size_t> members;      ///< Global row per local row; empty = id.
  Vector centroid;                  ///< Routing centroid (studentized space).
  Matrix cluster_basis;             ///< Routing subspace; empty = full space.
};

/// The complete immutable serving state of an engine at one instant: every
/// byte a query touches. Snapshots are built aside by writers, published
/// through SnapshotHandle, and never mutated afterwards — readers that hold
/// a shared_ptr to one can use it without any synchronization while writers
/// publish successors.
struct EngineSnapshot {
  /// Monotonically increasing per-handle publish ordinal (first publish is
  /// version 1). Stamped by SnapshotHandle::Publish.
  uint64_t version = 0;

  /// The distance metric every shard index points into. Shared between
  /// successive snapshots of the same engine (the metric is stateless).
  std::shared_ptr<const Metric> metric;

  std::vector<SnapshotShard> shards;

  /// Per-record labels (kNoLabel/-1 for unlabeled); may be empty when the
  /// engine does not track labels.
  std::vector<int> labels;

  /// Original-space records, kept only by engines that need them after
  /// build (the dynamic engine's refit and drift paths). Empty otherwise.
  Matrix originals;

  /// Global z-score transform and the studentized copies of every record;
  /// present on multi-locality snapshots, where routing and full-space
  /// re-ranking happen in this shared comparable space.
  bool has_studentizer = false;
  ColumnAffineTransform studentizer;
  Matrix studentized_records;

  /// Cluster id per global row (local engine); empty otherwise.
  std::vector<size_t> assignment;
};

/// The RCU-style publication point: an atomic shared_ptr to the current
/// snapshot. Readers Acquire() once per call and then work lock-free on an
/// immutable object; writers build a successor aside and Publish() it.
/// Replaced snapshots are not reclaimed eagerly — in-flight readers keep
/// them alive through their shared_ptr until the last reference drops,
/// which is the entire memory-reclamation story (no epochs, no hazard
/// pointers, just shared_ptr reference counts).
class SnapshotHandle {
 public:
  SnapshotHandle() = default;
  SnapshotHandle(const SnapshotHandle&) = delete;
  SnapshotHandle& operator=(const SnapshotHandle&) = delete;

  /// The currently served snapshot (null until the first Publish).
  std::shared_ptr<const EngineSnapshot> Acquire() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Stamps `next` with the successor version and atomically swaps it in.
  /// Subject to the `core.snapshot.publish` fault point *on replacement
  /// publishes only* (an engine's initial publish cannot fail): when the
  /// fault fires, the handle is untouched — the previous snapshot keeps
  /// serving — and the injected error is returned so the writer can unwind
  /// its side state. Bumps `core.snapshot.publishes` / `core.snapshot.retired`
  /// and sets the `core.snapshot.version` gauge (last publisher wins).
  ///
  /// Writers are expected to serialize among themselves (the facades hold a
  /// writer mutex); Publish itself only promises atomicity versus readers.
  Status Publish(std::shared_ptr<EngineSnapshot> next);

  /// Version of the current snapshot (0 before the first publish).
  uint64_t version() const {
    return versions_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::shared_ptr<const EngineSnapshot>> current_;
  std::atomic<uint64_t> versions_{0};
};

}  // namespace cohere

#endif  // COHERE_CORE_SNAPSHOT_H_
