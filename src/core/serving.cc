#include "core/serving.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "cache/cache_manager.h"
#include "cluster/projected.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/tracing.h"

namespace cohere {
namespace {

// Queries per work chunk when a batch fans rows across the pool; matches
// the KnnIndex::QueryBatch grain so both fan-outs decompose identically.
constexpr size_t kBatchGrain = 4;

// Rows per chunk for batch projection (cheap per-row work).
constexpr size_t kProjectGrain = 16;

// One absolute expiry for a whole call (shared by every probe and every
// batch row), computed once on entry. The budget goes through
// QueryControl::DeadlineMicros so fractional budgets round up instead of
// truncating to an already-expired deadline, and negative/NaN budgets are
// explicitly inactive.
std::pair<std::chrono::steady_clock::time_point, bool> AbsoluteDeadline(
    const QueryLimits& limits) {
  const long long budget_us = QueryControl::DeadlineMicros(limits.deadline_us);
  const bool has_deadline = budget_us > 0;
  auto deadline = std::chrono::steady_clock::time_point::max();
  if (has_deadline) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::microseconds(budget_us);
  }
  return {deadline, has_deadline};
}

// FNV-1a of the snapshot metric's name — the metric component of every
// cache key built against that snapshot (computed once per call, not per
// batch row).
uint64_t MetricHashOf(const EngineSnapshot& snapshot) {
  const std::string name = snapshot.metric->name();
  return cache::FingerprintBytes(name.data(), name.size());
}

}  // namespace

ServingCore::ServingCore(ServingCoreOptions options)
    : options_(std::move(options)) {
  metrics_ = obs::ServingPathMetricsFor(options_.scope);
  span_query_ = obs::Tracer::InternName(options_.scope + ".query");
  span_project_ = obs::Tracer::InternName(options_.scope + ".project");
  span_query_batch_ = obs::Tracer::InternName(options_.scope + ".query_batch");
  span_project_batch_ =
      obs::Tracer::InternName(options_.scope + ".project_batch");
  span_probe_ = obs::Tracer::InternName(options_.scope + ".probe");
  span_cache_lookup_ =
      obs::Tracer::InternName(options_.scope + ".cache.lookup");
  span_cache_insert_ =
      obs::Tracer::InternName(options_.scope + ".cache.insert");
  log_scope_ = obs::Tracer::InternName(options_.scope);
  if (options_.cache_budget_bytes > 0) {
    cache_ = cache::CacheManager::Global().CreateCache(
        options_.scope, options_.cache_budget_bytes);
  }
  if (options_.admission.enabled) {
    admission_ = std::make_unique<AdmissionController>(options_.scope,
                                                       options_.admission);
  }
}

cache::CacheKey ServingCore::MakeCacheKey(uint64_t snapshot_version,
                                          uint64_t metric_hash,
                                          const Vector& query,
                                          size_t k) const {
  cache::CacheKey key;
  key.snapshot_version = snapshot_version;
  key.metric_hash = metric_hash;
  key.query_fingerprint = cache::FingerprintVector(query);
  key.k = static_cast<uint32_t>(k);
  key.probes = static_cast<uint32_t>(options_.probe_shards);
  return key;
}

std::vector<Neighbor> ServingCore::Query(const Vector& original_space_query,
                                         size_t k, size_t skip_index,
                                         QueryStats* stats) const {
  QueryLimits limits;
  limits.deadline_us = options_.default_deadline_us;
  return Query(original_space_query, k, skip_index, stats, limits);
}

std::vector<Neighbor> ServingCore::Query(const Vector& original_space_query,
                                         size_t k, size_t skip_index,
                                         QueryStats* stats,
                                         const QueryLimits& limits) const {
  if (options_.explain) {
    obs::QueryProfile profile;
    std::vector<Neighbor> out = QueryServe(original_space_query, k, skip_index,
                                           stats, limits, &profile);
    std::lock_guard<std::mutex> lock(profile_mu_);
    last_profile_ = std::move(profile);
    has_profile_ = true;
    return out;
  }
  return QueryServe(original_space_query, k, skip_index, stats, limits,
                    /*profile=*/nullptr);
}

std::vector<Neighbor> ServingCore::Query(const Vector& original_space_query,
                                         size_t k, size_t skip_index,
                                         QueryStats* stats,
                                         const QueryLimits& limits,
                                         obs::QueryProfile* profile) const {
  COHERE_CHECK(profile != nullptr);
  *profile = obs::QueryProfile();
  return QueryServe(original_space_query, k, skip_index, stats, limits,
                    profile);
}

bool ServingCore::LastProfile(obs::QueryProfile* out) const {
  std::lock_guard<std::mutex> lock(profile_mu_);
  if (!has_profile_) return false;
  *out = last_profile_;
  return true;
}

Status ServingCore::TryQuery(const Vector& original_space_query, size_t k,
                             size_t skip_index, QueryStats* stats,
                             const QueryLimits& limits,
                             std::vector<Neighbor>* out) const {
  COHERE_CHECK(out != nullptr);
  if (admission_ == nullptr) {
    *out = Query(original_space_query, k, skip_index, stats, limits);
    return Status::Ok();
  }
  // Resolve the budget exactly as the deadline machinery will, so the
  // feasibility gate and the eventual QueryControl agree on it.
  const double budget_us = static_cast<double>(
      QueryControl::DeadlineMicros(limits.deadline_us));
  Stopwatch arrival_watch;  // covers any queue wait
  const AdmissionGrant grant = admission_->Admit(budget_us);
  if (!grant.admitted) return grant.status;
  // The queue wait ate into the caller's budget: the query runs with what
  // is left, so an admitted query still completes within the deadline the
  // caller configured (measured from arrival).
  QueryLimits adjusted = limits;
  if (budget_us > 0.0) {
    adjusted.deadline_us =
        std::max(1.0, budget_us - arrival_watch.ElapsedMicros());
  }
  BrownoutPlan plan;
  plan.level = grant.brownout_level;
  plan.probe_limit = grant.probe_limit;
  plan.rerank_cap = grant.rerank_cap;
  Stopwatch service_watch;
  QueryStats local;
  *out = QueryServe(original_space_query, k, skip_index, &local, adjusted,
                    /*profile=*/nullptr, plan.level > 0 ? &plan : nullptr);
  // Deadline/cancel truncation is the failure signal the breaker watches;
  // the EWMA only learns service time, not queue time.
  admission_->Release(service_watch.ElapsedMicros(),
                      /*success=*/!local.truncated);
  if (stats != nullptr) stats->MergeFrom(local);
  return Status::Ok();
}

std::vector<Neighbor> ServingCore::QueryServe(
    const Vector& original_space_query, size_t k, size_t skip_index,
    QueryStats* stats, const QueryLimits& limits,
    obs::QueryProfile* profile, const BrownoutPlan* plan) const {
  const std::shared_ptr<const EngineSnapshot> snapshot = handle_.Acquire();
  COHERE_CHECK(snapshot != nullptr);
  // Cacheable: cache enabled, no row exclusion (skip changes the answer but
  // is not part of the key), the token is not already cancelled (an
  // aborted caller gets the usual truncated answer, never a cached full
  // one), and the query is not brownout-degraded (a degraded answer must
  // never be served later as the full-fidelity one, and a degraded lookup
  // key would alias the full-probe entry). A cache hit trivially respects
  // any deadline — it does no work.
  const bool cacheable =
      cache_ != nullptr && skip_index == KnnIndex::kNoSkip &&
      (limits.cancel == nullptr || !limits.cancel->Cancelled()) &&
      (plan == nullptr || plan->level == 0);
  cache::CacheKey key;
  if (cacheable) {
    key = MakeCacheKey(snapshot->version, MetricHashOf(*snapshot),
                       original_space_query, k);
  }
  const bool instrumented = obs::MetricsRegistry::Enabled();
  const bool logging = obs::QueryLog::Enabled();
  if (profile == nullptr && !instrumented && !obs::Tracer::Enabled() &&
      !logging) {
    if (!cacheable) {
      if (plan != nullptr) {
        // Degraded queries record their brownout level even on the bare
        // path; the level rides through a local so a null caller stats
        // still works.
        QueryStats local;
        std::vector<Neighbor> out = QueryOnSnapshot(
            *snapshot, original_space_query, k, skip_index, &local, limits,
            /*traced=*/false, /*cache_key=*/nullptr, /*profile=*/nullptr,
            plan);
        if (plan->level > local.brownout_level) {
          local.brownout_level = plan->level;
        }
        if (stats != nullptr) stats->MergeFrom(local);
        return out;
      }
      // Every layer off, cache off: the exact uninstrumented path.
      return QueryOnSnapshot(*snapshot, original_space_query, k, skip_index,
                             stats, limits, /*traced=*/false);
    }
    std::vector<Neighbor> out;
    if (cache_->Lookup(key, &out)) return out;
    QueryStats local;
    out = QueryOnSnapshot(*snapshot, original_space_query, k, skip_index,
                          &local, limits, /*traced=*/false, &key);
    // Truncated answers are partial, never cacheable.
    if (!local.truncated) cache_->Insert(key, out);
    if (stats != nullptr) stats->MergeFrom(local);
    return out;
  }
  // Root span of the serial query path; the per-query sampling (and slow-
  // query) decision is made here, and the projection / probe phases nest
  // under it.
  obs::TraceSpan span(span_query_);
  span.AddArg("k", static_cast<double>(k));
  QueryStats local;
  Stopwatch watch;
  std::vector<Neighbor> out;
  bool cache_hit = false;
  if (cacheable) {
    Stopwatch lookup_watch;
    {
      obs::TraceSpan lookup(span_cache_lookup_);
      cache_hit = cache_->Lookup(key, &out);
      lookup.AddArg("hit", cache_hit ? 1.0 : 0.0);
    }
    if (profile != nullptr) {
      obs::QueryPhase phase;
      phase.name = "cache.lookup";
      phase.duration_us = lookup_watch.ElapsedMicros();
      phase.detail = cache_hit ? "hit" : "miss";
      profile->phases.push_back(std::move(phase));
    }
  }
  if (!cache_hit) {
    out = QueryOnSnapshot(*snapshot, original_space_query, k, skip_index,
                          &local, limits, /*traced=*/true,
                          cacheable ? &key : nullptr, profile, plan);
    if (plan != nullptr && plan->level > local.brownout_level) {
      local.brownout_level = plan->level;
    }
  }
  const double latency_us = watch.ElapsedMicros();
  if (instrumented) {
    // Hits record a (0 work, tiny latency) sample: the latency histogram
    // reflects what callers actually observed, and the work counters stay
    // consistent with QueryStats (a hit does no index work). Truncated
    // answers record into the dedicated `.truncated` histogram so an
    // overload storm of budget-bounded latencies cannot deflate the main
    // tail.
    metrics_.query->Record(local.distance_evaluations, local.nodes_visited,
                           local.candidates_refined, latency_us,
                           local.truncated);
  }
  if (cache_hit) span.AddArg("cache_hit", 1.0);
  if (local.truncated) span.AddArg("truncated", 1.0);
  if (cacheable && !cache_hit && !local.truncated) {
    Stopwatch insert_watch;
    {
      obs::TraceSpan insert(span_cache_insert_);
      cache_->Insert(key, out);
    }
    if (profile != nullptr) {
      obs::QueryPhase phase;
      phase.name = "cache.insert";
      phase.duration_us = insert_watch.ElapsedMicros();
      profile->phases.push_back(std::move(phase));
    }
  }
  if (logging) {
    obs::QueryEvent event;
    event.scope = log_scope_;
    event.snapshot_version = snapshot->version;
    event.k = static_cast<uint32_t>(k);
    event.cache_hit = cache_hit;
    event.truncated = local.truncated;
    event.distance_evaluations = local.distance_evaluations;
    event.nodes_visited = local.nodes_visited;
    event.candidates_refined = local.candidates_refined;
    event.latency_us = latency_us;
    obs::QueryLog::Global().Record(event);
  }
  if (profile != nullptr) {
    profile->scope = options_.scope;
    profile->snapshot_version = snapshot->version;
    profile->k = k;
    profile->cacheable = cacheable;
    profile->cache_hit = cache_hit;
    profile->truncated = local.truncated;
    profile->brownout_level = local.brownout_level;
    profile->rerank_dropped = local.rerank_dropped;
    profile->distance_evaluations = local.distance_evaluations;
    profile->nodes_visited = local.nodes_visited;
    profile->candidates_refined = local.candidates_refined;
    profile->latency_us = latency_us;
    const double budget_us = static_cast<double>(
        QueryControl::DeadlineMicros(limits.deadline_us));
    profile->deadline_us = budget_us;
    profile->deadline_headroom_us =
        budget_us > 0.0 ? std::max(0.0, budget_us - latency_us) : 0.0;
  }
  if (stats != nullptr) stats->MergeFrom(local);
  return out;
}

std::vector<Neighbor> ServingCore::QueryOnSnapshot(
    const EngineSnapshot& snapshot, const Vector& query, size_t k,
    size_t skip_index, QueryStats* stats, const QueryLimits& limits,
    bool traced, const cache::CacheKey* cache_key,
    obs::QueryProfile* profile, const BrownoutPlan* plan) const {
  if (SingleShard(snapshot)) {
    const SnapshotShard& shard = snapshot.shards[0];
    // With a cache key, the projection is itself cached under (version,
    // fingerprint, metric) — without k — so a hot query repeated with a
    // different k still skips the original-space transform. TransformPoint
    // is deterministic, so the reused vector is bit-identical to a
    // recompute.
    auto project = [&]() -> Vector {
      if (cache_key != nullptr) {
        Vector reduced;
        if (cache_->LookupProjection(cache_key->snapshot_version,
                                     cache_key->query_fingerprint,
                                     cache_key->metric_hash, &reduced)) {
          return reduced;
        }
        reduced = shard.pipeline.TransformPoint(query);
        cache_->InsertProjection(cache_key->snapshot_version,
                                 cache_key->query_fingerprint,
                                 cache_key->metric_hash, reduced);
        return reduced;
      }
      return shard.pipeline.TransformPoint(query);
    };
    if (!traced && profile == nullptr) {
      const Vector reduced = project();
      return shard.index->Query(reduced, k, skip_index, stats, limits);
    }
    Stopwatch project_watch;
    Vector reduced = [&] {
      obs::TraceSpan span(span_project_);
      return project();
    }();
    if (profile == nullptr) {
      return shard.index->Query(reduced, k, skip_index, stats, limits);
    }
    {
      obs::QueryPhase phase;
      phase.name = "project";
      phase.duration_us = project_watch.ElapsedMicros();
      profile->phases.push_back(std::move(phase));
    }
    // Scan through a local QueryStats so the phase carries exactly the
    // index's per-query counters (the caller's stats may accumulate).
    QueryStats scan_stats;
    Stopwatch scan_watch;
    std::vector<Neighbor> out =
        shard.index->Query(reduced, k, skip_index, &scan_stats, limits);
    obs::QueryPhase phase;
    phase.name = "scan";
    phase.duration_us = scan_watch.ElapsedMicros();
    phase.distance_evaluations = scan_stats.distance_evaluations;
    phase.nodes_visited = scan_stats.nodes_visited;
    phase.candidates_refined = scan_stats.candidates_refined;
    phase.truncated = scan_stats.truncated;
    phase.shard = 0;
    phase.detail = shard.index->name();
    profile->phases.push_back(std::move(phase));
    if (stats != nullptr) stats->MergeFrom(scan_stats);
    return out;
  }
  const auto [deadline, has_deadline] = AbsoluteDeadline(limits);
  return QueryMultiShard(snapshot, query, k, skip_index, stats, limits.cancel,
                         deadline, has_deadline, traced,
                         /*allow_parallel=*/true, profile, plan);
}

std::vector<size_t> ServingCore::RouteShards(
    const EngineSnapshot& snapshot, const Vector& studentized_query,
    const BrownoutPlan* plan) const {
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(snapshot.shards.size());
  for (size_t c = 0; c < snapshot.shards.size(); ++c) {
    const SnapshotShard& shard = snapshot.shards[c];
    double dist;
    if (!shard.cluster_basis.empty()) {
      ProjectedCluster view;
      view.centroid = shard.centroid;
      view.basis = shard.cluster_basis;
      dist = ProjectedSquaredDistance(studentized_query, view);
    } else {
      dist = (studentized_query - shard.centroid).SquaredNorm2();
    }
    scored.emplace_back(dist, c);
  }
  std::sort(scored.begin(), scored.end());
  size_t probe_budget = options_.probe_shards;
  if (plan != nullptr && plan->probe_limit < probe_budget) {
    probe_budget = plan->probe_limit;
  }
  std::vector<size_t> out;
  for (size_t i = 0; i < std::min(probe_budget, scored.size()); ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

std::vector<Neighbor> ServingCore::QueryMultiShard(
    const EngineSnapshot& snapshot, const Vector& query, size_t k,
    size_t skip_index, QueryStats* stats, const CancelToken* cancel,
    std::chrono::steady_clock::time_point deadline, bool has_deadline,
    bool traced, bool allow_parallel, obs::QueryProfile* profile,
    const BrownoutPlan* plan) const {
  COHERE_CHECK(snapshot.has_studentizer);
  const bool profiling = profile != nullptr;
  Stopwatch route_watch;
  const Vector studentized = snapshot.studentizer.Apply(query);
  const std::vector<size_t> probes = RouteShards(snapshot, studentized, plan);
  const bool rerank = options_.rerank_multi_probe && probes.size() > 1;
  // Brownout level >= 1 caps the candidates each probe may contribute to
  // the full-space re-rank; everything past the cap is dropped (counted in
  // rerank_dropped) rather than merged with an incomparable local distance.
  const size_t rerank_cap = (plan != nullptr && rerank)
                                ? plan->rerank_cap
                                : static_cast<size_t>(-1);
  const bool limited = has_deadline || cancel != nullptr;
  if (profiling) {
    obs::QueryPhase phase;
    phase.name = "route";
    phase.duration_us = route_watch.ElapsedMicros();
    phase.detail = std::to_string(probes.size()) + " probes";
    profile->phases.push_back(std::move(phase));
  }

  // Scatter: each probe fills its own slot (results and stats), so the
  // probes can run on the pool without sharing anything; the gather below
  // merges in probe order. The merged result is order-independent anyway —
  // KnnCollector keeps the k smallest in the (distance, index) total order.
  // Profile phases are appended after the scatter from the per-slot arrays,
  // never from inside probe_one, so pool lanes share nothing.
  std::vector<std::vector<Neighbor>> gathered(probes.size());
  std::vector<QueryStats> probe_stats(probes.size());
  std::vector<double> probe_us(profiling ? probes.size() : 0);
  auto probe_one = [&](size_t pi) {
    Stopwatch probe_watch;
    const SnapshotShard& shard = snapshot.shards[probes[pi]];
    QueryStats* local = &probe_stats[pi];
    std::optional<obs::TraceSpan> span;
    if (traced) {
      span.emplace(span_probe_);
      span->AddArg("shard", static_cast<double>(probes[pi]));
    }
    // The routing decision that sent the query here is the one node this
    // layer visits per probe; everything else is the shard index's count.
    ++local->nodes_visited;
    const Vector local_query = shard.pipeline.TransformPoint(query);
    // Translate the global skip index into a local row, if it lives here.
    size_t local_skip = KnnIndex::kNoSkip;
    if (skip_index != KnnIndex::kNoSkip && !shard.members.empty()) {
      auto it = std::find(shard.members.begin(), shard.members.end(),
                          skip_index);
      if (it != shard.members.end()) {
        local_skip = static_cast<size_t>(it - shard.members.begin());
      }
    }
    std::vector<Neighbor> found;
    if (limited) {
      // Every probe (and batch row) shares the one absolute deadline; each
      // gets its own control so the check countdown stays per-traversal.
      QueryControl control(cancel, deadline, has_deadline);
      found = shard.index->QueryWithControl(local_query, k, local_skip, local,
                                            &control);
    } else {
      found = shard.index->Query(local_query, k, local_skip, local);
    }
    gathered[pi].reserve(found.size());
    size_t reranked = 0;
    for (const Neighbor& nb : found) {
      const size_t global_row =
          shard.members.empty() ? nb.index : shard.members[nb.index];
      if (rerank) {
        if (reranked >= rerank_cap) {
          // Brownout: this candidate's re-rank is sacrificed. `found` is
          // nearest-first in the shard's local space, so the cap keeps the
          // locally most promising candidates.
          ++local->rerank_dropped;
          continue;
        }
        // Local distances are not comparable across concept spaces: score
        // merged candidates by the metric in the shared studentized space.
        const double dist = snapshot.metric->Distance(
            studentized, snapshot.studentized_records.Row(global_row));
        ++local->candidates_refined;
        ++reranked;
        gathered[pi].push_back({global_row, dist});
      } else {
        gathered[pi].push_back({global_row, nb.distance});
      }
    }
    if (profiling) probe_us[pi] = probe_watch.ElapsedMicros();
  };
  if (allow_parallel && probes.size() > 1) {
    ParallelFor(0, probes.size(), /*grain=*/1, [&](size_t begin, size_t end) {
      for (size_t pi = begin; pi < end; ++pi) probe_one(pi);
    });
  } else {
    for (size_t pi = 0; pi < probes.size(); ++pi) probe_one(pi);
  }
  if (profiling) {
    // One phase per probe, carrying that probe's whole QueryStats (routing
    // node, shard scan, and its share of re-rank refinements), so the probe
    // phases plus the zero-work route/merge phases sum exactly to the
    // query's merged stats.
    for (size_t pi = 0; pi < probes.size(); ++pi) {
      obs::QueryPhase phase;
      phase.name = "probe";
      phase.duration_us = probe_us[pi];
      phase.distance_evaluations = probe_stats[pi].distance_evaluations;
      phase.nodes_visited = probe_stats[pi].nodes_visited;
      phase.candidates_refined = probe_stats[pi].candidates_refined;
      phase.truncated = probe_stats[pi].truncated;
      phase.shard = static_cast<int>(probes[pi]);
      phase.detail = snapshot.shards[probes[pi]].index->name();
      profile->phases.push_back(std::move(phase));
    }
  }

  Stopwatch merge_watch;
  KnnCollector collector(k);
  for (const std::vector<Neighbor>& candidates : gathered) {
    for (const Neighbor& nb : candidates) {
      collector.Offer(nb.index, nb.distance);
    }
  }
  if (stats != nullptr) {
    for (const QueryStats& ps : probe_stats) stats->MergeFrom(ps);
  }
  std::vector<Neighbor> merged = collector.Take();
  if (profiling) {
    obs::QueryPhase phase;
    phase.name = "merge";
    phase.duration_us = merge_watch.ElapsedMicros();
    phase.detail = rerank ? "rerank" : "";
    profile->phases.push_back(std::move(phase));
  }
  return merged;
}

std::vector<std::vector<Neighbor>> ServingCore::QueryBatch(
    const Matrix& original_space_queries, size_t k, QueryStats* stats) const {
  QueryLimits limits;
  limits.deadline_us = options_.default_deadline_us;
  return QueryBatch(original_space_queries, k, stats, limits);
}

std::vector<std::vector<Neighbor>> ServingCore::QueryBatch(
    const Matrix& original_space_queries, size_t k, QueryStats* stats,
    const QueryLimits& limits) const {
  const std::shared_ptr<const EngineSnapshot> snapshot = handle_.Acquire();
  COHERE_CHECK(snapshot != nullptr);
  obs::TraceSpan span(span_query_batch_);
  obs::ScopedTimer timer(
      obs::MetricsRegistry::Enabled() ? metrics_.batch_latency_us : nullptr);
  const size_t n = original_space_queries.rows();
  // As in the serial path: no caching for an already-cancelled token, and a
  // batch row's hit does no work (trivially within the batch deadline).
  const bool cacheable =
      cache_ != nullptr &&
      (limits.cancel == nullptr || !limits.cancel->Cancelled());
  const uint64_t metric_hash = cacheable ? MetricHashOf(*snapshot) : 0;
  if (SingleShard(*snapshot)) {
    const SnapshotShard& shard = snapshot->shards[0];
    if (!cacheable) {
      Matrix reduced(n, shard.pipeline.ReducedDims());
      {
        // Row transforms are independent; reduce them across the pool
        // before the index fans the reduced rows back out. Pool-lane chunks
        // emit no spans of their own — the caller-side span covers the
        // whole phase.
        obs::TraceSpan project(span_project_batch_);
        ParallelFor(0, n, kProjectGrain, [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            reduced.SetRow(i, shard.pipeline.TransformPoint(
                                  original_space_queries.Row(i)));
          }
        });
      }
      // Virtual dispatch: backends with a batch override (LinearScanIndex's
      // multi-query block kernel) fan whole query-chunks per data pass.
      return shard.index->QueryBatch(reduced, k, stats, limits);
    }
    // Cached batch: answer hits up front, fan out only the misses.
    std::vector<std::vector<Neighbor>> out(n);
    std::vector<size_t> miss_rows;
    std::vector<cache::CacheKey> keys(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = MakeCacheKey(snapshot->version, metric_hash,
                             original_space_queries.Row(i), k);
      if (!cache_->Lookup(keys[i], &out[i])) miss_rows.push_back(i);
    }
    if (miss_rows.empty()) return out;
    Matrix reduced(miss_rows.size(), shard.pipeline.ReducedDims());
    {
      obs::TraceSpan project(span_project_batch_);
      ParallelFor(0, miss_rows.size(), kProjectGrain,
                  [&](size_t begin, size_t end) {
        for (size_t j = begin; j < end; ++j) {
          reduced.SetRow(j, shard.pipeline.TransformPoint(
                                original_space_queries.Row(miss_rows[j])));
        }
      });
    }
    QueryStats local;
    std::vector<std::vector<Neighbor>> found =
        shard.index->QueryBatch(reduced, k, &local, limits);
    // Truncation is reported batch-wide, not per row, so a truncated batch
    // conservatively stores nothing (a partial row must never be served as
    // the exact answer later).
    const bool store = !local.truncated;
    for (size_t j = 0; j < miss_rows.size(); ++j) {
      out[miss_rows[j]] = std::move(found[j]);
      if (store) cache_->Insert(keys[miss_rows[j]], out[miss_rows[j]]);
    }
    if (stats != nullptr) stats->MergeFrom(local);
    return out;
  }

  std::vector<std::vector<Neighbor>> out(n);
  if (n == 0) return out;
  const auto [deadline, has_deadline] = AbsoluteDeadline(limits);
  const bool traced = obs::Tracer::Enabled();
  const size_t chunks = ParallelChunkCount(n, kBatchGrain);
  std::vector<QueryStats> partial(stats != nullptr ? chunks : 0);
  ParallelForIndexed(0, n, kBatchGrain,
                     [&](size_t chunk, size_t begin, size_t end) {
    QueryStats* local = stats != nullptr ? &partial[chunk] : nullptr;
    for (size_t i = begin; i < end; ++i) {
      // Probes stay serial inside a batch row: the row fan-out already owns
      // the pool (nested regions run serial regardless).
      if (!cacheable) {
        out[i] = QueryMultiShard(*snapshot, original_space_queries.Row(i), k,
                                 KnnIndex::kNoSkip, local, limits.cancel,
                                 deadline, has_deadline, traced,
                                 /*allow_parallel=*/false);
        continue;
      }
      const cache::CacheKey row_key = MakeCacheKey(
          snapshot->version, metric_hash, original_space_queries.Row(i), k);
      if (cache_->Lookup(row_key, &out[i])) continue;
      // Row-local stats so the row's own truncation flag gates its insert
      // (the chunk merge would smear one row's truncation over all).
      QueryStats row_stats;
      out[i] = QueryMultiShard(*snapshot, original_space_queries.Row(i), k,
                               KnnIndex::kNoSkip, &row_stats, limits.cancel,
                               deadline, has_deadline, traced,
                               /*allow_parallel=*/false);
      if (!row_stats.truncated) cache_->Insert(row_key, out[i]);
      if (local != nullptr) local->MergeFrom(row_stats);
    }
  });
  if (stats != nullptr) {
    for (const QueryStats& p : partial) stats->MergeFrom(p);
  }
  return out;
}

}  // namespace cohere
