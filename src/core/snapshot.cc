#include "core/snapshot.h"

#include "common/check.h"
#include "common/fault.h"
#include "obs/metrics.h"

namespace cohere {

Status SnapshotHandle::Publish(std::shared_ptr<EngineSnapshot> next) {
  COHERE_CHECK(next != nullptr);
  const bool replacement = versions_.load(std::memory_order_relaxed) > 0;
  if (replacement && COHERE_INJECT_FAULT(fault::kPointSnapshotPublish)) {
    return Status::Internal("injected fault: " +
                            std::string(fault::kPointSnapshotPublish));
  }
  const uint64_t version =
      versions_.fetch_add(1, std::memory_order_relaxed) + 1;
  next->version = version;
  current_.store(std::shared_ptr<const EngineSnapshot>(std::move(next)),
                 std::memory_order_release);
  if (obs::MetricsRegistry::Enabled()) {
    // Counter/gauge pointers have process lifetime; resolve them once.
    static obs::Counter* publishes =
        obs::MetricsRegistry::Global().GetCounter("core.snapshot.publishes");
    static obs::Counter* retired =
        obs::MetricsRegistry::Global().GetCounter("core.snapshot.retired");
    static obs::Gauge* version_gauge =
        obs::MetricsRegistry::Global().GetGauge("core.snapshot.version");
    publishes->Increment();
    if (replacement) retired->Increment();
    version_gauge->Set(static_cast<double>(version));
  }
  return Status::Ok();
}

}  // namespace cohere
