#include "core/local_engine.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "cluster/kmeans.h"
#include "cluster/projected.h"
#include "common/stopwatch.h"
#include "data/transforms.h"
#include "index/linear_scan.h"
#include "obs/metrics.h"
#include "obs/tracing.h"

namespace cohere {

Result<std::shared_ptr<EngineSnapshot>>
LocalReducedSearchEngine::BuildSnapshot(const Dataset& dataset,
                                        const LocalEngineOptions& options,
                                        std::shared_ptr<const Metric> metric) {
  if (dataset.NumRecords() == 0) {
    return Status::InvalidArgument("cannot build on an empty dataset");
  }
  if (options.num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be positive");
  }
  if (options.probe_clusters == 0) {
    return Status::InvalidArgument("probe_clusters must be positive");
  }
  if (dataset.NumRecords() < options.num_clusters) {
    return Status::InvalidArgument("fewer records than clusters");
  }

  auto snapshot = std::make_shared<EngineSnapshot>();
  snapshot->metric = std::move(metric);
  if (dataset.HasLabels()) snapshot->labels = dataset.labels();

  // Cluster in the globally studentized space so heterogeneous attribute
  // scales do not dominate the partitioning (Section 2.2 all over again).
  snapshot->has_studentizer = true;
  snapshot->studentizer = ColumnAffineTransform::FitZScore(dataset.features());
  snapshot->studentized_records =
      snapshot->studentizer.ApplyToRows(dataset.features());
  const Matrix& studentized = snapshot->studentized_records;

  std::vector<std::vector<size_t>> member_lists;
  std::vector<Vector> centroids;
  std::vector<Matrix> bases;
  if (options.use_projected_clustering) {
    ProjectedClusteringOptions cluster_options;
    cluster_options.num_clusters = options.num_clusters;
    cluster_options.subspace_dim = std::min(options.cluster_subspace_dim,
                                            dataset.NumAttributes());
    cluster_options.seed = options.seed;
    Result<ProjectedClusteringResult> clustering =
        RunProjectedClustering(studentized, cluster_options);
    if (!clustering.ok()) return clustering.status();
    snapshot->assignment = clustering->assignment;
    for (ProjectedCluster& cluster : clustering->clusters) {
      member_lists.push_back(std::move(cluster.members));
      centroids.push_back(std::move(cluster.centroid));
      bases.push_back(std::move(cluster.basis));
    }
  } else {
    KMeansOptions cluster_options;
    cluster_options.num_clusters = options.num_clusters;
    cluster_options.seed = options.seed;
    Result<KMeansResult> clustering = RunKMeans(studentized, cluster_options);
    if (!clustering.ok()) return clustering.status();
    snapshot->assignment = clustering->assignment;
    member_lists.resize(options.num_clusters);
    for (size_t i = 0; i < snapshot->assignment.size(); ++i) {
      member_lists[snapshot->assignment[i]].push_back(i);
    }
    for (size_t c = 0; c < options.num_clusters; ++c) {
      centroids.push_back(clustering->centroids.Row(c));
      bases.emplace_back();  // empty: route by full-space distance
    }
  }

  // Fit a coherence reduction and build an index per locality. Small or
  // degenerate localities fall back to keeping all their dimensions.
  for (size_t c = 0; c < member_lists.size(); ++c) {
    SnapshotShard shard;
    shard.members = std::move(member_lists[c]);
    shard.centroid = std::move(centroids[c]);
    shard.cluster_basis = std::move(bases[c]);

    Dataset member_data = dataset.SelectRecords(shard.members);
    ReductionOptions reduction = options.reduction;
    if (reduction.target_dim > member_data.NumAttributes()) {
      reduction.target_dim = member_data.NumAttributes();
    }
    Result<ReductionPipeline> pipeline =
        ReductionPipeline::Fit(member_data, reduction);
    if (!pipeline.ok()) return pipeline.status();
    shard.pipeline = std::move(*pipeline);

    Matrix reduced = shard.pipeline.TransformDataset(member_data).features();
    shard.rows = std::make_shared<const BlockedMatrix>(reduced);
    shard.index =
        std::make_unique<LinearScanIndex>(shard.rows, snapshot->metric.get());
    snapshot->shards.push_back(std::move(shard));
  }
  return snapshot;
}

Result<LocalReducedSearchEngine> LocalReducedSearchEngine::Build(
    const Dataset& dataset, const LocalEngineOptions& options) {
  obs::TraceSpan trace("local_engine.build");
  Stopwatch build_watch;

  LocalReducedSearchEngine engine;
  engine.options_ = options;
  Result<std::shared_ptr<EngineSnapshot>> snapshot = BuildSnapshot(
      dataset, options, MakeMetric(options.metric, options.metric_p));
  if (!snapshot.ok()) return snapshot.status();

  ServingCoreOptions serving_options;
  serving_options.scope = "local_engine";
  serving_options.default_deadline_us = options.query_deadline_us;
  serving_options.probe_shards = options.probe_clusters;
  serving_options.rerank_multi_probe = true;
  serving_options.cache_budget_bytes = options.cache_budget_bytes;
  serving_options.explain = options.explain;
  serving_options.admission = options.admission;
  engine.serving_ = std::make_unique<ServingCore>(serving_options);
  COHERE_CHECK(engine.serving_->Publish(std::move(*snapshot)).ok());

  if (obs::MetricsRegistry::Enabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("local_engine.builds")->Increment();
    registry.GetHistogram("local_engine.build_latency_us")
        ->Record(build_watch.ElapsedMicros());
  }
  return engine;
}

Status LocalReducedSearchEngine::Rebuild(const Dataset& dataset) {
  obs::TraceSpan trace("local_engine.build");
  Stopwatch build_watch;
  const std::shared_ptr<const EngineSnapshot> current = serving_->snapshot();
  Result<std::shared_ptr<EngineSnapshot>> snapshot =
      BuildSnapshot(dataset, options_, current->metric);
  if (!snapshot.ok()) return snapshot.status();
  Status published = serving_->Publish(std::move(*snapshot));
  if (!published.ok()) return published;
  if (obs::MetricsRegistry::Enabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("local_engine.builds")->Increment();
    registry.GetHistogram("local_engine.build_latency_us")
        ->Record(build_watch.ElapsedMicros());
  }
  return Status::Ok();
}

std::vector<Neighbor> LocalReducedSearchEngine::Query(
    const Vector& original_space_query, size_t k, size_t skip_index,
    QueryStats* stats) const {
  return serving_->Query(original_space_query, k, skip_index, stats);
}

std::vector<Neighbor> LocalReducedSearchEngine::Query(
    const Vector& original_space_query, size_t k, size_t skip_index,
    QueryStats* stats, const QueryLimits& limits) const {
  return serving_->Query(original_space_query, k, skip_index, stats, limits);
}

std::vector<std::vector<Neighbor>> LocalReducedSearchEngine::QueryBatch(
    const Matrix& original_space_queries, size_t k, QueryStats* stats) const {
  return serving_->QueryBatch(original_space_queries, k, stats);
}

std::vector<std::vector<Neighbor>> LocalReducedSearchEngine::QueryBatch(
    const Matrix& original_space_queries, size_t k, QueryStats* stats,
    const QueryLimits& limits) const {
  return serving_->QueryBatch(original_space_queries, k, stats, limits);
}

const std::vector<size_t>& LocalReducedSearchEngine::ClusterMembers(
    size_t c) const {
  const std::shared_ptr<const EngineSnapshot> snapshot = serving_->snapshot();
  COHERE_CHECK_LT(c, snapshot->shards.size());
  return snapshot->shards[c].members;
}

const ReductionPipeline& LocalReducedSearchEngine::ClusterPipeline(
    size_t c) const {
  const std::shared_ptr<const EngineSnapshot> snapshot = serving_->snapshot();
  COHERE_CHECK_LT(c, snapshot->shards.size());
  return snapshot->shards[c].pipeline;
}

std::string LocalReducedSearchEngine::Describe() const {
  const std::shared_ptr<const EngineSnapshot> snapshot = serving_->snapshot();
  std::string out = "LocalReducedSearchEngine (" +
                    std::string(options_.use_projected_clustering
                                    ? "projected clustering"
                                    : "k-means") +
                    ", " + std::to_string(snapshot->shards.size()) +
                    " localities)\n";
  char buf[160];
  for (size_t c = 0; c < snapshot->shards.size(); ++c) {
    std::snprintf(buf, sizeof(buf), "  locality %zu: %zu records, %s\n", c,
                  snapshot->shards[c].members.size(),
                  snapshot->shards[c].pipeline.Describe().c_str());
    out += buf;
  }
  return out;
}

}  // namespace cohere
