#include "core/local_engine.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "cluster/kmeans.h"
#include "index/linear_scan.h"

namespace cohere {

Result<LocalReducedSearchEngine> LocalReducedSearchEngine::Build(
    const Dataset& dataset, const LocalEngineOptions& options) {
  if (dataset.NumRecords() == 0) {
    return Status::InvalidArgument("cannot build on an empty dataset");
  }
  if (options.num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be positive");
  }
  if (options.probe_clusters == 0) {
    return Status::InvalidArgument("probe_clusters must be positive");
  }
  if (dataset.NumRecords() < options.num_clusters) {
    return Status::InvalidArgument("fewer records than clusters");
  }

  LocalReducedSearchEngine engine;
  engine.options_ = options;
  engine.metric_ = MakeMetric(options.metric, options.metric_p);

  // Cluster in the globally studentized space so heterogeneous attribute
  // scales do not dominate the partitioning (Section 2.2 all over again).
  engine.studentizer_ =
      ColumnAffineTransform::FitZScore(dataset.features());
  engine.studentized_records_ =
      engine.studentizer_.ApplyToRows(dataset.features());
  const Matrix& studentized = engine.studentized_records_;

  std::vector<std::vector<size_t>> member_lists;
  std::vector<Vector> centroids;
  std::vector<Matrix> bases;
  if (options.use_projected_clustering) {
    ProjectedClusteringOptions cluster_options;
    cluster_options.num_clusters = options.num_clusters;
    cluster_options.subspace_dim = std::min(options.cluster_subspace_dim,
                                            dataset.NumAttributes());
    cluster_options.seed = options.seed;
    Result<ProjectedClusteringResult> clustering =
        RunProjectedClustering(studentized, cluster_options);
    if (!clustering.ok()) return clustering.status();
    engine.assignment_ = clustering->assignment;
    for (ProjectedCluster& cluster : clustering->clusters) {
      member_lists.push_back(std::move(cluster.members));
      centroids.push_back(std::move(cluster.centroid));
      bases.push_back(std::move(cluster.basis));
    }
  } else {
    KMeansOptions cluster_options;
    cluster_options.num_clusters = options.num_clusters;
    cluster_options.seed = options.seed;
    Result<KMeansResult> clustering = RunKMeans(studentized, cluster_options);
    if (!clustering.ok()) return clustering.status();
    engine.assignment_ = clustering->assignment;
    member_lists.resize(options.num_clusters);
    for (size_t i = 0; i < engine.assignment_.size(); ++i) {
      member_lists[engine.assignment_[i]].push_back(i);
    }
    for (size_t c = 0; c < options.num_clusters; ++c) {
      centroids.push_back(clustering->centroids.Row(c));
      bases.emplace_back();  // empty: route by full-space distance
    }
  }

  // Fit a coherence reduction and build an index per locality. Small or
  // degenerate localities fall back to keeping all their dimensions.
  for (size_t c = 0; c < member_lists.size(); ++c) {
    Locality locality;
    locality.members = std::move(member_lists[c]);
    locality.centroid = std::move(centroids[c]);
    locality.cluster_basis = std::move(bases[c]);

    Dataset member_data = dataset.SelectRecords(locality.members);
    ReductionOptions reduction = options.reduction;
    if (reduction.target_dim > member_data.NumAttributes()) {
      reduction.target_dim = member_data.NumAttributes();
    }
    Result<ReductionPipeline> pipeline =
        ReductionPipeline::Fit(member_data, reduction);
    if (!pipeline.ok()) return pipeline.status();
    locality.pipeline = std::move(*pipeline);

    Matrix reduced = locality.pipeline.TransformDataset(member_data)
                         .features();
    locality.index = std::make_unique<LinearScanIndex>(std::move(reduced),
                                                       engine.metric_.get());
    engine.localities_.push_back(std::move(locality));
  }
  return engine;
}

std::vector<size_t> LocalReducedSearchEngine::RouteQuery(
    const Vector& studentized_query, size_t probes) const {
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(localities_.size());
  for (size_t c = 0; c < localities_.size(); ++c) {
    const Locality& locality = localities_[c];
    double dist;
    if (!locality.cluster_basis.empty()) {
      ProjectedCluster view;
      view.centroid = locality.centroid;
      view.basis = locality.cluster_basis;
      dist = ProjectedSquaredDistance(studentized_query, view);
    } else {
      dist = (studentized_query - locality.centroid).SquaredNorm2();
    }
    scored.emplace_back(dist, c);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<size_t> out;
  for (size_t i = 0; i < std::min(probes, scored.size()); ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

std::vector<Neighbor> LocalReducedSearchEngine::Query(
    const Vector& original_space_query, size_t k, size_t skip_index,
    QueryStats* stats) const {
  const Vector studentized = studentizer_.Apply(original_space_query);
  const bool rerank = options_.probe_clusters > 1;

  KnnCollector collector(k);
  for (size_t cluster :
       RouteQuery(studentized, options_.probe_clusters)) {
    const Locality& locality = localities_[cluster];
    if (stats != nullptr) ++stats->nodes_visited;
    const Vector local_query =
        locality.pipeline.TransformPoint(original_space_query);
    // Translate the global skip index into a local row, if it lives here.
    size_t local_skip = KnnIndex::kNoSkip;
    if (skip_index != KnnIndex::kNoSkip) {
      auto it = std::find(locality.members.begin(), locality.members.end(),
                          skip_index);
      if (it != locality.members.end()) {
        local_skip = static_cast<size_t>(it - locality.members.begin());
      }
    }
    for (const Neighbor& local :
         locality.index->Query(local_query, k, local_skip, stats)) {
      const size_t global_row = locality.members[local.index];
      if (rerank) {
        // Local distances are not comparable across concept spaces: score
        // merged candidates by the metric in the shared studentized space.
        const double dist =
            metric_->Distance(studentized, studentized_records_.Row(global_row));
        if (stats != nullptr) ++stats->distance_evaluations;
        collector.Offer(global_row, dist);
      } else {
        collector.Offer(global_row, local.distance);
      }
    }
  }
  return collector.Take();
}

const std::vector<size_t>& LocalReducedSearchEngine::ClusterMembers(
    size_t c) const {
  COHERE_CHECK_LT(c, localities_.size());
  return localities_[c].members;
}

const ReductionPipeline& LocalReducedSearchEngine::ClusterPipeline(
    size_t c) const {
  COHERE_CHECK_LT(c, localities_.size());
  return localities_[c].pipeline;
}

std::string LocalReducedSearchEngine::Describe() const {
  std::string out = "LocalReducedSearchEngine (" +
                    std::string(options_.use_projected_clustering
                                    ? "projected clustering"
                                    : "k-means") +
                    ", " + std::to_string(localities_.size()) +
                    " localities)\n";
  char buf[160];
  for (size_t c = 0; c < localities_.size(); ++c) {
    std::snprintf(buf, sizeof(buf), "  locality %zu: %zu records, %s\n", c,
                  localities_[c].members.size(),
                  localities_[c].pipeline.Describe().c_str());
    out += buf;
  }
  return out;
}

}  // namespace cohere
