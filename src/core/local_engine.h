#ifndef COHERE_CORE_LOCAL_ENGINE_H_
#define COHERE_CORE_LOCAL_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/serving.h"
#include "core/snapshot.h"
#include "data/dataset.h"
#include "index/knn.h"
#include "index/metric.h"
#include "reduction/pipeline.h"

namespace cohere {

/// Options for LocalReducedSearchEngine::Build.
struct LocalEngineOptions {
  /// Number of data localities.
  size_t num_clusters = 4;
  /// Subspace dimensionality used by the projected clustering.
  size_t cluster_subspace_dim = 6;
  /// When false, partition with plain full-space k-means instead of
  /// projected clustering (ablation knob).
  bool use_projected_clustering = true;
  /// Per-cluster reduction configuration.
  ReductionOptions reduction;
  /// How many nearest clusters to probe per query (>= 1). With more than
  /// one probe, the probed localities act as candidate generators and the
  /// merged candidates are re-ranked by the metric in the shared
  /// (studentized) full space, since cluster-local distances are not
  /// comparable across concept spaces.
  size_t probe_clusters = 1;
  MetricKind metric = MetricKind::kEuclidean;
  double metric_p = 0.5;
  uint64_t seed = 1;
  /// Default wall-clock budget per Query (and per QueryBatch as a whole) in
  /// microseconds; 0 disables. Per-call QueryLimits override it.
  double query_deadline_us = 0.0;
  /// Query-result cache budget in bytes (see EngineOptions). Keys include
  /// probe_clusters, and a Rebuild's new snapshot version implicitly
  /// invalidates every cached answer.
  size_t cache_budget_bytes = 0;
  /// Capture a per-query EXPLAIN profile for every serial Query (see
  /// ServingCoreOptions::explain). Off by default.
  bool explain = false;
  /// Overload policy (admission control, load shedding, brownout, circuit
  /// breaker; see core/admission.h). Disabled by default — the query path
  /// stays bit-identical to the pre-admission code. With it enabled use
  /// serving().TryQuery() as the rejectable entry point; under brownout the
  /// controller caps effective probes before shedding.
  AdmissionOptions admission;
};

/// The Section 3.1 extension the paper sketches: when the *global* implicit
/// dimensionality is too high for one axis system, decompose the data into
/// localities of low implicit dimensionality (generalized projected
/// clustering, ORCLUS-style) and run the coherence reduction machinery per
/// locality. Queries are routed to their locality and answered in its
/// concept space; multi-probe queries scatter across the probed localities
/// on the shared thread pool and gather with a full-space re-rank.
///
/// Concurrency: the per-locality pipelines and indexes live inside one
/// RCU-published snapshot (see core/snapshot.h), so queries are lock-free
/// readers and may run concurrently with Rebuild().
class LocalReducedSearchEngine {
 public:
  LocalReducedSearchEngine(LocalReducedSearchEngine&&) = default;
  LocalReducedSearchEngine& operator=(LocalReducedSearchEngine&&) = default;
  LocalReducedSearchEngine(const LocalReducedSearchEngine&) = delete;
  LocalReducedSearchEngine& operator=(const LocalReducedSearchEngine&) =
      delete;

  static Result<LocalReducedSearchEngine> Build(
      const Dataset& dataset, const LocalEngineOptions& options);

  /// Re-clusters and refits on `dataset` under the engine's options and
  /// atomically publishes the replacement snapshot. Queries in flight keep
  /// the old snapshot alive until they finish; on failure (fit error or
  /// injected publish fault) the old snapshot keeps serving unchanged.
  /// Neighbor indices refer to rows of the *new* dataset after a successful
  /// rebuild. Callers mutate from one thread at a time.
  Status Rebuild(const Dataset& dataset);

  /// k nearest records to a query in the original attribute space. Neighbor
  /// indices refer to rows of the dataset the engine was built on. With one
  /// probe, distances are measured in the locality's concept space; with
  /// several probes the localities generate candidates and the final
  /// ranking (and reported distances) use the metric in the shared
  /// studentized full space. Honors LocalEngineOptions::query_deadline_us.
  std::vector<Neighbor> Query(const Vector& original_space_query, size_t k,
                              size_t skip_index = KnnIndex::kNoSkip,
                              QueryStats* stats = nullptr) const;

  /// Query under explicit limits: every probe shares one absolute deadline;
  /// when it passes the probes stop at their next control check and the
  /// best candidates so far come back with `stats->truncated` set.
  std::vector<Neighbor> Query(const Vector& original_space_query, size_t k,
                              size_t skip_index, QueryStats* stats,
                              const QueryLimits& limits) const;

  /// Batched form of Query: one original-space query per row, fanned across
  /// the shared thread pool; entry i equals Query(queries.Row(i), k)
  /// exactly. The default deadline applies batch-wide.
  std::vector<std::vector<Neighbor>> QueryBatch(
      const Matrix& original_space_queries, size_t k,
      QueryStats* stats = nullptr) const;

  /// QueryBatch under explicit per-call limits (batch-wide deadline).
  std::vector<std::vector<Neighbor>> QueryBatch(
      const Matrix& original_space_queries, size_t k, QueryStats* stats,
      const QueryLimits& limits) const;

  size_t NumClusters() const { return serving_->snapshot()->shards.size(); }
  /// Member rows (global ids) of cluster `c`. The reference is valid until
  /// the next Rebuild() publish.
  const std::vector<size_t>& ClusterMembers(size_t c) const;
  /// The fitted reduction of cluster `c` (same lifetime note).
  const ReductionPipeline& ClusterPipeline(size_t c) const;
  /// Cluster assignment per original row (same lifetime note).
  const std::vector<size_t>& assignment() const {
    return serving_->snapshot()->assignment;
  }

  /// Version of the serving snapshot (1 after Build, +1 per successful
  /// Rebuild publish).
  uint64_t SnapshotVersion() const { return serving_->version(); }

  /// The serving substrate (snapshot handle, metrics, query plumbing).
  const ServingCore& serving() const { return *serving_; }

  std::string Describe() const;

 private:
  LocalReducedSearchEngine() = default;

  /// Clusters, fits, and indexes `dataset` into a publishable snapshot.
  static Result<std::shared_ptr<EngineSnapshot>> BuildSnapshot(
      const Dataset& dataset, const LocalEngineOptions& options,
      std::shared_ptr<const Metric> metric);

  LocalEngineOptions options_;
  std::unique_ptr<ServingCore> serving_;
};

}  // namespace cohere

#endif  // COHERE_CORE_LOCAL_ENGINE_H_
