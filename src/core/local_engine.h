#ifndef COHERE_CORE_LOCAL_ENGINE_H_
#define COHERE_CORE_LOCAL_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/projected.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/transforms.h"
#include "index/knn.h"
#include "index/metric.h"
#include "reduction/pipeline.h"

namespace cohere {

/// Options for LocalReducedSearchEngine::Build.
struct LocalEngineOptions {
  /// Number of data localities.
  size_t num_clusters = 4;
  /// Subspace dimensionality used by the projected clustering.
  size_t cluster_subspace_dim = 6;
  /// When false, partition with plain full-space k-means instead of
  /// projected clustering (ablation knob).
  bool use_projected_clustering = true;
  /// Per-cluster reduction configuration.
  ReductionOptions reduction;
  /// How many nearest clusters to probe per query (>= 1). With more than
  /// one probe, the probed localities act as candidate generators and the
  /// merged candidates are re-ranked by the metric in the shared
  /// (studentized) full space, since cluster-local distances are not
  /// comparable across concept spaces.
  size_t probe_clusters = 1;
  MetricKind metric = MetricKind::kEuclidean;
  double metric_p = 0.5;
  uint64_t seed = 1;
};

/// The Section 3.1 extension the paper sketches: when the *global* implicit
/// dimensionality is too high for one axis system, decompose the data into
/// localities of low implicit dimensionality (generalized projected
/// clustering, ORCLUS-style) and run the coherence reduction machinery per
/// locality. Queries are routed to their locality and answered in its
/// concept space.
class LocalReducedSearchEngine {
 public:
  LocalReducedSearchEngine(LocalReducedSearchEngine&&) = default;
  LocalReducedSearchEngine& operator=(LocalReducedSearchEngine&&) = default;
  LocalReducedSearchEngine(const LocalReducedSearchEngine&) = delete;
  LocalReducedSearchEngine& operator=(const LocalReducedSearchEngine&) =
      delete;

  static Result<LocalReducedSearchEngine> Build(
      const Dataset& dataset, const LocalEngineOptions& options);

  /// k nearest records to a query in the original attribute space. Neighbor
  /// indices refer to rows of the dataset the engine was built on. With one
  /// probe, distances are measured in the locality's concept space; with
  /// several probes the localities generate candidates and the final
  /// ranking (and reported distances) use the metric in the shared
  /// studentized full space.
  std::vector<Neighbor> Query(const Vector& original_space_query, size_t k,
                              size_t skip_index = KnnIndex::kNoSkip,
                              QueryStats* stats = nullptr) const;

  size_t NumClusters() const { return localities_.size(); }
  /// Member rows (global ids) of cluster `c`.
  const std::vector<size_t>& ClusterMembers(size_t c) const;
  /// The fitted reduction of cluster `c`.
  const ReductionPipeline& ClusterPipeline(size_t c) const;
  /// Cluster assignment per original row.
  const std::vector<size_t>& assignment() const { return assignment_; }

  std::string Describe() const;

 private:
  struct Locality {
    std::vector<size_t> members;          // global row ids
    Vector centroid;                      // in studentized space
    Matrix cluster_basis;                 // projected-clustering basis (d x l)
    ReductionPipeline pipeline;           // fitted on the member subset
    std::unique_ptr<KnnIndex> index;      // over reduced member rows
  };

  LocalReducedSearchEngine() = default;

  /// Clusters to probe for a studentized query, nearest first.
  std::vector<size_t> RouteQuery(const Vector& studentized_query,
                                 size_t probes) const;

  LocalEngineOptions options_;
  ColumnAffineTransform studentizer_;  // global, fitted on the whole data
  std::unique_ptr<Metric> metric_;
  std::vector<Locality> localities_;
  std::vector<size_t> assignment_;
  // Studentized copies of all records, used to re-rank multi-probe
  // candidates in one comparable space.
  Matrix studentized_records_;
};

}  // namespace cohere

#endif  // COHERE_CORE_LOCAL_ENGINE_H_
